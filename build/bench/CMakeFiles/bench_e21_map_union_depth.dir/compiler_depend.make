# Empty compiler generated dependencies file for bench_e21_map_union_depth.
# This may be replaced when dependencies are built.
