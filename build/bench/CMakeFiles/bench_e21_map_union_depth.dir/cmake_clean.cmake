file(REMOVE_RECURSE
  "CMakeFiles/bench_e21_map_union_depth.dir/bench_e21_map_union_depth.cpp.o"
  "CMakeFiles/bench_e21_map_union_depth.dir/bench_e21_map_union_depth.cpp.o.d"
  "bench_e21_map_union_depth"
  "bench_e21_map_union_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e21_map_union_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
