# Empty dependencies file for bench_e15_intersect_depth.
# This may be replaced when dependencies are built.
