
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e15_intersect_depth.cpp" "bench/CMakeFiles/bench_e15_intersect_depth.dir/bench_e15_intersect_depth.cpp.o" "gcc" "bench/CMakeFiles/bench_e15_intersect_depth.dir/bench_e15_intersect_depth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pwf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/pwf_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/trees/CMakeFiles/pwf_trees.dir/DependInfo.cmake"
  "/root/repo/build/src/treap/CMakeFiles/pwf_treap.dir/DependInfo.cmake"
  "/root/repo/build/src/ttree/CMakeFiles/pwf_ttree.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/pwf_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pwf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pwf_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
