file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_rebalance.dir/bench_e12_rebalance.cpp.o"
  "CMakeFiles/bench_e12_rebalance.dir/bench_e12_rebalance.cpp.o.d"
  "bench_e12_rebalance"
  "bench_e12_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
