# Empty dependencies file for bench_e12_rebalance.
# This may be replaced when dependencies are built.
