file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_quicksort.dir/bench_e7_quicksort.cpp.o"
  "CMakeFiles/bench_e7_quicksort.dir/bench_e7_quicksort.cpp.o.d"
  "bench_e7_quicksort"
  "bench_e7_quicksort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_quicksort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
