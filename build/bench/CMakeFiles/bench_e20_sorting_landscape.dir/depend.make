# Empty dependencies file for bench_e20_sorting_landscape.
# This may be replaced when dependencies are built.
