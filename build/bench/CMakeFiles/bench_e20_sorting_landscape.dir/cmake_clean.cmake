file(REMOVE_RECURSE
  "CMakeFiles/bench_e20_sorting_landscape.dir/bench_e20_sorting_landscape.cpp.o"
  "CMakeFiles/bench_e20_sorting_landscape.dir/bench_e20_sorting_landscape.cpp.o.d"
  "bench_e20_sorting_landscape"
  "bench_e20_sorting_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e20_sorting_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
