# Empty dependencies file for bench_e13_runtime_wallclock.
# This may be replaced when dependencies are built.
