file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_runtime_wallclock.dir/bench_e13_runtime_wallclock.cpp.o"
  "CMakeFiles/bench_e13_runtime_wallclock.dir/bench_e13_runtime_wallclock.cpp.o.d"
  "bench_e13_runtime_wallclock"
  "bench_e13_runtime_wallclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_runtime_wallclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
