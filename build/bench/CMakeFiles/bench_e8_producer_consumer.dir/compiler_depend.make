# Empty compiler generated dependencies file for bench_e8_producer_consumer.
# This may be replaced when dependencies are built.
