file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_producer_consumer.dir/bench_e8_producer_consumer.cpp.o"
  "CMakeFiles/bench_e8_producer_consumer.dir/bench_e8_producer_consumer.cpp.o.d"
  "bench_e8_producer_consumer"
  "bench_e8_producer_consumer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_producer_consumer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
