# Empty dependencies file for bench_e9_greedy_schedule.
# This may be replaced when dependencies are built.
