file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_greedy_schedule.dir/bench_e9_greedy_schedule.cpp.o"
  "CMakeFiles/bench_e9_greedy_schedule.dir/bench_e9_greedy_schedule.cpp.o.d"
  "bench_e9_greedy_schedule"
  "bench_e9_greedy_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_greedy_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
