# Empty dependencies file for bench_e4_union_work.
# This may be replaced when dependencies are built.
