file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_ttree_depth.dir/bench_e6_ttree_depth.cpp.o"
  "CMakeFiles/bench_e6_ttree_depth.dir/bench_e6_ttree_depth.cpp.o.d"
  "bench_e6_ttree_depth"
  "bench_e6_ttree_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_ttree_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
