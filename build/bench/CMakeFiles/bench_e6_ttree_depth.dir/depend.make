# Empty dependencies file for bench_e6_ttree_depth.
# This may be replaced when dependencies are built.
