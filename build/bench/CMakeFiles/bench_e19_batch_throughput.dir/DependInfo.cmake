
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e19_batch_throughput.cpp" "bench/CMakeFiles/bench_e19_batch_throughput.dir/bench_e19_batch_throughput.cpp.o" "gcc" "bench/CMakeFiles/bench_e19_batch_throughput.dir/bench_e19_batch_throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pwf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pwf_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/treap/CMakeFiles/pwf_treap.dir/DependInfo.cmake"
  "/root/repo/build/src/ttree/CMakeFiles/pwf_ttree.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/pwf_costmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
