# Empty compiler generated dependencies file for bench_e19_batch_throughput.
# This may be replaced when dependencies are built.
