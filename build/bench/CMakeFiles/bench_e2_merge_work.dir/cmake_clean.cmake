file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_merge_work.dir/bench_e2_merge_work.cpp.o"
  "CMakeFiles/bench_e2_merge_work.dir/bench_e2_merge_work.cpp.o.d"
  "bench_e2_merge_work"
  "bench_e2_merge_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_merge_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
