# Empty dependencies file for bench_e2_merge_work.
# This may be replaced when dependencies are built.
