# Empty dependencies file for bench_e14_linearity_audit.
# This may be replaced when dependencies are built.
