file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_linearity_audit.dir/bench_e14_linearity_audit.cpp.o"
  "CMakeFiles/bench_e14_linearity_audit.dir/bench_e14_linearity_audit.cpp.o.d"
  "bench_e14_linearity_audit"
  "bench_e14_linearity_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_linearity_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
