# Empty dependencies file for bench_e1_merge_depth.
# This may be replaced when dependencies are built.
