file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_merge_depth.dir/bench_e1_merge_depth.cpp.o"
  "CMakeFiles/bench_e1_merge_depth.dir/bench_e1_merge_depth.cpp.o.d"
  "bench_e1_merge_depth"
  "bench_e1_merge_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_merge_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
