# Empty dependencies file for bench_e11_mergesort_depth.
# This may be replaced when dependencies are built.
