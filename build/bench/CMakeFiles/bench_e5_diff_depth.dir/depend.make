# Empty dependencies file for bench_e5_diff_depth.
# This may be replaced when dependencies are built.
