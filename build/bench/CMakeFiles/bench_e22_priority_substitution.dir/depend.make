# Empty dependencies file for bench_e22_priority_substitution.
# This may be replaced when dependencies are built.
