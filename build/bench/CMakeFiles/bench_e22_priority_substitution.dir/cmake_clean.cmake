file(REMOVE_RECURSE
  "CMakeFiles/bench_e22_priority_substitution.dir/bench_e22_priority_substitution.cpp.o"
  "CMakeFiles/bench_e22_priority_substitution.dir/bench_e22_priority_substitution.cpp.o.d"
  "bench_e22_priority_substitution"
  "bench_e22_priority_substitution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e22_priority_substitution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
