# Empty compiler generated dependencies file for bench_e3_union_depth.
# This may be replaced when dependencies are built.
