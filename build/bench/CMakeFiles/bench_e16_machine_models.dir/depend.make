# Empty dependencies file for bench_e16_machine_models.
# This may be replaced when dependencies are built.
