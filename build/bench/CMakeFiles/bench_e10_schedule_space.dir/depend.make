# Empty dependencies file for bench_e10_schedule_space.
# This may be replaced when dependencies are built.
