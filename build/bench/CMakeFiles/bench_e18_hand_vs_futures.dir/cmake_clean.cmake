file(REMOVE_RECURSE
  "CMakeFiles/bench_e18_hand_vs_futures.dir/bench_e18_hand_vs_futures.cpp.o"
  "CMakeFiles/bench_e18_hand_vs_futures.dir/bench_e18_hand_vs_futures.cpp.o.d"
  "bench_e18_hand_vs_futures"
  "bench_e18_hand_vs_futures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e18_hand_vs_futures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
