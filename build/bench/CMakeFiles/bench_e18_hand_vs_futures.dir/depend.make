# Empty dependencies file for bench_e18_hand_vs_futures.
# This may be replaced when dependencies are built.
