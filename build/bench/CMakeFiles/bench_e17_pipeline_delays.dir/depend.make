# Empty dependencies file for bench_e17_pipeline_delays.
# This may be replaced when dependencies are built.
