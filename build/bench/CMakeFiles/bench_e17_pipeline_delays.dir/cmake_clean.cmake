file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_pipeline_delays.dir/bench_e17_pipeline_delays.cpp.o"
  "CMakeFiles/bench_e17_pipeline_delays.dir/bench_e17_pipeline_delays.cpp.o.d"
  "bench_e17_pipeline_delays"
  "bench_e17_pipeline_delays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_pipeline_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
