# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;11;pwf_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.dynamic_dictionary "/root/repo/build/examples/dynamic_dictionary")
set_tests_properties(example.dynamic_dictionary PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;12;pwf_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.log_merge "/root/repo/build/examples/log_merge")
set_tests_properties(example.log_merge PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;13;pwf_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.ttree_bulkload "/root/repo/build/examples/ttree_bulkload")
set_tests_properties(example.ttree_bulkload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;14;pwf_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.shard_aggregate "/root/repo/build/examples/shard_aggregate")
set_tests_properties(example.shard_aggregate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;15;pwf_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.schedule_trace "/root/repo/build/examples/schedule_trace")
set_tests_properties(example.schedule_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;16;pwf_example;/root/repo/examples/CMakeLists.txt;0;")
