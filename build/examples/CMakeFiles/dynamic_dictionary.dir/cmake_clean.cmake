file(REMOVE_RECURSE
  "CMakeFiles/dynamic_dictionary.dir/dynamic_dictionary.cpp.o"
  "CMakeFiles/dynamic_dictionary.dir/dynamic_dictionary.cpp.o.d"
  "dynamic_dictionary"
  "dynamic_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
