# Empty dependencies file for dynamic_dictionary.
# This may be replaced when dependencies are built.
