# Empty compiler generated dependencies file for schedule_trace.
# This may be replaced when dependencies are built.
