# Empty compiler generated dependencies file for ttree_bulkload.
# This may be replaced when dependencies are built.
