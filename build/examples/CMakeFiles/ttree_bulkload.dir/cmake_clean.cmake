file(REMOVE_RECURSE
  "CMakeFiles/ttree_bulkload.dir/ttree_bulkload.cpp.o"
  "CMakeFiles/ttree_bulkload.dir/ttree_bulkload.cpp.o.d"
  "ttree_bulkload"
  "ttree_bulkload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttree_bulkload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
