file(REMOVE_RECURSE
  "CMakeFiles/log_merge.dir/log_merge.cpp.o"
  "CMakeFiles/log_merge.dir/log_merge.cpp.o.d"
  "log_merge"
  "log_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
