# Empty dependencies file for log_merge.
# This may be replaced when dependencies are built.
