# Empty compiler generated dependencies file for shard_aggregate.
# This may be replaced when dependencies are built.
