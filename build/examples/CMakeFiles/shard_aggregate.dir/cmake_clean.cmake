file(REMOVE_RECURSE
  "CMakeFiles/shard_aggregate.dir/shard_aggregate.cpp.o"
  "CMakeFiles/shard_aggregate.dir/shard_aggregate.cpp.o.d"
  "shard_aggregate"
  "shard_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
