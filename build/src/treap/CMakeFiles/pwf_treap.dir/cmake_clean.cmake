file(REMOVE_RECURSE
  "CMakeFiles/pwf_treap.dir/map_union.cpp.o"
  "CMakeFiles/pwf_treap.dir/map_union.cpp.o.d"
  "CMakeFiles/pwf_treap.dir/seq_treap.cpp.o"
  "CMakeFiles/pwf_treap.dir/seq_treap.cpp.o.d"
  "CMakeFiles/pwf_treap.dir/setops.cpp.o"
  "CMakeFiles/pwf_treap.dir/setops.cpp.o.d"
  "CMakeFiles/pwf_treap.dir/treap.cpp.o"
  "CMakeFiles/pwf_treap.dir/treap.cpp.o.d"
  "libpwf_treap.a"
  "libpwf_treap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwf_treap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
