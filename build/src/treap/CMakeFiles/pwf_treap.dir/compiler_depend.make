# Empty compiler generated dependencies file for pwf_treap.
# This may be replaced when dependencies are built.
