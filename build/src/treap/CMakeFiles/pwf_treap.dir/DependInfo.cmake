
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/treap/map_union.cpp" "src/treap/CMakeFiles/pwf_treap.dir/map_union.cpp.o" "gcc" "src/treap/CMakeFiles/pwf_treap.dir/map_union.cpp.o.d"
  "/root/repo/src/treap/seq_treap.cpp" "src/treap/CMakeFiles/pwf_treap.dir/seq_treap.cpp.o" "gcc" "src/treap/CMakeFiles/pwf_treap.dir/seq_treap.cpp.o.d"
  "/root/repo/src/treap/setops.cpp" "src/treap/CMakeFiles/pwf_treap.dir/setops.cpp.o" "gcc" "src/treap/CMakeFiles/pwf_treap.dir/setops.cpp.o.d"
  "/root/repo/src/treap/treap.cpp" "src/treap/CMakeFiles/pwf_treap.dir/treap.cpp.o" "gcc" "src/treap/CMakeFiles/pwf_treap.dir/treap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/costmodel/CMakeFiles/pwf_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pwf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
