file(REMOVE_RECURSE
  "libpwf_treap.a"
)
