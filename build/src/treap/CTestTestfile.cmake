# CMake generated Testfile for 
# Source directory: /root/repo/src/treap
# Build directory: /root/repo/build/src/treap
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
