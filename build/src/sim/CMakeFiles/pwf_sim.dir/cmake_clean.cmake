file(REMOVE_RECURSE
  "CMakeFiles/pwf_sim.dir/dag.cpp.o"
  "CMakeFiles/pwf_sim.dir/dag.cpp.o.d"
  "CMakeFiles/pwf_sim.dir/scheduler.cpp.o"
  "CMakeFiles/pwf_sim.dir/scheduler.cpp.o.d"
  "libpwf_sim.a"
  "libpwf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
