# Empty compiler generated dependencies file for pwf_sim.
# This may be replaced when dependencies are built.
