file(REMOVE_RECURSE
  "libpwf_sim.a"
)
