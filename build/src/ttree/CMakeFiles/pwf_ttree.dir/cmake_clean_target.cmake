file(REMOVE_RECURSE
  "libpwf_ttree.a"
)
