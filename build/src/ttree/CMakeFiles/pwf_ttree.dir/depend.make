# Empty dependencies file for pwf_ttree.
# This may be replaced when dependencies are built.
