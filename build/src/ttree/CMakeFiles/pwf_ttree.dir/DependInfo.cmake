
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ttree/handpipe.cpp" "src/ttree/CMakeFiles/pwf_ttree.dir/handpipe.cpp.o" "gcc" "src/ttree/CMakeFiles/pwf_ttree.dir/handpipe.cpp.o.d"
  "/root/repo/src/ttree/insert.cpp" "src/ttree/CMakeFiles/pwf_ttree.dir/insert.cpp.o" "gcc" "src/ttree/CMakeFiles/pwf_ttree.dir/insert.cpp.o.d"
  "/root/repo/src/ttree/ttree.cpp" "src/ttree/CMakeFiles/pwf_ttree.dir/ttree.cpp.o" "gcc" "src/ttree/CMakeFiles/pwf_ttree.dir/ttree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/costmodel/CMakeFiles/pwf_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pwf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
