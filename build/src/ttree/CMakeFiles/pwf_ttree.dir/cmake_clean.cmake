file(REMOVE_RECURSE
  "CMakeFiles/pwf_ttree.dir/handpipe.cpp.o"
  "CMakeFiles/pwf_ttree.dir/handpipe.cpp.o.d"
  "CMakeFiles/pwf_ttree.dir/insert.cpp.o"
  "CMakeFiles/pwf_ttree.dir/insert.cpp.o.d"
  "CMakeFiles/pwf_ttree.dir/ttree.cpp.o"
  "CMakeFiles/pwf_ttree.dir/ttree.cpp.o.d"
  "libpwf_ttree.a"
  "libpwf_ttree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwf_ttree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
