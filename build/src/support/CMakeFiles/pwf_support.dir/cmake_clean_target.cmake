file(REMOVE_RECURSE
  "libpwf_support.a"
)
