# Empty dependencies file for pwf_support.
# This may be replaced when dependencies are built.
