file(REMOVE_RECURSE
  "CMakeFiles/pwf_support.dir/cli.cpp.o"
  "CMakeFiles/pwf_support.dir/cli.cpp.o.d"
  "CMakeFiles/pwf_support.dir/scan.cpp.o"
  "CMakeFiles/pwf_support.dir/scan.cpp.o.d"
  "CMakeFiles/pwf_support.dir/stats.cpp.o"
  "CMakeFiles/pwf_support.dir/stats.cpp.o.d"
  "CMakeFiles/pwf_support.dir/table.cpp.o"
  "CMakeFiles/pwf_support.dir/table.cpp.o.d"
  "libpwf_support.a"
  "libpwf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
