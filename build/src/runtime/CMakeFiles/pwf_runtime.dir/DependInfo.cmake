
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/parallel_set.cpp" "src/runtime/CMakeFiles/pwf_runtime.dir/parallel_set.cpp.o" "gcc" "src/runtime/CMakeFiles/pwf_runtime.dir/parallel_set.cpp.o.d"
  "/root/repo/src/runtime/rt_treap.cpp" "src/runtime/CMakeFiles/pwf_runtime.dir/rt_treap.cpp.o" "gcc" "src/runtime/CMakeFiles/pwf_runtime.dir/rt_treap.cpp.o.d"
  "/root/repo/src/runtime/rt_trees.cpp" "src/runtime/CMakeFiles/pwf_runtime.dir/rt_trees.cpp.o" "gcc" "src/runtime/CMakeFiles/pwf_runtime.dir/rt_trees.cpp.o.d"
  "/root/repo/src/runtime/rt_ttree.cpp" "src/runtime/CMakeFiles/pwf_runtime.dir/rt_ttree.cpp.o" "gcc" "src/runtime/CMakeFiles/pwf_runtime.dir/rt_ttree.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/runtime/CMakeFiles/pwf_runtime.dir/scheduler.cpp.o" "gcc" "src/runtime/CMakeFiles/pwf_runtime.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pwf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ttree/CMakeFiles/pwf_ttree.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/pwf_costmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
