# Empty compiler generated dependencies file for pwf_runtime.
# This may be replaced when dependencies are built.
