file(REMOVE_RECURSE
  "CMakeFiles/pwf_runtime.dir/parallel_set.cpp.o"
  "CMakeFiles/pwf_runtime.dir/parallel_set.cpp.o.d"
  "CMakeFiles/pwf_runtime.dir/rt_treap.cpp.o"
  "CMakeFiles/pwf_runtime.dir/rt_treap.cpp.o.d"
  "CMakeFiles/pwf_runtime.dir/rt_trees.cpp.o"
  "CMakeFiles/pwf_runtime.dir/rt_trees.cpp.o.d"
  "CMakeFiles/pwf_runtime.dir/rt_ttree.cpp.o"
  "CMakeFiles/pwf_runtime.dir/rt_ttree.cpp.o.d"
  "CMakeFiles/pwf_runtime.dir/scheduler.cpp.o"
  "CMakeFiles/pwf_runtime.dir/scheduler.cpp.o.d"
  "libpwf_runtime.a"
  "libpwf_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
