file(REMOVE_RECURSE
  "libpwf_runtime.a"
)
