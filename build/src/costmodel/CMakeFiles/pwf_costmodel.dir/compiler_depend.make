# Empty compiler generated dependencies file for pwf_costmodel.
# This may be replaced when dependencies are built.
