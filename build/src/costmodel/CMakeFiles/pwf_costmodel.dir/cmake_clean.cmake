file(REMOVE_RECURSE
  "CMakeFiles/pwf_costmodel.dir/engine.cpp.o"
  "CMakeFiles/pwf_costmodel.dir/engine.cpp.o.d"
  "libpwf_costmodel.a"
  "libpwf_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwf_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
