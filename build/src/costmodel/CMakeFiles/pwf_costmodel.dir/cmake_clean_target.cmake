file(REMOVE_RECURSE
  "libpwf_costmodel.a"
)
