# Empty compiler generated dependencies file for pwf_trees.
# This may be replaced when dependencies are built.
