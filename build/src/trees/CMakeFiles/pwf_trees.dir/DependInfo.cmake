
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trees/merge.cpp" "src/trees/CMakeFiles/pwf_trees.dir/merge.cpp.o" "gcc" "src/trees/CMakeFiles/pwf_trees.dir/merge.cpp.o.d"
  "/root/repo/src/trees/rebalance.cpp" "src/trees/CMakeFiles/pwf_trees.dir/rebalance.cpp.o" "gcc" "src/trees/CMakeFiles/pwf_trees.dir/rebalance.cpp.o.d"
  "/root/repo/src/trees/tree.cpp" "src/trees/CMakeFiles/pwf_trees.dir/tree.cpp.o" "gcc" "src/trees/CMakeFiles/pwf_trees.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/costmodel/CMakeFiles/pwf_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pwf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
