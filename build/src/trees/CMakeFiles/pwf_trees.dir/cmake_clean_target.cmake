file(REMOVE_RECURSE
  "libpwf_trees.a"
)
