file(REMOVE_RECURSE
  "CMakeFiles/pwf_trees.dir/merge.cpp.o"
  "CMakeFiles/pwf_trees.dir/merge.cpp.o.d"
  "CMakeFiles/pwf_trees.dir/rebalance.cpp.o"
  "CMakeFiles/pwf_trees.dir/rebalance.cpp.o.d"
  "CMakeFiles/pwf_trees.dir/tree.cpp.o"
  "CMakeFiles/pwf_trees.dir/tree.cpp.o.d"
  "libpwf_trees.a"
  "libpwf_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwf_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
