# Empty dependencies file for pwf_algos.
# This may be replaced when dependencies are built.
