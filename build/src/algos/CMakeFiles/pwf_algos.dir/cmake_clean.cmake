file(REMOVE_RECURSE
  "CMakeFiles/pwf_algos.dir/cole.cpp.o"
  "CMakeFiles/pwf_algos.dir/cole.cpp.o.d"
  "CMakeFiles/pwf_algos.dir/list.cpp.o"
  "CMakeFiles/pwf_algos.dir/list.cpp.o.d"
  "CMakeFiles/pwf_algos.dir/mergesort.cpp.o"
  "CMakeFiles/pwf_algos.dir/mergesort.cpp.o.d"
  "CMakeFiles/pwf_algos.dir/producer_consumer.cpp.o"
  "CMakeFiles/pwf_algos.dir/producer_consumer.cpp.o.d"
  "CMakeFiles/pwf_algos.dir/quicksort.cpp.o"
  "CMakeFiles/pwf_algos.dir/quicksort.cpp.o.d"
  "libpwf_algos.a"
  "libpwf_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwf_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
