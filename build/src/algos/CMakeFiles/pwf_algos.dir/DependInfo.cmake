
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/cole.cpp" "src/algos/CMakeFiles/pwf_algos.dir/cole.cpp.o" "gcc" "src/algos/CMakeFiles/pwf_algos.dir/cole.cpp.o.d"
  "/root/repo/src/algos/list.cpp" "src/algos/CMakeFiles/pwf_algos.dir/list.cpp.o" "gcc" "src/algos/CMakeFiles/pwf_algos.dir/list.cpp.o.d"
  "/root/repo/src/algos/mergesort.cpp" "src/algos/CMakeFiles/pwf_algos.dir/mergesort.cpp.o" "gcc" "src/algos/CMakeFiles/pwf_algos.dir/mergesort.cpp.o.d"
  "/root/repo/src/algos/producer_consumer.cpp" "src/algos/CMakeFiles/pwf_algos.dir/producer_consumer.cpp.o" "gcc" "src/algos/CMakeFiles/pwf_algos.dir/producer_consumer.cpp.o.d"
  "/root/repo/src/algos/quicksort.cpp" "src/algos/CMakeFiles/pwf_algos.dir/quicksort.cpp.o" "gcc" "src/algos/CMakeFiles/pwf_algos.dir/quicksort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/costmodel/CMakeFiles/pwf_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/trees/CMakeFiles/pwf_trees.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pwf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
