file(REMOVE_RECURSE
  "libpwf_algos.a"
)
