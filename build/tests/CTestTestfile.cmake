# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/costmodel_test[1]_include.cmake")
include("/root/repo/build/tests/trees_test[1]_include.cmake")
include("/root/repo/build/tests/treap_test[1]_include.cmake")
include("/root/repo/build/tests/ttree_test[1]_include.cmake")
include("/root/repo/build/tests/algos_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_deque_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_set_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_map_test[1]_include.cmake")
include("/root/repo/build/tests/randomized_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/cole_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_model_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_support_test[1]_include.cmake")
