file(REMOVE_RECURSE
  "CMakeFiles/ttree_test.dir/ttree_test.cpp.o"
  "CMakeFiles/ttree_test.dir/ttree_test.cpp.o.d"
  "ttree_test"
  "ttree_test.pdb"
  "ttree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
