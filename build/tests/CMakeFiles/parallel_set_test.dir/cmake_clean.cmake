file(REMOVE_RECURSE
  "CMakeFiles/parallel_set_test.dir/parallel_set_test.cpp.o"
  "CMakeFiles/parallel_set_test.dir/parallel_set_test.cpp.o.d"
  "parallel_set_test"
  "parallel_set_test.pdb"
  "parallel_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
