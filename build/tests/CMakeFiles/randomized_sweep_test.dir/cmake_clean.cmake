file(REMOVE_RECURSE
  "CMakeFiles/randomized_sweep_test.dir/randomized_sweep_test.cpp.o"
  "CMakeFiles/randomized_sweep_test.dir/randomized_sweep_test.cpp.o.d"
  "randomized_sweep_test"
  "randomized_sweep_test.pdb"
  "randomized_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomized_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
