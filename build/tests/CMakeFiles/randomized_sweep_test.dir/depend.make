# Empty dependencies file for randomized_sweep_test.
# This may be replaced when dependencies are built.
