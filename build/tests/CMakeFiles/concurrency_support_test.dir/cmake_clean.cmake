file(REMOVE_RECURSE
  "CMakeFiles/concurrency_support_test.dir/concurrency_support_test.cpp.o"
  "CMakeFiles/concurrency_support_test.dir/concurrency_support_test.cpp.o.d"
  "concurrency_support_test"
  "concurrency_support_test.pdb"
  "concurrency_support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
