# Empty dependencies file for concurrency_support_test.
# This may be replaced when dependencies are built.
