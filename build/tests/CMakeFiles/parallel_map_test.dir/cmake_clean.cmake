file(REMOVE_RECURSE
  "CMakeFiles/parallel_map_test.dir/parallel_map_test.cpp.o"
  "CMakeFiles/parallel_map_test.dir/parallel_map_test.cpp.o.d"
  "parallel_map_test"
  "parallel_map_test.pdb"
  "parallel_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
