# Empty dependencies file for parallel_map_test.
# This may be replaced when dependencies are built.
