file(REMOVE_RECURSE
  "CMakeFiles/cole_test.dir/cole_test.cpp.o"
  "CMakeFiles/cole_test.dir/cole_test.cpp.o.d"
  "cole_test"
  "cole_test.pdb"
  "cole_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cole_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
