# Empty dependencies file for cole_test.
# This may be replaced when dependencies are built.
