file(REMOVE_RECURSE
  "CMakeFiles/runtime_deque_test.dir/runtime_deque_test.cpp.o"
  "CMakeFiles/runtime_deque_test.dir/runtime_deque_test.cpp.o.d"
  "runtime_deque_test"
  "runtime_deque_test.pdb"
  "runtime_deque_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_deque_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
