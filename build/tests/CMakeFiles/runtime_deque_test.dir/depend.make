# Empty dependencies file for runtime_deque_test.
# This may be replaced when dependencies are built.
