// pwf-record — DAG-record the runtime's real code paths and verify them.
//
// Runs every algorithm family on the RecExec recording substrate
// (src/analyze/rec_exec.hpp) across a substrate-parameter grid — leaf-chunk
// capacity x serial threshold — and, for each run:
//
//   1. checks the computed result against a sequential oracle,
//   2. verifies the recorded cm::Trace with pwf::analyze::verify()
//      (write-once, race-freedom, EREW, epoch closure; linearity as a
//      statistic, matching the engine-destructor hook),
//   3. replays the trace through the Section-4 greedy-schedule simulator
//      (sim::Dag + sim::schedule) and checks the Brent bound
//      steps <= w/p + d for several processor counts.
//
// The treap family additionally exercises storage epochs: it compacts into
// a fresh store mid-run (RecExec::new_epoch), so leaf operations, serial
// cutoffs AND epoch boundaries all appear in the verified traces.
//
// Exit status is nonzero on any oracle mismatch, verifier violation, or
// simulator bound breach — CI runs `pwf-record --grid smoke`.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze/rec_exec.hpp"
#include "analyze/verifier.hpp"
#include "costmodel/engine.hpp"
#include "pipelined/treap_walk.hpp"
#include "sim/dag.hpp"
#include "sim/scheduler.hpp"
#include "support/random.hpp"

namespace {

using pwf::analyze::RecExec;
namespace rec = pwf::analyze::rec;
using rec::Key;

struct Config {
  std::vector<std::size_t> leaf_caps{0, 1, 32};
  std::vector<std::size_t> thresholds{0, 1, 128};
  std::size_t n = 1500;  // keys per input in each family run
  bool verbose = false;
};

struct Tally {
  int runs = 0;
  int failures = 0;
};

std::vector<Key> random_keys(std::size_t n, std::uint64_t seed) {
  pwf::Rng rng(seed);
  std::set<Key> s;
  while (s.size() < n) s.insert(rng.range(0, 1 << 22));
  return {s.begin(), s.end()};
}

// Steps 2 + 3 above, shared by every family runner. `what` names the run in
// diagnostics; returns false on any violation or bound breach.
bool verify_trace(const pwf::cm::Engine& eng, const std::string& what,
                  const Config& cfg, std::uint32_t expected_epochs = 1,
                  bool crew = false) {
  const pwf::cm::Trace* trace = eng.trace();
  if (trace == nullptr) {
    std::fprintf(stderr, "FAIL %s: engine recorded no trace\n", what.c_str());
    return false;
  }
  pwf::analyze::Options opts;
  opts.check_linearity = false;  // Section-4 property, reported as a stat
  opts.check_erew = !crew;       // aug fibers re-read node cells (CREW)
  const pwf::analyze::Report rep = pwf::analyze::verify(*trace, opts);
  bool ok = rep.ok();
  if (!ok)
    std::fprintf(stderr, "FAIL %s: verifier violations:\n%s\n", what.c_str(),
                 rep.to_string().c_str());
  if (rep.num_epochs != expected_epochs) {
    std::fprintf(stderr, "FAIL %s: expected %u storage epochs, trace has %u\n",
                 what.c_str(), expected_epochs, rep.num_epochs);
    ok = false;
  }

  // Replay on the greedy-schedule simulator (the recording substrate is the
  // simulator's input path: same Dag ctor the cm-engine traces use).
  const pwf::sim::Dag dag(*trace);
  for (const std::uint64_t p : {1ull, 4ull, 16ull}) {
    const pwf::sim::ScheduleResult sr =
        pwf::sim::schedule(dag, p, pwf::sim::Discipline::kStack);
    if (!sr.within_bound(p)) {
      std::fprintf(stderr,
                   "FAIL %s: greedy schedule at p=%llu broke the Brent bound "
                   "(steps %llu, work %llu, depth %llu)\n",
                   what.c_str(), static_cast<unsigned long long>(p),
                   static_cast<unsigned long long>(sr.steps),
                   static_cast<unsigned long long>(sr.work),
                   static_cast<unsigned long long>(sr.depth));
      ok = false;
    }
  }
  if (cfg.verbose && ok)
    std::printf("ok   %s: %s\n", what.c_str(), rep.to_string().c_str());
  return ok;
}

std::string run_name(const char* family, std::size_t cap, std::size_t thr) {
  return std::string(family) + " (leaf-cap " + std::to_string(cap) +
         ", threshold " + std::to_string(thr) + ")";
}

// ---- family runners ---------------------------------------------------------
// Each records one engine-lifetime of work at the given substrate parameters
// and self-checks against a sequential oracle before the trace is verified.

bool run_treap(std::size_t cap, std::size_t thr, const Config& cfg) {
  const std::string what = run_name("treap-setops", cap, thr);
  const auto a = random_keys(cfg.n, 101);
  const auto b = random_keys(cfg.n * 2 / 3, 102);
  std::vector<Key> u, d, i;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(u));
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(d));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(i));

  pwf::cm::Engine eng(/*trace_enabled=*/true);
  RecExec ex(eng, thr);
  bool ok = true;
  std::vector<Key> got_u;
  {
    rec::TreapStore st(eng, pwf::pipelined::treap::kDefaultSalt, cap);
    rec::TreapCell* uc = rec::union_treaps(
        ex, st, st.input(st.build(a)), st.input(st.build(b)));
    got_u = rec::treap_inorder(uc);
    ok &= got_u == u;
    ok &= rec::treap_inorder(rec::diff_treaps(ex, st, st.input(st.build(a)),
                                              st.input(st.build(b)))) == d;
    ok &= rec::treap_inorder(rec::intersect_treaps(
              ex, st, st.input(st.build(a)), st.input(st.build(b)))) == i;
    // Strict baseline on the same substrate parameters.
    std::vector<Key> got_strict;
    pwf::pipelined::treap::collect_inorder<pwf::analyze::RecPolicy>(
        rec::union_strict(ex, st, st.build(a), st.build(b)), got_strict);
    ok &= got_strict == u;
  }
  // Storage epoch: compact the union result into a fresh store, then keep
  // operating on it. The old store's trace actions stay in epoch 0, the new
  // store's in epoch 1; no data edge may cross (the old arena is freed at a
  // real compaction point — ParallelSet::compact does exactly this).
  ex.new_epoch();
  {
    rec::TreapStore st2(eng, pwf::pipelined::treap::kDefaultSalt, cap);
    const auto batch = random_keys(cfg.n / 2, 103);
    std::vector<Key> after;
    std::set_difference(u.begin(), u.end(), batch.begin(), batch.end(),
                        std::back_inserter(after));
    ok &= rec::treap_inorder(rec::diff_treaps(
              ex, st2, st2.input(st2.build(got_u)),
              st2.input(st2.build(batch)))) == after;
  }
  if (!ok) std::fprintf(stderr, "FAIL %s: result mismatch\n", what.c_str());
  return verify_trace(eng, what, cfg, /*expected_epochs=*/2) && ok;
}

// The adaptive sharded facades rebalance with pipelined split/join while
// batches are still in flight (docs/service.md). This family records that
// exact shape: union a batch into a base treap, split the still-resolving
// result at a pivot (an existing key, so split_at's singleton-reattach path
// runs), keep batching into both halves, then join them back — one engine
// lifetime, verified as a single DAG.
bool run_shard_rebalance(std::size_t cap, std::size_t thr, const Config& cfg) {
  const std::string what = run_name("shard-rebalance", cap, thr);
  const auto base = random_keys(cfg.n, 701);
  const auto batch1 = random_keys(cfg.n / 2, 702);
  const auto batch2 = random_keys(cfg.n / 2, 703);
  std::vector<Key> u;
  std::set_union(base.begin(), base.end(), batch1.begin(), batch1.end(),
                 std::back_inserter(u));
  const Key pivot = u[u.size() / 2];  // existing key: exercises key == pivot
  std::vector<Key> ins_l, del_r;
  for (Key k : batch2) (k < pivot ? ins_l : del_r).push_back(k);
  std::set<Key> lref, rref;
  for (Key k : u) (k < pivot ? lref : rref).insert(k);
  lref.insert(ins_l.begin(), ins_l.end());
  for (Key k : del_r) rref.erase(k);
  std::vector<Key> joined(lref.begin(), lref.end());
  joined.insert(joined.end(), rref.begin(), rref.end());

  pwf::cm::Engine eng(/*trace_enabled=*/true);
  RecExec ex(eng, thr);
  bool ok = true;
  {
    rec::TreapStore st(eng, pwf::pipelined::treap::kDefaultSalt, cap);
    rec::TreapCell* uc = rec::union_treaps(
        ex, st, st.input(st.build(base)), st.input(st.build(batch1)));
    // Split while the union is (logically) still resolving: the rebalance
    // overlaps the in-flight batch, exactly like ParallelSet::split_off.
    rec::TreapCell* less = st.cell();
    rec::TreapCell* geq = st.cell();
    rec::split_treap(ex, st, pivot, uc, less, geq);
    rec::TreapCell* l2 =
        rec::union_treaps(ex, st, less, st.input(st.build(ins_l)));
    rec::TreapCell* r2 =
        rec::diff_treaps(ex, st, geq, st.input(st.build(del_r)));
    rec::TreapCell* back = rec::join_treaps(ex, st, l2, r2);
    ok &= rec::treap_inorder(less) ==
          std::vector<Key>(u.begin(), u.begin() + (u.size() / 2));
    ok &= rec::treap_inorder(back) == joined;
  }
  if (!ok) std::fprintf(stderr, "FAIL %s: result mismatch\n", what.c_str());
  return verify_trace(eng, what, cfg) && ok;
}

bool run_aug_map(std::size_t cap, std::size_t thr, const Config& cfg) {
  const std::string what = run_name("aug-map-setops", cap, thr);
  const auto make_items = [](std::size_t n, std::uint64_t seed) {
    const auto keys = random_keys(n, seed);
    pwf::Rng rng(seed * 131 + 7);
    std::vector<std::pair<Key, std::int64_t>> out;
    out.reserve(keys.size());
    for (Key k : keys) out.emplace_back(k, rng.range(1, 1000));
    return out;
  };
  const auto a = make_items(cfg.n, 601);
  const auto b = make_items(cfg.n * 2 / 3, 602);

  // Oracles: value-merging union (shared keys sum) and difference (a minus
  // b's keys, a's values survive).
  std::map<Key, std::int64_t> u_ref(a.begin(), a.end());
  for (const auto& [k, v] : b) {
    auto [it, fresh] = u_ref.emplace(k, v);
    if (!fresh) it->second += v;
  }
  std::map<Key, std::int64_t> d_ref(a.begin(), a.end());
  for (const auto& [k, v] : b) d_ref.erase(k);

  pwf::cm::Engine eng(/*trace_enabled=*/true);
  eng.set_crew(true);  // aug fibers re-read node cells
  RecExec ex(eng, thr);
  bool ok = true;
  {
    rec::AugMapStore st(eng, pwf::pipelined::treap::kDefaultSalt, cap);
    const auto rpeek = [](const auto* c) {
      return pwf::analyze::RecPolicy::peek(c);
    };
    const auto items_of = [&](rec::AugMapCell* c) {
      std::vector<std::pair<Key, std::int64_t>> got;
      pwf::pipelined::treap::visit_items(
          c, rpeek,
          [&](Key k, const std::int64_t& v) { got.emplace_back(k, v); });
      return got;
    };
    rec::AugMapCell* uc = rec::union_aug_maps(
        ex, st, st.input(st.build(a)), st.input(st.build(b)));
    ok &= items_of(uc) ==
          std::vector<std::pair<Key, std::int64_t>>(u_ref.begin(), u_ref.end());
    ok &= items_of(rec::diff_aug_maps(ex, st, st.input(st.build(a)),
                                      st.input(st.build(b)))) ==
          std::vector<std::pair<Key, std::int64_t>>(d_ref.begin(), d_ref.end());
    // Range aggregates on the union result against a sequential fold.
    const Key first = u_ref.begin()->first;
    const Key last = u_ref.rbegin()->first;
    const Key mid = std::next(u_ref.begin(), u_ref.size() / 2)->first;
    for (const auto& [lo, hi] : {std::pair<Key, Key>{first, last},
                                 {first, mid},
                                 {mid, last},
                                 {last + 1, last + 100}}) {
      std::int64_t fold = 0;
      for (const auto& [k, v] : u_ref)
        if (k >= lo && k <= hi) fold += v;
      ok &= pwf::pipelined::treap::aggregate(uc, lo, hi, rpeek) == fold;
    }
  }
  ok &= eng.aug_ops() > 0;  // aug maintenance must appear in the trace
  if (!ok) std::fprintf(stderr, "FAIL %s: result mismatch\n", what.c_str());
  return verify_trace(eng, what, cfg, /*expected_epochs=*/1, /*crew=*/true) &&
         ok;
}

bool run_trees(std::size_t cap, std::size_t thr, const Config& cfg) {
  const std::string what = run_name("tree-merge-rebalance", cap, thr);
  const auto a = random_keys(cfg.n, 201);
  const auto b = random_keys(cfg.n / 2, 202);
  std::vector<Key> oracle;
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(oracle));

  pwf::cm::Engine eng(true);
  RecExec ex(eng, thr);
  rec::TreeStore st(eng);
  rec::TreeCell* merged = rec::merge(ex, st, st.input(st.build_balanced(a)),
                                     st.input(st.build_balanced(b)));
  bool ok = rec::tree_inorder(merged) == oracle;
  ok &= rec::tree_inorder(rec::rebalance(ex, st, merged)) == oracle;
  if (!ok) std::fprintf(stderr, "FAIL %s: result mismatch\n", what.c_str());
  return verify_trace(eng, what, cfg) && ok;
}

bool run_ttree(std::size_t cap, std::size_t thr, const Config& cfg) {
  const std::string what = run_name("ttree-bulk-insert", cap, thr);
  const auto base = random_keys(cfg.n, 301);
  const auto extra = random_keys(cfg.n / 2, 302);
  std::set<Key> ref(base.begin(), base.end());
  ref.insert(extra.begin(), extra.end());
  const std::vector<Key> oracle(ref.begin(), ref.end());

  pwf::cm::Engine eng(true);
  RecExec ex(eng, thr);
  rec::TtreeStore st(eng);
  rec::TtreeCell* out =
      rec::bulk_insert(ex, st, st.input(st.build(base, 3)), extra);
  const bool ok = rec::ttree_keys(out) == oracle;
  if (!ok) std::fprintf(stderr, "FAIL %s: result mismatch\n", what.c_str());
  return verify_trace(eng, what, cfg) && ok;
}

bool run_mergesort(std::size_t cap, std::size_t thr, const Config& cfg) {
  const std::string what = run_name("mergesort", cap, thr);
  auto values = random_keys(cfg.n, 401);
  pwf::Rng rng(402);
  for (std::size_t k = values.size(); k > 1; --k)
    std::swap(values[k - 1],
              values[static_cast<std::size_t>(rng.range(0, k - 1))]);
  std::vector<Key> oracle = values;
  std::sort(oracle.begin(), oracle.end());

  pwf::cm::Engine eng(true);
  RecExec ex(eng, thr);
  rec::TreeStore st(eng);
  const bool ok = rec::tree_inorder(rec::mergesort(ex, st, values)) == oracle;
  if (!ok) std::fprintf(stderr, "FAIL %s: result mismatch\n", what.c_str());
  return verify_trace(eng, what, cfg) && ok;
}

bool run_quicksort(std::size_t cap, std::size_t thr, const Config& cfg) {
  const std::string what = run_name("quicksort", cap, thr);
  pwf::Rng rng(501);  // duplicates allowed: exercises pivot-equal paths
  std::vector<rec::Value> values(cfg.n);
  for (auto& x : values) x = rng.range(0, 1 << 10);
  std::vector<rec::Value> oracle = values;
  std::sort(oracle.begin(), oracle.end());

  pwf::cm::Engine eng(true);
  RecExec ex(eng, thr);
  rec::ListStore st(eng);
  const bool ok = rec::list_values(rec::quicksort(ex, st, values)) == oracle;
  if (!ok) std::fprintf(stderr, "FAIL %s: result mismatch\n", what.c_str());
  return verify_trace(eng, what, cfg) && ok;
}

bool run_produce_consume(std::size_t cap, std::size_t thr, const Config& cfg) {
  const std::string what = run_name("produce-consume", cap, thr);
  const auto n = static_cast<std::int64_t>(cfg.n);
  pwf::cm::Engine eng(true);
  RecExec ex(eng, thr);
  rec::ListStore st(eng);
  const bool ok = rec::produce_consume(ex, st, n) == n * (n + 1) / 2;
  if (!ok) std::fprintf(stderr, "FAIL %s: result mismatch\n", what.c_str());
  return verify_trace(eng, what, cfg) && ok;
}

struct Family {
  const char* name;
  bool (*run)(std::size_t cap, std::size_t thr, const Config& cfg);
};

constexpr Family kFamilies[] = {
    {"treap", run_treap},
    {"shard-rebalance", run_shard_rebalance},
    {"aug-map", run_aug_map},
    {"trees", run_trees},
    {"ttree", run_ttree},
    {"mergesort", run_mergesort},
    {"quicksort", run_quicksort},
    {"produce-consume", run_produce_consume},
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--grid smoke|full] [--family NAME|all] [--leaf-cap N]\n"
      "          [--threshold N] [--n N] [--verbose]\n"
      "families: treap shard-rebalance aug-map trees ttree mergesort "
      "quicksort produce-consume\n"
      "Defaults run the full grid: leaf cap {0,1,32} x threshold {0,1,128}.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  std::string family = "all";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--grid") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "full") == 0) {
        cfg.n = 6000;
      } else if (std::strcmp(v, "smoke") != 0) {
        return usage(argv[0]);
      }
    } else if (arg == "--family") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      family = v;
    } else if (arg == "--leaf-cap") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      cfg.leaf_caps = {static_cast<std::size_t>(std::stoul(v))};
    } else if (arg == "--threshold") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      cfg.thresholds = {static_cast<std::size_t>(std::stoul(v))};
    } else if (arg == "--n") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      cfg.n = std::stoul(v);
    } else if (arg == "--verbose") {
      cfg.verbose = true;
    } else {
      return usage(argv[0]);
    }
  }

  Tally tally;
  for (const Family& f : kFamilies) {
    if (family != "all" && family != f.name) continue;
    for (const std::size_t cap : cfg.leaf_caps) {
      for (const std::size_t thr : cfg.thresholds) {
        ++tally.runs;
        if (!f.run(cap, thr, cfg)) ++tally.failures;
      }
    }
  }
  if (tally.runs == 0) return usage(argv[0]);
  std::printf("pwf-record: %d run(s), %d failure(s)\n", tally.runs,
              tally.failures);
  return tally.failures == 0 ? 0 : 1;
}
