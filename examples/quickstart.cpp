// Quickstart: the paper's headline ability in ~40 lines.
//
// Build two treaps, take their union with the *pipelined* futures algorithm
// (Figure 4 of the paper), and see the two costs the whole library is about:
// work (total operations) and depth (critical path). The same call in the
// real coroutine runtime is shown in examples/log_merge.cpp.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "costmodel/engine.hpp"
#include "treap/setops.hpp"

int main() {
  using namespace pwf;

  // The cost-model engine tracks the computation DAG of Section 2 of the
  // paper while the algorithm runs.
  cm::Engine eng;
  treap::Store store(eng);

  // Two key sets: evens and multiples of three (so they overlap).
  std::vector<treap::Key> evens, threes;
  for (treap::Key k = 0; k < 2000; k += 2) evens.push_back(k);
  for (treap::Key k = 0; k < 2000; k += 3) threes.push_back(k);

  treap::TreapCell* a = store.input(store.build(evens));
  treap::TreapCell* b = store.input(store.build(threes));

  // union_treaps is the code from the paper's Figure 4: plain recursion,
  // pipelined implicitly through the future cells inside the tree nodes.
  treap::TreapCell* result = treap::union_treaps(store, a, b);

  std::vector<treap::Key> keys;
  treap::collect_inorder(treap::peek(result), keys);

  std::printf("union of %zu and %zu keys -> %zu keys\n", evens.size(),
              threes.size(), keys.size());
  std::printf("work  = %llu actions\n",
              static_cast<unsigned long long>(eng.work()));
  std::printf("depth = %llu (critical path; compare lg n ~ 11)\n",
              static_cast<unsigned long long>(eng.depth()));
  std::printf("every future cell read at most %u time(s) — linear code\n",
              eng.max_cell_reads());
  return 0;
}
