// Shard aggregation with ParallelMap — word-count-style rollups where each
// batch is one pipelined treap-map union with a value-merge function.
//
// Scenario: several shards each emit (term id, count) tallies; a central
// index folds them together. With the paper's treap union, folding a shard
// of m terms into an index of n terms is one O(lg n + lg m)-depth,
// O(m lg(n/m))-work batch instead of m pointwise updates — and duplicate
// terms are resolved by the merge function (here: +).
//
// Run: ./build/examples/shard_aggregate [--shards=8] [--terms=5000]
//                                       [--events=30000] [--threads=2]
#include <cstdio>
#include <map>
#include <vector>

#include "runtime/parallel_map.hpp"
#include "runtime/scheduler.hpp"
#include "support/cli.hpp"
#include "support/random.hpp"

using namespace pwf;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"shards", "8"},
                       {"terms", "5000"},
                       {"events", "30000"},
                       {"threads", "2"}});
  const auto shards = static_cast<std::size_t>(cli.get_int("shards"));
  const auto terms = static_cast<std::int64_t>(cli.get_int("terms"));
  const auto events = static_cast<std::size_t>(cli.get_int("events"));
  const auto threads = static_cast<unsigned>(cli.get_int("threads"));

  rt::Scheduler sched(threads);
  rt::ParallelMap<std::int64_t> index(sched);
  std::map<std::int64_t, std::int64_t> reference;
  const auto add = [](std::int64_t a, std::int64_t b) { return a + b; };

  Rng rng(123);
  std::printf("aggregating %zu shards x %zu events over %lld terms "
              "(%u workers)\n\n",
              shards, events, static_cast<long long>(terms), threads);
  std::printf("%6s %12s %14s\n", "shard", "batch terms", "index terms");

  for (std::size_t s = 0; s < shards; ++s) {
    // A shard's tally: Zipf-ish skew via squaring a uniform draw.
    std::vector<std::pair<std::int64_t, std::int64_t>> tally;
    for (std::size_t e = 0; e < events; ++e) {
      const double u = rng.uniform01();
      const auto term = static_cast<std::int64_t>(
          u * u * static_cast<double>(terms));
      tally.emplace_back(term, 1);
    }
    index.insert_batch(tally, add);
    for (const auto& [k, v] : tally) reference[k] += v;
    std::printf("%6zu %12zu %14zu\n", s, tally.size(), index.size());
  }

  // Verify: every term count matches the reference fold.
  const auto items = index.items();
  bool ok = items.size() == reference.size();
  std::int64_t total = 0;
  for (const auto& [k, v] : items) {
    ok &= reference[k] == v;
    total += v;
  }
  ok &= total == static_cast<std::int64_t>(shards * events);
  std::printf("\nfinal index: %zu terms, %lld total events — %s\n",
              items.size(), static_cast<long long>(total),
              ok ? "matches reference" : "MISMATCH");

  // Show the heaviest terms (the aggregation payoff).
  std::vector<std::pair<std::int64_t, std::int64_t>> top(items.begin(),
                                                         items.end());
  std::partial_sort(top.begin(), top.begin() + std::min<std::size_t>(5, top.size()),
                    top.end(), [](const auto& a, const auto& b) {
                      return a.second > b.second;
                    });
  std::printf("top terms:");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, top.size()); ++i)
    std::printf("  #%lld x%lld", static_cast<long long>(top[i].first),
                static_cast<long long>(top[i].second));
  std::printf("\n");
  return ok ? 0 : 1;
}
