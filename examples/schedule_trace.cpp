// Watching the Section-4 runtime schedule a computation, step by step.
//
// Traces a small pipelined merge, then replays its DAG on p simulated
// processors, printing a per-step timeline: how many actions ran, how many
// threads were live, and the running utilization. At p=1 the timeline is
// just the work; at larger p you can watch the pipeline fill (width grows),
// saturate (p actions per step), and drain (width < p near the end) — and
// the final step count land under the Lemma 4.1 bound w/p + d.
//
// Run: ./build/examples/schedule_trace [--n=64] [--p=8]
#include <algorithm>
#include <cstdio>
#include <deque>
#include <vector>

#include "costmodel/engine.hpp"
#include "sim/dag.hpp"
#include "support/cli.hpp"
#include "trees/merge.hpp"

using namespace pwf;

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"n", "64"}, {"p", "8"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto p = static_cast<std::size_t>(cli.get_int("p"));

  // Record the DAG of a pipelined merge of two n-key trees.
  cm::Engine eng(/*trace=*/true);
  trees::Store st(eng);
  std::vector<trees::Key> a, b;
  for (std::size_t i = 0; i < n; ++i) {
    a.push_back(static_cast<trees::Key>(2 * i));
    b.push_back(static_cast<trees::Key>(2 * i + 1));
  }
  trees::merge(st, st.input(st.build_balanced(a)),
               st.input(st.build_balanced(b)));

  sim::Dag dag(*eng.trace());
  std::printf("pipelined merge of 2 x %zu keys: w = %llu actions, "
              "d = %llu\n",
              n, static_cast<unsigned long long>(dag.work()),
              static_cast<unsigned long long>(dag.depth()));
  std::printf("greedy stack schedule on p = %zu processors "
              "(bound: w/p + d = %llu)\n\n",
              p,
              static_cast<unsigned long long>(dag.work() / p + dag.depth()));

  // Inline greedy schedule (same as sim::schedule) with a printed timeline.
  std::vector<std::uint32_t> pending(dag.num_actions());
  std::deque<std::uint32_t> active;
  for (std::uint32_t i = 0; i < dag.num_actions(); ++i) {
    pending[i] = dag.in_degree(i);
    if (pending[i] == 0) active.push_back(i);
  }
  std::printf("%6s %8s %8s %12s  timeline (one # per action run)\n", "step",
              "ran", "live", "utilization");
  std::uint64_t step = 0, executed = 0;
  while (!active.empty()) {
    const std::size_t live = active.size();
    const std::size_t m = std::min(live, p);
    // Remove the whole batch from the top of the stack *before* executing:
    // successors enabled during the step must not be picked up until the
    // next step, or the schedule stops being a valid parallel step (and the
    // greedy bound genuinely breaks — try it).
    std::vector<std::uint32_t> batch;
    for (std::size_t i = 0; i < m; ++i) {
      batch.push_back(active.back());
      active.pop_back();
    }
    for (const std::uint32_t act : batch) {
      ++executed;
      for (std::uint32_t s : dag.successors(act))
        if (--pending[s] == 0) active.push_back(s);
    }
    ++step;
    std::printf("%6llu %8zu %8zu %11.0f%%  ",
                static_cast<unsigned long long>(step), m, live,
                100.0 * static_cast<double>(m) / static_cast<double>(p));
    for (std::size_t i = 0; i < m; ++i) std::fputc('#', stdout);
    std::fputc('\n', stdout);
  }
  std::printf("\nfinished in %llu steps (%llu actions); bound was %llu — "
              "%s\n",
              static_cast<unsigned long long>(step),
              static_cast<unsigned long long>(executed),
              static_cast<unsigned long long>(dag.work() / p + dag.depth()),
              step <= dag.work() / p + dag.depth() ? "within Lemma 4.1"
                                                   : "VIOLATION");
  return 0;
}
