// Merging sorted event logs on the *real* coroutine futures runtime.
//
// Scenario: several shards each produce a time-sorted event log; we want one
// globally sorted index. Pairwise pipelined tree merges (Section 3.1 of the
// paper) combine the shards; every merge level starts consuming its inputs
// while they are still being produced — no barrier between levels. This is
// the same code shape as the cost-model version, but executing on the
// work-stealing scheduler with genuine suspension/reactivation.
//
// Run: ./build/examples/log_merge [--shards=8] [--events=20000] [--threads=2]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "runtime/rt_trees.hpp"
#include "runtime/scheduler.hpp"
#include "support/cli.hpp"
#include "support/random.hpp"

using namespace pwf;

int main(int argc, char** argv) {
  Cli cli(argc, argv,
          {{"shards", "8"}, {"events", "20000"}, {"threads", "2"}});
  const auto shards = static_cast<std::size_t>(cli.get_int("shards"));
  const auto events = static_cast<std::size_t>(cli.get_int("events"));
  const auto threads = static_cast<unsigned>(cli.get_int("threads"));

  // Each shard: a sorted stream of event timestamps (distinct — nanosecond
  // stamps with shard id in the low bits).
  Rng rng(7);
  std::vector<std::vector<std::int64_t>> logs(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    std::int64_t t = 0;
    for (std::size_t i = 0; i < events; ++i) {
      t += 1 + static_cast<std::int64_t>(rng.below(1000));
      logs[s].push_back(t * static_cast<std::int64_t>(shards) +
                        static_cast<std::int64_t>(s));
    }
  }

  rt::Scheduler sched(threads);
  rt::trees::Store store;

  // Tournament of pipelined merges.
  std::vector<rt::trees::Cell*> level;
  for (const auto& log : logs)
    level.push_back(store.input(store.build_balanced(log)));
  while (level.size() > 1) {
    std::vector<rt::trees::Cell*> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(rt::trees::merge(store, level[i], level[i + 1]));
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }

  const std::vector<std::int64_t> merged = rt::trees::wait_inorder(level[0]);

  // Verify against a flat sort.
  std::vector<std::int64_t> expected;
  for (const auto& log : logs)
    expected.insert(expected.end(), log.begin(), log.end());
  std::sort(expected.begin(), expected.end());

  std::printf("merged %zu shards x %zu events -> %zu entries on %u "
              "worker(s): %s\n",
              shards, events, merged.size(), threads,
              merged == expected ? "correct" : "MISMATCH");
  return merged == expected ? 0 : 1;
}
