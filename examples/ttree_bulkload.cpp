// Bulk-loading a 2-6 tree (Section 3.4): inserting a large sorted key batch
// as lg m pipelined waves, with per-wave statistics.
//
// Shows the γ-value behaviour of Theorem 3.13 concretely: each wave's root
// appears a constant number of DAG steps after the previous wave's root —
// the waves march down the tree one or two levels apart — so the total depth
// is O(lg n + lg m) rather than O(lg n · lg m).
//
// Run: ./build/examples/ttree_bulkload [--tree=100000] [--batch=4096]
#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "costmodel/engine.hpp"
#include "support/cli.hpp"
#include "support/random.hpp"
#include "ttree/insert.hpp"

using namespace pwf;

namespace {
std::vector<ttree::Key> draw(Rng& rng, std::size_t count) {
  std::set<ttree::Key> s;
  while (s.size() < count) s.insert(rng.range(0, 1 << 28));
  return {s.begin(), s.end()};
}
}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv, {{"tree", "100000"}, {"batch", "4096"}});
  const auto tree_n = static_cast<std::size_t>(cli.get_int("tree"));
  const auto batch = static_cast<std::size_t>(cli.get_int("batch"));

  Rng rng(42);
  const auto tree_keys = draw(rng, tree_n);
  const auto new_keys = draw(rng, batch);

  cm::Engine eng;
  ttree::Store store(eng);
  ttree::TCell* root = store.input(store.build(tree_keys, 3));

  std::printf("bulk load: %zu keys into a 2-6 tree of %zu keys "
              "(height %d)\n\n",
              batch, tree_n, ttree::height(ttree::peek(root)));
  std::printf("%6s %10s %16s %14s\n", "wave", "keys", "root published",
              "wave depth");

  // Drive the waves by hand (what bulk_insert does internally) so we can
  // report when each wave's root cell was written.
  std::size_t wave = 0;
  for (auto& level : ttree::level_arrays(new_keys)) {
    const std::size_t count = level.size();
    const auto keys = store.hold(std::move(level));
    ttree::TCell* out = store.cell();
    const cm::Time d0 = eng.depth();
    eng.fork([&] { ttree::insert_wave(store, root, keys, out); });
    std::printf("%6zu %10zu %16llu %14llu\n", wave++, count,
                static_cast<unsigned long long>(out->ts),
                static_cast<unsigned long long>(eng.depth() - d0));
    root = out;
  }

  const bool ok = ttree::validate(ttree::peek(root));
  std::vector<ttree::Key> got;
  ttree::collect_keys(ttree::peek(root), got);
  std::set<ttree::Key> ref(tree_keys.begin(), tree_keys.end());
  ref.insert(new_keys.begin(), new_keys.end());

  std::printf("\nfinal: %zu keys, height %d, invariants %s, contents %s\n",
              got.size(), ttree::height(ttree::peek(root)),
              ok ? "ok" : "VIOLATED",
              got == std::vector<ttree::Key>(ref.begin(), ref.end())
                  ? "correct"
                  : "MISMATCH");
  // Measured non-pipelined comparison (fresh engine, same inputs).
  {
    cm::Engine strict_eng;
    ttree::Store strict_store(strict_eng);
    ttree::bulk_insert_strict(strict_store,
                              strict_store.build(tree_keys, 3), new_keys);
    std::printf("total depth %llu pipelined vs %llu without pipelining "
                "(%.1fx)\n",
                static_cast<unsigned long long>(eng.depth()),
                static_cast<unsigned long long>(strict_eng.depth()),
                static_cast<double>(strict_eng.depth()) /
                    static_cast<double>(eng.depth()));
  }
  return ok ? 0 : 1;
}
