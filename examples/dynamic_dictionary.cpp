// Dynamic dictionary — the workload the paper's treap sections are for:
// maintaining a key set under *batch* inserts and deletes, each batch
// applied as one parallel union (Figure 4) or difference (Figure 7) instead
// of m sequential updates.
//
// A session-store scenario: each round, a batch of new session ids is
// admitted (union) and a batch of expired ids is evicted (difference). Each
// round runs in a fresh cost-model engine so its critical-path depth is
// measured in isolation, and is compared with what m one-at-a-time updates
// would cost (m * lg n) — the gap is what the logarithmic batch depth buys.
//
// Run: ./build/examples/dynamic_dictionary [--rounds=8] [--batch=2000]
#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "costmodel/engine.hpp"
#include "support/cli.hpp"
#include "support/random.hpp"
#include "treap/setops.hpp"

using namespace pwf;

namespace {

std::vector<treap::Key> draw(Rng& rng, std::size_t count,
                             std::int64_t universe) {
  std::set<treap::Key> s;
  while (s.size() < count) s.insert(rng.range(0, universe));
  return {s.begin(), s.end()};
}

struct BatchStats {
  double depth;
  double work;
};

// Applies one batch op in a fresh engine; updates `live` in place.
template <typename Op>
BatchStats apply_batch(std::vector<treap::Key>& live,
                       const std::vector<treap::Key>& batch, Op op) {
  cm::Engine eng;
  treap::Store store(eng);
  treap::TreapCell* dict = store.input(store.build(live));
  treap::TreapCell* other = store.input(store.build(batch));
  treap::TreapCell* out = op(store, dict, other);
  live.clear();
  treap::collect_inorder(treap::peek(out), live);
  return {static_cast<double>(eng.depth()),
          static_cast<double>(eng.work())};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv,
          {{"rounds", "8"}, {"batch", "2000"}, {"initial", "100000"}});
  const int rounds = static_cast<int>(cli.get_int("rounds"));
  const auto batch = static_cast<std::size_t>(cli.get_int("batch"));
  const auto initial = static_cast<std::size_t>(cli.get_int("initial"));

  Rng rng(2026);
  std::vector<treap::Key> live = draw(rng, initial, 1 << 26);
  std::set<treap::Key> reference(live.begin(), live.end());

  std::printf("dynamic dictionary: %zu initial keys, %d rounds of "
              "+%zu / -%zu\n\n",
              initial, rounds, batch, batch / 2);
  std::printf("%5s %10s %10s %12s %12s %14s %10s\n", "round", "size",
              "batch op", "batch depth", "batch work", "one-at-a-time",
              "speedup");

  for (int round = 0; round < rounds; ++round) {
    // Admit a batch of new sessions.
    {
      const auto admitted = draw(rng, batch, 1 << 26);
      const BatchStats s =
          apply_batch(live, admitted, [](treap::Store& st, auto* a, auto* b) {
            return treap::union_treaps(st, a, b);
          });
      reference.insert(admitted.begin(), admitted.end());
      const double serial = static_cast<double>(batch) *
                            std::log2(static_cast<double>(reference.size()));
      std::printf("%5d %10zu %10s %12.0f %12.0f %14.0f %9.1fx\n", round,
                  reference.size(), "union", s.depth, s.work, serial,
                  serial / s.depth);
    }
    // Evict half a batch of expired sessions (drawn from the live set).
    {
      std::set<treap::Key> pick;
      while (pick.size() < batch / 2)
        pick.insert(live[rng.below(live.size())]);
      const std::vector<treap::Key> expired(pick.begin(), pick.end());
      const BatchStats s =
          apply_batch(live, expired, [](treap::Store& st, auto* a, auto* b) {
            return treap::diff_treaps(st, a, b);
          });
      for (treap::Key k : expired) reference.erase(k);
      const double serial = static_cast<double>(expired.size()) *
                            std::log2(static_cast<double>(reference.size()));
      std::printf("%5d %10zu %10s %12.0f %12.0f %14.0f %9.1fx\n", round,
                  reference.size(), "diff", s.depth, s.work, serial,
                  serial / s.depth);
    }
  }

  const bool ok =
      live == std::vector<treap::Key>(reference.begin(), reference.end());
  std::printf("\nfinal dictionary: %zu keys — %s\n", live.size(),
              ok ? "matches reference set" : "MISMATCH");
  return ok ? 0 : 1;
}
