// I/O reactor and awaiter tests: timer semantics (ordering, cancellation,
// zero/negative durations), fd parks, the reactor→scheduler wake path, the
// parked-fibers-consume-no-worker-CPU guarantee, and shutdown with
// in-flight parks. Suites are named to match the tsan preset's test filter
// (Rt[A-Za-z]+ / Scheduler), so the racing tests run under tsan in CI.
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/future.hpp"
#include "runtime/io_awaiter.hpp"
#include "runtime/io_reactor.hpp"
#include "runtime/parallel_map.hpp"
#include "runtime/parallel_set.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/sharded_map.hpp"

namespace {

using namespace pwf::rt;
using namespace std::chrono_literals;

// Spin until a relaxed-ish condition holds, with a hard deadline so a hung
// reactor fails the test instead of wedging the suite.
template <typename F>
bool eventually(F&& cond, std::chrono::milliseconds limit = 5s) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

Fiber sleeper(IoReactor* r, std::chrono::milliseconds d, const void* tag,
              std::atomic<int>* fired, std::atomic<int>* cancelled,
              FutCell<int>* done) {
  const bool ok = co_await sleep_for(*r, d, tag);
  (ok ? fired : cancelled)->fetch_add(1, std::memory_order_acq_rel);
  if (done != nullptr) done->write(1);
}

Fiber ordered_sleeper(IoReactor* r, std::chrono::steady_clock::time_point tp,
                      int id, std::mutex* mu, std::vector<int>* order,
                      std::atomic<int>* remaining) {
  const bool ok = co_await sleep_until(*r, tp);
  EXPECT_TRUE(ok);
  {
    std::lock_guard<std::mutex> lk(*mu);
    order->push_back(id);
  }
  remaining->fetch_sub(1, std::memory_order_acq_rel);
}

TEST(RtIoTimer, SleepForOrderingUnderConcurrentTimers) {
  Scheduler sched(2);
  IoReactor& r = sched.reactor();
  constexpr int kTimers = 6;
  std::mutex mu;
  std::vector<int> order;
  std::atomic<int> remaining{kTimers};
  // Deadlines 25 ms apart (generous against scheduler jitter), registered
  // in reverse so FIFO registration order cannot mask deadline order.
  const auto base = std::chrono::steady_clock::now() + 30ms;
  for (int i = kTimers - 1; i >= 0; --i)
    spawn(ordered_sleeper(&r, base + i * 25ms, i, &mu, &order, &remaining));
  ASSERT_TRUE(eventually([&] { return remaining.load() == 0; }, 10s));
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kTimers));
  for (int i = 0; i < kTimers; ++i) EXPECT_EQ(order[i], i);
  const Scheduler::Stats st = sched.stats();
  EXPECT_EQ(st.timer_fires, static_cast<std::uint64_t>(kTimers));
  EXPECT_EQ(st.timer_cancels, 0u);
  EXPECT_GE(st.io_parks, static_cast<std::uint64_t>(kTimers));
  EXPECT_GE(st.io_wakeups, static_cast<std::uint64_t>(kTimers));
}

TEST(RtIoTimer, CancelBeforeFire) {
  Scheduler sched(1);
  IoReactor& r = sched.reactor();
  const int tag = 0;
  std::atomic<int> fired{0}, cancelled{0};
  FutCell<int> done;
  spawn(sleeper(&r, std::chrono::milliseconds(10 * 60 * 1000), &tag, &fired,
                &cancelled, &done));
  // io_parks is counted after the park command is enqueued, so once it is
  // visible the cancel below is ordered after the registration.
  ASSERT_TRUE(eventually([&] { return sched.stats().io_parks >= 1; }));
  r.cancel(&tag);
  done.wait_blocking();
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(cancelled.load(), 1);
  const Scheduler::Stats st = sched.stats();
  EXPECT_EQ(st.timer_cancels, 1u);
  EXPECT_EQ(st.timer_fires, 0u);
}

TEST(RtIoTimer, CancelAfterFireIsANoop) {
  Scheduler sched(1);
  IoReactor& r = sched.reactor();
  const int tag = 0;
  std::atomic<int> fired{0}, cancelled{0};
  FutCell<int> done;
  spawn(sleeper(&r, 5ms, &tag, &fired, &cancelled, &done));
  done.wait_blocking();
  r.cancel(&tag);  // nothing carries the tag anymore
  // Give the cancel command a pass through the loop before asserting.
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(cancelled.load(), 0);
  const Scheduler::Stats st = sched.stats();
  EXPECT_EQ(st.timer_fires, 1u);
  EXPECT_EQ(st.timer_cancels, 0u);
}

TEST(RtIoTimer, ZeroAndNegativeDurationsFireImmediately) {
  Scheduler sched(1);
  IoReactor& r = sched.reactor();
  std::atomic<int> fired{0}, cancelled{0};
  FutCell<int> d0, d1;
  spawn(sleeper(&r, 0ms, nullptr, &fired, &cancelled, &d0));
  spawn(sleeper(&r, -50ms, nullptr, &fired, &cancelled, &d1));
  d0.wait_blocking();
  d1.wait_blocking();
  EXPECT_EQ(fired.load(), 2);  // an elapsed deadline fires, never cancels
  EXPECT_EQ(cancelled.load(), 0);
  EXPECT_EQ(sched.stats().timer_fires, 2u);
}

// Acceptance criterion: a fiber parked in the reactor costs the workers
// nothing — no resumptions, no steal attempts' successes, no serial
// cutoffs — until the deadline fires.
TEST(RtIoTimer, ParkedFibersConsumeNoWorkerCpu) {
  Scheduler sched(2);
  IoReactor& r = sched.reactor();
  std::atomic<int> fired{0}, cancelled{0};
  FutCell<int> done;
  spawn(sleeper(&r, 400ms, nullptr, &fired, &cancelled, &done));
  ASSERT_TRUE(eventually([&] { return sched.stats().io_parks >= 1; }));
  const Scheduler::Stats before = sched.stats();
  std::this_thread::sleep_for(200ms);
  const Scheduler::Stats after = sched.stats();
  EXPECT_EQ(after.resumed, before.resumed);
  EXPECT_EQ(after.steals, before.steals);
  EXPECT_EQ(after.serial_cutoffs, before.serial_cutoffs);
  EXPECT_EQ(after.io_wakeups, before.io_wakeups);
  done.wait_blocking();
  EXPECT_EQ(fired.load(), 1);
}

Fiber fd_reader(IoReactor* r, int fd, std::atomic<std::uint32_t>* got,
                std::atomic<int>* bytes, FutCell<int>* done) {
  const std::uint32_t ev = co_await wait_readable(*r, fd);
  got->store(ev, std::memory_order_release);
  if (ev & IoReactor::kReadable) {
    char buf[64];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    bytes->store(static_cast<int>(n), std::memory_order_release);
  }
  if (done != nullptr) done->write(1);
}

TEST(RtIoFd, WaitReadableDeliversData) {
  Scheduler sched(2);
  IoReactor& r = sched.reactor();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv), 0);
  std::atomic<std::uint32_t> got{0};
  std::atomic<int> bytes{0};
  FutCell<int> done;
  spawn(fd_reader(&r, sv[0], &got, &bytes, &done));
  ASSERT_TRUE(eventually([&] { return sched.stats().io_parks >= 1; }));
  ASSERT_EQ(::send(sv[1], "ping", 4, 0), 4);
  done.wait_blocking();
  EXPECT_TRUE(got.load() & IoReactor::kReadable);
  EXPECT_EQ(bytes.load(), 4);
  ::close(sv[0]);
  ::close(sv[1]);
}

Fiber fd_write_then_read(IoReactor* r, int fd, std::atomic<int>* stage,
                         FutCell<int>* done) {
  // First park: the socket's send buffer is empty, so writable fires at
  // once. Second park on the SAME fd exercises the one-shot re-arm path
  // (epoll_ctl ADD → EEXIST → MOD).
  const std::uint32_t w = co_await wait_writable(*r, fd);
  EXPECT_TRUE(w & IoReactor::kWritable);
  stage->store(1, std::memory_order_release);
  const std::uint32_t rd = co_await wait_readable(*r, fd);
  EXPECT_TRUE(rd & IoReactor::kReadable);
  char buf[8];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 2);
  stage->store(2, std::memory_order_release);
  done->write(1);
}

TEST(RtIoFd, OneShotReparkOnSameFd) {
  Scheduler sched(2);
  IoReactor& r = sched.reactor();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv), 0);
  std::atomic<int> stage{0};
  FutCell<int> done;
  spawn(fd_write_then_read(&r, sv[0], &stage, &done));
  ASSERT_TRUE(eventually([&] { return stage.load() == 1; }));
  ASSERT_EQ(::send(sv[1], "ok", 2, 0), 2);
  done.wait_blocking();
  EXPECT_EQ(stage.load(), 2);
  ::close(sv[0]);
  ::close(sv[1]);
}

// Scheduler shutdown with fibers still parked on an fd that never becomes
// ready and a timer that never fires: the reactor's shutdown drain must
// resume both with the cancelled result, leak-free (asan) and race-free
// (tsan) — the acceptance criterion for shutdown ordering.
TEST(RtIoFd, ShutdownWithInflightParksResumesCancelled) {
  std::atomic<std::uint32_t> got{0xdead};
  std::atomic<int> bytes{-1};
  std::atomic<int> fired{0}, cancelled{0};
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv), 0);
  {
    Scheduler sched(2);
    IoReactor& r = sched.reactor();
    spawn(fd_reader(&r, sv[0], &got, &bytes, nullptr));
    spawn(sleeper(&r, std::chrono::milliseconds(10 * 60 * 1000), nullptr,
                  &fired, &cancelled, nullptr));
    ASSERT_TRUE(eventually([&] { return sched.stats().io_parks >= 2; }));
    // ~Scheduler tears the reactor down first; both fibers run to
    // completion on the reactor thread before the workers stop, so the
    // stores to the atomics above cannot be dropped.
  }
  EXPECT_EQ(got.load(), 0u);  // cancelled, not readable
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(cancelled.load(), 1);
  ::close(sv[0]);
  ::close(sv[1]);
}

// A fiber that parks after the reactor has begun shutting down must not
// suspend: park_* returns false and the fiber continues with the
// cancelled result (exercised by the drain resuming `chained_sleeper`,
// whose second sleep hits the stopped reactor).
Fiber chained_sleeper(IoReactor* r, std::atomic<int>* states) {
  const bool first = co_await sleep_for(*r, std::chrono::hours(1));
  states->fetch_add(first ? 100 : 1, std::memory_order_acq_rel);
  const bool second = co_await sleep_for(*r, 1ms);
  states->fetch_add(second ? 100 : 1, std::memory_order_acq_rel);
}

TEST(RtIoFd, ParkDuringShutdownFailsFast) {
  std::atomic<int> states{0};
  {
    Scheduler sched(1);
    IoReactor& r = sched.reactor();
    spawn(chained_sleeper(&r, &states));
    ASSERT_TRUE(eventually([&] { return sched.stats().io_parks >= 1; }));
  }
  // Both awaits resolved cancelled: the first via the drain, the second
  // via the stopped-reactor fast path, all on the reactor thread.
  EXPECT_EQ(states.load(), 2);
}

Fiber yo_yo(IoReactor* r, int rounds, std::atomic<int>* hops,
            std::atomic<int>* remaining) {
  for (int i = 0; i < rounds; ++i) {
    const bool ok = co_await sleep_for(*r, std::chrono::microseconds(200));
    if (ok) hops->fetch_add(1, std::memory_order_acq_rel);
  }
  remaining->fetch_sub(1, std::memory_order_acq_rel);
}

// tsan target: a storm of short timers makes the reactor thread repost
// through the inject ring while all workers race pops and steals against
// it — the satellite's "reactor reposts vs worker-local pops" race.
TEST(RtIoReactor, ReactorRepostsRaceWorkerPops) {
  Scheduler sched(4);
  IoReactor& r = sched.reactor();
  constexpr int kFibers = 48;
  constexpr int kRounds = 6;
  std::atomic<int> hops{0};
  std::atomic<int> remaining{kFibers};
  for (int i = 0; i < kFibers; ++i)
    spawn(yo_yo(&r, kRounds, &hops, &remaining));
  ASSERT_TRUE(eventually([&] { return remaining.load() == 0; }, 30s));
  EXPECT_EQ(hops.load(), kFibers * kRounds);
  const Scheduler::Stats st = sched.stats();
  EXPECT_EQ(st.timer_fires, static_cast<std::uint64_t>(kFibers * kRounds));
  EXPECT_GE(st.io_wakeups, st.timer_fires);
}

// Satellite regression: a post from the reactor (a non-worker thread) must
// take the fence-audited wake path even when the lone worker is parked —
// every one of these sequential sleeps requires reactor-post → worker-wake
// to complete, so a lost wake would stall a round for the full test.
TEST(Scheduler, ExternalPostFromReactorWakesWorker) {
  Scheduler sched(1);
  IoReactor& r = sched.reactor();
  constexpr int kRounds = 40;
  std::atomic<int> fired{0}, cancelled{0};
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kRounds; ++i) {
    FutCell<int> done;
    spawn(sleeper(&r, 2ms, nullptr, &fired, &cancelled, &done));
    done.wait_blocking();
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(fired.load(), kRounds);
  EXPECT_EQ(cancelled.load(), 0);
  // 40 × 2 ms of sleeping plus scheduling overhead; far below this bound
  // unless wakes are being lost. The worker idle-parks between rounds, so
  // the reactor's posts must have found parked_ != 0 at least once.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed),
            5s);
  EXPECT_GE(sched.stats().wakeups, 1u);
}

// ---- async facade hooks (on_flush / probe_into) ---------------------------

Fiber await_done_then(FutCell<int>* done, std::atomic<int>* flag) {
  const int v = co_await *done;
  flag->store(v, std::memory_order_release);
}

TEST(RtAsyncService, MapOnFlushCertifiesQuiescence) {
  Scheduler sched(2);
  ParallelMap<std::int64_t> m(sched);
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t i = 0; i < 3000; ++i) items.emplace_back(i, i * 3);
  const auto add = [](std::int64_t a, std::int64_t b) { return a + b; };
  m.insert_batch(std::span<const std::pair<std::int64_t, std::int64_t>>(
                     items.data(), 1500),
                 add);
  m.insert_batch(std::span<const std::pair<std::int64_t, std::int64_t>>(
                     items.data() + 1500, 1500),
                 add);
  FutCell<int> done;
  m.on_flush(done);
  std::atomic<int> flag{0};
  spawn(await_done_then(&done, &flag));  // a fiber can await it...
  EXPECT_EQ(done.wait_blocking(), 1);    // ...and so can a thread
  ASSERT_TRUE(eventually([&] { return flag.load() == 1; }));
  // Quiesced: every key is present with its value.
  for (std::int64_t i = 0; i < 3000; i += 271)
    EXPECT_EQ(m.get(i), std::optional<std::int64_t>(i * 3));
  EXPECT_EQ(m.size(), 3000u);
}

TEST(RtAsyncService, SetOnFlushCertifiesQuiescence) {
  Scheduler sched(2);
  ParallelSet s(sched);
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 2048; ++i) keys.push_back(i * 7);
  s.insert_batch(keys);
  FutCell<int> done;
  s.on_flush(done);
  EXPECT_EQ(done.wait_blocking(), 1);
  EXPECT_EQ(s.size(), 2048u);
  EXPECT_TRUE(s.contains(7 * 100));
}

Fiber probe_and_record(ParallelMap<std::int64_t>* m, std::int64_t k,
                       FutCell<rtasync::Probe<std::int64_t>>* cell,
                       std::atomic<std::int64_t>* value,
                       std::atomic<int>* found, FutCell<int>* done) {
  m->probe_into(k, *cell);
  const rtasync::Probe<std::int64_t> p = co_await *cell;
  value->store(p.value, std::memory_order_release);
  found->store(p.found ? 1 : 0, std::memory_order_release);
  done->write(1);
}

TEST(RtAsyncService, ProbeIntoPipelinesWithChainedBatches) {
  Scheduler sched(2);
  ParallelMap<std::int64_t> m(sched);
  const auto add = [](std::int64_t a, std::int64_t b) { return a + b; };
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t i = 0; i < 4096; ++i) items.emplace_back(i, i + 1);
  m.insert_batch(
      std::span<const std::pair<std::int64_t, std::int64_t>>(items), add);
  // Probe while the batch may still be materializing: the walk must park
  // on unwritten cells, not miss the chained insert.
  FutCell<rtasync::Probe<std::int64_t>> hit_cell, miss_cell;
  std::atomic<std::int64_t> hit_v{-1}, miss_v{-1};
  std::atomic<int> hit_f{-1}, miss_f{-1};
  FutCell<int> d0, d1;
  spawn(probe_and_record(&m, 1234, &hit_cell, &hit_v, &hit_f, &d0));
  spawn(probe_and_record(&m, 999999, &miss_cell, &miss_v, &miss_f, &d1));
  d0.wait_blocking();
  d1.wait_blocking();
  EXPECT_EQ(hit_f.load(), 1);
  EXPECT_EQ(hit_v.load(), 1235);
  EXPECT_EQ(miss_f.load(), 0);
}

TEST(RtAsyncService, ShardedOnFlushAndProbe) {
  Scheduler sched(2);
  ShardedParallelMap<std::int64_t> m(sched, 4);
  const auto add = [](std::int64_t a, std::int64_t b) { return a + b; };
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t i = -2000; i < 2000; ++i) items.emplace_back(i * 31, i);
  m.insert_batch(
      std::span<const std::pair<std::int64_t, std::int64_t>>(items), add);
  FutCell<int> done;
  m.on_flush(done);
  EXPECT_EQ(done.wait_blocking(), 1);
  EXPECT_EQ(m.size(), 4000u);
  FutCell<rtasync::Probe<std::int64_t>> cell;
  m.probe_into(-31 * 1999, cell);
  const rtasync::Probe<std::int64_t> p = cell.wait_blocking();
  EXPECT_TRUE(p.found);
  EXPECT_EQ(p.value, -1999);
}

}  // namespace
