// Recorded cost-model counts for the paper's experiment workloads (E1–E6
// plus the sorting/pipeline algorithms). The depth/work numbers below were
// captured from the engine before the algorithm bodies moved into the
// shared src/pipelined templates; the refactor must keep the measured DAG
// bit-identical, so these act as a regression seal on the cost model.
//
// Every workload is deterministic (fixed Rng seeds); each runs in a fresh
// engine so the counts are absolute, not cumulative.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "algos/mergesort.hpp"
#include "algos/producer_consumer.hpp"
#include "algos/quicksort.hpp"
#include "costmodel/engine.hpp"
#include "support/random.hpp"
#include "treap/setops.hpp"
#include "trees/merge.hpp"
#include "trees/rebalance.hpp"
#include "ttree/insert.hpp"

namespace pwf {
namespace {

std::vector<std::int64_t> random_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::set<std::int64_t> s;
  while (s.size() < n) s.insert(rng.range(0, 1 << 20));
  return {s.begin(), s.end()};
}

struct Counts {
  cm::Time depth;
  std::uint64_t work;
};

bool operator==(const Counts& a, const Counts& b) {
  return a.depth == b.depth && a.work == b.work;
}

std::ostream& operator<<(std::ostream& os, const Counts& c) {
  return os << "{" << c.depth << "u, " << c.work << "u}";
}

Counts counts_of(const cm::Engine& eng) { return {eng.depth(), eng.work()}; }

// ---- E1/E2: tree merge, pipelined and strict -------------------------------

Counts run_merge() {
  cm::Engine eng;
  trees::Store st(eng);
  const auto a = random_keys(2000, 11);
  const auto b = random_keys(1000, 12);
  trees::TreeCell* out = trees::merge(st, st.input(st.build_balanced(a)),
                                      st.input(st.build_balanced(b)));
  (void)trees::peek(out);
  return counts_of(eng);
}

Counts run_merge_strict() {
  cm::Engine eng;
  trees::Store st(eng);
  const auto a = random_keys(2000, 11);
  const auto b = random_keys(1000, 12);
  (void)trees::merge_strict(st, st.build_balanced(a), st.build_balanced(b));
  return counts_of(eng);
}

// ---- E3/E4: treap union, pipelined and strict ------------------------------

std::pair<std::vector<std::int64_t>, std::vector<std::int64_t>>
union_inputs() {
  auto a = random_keys(2000, 21);
  auto b = random_keys(1500, 22);
  for (std::size_t i = 0; i < 400; ++i) b[i] = a[i * 2];  // force overlap
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  return {a, b};
}

Counts run_union() {
  cm::Engine eng;
  treap::Store st(eng);
  const auto [a, b] = union_inputs();
  treap::TreapCell* out =
      treap::union_treaps(st, st.input(st.build(a)), st.input(st.build(b)));
  (void)treap::peek(out);
  return counts_of(eng);
}

Counts run_union_strict() {
  cm::Engine eng;
  treap::Store st(eng);
  const auto [a, b] = union_inputs();
  (void)treap::union_strict(st, st.build(a), st.build(b));
  return counts_of(eng);
}

// ---- E5: treap difference (and intersection, same pipeline family) ---------

Counts run_diff() {
  cm::Engine eng;
  treap::Store st(eng);
  const auto [a, b] = union_inputs();
  treap::TreapCell* out =
      treap::diff_treaps(st, st.input(st.build(a)), st.input(st.build(b)));
  (void)treap::peek(out);
  return counts_of(eng);
}

Counts run_intersect() {
  cm::Engine eng;
  treap::Store st(eng);
  const auto [a, b] = union_inputs();
  treap::TreapCell* out = treap::intersect_treaps(st, st.input(st.build(a)),
                                                  st.input(st.build(b)));
  (void)treap::peek(out);
  return counts_of(eng);
}

// ---- E6: 2-6 tree bulk insert ----------------------------------------------

Counts run_ttree() {
  cm::Engine eng;
  ttree::Store st(eng);
  const auto base = random_keys(1500, 31);
  auto keys = random_keys(700, 32);
  ttree::TCell* out =
      ttree::bulk_insert(st, st.input(st.build(base, 3)), keys);
  (void)ttree::peek(out);
  return counts_of(eng);
}

// ---- sorting / pipeline algorithms (E7/E8/E11/E12 guards) ------------------

Counts run_mergesort() {
  cm::Engine eng;
  trees::Store st(eng);
  Rng rng(41);
  std::vector<std::int64_t> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.range(-1000, 1000));
  trees::TreeCell* out = algos::mergesort(st, v);
  (void)trees::peek(out);
  return counts_of(eng);
}

Counts run_mergesort_balanced() {
  cm::Engine eng;
  trees::Store st(eng);
  Rng rng(42);
  std::vector<std::int64_t> v;
  for (int i = 0; i < 512; ++i) v.push_back(rng.range(-1000, 1000));
  trees::TreeCell* out = algos::mergesort_balanced(st, v);
  (void)trees::peek(out);
  return counts_of(eng);
}

Counts run_rebalance() {
  cm::Engine eng;
  trees::Store st(eng);
  const auto a = random_keys(1200, 43);
  const auto b = random_keys(400, 44);
  trees::TreeCell* merged = trees::merge(st, st.input(st.build_balanced(a)),
                                         st.input(st.build_balanced(b)));
  trees::TreeCell* out = trees::rebalance(st, merged);
  (void)trees::peek(out);
  return counts_of(eng);
}

Counts run_quicksort() {
  cm::Engine eng;
  algos::ListStore st(eng);
  Rng rng(51);
  std::vector<std::int64_t> v;
  for (int i = 0; i < 600; ++i) v.push_back(rng.range(-5000, 5000));
  algos::ListCell* out = algos::quicksort(st, v);
  (void)algos::peek_list(out);
  return counts_of(eng);
}

Counts run_producer_consumer() {
  cm::Engine eng;
  algos::ListStore st(eng);
  (void)algos::produce_consume(st, 500);
  return counts_of(eng);
}

struct Workload {
  const char* name;
  Counts (*run)();
  Counts expected;
};

// Captured at the commit preceding the src/pipelined refactor.
const Workload kWorkloads[] = {
    {"merge", run_merge, {80u, 26051u}},
    {"merge_strict", run_merge_strict, {116u, 10630u}},
    {"union", run_union, {169u, 35659u}},
    {"union_strict", run_union_strict, {277u, 13386u}},
    {"diff", run_diff, {159u, 39098u}},
    {"intersect", run_intersect, {272u, 45103u}},
    {"ttree_insert", run_ttree, {252u, 21935u}},
    {"mergesort", run_mergesort, {213u, 89965u}},
    {"mergesort_balanced", run_mergesort_balanced, {1013u, 134796u}},
    {"rebalance", run_rebalance, {340u, 46617u}},
    {"quicksort", run_quicksort, {1858u, 22720u}},
    {"producer_consumer", run_producer_consumer, {505u, 1506u}},
};

TEST(RecordedCounts, MatchPreRefactorValues) {
  for (const Workload& w : kWorkloads) {
    const Counts got = w.run();
    EXPECT_EQ(got, w.expected) << w.name << " -> " << got;
  }
}

}  // namespace
}  // namespace pwf
