// Unit tests for the Section-2 cost model engine: that fork/touch/write
// produce exactly the DAG timestamps of the paper's model.
#include <gtest/gtest.h>

#include "costmodel/engine.hpp"

namespace pwf::cm {
namespace {

TEST(Engine, StartsAtZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0u);
  EXPECT_EQ(eng.depth(), 0u);
  EXPECT_EQ(eng.work(), 0u);
}

TEST(Engine, StepAdvancesClockAndWork) {
  Engine eng;
  eng.step();
  EXPECT_EQ(eng.now(), 1u);
  EXPECT_EQ(eng.work(), 1u);
  eng.steps(5);
  EXPECT_EQ(eng.now(), 6u);
  EXPECT_EQ(eng.work(), 6u);
  EXPECT_EQ(eng.depth(), 6u);
}

TEST(Engine, WriteStampsCell) {
  Engine eng;
  eng.steps(3);
  auto* c = eng.new_cell<int>();
  eng.write(c, 42);
  EXPECT_TRUE(c->written);
  EXPECT_EQ(c->value, 42);
  EXPECT_EQ(c->ts, 4u);  // the write is itself an action
}

TEST(Engine, TouchWaitsForWriter) {
  Engine eng;
  auto* c = eng.new_cell<int>();
  // Child thread computes for 10 steps then writes.
  eng.fork([&] {
    eng.steps(10);
    eng.write(c, 7);
  });
  // Parent clock is only past the fork (1 action); touching jumps it past
  // the write (the data edge).
  EXPECT_EQ(eng.now(), 1u);
  const int v = eng.touch(c);
  EXPECT_EQ(v, 7);
  EXPECT_EQ(eng.now(), 13u);  // fork=1, child 1+10 steps +1 write=12, +1 touch
}

TEST(Engine, TouchOfAvailableValueCostsOneAction) {
  Engine eng;
  auto* c = eng.input_cell<int>(5);
  eng.steps(20);
  const Time before = eng.now();
  EXPECT_EQ(eng.touch(c), 5);
  EXPECT_EQ(eng.now(), before + 1);
}

TEST(Engine, ForkReturnsImmediately) {
  Engine eng;
  eng.fork([&] { eng.steps(1000); });
  EXPECT_EQ(eng.now(), 1u);        // parent paid only the fork action
  EXPECT_EQ(eng.depth(), 1001u);   // child work shows up in global depth
  EXPECT_EQ(eng.work(), 1001u);
}

TEST(Engine, ChildStartsAtForkTimePlusOne) {
  Engine eng;
  eng.steps(4);
  Time child_first = 0;
  eng.fork([&] {
    eng.step();
    child_first = eng.now();
  });
  EXPECT_EQ(child_first, 6u);  // fork action at 5, first child action at 6
}

TEST(Engine, ForkValueConvenience) {
  Engine eng;
  auto* c = eng.fork_value([&] {
    eng.steps(3);
    return 99;
  });
  EXPECT_EQ(eng.touch(c), 99);
}

TEST(Engine, PipelineOverlapsProducersAndConsumers) {
  // Producer writes two cells at very different times; a consumer that only
  // needs the early cell is not delayed by the late one.
  Engine eng;
  auto* early = eng.new_cell<int>();
  auto* late = eng.new_cell<int>();
  eng.fork([&] {
    eng.write(early, 1);
    eng.steps(100);
    eng.write(late, 2);
  });
  EXPECT_EQ(eng.touch(early), 1);
  EXPECT_LT(eng.now(), 10u);
  EXPECT_EQ(eng.touch(late), 2);
  EXPECT_GT(eng.now(), 100u);
}

TEST(Engine, ForkJoinWaitsForBothChildren) {
  Engine eng;
  auto [a, b] = eng.fork_join2(
      [&] {
        eng.steps(50);
        return 1;
      },
      [&] {
        eng.steps(5);
        return 2;
      });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  // Join is bounded below by the slower child: 1 fork + 50 steps + 1 join.
  EXPECT_EQ(eng.now(), 52u);
}

TEST(Engine, ForkJoinDepthIsMaxNotSum) {
  Engine eng;
  eng.fork_join2(
      [&] {
        eng.steps(30);
        return 0;
      },
      [&] {
        eng.steps(30);
        return 0;
      });
  EXPECT_EQ(eng.now(), 32u);    // not 62: the children overlap
  EXPECT_EQ(eng.work(), 62u);   // but both are paid for in work
}

TEST(Engine, NestedForkJoinComposes) {
  Engine eng;
  eng.fork_join2(
      [&] {
        eng.fork_join2([&] { eng.steps(10); return 0; },
                       [&] { eng.steps(10); return 0; });
        return 0;
      },
      [&] {
        eng.steps(4);
        return 0;
      });
  EXPECT_EQ(eng.now(), 14u);  // 2 forks + 10 + 2 joins
}

TEST(Engine, LinearityCountersTrackRereads) {
  Engine eng;
  auto* c = eng.input_cell<int>(1);
  EXPECT_EQ(eng.max_cell_reads(), 0u);
  eng.touch(c);
  EXPECT_EQ(eng.max_cell_reads(), 1u);
  EXPECT_EQ(eng.nonlinear_reads(), 0u);
  eng.touch(c);
  EXPECT_EQ(eng.max_cell_reads(), 2u);
  EXPECT_EQ(eng.nonlinear_reads(), 1u);
}

TEST(EngineDeath, DoubleWriteAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Engine eng;
  auto* c = eng.new_cell<int>();
  eng.write(c, 1);
  EXPECT_DEATH(eng.write(c, 2), "written twice");
}

TEST(EngineDeath, TouchOfUnwrittenCellAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Engine eng;
  auto* c = eng.new_cell<int>();
  EXPECT_DEATH(eng.touch(c), "unwritten");
}

TEST(Engine, ArrayOpHasConstantDepthLinearWork) {
  Engine eng;
  const Time t0 = eng.now();
  const std::uint64_t w0 = eng.work();
  eng.array_op(1000);
  EXPECT_LE(eng.now() - t0, 3u);
  EXPECT_GE(eng.work() - w0, 1000u);
}

TEST(Engine, PresetCellAvailableAtTimeZero) {
  Engine eng;
  Cell<int> c;
  Engine::preset(c, 11);
  EXPECT_TRUE(c.written);
  EXPECT_EQ(c.ts, 0u);
  EXPECT_EQ(eng.touch(&c), 11);
}

TEST(Engine, WaitStatsProfileDataEdges) {
  Engine eng;
  auto* c = eng.new_cell<int>();
  eng.fork([&] {
    eng.steps(20);
    eng.write(c, 1);
  });
  EXPECT_EQ(eng.wait_stats().touches, 0u);
  eng.touch(c);  // waits ~20
  EXPECT_EQ(eng.wait_stats().touches, 1u);
  EXPECT_EQ(eng.wait_stats().suspensions, 1u);
  EXPECT_EQ(eng.wait_stats().max_wait, 21u);  // child wrote at 22, clock was 1
  auto* ready = eng.input_cell<int>(2);
  eng.touch(ready);  // no wait: value from time 0
  EXPECT_EQ(eng.wait_stats().touches, 2u);
  EXPECT_EQ(eng.wait_stats().suspensions, 1u);
}

// ---- tracing ------------------------------------------------------------------

TEST(Trace, RecordsActionsAndEdges) {
  Engine eng(/*trace_enabled=*/true);
  eng.steps(3);  // a chain: 2 thread edges
  ASSERT_NE(eng.trace(), nullptr);
  EXPECT_EQ(eng.trace()->num_actions(), 3u);
  EXPECT_EQ(eng.trace()->edges().size(), 2u);
  for (const auto& e : eng.trace()->edges()) EXPECT_LT(e.src, e.dst);
}

TEST(Trace, ForkCreatesForkEdge) {
  Engine eng(true);
  eng.fork([&] { eng.step(); });
  // fork action + child action, one fork edge.
  EXPECT_EQ(eng.trace()->num_actions(), 2u);
  EXPECT_EQ(eng.trace()->edges().size(), 1u);
}

TEST(Trace, TouchCreatesDataEdge) {
  Engine eng(true);
  auto* c = eng.new_cell<int>();
  eng.fork([&] { eng.write(c, 1); });
  eng.touch(c);
  // Actions: fork, write, touch. Edges: fork->write (fork edge),
  // fork->touch (thread edge), write->touch (data edge).
  EXPECT_EQ(eng.trace()->num_actions(), 3u);
  EXPECT_EQ(eng.trace()->edges().size(), 3u);
  EXPECT_EQ(eng.trace()->reads().size(), 1u);
  EXPECT_EQ(eng.trace()->writes().size(), 1u);
}

TEST(Trace, ArrayOpFanOutFanIn) {
  Engine eng(true);
  eng.array_op(10);
  // source + 10 middles + sink.
  EXPECT_EQ(eng.trace()->num_actions(), 12u);
  EXPECT_EQ(eng.trace()->edges().size(), 20u);
}

TEST(Engine, ForkJoinAllRunsEverythingInParallel) {
  Engine eng;
  int hits = 0;
  auto mk = [&] { return std::function<void()>([&] { eng.steps(10); ++hits; }); };
  std::vector<std::function<void()>> fns{mk(), mk(), mk(), mk(), mk()};
  fork_join_all(eng, std::span<std::function<void()>>(fns));
  EXPECT_EQ(hits, 5);
  // Depth ~ lg(5) forks/joins + 10, far below 50.
  EXPECT_LT(eng.now(), 25u);
  EXPECT_GE(eng.work(), 50u);
}

}  // namespace
}  // namespace pwf::cm
