// Random-program fuzzing of the cost model + simulator stack.
//
// Generates random futures programs that are valid by construction (forks,
// local steps, writes of owned cells, touches of cells whose writers were
// forked earlier — the eager-order discipline), then checks the standing
// invariants on each:
//   * depth <= work (a DAG path can't be longer than the node count);
//   * traced DAG depth == engine depth, traced actions == engine work;
//   * greedy schedule: steps <= w/p + d for several p, and p=1 runs
//     exactly `work` steps;
//   * every cell written exactly once and read at most once (the generator
//     is linear), confirmed by both audits.
#include <gtest/gtest.h>

#include <vector>

#include "costmodel/engine.hpp"
#include "sim/dag.hpp"
#include "sim/scheduler.hpp"
#include "support/random.hpp"

namespace pwf {
namespace {

// A random linear futures program over int cells.
struct ProgramGen {
  cm::Engine& eng;
  Rng& rng;
  // Cells already written whose value is still unread (linear: one read).
  std::vector<cm::Cell<int>*> readable;
  int budget;  // remaining operations

  void thread_body(int depth_left) {
    const int ops = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < ops && budget > 0; ++i) {
      --budget;
      switch (rng.below(4)) {
        case 0:
          eng.steps(1 + rng.below(4));
          break;
        case 1: {  // fork a child that publishes one value
          if (depth_left == 0) break;
          auto* c = eng.new_cell<int>();
          eng.fork([&, c] {
            thread_body(depth_left - 1);
            eng.write(c, static_cast<int>(rng.below(100)));
          });
          readable.push_back(c);
          break;
        }
        case 2: {  // touch a pending value (eager order guarantees written)
          if (readable.empty()) break;
          const std::size_t pick = rng.below(readable.size());
          auto* c = readable[pick];
          readable.erase(readable.begin() + static_cast<long>(pick));
          (void)eng.touch(c);
          break;
        }
        case 3: {  // strict fork-join pair
          if (depth_left == 0) break;
          eng.fork_join2(
              [&] {
                thread_body(depth_left - 1);
                return 0;
              },
              [&] {
                thread_body(depth_left - 1);
                return 0;
              });
          break;
        }
      }
    }
  }
};

class FuzzModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzModel, InvariantsHoldOnRandomPrograms) {
  Rng rng(GetParam() * 0xD1B54A32D192ED03ULL + 11);
  cm::Engine eng(/*trace=*/true);
  ProgramGen gen{eng, rng, {}, 400};
  gen.thread_body(6);
  // Drain remaining readable cells so every cell is read exactly once.
  for (auto* c : gen.readable) (void)eng.touch(c);

  EXPECT_LE(eng.depth(), eng.work());
  EXPECT_LE(eng.max_cell_reads(), 1u);
  EXPECT_EQ(eng.nonlinear_reads(), 0u);

  sim::Dag dag(*eng.trace());
  EXPECT_EQ(dag.depth(), eng.depth());
  EXPECT_EQ(dag.work(), eng.work());

  for (std::uint64_t p : {1ull, 2ull, 3ull, 7ull, 64ull}) {
    for (auto d : {sim::Discipline::kStack, sim::Discipline::kQueue}) {
      const auto r = sim::schedule(dag, p, d);
      ASSERT_TRUE(r.within_bound(p)) << "p=" << p;
      ASSERT_TRUE(r.erew_ok);
      ASSERT_TRUE(r.linear_ok);
      ASSERT_GE(r.steps, dag.depth());
      if (p == 1) {
        ASSERT_EQ(r.steps, dag.work());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzModel,
                         ::testing::Range<std::uint64_t>(0, 32));

}  // namespace
}  // namespace pwf
