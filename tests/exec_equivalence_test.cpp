// Cross-substrate equivalence: every algorithm body in src/pipelined/ is a
// single templated coroutine, instantiated on four execution substrates —
// CmExec (pipelined cost model), CmStrictExec (fork-join baseline), RtExec
// (coroutine runtime) and RecExec (recording substrate). This test feeds
// random inputs through all available instantiations of each ported
// algorithm and checks every result against a sequential oracle, so a
// substrate-specific divergence in any shared body fails here regardless of
// which substrate introduced it. The RecExec column additionally requires
// every recorded trace to pass the pwf-analyze verifier.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <limits>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "algos/mergesort.hpp"
#include "algos/producer_consumer.hpp"
#include "algos/quicksort.hpp"
#include "analyze/rec_exec.hpp"
#include "analyze/verifier.hpp"
#include "costmodel/engine.hpp"
#include "pipelined/treap_walk.hpp"
#include "runtime/rt_algos.hpp"
#include "runtime/rt_map.hpp"
#include "runtime/rt_treap.hpp"
#include "runtime/rt_trees.hpp"
#include "runtime/rt_ttree.hpp"
#include "runtime/scheduler.hpp"
#include "support/random.hpp"
#include "treap/setops.hpp"
#include "treap/treap.hpp"
#include "trees/merge.hpp"
#include "trees/rebalance.hpp"
#include "trees/tree.hpp"
#include "ttree/insert.hpp"
#include "ttree/ttree.hpp"

namespace pwf {
namespace {

using Key = std::int64_t;

std::vector<Key> random_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::set<Key> s;
  while (s.size() < n) s.insert(rng.range(0, 1 << 22));
  return {s.begin(), s.end()};
}

std::vector<Key> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);  // duplicates allowed: exercises pivot-equal paths
  std::vector<Key> v(n);
  for (auto& x : v) x = rng.range(0, 1 << 10);
  return v;
}

class ExecEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecEquivalence, TreeMerge) {
  const std::uint64_t seed = GetParam();
  const auto a = random_keys(500 + 37 * seed, seed * 2 + 1);
  const auto b = random_keys(300 + 11 * seed, seed * 2 + 2);
  std::vector<Key> oracle;
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(oracle));

  {
    cm::Engine eng;  // CmExec: pipelined cost model
    trees::Store st(eng);
    trees::TreeCell* out = trees::merge(
        st, st.input(st.build_balanced(a)), st.input(st.build_balanced(b)));
    std::vector<Key> got;
    trees::collect_inorder(trees::peek(out), got);
    EXPECT_EQ(got, oracle);
  }
  {
    cm::Engine eng;  // CmStrictExec: fork-join baseline
    trees::Store st(eng);
    std::vector<Key> got;
    trees::collect_inorder(
        trees::merge_strict(st, st.build_balanced(a), st.build_balanced(b)),
        got);
    EXPECT_EQ(got, oracle);
  }
  {
    rt::Scheduler sched(2);  // RtExec: pipelined + strict on real threads
    rt::trees::Store st;
    EXPECT_EQ(rt::trees::wait_inorder(rt::trees::merge(
                  st, st.input(st.build_balanced(a)),
                  st.input(st.build_balanced(b)))),
              oracle);
    std::vector<Key> got;
    rt::trees::collect_inorder(
        rt::trees::merge_strict_blocking(st, st.build_balanced(a),
                                         st.build_balanced(b)),
        got);
    EXPECT_EQ(got, oracle);
  }
}

TEST_P(ExecEquivalence, TreeRebalance) {
  const std::uint64_t seed = GetParam();
  const auto a = random_keys(800 + 53 * seed, seed * 3 + 1);
  const auto b = random_keys(200, seed * 3 + 2);
  std::vector<Key> oracle;
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(oracle));

  std::vector<Key> cm_keys;
  int cm_height = 0;
  {
    cm::Engine eng;
    trees::Store st(eng);
    trees::TreeCell* merged = trees::merge(
        st, st.input(st.build_balanced(a)), st.input(st.build_balanced(b)));
    trees::TreeCell* out = trees::rebalance(st, merged);
    trees::collect_inorder(trees::peek(out), cm_keys);
    cm_height = trees::height(trees::peek(out));
    EXPECT_EQ(cm_keys, oracle);
  }
  {
    rt::Scheduler sched(2);
    rt::trees::Store st;
    rt::trees::Cell* merged = rt::trees::merge(
        st, st.input(st.build_balanced(a)), st.input(st.build_balanced(b)));
    rt::trees::Cell* out = rt::trees::rebalance(st, merged);
    EXPECT_EQ(rt::trees::wait_inorder(out), oracle);
    // Rank-split rebalance is deterministic: both substrates build the same
    // shape, not just the same key sequence.
    EXPECT_EQ(rt::trees::height(rt::trees::peek(out)), cm_height);
  }
}

TEST_P(ExecEquivalence, TreapSetOps) {
  const std::uint64_t seed = GetParam();
  const auto a = random_keys(400 + 29 * seed, seed * 5 + 1);
  const auto b = random_keys(300 + 17 * seed, seed * 5 + 2);
  std::vector<Key> u, d, i;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(u));
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(d));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(i));

  {
    cm::Engine eng;  // CmExec
    treap::Store st(eng);
    const auto run = [&](treap::TreapCell* (*op)(treap::Store&,
                                                 treap::TreapCell*,
                                                 treap::TreapCell*),
                         const std::vector<Key>& expected) {
      treap::TreapCell* out =
          op(st, st.input(st.build(a)), st.input(st.build(b)));
      std::vector<Key> got;
      treap::collect_inorder(treap::peek(out), got);
      EXPECT_EQ(got, expected);
      EXPECT_TRUE(treap::validate(st, treap::peek(out)));
    };
    run(treap::union_treaps, u);
    run(treap::diff_treaps, d);
    run(treap::intersect_treaps, i);
  }
  {
    cm::Engine eng;  // CmStrictExec
    treap::Store st(eng);
    const auto collect = [](treap::Node* n) {
      std::vector<Key> got;
      treap::collect_inorder(n, got);
      return got;
    };
    EXPECT_EQ(collect(treap::union_strict(st, st.build(a), st.build(b))), u);
    EXPECT_EQ(collect(treap::diff_strict(st, st.build(a), st.build(b))), d);
    EXPECT_EQ(collect(treap::intersect_strict(st, st.build(a), st.build(b))),
              i);
  }
  {
    rt::Scheduler sched(2);  // RtExec
    rt::treap::Store st;
    const auto run = [&](rt::treap::Cell* (*op)(rt::treap::Store&,
                                                rt::treap::Cell*,
                                                rt::treap::Cell*),
                         const std::vector<Key>& expected) {
      rt::treap::Cell* out =
          op(st, st.input(st.build(a)), st.input(st.build(b)));
      EXPECT_EQ(rt::treap::wait_inorder(out), expected);
      EXPECT_TRUE(rt::treap::validate(st, out));
    };
    run(rt::treap::union_treaps, u);
    run(rt::treap::diff_treaps, d);
    run(rt::treap::intersect_treaps, i);
    std::vector<Key> got;
    rt::treap::Node* s =
        rt::treap::union_strict_blocking(st, st.build(a), st.build(b));
    EXPECT_EQ(rt::treap::wait_inorder(st.input(s)), u);
  }
}

TEST_P(ExecEquivalence, TtreeBulkInsert) {
  const std::uint64_t seed = GetParam();
  const auto base = random_keys(600 + 41 * seed, seed * 7 + 1);
  const auto extra = random_keys(250 + 13 * seed, seed * 7 + 2);
  std::set<Key> ref(base.begin(), base.end());
  ref.insert(extra.begin(), extra.end());
  const std::vector<Key> oracle(ref.begin(), ref.end());

  {
    cm::Engine eng;  // CmExec
    ttree::Store st(eng);
    ttree::TCell* out =
        ttree::bulk_insert(st, st.input(st.build(base, 3)), extra);
    std::vector<Key> got;
    ttree::collect_keys(ttree::peek(out), got);
    EXPECT_EQ(got, oracle);
    EXPECT_TRUE(ttree::validate(ttree::peek(out)));
  }
  {
    cm::Engine eng;  // CmStrictExec
    ttree::Store st(eng);
    ttree::TNode* out = ttree::bulk_insert_strict(st, st.build(base, 3), extra);
    std::vector<Key> got;
    ttree::collect_keys(out, got);
    EXPECT_EQ(got, oracle);
    EXPECT_TRUE(ttree::validate(out));
  }
  {
    rt::Scheduler sched(2);  // RtExec
    rt::ttree::Store st;
    rt::ttree::Cell* out =
        rt::ttree::bulk_insert(st, st.input(st.build(base, 3)), extra);
    EXPECT_EQ(rt::ttree::wait_keys(out), oracle);
    EXPECT_TRUE(rt::ttree::validate(out));
  }
}

TEST_P(ExecEquivalence, Mergesort) {
  const std::uint64_t seed = GetParam();
  auto values = random_keys(700 + 61 * seed, seed * 11 + 1);
  Rng rng(seed * 11 + 2);
  for (std::size_t k = values.size(); k > 1; --k) {
    std::swap(values[k - 1],
              values[static_cast<std::size_t>(rng.range(0, k - 1))]);
  }
  std::vector<Key> oracle = values;
  std::sort(oracle.begin(), oracle.end());

  {
    cm::Engine eng;  // CmExec (plain + balanced)
    trees::Store st(eng);
    std::vector<Key> got;
    trees::collect_inorder(trees::peek(algos::mergesort(st, values)), got);
    EXPECT_EQ(got, oracle);
    got.clear();
    trees::collect_inorder(trees::peek(algos::mergesort_balanced(st, values)),
                           got);
    EXPECT_EQ(got, oracle);
  }
  {
    cm::Engine eng;  // CmStrictExec
    trees::Store st(eng);
    std::vector<Key> got;
    trees::collect_inorder(algos::mergesort_strict(st, values), got);
    EXPECT_EQ(got, oracle);
  }
  {
    rt::Scheduler sched(2);  // RtExec (plain + balanced)
    rt::trees::Store st;
    EXPECT_EQ(rt::trees::wait_inorder(rt::trees::mergesort(st, values)),
              oracle);
    EXPECT_EQ(
        rt::trees::wait_inorder(rt::trees::mergesort_balanced(st, values)),
        oracle);
  }
}

TEST_P(ExecEquivalence, Quicksort) {
  const std::uint64_t seed = GetParam();
  const auto values = random_values(500 + 43 * seed, seed * 13 + 1);
  std::vector<Key> oracle = values;
  std::sort(oracle.begin(), oracle.end());

  {
    cm::Engine eng;  // CmExec
    algos::ListStore st(eng);
    EXPECT_EQ(algos::peek_list(algos::quicksort(st, values)), oracle);
  }
  {
    cm::Engine eng;  // CmStrictExec
    algos::ListStore st(eng);
    EXPECT_EQ(algos::peek_list(algos::quicksort_strict(st, values)), oracle);
  }
  {
    rt::Scheduler sched(2);  // RtExec
    rt::list::Store st;
    EXPECT_EQ(rt::list::wait_list(rt::list::quicksort(st, values)), oracle);
  }
}

TEST_P(ExecEquivalence, ProducerConsumer) {
  const std::int64_t n = 64 + 32 * static_cast<std::int64_t>(GetParam());
  const std::int64_t oracle = n * (n + 1) / 2;

  {
    cm::Engine eng;  // CmExec
    algos::ListStore st(eng);
    EXPECT_EQ(algos::produce_consume(st, n).sum, oracle);
  }
  {
    cm::Engine eng;  // CmStrictExec-style baseline
    algos::ListStore st(eng);
    EXPECT_EQ(algos::produce_consume_strict(st, n).sum, oracle);
  }
  {
    rt::Scheduler sched(2);  // RtExec
    rt::list::Store st;
    EXPECT_EQ(rt::list::produce_consume_sum(st, n), oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecEquivalence, ::testing::Values(0, 1, 2));

// ---- RecExec column ---------------------------------------------------------
// The recording substrate runs the same bodies with the granularity knobs
// live (chunked leaves, runtime serial threshold) while recording a DAG.
// Every family must match the sequential oracle at leaf cap 0 (node-per-key,
// the cost-model shape) and at the runtime's default cap of 32 — and every
// recorded trace must be verifier-clean (linearity demoted to a statistic,
// as in the engine-destructor hook: the Section-2 model allows multi-reads).

namespace rec = analyze::rec;

void expect_trace_clean(const cm::Engine& eng, const char* what) {
  ASSERT_NE(eng.trace(), nullptr);
  analyze::Options opts;
  opts.check_linearity = false;
  const analyze::Report rep = analyze::verify(*eng.trace(), opts);
  EXPECT_TRUE(rep.ok()) << what << ": " << rep.to_string();
}

class ExecEquivalenceRec : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExecEquivalenceRec, TreapSetOps) {
  const std::size_t cap = GetParam();
  const auto a = random_keys(400, 17);
  const auto b = random_keys(300, 18);
  std::vector<Key> u, d, i;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(u));
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(d));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(i));

  cm::Engine eng(/*trace=*/true);
  analyze::RecExec ex(eng);
  rec::TreapStore st(eng, pipelined::treap::kDefaultSalt, cap);
  EXPECT_EQ(rec::treap_inorder(rec::union_treaps(
                ex, st, st.input(st.build(a)), st.input(st.build(b)))),
            u);
  EXPECT_EQ(rec::treap_inorder(rec::diff_treaps(
                ex, st, st.input(st.build(a)), st.input(st.build(b)))),
            d);
  EXPECT_EQ(rec::treap_inorder(rec::intersect_treaps(
                ex, st, st.input(st.build(a)), st.input(st.build(b)))),
            i);
  std::vector<Key> got;
  pipelined::treap::collect_inorder<analyze::RecPolicy>(
      rec::union_strict(ex, st, st.build(a), st.build(b)), got);
  EXPECT_EQ(got, u);
  expect_trace_clean(eng, "treap");
}

TEST_P(ExecEquivalenceRec, TreeMergeAndRebalance) {
  const std::size_t cap = GetParam();
  (void)cap;  // binary trees have no chunked leaves; both points still record
  const auto a = random_keys(500, 19);
  const auto b = random_keys(300, 20);
  std::vector<Key> oracle;
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(oracle));

  cm::Engine eng(/*trace=*/true);
  analyze::RecExec ex(eng);
  rec::TreeStore st(eng);
  rec::TreeCell* merged = rec::merge(ex, st, st.input(st.build_balanced(a)),
                                     st.input(st.build_balanced(b)));
  EXPECT_EQ(rec::tree_inorder(merged), oracle);
  EXPECT_EQ(rec::tree_inorder(rec::rebalance(ex, st, merged)), oracle);
  expect_trace_clean(eng, "trees");
}

TEST_P(ExecEquivalenceRec, TtreeBulkInsert) {
  const std::size_t cap = GetParam();
  (void)cap;
  const auto base = random_keys(600, 21);
  const auto extra = random_keys(250, 22);
  std::set<Key> ref(base.begin(), base.end());
  ref.insert(extra.begin(), extra.end());
  const std::vector<Key> oracle(ref.begin(), ref.end());

  cm::Engine eng(/*trace=*/true);
  analyze::RecExec ex(eng);
  rec::TtreeStore st(eng);
  EXPECT_EQ(rec::ttree_keys(rec::bulk_insert(
                ex, st, st.input(st.build(base, 3)), extra)),
            oracle);
  expect_trace_clean(eng, "ttree");
}

TEST_P(ExecEquivalenceRec, Mergesort) {
  const std::size_t cap = GetParam();
  (void)cap;
  auto values = random_keys(700, 23);
  Rng rng(24);
  for (std::size_t k = values.size(); k > 1; --k) {
    std::swap(values[k - 1],
              values[static_cast<std::size_t>(rng.range(0, k - 1))]);
  }
  std::vector<Key> oracle = values;
  std::sort(oracle.begin(), oracle.end());

  cm::Engine eng(/*trace=*/true);
  analyze::RecExec ex(eng);
  rec::TreeStore st(eng);
  EXPECT_EQ(rec::tree_inorder(rec::mergesort(ex, st, values)), oracle);
  expect_trace_clean(eng, "mergesort");
}

TEST_P(ExecEquivalenceRec, QuicksortAndProducerConsumer) {
  const std::size_t cap = GetParam();
  (void)cap;
  const auto values = random_values(500, 25);
  std::vector<Key> oracle = values;
  std::sort(oracle.begin(), oracle.end());

  cm::Engine eng(/*trace=*/true);
  analyze::RecExec ex(eng);
  rec::ListStore st(eng);
  EXPECT_EQ(rec::list_values(rec::quicksort(ex, st, values)), oracle);
  EXPECT_EQ(rec::produce_consume(ex, st, 256), 256 * 257 / 2);
  expect_trace_clean(eng, "list");
}

INSTANTIATE_TEST_SUITE_P(
    LeafCaps, ExecEquivalenceRec,
    ::testing::Values(std::size_t{0}, pipelined::treap::kDefaultLeafCapacity));

// ---- serial-threshold straddle ----------------------------------------------
// RtExec bottoms out in tight sequential loops below kDefaultSerialThreshold;
// these sizes pin the handoff between the serial fast path and the forking
// path: threshold-1, threshold, threshold+1 and 2*threshold must agree with
// the sequential oracle on every substrate. The Cm substrates have threshold
// 0 (the cutoff branches are dead there) and run as the control group.

class ExecEquivalenceThreshold : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(ExecEquivalenceThreshold, TreeMergeAndRebalance) {
  const std::size_t n = GetParam();
  const auto a = random_keys(n, 2 * n + 1);
  const auto b = random_keys(n, 2 * n + 2);
  std::vector<Key> oracle;
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(oracle));

  {
    cm::Engine eng;  // CmExec
    trees::Store st(eng);
    trees::TreeCell* out = trees::merge(
        st, st.input(st.build_balanced(a)), st.input(st.build_balanced(b)));
    std::vector<Key> got;
    trees::collect_inorder(trees::peek(out), got);
    EXPECT_EQ(got, oracle);
  }
  {
    cm::Engine eng;  // CmStrictExec
    trees::Store st(eng);
    std::vector<Key> got;
    trees::collect_inorder(
        trees::merge_strict(st, st.build_balanced(a), st.build_balanced(b)),
        got);
    EXPECT_EQ(got, oracle);
  }
  {
    rt::Scheduler sched(2);  // RtExec: merge, strict merge, and rebalance
    rt::trees::Store st;
    rt::trees::Cell* merged = rt::trees::merge(
        st, st.input(st.build_balanced(a)), st.input(st.build_balanced(b)));
    EXPECT_EQ(rt::trees::wait_inorder(merged), oracle);
    std::vector<Key> got;
    rt::trees::collect_inorder(
        rt::trees::merge_strict_blocking(st, st.build_balanced(a),
                                         st.build_balanced(b)),
        got);
    EXPECT_EQ(got, oracle);
    rt::trees::Cell* balanced = rt::trees::rebalance(
        st, rt::trees::merge(st, st.input(st.build_balanced(a)),
                             st.input(st.build_balanced(b))));
    EXPECT_EQ(rt::trees::wait_inorder(balanced), oracle);
  }
}

TEST_P(ExecEquivalenceThreshold, TreapSetOps) {
  const std::size_t n = GetParam();
  const auto a = random_keys(n, 3 * n + 1);
  const auto b = random_keys(n, 3 * n + 2);
  std::vector<Key> u, d, i;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(u));
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(d));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(i));

  {
    cm::Engine eng;  // CmExec
    treap::Store st(eng);
    const auto run = [&](treap::TreapCell* (*op)(treap::Store&,
                                                 treap::TreapCell*,
                                                 treap::TreapCell*),
                         const std::vector<Key>& expected) {
      treap::TreapCell* out =
          op(st, st.input(st.build(a)), st.input(st.build(b)));
      std::vector<Key> got;
      treap::collect_inorder(treap::peek(out), got);
      EXPECT_EQ(got, expected);
      EXPECT_TRUE(treap::validate(st, treap::peek(out)));
    };
    run(treap::union_treaps, u);
    run(treap::diff_treaps, d);
    run(treap::intersect_treaps, i);
  }
  {
    rt::Scheduler sched(2);  // RtExec, pipelined + strict
    rt::treap::Store st;
    const auto run = [&](rt::treap::Cell* (*op)(rt::treap::Store&,
                                                rt::treap::Cell*,
                                                rt::treap::Cell*),
                         const std::vector<Key>& expected) {
      rt::treap::Cell* out =
          op(st, st.input(st.build(a)), st.input(st.build(b)));
      EXPECT_EQ(rt::treap::wait_inorder(out), expected);
      EXPECT_TRUE(rt::treap::validate(st, out));
    };
    run(rt::treap::union_treaps, u);
    run(rt::treap::diff_treaps, d);
    run(rt::treap::intersect_treaps, i);
    EXPECT_EQ(rt::treap::wait_inorder(st.input(rt::treap::union_strict_blocking(
                  st, st.build(a), st.build(b)))),
              u);
    EXPECT_EQ(rt::treap::wait_inorder(st.input(rt::treap::diff_strict_blocking(
                  st, st.build(a), st.build(b)))),
              d);
  }
}

TEST_P(ExecEquivalenceThreshold, TtreeBulkInsert) {
  const std::size_t n = GetParam();
  const auto base = random_keys(n, 5 * n + 1);
  const auto extra = random_keys(n, 5 * n + 2);
  std::set<Key> ref(base.begin(), base.end());
  ref.insert(extra.begin(), extra.end());
  const std::vector<Key> oracle(ref.begin(), ref.end());

  {
    cm::Engine eng;  // CmExec
    ttree::Store st(eng);
    ttree::TCell* out =
        ttree::bulk_insert(st, st.input(st.build(base, 3)), extra);
    std::vector<Key> got;
    ttree::collect_keys(ttree::peek(out), got);
    EXPECT_EQ(got, oracle);
    EXPECT_TRUE(ttree::validate(ttree::peek(out)));
  }
  {
    rt::Scheduler sched(2);  // RtExec, pipelined + strict
    rt::ttree::Store st;
    rt::ttree::Cell* out =
        rt::ttree::bulk_insert(st, st.input(st.build(base, 3)), extra);
    EXPECT_EQ(rt::ttree::wait_keys(out), oracle);
    EXPECT_TRUE(rt::ttree::validate(out));
    rt::ttree::TNode* s = rt::ttree::bulk_insert_strict_blocking(
        st, st.build(base, 3), extra);
    EXPECT_EQ(rt::ttree::wait_keys(st.input(s)), oracle);
  }
}

TEST_P(ExecEquivalenceThreshold, Mergesort) {
  const std::size_t n = GetParam();
  auto values = random_keys(n, 7 * n + 1);
  Rng rng(7 * n + 2);
  for (std::size_t k = values.size(); k > 1; --k) {
    std::swap(values[k - 1],
              values[static_cast<std::size_t>(rng.range(0, k - 1))]);
  }
  std::vector<Key> oracle = values;
  std::sort(oracle.begin(), oracle.end());

  {
    cm::Engine eng;  // CmExec, plain + balanced
    trees::Store st(eng);
    std::vector<Key> got;
    trees::collect_inorder(trees::peek(algos::mergesort(st, values)), got);
    EXPECT_EQ(got, oracle);
    got.clear();
    trees::collect_inorder(trees::peek(algos::mergesort_balanced(st, values)),
                           got);
    EXPECT_EQ(got, oracle);
  }
  {
    rt::Scheduler sched(2);  // RtExec, plain + balanced + strict
    rt::trees::Store st;
    EXPECT_EQ(rt::trees::wait_inorder(rt::trees::mergesort(st, values)),
              oracle);
    EXPECT_EQ(
        rt::trees::wait_inorder(rt::trees::mergesort_balanced(st, values)),
        oracle);
    std::vector<Key> got;
    rt::trees::collect_inorder(
        rt::trees::mergesort_strict_blocking(st, values), got);
    EXPECT_EQ(got, oracle);
  }
}

TEST_P(ExecEquivalenceThreshold, QuicksortAndProducerConsumer) {
  const std::size_t n = GetParam();
  const auto values = random_values(n, 11 * n + 1);
  std::vector<Key> oracle = values;
  std::sort(oracle.begin(), oracle.end());
  const auto ni = static_cast<std::int64_t>(n);
  const std::int64_t sum_oracle = ni * (ni + 1) / 2;

  {
    cm::Engine eng;  // CmExec
    algos::ListStore st(eng);
    EXPECT_EQ(algos::peek_list(algos::quicksort(st, values)), oracle);
    EXPECT_EQ(algos::produce_consume(st, ni).sum, sum_oracle);
  }
  {
    rt::Scheduler sched(2);  // RtExec
    rt::list::Store st;
    EXPECT_EQ(rt::list::wait_list(rt::list::quicksort(st, values)), oracle);
    EXPECT_EQ(rt::list::produce_consume_sum(st, ni), sum_oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ExecEquivalenceThreshold,
    ::testing::Values(pipelined::RtExec::kDefaultSerialThreshold - 1,
                      pipelined::RtExec::kDefaultSerialThreshold,
                      pipelined::RtExec::kDefaultSerialThreshold + 1,
                      2 * pipelined::RtExec::kDefaultSerialThreshold));

// ---- leaf-chunk boundary straddle -------------------------------------------
// Runtime treaps store subtrees at or below Store::leaf_capacity() as flat
// sorted chunks (docs/storage.md). These sizes pin the handoff between
// chunked leaves and internal nodes: capacity-1, capacity and capacity+1
// inputs, plus a few chunks' worth, must agree with the sequential oracle on
// every substrate. The Cm substrates have kMaxLeafCapacity == 0 (the leaf
// branches are compiled out there) and run as the control group.

class ExecEquivalenceLeaf : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExecEquivalenceLeaf, TreapSetOps) {
  const std::size_t n = GetParam();
  const auto a = random_keys(n, 13 * n + 1);
  const auto b = random_keys(n, 13 * n + 2);
  std::vector<Key> u, d, i;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(u));
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(d));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(i));

  {
    cm::Engine eng;  // CmExec + CmStrictExec: node-per-key control group
    treap::Store st(eng);
    const auto run = [&](treap::TreapCell* (*op)(treap::Store&,
                                                 treap::TreapCell*,
                                                 treap::TreapCell*),
                         const std::vector<Key>& expected) {
      treap::TreapCell* out =
          op(st, st.input(st.build(a)), st.input(st.build(b)));
      std::vector<Key> got;
      treap::collect_inorder(treap::peek(out), got);
      EXPECT_EQ(got, expected);
      EXPECT_TRUE(treap::validate(st, treap::peek(out)));
    };
    run(treap::union_treaps, u);
    run(treap::diff_treaps, d);
    run(treap::intersect_treaps, i);
    std::vector<Key> got;
    treap::collect_inorder(treap::union_strict(st, st.build(a), st.build(b)),
                           got);
    EXPECT_EQ(got, u);
  }
  {
    rt::Scheduler sched(2);  // RtExec with chunked leaves, pipelined + strict
    rt::treap::Store st;
    const auto run = [&](rt::treap::Cell* (*op)(rt::treap::Store&,
                                                rt::treap::Cell*,
                                                rt::treap::Cell*),
                         const std::vector<Key>& expected) {
      rt::treap::Cell* out =
          op(st, st.input(st.build(a)), st.input(st.build(b)));
      EXPECT_EQ(rt::treap::wait_inorder(out), expected);
      EXPECT_TRUE(rt::treap::validate(st, out));
    };
    run(rt::treap::union_treaps, u);
    run(rt::treap::diff_treaps, d);
    run(rt::treap::intersect_treaps, i);
    EXPECT_EQ(rt::treap::wait_inorder(st.input(rt::treap::union_strict_blocking(
                  st, st.build(a), st.build(b)))),
              u);
    EXPECT_EQ(rt::treap::wait_inorder(st.input(rt::treap::diff_strict_blocking(
                  st, st.build(a), st.build(b)))),
              d);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ExecEquivalenceLeaf,
    ::testing::Values(pipelined::treap::kDefaultLeafCapacity - 1,
                      pipelined::treap::kDefaultLeafCapacity,
                      pipelined::treap::kDefaultLeafCapacity + 1,
                      5 * pipelined::treap::kDefaultLeafCapacity + 3));

// ---- augmented maps across substrates ---------------------------------------
// One sum-augmented int64 map entry, the same union body on all four
// substrates, and every range aggregate checked against a sequential fold
// oracle over the merged items. Parameterized on the requested leaf capacity
// {0, 1, 32}: the Cm substrates clamp every request to 0 (node-per-key, the
// control group), Rt/Rec clamp 0 up to 1 — both handoffs are exercised.

using AugSum = pipelined::treap::SumAug<std::int64_t>;
using AugMapEntry =
    pipelined::treap::AugEntry<pipelined::treap::MapEntry<std::int64_t>,
                               AugSum>;
using AugItem = std::pair<Key, std::int64_t>;

std::vector<AugItem> aug_items(std::size_t n, std::uint64_t seed) {
  const auto keys = random_keys(n, seed);
  Rng rng(seed * 131 + 7);
  std::vector<AugItem> out;
  out.reserve(keys.size());
  for (Key k : keys) out.emplace_back(k, rng.range(1, 1000));
  return out;
}

class ExecEquivalenceAug : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExecEquivalenceAug, SumAggregatesMatchFoldOracle) {
  const std::size_t cap = GetParam();
  const auto a = aug_items(300 + 3 * cap, 41 + cap);
  const auto b = aug_items(220 + 5 * cap, 142 + cap);
  const auto plus = [](std::int64_t x, std::int64_t y) { return x + y; };

  std::map<Key, std::int64_t> merged(a.begin(), a.end());
  for (const auto& [k, v] : b) {
    auto [it, fresh] = merged.emplace(k, v);
    if (!fresh) it->second += v;
  }
  const std::vector<AugItem> oracle(merged.begin(), merged.end());

  // Probe ranges: everything, prefixes/infixes straddling subtrees, a single
  // key, and an empty range past the right end.
  const Key first = oracle.front().first, last = oracle.back().first;
  const std::vector<std::pair<Key, Key>> ranges = {
      {std::numeric_limits<Key>::min(), std::numeric_limits<Key>::max()},
      {first, oracle[oracle.size() / 2].first},
      {oracle[oracle.size() / 3].first, oracle[2 * oracle.size() / 3].first},
      {oracle[7].first, oracle[7].first},
      {last + 1, last + 100},
      {first - 100, first - 1},
  };
  const auto fold = [&](Key lo, Key hi) {
    std::int64_t s = 0;
    for (const auto& [k, v] : merged)
      if (k >= lo && k <= hi) s += v;
    return s;
  };
  const auto check_ranges = [&](auto&& aggregate, const char* what) {
    for (const auto& [lo, hi] : ranges)
      EXPECT_EQ(aggregate(lo, hi), fold(lo, hi)) << what << " [" << lo << ", "
                                                 << hi << "]";
  };

  const auto peekf = [](const auto* c) { return pipelined::CmPolicy::peek(c); };

  {
    cm::Engine eng;  // CmExec: pipelined, node-per-key
    eng.set_crew(true);  // aug fibers re-read node cells (CREW)
    pipelined::treap::Store<pipelined::CmPolicy, AugMapEntry> st(
        eng, pipelined::treap::kDefaultSalt, cap);
    auto* out = st.cell();
    pipelined::run_inline(pipelined::treap::union_into(
        pipelined::CmExec(eng), st, st.input(st.build(a)),
        st.input(st.build(b)), out, plus));
    std::vector<AugItem> got;
    pipelined::treap::visit_items(
        out, peekf,
        [&](Key k, const std::int64_t& v) { got.emplace_back(k, v); });
    EXPECT_EQ(got, oracle);
    EXPECT_TRUE(pipelined::treap::validate(
        st, pipelined::treap::peek<pipelined::CmPolicy>(out)));
    check_ranges(
        [&](Key lo, Key hi) {
          return pipelined::treap::aggregate(out, lo, hi, peekf);
        },
        "CmExec");
  }
  {
    cm::Engine eng;  // CmStrictExec: fork-join baseline
    eng.set_crew(true);
    pipelined::treap::Store<pipelined::CmPolicy, AugMapEntry> st(
        eng, pipelined::treap::kDefaultSalt, cap);
    auto* n = pipelined::run_inline(pipelined::treap::union_strict(
        pipelined::CmStrictExec(eng), st, st.build(a), st.build(b), plus));
    auto* out = st.input(n);
    std::vector<AugItem> got;
    pipelined::treap::visit_items(
        out, peekf,
        [&](Key k, const std::int64_t& v) { got.emplace_back(k, v); });
    EXPECT_EQ(got, oracle);
    check_ranges(
        [&](Key lo, Key hi) {
          return pipelined::treap::aggregate(out, lo, hi, peekf);
        },
        "CmStrictExec");
  }
  {
    rt::Scheduler sched(2);  // RtExec: chunked leaves, real threads
    rt::map::Store<std::int64_t, AugSum> st(pipelined::treap::kDefaultSalt,
                                            cap);
    auto* out = rt::map::union_maps(st, st.input(st.build(a)),
                                    st.input(st.build(b)), plus);
    EXPECT_EQ(rt::map::wait_items(out), oracle);
    check_ranges(
        [&](Key lo, Key hi) { return rt::map::aggregate_wait(out, lo, hi); },
        "RtExec");
  }
  {
    cm::Engine eng(/*trace=*/true);  // RecExec: recording substrate
    eng.set_crew(true);
    analyze::RecExec ex(eng);
    rec::AugMapStore st(eng, pipelined::treap::kDefaultSalt, cap);
    rec::AugMapCell* out = rec::union_aug_maps(
        ex, st, st.input(st.build(a)), st.input(st.build(b)));
    const auto rpeek = [](const auto* c) {
      return analyze::RecPolicy::peek(c);
    };
    std::vector<AugItem> got;
    pipelined::treap::visit_items(
        out, rpeek,
        [&](Key k, const std::int64_t& v) { got.emplace_back(k, v); });
    EXPECT_EQ(got, oracle);
    check_ranges(
        [&](Key lo, Key hi) {
          return pipelined::treap::aggregate(out, lo, hi, rpeek);
        },
        "RecExec");
    EXPECT_GT(eng.aug_ops(), 0u);
    // Aug fibers re-read node cells, so EREW (like linearity) is demoted;
    // write-once and race-freedom still hold on the recorded trace.
    ASSERT_NE(eng.trace(), nullptr);
    analyze::Options opts;
    opts.check_linearity = false;
    opts.check_erew = false;
    const analyze::Report rep = analyze::verify(*eng.trace(), opts);
    EXPECT_TRUE(rep.ok()) << "aug map: " << rep.to_string();
    EXPECT_GT(rep.aug_ops, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LeafCaps, ExecEquivalenceAug,
                         ::testing::Values(std::size_t{0}, std::size_t{1},
                                           std::size_t{32}));

// Structural contract of the chunked storage itself, on the runtime
// substrate: builds at/above capacity chunk as expected, ops that descend
// into a chunk promote it to an internal node without losing keys, and
// small results collapse back into a single flat chunk.
TEST(ExecEquivalenceLeafStructure, BuildPromoteCollapse) {
  rt::Scheduler sched(2);
  rt::treap::Store st;
  const std::size_t cap = st.leaf_capacity();
  ASSERT_GT(cap, 1u);

  // Build at capacity: one flat chunk, no internal nodes.
  {
    const auto keys = random_keys(cap, 901);
    rt::treap::Cell* c = st.input(st.build(keys));
    const rt::treap::Node* root = c->wait_blocking();
    ASSERT_NE(root, nullptr);
    EXPECT_TRUE(pipelined::treap::is_leaf(root));
    const auto ce = rt::treap::cache_economy(c);
    EXPECT_EQ(ce.internal_nodes, 0u);
    EXPECT_EQ(ce.leaf_chunks, 1u);
    EXPECT_EQ(ce.leaf_keys, cap);
  }
  // Build just above capacity: the root must be a real node.
  {
    const auto keys = random_keys(cap + 1, 902);
    const rt::treap::Node* root = st.input(st.build(keys))->wait_blocking();
    ASSERT_NE(root, nullptr);
    EXPECT_FALSE(pipelined::treap::is_leaf(root));
  }
  // Promotion: union a single chunk into a much larger treap. The op
  // descends into the chunk (leaf -> internal rewrite on the winner path)
  // and every key of both inputs must survive.
  {
    const auto big = random_keys(20 * cap, 903);
    const auto small = random_keys(cap, 904);
    std::vector<Key> expected;
    std::set_union(big.begin(), big.end(), small.begin(), small.end(),
                   std::back_inserter(expected));
    rt::treap::Cell* out = rt::treap::union_treaps(
        st, st.input(st.build(big)), st.input(st.build(small)));
    EXPECT_EQ(rt::treap::wait_inorder(out), expected);
    EXPECT_TRUE(rt::treap::validate(st, out));
  }
  // Collapse: an intersection far below capacity re-chunks into one leaf.
  {
    auto a = random_keys(10 * cap, 905);
    auto b = random_keys(10 * cap, 906);
    std::vector<Key> shared;
    for (std::size_t k = 0; k < cap / 2; ++k)
      shared.push_back(static_cast<Key>(1) << 40 | static_cast<Key>(k));
    a.insert(a.end(), shared.begin(), shared.end());
    b.insert(b.end(), shared.begin(), shared.end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<Key> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    ASSERT_GE(expected.size(), cap / 2);
    rt::treap::Cell* out = rt::treap::intersect_treaps(
        st, st.input(st.build(a)), st.input(st.build(b)));
    EXPECT_EQ(rt::treap::wait_inorder(out), expected);
    // Every key is either a chunk entry or an internal node, and the result
    // re-chunks into far fewer structural units than one node per key. (The
    // pipelined join path may keep a few internal nodes above the chunks, so
    // this is not always a single flat leaf.)
    const auto ce = rt::treap::cache_economy(out);
    EXPECT_EQ(ce.leaf_keys + ce.internal_nodes, expected.size());
    EXPECT_GE(ce.leaf_chunks, 1u);
    EXPECT_LE(ce.internal_nodes + ce.leaf_chunks, expected.size() / 2);
  }
}

}  // namespace
}  // namespace pwf
