// Tests for the ParallelSet facade: batch set semantics against std::set,
// across thread counts, batch shapes, and long randomized sessions.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "runtime/parallel_set.hpp"
#include "support/random.hpp"

namespace pwf::rt {
namespace {

std::vector<std::int64_t> draw(Rng& rng, std::size_t n,
                               std::int64_t universe = 1 << 20) {
  std::vector<std::int64_t> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.range(0, universe));
  return out;  // duplicates allowed — the facade must handle them
}

TEST(ParallelSet, StartsEmpty) {
  Scheduler sched(2);
  ParallelSet s(sched);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.keys().empty());
  EXPECT_FALSE(s.contains(0));
}

TEST(ParallelSet, InitialContents) {
  Scheduler sched(2);
  std::vector<std::int64_t> keys{5, 1, 3, 5, 1};  // dups collapse
  ParallelSet s(sched, keys);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.keys(), (std::vector<std::int64_t>{1, 3, 5}));
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(2));
}

TEST(ParallelSet, InsertBatchUnions) {
  Scheduler sched(2);
  ParallelSet s(sched, std::vector<std::int64_t>{1, 2, 3});
  s.insert_batch(std::vector<std::int64_t>{3, 4, 5});
  EXPECT_EQ(s.keys(), (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(s.size(), 5u);
}

TEST(ParallelSet, EraseBatchSubtracts) {
  Scheduler sched(2);
  ParallelSet s(sched, std::vector<std::int64_t>{1, 2, 3, 4, 5});
  s.erase_batch(std::vector<std::int64_t>{2, 4, 9});
  EXPECT_EQ(s.keys(), (std::vector<std::int64_t>{1, 3, 5}));
}

TEST(ParallelSet, RetainBatchIntersects) {
  Scheduler sched(2);
  ParallelSet s(sched, std::vector<std::int64_t>{1, 2, 3, 4, 5});
  s.retain_batch(std::vector<std::int64_t>{2, 4, 6});
  EXPECT_EQ(s.keys(), (std::vector<std::int64_t>{2, 4}));
  s.retain_batch({});
  EXPECT_TRUE(s.empty());
}

TEST(ParallelSet, EmptyBatchesAreNoOps) {
  Scheduler sched(2);
  ParallelSet s(sched, std::vector<std::int64_t>{7});
  s.insert_batch({});
  s.erase_batch({});
  EXPECT_EQ(s.keys(), (std::vector<std::int64_t>{7}));
}

class ParallelSetSession : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSetSession, LongRandomSessionMatchesStdSet) {
  const unsigned threads = static_cast<unsigned>(GetParam());
  Scheduler sched(threads);
  Rng rng(1000 + threads);
  ParallelSet s(sched);
  std::set<std::int64_t> ref;
  for (int round = 0; round < 30; ++round) {
    const auto op = rng.below(3);
    const auto batch = draw(rng, 1 + rng.below(400));
    if (op == 0) {
      s.insert_batch(batch);
      ref.insert(batch.begin(), batch.end());
    } else if (op == 1) {
      s.erase_batch(batch);
      for (auto k : batch) ref.erase(k);
    } else {
      // retain: keep only batch ∩ ref — use a superset of ref occasionally
      // to avoid draining the set too fast.
      std::vector<std::int64_t> keep = batch;
      keep.insert(keep.end(), ref.begin(), ref.end());
      if (rng.coin()) keep.resize(keep.size() / 2);
      s.retain_batch(keep);
      std::set<std::int64_t> keep_set(keep.begin(), keep.end());
      std::set<std::int64_t> next;
      for (auto k : ref)
        if (keep_set.count(k)) next.insert(k);
      ref = std::move(next);
    }
    ASSERT_EQ(s.size(), ref.size()) << "round " << round;
    ASSERT_EQ(s.keys(), std::vector<std::int64_t>(ref.begin(), ref.end()))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelSetSession,
                         ::testing::Values(1, 2, 4));

TEST(ParallelSet, HeightStaysLogarithmic) {
  Scheduler sched(2);
  Rng rng(9);
  ParallelSet s(sched);
  for (int i = 0; i < 8; ++i) s.insert_batch(draw(rng, 2000, 1 << 26));
  EXPECT_GT(s.size(), 10000u);
  EXPECT_LT(s.height(), 6 * 15);  // ~ c lg n, reject linear height
}

TEST(ParallelSet, LargeBatches) {
  Scheduler sched(4);
  Rng rng(11);
  const auto a = draw(rng, 50000, 1 << 26);
  const auto b = draw(rng, 50000, 1 << 26);
  ParallelSet s(sched, a);
  s.insert_batch(b);
  std::set<std::int64_t> ref(a.begin(), a.end());
  ref.insert(b.begin(), b.end());
  EXPECT_EQ(s.size(), ref.size());
  EXPECT_EQ(s.keys(), std::vector<std::int64_t>(ref.begin(), ref.end()));
}

}  // namespace
}  // namespace pwf::rt
