// Tests for the ParallelSet facade: batch set semantics against std::set,
// across thread counts, batch shapes, and long randomized sessions; plus
// the pipelined-batch contract (stats, flush, compact), concurrent readers
// racing in-flight batches, and sharded-vs-unsharded equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "runtime/parallel_set.hpp"
#include "runtime/sharded_set.hpp"
#include "support/random.hpp"

namespace pwf::rt {
namespace {

std::vector<std::int64_t> draw(Rng& rng, std::size_t n,
                               std::int64_t universe = 1 << 20) {
  std::vector<std::int64_t> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.range(0, universe));
  return out;  // duplicates allowed — the facade must handle them
}

TEST(ParallelSet, StartsEmpty) {
  Scheduler sched(2);
  ParallelSet s(sched);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.keys().empty());
  EXPECT_FALSE(s.contains(0));
}

TEST(ParallelSet, InitialContents) {
  Scheduler sched(2);
  std::vector<std::int64_t> keys{5, 1, 3, 5, 1};  // dups collapse
  ParallelSet s(sched, keys);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.keys(), (std::vector<std::int64_t>{1, 3, 5}));
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(2));
}

TEST(ParallelSet, InsertBatchUnions) {
  Scheduler sched(2);
  ParallelSet s(sched, std::vector<std::int64_t>{1, 2, 3});
  s.insert_batch(std::vector<std::int64_t>{3, 4, 5});
  EXPECT_EQ(s.keys(), (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(s.size(), 5u);
}

TEST(ParallelSet, EraseBatchSubtracts) {
  Scheduler sched(2);
  ParallelSet s(sched, std::vector<std::int64_t>{1, 2, 3, 4, 5});
  s.erase_batch(std::vector<std::int64_t>{2, 4, 9});
  EXPECT_EQ(s.keys(), (std::vector<std::int64_t>{1, 3, 5}));
}

TEST(ParallelSet, RetainBatchIntersects) {
  Scheduler sched(2);
  ParallelSet s(sched, std::vector<std::int64_t>{1, 2, 3, 4, 5});
  s.retain_batch(std::vector<std::int64_t>{2, 4, 6});
  EXPECT_EQ(s.keys(), (std::vector<std::int64_t>{2, 4}));
  s.retain_batch({});
  EXPECT_TRUE(s.empty());
}

TEST(ParallelSet, EmptyBatchesAreNoOps) {
  Scheduler sched(2);
  ParallelSet s(sched, std::vector<std::int64_t>{7});
  s.insert_batch({});
  s.erase_batch({});
  EXPECT_EQ(s.keys(), (std::vector<std::int64_t>{7}));
}

class ParallelSetSession : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSetSession, LongRandomSessionMatchesStdSet) {
  const unsigned threads = static_cast<unsigned>(GetParam());
  Scheduler sched(threads);
  Rng rng(1000 + threads);
  ParallelSet s(sched);
  std::set<std::int64_t> ref;
  for (int round = 0; round < 30; ++round) {
    const auto op = rng.below(3);
    const auto batch = draw(rng, 1 + rng.below(400));
    if (op == 0) {
      s.insert_batch(batch);
      ref.insert(batch.begin(), batch.end());
    } else if (op == 1) {
      s.erase_batch(batch);
      for (auto k : batch) ref.erase(k);
    } else {
      // retain: keep only batch ∩ ref — use a superset of ref occasionally
      // to avoid draining the set too fast.
      std::vector<std::int64_t> keep = batch;
      keep.insert(keep.end(), ref.begin(), ref.end());
      if (rng.coin()) keep.resize(keep.size() / 2);
      s.retain_batch(keep);
      std::set<std::int64_t> keep_set(keep.begin(), keep.end());
      std::set<std::int64_t> next;
      for (auto k : ref)
        if (keep_set.count(k)) next.insert(k);
      ref = std::move(next);
    }
    ASSERT_EQ(s.size(), ref.size()) << "round " << round;
    ASSERT_EQ(s.keys(), std::vector<std::int64_t>(ref.begin(), ref.end()))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelSetSession,
                         ::testing::Values(1, 2, 4));

TEST(ParallelSet, HeightStaysLogarithmic) {
  Scheduler sched(2);
  Rng rng(9);
  ParallelSet s(sched);
  for (int i = 0; i < 8; ++i) s.insert_batch(draw(rng, 2000, 1 << 26));
  EXPECT_GT(s.size(), 10000u);
  EXPECT_LT(s.height(), 6 * 15);  // ~ c lg n, reject linear height
}

TEST(ParallelSet, LargeBatches) {
  Scheduler sched(4);
  Rng rng(11);
  const auto a = draw(rng, 50000, 1 << 26);
  const auto b = draw(rng, 50000, 1 << 26);
  ParallelSet s(sched, a);
  s.insert_batch(b);
  std::set<std::int64_t> ref(a.begin(), a.end());
  ref.insert(b.begin(), b.end());
  EXPECT_EQ(s.size(), ref.size());
  EXPECT_EQ(s.keys(), std::vector<std::int64_t>(ref.begin(), ref.end()));
}

// ---- pipelined batch contract ----------------------------------------------

TEST(ParallelSetPipeline, StatsCountBatchesAndPending) {
  Scheduler sched(2);
  Rng rng(21);
  ParallelSet s(sched);
  for (int i = 0; i < 6; ++i) s.insert_batch(draw(rng, 3000));
  ParallelSet::Stats st = s.stats();
  EXPECT_EQ(st.batches, 6u);
  EXPECT_EQ(st.max_pending, 6u);  // no flush between batches
  EXPECT_EQ(st.flushes, 0u);
  s.flush();
  st = s.stats();
  EXPECT_EQ(st.flushes, 1u);
  EXPECT_EQ(st.max_pending, 6u);  // high-water mark survives the flush
  // After quiescence, size() is served from the cache: no extra flush.
  (void)s.size();
  EXPECT_EQ(s.stats().flushes, 1u);
}

TEST(ParallelSetPipeline, BackToBackBatchesOverlap) {
  // Each union below processes 20k keys; the next insert_batch is issued
  // microseconds later, long before that union materializes its root — so
  // the overlap counter must fire.
  Scheduler sched(2);
  Rng rng(22);
  ParallelSet s(sched);
  for (int i = 0; i < 10; ++i) s.insert_batch(draw(rng, 20000, 1 << 26));
  EXPECT_GT(s.stats().overlapped, 0u);
  s.flush();
  EXPECT_GT(s.size(), 0u);
}

TEST(ParallelSetPipeline, CompactStartsFreshEpoch) {
  Scheduler sched(2);
  Rng rng(23);
  ParallelSet s(sched);
  std::set<std::int64_t> ref;
  for (int i = 0; i < 8; ++i) {
    const auto ins = draw(rng, 4000);
    s.insert_batch(ins);
    ref.insert(ins.begin(), ins.end());
    const auto del = draw(rng, 2000);
    s.erase_batch(del);
    for (auto k : del) ref.erase(k);
  }
  const ParallelSet::Stats before = s.stats();
  s.compact();
  const ParallelSet::Stats after = s.stats();
  EXPECT_EQ(after.epochs, before.epochs + 1);
  // The fresh store holds one clean build; the old one held 16 batches of
  // superseded nodes on a monotonic arena.
  EXPECT_LT(after.arena_bytes, before.arena_bytes);
  EXPECT_EQ(s.keys(), std::vector<std::int64_t>(ref.begin(), ref.end()));
  // The set keeps working across the epoch swap.
  const auto more = draw(rng, 1000);
  s.insert_batch(more);
  ref.insert(more.begin(), more.end());
  EXPECT_EQ(s.keys(), std::vector<std::int64_t>(ref.begin(), ref.end()));
}

// ---- concurrent readers vs pipelined writers (tsan-covered) ----------------

TEST(ParallelSetConcurrent, ReadersRacePipelinedWriters) {
  Scheduler sched(2);
  Rng rng(31);
  const auto initial = draw(rng, 2000);
  ParallelSet s(sched, initial);
  std::set<std::int64_t> ref(initial.begin(), initial.end());

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> sink{0};  // keeps the reader loops un-elidable
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&s, &stop, &sink, r] {
      Rng mine(100 + r);
      std::size_t acc = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        acc += s.contains(mine.range(0, 1 << 20)) ? 1 : 0;
        if (mine.below(64) == 0) acc += s.keys().size();
      }
      sink.fetch_add(acc, std::memory_order_relaxed);
    });
  }

  for (int round = 0; round < 12; ++round) {
    const auto batch = draw(rng, 1 + rng.below(2000));
    if (rng.coin()) {
      s.insert_batch(batch);
      ref.insert(batch.begin(), batch.end());
    } else {
      s.erase_batch(batch);
      for (auto k : batch) ref.erase(k);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  s.flush();
  EXPECT_EQ(s.keys(), std::vector<std::int64_t>(ref.begin(), ref.end()));
}

TEST(ParallelSetConcurrent, ReadersRaceChunkedCompaction) {
  // compact() rebuilds the set into fresh chunked-leaf storage and frees the
  // old store; readers announce themselves through the seq_cst reader count
  // (docs/storage.md). Point reads and whole-tree walks race repeated
  // compactions here — under tsan this pins the Dekker publish/drain pair.
  Scheduler sched(2);
  Rng rng(37);
  const auto initial = draw(rng, 3000);
  ParallelSet s(sched, initial);
  std::set<std::int64_t> ref(initial.begin(), initial.end());

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> sink{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&s, &stop, &sink, r] {
      Rng mine(200 + r);
      std::size_t acc = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        acc += s.contains(mine.range(0, 1 << 20)) ? 1 : 0;
        if (mine.below(32) == 0) acc += s.keys().size();
      }
      sink.fetch_add(acc, std::memory_order_relaxed);
    });
  }

  for (int round = 0; round < 8; ++round) {
    const auto ins = draw(rng, 1 + rng.below(1500));
    s.insert_batch(ins);
    ref.insert(ins.begin(), ins.end());
    const auto del = draw(rng, 1 + rng.below(700));
    s.erase_batch(del);
    for (auto k : del) ref.erase(k);
    s.compact();  // rebuild into chunked leaves while readers are live
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  s.flush();
  EXPECT_EQ(s.keys(), std::vector<std::int64_t>(ref.begin(), ref.end()));
}

// ---- snapshots -------------------------------------------------------------

TEST(ParallelSetSnapshot, PinsContentsAcrossBatchesAndCompaction) {
  Scheduler sched(2);
  Rng rng(41);
  const auto initial = draw(rng, 3000);
  ParallelSet s(sched, initial);
  const std::set<std::int64_t> pinned_ref(initial.begin(), initial.end());
  const std::vector<std::int64_t> pinned(pinned_ref.begin(),
                                         pinned_ref.end());

  // Take the snapshot while a fresh batch is still materializing: the
  // snapshot pins the keys as of its own epoch, not the in-flight union.
  SetSnapshot snap = s.snapshot();
  EXPECT_EQ(snap.size(), pinned.size());
  EXPECT_EQ(snap.keys(), pinned);

  std::set<std::int64_t> ref = pinned_ref;
  for (int round = 0; round < 4; ++round) {
    const auto ins = draw(rng, 2000);
    s.insert_batch(ins);
    ref.insert(ins.begin(), ins.end());
    const auto del = draw(rng, 1000);
    s.erase_batch(del);
    for (auto k : del) ref.erase(k);
    s.compact();  // retires the snapshot's store epoch from the facade
  }
  s.flush();

  // The pinned snapshot still answers from its own epoch.
  EXPECT_EQ(snap.size(), pinned.size());
  EXPECT_EQ(snap.keys(), pinned);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t k = rng.range(0, 1 << 20);
    EXPECT_EQ(snap.contains(k), pinned_ref.count(k) != 0) << "key " << k;
  }

  // A fresh snapshot sees the post-compaction state.
  EXPECT_EQ(s.snapshot().keys(),
            std::vector<std::int64_t>(ref.begin(), ref.end()));
}

// ---- sharded vs unsharded equivalence --------------------------------------

class ShardedSetSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShardedSetSweep, MatchesUnshardedAndStdSet) {
  const unsigned shards = static_cast<unsigned>(GetParam());
  Scheduler sched(2);
  Rng rng(500 + shards);
  ShardedParallelSet sh(sched, shards);
  ParallelSet flat(sched);
  std::set<std::int64_t> ref;
  EXPECT_EQ(sh.shard_count(), shards);

  auto draw_signed = [&rng](std::size_t n) {
    // Negative keys exercise the shard-boundary sign-bit mapping.
    std::vector<std::int64_t> out;
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(rng.range(-(1 << 20), 1 << 20));
    return out;
  };

  for (int round = 0; round < 20; ++round) {
    const auto op = rng.below(3);
    const auto batch = draw_signed(1 + rng.below(400));
    if (op == 0) {
      sh.insert_batch(batch);
      flat.insert_batch(batch);
      ref.insert(batch.begin(), batch.end());
    } else if (op == 1) {
      sh.erase_batch(batch);
      flat.erase_batch(batch);
      for (auto k : batch) ref.erase(k);
    } else {
      std::vector<std::int64_t> keep = batch;
      keep.insert(keep.end(), ref.begin(), ref.end());
      if (rng.coin()) keep.resize(keep.size() / 2);
      sh.retain_batch(keep);
      flat.retain_batch(keep);
      const std::set<std::int64_t> keep_set(keep.begin(), keep.end());
      std::set<std::int64_t> next;
      for (auto k : ref)
        if (keep_set.count(k)) next.insert(k);
      ref = std::move(next);
    }
    ASSERT_EQ(sh.size(), ref.size()) << "round " << round;
    ASSERT_EQ(sh.keys(), flat.keys()) << "round " << round;
    ASSERT_EQ(sh.keys(), std::vector<std::int64_t>(ref.begin(), ref.end()))
        << "round " << round;
  }

  // Point reads route through the boundary binary search.
  for (int i = 0; i < 200; ++i) {
    const std::int64_t k = rng.range(-(1 << 20), 1 << 20);
    ASSERT_EQ(sh.contains(k), ref.count(k) != 0);
  }

  // Compacting every shard preserves contents and bumps per-shard epochs.
  sh.compact();
  EXPECT_EQ(sh.stats().epochs, shards);
  EXPECT_EQ(sh.keys(), std::vector<std::int64_t>(ref.begin(), ref.end()));
}

// Pins the routing behavior at the extremes of the key space: INT64_MIN and
// INT64_MAX must route to the first/last shard (the initial equal-width
// partition maps int64 to uint64 by flipping the sign bit, and the S=1
// partition has no boundaries at all), and every published split point must
// keep the boundary key itself in the right-hand shard.
TEST_P(ShardedSetSweep, ExtremeAndBoundaryKeysRouteCorrectly) {
  const unsigned shards = static_cast<unsigned>(GetParam());
  Scheduler sched(2);
  ShardedParallelSet sh(sched, shards);
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

  const std::vector<std::int64_t> lowers = sh.boundaries();
  EXPECT_EQ(lowers.size(), shards - 1u);
  std::vector<std::int64_t> edges{kMin, kMin + 1, -1, 0, 1, kMax - 1, kMax};
  for (const std::int64_t b : lowers) {
    edges.push_back(b - 1);  // last key of the left shard
    edges.push_back(b);      // first key of the right shard
    edges.push_back(b + 1);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  sh.insert_batch(edges);
  EXPECT_EQ(sh.keys(), edges);
  EXPECT_EQ(sh.size(), edges.size());
  for (const std::int64_t k : edges) EXPECT_TRUE(sh.contains(k));
  EXPECT_FALSE(sh.contains(2));
  EXPECT_FALSE(sh.contains(kMin + 2));

  // Per-shard sizes must agree with the boundary contract: shard i owns
  // [lowers[i-1], lowers[i]).
  std::size_t across = 0;
  for (unsigned i = 0; i < shards; ++i) {
    const std::int64_t lo = i == 0 ? kMin : lowers[i - 1];
    const bool last = i + 1 == shards;
    std::size_t expect = 0;
    for (const std::int64_t k : edges)
      if (k >= lo && (last || k < lowers[i])) ++expect;
    across += expect;
  }
  EXPECT_EQ(across, edges.size());

  sh.erase_batch(std::vector<std::int64_t>{kMin, kMax});
  EXPECT_FALSE(sh.contains(kMin));
  EXPECT_FALSE(sh.contains(kMax));
  EXPECT_EQ(sh.size(), edges.size() - 2);
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedSetSweep, ::testing::Values(1, 3, 8));

}  // namespace
}  // namespace pwf::rt
