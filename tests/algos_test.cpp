// Tests for the classic futures programs: Figure 1 producer/consumer,
// Figure 2 quicksort (and the paper's claim that it gains no asymptotic
// depth from pipelining), and the Section 5 mergesort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "algos/mergesort.hpp"
#include "algos/producer_consumer.hpp"
#include "algos/quicksort.hpp"
#include "support/bigstack.hpp"
#include "support/random.hpp"

namespace pwf::algos {
namespace {

// ---- list plumbing -------------------------------------------------------------

TEST(List, InputListRoundTrips) {
  cm::Engine eng;
  ListStore st(eng);
  std::vector<Value> v{3, 1, 4, 1, 5};
  EXPECT_EQ(peek_list(st.input_list(v)), v);
  EXPECT_TRUE(peek_list(st.input_list({})).empty());
}

// ---- producer / consumer --------------------------------------------------------

TEST(ProducerConsumer, SumsCorrectly) {
  cm::Engine eng;
  ListStore st(eng);
  const auto r = produce_consume(st, 100);
  EXPECT_EQ(r.sum, 100 * 101 / 2);
}

TEST(ProducerConsumer, ZeroAndNegative) {
  {
    cm::Engine eng;
    ListStore st(eng);
    EXPECT_EQ(produce_consume(st, 0).sum, 0);
  }
  {
    cm::Engine eng;
    ListStore st(eng);
    EXPECT_EQ(produce_consume(st, -1).sum, 0);  // empty list
  }
}

TEST(ProducerConsumer, PipelinedConsumerFinishesWithProducer) {
  run_big([] {
    cm::Engine eng;
    ListStore st(eng);
    const auto r = produce_consume(st, 20000);
    // Pipelined: the consumer trails the producer by O(1), so it finishes
    // essentially when the producer does.
    EXPECT_LT(static_cast<double>(r.consume_done),
              1.2 * static_cast<double>(r.produce_done));
  });
}

TEST(ProducerConsumer, StrictConsumerWaitsForWholeList) {
  run_big([] {
    cm::Engine eng;
    ListStore st(eng);
    const auto r = produce_consume_strict(st, 20000);
    EXPECT_EQ(r.sum, 20000LL * 20001 / 2);
    // Strict: consumption adds its full Θ(n) chain after production.
    EXPECT_GT(static_cast<double>(r.consume_done),
              1.4 * static_cast<double>(r.produce_done));
  });
}

TEST(ProducerConsumer, PipelinedBeatsStrictTotalDepth) {
  run_big([] {
    double piped, strict;
    {
      cm::Engine eng;
      ListStore st(eng);
      produce_consume(st, 30000);
      piped = static_cast<double>(eng.depth());
    }
    {
      cm::Engine eng;
      ListStore st(eng);
      produce_consume_strict(st, 30000);
      strict = static_cast<double>(eng.depth());
    }
    EXPECT_GT(strict, 2.0 * piped);
  });
}

// ---- quicksort -------------------------------------------------------------------

class QuicksortCase
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint64_t>> {
};

TEST_P(QuicksortCase, SortsRandomInput) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  std::vector<Value> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng.range(-1000, 1000));
  std::vector<Value> expected = v;
  std::sort(expected.begin(), expected.end());
  run_big([&] {
    cm::Engine eng;
    ListStore st(eng);
    EXPECT_EQ(peek_list(quicksort(st, v)), expected);
    EXPECT_EQ(eng.nonlinear_reads(), 0u);
  });
  run_big([&] {
    cm::Engine eng;
    ListStore st(eng);
    EXPECT_EQ(peek_list(quicksort_strict(st, v)), expected);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, QuicksortCase,
    ::testing::Values(std::pair<std::size_t, std::uint64_t>{0, 1},
                      std::pair<std::size_t, std::uint64_t>{1, 2},
                      std::pair<std::size_t, std::uint64_t>{2, 3},
                      std::pair<std::size_t, std::uint64_t>{100, 4},
                      std::pair<std::size_t, std::uint64_t>{1000, 5},
                      std::pair<std::size_t, std::uint64_t>{10000, 6}));

TEST(Quicksort, SortedAndReverseInputs) {
  std::vector<Value> asc, desc;
  for (Value i = 0; i < 2000; ++i) asc.push_back(i);
  desc.assign(asc.rbegin(), asc.rend());
  run_big([&] {
    cm::Engine eng;
    ListStore st(eng);
    EXPECT_EQ(peek_list(quicksort(st, desc)), asc);
  });
  run_big([&] {
    cm::Engine eng;
    ListStore st(eng);
    EXPECT_EQ(peek_list(quicksort(st, asc)), asc);
  });
}

TEST(Quicksort, DuplicatesSurvive) {
  std::vector<Value> v{5, 5, 5, 1, 1, 9};
  cm::Engine eng;
  ListStore st(eng);
  std::vector<Value> expected = v;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(peek_list(quicksort(st, v)), expected);
}

TEST(QuicksortDepth, LinearWithAndWithoutPipelining) {
  // The paper's point about Figure 2: expected depth is Θ(n) in both
  // versions — pipelining buys constant factors only. Check depth/n is
  // bounded and that doubling n roughly doubles depth for both.
  run_big([] {
    Rng rng(7);
    double prev_piped = 0, prev_strict = 0;
    for (std::size_t n : {4000u, 8000u, 16000u}) {
      std::vector<Value> v;
      for (std::size_t i = 0; i < n; ++i)
        v.push_back(rng.range(-1 << 20, 1 << 20));
      double piped, strict;
      {
        cm::Engine eng;
        ListStore st(eng);
        quicksort(st, v);
        piped = static_cast<double>(eng.depth());
      }
      {
        cm::Engine eng;
        ListStore st(eng);
        quicksort_strict(st, v);
        strict = static_cast<double>(eng.depth());
      }
      if (prev_piped > 0) {
        // Linear growth (coarse: random pivots add variance).
        EXPECT_NEAR(piped / prev_piped, 2.0, 1.2);
        EXPECT_NEAR(strict / prev_strict, 2.0, 1.2);
      }
      // Both versions are Θ(n): within constant factors of n and of each
      // other.
      EXPECT_GT(piped, static_cast<double>(n) * 0.5);
      EXPECT_LT(piped, static_cast<double>(n) * 30.0);
      EXPECT_GT(strict, static_cast<double>(n) * 0.5);
      EXPECT_LT(strict, static_cast<double>(n) * 30.0);
      EXPECT_LT(strict / piped, 10.0);
      EXPECT_GT(strict / piped, 1.0 / 10.0);
      prev_piped = piped;
      prev_strict = strict;
    }
  });
}

// ---- mergesort -------------------------------------------------------------------

class MergesortCase
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint64_t>> {
};

TEST_P(MergesortCase, SortsRandomInput) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  std::vector<trees::Key> v;
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(rng.range(-1 << 20, 1 << 20));
  std::vector<trees::Key> expected = v;
  std::sort(expected.begin(), expected.end());
  {
    cm::Engine eng;
    trees::Store st(eng);
    std::vector<trees::Key> got;
    trees::collect_inorder(trees::peek(mergesort(st, v)), got);
    EXPECT_EQ(got, expected);
  }
  {
    cm::Engine eng;
    trees::Store st(eng);
    std::vector<trees::Key> got;
    trees::collect_inorder(mergesort_strict(st, v), got);
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MergesortCase,
    ::testing::Values(std::pair<std::size_t, std::uint64_t>{0, 1},
                      std::pair<std::size_t, std::uint64_t>{1, 2},
                      std::pair<std::size_t, std::uint64_t>{2, 3},
                      std::pair<std::size_t, std::uint64_t>{255, 4},
                      std::pair<std::size_t, std::uint64_t>{256, 5},
                      std::pair<std::size_t, std::uint64_t>{5000, 6}));

TEST(MergesortBalanced, SortsAndIsHeightOptimal) {
  Rng rng(17);
  std::vector<trees::Key> v;
  const std::size_t n = 1 << 12;
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(rng.range(-1 << 24, 1 << 24));
  std::vector<trees::Key> expected = v;
  std::sort(expected.begin(), expected.end());
  cm::Engine eng;
  trees::Store st(eng);
  trees::TreeCell* out = mergesort_balanced(st, v);
  std::vector<trees::Key> got;
  trees::collect_inorder(trees::peek(out), got);
  EXPECT_EQ(got, expected);
  EXPECT_LE(trees::height(trees::peek(out)),
            static_cast<int>(std::ceil(std::log2(static_cast<double>(n) + 1))) + 1);
  // Guaranteed polylog depth: lg n levels x O(lg n) per level.
  const double lgn = std::log2(static_cast<double>(n));
  EXPECT_LT(static_cast<double>(eng.depth()), 40.0 * lgn * lgn);
}

TEST(MergesortBalanced, TinyInputs) {
  for (std::size_t n : {0u, 1u, 2u, 3u}) {
    std::vector<trees::Key> v;
    for (std::size_t i = 0; i < n; ++i) v.push_back(static_cast<trees::Key>(n - i));
    cm::Engine eng;
    trees::Store st(eng);
    trees::TreeCell* out = mergesort_balanced(st, v);
    std::vector<trees::Key> got;
    trees::collect_inorder(trees::peek(out), got);
    std::vector<trees::Key> expected = v;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(MergesortDepth, PipeliningHelpsALot) {
  Rng rng(8);
  std::vector<trees::Key> v;
  for (std::size_t i = 0; i < (1u << 12); ++i)
    v.push_back(rng.range(-1 << 24, 1 << 24));
  double piped, strict;
  {
    cm::Engine eng;
    trees::Store st(eng);
    mergesort(st, v);
    piped = static_cast<double>(eng.depth());
  }
  {
    cm::Engine eng;
    trees::Store st(eng);
    mergesort_strict(st, v);
    strict = static_cast<double>(eng.depth());
  }
  // Θ(lg^3 n) vs conjectured ~Θ(lg n lglg n): expect a large gap.
  EXPECT_GT(strict, 3.0 * piped);
}

TEST(MergesortDepth, PolylogarithmicUpperBound) {
  // Even without the conjecture, pipelined depth must be at most ~lg^2 n.
  Rng rng(9);
  std::vector<trees::Key> v;
  const std::size_t n = 1 << 13;
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(rng.range(-1 << 24, 1 << 24));
  cm::Engine eng;
  trees::Store st(eng);
  mergesort(st, v);
  const double lgn = std::log2(static_cast<double>(n));
  EXPECT_LT(static_cast<double>(eng.depth()), 25.0 * lgn * lgn);
}

}  // namespace
}  // namespace pwf::algos
