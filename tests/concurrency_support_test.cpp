// Stress tests for the concurrency support pieces that everything else
// rests on: the lock-free bump allocator and the big-stack runner.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/concurrent_arena.hpp"
#include "support/bigstack.hpp"

namespace pwf {
namespace {

TEST(ConcurrentArena, SingleThreadBasics) {
  rt::ConcurrentArena arena(1 << 12);
  auto* a = arena.create<std::uint64_t>(7);
  auto* b = arena.create<std::uint64_t>(9);
  EXPECT_NE(a, b);
  EXPECT_EQ(*a, 7u);
  EXPECT_EQ(*b, 9u);
}

TEST(ConcurrentArena, GrowsAcrossChunks) {
  rt::ConcurrentArena arena(256);
  std::vector<char*> blocks;
  for (int i = 0; i < 2000; ++i) {
    char* p = static_cast<char*>(arena.allocate(64, 8));
    std::memset(p, i & 0xff, 64);
    blocks.push_back(p);
  }
  for (int i = 0; i < 2000; ++i)
    for (int j = 0; j < 64; ++j)
      ASSERT_EQ(static_cast<unsigned char>(blocks[i][j]), i & 0xff);
}

TEST(ConcurrentArena, ParallelAllocationsDoNotOverlap) {
  rt::ConcurrentArena arena(1 << 12);  // small chunks force growth races
  constexpr int kThreads = 4;
  constexpr int kAllocs = 30000;
  std::vector<std::vector<std::uint32_t*>> owned(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      owned[t].reserve(kAllocs);
      for (int i = 0; i < kAllocs; ++i) {
        auto* p = static_cast<std::uint32_t*>(
            arena.allocate(sizeof(std::uint32_t), alignof(std::uint32_t)));
        *p = static_cast<std::uint32_t>(t * kAllocs + i);
        owned[t].push_back(p);
      }
    });
  for (auto& th : threads) th.join();
  // Every slot still holds its writer's value: no overlap, no tearing.
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kAllocs; ++i)
      ASSERT_EQ(*owned[t][i], static_cast<std::uint32_t>(t * kAllocs + i));
}

TEST(ConcurrentArena, AlignmentRespected) {
  rt::ConcurrentArena arena;
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void* p = arena.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
}

TEST(BigStack, RunsAndReturns) {
  int x = 0;
  run_with_stack(1 << 20, [&] { x = 42; });
  EXPECT_EQ(x, 42);
}

TEST(BigStack, SurvivesDeepRecursion) {
  // ~1M frames of a small recursive function would overflow a default
  // stack; must succeed on the big one.
  struct Rec {
    static std::int64_t down(std::int64_t n) {
      if (n == 0) return 0;
      return 1 + down(n - 1);
    }
  };
  std::int64_t depth = 0;
  run_big([&] { depth = Rec::down(1000000); });
  EXPECT_EQ(depth, 1000000);
}

TEST(BigStack, PropagatesExceptions) {
  EXPECT_THROW(
      run_with_stack(1 << 20,
                     [] { throw std::runtime_error("boom"); }),
      std::runtime_error);
}

}  // namespace
}  // namespace pwf
