// Tests for the Chase–Lev work-stealing deque: single-owner semantics and a
// multi-threaded exactly-once stress.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "runtime/deque.hpp"

namespace pwf::rt {
namespace {

TEST(Deque, LifoForOwner) {
  WorkStealingDeque d;
  int a = 1, b = 2, c = 3;
  d.push(&a);
  d.push(&b);
  d.push(&c);
  EXPECT_EQ(d.pop(), &c);
  EXPECT_EQ(d.pop(), &b);
  EXPECT_EQ(d.pop(), &a);
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(Deque, FifoForThief) {
  WorkStealingDeque d;
  int a = 1, b = 2, c = 3;
  d.push(&a);
  d.push(&b);
  d.push(&c);
  EXPECT_EQ(d.steal(), &a);
  EXPECT_EQ(d.steal(), &b);
  EXPECT_EQ(d.steal(), &c);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(Deque, MixedPopAndSteal) {
  WorkStealingDeque d;
  int xs[4];
  for (int i = 0; i < 4; ++i) d.push(&xs[i]);
  EXPECT_EQ(d.pop(), &xs[3]);
  EXPECT_EQ(d.steal(), &xs[0]);
  EXPECT_EQ(d.pop(), &xs[2]);
  EXPECT_EQ(d.steal(), &xs[1]);
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(Deque, GrowsPastInitialCapacity) {
  WorkStealingDeque d(/*capacity_log2=*/2);  // 4 slots
  std::vector<int> xs(1000);
  for (int i = 0; i < 1000; ++i) d.push(&xs[i]);
  for (int i = 999; i >= 0; --i) EXPECT_EQ(d.pop(), &xs[i]);
}

TEST(Deque, InterleavedPushPop) {
  WorkStealingDeque d;
  int x = 0;
  for (int round = 0; round < 10000; ++round) {
    d.push(&x);
    EXPECT_EQ(d.pop(), &x);
  }
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(DequeStress, EveryItemConsumedExactlyOnce) {
  // One owner pushes N items and pops; several thieves steal concurrently.
  // Every item must be received exactly once across all consumers.
  constexpr int kItems = 200000;
  constexpr int kThieves = 3;
  WorkStealingDeque d(4);
  std::vector<int> items(kItems);
  std::atomic<int> consumed{0};
  std::vector<std::atomic<std::uint8_t>> seen(kItems);

  auto mark = [&](void* p) {
    const auto idx = static_cast<int>(static_cast<int*>(p) - items.data());
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, kItems);
    const auto prev = seen[idx].fetch_add(1);
    ASSERT_EQ(prev, 0u) << "item " << idx << " consumed twice";
    consumed.fetch_add(1);
  };

  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t)
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) ||
             consumed.load() < kItems) {
        if (void* p = d.steal()) mark(p);
        if (consumed.load() >= kItems) break;
      }
    });

  // Owner: pushes in bursts, pops some itself.
  int pushed = 0;
  while (pushed < kItems) {
    const int burst = std::min(64, kItems - pushed);
    for (int i = 0; i < burst; ++i) d.push(&items[pushed++]);
    for (int i = 0; i < burst / 2; ++i)
      if (void* p = d.pop()) mark(p);
  }
  done.store(true, std::memory_order_release);
  while (consumed.load() < kItems)
    if (void* p = d.pop()) mark(p);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(consumed.load(), kItems);
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(seen[i].load(), 1u);
}

}  // namespace
}  // namespace pwf::rt
