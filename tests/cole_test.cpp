// Tests for Cole's pipelined merge sort: correctness against std::sort and
// the schedule properties (3·height stages, O(n lg n) work).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "algos/cole.hpp"
#include "support/random.hpp"

namespace pwf::algos::cole {
namespace {

std::vector<Value> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> v;
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(rng.range(-(1ll << 40), 1ll << 40));
  return v;
}

class ColeSort : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ColeSort, SortsRandomInput) {
  const std::size_t n = GetParam();
  const auto v = random_values(n, n * 7 + 1);
  std::vector<Value> expected = v;
  std::sort(expected.begin(), expected.end());
  ColeStats stats;
  EXPECT_EQ(cole_sort(v, &stats), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ColeSort,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 7, 8, 9, 31, 32,
                                           33, 100, 1000, 1 << 12,
                                           (1 << 12) + 17));

TEST(ColeSort, SortedReverseAndDuplicates) {
  std::vector<Value> asc;
  for (Value i = 0; i < 500; ++i) asc.push_back(i);
  std::vector<Value> desc(asc.rbegin(), asc.rend());
  EXPECT_EQ(cole_sort(asc, nullptr), asc);
  EXPECT_EQ(cole_sort(desc, nullptr), asc);
  std::vector<Value> dups(300, 7);
  dups.insert(dups.end(), 300, 3);
  std::vector<Value> expected = dups;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(cole_sort(dups, nullptr), expected);
}

TEST(ColeSchedule, StagesAreThreeTimesHeight) {
  for (int lg = 6; lg <= 14; lg += 2) {
    const std::size_t n = 1ull << lg;
    ColeStats stats;
    cole_sort(random_values(n, lg), &stats);
    EXPECT_EQ(stats.tree_height, lg);
    // Root at height lg completes at stage 3·lg (leaves complete at 0).
    EXPECT_EQ(stats.stages, static_cast<std::uint64_t>(3 * lg)) << "n=" << n;
  }
}

TEST(ColeSchedule, WorkIsNLogN) {
  double prev_per = 0;
  for (int lg = 8; lg <= 14; lg += 3) {
    const std::size_t n = 1ull << lg;
    ColeStats stats;
    cole_sort(random_values(n, 100 + lg), &stats);
    const double per =
        static_cast<double>(stats.work) / (static_cast<double>(n) * lg);
    EXPECT_GT(per, 0.5);
    EXPECT_LT(per, 8.0);
    if (prev_per > 0) {
      EXPECT_NEAR(per, prev_per, 1.0);  // stable constant
    }
    prev_per = per;
  }
}

TEST(ColeSchedule, NonPowerSizesStayOnSchedule) {
  for (std::size_t n : {1000u, 1023u, 1025u, 3000u}) {
    ColeStats stats;
    const auto v = random_values(n, n);
    std::vector<Value> expected = v;
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(cole_sort(v, &stats), expected);
    // Height is ceil(lg n); stages stay within 3·(height+1).
    const auto h = static_cast<std::uint64_t>(
        std::ceil(std::log2(static_cast<double>(n))));
    EXPECT_LE(stats.stages, 3 * (h + 1)) << "n=" << n;
  }
}

}  // namespace
}  // namespace pwf::algos::cole
