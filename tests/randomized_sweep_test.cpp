// Randomized differential sweep: for many seeds, draw random shapes/sizes
// and check every cost-model algorithm against independent oracles in one
// pass, plus the standing invariants (structure, linearity, depth sanity).
// This is the broad-coverage net behind the targeted tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "algos/mergesort.hpp"
#include "costmodel/engine.hpp"
#include "support/random.hpp"
#include "treap/setops.hpp"
#include "trees/merge.hpp"
#include "trees/rebalance.hpp"
#include "ttree/handpipe.hpp"
#include "ttree/insert.hpp"

namespace pwf {
namespace {

std::vector<std::int64_t> draw_keys(Rng& rng, std::size_t n,
                                    std::int64_t universe) {
  std::set<std::int64_t> s;
  while (s.size() < n) s.insert(rng.range(0, universe));
  return {s.begin(), s.end()};
}

class Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Sweep, AllAlgorithmsAgreeWithOracles) {
  Rng rng(GetParam() * 0x9e3779b9 + 1);
  // Random sizes, skewed toward small (edge-shape coverage) with occasional
  // larger draws; a small universe forces dense overlap.
  auto size = [&] {
    const auto r = rng.below(10);
    if (r < 5) return static_cast<std::size_t>(rng.below(20));
    if (r < 9) return static_cast<std::size_t>(20 + rng.below(500));
    return static_cast<std::size_t>(500 + rng.below(3000));
  };
  const std::int64_t universe =
      rng.coin() ? 4000 : (std::int64_t{1} << 30);
  const auto a = draw_keys(rng, size(), universe);
  const auto b = draw_keys(rng, std::max<std::size_t>(1, size()), universe);

  // ---- tree merge (disjoint-ified inputs: merge keeps duplicates, so use
  // ---- the raw sets and compare against multiset merge).
  {
    cm::Engine eng;
    trees::Store st(eng);
    trees::TreeCell* out =
        trees::merge(st, st.input(st.build_balanced(a)),
                     st.input(st.build_balanced(b)));
    std::vector<std::int64_t> got;
    trees::collect_inorder(trees::peek(out), got);
    EXPECT_EQ(got, trees::merge_reference(a, b));
    EXPECT_EQ(eng.nonlinear_reads(), 0u);
  }
  // ---- merge + rebalance
  {
    cm::Engine eng;
    trees::Store st(eng);
    trees::TreeCell* merged =
        trees::merge(st, st.input(st.build_balanced(a)),
                     st.input(st.build_balanced(b)));
    trees::TreeCell* bal = trees::rebalance(st, merged);
    std::vector<std::int64_t> got;
    trees::collect_inorder(trees::peek(bal), got);
    EXPECT_EQ(got, trees::merge_reference(a, b));
  }
  // ---- treap set ops
  {
    std::vector<std::int64_t> u_ref, d_ref, i_ref;
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(u_ref));
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(d_ref));
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(i_ref));
    cm::Engine eng;
    treap::Store st(eng);
    auto run = [&](auto op) {
      treap::TreapCell* out =
          op(st, st.input(st.build(a)), st.input(st.build(b)));
      std::vector<std::int64_t> got;
      treap::collect_inorder(treap::peek(out), got);
      EXPECT_TRUE(treap::validate(st, treap::peek(out)));
      return got;
    };
    EXPECT_EQ(run([](auto& s, auto* x, auto* y) {
                return treap::union_treaps(s, x, y);
              }),
              u_ref);
    EXPECT_EQ(run([](auto& s, auto* x, auto* y) {
                return treap::diff_treaps(s, x, y);
              }),
              d_ref);
    EXPECT_EQ(run([](auto& s, auto* x, auto* y) {
                return treap::intersect_treaps(s, x, y);
              }),
              i_ref);
    EXPECT_EQ(eng.nonlinear_reads(), 0u);
  }
  // ---- 2-6 tree bulk insert (futures + hand pipeline), tree must be
  // ---- nonempty.
  if (!a.empty()) {
    std::set<std::int64_t> ref(a.begin(), a.end());
    ref.insert(b.begin(), b.end());
    const std::vector<std::int64_t> expected(ref.begin(), ref.end());
    const int fanout = rng.coin() ? 3 : 6;
    {
      cm::Engine eng;
      ttree::Store st(eng);
      ttree::TCell* out =
          ttree::bulk_insert(st, st.input(st.build(a, fanout)), b);
      EXPECT_TRUE(ttree::validate(ttree::peek(out)));
      std::vector<std::int64_t> got;
      ttree::collect_keys(ttree::peek(out), got);
      EXPECT_EQ(got, expected);
    }
    {
      ttree::handpipe::HandPipeline hp;
      ttree::handpipe::HNode* root =
          hp.bulk_insert(hp.build(a, fanout), b, nullptr);
      EXPECT_TRUE(ttree::handpipe::HandPipeline::validate(root));
      std::vector<std::int64_t> got;
      ttree::handpipe::HandPipeline::collect_keys(root, got);
      EXPECT_EQ(got, expected);
    }
  }
  // ---- mergesort on a shuffled multiset (duplicates allowed).
  {
    std::vector<std::int64_t> v = a;
    v.insert(v.end(), b.begin(), b.end());  // create duplicates
    std::shuffle(v.begin(), v.end(), rng);
    std::vector<std::int64_t> expected = v;
    std::sort(expected.begin(), expected.end());
    cm::Engine eng;
    trees::Store st(eng);
    std::vector<std::int64_t> got;
    trees::collect_inorder(trees::peek(algos::mergesort(st, v)), got);
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sweep,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace pwf
