// Tests for the fast-path runtime pieces behind E23: the per-thread coroutine
// frame pool, the bounded MPMC injection ring with its mutex overflow
// fallback, and the Scheduler stats that surface both (plus the serial-cutoff
// counter the granularity control bumps).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/frame_pool.hpp"
#include "runtime/inject_ring.hpp"
#include "runtime/rt_trees.hpp"
#include "runtime/scheduler.hpp"

namespace pwf::rt {
namespace {

TEST(RtFramePool, ReusesFreedBlocksLifo) {
  const FramePool::Stats before = FramePool::stats();
  void* p = FramePool::allocate(192);
  FramePool::release(p, 192);
  void* q = FramePool::allocate(192);
  EXPECT_EQ(q, p);  // freelists are LIFO: the freshest block comes back first
  FramePool::release(q, 192);
  const FramePool::Stats after = FramePool::stats();
  EXPECT_GE(after.hits, before.hits + 1);
}

TEST(RtFramePool, SharesFreelistWithinSizeClass) {
  // 200 and 250 bytes round up to the same 256-byte class, so a block freed
  // at one size serves an allocation at the other.
  void* p = FramePool::allocate(200);
  FramePool::release(p, 200);
  void* q = FramePool::allocate(250);
  EXPECT_EQ(q, p);
  FramePool::release(q, 250);
}

TEST(RtFramePool, OversizeBypassesPool) {
  const FramePool::Stats before = FramePool::stats();
  void* p = FramePool::allocate(4096);
  ASSERT_NE(p, nullptr);
  FramePool::release(p, 4096);
  const FramePool::Stats after = FramePool::stats();
  EXPECT_GE(after.oversize, before.oversize + 1);
  // Oversize blocks never enter a freelist, so hits cannot come from them.
}

TEST(RtInjectRing, FifoWithinCapacity) {
  InjectRing ring(8);
  EXPECT_EQ(ring.pop(), nullptr);
  const std::uintptr_t base = 0x1000;
  for (std::uintptr_t i = 0; i < 8; ++i)
    EXPECT_TRUE(ring.push(reinterpret_cast<void*>(base + i)));
  EXPECT_FALSE(ring.push(reinterpret_cast<void*>(base + 99)));  // full
  for (std::uintptr_t i = 0; i < 8; ++i)
    EXPECT_EQ(ring.pop(), reinterpret_cast<void*>(base + i));
  EXPECT_EQ(ring.pop(), nullptr);  // empty again
}

TEST(RtInjectRing, RecoversAfterPop) {
  InjectRing ring(4);
  const std::uintptr_t base = 0x2000;
  for (std::uintptr_t i = 0; i < 4; ++i)
    ASSERT_TRUE(ring.push(reinterpret_cast<void*>(base + i)));
  ASSERT_FALSE(ring.push(reinterpret_cast<void*>(base + 4)));
  EXPECT_EQ(ring.pop(), reinterpret_cast<void*>(base + 0));
  EXPECT_TRUE(ring.push(reinterpret_cast<void*>(base + 4)));  // slot freed
  for (std::uintptr_t i = 1; i <= 4; ++i)
    EXPECT_EQ(ring.pop(), reinterpret_cast<void*>(base + i));
  EXPECT_EQ(ring.pop(), nullptr);
}

Fiber spin_until(std::atomic<bool>* started, std::atomic<bool>* release) {
  started->store(true, std::memory_order_release);
  while (!release->load(std::memory_order_acquire)) std::this_thread::yield();
  co_return;
}

Fiber bump(std::atomic<int>* done) {
  done->fetch_add(1, std::memory_order_acq_rel);
  co_return;
}

TEST(RtSchedulerStats, InjectOverflowFallbackDeliversAll) {
  Scheduler sched(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  // Pin the lone worker inside a spinning fiber so nothing drains the ring,
  // then inject more posts than its capacity (1024): the excess must take
  // the mutex-guarded overflow path and still be executed afterwards.
  sched.post(spin_until(&started, &release).handle);
  while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
  constexpr int kPosts = 1500;
  for (int i = 0; i < kPosts; ++i) sched.post(bump(&done).handle);
  release.store(true, std::memory_order_release);
  while (done.load(std::memory_order_acquire) < kPosts)
    std::this_thread::yield();
  const Scheduler::Stats st = sched.stats();
  EXPECT_EQ(done.load(), kPosts);
  EXPECT_GT(st.inject_overflows, 0u);
  EXPECT_GE(st.injected, static_cast<std::uint64_t>(kPosts));
  // The backlog must be drained in whole-vector batches (one lock
  // acquisition each), not item by item: with ~500 spilled posts, the
  // batch count has to come in far under the overflow count.
  EXPECT_GE(st.inject_overflow_batches, 1u);
  EXPECT_LT(st.inject_overflow_batches, st.inject_overflows);
}

TEST(RtSchedulerStats, SerialCutoffsCounted) {
  Scheduler sched(1);
  trees::Store st;
  // Two 64-key trees are below the default serial threshold (128), and both
  // inputs are preset, so the merge body takes its serial fast path.
  std::vector<std::int64_t> a, b;
  for (std::int64_t i = 0; i < 64; ++i) {
    a.push_back(2 * i);
    b.push_back(2 * i + 1);
  }
  trees::Cell* out = trees::merge(st, st.input(st.build_balanced(a)),
                                  st.input(st.build_balanced(b)));
  EXPECT_EQ(trees::wait_inorder(out).size(), 128u);
  EXPECT_GT(sched.stats().serial_cutoffs, 0u);
}

TEST(RtSchedulerStats, FramePoolHitsGrowUnderLoad) {
  Scheduler sched(1);
  trees::Store st;
  std::vector<std::int64_t> a, b;
  for (std::int64_t i = 0; i < 512; ++i) {
    a.push_back(2 * i);
    b.push_back(2 * i + 1);
  }
  // A 512-key merge forks above the cutoff; the worker allocates and frees
  // fiber frames continuously, so its pool must start serving from the
  // freelist within the run (and certainly across two runs).
  const std::uint64_t before = sched.stats().frame_pool_hits;
  for (int round = 0; round < 2; ++round) {
    trees::Cell* out = trees::merge(st, st.input(st.build_balanced(a)),
                                    st.input(st.build_balanced(b)));
    EXPECT_EQ(trees::wait_inorder(out).size(), 1024u);
  }
  EXPECT_GT(sched.stats().frame_pool_hits, before);
}

}  // namespace
}  // namespace pwf::rt
