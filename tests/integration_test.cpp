// Cross-module integration tests: cost-model algorithms traced end-to-end
// into the Section-4 simulator; cost-model and real-runtime implementations
// agreeing on results; the merge → rebalance pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "algos/mergesort.hpp"
#include "costmodel/engine.hpp"
#include "runtime/rt_treap.hpp"
#include "runtime/rt_ttree.hpp"
#include "runtime/scheduler.hpp"
#include "sim/dag.hpp"
#include "sim/scheduler.hpp"
#include "support/random.hpp"
#include "treap/setops.hpp"
#include "trees/merge.hpp"
#include "trees/rebalance.hpp"
#include "ttree/insert.hpp"

namespace pwf {
namespace {

std::vector<std::int64_t> random_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::set<std::int64_t> s;
  while (s.size() < n) s.insert(rng.range(0, 1 << 24));
  return {s.begin(), s.end()};
}

// Every cost-model algorithm, traced and scheduled: the Lemma 4.1 bound and
// the audits must hold for all of them — the runtime is algorithm-agnostic.
TEST(EndToEnd, AllAlgorithmsScheduleWithinBounds) {
  struct Run {
    const char* name;
    std::function<void(cm::Engine&)> body;
  };
  const auto keys_a = random_keys(400, 1);
  const auto keys_b = random_keys(400, 2);
  std::vector<Run> runs;
  runs.push_back({"merge", [&](cm::Engine& eng) {
                    trees::Store st(eng);
                    trees::merge(st, st.input(st.build_balanced(keys_a)),
                                 st.input(st.build_balanced(keys_b)));
                  }});
  runs.push_back({"union", [&](cm::Engine& eng) {
                    treap::Store st(eng);
                    treap::union_treaps(st, st.input(st.build(keys_a)),
                                        st.input(st.build(keys_b)));
                  }});
  runs.push_back({"diff", [&](cm::Engine& eng) {
                    treap::Store st(eng);
                    treap::diff_treaps(st, st.input(st.build(keys_a)),
                                       st.input(st.build(keys_b)));
                  }});
  runs.push_back({"ttree-insert", [&](cm::Engine& eng) {
                    ttree::Store st(eng);
                    ttree::bulk_insert(st, st.input(st.build(keys_a, 3)),
                                       keys_b);
                  }});
  runs.push_back({"mergesort", [&](cm::Engine& eng) {
                    trees::Store st(eng);
                    std::vector<trees::Key> v(keys_a.begin(), keys_a.end());
                    Rng rng(3);
                    std::shuffle(v.begin(), v.end(), rng);
                    algos::mergesort(st, v);
                  }});
  for (auto& run : runs) {
    cm::Engine eng(/*trace=*/true);
    run.body(eng);
    sim::Dag dag(*eng.trace());
    EXPECT_EQ(dag.depth(), eng.depth()) << run.name;
    for (std::uint64_t p : {1, 4, 32, 256}) {
      const auto r = sim::schedule(dag, p, sim::Discipline::kStack);
      EXPECT_TRUE(r.within_bound(p)) << run.name << " p=" << p;
      EXPECT_TRUE(r.erew_ok) << run.name;
      EXPECT_TRUE(r.linear_ok) << run.name;
    }
  }
}

TEST(EndToEnd, MergeThenRebalanceKeepsLogDepthPipeline) {
  const auto a = random_keys(2000, 4);
  const auto b = random_keys(2000, 5);
  cm::Engine eng;
  trees::Store st(eng);
  trees::TreeCell* merged = trees::merge(
      st, st.input(st.build_balanced(a)), st.input(st.build_balanced(b)));
  trees::TreeCell* balanced = trees::rebalance(st, merged);
  std::vector<trees::Key> got;
  trees::collect_inorder(trees::peek(balanced), got);
  std::vector<trees::Key> expected;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(expected));
  EXPECT_EQ(got, expected);
  // Whole pipeline stays polylogarithmic in depth.
  EXPECT_LT(static_cast<double>(eng.depth()),
            40.0 * 2 * std::log2(4000.0));
}

TEST(EndToEnd, CostModelAndRuntimeUnionProduceIdenticalTreaps) {
  // Treap shape is determined by keys+priorities, and both implementations
  // hash priorities identically — the result trees must match exactly.
  const auto a = random_keys(1000, 6);
  const auto b = random_keys(1000, 7);
  std::vector<std::int64_t> cm_keys;
  int cm_height = 0;
  {
    cm::Engine eng;
    treap::Store st(eng);
    treap::TreapCell* out = treap::union_treaps(
        st, st.input(st.build(a)), st.input(st.build(b)));
    treap::collect_inorder(treap::peek(out), cm_keys);
    cm_height = treap::height(treap::peek(out));
  }
  {
    // leaf_cap = 1 disables chunked leaves so the runtime tree's *shape*
    // matches the cost model's node-per-key tree exactly.
    rt::Scheduler sched(2);
    rt::treap::Store st(pipelined::treap::kDefaultSalt, 1);
    rt::treap::Cell* out = rt::treap::union_treaps(
        st, st.input(st.build(a)), st.input(st.build(b)));
    const auto rt_keys = rt::treap::wait_inorder(out);
    EXPECT_EQ(rt_keys, cm_keys);
    // Height: walk via peeks after completion.
    struct H {
      static int of(rt::treap::Node* n) {
        if (!n) return 0;
        if (pipelined::treap::is_leaf(n)) return 1;
        return 1 + std::max(of(n->left->peek()), of(n->right->peek()));
      }
    };
    EXPECT_EQ(H::of(out->peek()), cm_height);
  }
  {
    // With default chunked-leaf storage the shape compresses but the
    // logical contents must be unchanged.
    rt::Scheduler sched(2);
    rt::treap::Store st;
    rt::treap::Cell* out = rt::treap::union_treaps(
        st, st.input(st.build(a)), st.input(st.build(b)));
    EXPECT_EQ(rt::treap::wait_inorder(out), cm_keys);
  }
}

TEST(EndToEnd, TtreeCostModelAndRuntimeAgree) {
  const auto tree_keys = random_keys(800, 8);
  const auto new_keys = random_keys(300, 9);
  std::vector<std::int64_t> cm_result;
  {
    cm::Engine eng;
    ttree::Store st(eng);
    ttree::TCell* out =
        ttree::bulk_insert(st, st.input(st.build(tree_keys, 3)), new_keys);
    ttree::collect_keys(ttree::peek(out), cm_result);
  }
  {
    rt::Scheduler sched(2);
    rt::ttree::Store st;
    rt::ttree::Cell* out = rt::ttree::bulk_insert(
        st, st.input(st.build(tree_keys, 3)), new_keys);
    EXPECT_EQ(rt::ttree::wait_keys(out), cm_result);
  }
}

TEST(EndToEnd, TraceOfRebalancePipelineSchedules) {
  const auto a = random_keys(500, 10);
  const auto b = random_keys(500, 11);
  cm::Engine eng(true);
  trees::Store st(eng);
  trees::TreeCell* merged = trees::merge(
      st, st.input(st.build_balanced(a)), st.input(st.build_balanced(b)));
  trees::rebalance(st, merged);
  sim::Dag dag(*eng.trace());
  const auto r = sim::schedule(dag, 16, sim::Discipline::kStack);
  EXPECT_TRUE(r.within_bound(16));
  EXPECT_TRUE(r.erew_ok);
}

}  // namespace
}  // namespace pwf
