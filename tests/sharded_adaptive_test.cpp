// Tests for contention-adaptive sharding: the split-point policy
// (adapt::split_point), deterministic facade-level split/merge behavior
// under skewed traffic, content preservation across rebalance cycles (set
// and map, including augmented range aggregates), and readers racing forced
// split/merge cycles (the tsan preset runs this suite).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "runtime/parallel_map.hpp"
#include "runtime/parallel_set.hpp"
#include "runtime/shard_adapt.hpp"
#include "runtime/sharded_map.hpp"
#include "runtime/sharded_set.hpp"
#include "support/random.hpp"

namespace pwf::rt {
namespace {

using Key = std::int64_t;

// Aggressive adaptation for tests: every batch may rebalance, the EWMA has
// no memory (alpha = 1), and thresholds trip on any concentrated traffic.
adapt::Config eager_config(std::size_t max_shards = 16) {
  adapt::Config cfg;
  cfg.enabled = true;
  cfg.high_cont = 1.5;
  cfg.low_cont = 0.5;
  cfg.alpha = 1.0;
  cfg.min_shards = 2;
  cfg.max_shards = max_shards;
  cfg.sample_cap = 1024;
  cfg.cooldown = 0;
  return cfg;
}

std::vector<Key> window_batch(Rng& rng, std::size_t n, Key lo, Key span) {
  std::vector<Key> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(lo + rng.range(0, span));
  return out;
}

// ---- split-point policy ------------------------------------------------------

TEST(ShardedAdaptiveSplitPoint, MedianOfDistinctSample) {
  EXPECT_EQ(adapt::split_point({5, 1, 9, 3, 7}), std::optional<Key>(5));
  EXPECT_EQ(adapt::split_point({1, 2}), std::optional<Key>(2));
}

TEST(ShardedAdaptiveSplitPoint, PopularKeysWeightTheMedian) {
  // Key 10 carries most of the traffic: the median lands on it, keeping the
  // hot key's neighborhood on one side.
  EXPECT_EQ(adapt::split_point({10, 10, 10, 10, 10, 1, 2, 99}),
            std::optional<Key>(10));
}

TEST(ShardedAdaptiveSplitPoint, DominantMinimumAdvancesPastItsDuplicates) {
  // The median equals the smallest key — splitting there would route zero
  // traffic left. The policy advances to the next distinct key.
  EXPECT_EQ(adapt::split_point({1, 1, 1, 1, 1, 6, 8}), std::optional<Key>(6));
}

TEST(ShardedAdaptiveSplitPoint, RefusesUnsplittableSamples) {
  EXPECT_EQ(adapt::split_point({}), std::nullopt);
  EXPECT_EQ(adapt::split_point({42}), std::nullopt);
  EXPECT_EQ(adapt::split_point({7, 7, 7, 7}), std::nullopt);
}

// ---- deterministic facade behavior ------------------------------------------

// With S = 2 the initial boundary is 0 (sign-bit partition), so a batch of
// positive keys routes entirely to shard 1, trips high_cont on the first
// batch, and must split exactly at the weighted median of that batch.
TEST(ShardedAdaptiveSet, FirstSplitLandsOnTheSampledTrafficMedian) {
  Scheduler sched(2);
  ShardedParallelSet sh(sched, 2, 0x9e3779b97f4a7c15ULL,
                        pipelined::treap::kDefaultLeafCapacity,
                        eager_config());
  ASSERT_EQ(sh.boundaries(), std::vector<Key>{0});

  Rng rng(11);
  std::vector<Key> batch = window_batch(rng, 400, 1'000'000, 10'000);
  std::sort(batch.begin(), batch.end());
  batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
  // route() feeds the deduped slice into the shard's sample, so the facade
  // must pick exactly this pivot.
  const std::optional<Key> expected = adapt::split_point(batch);
  ASSERT_TRUE(expected.has_value());

  sh.insert_batch(batch);
  EXPECT_EQ(sh.shard_count(), 3u);
  EXPECT_EQ(sh.boundaries(), (std::vector<Key>{0, *expected}));
  EXPECT_EQ(sh.stats().splits, 1u);
  EXPECT_EQ(sh.keys(), batch);
  for (const Key k : {batch.front(), *expected, batch.back()})
    EXPECT_TRUE(sh.contains(k));
}

// Out-of-the-box thresholds must be reachable at the smallest partitions:
// heat is bounded by the shard count, so the raw high_cont (3.0) exceeds
// everything a 2-shard facade can measure. split_threshold caps at 3/4 of
// the ceiling — a stream concentrated on one of two shards still splits.
TEST(ShardedAdaptiveSet, DefaultThresholdsSplitTheSmallestPartition) {
  EXPECT_LT(adapt::split_threshold({}, 2), 2.0);
  EXPECT_DOUBLE_EQ(adapt::split_threshold({}, 8), adapt::Config{}.high_cont);

  Scheduler sched(2);
  adapt::Config cfg;
  cfg.enabled = true;
  ShardedParallelSet sh(sched, 2, 0x9e3779b97f4a7c15ULL,
                        pipelined::treap::kDefaultLeafCapacity, cfg);
  Rng rng(23);
  std::vector<Key> all;
  for (int b = 0; b < 32 && sh.stats().splits == 0; ++b) {
    const auto batch = window_batch(rng, 256, 1 << 20, 4096);
    all.insert(all.end(), batch.begin(), batch.end());
    sh.insert_batch(batch);
  }
  EXPECT_GT(sh.stats().splits, 0u);
  for (const Key k : all) EXPECT_TRUE(sh.contains(k));
}

TEST(ShardedAdaptiveSet, ColdNeighborsMergeAfterTrafficMovesOn) {
  Scheduler sched(2);
  ShardedParallelSet sh(sched, 2, 0x9e3779b97f4a7c15ULL,
                        pipelined::treap::kDefaultLeafCapacity,
                        eager_config(8));
  Rng rng(12);
  std::set<Key> ref;
  // Phase 1: hammer one window until the shard cap stops further splits.
  for (int b = 0; b < 12; ++b) {
    const auto batch = window_batch(rng, 200, 0, 4096);
    sh.insert_batch(batch);
    ref.insert(batch.begin(), batch.end());
  }
  const std::uint64_t splits_before = sh.stats().splits;
  EXPECT_GT(splits_before, 0u);
  const std::size_t shards_hot = sh.shard_count();

  // Phase 2: traffic jumps far away; the shards partitioning the old window
  // all go cold (alpha = 1 zeroes their heat immediately) and merge.
  for (int b = 0; b < 40; ++b) {
    const auto batch = window_batch(rng, 200, 1 << 24, 4096);
    sh.insert_batch(batch);
    ref.insert(batch.begin(), batch.end());
  }
  EXPECT_GT(sh.stats().merges, 0u);
  EXPECT_EQ(sh.keys(), std::vector<Key>(ref.begin(), ref.end()));
  (void)shards_hot;
}

TEST(ShardedAdaptiveSet, SplitMergeCyclesPreserveContents) {
  Scheduler sched(2);
  ShardedParallelSet sh(sched, 2, 0x9e3779b97f4a7c15ULL,
                        pipelined::treap::kDefaultLeafCapacity,
                        eager_config(8));
  Rng rng(13);
  std::set<Key> ref;
  for (int round = 0; round < 60; ++round) {
    // The hot window cycles through four locations; erases ride along.
    const Key lo = static_cast<Key>((round / 10) % 4) << 20;
    const auto batch = window_batch(rng, 150, lo, 2048);
    if (round % 5 == 4) {
      sh.erase_batch(batch);
      for (const Key k : batch) ref.erase(k);
    } else {
      sh.insert_batch(batch);
      ref.insert(batch.begin(), batch.end());
    }
    if (round % 10 == 9)
      sh.compact_shard(static_cast<std::size_t>(round / 10) %
                       sh.shard_count());
    ASSERT_EQ(sh.keys(), std::vector<Key>(ref.begin(), ref.end()))
        << "round " << round;
  }
  const ShardedParallelSet::Stats st = sh.stats();
  EXPECT_GT(st.splits, 0u);
  EXPECT_GT(st.merges, 0u);
  EXPECT_EQ(sh.size(), ref.size());

  // Full compaction after heavy rebalancing drops every retired arena.
  sh.compact();
  EXPECT_EQ(sh.keys(), std::vector<Key>(ref.begin(), ref.end()));
}

TEST(ShardedAdaptiveSet, DisabledConfigNeverRebalances) {
  Scheduler sched(2);
  ShardedParallelSet sh(sched, 4);  // default config: adaptation off
  Rng rng(14);
  for (int b = 0; b < 20; ++b)
    sh.insert_batch(window_batch(rng, 200, 0, 1024));
  const ShardedParallelSet::Stats st = sh.stats();
  EXPECT_EQ(st.splits, 0u);
  EXPECT_EQ(st.merges, 0u);
  EXPECT_EQ(st.shards, 4u);
  EXPECT_EQ(sh.shard_count(), 4u);
}

// ---- map facade --------------------------------------------------------------

TEST(ShardedAdaptiveMap, RebalancingPreservesItemsAndMerges) {
  using Item = std::pair<Key, std::int64_t>;
  Scheduler sched(2);
  ShardedParallelMap<std::int64_t> sh(sched, 2, 0x9e3779b97f4a7c15ULL,
                                      pipelined::treap::kDefaultLeafCapacity,
                                      eager_config(8));
  const auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  Rng rng(15);
  std::map<Key, std::int64_t> ref;
  for (int round = 0; round < 40; ++round) {
    const Key lo = static_cast<Key>((round / 8) % 3) << 20;
    std::vector<Item> batch;
    for (int i = 0; i < 150; ++i)
      batch.emplace_back(lo + rng.range(0, 2048),
                         static_cast<std::int64_t>(rng.below(100)));
    sh.insert_batch(batch, add);
    for (const auto& [k, v] : batch) ref[k] += v;
    ASSERT_EQ(sh.items(), std::vector<Item>(ref.begin(), ref.end()))
        << "round " << round;
  }
  const auto st = sh.stats();
  EXPECT_GT(st.splits, 0u);
  EXPECT_GT(st.merges, 0u);
  for (int i = 0; i < 100; ++i) {
    const Key k = rng.range(0, Key{3} << 20);
    const auto it = ref.find(k);
    ASSERT_EQ(sh.get(k), it == ref.end()
                             ? std::nullopt
                             : std::optional<std::int64_t>(it->second));
  }
}

TEST(ShardedAdaptiveMap, AggregatesSpanRebalancedShards) {
  using SumAug = pipelined::treap::SumAug<std::int64_t>;
  using Item = std::pair<Key, std::int64_t>;
  Scheduler sched(2);
  ShardedParallelMap<std::int64_t, SumAug> sh(
      sched, 2, 0x9e3779b97f4a7c15ULL,
      pipelined::treap::kDefaultLeafCapacity, eager_config(8));
  const auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  Rng rng(16);
  std::map<Key, std::int64_t> ref;
  for (int round = 0; round < 20; ++round) {
    const Key lo = static_cast<Key>(round % 2) << 16;
    std::vector<Item> batch;
    for (int i = 0; i < 200; ++i)
      batch.emplace_back(lo + rng.range(0, 4096),
                         static_cast<std::int64_t>(rng.below(50)));
    sh.insert_batch(batch, add);
    for (const auto& [k, v] : batch) ref[k] += v;
    // Range probes cross the (rebalanced) shard boundaries.
    for (int probe = 0; probe < 10; ++probe) {
      Key lo_p = rng.range(-100, Key{1} << 17);
      Key hi_p = rng.range(-100, Key{1} << 17);
      if (lo_p > hi_p) std::swap(lo_p, hi_p);
      std::int64_t fold = 0;
      for (auto it = ref.lower_bound(lo_p);
           it != ref.end() && it->first <= hi_p; ++it)
        fold += it->second;
      ASSERT_EQ(sh.aggregate(lo_p, hi_p), fold)
          << "round " << round << " [" << lo_p << ", " << hi_p << "]";
    }
  }
  EXPECT_GT(sh.stats().splits, 0u);
}

// ---- readers vs rebalancing (tsan target) -----------------------------------

// Concurrent readers resolve shards through the epoch-published routing
// table while the mutator forces split/merge cycles and rotating shard
// compactions. Under tsan this exercises the Router guard/publish protocol,
// the two-phase split, and husk retirement against every reader path.
TEST(ShardedAdaptiveSet, ReadersRaceRebalanceCycles) {
  Scheduler sched(2);
  ShardedParallelSet sh(sched, 2, 0x9e3779b97f4a7c15ULL,
                        pipelined::treap::kDefaultLeafCapacity,
                        eager_config(8));
  Rng seed_rng(17);
  const auto base = window_batch(seed_rng, 1024, 0, 1 << 22);
  sh.insert_batch(base);
  sh.flush();
  std::set<Key> ref(base.begin(), base.end());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&sh, &stop, r] {
      Rng rng(100 + r);
      std::size_t hits = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const Key k = rng.range(0, 1 << 22);
        hits += sh.contains(k) ? 1 : 0;
        if (rng.below(8) == 0) {
          const SetSnapshot snap = sh.snapshot(k);
          hits += snap.contains(k) ? 1 : 0;
        }
        if (rng.below(16) == 0) hits += sh.boundaries().size();
        if (rng.below(32) == 0) hits += sh.shard_load(0).routed > 0;
      }
      EXPECT_GE(hits, 0u);
    });
  }

  Rng rng(18);
  for (int round = 0; round < 80; ++round) {
    const Key lo = static_cast<Key>((round / 8) % 4) << 20;
    const auto batch = window_batch(rng, 100, lo, 2048);
    sh.insert_batch(batch);
    ref.insert(batch.begin(), batch.end());
    if (round % 16 == 15)
      sh.compact_shard(static_cast<std::size_t>(round) % sh.shard_count());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  const ShardedParallelSet::Stats st = sh.stats();
  EXPECT_GT(st.splits, 0u);
  EXPECT_EQ(sh.keys(), std::vector<Key>(ref.begin(), ref.end()));
}

}  // namespace
}  // namespace pwf::rt
