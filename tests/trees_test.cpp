// Tests for Section 3.1: pipelined binary-tree merge, the strict baseline,
// and the rebalance extension — correctness against an independent oracle
// plus the paper's depth/work bounds as properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "costmodel/engine.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"
#include "trees/merge.hpp"
#include "trees/rebalance.hpp"
#include "trees/tree.hpp"

namespace pwf::trees {
namespace {

// Disjoint odd/even key sets of the given sizes, or random interleaved sets.
std::pair<std::vector<Key>, std::vector<Key>> make_inputs(std::size_t n,
                                                          std::size_t m,
                                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Key> pool;
  pool.reserve(2 * (n + m));
  for (std::size_t i = 0; i < 2 * (n + m); ++i)
    pool.push_back(static_cast<Key>(i) * 3 + static_cast<Key>(rng.below(3)));
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  std::shuffle(pool.begin(), pool.end(), rng);
  PWF_CHECK(pool.size() >= n + m);
  std::vector<Key> a(pool.begin(), pool.begin() + n);
  std::vector<Key> b(pool.begin() + n, pool.begin() + n + m);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return {a, b};
}

TEST(Tree, BuildBalancedShapeAndOrder) {
  cm::Engine eng;
  Store st(eng);
  std::vector<Key> keys;
  for (Key k = 0; k < 1000; ++k) keys.push_back(2 * k);
  Node* root = st.build_balanced(keys);
  EXPECT_TRUE(is_sorted_bst(root));
  EXPECT_EQ(count_nodes(root), 1000u);
  EXPECT_LE(height(root), 10);  // ceil(lg 1001)
  std::vector<Key> got;
  collect_inorder(root, got);
  EXPECT_EQ(got, keys);
}

TEST(Tree, BuildBalancedEmptyAndSingleton) {
  cm::Engine eng;
  Store st(eng);
  EXPECT_EQ(st.build_balanced({}), nullptr);
  std::vector<Key> one{42};
  Node* root = st.build_balanced(one);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->key, 42);
  EXPECT_EQ(height(root), 1);
}

TEST(Split, PartitionsByKey) {
  cm::Engine eng;
  Store st(eng);
  std::vector<Key> keys{1, 3, 5, 7, 9, 11, 13};
  Node* root = st.build_balanced(keys);
  TreeCell* outL = st.cell();
  TreeCell* outR = st.cell();
  eng.fork([&] { split_from(st, 8, root, outL, outR); });
  std::vector<Key> l, r;
  collect_inorder(peek(outL), l);
  collect_inorder(peek(outR), r);
  EXPECT_EQ(l, (std::vector<Key>{1, 3, 5, 7}));
  EXPECT_EQ(r, (std::vector<Key>{9, 11, 13}));
  EXPECT_TRUE(is_sorted_bst(peek(outL)));
  EXPECT_TRUE(is_sorted_bst(peek(outR)));
}

TEST(Split, SplitterEqualToKeyGoesRight) {
  cm::Engine eng;
  Store st(eng);
  std::vector<Key> keys{1, 2, 3};
  Node* root = st.build_balanced(keys);
  TreeCell* outL = st.cell();
  TreeCell* outR = st.cell();
  eng.fork([&] { split_from(st, 2, root, outL, outR); });
  std::vector<Key> l, r;
  collect_inorder(peek(outL), l);
  collect_inorder(peek(outR), r);
  EXPECT_EQ(l, (std::vector<Key>{1}));
  EXPECT_EQ(r, (std::vector<Key>{2, 3}));  // >= side keeps the equal key
}

TEST(Split, ExtremeSplitters) {
  cm::Engine eng;
  Store st(eng);
  std::vector<Key> keys{10, 20, 30};
  Node* root = st.build_balanced(keys);
  TreeCell* l1 = st.cell();
  TreeCell* r1 = st.cell();
  eng.fork([&] { split_from(st, -100, root, l1, r1); });
  EXPECT_EQ(peek(l1), nullptr);
  std::vector<Key> r;
  collect_inorder(peek(r1), r);
  EXPECT_EQ(r, keys);
}

TEST(Split, EmptyTree) {
  cm::Engine eng;
  Store st(eng);
  TreeCell* l = st.cell();
  TreeCell* r = st.cell();
  eng.fork([&] { split_from(st, 5, nullptr, l, r); });
  EXPECT_EQ(peek(l), nullptr);
  EXPECT_EQ(peek(r), nullptr);
}

struct MergeCase {
  std::size_t n, m;
  std::uint64_t seed;
};

class MergeCorrectness : public ::testing::TestWithParam<MergeCase> {};

TEST_P(MergeCorrectness, PipelinedMatchesReference) {
  const auto [n, m, seed] = GetParam();
  auto [a, b] = make_inputs(n, m, seed);
  cm::Engine eng;
  Store st(eng);
  TreeCell* ta = st.input(st.build_balanced(a));
  TreeCell* tb = st.input(st.build_balanced(b));
  TreeCell* out = merge(st, ta, tb);
  std::vector<Key> got;
  collect_inorder(peek(out), got);
  EXPECT_EQ(got, merge_reference(a, b));
  EXPECT_TRUE(is_sorted_bst(peek(out)));
  // The merge code is linear: every future cell is read at most once.
  EXPECT_EQ(eng.nonlinear_reads(), 0u);
  EXPECT_LE(eng.max_cell_reads(), 1u);
}

TEST_P(MergeCorrectness, StrictMatchesReference) {
  const auto [n, m, seed] = GetParam();
  auto [a, b] = make_inputs(n, m, seed);
  cm::Engine eng;
  Store st(eng);
  Node* res = merge_strict(st, st.build_balanced(a), st.build_balanced(b));
  std::vector<Key> got;
  collect_inorder(res, got);
  EXPECT_EQ(got, merge_reference(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MergeCorrectness,
    ::testing::Values(MergeCase{0, 0, 1}, MergeCase{1, 0, 2},
                      MergeCase{0, 1, 3}, MergeCase{1, 1, 4},
                      MergeCase{7, 3, 5}, MergeCase{64, 64, 6},
                      MergeCase{100, 1000, 7}, MergeCase{1000, 100, 8},
                      MergeCase{4096, 4096, 9}, MergeCase{5000, 31, 10},
                      MergeCase{333, 777, 11}));

TEST(MergeDepth, PipelinedIsLogarithmic) {
  // Theorem 3.1: depth O(lg n + lg m). Check depth / (lg n + lg m) stays
  // bounded by a modest constant across a wide size range.
  for (std::size_t n : {1u << 8, 1u << 10, 1u << 12, 1u << 14}) {
    auto [a, b] = make_inputs(n, n, n);
    cm::Engine eng;
    Store st(eng);
    TreeCell* out = merge(st, st.input(st.build_balanced(a)),
                          st.input(st.build_balanced(b)));
    (void)out;
    const double bound = 2.0 * std::log2(static_cast<double>(n));
    EXPECT_LT(static_cast<double>(eng.depth()), 14.0 * bound)
        << "n=m=" << n << " depth=" << eng.depth();
  }
}

TEST(MergeDepth, PipelinedBeatsStrictAsymptotically) {
  // The ratio strict/pipelined should grow with n (Θ(lg n) vs Θ(lg² n)).
  double prev_ratio = 0;
  for (std::size_t n : {1u << 8, 1u << 11, 1u << 14}) {
    auto [a, b] = make_inputs(n, n, 99);
    double piped, strict;
    {
      cm::Engine eng;
      Store st(eng);
      merge(st, st.input(st.build_balanced(a)),
            st.input(st.build_balanced(b)));
      piped = static_cast<double>(eng.depth());
    }
    {
      cm::Engine eng;
      Store st(eng);
      merge_strict(st, st.build_balanced(a), st.build_balanced(b));
      strict = static_cast<double>(eng.depth());
    }
    const double ratio = strict / piped;
    EXPECT_GT(ratio, prev_ratio) << "n=" << n;
    prev_ratio = ratio;
  }
  // The pipelined version has larger per-level constants, so the Θ(lg n)
  // advantage emerges gradually; at n = 2^14 the ratio is ~1.7 and growing
  // (bench E1 shows it keep widening at larger n).
  EXPECT_GT(prev_ratio, 1.5);
}

TEST(MergeWork, NearlyLinearWhenSizesEqual) {
  // Work O(m lg(n/m)) = O(n) when n = m.
  auto [a, b] = make_inputs(1 << 13, 1 << 13, 5);
  cm::Engine eng;
  Store st(eng);
  merge(st, st.input(st.build_balanced(a)), st.input(st.build_balanced(b)));
  EXPECT_LT(eng.work(), 40u * (1 << 13));
}

TEST(MergeWork, SublinearInLargeTreeWhenSmallTreeTiny) {
  // Work O(m lg(n/m)): with m = 16 and n = 2^15 the merge must not walk all
  // of n.
  auto [a, b] = make_inputs(1 << 15, 16, 6);
  cm::Engine eng;
  Store st(eng);
  merge(st, st.input(st.build_balanced(a)), st.input(st.build_balanced(b)));
  EXPECT_LT(eng.work(), 5000u);  // ~ 16 * 15 * c, far below 2^15
}

// ---- rebalance ----------------------------------------------------------------

TEST(Rebalance, ProducesBalancedTreeWithSameKeys) {
  auto [a, b] = make_inputs(3000, 500, 7);
  cm::Engine eng;
  Store st(eng);
  TreeCell* merged = merge(st, st.input(st.build_balanced(a)),
                           st.input(st.build_balanced(b)));
  TreeCell* balanced = rebalance(st, merged);
  std::vector<Key> got;
  collect_inorder(peek(balanced), got);
  EXPECT_EQ(got, merge_reference(a, b));
  EXPECT_TRUE(is_sorted_bst(peek(balanced)));
  const double nn = static_cast<double>(got.size());
  EXPECT_LE(height(peek(balanced)),
            static_cast<int>(std::ceil(std::log2(nn + 1))) + 1);
}

TEST(Rebalance, DepthStaysLogarithmic) {
  auto [a, b] = make_inputs(1 << 12, 1 << 12, 8);
  cm::Engine eng;
  Store st(eng);
  TreeCell* merged = merge(st, st.input(st.build_balanced(a)),
                           st.input(st.build_balanced(b)));
  TreeCell* balanced = rebalance(st, merged);
  (void)balanced;
  const double bound = 2.0 * std::log2(static_cast<double>(1 << 12));
  EXPECT_LT(static_cast<double>(eng.depth()), 25.0 * bound);
}

TEST(Rebalance, WorkIsLinear) {
  auto [a, b] = make_inputs(1 << 12, 1 << 12, 9);
  cm::Engine eng;
  Store st(eng);
  TreeCell* merged = merge(st, st.input(st.build_balanced(a)),
                           st.input(st.build_balanced(b)));
  const std::uint64_t w_merge = eng.work();
  rebalance(st, merged);
  EXPECT_LT(eng.work() - w_merge, 60u * (2u << 12));
}

TEST(Rebalance, TinyTrees) {
  for (std::size_t n : {1u, 2u, 3u, 5u}) {
    std::vector<Key> keys;
    for (std::size_t i = 0; i < n; ++i) keys.push_back(static_cast<Key>(i));
    cm::Engine eng;
    Store st(eng);
    TreeCell* in = st.input(st.build_balanced(keys));
    TreeCell* out = rebalance(st, in);
    std::vector<Key> got;
    collect_inorder(peek(out), got);
    EXPECT_EQ(got, keys);
  }
}

// ---- timestamps / tau-values ----------------------------------------------------

TEST(MergeTimestamps, ResultNodesRespectTauStyleBound) {
  // A coarse check of the Lemma 3.4 flavour: every node's creation time is
  // at most c * (lg n + lg m + (h(T) - h(v))) for a modest c — i.e. delays
  // are always compensated by height decreases.
  auto [a, b] = make_inputs(1 << 10, 1 << 10, 12);
  cm::Engine eng;
  Store st(eng);
  TreeCell* out = merge(st, st.input(st.build_balanced(a)),
                        st.input(st.build_balanced(b)));
  Node* root = peek(out);
  const int h_root = height(root);
  const double base = 2.0 * std::log2(1 << 10);
  struct Walk {
    int h_root;
    double base;
    void check(const Node* v, int depth_from_root) {
      if (v == nullptr) return;
      EXPECT_LT(static_cast<double>(v->created),
                14.0 * (base + static_cast<double>(depth_from_root) + 1));
      check(peek(v->left), depth_from_root + 1);
      check(peek(v->right), depth_from_root + 1);
    }
  };
  Walk{h_root, base}.check(root, 0);
}

}  // namespace
}  // namespace pwf::trees
