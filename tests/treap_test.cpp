// Tests for Sections 3.2–3.3: treap construction, pipelined splitm / union /
// difference / join, strict baselines, the SeqTreap oracle, and the paper's
// τ-value / depth / work properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <map>

#include "costmodel/engine.hpp"
#include "support/random.hpp"
#include "treap/map_union.hpp"
#include "treap/seq_treap.hpp"
#include "treap/setops.hpp"
#include "treap/treap.hpp"

namespace pwf::treap {
namespace {

std::vector<Key> random_keys(std::size_t n, std::uint64_t seed,
                             std::int64_t universe = 1 << 24) {
  Rng rng(seed);
  std::set<Key> s;
  while (s.size() < n) s.insert(rng.range(0, universe));
  return {s.begin(), s.end()};
}

std::vector<Key> set_union_ref(const std::vector<Key>& a,
                               const std::vector<Key>& b) {
  std::vector<Key> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<Key> set_diff_ref(const std::vector<Key>& a,
                              const std::vector<Key>& b) {
  std::vector<Key> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

std::vector<Key> set_intersect_ref(const std::vector<Key>& a,
                                   const std::vector<Key>& b) {
  std::vector<Key> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

TEST(TreapBuild, ValidAndOrdered) {
  cm::Engine eng;
  Store st(eng);
  const auto keys = random_keys(2000, 1);
  Node* root = st.build(keys);
  EXPECT_TRUE(validate(st, root));
  std::vector<Key> got;
  collect_inorder(root, got);
  EXPECT_EQ(got, keys);
  EXPECT_EQ(count_nodes(root), keys.size());
}

TEST(TreapBuild, HeightIsLogarithmicInExpectation) {
  cm::Engine eng;
  Store st(eng);
  const auto keys = random_keys(1 << 14, 2);
  Node* root = st.build(keys);
  // Expected height ~ 3 lg n; allow ample slack but reject linear height.
  EXPECT_LT(height(root), 8 * 14);
}

TEST(TreapBuild, DeduplicatesInput) {
  cm::Engine eng;
  Store st(eng);
  std::vector<Key> keys{5, 1, 5, 3, 1};
  Node* root = st.build(keys);
  std::vector<Key> got;
  collect_inorder(root, got);
  EXPECT_EQ(got, (std::vector<Key>{1, 3, 5}));
}

TEST(TreapBuild, Empty) {
  cm::Engine eng;
  Store st(eng);
  EXPECT_EQ(st.build({}), nullptr);
}

TEST(Splitm, ExcludesFoundSplitter) {
  cm::Engine eng;
  Store st(eng);
  const std::vector<Key> keys{1, 3, 5, 7, 9};
  Node* root = st.build(keys);
  TreapCell* l = st.cell();
  TreapCell* r = st.cell();
  auto* eq = eng.new_cell<Node*>();
  eng.fork([&] { splitm_from(st, 5, root, l, r, eq); });
  std::vector<Key> lv, rv;
  collect_inorder(peek(l), lv);
  collect_inorder(peek(r), rv);
  EXPECT_EQ(lv, (std::vector<Key>{1, 3}));
  EXPECT_EQ(rv, (std::vector<Key>{7, 9}));
  ASSERT_NE(eq->value, nullptr);
  EXPECT_EQ(eq->value->key, 5);
}

TEST(Splitm, AbsentSplitterReportsNull) {
  cm::Engine eng;
  Store st(eng);
  Node* root = st.build(std::vector<Key>{1, 3, 5});
  TreapCell* l = st.cell();
  TreapCell* r = st.cell();
  auto* eq = eng.new_cell<Node*>();
  eng.fork([&] { splitm_from(st, 4, root, l, r, eq); });
  std::vector<Key> lv, rv;
  collect_inorder(peek(l), lv);
  collect_inorder(peek(r), rv);
  EXPECT_EQ(lv, (std::vector<Key>{1, 3}));
  EXPECT_EQ(rv, (std::vector<Key>{5}));
  EXPECT_EQ(eq->value, nullptr);
}

TEST(Join, InterleavesByPriority) {
  cm::Engine eng;
  Store st(eng);
  Node* a = st.build(std::vector<Key>{1, 2, 3, 4});
  Node* b = st.build(std::vector<Key>{10, 11, 12});
  TreapCell* out = st.cell();
  eng.fork([&] { join_from(st, a, b, out); });
  std::vector<Key> got;
  collect_inorder(peek(out), got);
  EXPECT_EQ(got, (std::vector<Key>{1, 2, 3, 4, 10, 11, 12}));
  EXPECT_TRUE(validate(st, peek(out)));
}

TEST(Join, EmptySides) {
  cm::Engine eng;
  Store st(eng);
  Node* a = st.build(std::vector<Key>{1, 2});
  {
    TreapCell* out = st.cell();
    eng.fork([&] { join_from(st, a, nullptr, out); });
    EXPECT_EQ(peek(out), a);
  }
  {
    TreapCell* out = st.cell();
    eng.fork([&] { join_from(st, nullptr, nullptr, out); });
    EXPECT_EQ(peek(out), nullptr);
  }
}

struct SetOpCase {
  std::size_t n, m;
  double overlap;  // fraction of m drawn from a's keys
  std::uint64_t seed;
};

class SetOps : public ::testing::TestWithParam<SetOpCase> {
 protected:
  void build_inputs() {
    const auto& [n, m, overlap, seed] = GetParam();
    a_ = random_keys(n, seed * 2 + 1);
    Rng rng(seed * 2 + 2);
    std::set<Key> bset;
    const std::size_t from_a =
        std::min(static_cast<std::size_t>(overlap * static_cast<double>(m)),
                 a_.size());
    while (bset.size() < from_a && !a_.empty())
      bset.insert(a_[rng.below(a_.size())]);
    while (bset.size() < m) bset.insert(rng.range(0, 1 << 24));
    b_.assign(bset.begin(), bset.end());
  }
  std::vector<Key> a_, b_;
};

TEST_P(SetOps, PipelinedUnionMatchesReference) {
  build_inputs();
  cm::Engine eng;
  Store st(eng);
  TreapCell* out = union_treaps(st, st.input(st.build(a_)),
                                st.input(st.build(b_)));
  std::vector<Key> got;
  collect_inorder(peek(out), got);
  EXPECT_EQ(got, set_union_ref(a_, b_));
  EXPECT_TRUE(validate(st, peek(out)));
  EXPECT_EQ(eng.nonlinear_reads(), 0u);  // linear code
}

TEST_P(SetOps, PipelinedDiffMatchesReference) {
  build_inputs();
  cm::Engine eng;
  Store st(eng);
  TreapCell* out =
      diff_treaps(st, st.input(st.build(a_)), st.input(st.build(b_)));
  std::vector<Key> got;
  collect_inorder(peek(out), got);
  EXPECT_EQ(got, set_diff_ref(a_, b_));
  EXPECT_TRUE(validate(st, peek(out)));
  EXPECT_EQ(eng.nonlinear_reads(), 0u);
}

TEST_P(SetOps, PipelinedIntersectMatchesReference) {
  build_inputs();
  cm::Engine eng;
  Store st(eng);
  TreapCell* out =
      intersect_treaps(st, st.input(st.build(a_)), st.input(st.build(b_)));
  std::vector<Key> got;
  collect_inorder(peek(out), got);
  EXPECT_EQ(got, set_intersect_ref(a_, b_));
  EXPECT_TRUE(validate(st, peek(out)));
  EXPECT_EQ(eng.nonlinear_reads(), 0u);
}

TEST_P(SetOps, StrictIntersectMatchesReference) {
  build_inputs();
  cm::Engine eng;
  Store st(eng);
  Node* res = intersect_strict(st, st.build(a_), st.build(b_));
  std::vector<Key> got;
  collect_inorder(res, got);
  EXPECT_EQ(got, set_intersect_ref(a_, b_));
  EXPECT_TRUE(validate(st, res));
}

TEST_P(SetOps, SeqTreapIntersectMatchesReference) {
  build_inputs();
  SeqTreap ta = SeqTreap::from_keys(a_);
  ta.intersect(SeqTreap::from_keys(b_));
  EXPECT_EQ(ta.keys(), set_intersect_ref(a_, b_));
  EXPECT_TRUE(ta.validate());
  EXPECT_EQ(ta.size(), set_intersect_ref(a_, b_).size());
}

TEST_P(SetOps, StrictVariantsMatchReference) {
  build_inputs();
  {
    cm::Engine eng;
    Store st(eng);
    Node* res = union_strict(st, st.build(a_), st.build(b_));
    std::vector<Key> got;
    collect_inorder(res, got);
    EXPECT_EQ(got, set_union_ref(a_, b_));
    EXPECT_TRUE(validate(st, res));
  }
  {
    cm::Engine eng;
    Store st(eng);
    Node* res = diff_strict(st, st.build(a_), st.build(b_));
    std::vector<Key> got;
    collect_inorder(res, got);
    EXPECT_EQ(got, set_diff_ref(a_, b_));
    EXPECT_TRUE(validate(st, res));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SetOps,
    ::testing::Values(SetOpCase{0, 0, 0, 1}, SetOpCase{1, 0, 0, 2},
                      SetOpCase{0, 1, 0, 3}, SetOpCase{1, 1, 1.0, 4},
                      SetOpCase{100, 100, 0.0, 5},
                      SetOpCase{100, 100, 0.5, 6},
                      SetOpCase{100, 100, 1.0, 7},
                      SetOpCase{1000, 50, 0.3, 8},
                      SetOpCase{50, 1000, 0.1, 9},
                      SetOpCase{4096, 4096, 0.25, 10},
                      SetOpCase{2048, 2048, 0.9, 11},
                      SetOpCase{3000, 10, 1.0, 12}));

TEST(IntersectDepth, ExpectedlyLogarithmic) {
  const std::size_t n = 1 << 13;
  double total = 0;
  const int kSeeds = 5;
  for (int s = 0; s < kSeeds; ++s) {
    const auto a = random_keys(n, 700 + s);
    auto b = random_keys(n / 2, 800 + s);
    for (std::size_t i = 0; i < b.size() / 2 && i * 2 < a.size(); ++i)
      b[i] = a[i * 2];
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    cm::Engine eng;
    Store st(eng);
    intersect_treaps(st, st.input(st.build(a)), st.input(st.build(b)));
    total += static_cast<double>(eng.depth());
  }
  EXPECT_LT(total / kSeeds, 60.0 * 2.0 * std::log2(static_cast<double>(n)));
}

TEST(Intersect, DisjointSetsGiveEmpty) {
  cm::Engine eng;
  Store st(eng);
  std::vector<Key> a{1, 3, 5}, b{2, 4, 6};
  TreapCell* out =
      intersect_treaps(st, st.input(st.build(a)), st.input(st.build(b)));
  EXPECT_EQ(peek(out), nullptr);
}

TEST(Intersect, IdenticalSetsGiveSameSet) {
  cm::Engine eng;
  Store st(eng);
  const auto a = random_keys(500, 55);
  TreapCell* out =
      intersect_treaps(st, st.input(st.build(a)), st.input(st.build(a)));
  std::vector<Key> got;
  collect_inorder(peek(out), got);
  EXPECT_EQ(got, a);
}

TEST(UnionDepth, ExpectedlyLogarithmic) {
  // Corollary 3.6: expected depth O(lg n + lg m). Average over seeds.
  for (std::size_t n : {1u << 10, 1u << 13}) {
    double total = 0;
    const int kSeeds = 5;
    for (int s = 0; s < kSeeds; ++s) {
      const auto a = random_keys(n, 100 + s);
      const auto b = random_keys(n, 200 + s);
      cm::Engine eng;
      Store st(eng);
      union_treaps(st, st.input(st.build(a)), st.input(st.build(b)));
      total += static_cast<double>(eng.depth());
    }
    const double avg = total / kSeeds;
    EXPECT_LT(avg, 40.0 * 2.0 * std::log2(static_cast<double>(n)))
        << "n=" << n;
  }
}

TEST(UnionDepth, PipelinedBeatsStrict) {
  const std::size_t n = 1 << 13;
  const auto a = random_keys(n, 31);
  const auto b = random_keys(n, 32);
  double piped, strict;
  {
    cm::Engine eng;
    Store st(eng);
    union_treaps(st, st.input(st.build(a)), st.input(st.build(b)));
    piped = static_cast<double>(eng.depth());
  }
  {
    cm::Engine eng;
    Store st(eng);
    union_strict(st, st.build(a), st.build(b));
    strict = static_cast<double>(eng.depth());
  }
  EXPECT_GT(strict, 1.5 * piped);
}

TEST(UnionWork, SublinearForSmallM) {
  // Theorem 3.7: O(m lg(n/m)) — with m = 32, n = 2^15 work must be far below n.
  const auto a = random_keys(1 << 15, 41);
  const auto b = random_keys(32, 42);
  cm::Engine eng;
  Store st(eng);
  union_treaps(st, st.input(st.build(a)), st.input(st.build(b)));
  EXPECT_LT(eng.work(), 1u << 14);
}

TEST(DiffDepth, ExpectedlyLogarithmic) {
  // Corollary 3.12.
  const std::size_t n = 1 << 13;
  double total = 0;
  const int kSeeds = 5;
  for (int s = 0; s < kSeeds; ++s) {
    const auto a = random_keys(n, 300 + s);
    auto b = random_keys(n / 2, 400 + s);
    // Make half of b come from a so joins actually happen.
    for (std::size_t i = 0; i < b.size() / 2 && i < a.size(); ++i)
      b[i] = a[i * 2];
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    cm::Engine eng;
    Store st(eng);
    diff_treaps(st, st.input(st.build(a)), st.input(st.build(b)));
    total += static_cast<double>(eng.depth());
  }
  EXPECT_LT(total / kSeeds, 60.0 * 2.0 * std::log2(static_cast<double>(n)));
}

// ---- Lemma 3.4: tau-values for splitm ----------------------------------------

TEST(TauValues, SplitmResultsSatisfyLemma34) {
  // Call splitm at a known time t on a treap whose nodes are all available
  // at time 0 (τ = 0). Lemma 3.4: for each result tree T' and node v in it,
  //   t(v) <= max{t, τ} + ks (1 + h(T) - h(v)).
  // Freshly created nodes carry their creation stamp; untouched input
  // subtrees keep stamp 0 and satisfy the bound trivially.
  const auto keys = random_keys(4000, 77);
  cm::Engine eng;
  Store st(eng);
  Node* root = st.build(keys);
  const int hT = height(root);
  eng.steps(17);  // make the call time t nonzero
  const double t = static_cast<double>(eng.now());
  TreapCell* l = st.cell();
  TreapCell* r = st.cell();
  eng.fork([&] { splitm_from(st, keys[keys.size() / 3] + 1, root, l, r,
                             nullptr); });
  constexpr double ks = 8.0;  // generous constant for our action counts
  struct Walk {
    double t, ks;
    int hT;
    void check(const Node* v) {
      if (v == nullptr) return;
      const int hv = height(v);
      EXPECT_LE(static_cast<double>(v->created),
                t + ks * (1 + hT - hv))
          << "node key " << v->key;
      check(peek(v->left));
      check(peek(v->right));
    }
  };
  Walk{t, ks, hT}.check(peek(l));
  Walk{t, ks, hT}.check(peek(r));
}

// ---- bulk-update wrappers -------------------------------------------------------

TEST(BulkWrappers, InsertAndEraseKeys) {
  cm::Engine eng;
  Store st(eng);
  const auto base = random_keys(800, 61);
  const auto add = random_keys(300, 62);
  const auto del = random_keys(200, 63);
  TreapCell* t = st.input(st.build(base));
  t = insert_keys(st, t, add);
  t = erase_keys(st, t, del);
  std::set<Key> ref(base.begin(), base.end());
  ref.insert(add.begin(), add.end());
  for (Key k : del) ref.erase(k);
  std::vector<Key> got;
  collect_inorder(peek(t), got);
  EXPECT_EQ(got, std::vector<Key>(ref.begin(), ref.end()));
  EXPECT_TRUE(validate(st, peek(t)));
}

TEST(BulkWrappers, EmptyBatchesReturnSameCell) {
  cm::Engine eng;
  Store st(eng);
  TreapCell* t = st.input(st.build(random_keys(10, 64)));
  EXPECT_EQ(insert_keys(st, t, {}), t);
  EXPECT_EQ(erase_keys(st, t, {}), t);
}

// ---- value-merging union (map_union) -------------------------------------------

TEST(MapUnion, SumsSharedKeys) {
  cm::Engine eng;
  MapStore st(eng);
  std::vector<std::pair<Key, std::int64_t>> a{{1, 10}, {2, 20}, {3, 30}};
  std::vector<std::pair<Key, std::int64_t>> b{{2, 200}, {4, 400}};
  MapCell* out =
      union_merge(st, st.input(build_map(st, a)), st.input(build_map(st, b)),
                  [](std::int64_t x, std::int64_t y) { return x + y; });
  std::vector<std::pair<Key, std::int64_t>> got;
  collect_items(peek(out), got);
  EXPECT_EQ(got, (std::vector<std::pair<Key, std::int64_t>>{
                     {1, 10}, {2, 220}, {3, 30}, {4, 400}}));
  EXPECT_TRUE(validate(st, peek(out)));
  EXPECT_EQ(eng.nonlinear_reads(), 0u);
}

TEST(MapUnion, OperandOrderIsByMapNotPriority) {
  cm::Engine eng;
  MapStore st(eng);
  Rng rng(71);
  std::vector<std::pair<Key, std::int64_t>> a, b;
  std::map<Key, std::int64_t> ref;
  for (Key k = 0; k < 600; ++k) {
    if (rng.coin()) {
      a.emplace_back(k, 1000 + k);
      ref[k] = 1000 + k;
    }
    if (rng.coin()) {
      b.emplace_back(k, 2000 + k);
      ref[k] = 2000 + k;  // "b wins"
    }
  }
  MapCell* out =
      union_merge(st, st.input(build_map(st, a)), st.input(build_map(st, b)),
                  [](std::int64_t, std::int64_t bv) { return bv; });
  std::vector<std::pair<Key, std::int64_t>> got;
  collect_items(peek(out), got);
  EXPECT_EQ(got, (std::vector<std::pair<Key, std::int64_t>>(ref.begin(),
                                                            ref.end())));
}

TEST(MapUnion, DepthStaysLogarithmic) {
  // The eq-wait per node resembles diff's ascending information; expected
  // depth must stay O(lg n + lg m).
  const std::size_t n = 1 << 13;
  double total = 0;
  const int kSeeds = 4;
  for (int s = 0; s < kSeeds; ++s) {
    const auto ka = random_keys(n, 500 + s);
    const auto kb = random_keys(n, 600 + s);
    std::vector<std::pair<Key, std::int64_t>> a, b;
    for (Key k : ka) a.emplace_back(k, 1);
    for (Key k : kb) b.emplace_back(k, 1);
    cm::Engine eng;
    MapStore st(eng);
    union_merge(st, st.input(build_map(st, a)), st.input(build_map(st, b)),
                [](std::int64_t x, std::int64_t y) { return x + y; });
    total += static_cast<double>(eng.depth());
  }
  EXPECT_LT(total / kSeeds, 60.0 * 2.0 * std::log2(static_cast<double>(n)));
}

// ---- augmented-value cache validation ------------------------------------------

TEST(AugValidate, DetectsCorruptedAggregate) {
  using AugEntry =
      pipelined::treap::AugEntry<pipelined::treap::MapEntry<std::int64_t>,
                                 pipelined::treap::SumAug<std::int64_t>>;
  using AugStore = pipelined::treap::Store<pipelined::CmPolicy, AugEntry>;
  cm::Engine eng;
  eng.set_crew(true);  // aug fibers re-read node cells (CREW)
  AugStore st(eng);
  std::vector<std::pair<Key, std::int64_t>> items;
  for (Key k = 0; k < 200; ++k) items.emplace_back(k, k * 3 + 1);
  auto* root = st.build(items);
  ASSERT_NE(root, nullptr);
  ASSERT_TRUE(pipelined::treap::validate(st, root));
  // Corrupt the root's cached aggregate: the bottom-up recheck must notice
  // the cache no longer matches the recomputed subtree fold.
  root->aug->value += 1;
  EXPECT_FALSE(pipelined::treap::validate(st, root));
  root->aug->value -= 1;
  EXPECT_TRUE(pipelined::treap::validate(st, root));
}

// ---- Theorem 3.5 pointwise: union result timestamps -----------------------------

TEST(UnionTimestamps, ResultBoundedByHeightSum) {
  // Theorem 3.5: calling union at time t on ready treaps, every node of the
  // result has t(v) <= t + O(h(T1) + h(T2)).
  const auto a = random_keys(4000, 81);
  const auto b = random_keys(4000, 82);
  cm::Engine eng;
  Store st(eng);
  Node* ra = st.build(a);
  Node* rb = st.build(b);
  const int h_sum = height(ra) + height(rb);
  eng.steps(13);
  const double t = static_cast<double>(eng.now());
  TreapCell* out = union_treaps(st, st.input(ra), st.input(rb));
  const double max_ts = static_cast<double>(max_created(peek(out)));
  EXPECT_LE(max_ts, t + 12.0 * h_sum);
}

// ---- Lemma 3.10: rho-values for join ------------------------------------------

TEST(RhoValues, JoinResultSatisfiesLemma310) {
  // Join two ready treaps (ρ = 0) at time t: Lemma 3.10 says the result has
  // a valid ρ-value max{t, ρ1, ρ2} + k, i.e. every node v satisfies
  //   t(v) <= (t + k) + k * depth(v).
  // Input nodes keep stamp 0; freshly created spine nodes carry their
  // publication time.
  const auto keys = random_keys(4000, 99);
  const std::vector<Key> lo(keys.begin(), keys.begin() + 2000);
  const std::vector<Key> hi(keys.begin() + 2000, keys.end());
  cm::Engine eng;
  Store st(eng);
  Node* t1 = st.build(lo);
  Node* t2 = st.build(hi);
  eng.steps(9);  // nonzero call time
  const double t_call = static_cast<double>(eng.now());
  TreapCell* out = st.cell();
  eng.fork([&] { join_from(st, t1, t2, out); });
  constexpr double k = 8.0;
  struct Walk {
    double t_call, k;
    void check(const Node* v, int depth) {
      if (v == nullptr) return;
      EXPECT_LE(static_cast<double>(v->created),
                (t_call + k) + k * (depth + 1))
          << "key " << v->key << " at depth " << depth;
      check(peek(v->left), depth + 1);
      check(peek(v->right), depth + 1);
    }
  };
  Walk{t_call, k}.check(peek(out), 0);
}

// ---- SeqTreap oracle -----------------------------------------------------------

TEST(SeqTreap, InsertEraseContains) {
  SeqTreap t;
  Rng rng(5);
  std::set<Key> ref;
  for (int i = 0; i < 5000; ++i) {
    const Key k = rng.range(0, 500);
    if (rng.coin()) {
      t.insert(k);
      ref.insert(k);
    } else {
      EXPECT_EQ(t.erase(k), ref.erase(k) > 0);
    }
    if (i % 512 == 0) {
      EXPECT_TRUE(t.validate());
    }
  }
  EXPECT_EQ(t.size(), ref.size());
  EXPECT_EQ(t.keys(), std::vector<Key>(ref.begin(), ref.end()));
  for (Key k = 0; k <= 500; ++k) EXPECT_EQ(t.contains(k), ref.count(k) > 0);
}

TEST(SeqTreap, UniteAndSubtractMatchStdSet) {
  const auto a = random_keys(700, 8);
  const auto b = random_keys(900, 9);
  {
    SeqTreap ta = SeqTreap::from_keys(a);
    SeqTreap tb = SeqTreap::from_keys(b);
    ta.unite(std::move(tb));
    EXPECT_EQ(ta.keys(), set_union_ref(a, b));
    EXPECT_TRUE(ta.validate());
  }
  {
    SeqTreap ta = SeqTreap::from_keys(a);
    SeqTreap tb = SeqTreap::from_keys(b);
    ta.subtract(std::move(tb));
    EXPECT_EQ(ta.keys(), set_diff_ref(a, b));
    EXPECT_TRUE(ta.validate());
  }
}

TEST(SeqTreap, AgreesWithParallelUnion) {
  const auto a = random_keys(512, 21);
  const auto b = random_keys(512, 22);
  SeqTreap sa = SeqTreap::from_keys(a);
  sa.unite(SeqTreap::from_keys(b));
  cm::Engine eng;
  Store st(eng);
  TreapCell* out =
      union_treaps(st, st.input(st.build(a)), st.input(st.build(b)));
  std::vector<Key> got;
  collect_inorder(peek(out), got);
  EXPECT_EQ(got, sa.keys());
}

}  // namespace
}  // namespace pwf::treap
