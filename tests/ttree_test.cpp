// Tests for Section 3.4: 2-6 tree structure, the level-array decomposition,
// pipelined and strict bulk insertion, and the γ-value property behind
// Theorem 3.13.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "costmodel/engine.hpp"
#include "support/random.hpp"
#include "ttree/handpipe.hpp"
#include "ttree/insert.hpp"
#include "ttree/ttree.hpp"

namespace pwf::ttree {
namespace {

std::vector<Key> random_keys(std::size_t n, std::uint64_t seed,
                             std::int64_t universe = 1 << 24) {
  Rng rng(seed);
  std::set<Key> s;
  while (s.size() < n) s.insert(rng.range(0, universe));
  return {s.begin(), s.end()};
}

TEST(Build, ValidForBothFanouts) {
  cm::Engine eng;
  Store st(eng);
  for (int fanout : {3, 6}) {
    for (std::size_t n : {1u, 2u, 5u, 6u, 7u, 40u, 1000u, 4096u}) {
      const auto keys = random_keys(n, n + fanout);
      TNode* root = st.build(keys, fanout);
      ASSERT_TRUE(validate(root)) << "n=" << n << " fanout=" << fanout;
      std::vector<Key> got;
      collect_keys(root, got);
      EXPECT_EQ(got, keys);
      EXPECT_EQ(count_keys(root), n);
    }
  }
}

TEST(Build, EmptyIsNull) {
  cm::Engine eng;
  Store st(eng);
  EXPECT_EQ(st.build({}), nullptr);
}

TEST(Build, HeightLogarithmic) {
  cm::Engine eng;
  Store st(eng);
  const auto keys = random_keys(1 << 14, 3);
  EXPECT_LE(height(st.build(keys, 3)), 15);  // log3(2^14) ~ 9
  EXPECT_LE(height(st.build(keys, 6)), 9);
}

TEST(Contains, FindsSplittersAndLeafKeys) {
  cm::Engine eng;
  Store st(eng);
  const auto keys = random_keys(500, 4);
  TNode* root = st.build(keys, 3);
  for (Key k : keys) EXPECT_TRUE(contains(root, k));
  EXPECT_FALSE(contains(root, -1));
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Key k = rng.range(0, 1 << 24);
    EXPECT_EQ(contains(root, k),
              std::binary_search(keys.begin(), keys.end(), k));
  }
}

TEST(LevelArrays, CoverAllKeysOnceAndSorted) {
  const auto keys = random_keys(1000, 6);
  const auto levels = level_arrays(keys);
  std::vector<Key> all;
  for (const auto& level : levels) {
    EXPECT_TRUE(std::is_sorted(level.begin(), level.end()));
    all.insert(all.end(), level.begin(), level.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, keys);
  // lg m levels.
  EXPECT_LE(levels.size(), static_cast<std::size_t>(std::log2(1000) + 2));
}

TEST(LevelArrays, EachLevelWellSeparatedByPreviousLevels) {
  // Between two adjacent keys of level d there is a key in some level < d.
  const auto keys = random_keys(2000, 7);
  const auto levels = level_arrays(keys);
  std::set<Key> inserted;
  for (const auto& level : levels) {
    for (std::size_t i = 0; i + 1 < level.size(); ++i) {
      auto it = inserted.upper_bound(level[i]);
      ASSERT_TRUE(it != inserted.end() && *it < level[i + 1])
          << "adjacent keys " << level[i] << "," << level[i + 1]
          << " not separated";
    }
    inserted.insert(level.begin(), level.end());
  }
}

TEST(LevelArrays, PowersAndEdges) {
  EXPECT_TRUE(level_arrays({}).empty());
  std::vector<Key> one{5};
  const auto l1 = level_arrays(one);
  ASSERT_EQ(l1.size(), 1u);
  EXPECT_EQ(l1[0], one);
}

struct InsertCase {
  std::size_t n, m;
  int fanout;
  std::uint64_t seed;
};

class BulkInsert : public ::testing::TestWithParam<InsertCase> {};

TEST_P(BulkInsert, PipelinedMatchesSet) {
  const auto [n, m, fanout, seed] = GetParam();
  auto tree_keys = random_keys(n, seed * 3 + 1);
  auto new_keys = random_keys(m, seed * 3 + 2);
  cm::Engine eng;
  Store st(eng);
  TCell* root = st.input(st.build(tree_keys, fanout));
  TCell* out = bulk_insert(st, root, new_keys);
  EXPECT_TRUE(validate(peek(out)));
  std::vector<Key> got;
  collect_keys(peek(out), got);
  std::set<Key> ref(tree_keys.begin(), tree_keys.end());
  ref.insert(new_keys.begin(), new_keys.end());
  EXPECT_EQ(got, std::vector<Key>(ref.begin(), ref.end()));
}

TEST_P(BulkInsert, StrictMatchesSet) {
  const auto [n, m, fanout, seed] = GetParam();
  auto tree_keys = random_keys(n, seed * 3 + 1);
  auto new_keys = random_keys(m, seed * 3 + 2);
  cm::Engine eng;
  Store st(eng);
  TNode* out = bulk_insert_strict(st, st.build(tree_keys, fanout), new_keys);
  EXPECT_TRUE(validate(out));
  std::vector<Key> got;
  collect_keys(out, got);
  std::set<Key> ref(tree_keys.begin(), tree_keys.end());
  ref.insert(new_keys.begin(), new_keys.end());
  EXPECT_EQ(got, std::vector<Key>(ref.begin(), ref.end()));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BulkInsert,
    ::testing::Values(InsertCase{10, 1, 3, 1}, InsertCase{10, 5, 3, 2},
                      InsertCase{100, 10, 3, 3}, InsertCase{100, 100, 3, 4},
                      InsertCase{1000, 100, 3, 5},
                      InsertCase{1000, 1000, 3, 6},
                      InsertCase{1000, 1000, 6, 7},
                      InsertCase{4096, 512, 6, 8},
                      InsertCase{4096, 4096, 3, 9},
                      InsertCase{50, 2000, 3, 10},
                      InsertCase{1, 1000, 3, 11}));

TEST(BulkInsertDuplicates, ExistingKeysAreDropped) {
  cm::Engine eng;
  Store st(eng);
  const auto tree_keys = random_keys(500, 12);
  // Insert a mix of present and absent keys.
  std::vector<Key> new_keys;
  for (std::size_t i = 0; i < tree_keys.size(); i += 7)
    new_keys.push_back(tree_keys[i]);
  for (Key k : random_keys(100, 13)) new_keys.push_back(k);
  std::sort(new_keys.begin(), new_keys.end());
  new_keys.erase(std::unique(new_keys.begin(), new_keys.end()),
                 new_keys.end());
  TCell* out = bulk_insert(st, st.input(st.build(tree_keys, 3)), new_keys);
  EXPECT_TRUE(validate(peek(out)));
  std::set<Key> ref(tree_keys.begin(), tree_keys.end());
  ref.insert(new_keys.begin(), new_keys.end());
  std::vector<Key> got;
  collect_keys(peek(out), got);
  EXPECT_EQ(got, std::vector<Key>(ref.begin(), ref.end()));
}

TEST(InsertDepth, PipelinedIsAdditive) {
  // Theorem 3.13: pipelined depth O(lg n + lg m); strict is O(lg n lg m).
  const std::size_t n = 1 << 14;
  const std::size_t m = 1 << 10;
  const auto tree_keys = random_keys(n, 14);
  const auto new_keys = random_keys(m, 15);
  double piped, strict;
  {
    cm::Engine eng;
    Store st(eng);
    bulk_insert(st, st.input(st.build(tree_keys, 3)), new_keys);
    piped = static_cast<double>(eng.depth());
  }
  {
    cm::Engine eng;
    Store st(eng);
    bulk_insert_strict(st, st.build(tree_keys, 3), new_keys);
    strict = static_cast<double>(eng.depth());
  }
  EXPECT_LT(piped, 60.0 * (std::log2(static_cast<double>(n)) +
                           std::log2(static_cast<double>(m))));
  EXPECT_GT(strict, 1.5 * piped);
}

TEST(InsertWork, IsMLogN) {
  const std::size_t n = 1 << 14;
  const auto tree_keys = random_keys(n, 16);
  const auto new_keys = random_keys(64, 17);
  cm::Engine eng;
  Store st(eng);
  bulk_insert(st, st.input(st.build(tree_keys, 3)), new_keys);
  // O(m lg n): 64 * 14 * c; must be far below n.
  EXPECT_LT(eng.work(), 1u << 13);
}

TEST(GammaValues, NodesRespectPerLevelBound) {
  // Theorem 3.13's γ-value argument: after inserting lg m waves, every node
  // of the final tree satisfies t(v) <= γ + kb * depth(v) with
  // γ = O(lg m). Constants are generous; the point is linear-in-depth decay,
  // not lg n * lg m blowup.
  const std::size_t n = 1 << 12;
  const std::size_t m = 1 << 8;
  const auto tree_keys = random_keys(n, 18);
  const auto new_keys = random_keys(m, 19);
  cm::Engine eng;
  Store st(eng);
  TCell* out = bulk_insert(st, st.input(st.build(tree_keys, 3)), new_keys);
  TNode* root = peek(out);
  constexpr double kb = 30.0;
  const double gamma =
      kb * (std::log2(static_cast<double>(m)) + 3);
  struct Walk {
    double gamma, kb;
    void check(const TNode* v, int depth) {
      EXPECT_LE(static_cast<double>(v->created),
                gamma + kb * (depth + 1))
          << "depth " << depth;
      if (v->leaf) return;
      for (int i = 0; i <= v->nkeys; ++i)
        check(peek(v->child[i]), depth + 1);
    }
  };
  Walk{gamma, kb}.check(root, 0);
}

// ---- hand-managed synchronous pipeline (PVW-style baseline) -------------------

TEST(HandPipeline, MatchesFuturesVersionContents) {
  for (const auto& [n, m, seed] :
       std::vector<std::tuple<std::size_t, std::size_t, std::uint64_t>>{
           {10, 5, 1}, {100, 100, 2}, {1000, 1000, 3}, {4096, 512, 4},
           {50, 2000, 5}, {1, 500, 6}}) {
    const auto tree_keys = random_keys(n, seed * 5 + 1);
    const auto new_keys = random_keys(m, seed * 5 + 2);
    handpipe::HandPipeline hp;
    handpipe::Stats stats;
    handpipe::HNode* root =
        hp.bulk_insert(hp.build(tree_keys, 3), new_keys, &stats);
    ASSERT_TRUE(handpipe::HandPipeline::validate(root));
    std::vector<Key> got;
    handpipe::HandPipeline::collect_keys(root, got);
    std::set<Key> ref(tree_keys.begin(), tree_keys.end());
    ref.insert(new_keys.begin(), new_keys.end());
    EXPECT_EQ(got, std::vector<Key>(ref.begin(), ref.end()))
        << "n=" << n << " m=" << m;
  }
}

TEST(HandPipeline, TickCountIsAdditive) {
  // The synchronous schedule finishes in ~ 2·(#waves) + height ticks —
  // the same O(lg n + lg m) shape the futures version achieves implicitly.
  const std::size_t n = 1 << 14;
  const std::size_t m = 1 << 10;
  const auto tree_keys = random_keys(n, 31);
  const auto new_keys = random_keys(m, 32);
  handpipe::HandPipeline hp;
  handpipe::Stats stats;
  handpipe::HNode* root =
      hp.bulk_insert(hp.build(tree_keys, 3), new_keys, &stats);
  ASSERT_TRUE(handpipe::HandPipeline::validate(root));
  const double lg_n = std::log2(static_cast<double>(n));
  const double lg_m = std::log2(static_cast<double>(m));
  EXPECT_LT(static_cast<double>(stats.ticks), 3.0 * (lg_n + 2 * lg_m) + 10);
  EXPECT_EQ(stats.waves, 11u);  // lg m + 1 well-separated arrays
}

TEST(HandPipeline, WorkMatchesFuturesWorkShape) {
  const std::size_t n = 1 << 13;
  const auto tree_keys = random_keys(n, 33);
  const auto new_keys = random_keys(256, 34);
  handpipe::HandPipeline hp;
  handpipe::Stats stats;
  hp.bulk_insert(hp.build(tree_keys, 3), new_keys, &stats);
  // O(m lg n) task-key operations.
  EXPECT_LT(stats.work, 40u * 256u * 13u);
}

TEST(WaveInsert, SingleWellSeparatedWave) {
  // Direct use of insert_wave with a handcrafted well-separated array.
  cm::Engine eng;
  Store st(eng);
  std::vector<Key> tree_keys;
  for (Key k = 0; k < 100; k += 2) tree_keys.push_back(k);  // evens
  TCell* root = st.input(st.build(tree_keys, 3));
  std::vector<Key> wave{11, 21, 31, 41};  // separated by even keys
  TCell* out = st.cell();
  eng.fork([&] { insert_wave(st, root, wave, out); });
  EXPECT_TRUE(validate(peek(out)));
  for (Key k : wave) EXPECT_TRUE(contains(peek(out), k));
  EXPECT_EQ(count_keys(peek(out)), tree_keys.size() + wave.size());
}

}  // namespace
}  // namespace pwf::ttree
