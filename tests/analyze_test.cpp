// Tests for the pwf-analyze offline DAG verifier (src/analyze/verifier.hpp):
// positive runs over every algorithm in the repo (the traces the paper's
// bounds assume are well-formed really are), and deliberately ill-formed
// hand-built traces asserting that each discipline violation is flagged with
// actionable diagnostics (kind, cell id, action ids, witness path).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "algos/mergesort.hpp"
#include "algos/producer_consumer.hpp"
#include "algos/quicksort.hpp"
#include "analyze/verifier.hpp"
#include "costmodel/engine.hpp"
#include "support/analyze_mode.hpp"
#include "support/bigstack.hpp"
#include "support/random.hpp"
#include "treap/setops.hpp"
#include "trees/merge.hpp"
#include "ttree/insert.hpp"

namespace pwf::analyze {
namespace {

using cm::ActionId;
using cm::EdgeKind;
using cm::Trace;

std::vector<std::int64_t> random_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::set<std::int64_t> s;
  while (s.size() < n) s.insert(rng.range(0, 1 << 24));
  return {s.begin(), s.end()};
}

bool has_kind(const Report& rep, ViolationKind k) {
  return std::any_of(rep.violations.begin(), rep.violations.end(),
                     [&](const Violation& v) { return v.kind == k; });
}

const Violation& first_of(const Report& rep, ViolationKind k) {
  for (const auto& v : rep.violations)
    if (v.kind == k) return v;
  ADD_FAILURE() << "no violation of kind " << violation_kind_name(k);
  static Violation none{};
  return none;
}

// ---- hand-built ill-formed traces (negative tests) -------------------------

TEST(Verifier, CleanChainIsOk) {
  Trace t;
  const ActionId w = t.new_action(0);
  const ActionId r = t.new_action(0);
  t.add_edge(w, r, EdgeKind::kData);
  t.record_write(w, /*cell=*/7);
  t.record_read(r, 7);
  const Report rep = verify(t);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_TRUE(rep.linear());
  EXPECT_EQ(rep.num_cells, 1u);
}

TEST(Verifier, DoubleWriteFlagged) {
  Trace t;
  const ActionId w0 = t.new_action(0);
  const ActionId w1 = t.new_action(0);
  t.add_edge(w0, w1, EdgeKind::kThread);
  t.record_write(w0, 3);
  t.record_write(w1, 3);
  const Report rep = verify(t);
  ASSERT_FALSE(rep.ok());
  const Violation& v = first_of(rep, ViolationKind::kDoubleWrite);
  EXPECT_EQ(v.cell, 3u);
  EXPECT_EQ(v.first, w0);
  EXPECT_EQ(v.second, w1);
  EXPECT_NE(v.detail.find("action 0"), std::string::npos);
  EXPECT_NE(v.detail.find("action 1"), std::string::npos);
}

TEST(Verifier, ReadRacingWriteFlagged) {
  // fork: a0 -> a1 (reader child) and a0 -> a2 (writer child). The read is
  // not ordered after the write by any path — a determinacy race.
  Trace t;
  const ActionId fork = t.new_action(0);
  const ActionId r = t.new_action(1);
  const ActionId w = t.new_action(2);
  t.add_edge(fork, r, EdgeKind::kFork);
  t.add_edge(fork, w, EdgeKind::kFork);
  t.record_read(r, 5);
  t.record_write(w, 5);
  const Report rep = verify(t);
  ASSERT_FALSE(rep.ok());
  const Violation& v = first_of(rep, ViolationKind::kReadRacesWrite);
  EXPECT_EQ(v.cell, 5u);
  EXPECT_EQ(v.first, w);
  EXPECT_EQ(v.second, r);
  // The witness path explains how execution reached the racing read.
  ASSERT_FALSE(v.path.empty());
  EXPECT_EQ(v.path.front(), fork);
  EXPECT_EQ(v.path.back(), r);
}

TEST(Verifier, OrderedSiblingReadIsNotARace) {
  // Same shape but with the data edge w -> r present: no race.
  Trace t;
  const ActionId fork = t.new_action(0);
  const ActionId w = t.new_action(1);
  const ActionId r = t.new_action(2);
  t.add_edge(fork, w, EdgeKind::kFork);
  t.add_edge(fork, r, EdgeKind::kFork);
  t.add_edge(w, r, EdgeKind::kData);
  t.record_write(w, 5);
  t.record_read(r, 5);
  EXPECT_TRUE(verify(t).ok());
}

TEST(Verifier, IndirectOrderingFoundByReachability) {
  // The write reaches the read only through an intermediate action (no
  // direct data edge) — still ordered, found by the bounded BFS.
  Trace t;
  const ActionId w = t.new_action(0);
  const ActionId mid = t.new_action(0);
  const ActionId r = t.new_action(1);
  t.add_edge(w, mid, EdgeKind::kThread);
  t.add_edge(mid, r, EdgeKind::kFork);
  t.record_write(w, 9);
  t.record_read(r, 9);
  EXPECT_TRUE(verify(t).ok());
}

TEST(Verifier, ReadOfNeverWrittenCellFlagged) {
  Trace t;
  const ActionId a0 = t.new_action(0);
  const ActionId a1 = t.new_action(0);
  const ActionId r = t.new_action(0);
  t.add_edge(a0, a1, EdgeKind::kThread);
  t.add_edge(a1, r, EdgeKind::kThread);
  t.record_read(r, 11);
  const Report rep = verify(t);
  ASSERT_FALSE(rep.ok());
  const Violation& v = first_of(rep, ViolationKind::kReadNeverWritten);
  EXPECT_EQ(v.cell, 11u);
  EXPECT_EQ(v.second, r);
  // Witness path is the chain that led to the doomed touch.
  EXPECT_EQ(v.path, (std::vector<ActionId>{a0, a1, r}));
  EXPECT_NE(v.detail.find("park forever"), std::string::npos);
}

TEST(Verifier, PresetCellReadsAreNotDangling) {
  Trace t;
  const ActionId r = t.new_action(0);
  t.record_read(r, 11);
  t.note_preset(11);
  EXPECT_TRUE(verify(t).ok());
}

TEST(Verifier, NonLinearReadFlagged) {
  Trace t;
  const ActionId w = t.new_action(0);
  const ActionId r0 = t.new_action(0);
  const ActionId r1 = t.new_action(0);
  t.add_edge(w, r0, EdgeKind::kData);
  t.add_edge(r0, r1, EdgeKind::kThread);
  t.add_edge(w, r1, EdgeKind::kData);
  t.record_write(w, 2);
  t.record_read(r0, 2);
  t.record_read(r1, 2);

  const Report rep = verify(t);
  ASSERT_FALSE(rep.ok());
  const Violation& v = first_of(rep, ViolationKind::kNonLinearRead);
  EXPECT_EQ(v.cell, 2u);
  EXPECT_EQ(v.first, r0);
  EXPECT_EQ(v.second, r1);
  EXPECT_EQ(rep.max_cell_reads, 2u);
  EXPECT_FALSE(rep.linear());

  // With linearity demoted to a statistic (the Section-2 general model) the
  // same trace is clean but still reports the multi-read.
  Options opts;
  opts.check_linearity = false;
  const Report rep2 = verify(t, opts);
  EXPECT_TRUE(rep2.ok()) << rep2.to_string();
  EXPECT_EQ(rep2.max_cell_reads, 2u);
  EXPECT_EQ(rep2.nonlinear_cells, 1u);
}

// ---- recording-substrate disciplines (action tags + storage epochs) --------

TEST(Verifier, DoubleWriteInsideLeafRebuildFlagged) {
  // Two leaf-op-tagged actions (as RecExec records for chunked-leaf
  // rebuilds) both publish the same output cell: the double-write diagnostic
  // must name the coarsened operations and their key counts.
  Trace t;
  const ActionId w0 = t.new_action(0);
  const ActionId w1 = t.new_action(0);
  t.add_edge(w0, w1, EdgeKind::kThread);
  t.record_write(w0, 3);
  t.record_write(w1, 3);
  t.tag_action(w0, cm::ActionKind::kLeafOp, 17);
  t.tag_action(w1, cm::ActionKind::kLeafOp, 9);
  const Report rep = verify(t);
  ASSERT_FALSE(rep.ok());
  const Violation& v = first_of(rep, ViolationKind::kDoubleWrite);
  EXPECT_EQ(v.cell, 3u);
  EXPECT_EQ(v.first, w0);
  EXPECT_EQ(v.second, w1);
  ASSERT_FALSE(v.path.empty());
  EXPECT_EQ(v.path.back(), w1);
  EXPECT_NE(v.detail.find("leaf-op over 17 keys"), std::string::npos);
  EXPECT_NE(v.detail.find("leaf-op over 9 keys"), std::string::npos);
  EXPECT_EQ(rep.leaf_ops, 2u);
  EXPECT_EQ(rep.leaf_keys, 26u);
}

TEST(Verifier, EpochCrossingDataEdgeFlagged) {
  // A compaction (new_epoch) between a write and the read of its cell: the
  // old store's arena is freed at the boundary, so the read dereferences
  // freed memory even though it is perfectly ordered after the write.
  Trace t;
  const ActionId w = t.new_action(0);
  t.record_write(w, 6);
  t.new_epoch();
  const ActionId r = t.new_action(0);
  t.add_edge(w, r, EdgeKind::kData);
  t.record_read(r, 6);
  const Report rep = verify(t);
  ASSERT_FALSE(rep.ok());
  const Violation& v = first_of(rep, ViolationKind::kEpochCrossingData);
  EXPECT_EQ(v.first, w);
  EXPECT_EQ(v.second, r);
  ASSERT_FALSE(v.path.empty());
  EXPECT_EQ(v.path.back(), r);
  EXPECT_NE(v.detail.find("crosses a compaction"), std::string::npos);
  EXPECT_EQ(rep.num_epochs, 2u);
}

TEST(Verifier, NonLinearLeafChunkReadFlaggedPerEpoch) {
  // A leaf chunk read twice within one epoch is nonlinear, and the second
  // reader's leaf-op tag shows up in the diagnostic.
  Trace t;
  const ActionId w = t.new_action(0);
  const ActionId r0 = t.new_action(0);
  const ActionId r1 = t.new_action(0);
  t.add_edge(w, r0, EdgeKind::kData);
  t.add_edge(r0, r1, EdgeKind::kThread);
  t.add_edge(w, r1, EdgeKind::kData);
  t.record_write(w, 2);
  t.record_read(r0, 2);
  t.record_read(r1, 2);
  t.tag_action(r1, cm::ActionKind::kLeafOp, 32);
  const Report rep = verify(t);
  ASSERT_FALSE(rep.ok());
  const Violation& v = first_of(rep, ViolationKind::kNonLinearRead);
  EXPECT_EQ(v.cell, 2u);
  EXPECT_EQ(v.first, r0);
  EXPECT_EQ(v.second, r1);
  ASSERT_FALSE(v.path.empty());
  EXPECT_EQ(v.path.back(), r1);
  EXPECT_NE(v.detail.find("leaf-op over 32 keys"), std::string::npos);

  // The same double read split across a compaction is linear per epoch: a
  // fresh store re-presents the data, so each epoch reads the cell once.
  Trace t2;
  t2.note_preset(2);
  const ActionId s0 = t2.new_action(0);
  t2.record_read(s0, 2);
  t2.new_epoch();
  const ActionId s1 = t2.new_action(0);
  t2.add_edge(s0, s1, EdgeKind::kThread);
  t2.record_read(s1, 2);
  const Report rep2 = verify(t2);
  EXPECT_TRUE(rep2.ok()) << rep2.to_string();
  EXPECT_EQ(rep2.max_cell_reads, 1u);
  EXPECT_EQ(rep2.num_epochs, 2u);
}

TEST(Verifier, ErewConflictFlagged) {
  // Two forked children touch the same preset cell on the same timestep
  // (both at level 2): concurrent reads, not EREW.
  Trace t;
  const ActionId fork = t.new_action(0);
  const ActionId r0 = t.new_action(1);
  const ActionId r1 = t.new_action(2);
  t.add_edge(fork, r0, EdgeKind::kFork);
  t.add_edge(fork, r1, EdgeKind::kFork);
  t.note_preset(4);
  t.record_read(r0, 4);
  t.record_read(r1, 4);
  const Report rep = verify(t);
  ASSERT_FALSE(rep.ok());
  const Violation& v = first_of(rep, ViolationKind::kErewConflict);
  EXPECT_EQ(v.cell, 4u);
  EXPECT_EQ(v.first, r0);
  EXPECT_EQ(v.second, r1);
  EXPECT_NE(v.detail.find("same timestep"), std::string::npos);
}

TEST(Verifier, MalformedEdgeFlagged) {
  Trace t;
  t.new_action(0);
  t.new_action(0);
  t.add_edge(1, 0, EdgeKind::kThread);  // against execution order
  const Report rep = verify(t);
  ASSERT_FALSE(rep.ok());
  EXPECT_TRUE(has_kind(rep, ViolationKind::kMalformedEdge));
}

TEST(Verifier, ViolationListTruncates) {
  Trace t;
  const ActionId w = t.new_action(0);
  t.record_write(w, 0);
  ActionId prev = w;
  for (int i = 0; i < 100; ++i) {  // 100 extra writes of the same cell
    const ActionId a = t.new_action(0);
    t.add_edge(prev, a, EdgeKind::kThread);
    t.record_write(a, 0);
    prev = a;
  }
  Options opts;
  opts.max_violations = 8;
  const Report rep = verify(t, opts);
  EXPECT_EQ(rep.violations.size(), 8u);
  EXPECT_TRUE(rep.truncated);
}

// Death-test style: the engine-destructor hook aborts with diagnostics.
TEST(VerifierDeath, VerifyAndReportAbortsOnViolation) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Trace t;
  const ActionId w0 = t.new_action(0);
  const ActionId w1 = t.new_action(0);
  t.add_edge(w0, w1, EdgeKind::kThread);
  t.record_write(w0, 0);
  t.record_write(w1, 0);
  EXPECT_DEATH(verify_and_report(t, "test"), "double-write");
}

// ---- engine-recorded traces ------------------------------------------------

TEST(VerifierEngine, TaggedTraceHasAllEdgeKinds) {
  cm::Engine eng(/*trace=*/true);
  auto* c = eng.new_cell<int>();
  eng.fork([&] {
    eng.steps(2);
    eng.write(c, 1);
  });
  eng.touch(c);
  eng.fork_join2([&] { eng.step(); return 0; }, [&] { eng.step(); return 0; });

  const Trace& t = *eng.trace();
  ASSERT_EQ(t.threads().size(), t.num_actions());
  std::set<cm::ThreadId> threads(t.threads().begin(), t.threads().end());
  EXPECT_GE(threads.size(), 3u);  // main + fork child + fork_join2 children
  std::set<EdgeKind> kinds;
  for (const auto& e : t.edges()) kinds.insert(e.kind);
  EXPECT_TRUE(kinds.count(EdgeKind::kThread));
  EXPECT_TRUE(kinds.count(EdgeKind::kFork));
  EXPECT_TRUE(kinds.count(EdgeKind::kData));
  EXPECT_TRUE(kinds.count(EdgeKind::kJoin));

  const Report rep = verify(t);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(VerifierEngine, InputCellsAreNotedAsPresets) {
  cm::Engine eng(/*trace=*/true);
  auto* c = eng.input_cell<int>(9);
  EXPECT_EQ(eng.touch(c), 9);
  const Report rep = verify(*eng.trace());
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(eng.trace()->presets().size(), 1u);
}

TEST(VerifierEngine, AnalyzeModeAutoTraces) {
  set_analyze_mode(true);
  {
    cm::Engine eng;  // no explicit trace request
    ASSERT_NE(eng.trace(), nullptr);
    auto* c = eng.new_cell<int>();
    eng.fork([&] { eng.write(c, 1); });
    eng.touch(c);
  }  // destructor runs verify_and_report on the clean trace: must not abort
  set_analyze_mode(false);
  cm::Engine eng2;
  EXPECT_EQ(eng2.trace(), nullptr);
}

// ---- the paper's algorithms are well-formed --------------------------------

struct AlgoCase {
  const char* name;
  void (*run)(cm::Engine&, const std::vector<std::int64_t>&,
              const std::vector<std::int64_t>&);
};

class VerifierAlgos : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(VerifierAlgos, TraceIsWellFormedAndLinear) {
  const AlgoCase& algo = GetParam();
  const auto a = random_keys(1 << 9, 21);
  const auto b = random_keys(1 << 9, 34);
  run_big([&] {
    cm::Engine eng(/*trace=*/true);
    algo.run(eng, a, b);
    const Report rep = verify(*eng.trace());
    EXPECT_TRUE(rep.ok()) << algo.name << ": " << rep.to_string();
    EXPECT_TRUE(rep.linear()) << algo.name << ": " << rep.to_string();
    EXPECT_LE(rep.max_cell_reads, 1u);
  });
}

INSTANTIATE_TEST_SUITE_P(
    PaperAlgorithms, VerifierAlgos,
    ::testing::Values(
        AlgoCase{"trees-merge",
                 [](cm::Engine& eng, const std::vector<std::int64_t>& a,
                    const std::vector<std::int64_t>& b) {
                   trees::Store st(eng);
                   trees::merge(st, st.input(st.build_balanced(a)),
                                st.input(st.build_balanced(b)));
                 }},
        AlgoCase{"treap-union",
                 [](cm::Engine& eng, const std::vector<std::int64_t>& a,
                    const std::vector<std::int64_t>& b) {
                   treap::Store st(eng);
                   treap::union_treaps(st, st.input(st.build(a)),
                                       st.input(st.build(b)));
                 }},
        AlgoCase{"treap-diff",
                 [](cm::Engine& eng, const std::vector<std::int64_t>& a,
                    const std::vector<std::int64_t>& b) {
                   treap::Store st(eng);
                   treap::diff_treaps(st, st.input(st.build(a)),
                                      st.input(st.build(b)));
                 }},
        AlgoCase{"ttree-insert",
                 [](cm::Engine& eng, const std::vector<std::int64_t>& a,
                    const std::vector<std::int64_t>& b) {
                   ttree::Store st(eng);
                   ttree::bulk_insert(st, st.input(st.build(a, 3)), b);
                 }},
        AlgoCase{"quicksort",
                 [](cm::Engine& eng, const std::vector<std::int64_t>& a,
                    const std::vector<std::int64_t>&) {
                   algos::ListStore st(eng);
                   std::vector<algos::Value> v(a.begin(), a.end());
                   algos::quicksort(st, v);
                 }},
        AlgoCase{"mergesort",
                 [](cm::Engine& eng, const std::vector<std::int64_t>& a,
                    const std::vector<std::int64_t>&) {
                   trees::Store st(eng);
                   algos::mergesort(st, a);
                 }},
        AlgoCase{"producer-consumer",
                 [](cm::Engine& eng, const std::vector<std::int64_t>&,
                    const std::vector<std::int64_t>&) {
                   algos::ListStore st(eng);
                   algos::produce_consume(st, 512);
                 }}),
    [](const ::testing::TestParamInfo<AlgoCase>& info) {
      std::string name = info.param.name;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace pwf::analyze
