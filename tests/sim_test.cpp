// Tests for the Section-4 greedy-schedule simulator: DAG compilation,
// Brent/Lemma 4.1 step bounds under both disciplines, EREW/linearity audits,
// and agreement between the simulator's notion of depth and the engine's.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "costmodel/engine.hpp"
#include "sim/dag.hpp"
#include "sim/scheduler.hpp"
#include "support/random.hpp"
#include "treap/setops.hpp"
#include "treap/treap.hpp"
#include "trees/merge.hpp"

namespace pwf::sim {
namespace {

std::vector<std::int64_t> random_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::set<std::int64_t> s;
  while (s.size() < n) s.insert(rng.range(0, 1 << 24));
  return {s.begin(), s.end()};
}

TEST(Dag, ChainHasDepthEqualWork) {
  cm::Engine eng(true);
  eng.steps(100);
  Dag dag(*eng.trace());
  EXPECT_EQ(dag.work(), 100u);
  EXPECT_EQ(dag.depth(), 100u);
}

TEST(Dag, DepthMatchesEngineDepthOnForkJoin) {
  cm::Engine eng(true);
  eng.fork_join2([&] { eng.steps(30); return 0; },
                 [&] { eng.steps(7); return 0; });
  Dag dag(*eng.trace());
  EXPECT_EQ(dag.depth(), eng.depth());
  EXPECT_EQ(dag.work(), eng.work());
}

TEST(Dag, DepthMatchesEngineOnPipelinedMerge) {
  const auto keys_a = random_keys(500, 1);
  const auto keys_b = random_keys(700, 2);
  cm::Engine eng(true);
  trees::Store st(eng);
  trees::merge(st, st.input(st.build_balanced(keys_a)),
               st.input(st.build_balanced(keys_b)));
  Dag dag(*eng.trace());
  EXPECT_EQ(dag.depth(), eng.depth());
  EXPECT_EQ(dag.work(), eng.work());
}

TEST(Schedule, SingleProcessorExecutesSerially) {
  cm::Engine eng(true);
  eng.fork_join2([&] { eng.steps(20); return 0; },
                 [&] { eng.steps(20); return 0; });
  Dag dag(*eng.trace());
  const ScheduleResult r = schedule(dag, 1, Discipline::kStack);
  EXPECT_EQ(r.steps, dag.work());  // p=1: one action per step
  EXPECT_TRUE(r.within_bound(1));
}

TEST(Schedule, ManyProcessorsReachDepth) {
  cm::Engine eng(true);
  eng.fork_join2([&] { eng.steps(50); return 0; },
                 [&] { eng.steps(50); return 0; });
  Dag dag(*eng.trace());
  // With p >= width, the greedy schedule finishes in exactly depth steps.
  const ScheduleResult r = schedule(dag, 1024, Discipline::kStack);
  EXPECT_EQ(r.steps, dag.depth());
}

class ScheduleBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleBound, MergeDagWithinBrentBound) {
  const std::uint64_t p = GetParam();
  const auto keys_a = random_keys(800, 3);
  const auto keys_b = random_keys(800, 4);
  cm::Engine eng(true);
  trees::Store st(eng);
  trees::merge(st, st.input(st.build_balanced(keys_a)),
               st.input(st.build_balanced(keys_b)));
  Dag dag(*eng.trace());
  for (const Discipline d : {Discipline::kStack, Discipline::kQueue}) {
    const ScheduleResult r = schedule(dag, p, d);
    EXPECT_TRUE(r.within_bound(p)) << "p=" << p;
    EXPECT_TRUE(r.erew_ok);
    EXPECT_TRUE(r.linear_ok);
    // Greedy can never beat both limits either.
    EXPECT_GE(r.steps, dag.depth());
    EXPECT_GE(r.steps * p, dag.work());
  }
}

TEST_P(ScheduleBound, UnionDagWithinBrentBound) {
  const std::uint64_t p = GetParam();
  const auto keys_a = random_keys(600, 5);
  const auto keys_b = random_keys(600, 6);
  cm::Engine eng(true);
  treap::Store st(eng);
  treap::union_treaps(st, st.input(st.build(keys_a)),
                      st.input(st.build(keys_b)));
  Dag dag(*eng.trace());
  const ScheduleResult r = schedule(dag, p, Discipline::kStack);
  EXPECT_TRUE(r.within_bound(p));
  EXPECT_TRUE(r.erew_ok);
  EXPECT_TRUE(r.linear_ok);
}

INSTANTIATE_TEST_SUITE_P(Processors, ScheduleBound,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64, 256, 1024));

TEST(Schedule, SpeedupIsRealUntilDepthDominates) {
  const auto keys_a = random_keys(1500, 7);
  const auto keys_b = random_keys(1500, 8);
  cm::Engine eng(true);
  treap::Store st(eng);
  treap::union_treaps(st, st.input(st.build(keys_a)),
                      st.input(st.build(keys_b)));
  Dag dag(*eng.trace());
  const auto s1 = schedule(dag, 1, Discipline::kStack).steps;
  const auto s4 = schedule(dag, 4, Discipline::kStack).steps;
  const auto s16 = schedule(dag, 16, Discipline::kStack).steps;
  EXPECT_GT(static_cast<double>(s1) / static_cast<double>(s4), 2.5);
  EXPECT_GT(static_cast<double>(s4) / static_cast<double>(s16), 2.0);
}

TEST(Schedule, QueueAndStackBothExecuteEverything) {
  cm::Engine eng(true);
  eng.fork([&] {
    eng.fork([&] { eng.steps(10); });
    eng.steps(5);
  });
  eng.steps(3);
  Dag dag(*eng.trace());
  const auto rs = schedule(dag, 2, Discipline::kStack);
  const auto rq = schedule(dag, 2, Discipline::kQueue);
  EXPECT_EQ(rs.work, rq.work);
  EXPECT_TRUE(rs.within_bound(2));
  EXPECT_TRUE(rq.within_bound(2));
}

TEST(Schedule, StackUsesNoMoreSpaceThanQueueOnTreeDags) {
  // The paper's closing remark in Section 4: the stack (depth-first)
  // discipline "is probably much better for space than a queue discipline".
  // On a recursive fork tree this is dramatic; assert the direction.
  cm::Engine eng(true);
  struct Rec {
    cm::Engine& eng;
    void operator()(int d) {
      if (d == 0) {
        eng.steps(2);
        return;
      }
      eng.fork([&] { (*this)(d - 1); });
      eng.fork([&] { (*this)(d - 1); });
      eng.step();
    }
  };
  Rec{eng}(12);
  Dag dag(*eng.trace());
  const auto rs = schedule(dag, 4, Discipline::kStack);
  const auto rq = schedule(dag, 4, Discipline::kQueue);
  EXPECT_LT(rs.max_live, rq.max_live);
}

TEST(Schedule, StackSpaceScalesWithProcessors) {
  // Blumofe–Leiserson-flavoured space property for the LIFO discipline on
  // our (fully strict-ish) DAGs: peak |S| at p processors stays within
  // p * (peak |S| at one processor) plus p slack.
  const auto keys_a = random_keys(1000, 9);
  const auto keys_b = random_keys(1000, 10);
  cm::Engine eng(true);
  treap::Store st(eng);
  treap::union_treaps(st, st.input(st.build(keys_a)),
                      st.input(st.build(keys_b)));
  Dag dag(*eng.trace());
  const auto s1 = schedule(dag, 1, Discipline::kStack).max_live;
  for (std::uint64_t p : {2ull, 8ull, 64ull, 256ull}) {
    const auto sp = schedule(dag, p, Discipline::kStack).max_live;
    EXPECT_LE(sp, s1 * p + p) << "p=" << p;
  }
}

TEST(Schedule, LinearityAuditFlagsRereads) {
  cm::Engine eng(true);
  auto* c = eng.input_cell<int>(1);
  eng.touch(c);
  eng.touch(c);  // deliberately nonlinear
  Dag dag(*eng.trace());
  const auto r = schedule(dag, 2, Discipline::kStack);
  EXPECT_FALSE(r.linear_ok);
}

TEST(Schedule, EmptyDag) {
  cm::Engine eng(true);
  Dag dag(*eng.trace());
  const auto r = schedule(dag, 4, Discipline::kStack);
  EXPECT_EQ(r.steps, 0u);
}

TEST(Schedule, ArrayOpParallelizes) {
  cm::Engine eng(true);
  eng.array_op(1000);
  Dag dag(*eng.trace());
  const auto r1 = schedule(dag, 1, Discipline::kStack);
  const auto r100 = schedule(dag, 100, Discipline::kStack);
  EXPECT_EQ(r1.steps, dag.work());
  EXPECT_LE(r100.steps, dag.work() / 100 + dag.depth());
}

}  // namespace
}  // namespace pwf::sim
