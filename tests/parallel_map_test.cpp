// Tests for the key-value treap maps (rt_map.hpp) and the ParallelMap
// facade: merge semantics, operand ordering, batch aggregation against a
// std::map reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "runtime/parallel_map.hpp"
#include "runtime/rt_map.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/sharded_map.hpp"
#include "support/random.hpp"

namespace pwf::rt {
namespace {

using Item = std::pair<map::Key, std::int64_t>;

std::vector<Item> items_of(std::initializer_list<Item> xs) { return xs; }

TEST(RtMap, BuildAndLookup) {
  Scheduler sched(2);
  map::Store<std::int64_t> st;
  std::vector<Item> data{{1, 10}, {3, 30}, {5, 50}};
  auto* root = st.input(st.build(data));
  EXPECT_EQ(map::lookup(root, 3), 30);
  EXPECT_EQ(map::lookup(root, 4), std::nullopt);
  EXPECT_EQ(map::wait_items(root), data);
}

TEST(RtMap, UnionMergesSharedKeysWithSum) {
  Scheduler sched(2);
  map::Store<std::int64_t> st;
  std::vector<Item> a{{1, 10}, {2, 20}, {3, 30}};
  std::vector<Item> b{{2, 200}, {3, 300}, {4, 400}};
  auto* out = map::union_maps(
      st, st.input(st.build(a)), st.input(st.build(b)),
      [](std::int64_t x, std::int64_t y) { return x + y; });
  EXPECT_EQ(map::wait_items(out),
            items_of({{1, 10}, {2, 220}, {3, 330}, {4, 400}}));
}

TEST(RtMap, UnionMergeOperandOrderIsByMapNotPriority) {
  // "b wins" overwrite semantics must hold for every key, whichever root
  // had the higher priority.
  Scheduler sched(2);
  map::Store<std::int64_t> st;
  Rng rng(3);
  std::vector<Item> a, b;
  for (map::Key k = 0; k < 500; ++k) {
    if (rng.coin()) a.emplace_back(k, 1000 + k);
    if (rng.coin()) b.emplace_back(k, 2000 + k);
  }
  auto* out = map::union_maps(
      st, st.input(st.build(a)), st.input(st.build(b)),
      [](std::int64_t, std::int64_t bval) { return bval; });
  std::map<map::Key, std::int64_t> ref;
  for (const auto& [k, v] : a) ref[k] = v;
  for (const auto& [k, v] : b) ref[k] = v;  // b overwrites
  EXPECT_EQ(map::wait_items(out),
            std::vector<Item>(ref.begin(), ref.end()));
}

TEST(RtMap, DiffRemovesKeys) {
  Scheduler sched(2);
  map::Store<std::int64_t> st;
  std::vector<Item> a{{1, 10}, {2, 20}, {3, 30}, {4, 40}};
  std::vector<Item> b{{2, 0}, {4, 0}, {9, 0}};
  auto* out = map::diff_maps(st, st.input(st.build(a)),
                             st.input(st.build(b)));
  EXPECT_EQ(map::wait_items(out), items_of({{1, 10}, {3, 30}}));
}

TEST(ParallelMap, CounterAggregation) {
  Scheduler sched(2);
  ParallelMap<std::int64_t> m(sched);
  auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  m.insert_batch(items_of({{1, 1}, {2, 1}, {1, 1}}), add);  // in-batch dup
  EXPECT_EQ(m.get(1), 2);
  EXPECT_EQ(m.get(2), 1);
  m.insert_batch(items_of({{1, 5}, {3, 7}}), add);
  EXPECT_EQ(m.get(1), 7);
  EXPECT_EQ(m.get(3), 7);
  EXPECT_EQ(m.size(), 3u);
}

TEST(ParallelMap, AssignOverwrites) {
  Scheduler sched(2);
  ParallelMap<std::int64_t> m(sched);
  m.assign_batch(items_of({{1, 10}, {2, 20}}));
  m.assign_batch(items_of({{2, 99}, {3, 30}}));
  EXPECT_EQ(m.get(1), 10);
  EXPECT_EQ(m.get(2), 99);
  EXPECT_EQ(m.get(3), 30);
}

TEST(ParallelMap, EraseBatch) {
  Scheduler sched(2);
  ParallelMap<std::int64_t> m(sched);
  m.assign_batch(items_of({{1, 1}, {2, 2}, {3, 3}}));
  std::vector<map::Key> gone{2, 7};
  m.erase_batch(gone);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_FALSE(m.contains(2));
  EXPECT_TRUE(m.contains(3));
}

class ParallelMapSession : public ::testing::TestWithParam<int> {};

TEST_P(ParallelMapSession, RandomSessionMatchesStdMap) {
  const unsigned threads = static_cast<unsigned>(GetParam());
  Scheduler sched(threads);
  Rng rng(77 + threads);
  ParallelMap<std::int64_t> m(sched);
  std::map<map::Key, std::int64_t> ref;
  auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  for (int round = 0; round < 25; ++round) {
    if (rng.below(4) != 0) {
      std::vector<Item> batch;
      const std::size_t sz = 1 + rng.below(300);
      for (std::size_t i = 0; i < sz; ++i)
        batch.emplace_back(rng.range(0, 2000),
                           static_cast<std::int64_t>(rng.below(100)));
      m.insert_batch(batch, add);
      for (const auto& [k, v] : batch) ref[k] += v;
    } else {
      std::vector<map::Key> keys;
      const std::size_t sz = 1 + rng.below(200);
      for (std::size_t i = 0; i < sz; ++i) keys.push_back(rng.range(0, 2000));
      m.erase_batch(keys);
      for (map::Key k : keys) ref.erase(k);
    }
    ASSERT_EQ(m.size(), ref.size()) << "round " << round;
    ASSERT_EQ(m.items(), std::vector<Item>(ref.begin(), ref.end()))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelMapSession,
                         ::testing::Values(1, 2, 4));

TEST(ParallelMap, LargeShardAggregation) {
  // Word-count style: several shards of (key, count), merged by sum.
  Scheduler sched(4);
  Rng rng(5);
  ParallelMap<std::int64_t> m(sched);
  std::map<map::Key, std::int64_t> ref;
  auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  for (int shard = 0; shard < 6; ++shard) {
    std::vector<Item> batch;
    for (int i = 0; i < 20000; ++i)
      batch.emplace_back(rng.range(0, 5000), 1);
    m.insert_batch(batch, add);
    for (const auto& [k, v] : batch) ref[k] += v;
  }
  ASSERT_EQ(m.items(), std::vector<Item>(ref.begin(), ref.end()));
  // Total count preserved.
  std::int64_t total = 0;
  for (const auto& [k, v] : m.items()) total += v;
  EXPECT_EQ(total, 6 * 20000);
}

TEST(ParallelMapPipeline, StatsAndCompact) {
  Scheduler sched(2);
  Rng rng(41);
  ParallelMap<std::int64_t> m(sched);
  auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  std::map<map::Key, std::int64_t> ref;
  for (int round = 0; round < 5; ++round) {
    std::vector<Item> batch;
    for (int i = 0; i < 3000; ++i)
      batch.emplace_back(rng.range(0, 4000),
                         static_cast<std::int64_t>(rng.below(10)));
    m.insert_batch(batch, add);
    for (const auto& [k, v] : batch) ref[k] += v;
  }
  ParallelMap<std::int64_t>::Stats st = m.stats();
  EXPECT_EQ(st.batches, 5u);
  EXPECT_EQ(st.max_pending, 5u);
  EXPECT_EQ(st.flushes, 0u);
  m.flush();
  EXPECT_EQ(m.stats().flushes, 1u);

  const auto before = m.stats();
  m.compact();
  const auto after = m.stats();
  EXPECT_EQ(after.epochs, before.epochs + 1);
  EXPECT_LT(after.arena_bytes, before.arena_bytes);
  EXPECT_EQ(m.items(), std::vector<Item>(ref.begin(), ref.end()));
}

class ShardedMapSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShardedMapSweep, MatchesUnshardedAndStdMap) {
  const unsigned shards = static_cast<unsigned>(GetParam());
  Scheduler sched(2);
  Rng rng(700 + shards);
  ShardedParallelMap<std::int64_t> sh(sched, shards);
  ParallelMap<std::int64_t> flat(sched);
  std::map<map::Key, std::int64_t> ref;
  auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  EXPECT_EQ(sh.shard_count(), shards);

  for (int round = 0; round < 15; ++round) {
    if (rng.below(4) != 0) {
      std::vector<Item> batch;
      const std::size_t sz = 1 + rng.below(300);
      for (std::size_t i = 0; i < sz; ++i)
        batch.emplace_back(rng.range(-2000, 2000),  // negative keys too
                           static_cast<std::int64_t>(rng.below(100)));
      sh.insert_batch(batch, add);
      flat.insert_batch(batch, add);
      for (const auto& [k, v] : batch) ref[k] += v;
    } else {
      std::vector<map::Key> keys;
      const std::size_t sz = 1 + rng.below(200);
      for (std::size_t i = 0; i < sz; ++i) keys.push_back(rng.range(-2000, 2000));
      sh.erase_batch(keys);
      flat.erase_batch(keys);
      for (map::Key k : keys) ref.erase(k);
    }
    ASSERT_EQ(sh.size(), ref.size()) << "round " << round;
    ASSERT_EQ(sh.items(), flat.items()) << "round " << round;
    ASSERT_EQ(sh.items(), std::vector<Item>(ref.begin(), ref.end()))
        << "round " << round;
  }

  for (int i = 0; i < 200; ++i) {
    const map::Key k = rng.range(-2000, 2000);
    const auto it = ref.find(k);
    ASSERT_EQ(sh.get(k),
              it == ref.end() ? std::nullopt
                              : std::optional<std::int64_t>(it->second));
  }

  sh.compact();
  EXPECT_EQ(sh.stats().epochs, shards);
  EXPECT_EQ(sh.items(), std::vector<Item>(ref.begin(), ref.end()));
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedMapSweep, ::testing::Values(1, 4));

}  // namespace
}  // namespace pwf::rt
