// Tests for the key-value treap maps (rt_map.hpp) and the ParallelMap
// facade: merge semantics, operand ordering, batch aggregation against a
// std::map reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "runtime/parallel_map.hpp"
#include "runtime/rt_map.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/sharded_map.hpp"
#include "support/random.hpp"

namespace pwf::rt {
namespace {

using Item = std::pair<map::Key, std::int64_t>;

std::vector<Item> items_of(std::initializer_list<Item> xs) { return xs; }

TEST(RtMap, BuildAndLookup) {
  Scheduler sched(2);
  map::Store<std::int64_t> st;
  std::vector<Item> data{{1, 10}, {3, 30}, {5, 50}};
  auto* root = st.input(st.build(data));
  EXPECT_EQ(map::lookup(root, 3), 30);
  EXPECT_EQ(map::lookup(root, 4), std::nullopt);
  EXPECT_EQ(map::wait_items(root), data);
}

TEST(RtMap, UnionMergesSharedKeysWithSum) {
  Scheduler sched(2);
  map::Store<std::int64_t> st;
  std::vector<Item> a{{1, 10}, {2, 20}, {3, 30}};
  std::vector<Item> b{{2, 200}, {3, 300}, {4, 400}};
  auto* out = map::union_maps(
      st, st.input(st.build(a)), st.input(st.build(b)),
      [](std::int64_t x, std::int64_t y) { return x + y; });
  EXPECT_EQ(map::wait_items(out),
            items_of({{1, 10}, {2, 220}, {3, 330}, {4, 400}}));
}

TEST(RtMap, UnionMergeOperandOrderIsByMapNotPriority) {
  // "b wins" overwrite semantics must hold for every key, whichever root
  // had the higher priority.
  Scheduler sched(2);
  map::Store<std::int64_t> st;
  Rng rng(3);
  std::vector<Item> a, b;
  for (map::Key k = 0; k < 500; ++k) {
    if (rng.coin()) a.emplace_back(k, 1000 + k);
    if (rng.coin()) b.emplace_back(k, 2000 + k);
  }
  auto* out = map::union_maps(
      st, st.input(st.build(a)), st.input(st.build(b)),
      [](std::int64_t, std::int64_t bval) { return bval; });
  std::map<map::Key, std::int64_t> ref;
  for (const auto& [k, v] : a) ref[k] = v;
  for (const auto& [k, v] : b) ref[k] = v;  // b overwrites
  EXPECT_EQ(map::wait_items(out),
            std::vector<Item>(ref.begin(), ref.end()));
}

TEST(RtMap, DiffRemovesKeys) {
  Scheduler sched(2);
  map::Store<std::int64_t> st;
  std::vector<Item> a{{1, 10}, {2, 20}, {3, 30}, {4, 40}};
  std::vector<Item> b{{2, 0}, {4, 0}, {9, 0}};
  auto* out = map::diff_maps(st, st.input(st.build(a)),
                             st.input(st.build(b)));
  EXPECT_EQ(map::wait_items(out), items_of({{1, 10}, {3, 30}}));
}

TEST(ParallelMap, CounterAggregation) {
  Scheduler sched(2);
  ParallelMap<std::int64_t> m(sched);
  auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  m.insert_batch(items_of({{1, 1}, {2, 1}, {1, 1}}), add);  // in-batch dup
  EXPECT_EQ(m.get(1), 2);
  EXPECT_EQ(m.get(2), 1);
  m.insert_batch(items_of({{1, 5}, {3, 7}}), add);
  EXPECT_EQ(m.get(1), 7);
  EXPECT_EQ(m.get(3), 7);
  EXPECT_EQ(m.size(), 3u);
}

TEST(ParallelMap, AssignOverwrites) {
  Scheduler sched(2);
  ParallelMap<std::int64_t> m(sched);
  m.assign_batch(items_of({{1, 10}, {2, 20}}));
  m.assign_batch(items_of({{2, 99}, {3, 30}}));
  EXPECT_EQ(m.get(1), 10);
  EXPECT_EQ(m.get(2), 99);
  EXPECT_EQ(m.get(3), 30);
}

TEST(ParallelMap, EraseBatch) {
  Scheduler sched(2);
  ParallelMap<std::int64_t> m(sched);
  m.assign_batch(items_of({{1, 1}, {2, 2}, {3, 3}}));
  std::vector<map::Key> gone{2, 7};
  m.erase_batch(gone);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_FALSE(m.contains(2));
  EXPECT_TRUE(m.contains(3));
}

class ParallelMapSession : public ::testing::TestWithParam<int> {};

TEST_P(ParallelMapSession, RandomSessionMatchesStdMap) {
  const unsigned threads = static_cast<unsigned>(GetParam());
  Scheduler sched(threads);
  Rng rng(77 + threads);
  ParallelMap<std::int64_t> m(sched);
  std::map<map::Key, std::int64_t> ref;
  auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  for (int round = 0; round < 25; ++round) {
    if (rng.below(4) != 0) {
      std::vector<Item> batch;
      const std::size_t sz = 1 + rng.below(300);
      for (std::size_t i = 0; i < sz; ++i)
        batch.emplace_back(rng.range(0, 2000),
                           static_cast<std::int64_t>(rng.below(100)));
      m.insert_batch(batch, add);
      for (const auto& [k, v] : batch) ref[k] += v;
    } else {
      std::vector<map::Key> keys;
      const std::size_t sz = 1 + rng.below(200);
      for (std::size_t i = 0; i < sz; ++i) keys.push_back(rng.range(0, 2000));
      m.erase_batch(keys);
      for (map::Key k : keys) ref.erase(k);
    }
    ASSERT_EQ(m.size(), ref.size()) << "round " << round;
    ASSERT_EQ(m.items(), std::vector<Item>(ref.begin(), ref.end()))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelMapSession,
                         ::testing::Values(1, 2, 4));

TEST(ParallelMap, LargeShardAggregation) {
  // Word-count style: several shards of (key, count), merged by sum.
  Scheduler sched(4);
  Rng rng(5);
  ParallelMap<std::int64_t> m(sched);
  std::map<map::Key, std::int64_t> ref;
  auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  for (int shard = 0; shard < 6; ++shard) {
    std::vector<Item> batch;
    for (int i = 0; i < 20000; ++i)
      batch.emplace_back(rng.range(0, 5000), 1);
    m.insert_batch(batch, add);
    for (const auto& [k, v] : batch) ref[k] += v;
  }
  ASSERT_EQ(m.items(), std::vector<Item>(ref.begin(), ref.end()));
  // Total count preserved.
  std::int64_t total = 0;
  for (const auto& [k, v] : m.items()) total += v;
  EXPECT_EQ(total, 6 * 20000);
}

TEST(ParallelMapPipeline, StatsAndCompact) {
  Scheduler sched(2);
  Rng rng(41);
  ParallelMap<std::int64_t> m(sched);
  auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  std::map<map::Key, std::int64_t> ref;
  for (int round = 0; round < 5; ++round) {
    std::vector<Item> batch;
    for (int i = 0; i < 3000; ++i)
      batch.emplace_back(rng.range(0, 4000),
                         static_cast<std::int64_t>(rng.below(10)));
    m.insert_batch(batch, add);
    for (const auto& [k, v] : batch) ref[k] += v;
  }
  ParallelMap<std::int64_t>::Stats st = m.stats();
  EXPECT_EQ(st.batches, 5u);
  EXPECT_EQ(st.max_pending, 5u);
  EXPECT_EQ(st.flushes, 0u);
  m.flush();
  EXPECT_EQ(m.stats().flushes, 1u);

  const auto before = m.stats();
  m.compact();
  const auto after = m.stats();
  EXPECT_EQ(after.epochs, before.epochs + 1);
  EXPECT_LT(after.arena_bytes, before.arena_bytes);
  EXPECT_EQ(m.items(), std::vector<Item>(ref.begin(), ref.end()));
}

class ShardedMapSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShardedMapSweep, MatchesUnshardedAndStdMap) {
  const unsigned shards = static_cast<unsigned>(GetParam());
  Scheduler sched(2);
  Rng rng(700 + shards);
  ShardedParallelMap<std::int64_t> sh(sched, shards);
  ParallelMap<std::int64_t> flat(sched);
  std::map<map::Key, std::int64_t> ref;
  auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  EXPECT_EQ(sh.shard_count(), shards);

  for (int round = 0; round < 15; ++round) {
    if (rng.below(4) != 0) {
      std::vector<Item> batch;
      const std::size_t sz = 1 + rng.below(300);
      for (std::size_t i = 0; i < sz; ++i)
        batch.emplace_back(rng.range(-2000, 2000),  // negative keys too
                           static_cast<std::int64_t>(rng.below(100)));
      sh.insert_batch(batch, add);
      flat.insert_batch(batch, add);
      for (const auto& [k, v] : batch) ref[k] += v;
    } else {
      std::vector<map::Key> keys;
      const std::size_t sz = 1 + rng.below(200);
      for (std::size_t i = 0; i < sz; ++i) keys.push_back(rng.range(-2000, 2000));
      sh.erase_batch(keys);
      flat.erase_batch(keys);
      for (map::Key k : keys) ref.erase(k);
    }
    ASSERT_EQ(sh.size(), ref.size()) << "round " << round;
    ASSERT_EQ(sh.items(), flat.items()) << "round " << round;
    ASSERT_EQ(sh.items(), std::vector<Item>(ref.begin(), ref.end()))
        << "round " << round;
  }

  for (int i = 0; i < 200; ++i) {
    const map::Key k = rng.range(-2000, 2000);
    const auto it = ref.find(k);
    ASSERT_EQ(sh.get(k),
              it == ref.end() ? std::nullopt
                              : std::optional<std::int64_t>(it->second));
  }

  sh.compact();
  EXPECT_EQ(sh.stats().epochs, shards);
  EXPECT_EQ(sh.items(), std::vector<Item>(ref.begin(), ref.end()));
}

// Routing at the extremes of the key space (see the set-facade twin): the
// sign-bit partition must keep INT64_MIN/INT64_MAX in the first/last shard,
// boundary keys in the right-hand shard, and S=1 must accept everything.
TEST_P(ShardedMapSweep, ExtremeAndBoundaryKeysRouteCorrectly) {
  const unsigned shards = static_cast<unsigned>(GetParam());
  Scheduler sched(2);
  ShardedParallelMap<std::int64_t> sh(sched, shards);
  constexpr map::Key kMin = std::numeric_limits<map::Key>::min();
  constexpr map::Key kMax = std::numeric_limits<map::Key>::max();
  auto add = [](std::int64_t x, std::int64_t y) { return x + y; };

  const std::vector<map::Key> lowers = sh.boundaries();
  EXPECT_EQ(lowers.size(), shards - 1u);
  std::vector<map::Key> edges{kMin, kMin + 1, -1, 0, 1, kMax - 1, kMax};
  for (const map::Key b : lowers) {
    edges.push_back(b - 1);
    edges.push_back(b);
    edges.push_back(b + 1);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::vector<Item> batch;
  for (const map::Key k : edges) batch.emplace_back(k, k < 0 ? -7 : 7);
  sh.insert_batch(batch, add);
  EXPECT_EQ(sh.size(), edges.size());
  for (const map::Key k : edges)
    ASSERT_EQ(sh.get(k), std::optional<std::int64_t>(k < 0 ? -7 : 7)) << k;
  EXPECT_EQ(sh.get(2), std::nullopt);

  // Merging a second batch at the extremes must hit the stored entries, not
  // insert fresh ones in a mis-routed shard.
  const std::vector<Item> extremes{{kMin, -7}, {kMax, 7}};
  sh.insert_batch(extremes, add);
  EXPECT_EQ(sh.get(kMin), std::optional<std::int64_t>(-14));
  EXPECT_EQ(sh.get(kMax), std::optional<std::int64_t>(14));
  EXPECT_EQ(sh.size(), edges.size());

  sh.erase_batch(std::vector<map::Key>{kMin, kMax});
  EXPECT_EQ(sh.get(kMin), std::nullopt);
  EXPECT_EQ(sh.get(kMax), std::nullopt);
  EXPECT_EQ(sh.size(), edges.size() - 2);
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedMapSweep, ::testing::Values(1, 4));

// ---- augmented maps: O(lg n) range aggregates -------------------------------

using SumAug = pipelined::treap::SumAug<std::int64_t>;

std::int64_t fold_range(const std::map<map::Key, std::int64_t>& ref,
                        map::Key lo, map::Key hi) {
  std::int64_t s = 0;
  for (auto it = ref.lower_bound(lo); it != ref.end() && it->first <= hi; ++it)
    s += it->second;
  return s;
}

TEST(ParallelMapAug, RangeAggregateMatchesFold) {
  Scheduler sched(2);
  Rng rng(53);
  ParallelMap<std::int64_t, SumAug> m(sched);
  ShardedParallelMap<std::int64_t, SumAug> sh(sched, 4);
  std::map<map::Key, std::int64_t> ref;
  auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  for (int round = 0; round < 6; ++round) {
    std::vector<Item> batch;
    const std::size_t sz = 1 + rng.below(2000);
    for (std::size_t i = 0; i < sz; ++i)
      batch.emplace_back(rng.range(-3000, 3000),
                         static_cast<std::int64_t>(rng.below(100)));
    m.insert_batch(batch, add);
    sh.insert_batch(batch, add);
    for (const auto& [k, v] : batch) ref[k] += v;
    // Aggregates force only their O(lg n) search paths, so they pipeline
    // with the still-materializing batches (no flush here).
    for (int probe = 0; probe < 20; ++probe) {
      map::Key lo = rng.range(-3500, 3500), hi = rng.range(-3500, 3500);
      if (lo > hi) std::swap(lo, hi);
      ASSERT_EQ(m.aggregate(lo, hi), fold_range(ref, lo, hi))
          << "round " << round << " [" << lo << ", " << hi << "]";
      ASSERT_EQ(sh.aggregate(lo, hi), fold_range(ref, lo, hi))
          << "sharded, round " << round << " [" << lo << ", " << hi << "]";
    }
  }
  // Aggregation survives erase_batch and the compaction rebuild.
  std::vector<map::Key> gone;
  for (int i = 0; i < 800; ++i) gone.push_back(rng.range(-3000, 3000));
  m.erase_batch(gone);
  sh.erase_batch(gone);
  for (map::Key k : gone) ref.erase(k);
  m.compact();
  sh.compact();
  for (int probe = 0; probe < 20; ++probe) {
    map::Key lo = rng.range(-3500, 3500), hi = rng.range(-3500, 3500);
    if (lo > hi) std::swap(lo, hi);
    ASSERT_EQ(m.aggregate(lo, hi), fold_range(ref, lo, hi));
    ASSERT_EQ(sh.aggregate(lo, hi), fold_range(ref, lo, hi));
  }
}

// ---- snapshots: epoch-pinned lock-free views --------------------------------

TEST(ParallelMapSnapshot, PinsContentsAcrossBatchesAndCompaction) {
  Scheduler sched(2);
  Rng rng(59);
  ParallelMap<std::int64_t, SumAug> m(sched);
  auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  std::map<map::Key, std::int64_t> ref;
  std::vector<Item> batch;
  for (int i = 0; i < 4000; ++i)
    batch.emplace_back(rng.range(0, 5000),
                       static_cast<std::int64_t>(rng.below(100)));
  m.insert_batch(batch, add);
  for (const auto& [k, v] : batch) ref[k] += v;

  // Taken while the batch may still be materializing: readers pipeline.
  MapSnapshot<std::int64_t, SumAug> snap = m.snapshot();
  const std::vector<Item> pinned(ref.begin(), ref.end());
  EXPECT_EQ(snap.items(), pinned);

  // Later batches and a full storage-epoch swap must not move the snapshot.
  std::vector<Item> more;
  for (int i = 0; i < 3000; ++i)
    more.emplace_back(rng.range(0, 5000),
                      static_cast<std::int64_t>(rng.below(100)));
  m.insert_batch(more, add);
  m.compact();  // retires the snapshot's epoch from the map's side
  m.erase_batch(std::vector<map::Key>{pinned.front().first});
  m.flush();

  EXPECT_EQ(snap.items(), pinned);
  EXPECT_EQ(snap.size(), pinned.size());
  EXPECT_EQ(snap.get(pinned.front().first), pinned.front().second);
  EXPECT_FALSE(snap.contains(6001));
  EXPECT_EQ(snap.aggregate(0, 5000), fold_range(ref, 0, 5000));
  // A fresh snapshot sees the post-compaction state.
  for (const auto& [k, v] : more) ref[k] += v;
  ref.erase(pinned.front().first);
  EXPECT_EQ(m.snapshot().items(),
            std::vector<Item>(ref.begin(), ref.end()));
}

// The ISSUE's tsan pin: readers aggregate over pinned snapshots while the
// mutator runs write + compact rounds. A snapshot's contents are immutable,
// so two aggregates of the same snapshot must agree no matter how many
// epochs retired in between; the pinned arena stays alive (and race-free)
// until the last snapshot drops.
TEST(ParallelMapConcurrent, SnapshotReadersRaceWritersAndCompaction) {
  Scheduler sched(2);
  Rng rng(61);
  ParallelMap<std::int64_t, SumAug> m(sched);
  auto add = [](std::int64_t x, std::int64_t y) { return x + y; };
  std::map<map::Key, std::int64_t> ref;
  {
    std::vector<Item> init;
    for (int i = 0; i < 3000; ++i)
      init.emplace_back(rng.range(0, 1 << 20),
                        static_cast<std::int64_t>(rng.below(100)));
    m.insert_batch(init, add);
    for (const auto& [k, v] : init) ref[k] += v;
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> moved{false};     // set if a pinned snapshot ever changes
  std::atomic<std::int64_t> sink{0};  // keeps the reader loops un-elidable
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&m, &stop, &moved, &sink, r] {
      Rng mine(300 + r);
      std::int64_t acc = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        MapSnapshot<std::int64_t, SumAug> snap = m.snapshot();
        map::Key lo = mine.range(0, 1 << 20), hi = mine.range(0, 1 << 20);
        if (lo > hi) std::swap(lo, hi);
        const std::int64_t first = snap.aggregate(lo, hi);
        acc += first;
        acc += snap.contains(mine.range(0, 1 << 20)) ? 1 : 0;
        // Immutability: the same pinned snapshot re-aggregated later (after
        // any number of epochs retired under it) answers identically.
        if (mine.below(8) == 0 && snap.aggregate(lo, hi) != first)
          moved.store(true, std::memory_order_relaxed);
      }
      sink.fetch_add(acc, std::memory_order_relaxed);
    });
  }

  for (int round = 0; round < 8; ++round) {
    std::vector<Item> batch;
    const std::size_t sz = 1 + rng.below(1500);
    for (std::size_t i = 0; i < sz; ++i)
      batch.emplace_back(rng.range(0, 1 << 20),
                         static_cast<std::int64_t>(rng.below(100)));
    m.insert_batch(batch, add);
    for (const auto& [k, v] : batch) ref[k] += v;
    std::vector<map::Key> gone;
    for (std::size_t i = 0; i < 1 + rng.below(500); ++i)
      gone.push_back(rng.range(0, 1 << 20));
    m.erase_batch(gone);
    for (map::Key k : gone) ref.erase(k);
    m.compact();  // epoch swap while snapshot readers are live
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_GE(sink.load(std::memory_order_relaxed), 0) << "snapshot moved";

  m.flush();
  EXPECT_EQ(m.items(), std::vector<Item>(ref.begin(), ref.end()));
  EXPECT_EQ(m.aggregate(0, 1 << 20),
            fold_range(ref, 0, 1 << 20));
}

}  // namespace
}  // namespace pwf::rt
