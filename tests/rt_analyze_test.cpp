// Tests for the pwf-analyze runtime checker (src/analyze/rt_recorder.hpp).
// Only built when the runtime is instrumented (-DPWF_ANALYZE=ON): FutCell
// and the Scheduler log preset/write/touch/park events, and the Scheduler
// destructor audits them — double writes, waiters parked forever on cells
// nobody will write (otherwise a silent hang), and non-linear reads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <vector>

#include "analyze/rt_recorder.hpp"
#include "runtime/future.hpp"
#include "runtime/parallel_map.hpp"
#include "runtime/parallel_set.hpp"
#include "runtime/scheduler.hpp"

#if !PWF_ANALYZE
#error "rt_analyze_test requires -DPWF_ANALYZE=ON"
#endif

namespace pwf::rt {
namespace {

// Each test audits its own window of events.
class RtAnalyze : public ::testing::Test {
 protected:
  void SetUp() override { analyze::reset(); }
  void TearDown() override { analyze::reset(); }
};

TEST_F(RtAnalyze, RecordsWriteAndTouch) {
  {
    Scheduler sched(2);
    FutCell<int> cell;
    FutCell<int> done;
    struct Maker {
      static Fiber reader(FutCell<int>& in, FutCell<int>& out) {
        const int v = co_await in;
        out.write(v + 1);
      }
    };
    spawn(Maker::reader(cell, done));
    cell.write(1);
    EXPECT_EQ(done.wait_blocking(), 2);

    const analyze::RtReport rep = analyze::audit();
    EXPECT_TRUE(rep.ok());
    EXPECT_GE(rep.events, 3u);  // >= 2 writes + 1 touch (park is racy)
    EXPECT_EQ(rep.cells, 2u);
    EXPECT_TRUE(rep.nonlinear.empty());
  }  // scheduler shutdown audit must be clean too
}

TEST_F(RtAnalyze, LinearRunHasCleanShutdownAudit) {
  {
    Scheduler sched(2);
    FutCell<int> a, b, c;
    struct Maker {
      static Fiber stage(FutCell<int>& in, FutCell<int>& out) {
        out.write(co_await in * 2);
      }
    };
    spawn(Maker::stage(a, b));
    spawn(Maker::stage(b, c));
    a.write(5);
    EXPECT_EQ(c.wait_blocking(), 20);
  }
  // The destructor audited and reset; a fresh audit sees nothing.
  EXPECT_EQ(analyze::audit().events, 0u);
}

TEST_F(RtAnalyze, DetectsNonLinearReads) {
  Scheduler sched(2);
  FutCell<int> cell;
  std::atomic<int> sum{0};
  FutCell<int> dones[3];
  struct Maker {
    static Fiber reader(FutCell<int>& in, std::atomic<int>& s,
                        FutCell<int>& done) {
      s.fetch_add(co_await in);
      done.write(1);
    }
  };
  for (auto& d : dones) spawn(Maker::reader(cell, sum, d));
  cell.write(3);
  for (auto& d : dones) d.wait_blocking();
  EXPECT_EQ(sum.load(), 9);

  const analyze::RtReport rep = analyze::audit();
  // Non-linear reads are reported but not fatal: the waiter list supports
  // the general multi-reader model of Section 2.
  EXPECT_TRUE(rep.ok());
  ASSERT_EQ(rep.nonlinear.size(), 1u);
  EXPECT_EQ(rep.nonlinear[0].cell, &cell);
  EXPECT_EQ(rep.nonlinear[0].touches, 3u);
  analyze::reset();  // keep the shutdown audit's nonlinear report quiet
}

TEST_F(RtAnalyze, EventLogCarriesWorkerAndFiber) {
  Scheduler sched(1);
  FutCell<int> cell, done;
  struct Maker {
    static Fiber reader(FutCell<int>& in, FutCell<int>& out) {
      out.write(co_await in);
    }
  };
  spawn(Maker::reader(cell, done));
  cell.write(7);
  done.wait_blocking();
  bool saw_worker_event = false;
  for (const auto& e : analyze::recent_events(64))
    if (e.worker >= 0 && e.fiber != nullptr) saw_worker_event = true;
  EXPECT_TRUE(saw_worker_event);
}

TEST_F(RtAnalyze, ShutdownAbortsOnParkedForeverWaiter) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Scheduler sched(1);
        FutCell<int> never_written;
        FutCell<int> reached;
        struct Maker {
          static Fiber reader(FutCell<int>& nw, FutCell<int>& r) {
            r.write(1);             // prove the fiber ran this far...
            co_await nw;            // ...then park forever
          }
        };
        spawn(Maker::reader(never_written, reached));
        reached.wait_blocking();
        // Destroying the scheduler quiesces the workers; the shutdown audit
        // finds the parked waiter and aborts instead of hanging silently.
      },
      "never-written|parked forever|runtime audit failed");
}

// Constructing, writing, flushing, and destroying a service under the
// instrumented build must leave a clean audit — and while batches are
// unflushed, any parked-but-unwritten cells are classified as pending on the
// pipeline, not as deadlocks.
TEST_F(RtAnalyze, ServiceLifecycleAuditsClean) {
  {
    Scheduler sched(2);
    {
      ParallelSet set(sched);
      std::vector<std::int64_t> keys(4096);
      std::iota(keys.begin(), keys.end(), 0);
      set.insert_batch(keys);
      set.erase_batch(std::vector<std::int64_t>{0, 1, 2, 3});
      EXPECT_GE(analyze::pipeline_unflushed(), 2u);
      const analyze::RtReport mid = analyze::audit();
      EXPECT_TRUE(mid.ok()) << "in-flight service batches misread as "
                               "parked-forever";
      EXPECT_TRUE(mid.never_written.empty());
      set.flush();
      EXPECT_EQ(analyze::pipeline_unflushed(), 0u);
      EXPECT_EQ(set.size(), 4092u);
    }  // ~ParallelSet drains frames (scheduler alive)
  }    // shutdown audit must pass
  EXPECT_EQ(analyze::audit().events, 0u);
}

// The destruction order the ISSUE names: the Scheduler dies while service
// pipelines are still unflushed. The shutdown audit must treat cells chained
// on the unflushed roots as pending (no abort), and the service destructors
// must not spin on frame-pool quiescence nobody can produce (no hang). Runs
// in a death-test child because fibers dropped at scheduler shutdown leak
// pool frames process-wide, which would poison later wait_quiescent calls.
void shutdown_with_unflushed_pipeline() {
  auto sched = std::make_unique<Scheduler>(2);
  auto set = std::make_unique<ParallelSet>(*sched);
  auto map = std::make_unique<ParallelMap<std::int64_t>>(*sched);
  std::vector<std::int64_t> keys(40000);
  std::iota(keys.begin(), keys.end(), 0);
  set->insert_batch(keys);
  set->erase_batch(keys);
  set->insert_batch(keys);
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  items.reserve(keys.size());
  for (std::int64_t k : keys) items.emplace_back(k, k);
  map->insert_batch(items, [](std::int64_t, std::int64_t b) { return b; });
  sched.reset();  // audit runs with unflushed batches: must not abort
  map.reset();    // must not hang: no scheduler can drain frames
  set.reset();
  std::_Exit(0);
}

TEST_F(RtAnalyze, SchedulerShutdownWithUnflushedPipelineNeitherAbortsNorHangs) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(shutdown_with_unflushed_pipeline(),
              ::testing::ExitedWithCode(0), "");
}

TEST_F(RtAnalyze, DoubleWriteStillAbortsEagerly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Scheduler sched(1);
        FutCell<int> c;
        c.write(1);
        c.write(2);
      },
      "written twice");
}

}  // namespace
}  // namespace pwf::rt
