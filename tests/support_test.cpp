#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "support/arena.hpp"
#include "support/cli.hpp"
#include "support/random.hpp"
#include "support/scan.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace pwf {
namespace {

// ---- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(17);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100000; ++i) ++buckets[r.below(10)];
  for (int b : buckets) EXPECT_NEAR(b, 10000, 600);
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Rng r(19);
  std::shuffle(v.begin(), v.end(), r);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NE(v, sorted);  // astronomically unlikely to stay sorted
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

// ---- scans ------------------------------------------------------------------

TEST(Scan, ExclusiveBasic) {
  std::vector<std::uint64_t> in{3, 1, 4, 1, 5};
  std::vector<std::uint64_t> out(5);
  const std::uint64_t total = exclusive_scan_u64(in, out);
  EXPECT_EQ(total, 14u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 3, 4, 8, 9}));
}

TEST(Scan, InclusiveBasic) {
  std::vector<std::uint64_t> in{3, 1, 4};
  std::vector<std::uint64_t> out(3);
  const std::uint64_t total = inclusive_scan_u64(in, out);
  EXPECT_EQ(total, 8u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{3, 4, 8}));
}

TEST(Scan, ExclusiveInPlaceAliases) {
  std::vector<std::uint64_t> v{1, 2, 3, 4};
  EXPECT_EQ(exclusive_scan_inplace(v), 10u);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{0, 1, 3, 6}));
}

TEST(Scan, EmptyInput) {
  std::vector<std::uint64_t> in, out;
  EXPECT_EQ(exclusive_scan_u64(in, out), 0u);
}

TEST(Scan, PartitionStable) {
  std::vector<int> in{5, 2, 7, 1, 9, 4};
  const bool flags[6] = {true, false, true, false, true, false};
  std::vector<int> out(6);
  const std::size_t split =
      scan_partition<int>(in, std::span<const bool>(flags, 6), out);
  EXPECT_EQ(split, 3u);
  EXPECT_EQ(out, (std::vector<int>{2, 1, 4, 5, 7, 9}));
}

// ---- stats ------------------------------------------------------------------

TEST(Stats, SummarizeBasics) {
  std::vector<double> xs{1, 2, 3, 4};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_EQ(s.count, 4u);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0);
}

TEST(Stats, LinearFitExact) {
  std::vector<double> x{1, 2, 3, 4}, y{3, 5, 7, 9};  // y = 2x + 1
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.a, 2.0, 1e-9);
  EXPECT_NEAR(f.b, 1.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(Stats, ScaleFitExact) {
  std::vector<double> f{1, 2, 3}, y{4, 8, 12};  // y = 4f
  const ScaleFit s = fit_scale(f, y);
  EXPECT_NEAR(s.a, 4.0, 1e-9);
  EXPECT_NEAR(s.rel_rms, 0.0, 1e-9);
}

TEST(Stats, BestModelPicksTheRightCurve) {
  // y grows like x^2; offer x and x^2.
  std::vector<double> y, m1, m2;
  for (double x = 1; x <= 20; ++x) {
    y.push_back(3 * x * x);
    m1.push_back(x);
    m2.push_back(x * x);
  }
  const ModelChoice c = best_model(
      y, {{"linear", m1}, {"quadratic", m2}});
  EXPECT_EQ(c.name, "quadratic");
  EXPECT_NEAR(c.fit.a, 3.0, 1e-9);
}

TEST(Stats, LgClampsSmallValues) {
  EXPECT_DOUBLE_EQ(lg(0.5), 1.0);
  EXPECT_DOUBLE_EQ(lg(1.0), 1.0);
  EXPECT_DOUBLE_EQ(lg(8.0), 3.0);
}

// ---- arena ------------------------------------------------------------------

TEST(Arena, AllocationsAreDistinctAndAligned) {
  Arena a(128);
  std::vector<std::uint64_t*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    auto* p = a.create<std::uint64_t>(static_cast<std::uint64_t>(i));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::uint64_t), 0u);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(*ptrs[i], static_cast<std::uint64_t>(i));
}

TEST(Arena, GrowsPastChunkSize) {
  Arena a(64);
  // 100 * 64 bytes blows well past the first chunk.
  for (int i = 0; i < 100; ++i) {
    auto* p = static_cast<char*>(a.allocate(64, 8));
    std::memset(p, i, 64);
  }
  EXPECT_GE(a.bytes_used(), 64u * 100u);
}

TEST(Arena, CreateArrayZeroInitializes) {
  Arena a;
  int* xs = a.create_array<int>(100);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(xs[i], 0);
  EXPECT_EQ(a.create_array<int>(0), nullptr);
}

TEST(Arena, ResetReclaims) {
  Arena a(1 << 12);
  a.allocate(100, 8);
  a.reset();
  EXPECT_EQ(a.bytes_used(), 0u);
  auto* p = a.create<int>(7);
  EXPECT_EQ(*p, 7);
}

// ---- cli --------------------------------------------------------------------

TEST(Cli, DefaultsAndOverrides) {
  const char* argv[] = {"prog", "--n=42", "--name", "bench", "--flag"};
  Cli cli(5, const_cast<char**>(argv),
          {{"n", "1"}, {"name", "x"}, {"flag", "0"}, {"untouched", "9"}});
  EXPECT_EQ(cli.get_int("n"), 42);
  EXPECT_EQ(cli.get_str("name"), "bench");
  EXPECT_TRUE(cli.get_bool("flag"));
  EXPECT_EQ(cli.get_int("untouched"), 9);
}

TEST(Cli, DoubleParsing) {
  const char* argv[] = {"prog", "--x=2.5"};
  Cli cli(2, const_cast<char**>(argv), {{"x", "0"}});
  EXPECT_DOUBLE_EQ(cli.get_double("x"), 2.5);
}

// ---- table ------------------------------------------------------------------

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(-42), "-42");
}

TEST(Table, PrintsAllCells) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  // Render to a memstream and check content.
  char* buf = nullptr;
  std::size_t len = 0;
  FILE* f = open_memstream(&buf, &len);
  t.print(f);
  std::fclose(f);
  std::string s(buf, len);
  free(buf);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
}

}  // namespace
}  // namespace pwf
