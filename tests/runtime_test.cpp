// Tests for the coroutine futures runtime: cell semantics, the scheduler,
// and the parallel algorithm ports against sequential references.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "costmodel/engine.hpp"
#include "runtime/future.hpp"
#include "runtime/rt_treap.hpp"
#include "runtime/rt_trees.hpp"
#include "runtime/rt_ttree.hpp"
#include "runtime/scheduler.hpp"
#include "support/random.hpp"
#include "trees/merge.hpp"
#include "trees/rebalance.hpp"
#include "trees/tree.hpp"

namespace pwf::rt {
namespace {

std::vector<std::int64_t> random_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::set<std::int64_t> s;
  while (s.size() < n) s.insert(rng.range(0, 1 << 24));
  return {s.begin(), s.end()};
}

TEST(FutCell, PresetIsImmediatelyReadable) {
  FutCell<int> c;
  c.preset(42);
  EXPECT_TRUE(c.written());
  EXPECT_EQ(c.peek(), 42);
  EXPECT_EQ(c.wait_blocking(), 42);
}

TEST(FutCell, WriteThenAwaitInFiber) {
  Scheduler sched(2);
  FutCell<int> cell;
  FutCell<int> result;
  struct Maker {
    static Fiber reader(FutCell<int>& in, FutCell<int>& out) {
      const int v = co_await in;
      out.write(v * 2);
    }
    static Fiber writer(FutCell<int>& c) {
      c.write(21);
      co_return;
    }
  };
  spawn(Maker::reader(cell, result));  // reader first: forces a suspension
  spawn(Maker::writer(cell));
  EXPECT_EQ(result.wait_blocking(), 42);
}

TEST(FutCell, ManyWaitersAllResumed) {
  Scheduler sched(2);
  FutCell<int> cell;
  std::atomic<int> sum{0};
  FutCell<int> dones[8];
  struct Maker {
    static Fiber reader(FutCell<int>& in, std::atomic<int>& sum,
                        FutCell<int>& done) {
      sum.fetch_add(co_await in);
      done.write(1);
    }
  };
  for (auto& d : dones) spawn(Maker::reader(cell, sum, d));
  cell.write(5);
  for (auto& d : dones) d.wait_blocking();
  EXPECT_EQ(sum.load(), 40);
}

TEST(Scheduler, RunsManyIndependentFibers) {
  Scheduler sched(3);
  constexpr int kFibers = 20000;
  std::atomic<int> count{0};
  FutCell<int> done;
  struct Maker {
    static Fiber tick(std::atomic<int>& count, FutCell<int>& done,
                      int total) {
      if (count.fetch_add(1) + 1 == total) done.write(1);
      co_return;
    }
  };
  for (int i = 0; i < kFibers; ++i) spawn(Maker::tick(count, done, kFibers));
  done.wait_blocking();
  EXPECT_EQ(count.load(), kFibers);
}

TEST(Scheduler, RecursiveSpawnTree) {
  Scheduler sched(4);
  std::atomic<int> leaves{0};
  FutCell<int> done;
  struct Maker {
    static Fiber node(int depth, std::atomic<int>& leaves,
                      FutCell<int>& done) {
      if (depth == 0) {
        if (leaves.fetch_add(1) + 1 == 1 << 12) done.write(1);
        co_return;
      }
      spawn(node(depth - 1, leaves, done));
      spawn(node(depth - 1, leaves, done));
    }
  };
  spawn(Maker::node(12, leaves, done));
  done.wait_blocking();
  EXPECT_EQ(leaves.load(), 1 << 12);
}

TEST(FutCellDeath, DoubleWriteAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Scheduler sched(1);
        FutCell<int> c;
        c.write(1);
        c.write(2);
      },
      "written twice");
}

TEST(FutCellDeath, PresetAfterWriteAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        FutCell<int> c;
        c.write(1);
        c.preset(2);
      },
      "preset of a non-empty cell");
}

TEST(FutCellDeath, DoublePresetAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        FutCell<int> c;
        c.preset(1);
        c.preset(2);
      },
      "preset of a non-empty cell");
}

TEST(SchedulerDeath, TwoLiveSchedulersAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Scheduler a(1);
        Scheduler b(1);
      },
      "only one Scheduler");
}

TEST(Scheduler, CreateDestroyCycles) {
  // Schedulers must start and stop cleanly back to back, including with
  // completed work in their deques.
  for (int cycle = 0; cycle < 8; ++cycle) {
    Scheduler sched(1 + cycle % 3);
    FutCell<int> done;
    struct Maker {
      static Fiber one(FutCell<int>& d) {
        d.write(1);
        co_return;
      }
    };
    spawn(Maker::one(done));
    EXPECT_EQ(done.wait_blocking(), 1);
  }
  EXPECT_EQ(Scheduler::current(), nullptr);
}

TEST(Scheduler, StatsCountResumptions) {
  Scheduler sched(2);
  constexpr int kFibers = 5000;
  std::atomic<int> count{0};
  FutCell<int> done;
  struct Maker {
    static Fiber tick(std::atomic<int>& c, FutCell<int>& d, int total) {
      if (c.fetch_add(1) + 1 == total) d.write(1);
      co_return;
    }
  };
  for (int i = 0; i < kFibers; ++i) spawn(Maker::tick(count, done, kFibers));
  done.wait_blocking();
  const auto s = sched.stats();
  EXPECT_GE(s.resumed, static_cast<std::uint64_t>(kFibers));
  EXPECT_GE(s.injected, static_cast<std::uint64_t>(kFibers));  // posted from main
}

// Pins the lock-free wake path: posts from the worker's own fast path (a
// running worker forking locally) find parked_ == 0 — with one worker busy
// running the tree there is nobody to wake — so they must not signal.
// Signals may only come from the external spawn(s) that seed the run.
TEST(Scheduler, WorkerLocalPostsDoNotSignal) {
  Scheduler sched(1);
  std::atomic<int> leaves{0};
  FutCell<int> done;
  struct Maker {
    static Fiber node(int depth, std::atomic<int>& leaves,
                      FutCell<int>& done) {
      if (depth == 0) {
        if (leaves.fetch_add(1) + 1 == 1 << 9) done.write(1);
        co_return;
      }
      spawn(node(depth - 1, leaves, done));
      spawn(node(depth - 1, leaves, done));
    }
  };
  spawn(Maker::node(9, leaves, done));  // 1 external post, 2^10-2 local ones
  done.wait_blocking();
  const auto s = sched.stats();
  EXPECT_GE(s.resumed, (1u << 10) - 1);
  // Every local post saw the lone worker running (parked_ == 0). Only the
  // external seed post — and stray posts racing a 1 ms park timeout — may
  // signal; anywhere near the fiber count means the fast path signals.
  EXPECT_LE(s.wakeups, 16u);
}

// The other half of the handshake: a post aimed at genuinely parked workers
// must signal (and count the signal). Workers park in 1 ms slices, so after
// a few quiet milliseconds a post lands on a parked worker with high
// probability; retry a bounded number of times to make it deterministic.
TEST(Scheduler, ExternalPostWakesParkedWorker) {
  Scheduler sched(2);
  struct Maker {
    static Fiber touch(FutCell<int>& d) {
      d.write(1);
      co_return;
    }
  };
  const std::uint64_t before = sched.stats().wakeups;
  bool signalled = false;
  for (int attempt = 0; attempt < 200 && !signalled; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    FutCell<int> done;
    spawn(Maker::touch(done));
    done.wait_blocking();
    signalled = sched.stats().wakeups > before;
  }
  EXPECT_TRUE(signalled);
}

// ---- parallel tree merge ----------------------------------------------------------

class RtMerge : public ::testing::TestWithParam<int> {};

TEST_P(RtMerge, MatchesStdMerge) {
  const unsigned nthreads = static_cast<unsigned>(GetParam());
  const auto a = random_keys(3000, 100 + nthreads);
  const auto b = random_keys(2000, 200 + nthreads);
  Scheduler sched(nthreads);
  trees::Store st;
  trees::Cell* out = trees::merge(st, st.input(st.build_balanced(a)),
                                  st.input(st.build_balanced(b)));
  const auto got = trees::wait_inorder(out);
  std::vector<std::int64_t> expected;
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(expected));
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Threads, RtMerge, ::testing::Values(1, 2, 4));

TEST(RtMerge, RepeatedRunsAreDeterministicInValue) {
  const auto a = random_keys(500, 1);
  const auto b = random_keys(500, 2);
  std::vector<std::int64_t> first;
  for (int run = 0; run < 5; ++run) {
    Scheduler sched(4);
    trees::Store st;
    trees::Cell* out = trees::merge(st, st.input(st.build_balanced(a)),
                                    st.input(st.build_balanced(b)));
    const auto got = trees::wait_inorder(out);
    if (run == 0)
      first = got;
    else
      EXPECT_EQ(got, first);
  }
}

TEST(RtMergesort, SortsRandomInput) {
  Rng rng(7);
  std::vector<std::int64_t> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.range(-1 << 24, 1 << 24));
  std::vector<std::int64_t> expected = v;
  std::sort(expected.begin(), expected.end());
  Scheduler sched(4);
  trees::Store st;
  trees::Cell* out = trees::mergesort(st, v);
  EXPECT_EQ(trees::wait_inorder(out), expected);
}

// ---- parallel treap ops ------------------------------------------------------------

class RtTreap : public ::testing::TestWithParam<int> {};

TEST_P(RtTreap, UnionMatchesSetUnion) {
  const unsigned nthreads = static_cast<unsigned>(GetParam());
  const auto a = random_keys(4000, 300 + nthreads);
  auto b = random_keys(3000, 400 + nthreads);
  for (std::size_t i = 0; i < 500; ++i) b[i] = a[i * 3];  // force overlap
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  Scheduler sched(nthreads);
  treap::Store st;
  treap::Cell* out = treap::union_treaps(st, st.input(st.build(a)),
                                         st.input(st.build(b)));
  std::vector<std::int64_t> expected;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(expected));
  EXPECT_EQ(treap::wait_inorder(out), expected);
  EXPECT_TRUE(treap::validate(st, out));
}

TEST_P(RtTreap, DiffMatchesSetDifference) {
  const unsigned nthreads = static_cast<unsigned>(GetParam());
  const auto a = random_keys(4000, 500 + nthreads);
  auto b = random_keys(2000, 600 + nthreads);
  for (std::size_t i = 0; i < 800; ++i) b[i] = a[i * 2];
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  Scheduler sched(nthreads);
  treap::Store st;
  treap::Cell* out = treap::diff_treaps(st, st.input(st.build(a)),
                                        st.input(st.build(b)));
  std::vector<std::int64_t> expected;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(expected));
  EXPECT_EQ(treap::wait_inorder(out), expected);
  EXPECT_TRUE(treap::validate(st, out));
}

TEST_P(RtTreap, IntersectMatchesSetIntersection) {
  const unsigned nthreads = static_cast<unsigned>(GetParam());
  const auto a = random_keys(4000, 900 + nthreads);
  auto b = random_keys(2000, 950 + nthreads);
  for (std::size_t i = 0; i < 800; ++i) b[i] = a[i * 2];
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  Scheduler sched(nthreads);
  treap::Store st;
  treap::Cell* out = treap::intersect_treaps(st, st.input(st.build(a)),
                                             st.input(st.build(b)));
  std::vector<std::int64_t> expected;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expected));
  EXPECT_EQ(treap::wait_inorder(out), expected);
  EXPECT_TRUE(treap::validate(st, out));
}

INSTANTIATE_TEST_SUITE_P(Threads, RtTreap, ::testing::Values(1, 2, 4));

TEST(RtTreap, StressManySeeds) {
  Scheduler sched(4);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto a = random_keys(300, 1000 + seed);
    const auto b = random_keys(300, 2000 + seed);
    treap::Store st;
    treap::Cell* out = treap::union_treaps(st, st.input(st.build(a)),
                                           st.input(st.build(b)));
    std::vector<std::int64_t> expected;
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(expected));
    ASSERT_EQ(treap::wait_inorder(out), expected) << "seed " << seed;
  }
}

TEST(RtMergesortBalanced, SortsAndIsHeightOptimal) {
  Rng rng(23);
  std::vector<std::int64_t> v;
  const std::size_t n = 1 << 12;
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng.range(-1 << 24, 1 << 24));
  std::vector<std::int64_t> expected = v;
  std::sort(expected.begin(), expected.end());
  Scheduler sched(4);
  trees::Store st;
  trees::Cell* out = trees::mergesort_balanced(st, v);
  EXPECT_EQ(trees::wait_inorder(out), expected);
  struct H {
    static int of(trees::Node* node) {
      if (!node) return 0;
      return 1 + std::max(of(node->left->peek()), of(node->right->peek()));
    }
  };
  EXPECT_LE(H::of(out->peek()),
            static_cast<int>(std::ceil(std::log2(static_cast<double>(n) + 1))) + 1);
}

// ---- parallel rebalance -------------------------------------------------------------

TEST(RtRebalance, BalancesMergeOutput) {
  const auto a = random_keys(3000, 40);
  const auto b = random_keys(1000, 41);
  Scheduler sched(4);
  trees::Store st;
  trees::Cell* merged = trees::merge(st, st.input(st.build_balanced(a)),
                                     st.input(st.build_balanced(b)));
  trees::Cell* balanced = trees::rebalance(st, merged);
  const auto got = trees::wait_inorder(balanced);
  std::vector<std::int64_t> expected;
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(expected));
  EXPECT_EQ(got, expected);
  // Height is near-optimal after the completed pipeline.
  struct H {
    static int of(trees::Node* n) {
      if (!n) return 0;
      return 1 + std::max(of(n->left->peek()), of(n->right->peek()));
    }
  };
  const double total = static_cast<double>(got.size());
  EXPECT_LE(H::of(balanced->peek()),
            static_cast<int>(std::ceil(std::log2(total + 1))) + 1);
}

TEST(RtRebalance, EmptyAndTiny) {
  Scheduler sched(2);
  trees::Store st;
  {
    trees::Cell* out = trees::rebalance(st, st.input(nullptr));
    EXPECT_EQ(out->wait_blocking(), nullptr);
  }
  {
    std::vector<std::int64_t> one{7};
    trees::Cell* out =
        trees::rebalance(st, st.input(st.build_balanced(one)));
    EXPECT_EQ(trees::wait_inorder(out), one);
  }
}

TEST(RtRebalance, MatchesCostModelResult) {
  // The runtime and the cost model instantiate the *same* algorithm bodies
  // (src/pipelined/trees.hpp), so merge + rebalance must produce the same
  // tree on both substrates — same in-order keys and same shape.
  const auto a = random_keys(2000, 50);
  const auto b = random_keys(700, 51);

  cm::Engine eng;
  pwf::trees::Store cst(eng);
  pwf::trees::TreeCell* cm_merged =
      pwf::trees::merge(cst, cst.input(cst.build_balanced(a)),
                        cst.input(cst.build_balanced(b)));
  pwf::trees::TreeCell* cm_out = pwf::trees::rebalance(cst, cm_merged);
  std::vector<std::int64_t> cm_keys;
  pwf::trees::collect_inorder(pwf::trees::peek(cm_out), cm_keys);
  const int cm_height = pwf::trees::height(pwf::trees::peek(cm_out));

  Scheduler sched(4);
  trees::Store st;
  trees::Cell* merged = trees::merge(st, st.input(st.build_balanced(a)),
                                     st.input(st.build_balanced(b)));
  trees::Cell* balanced = trees::rebalance(st, merged);
  EXPECT_EQ(trees::wait_inorder(balanced), cm_keys);
  EXPECT_EQ(trees::height(trees::peek(balanced)), cm_height);
}

// ---- strict fork-join baselines on the runtime ---------------------------------------

TEST(RtMerge, StrictBaselineMatchesPipelined) {
  const auto a = random_keys(1500, 60);
  const auto b = random_keys(900, 61);
  Scheduler sched(4);
  trees::Store st;
  trees::Node* strict = trees::merge_strict_blocking(
      st, st.build_balanced(a), st.build_balanced(b));
  std::vector<std::int64_t> got;
  trees::collect_inorder(strict, got);
  std::vector<std::int64_t> expected;
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(expected));
  EXPECT_EQ(got, expected);
}

TEST(RtTreap, StrictUnionBaselineMatchesPipelined) {
  const auto a = random_keys(1200, 62);
  const auto b = random_keys(800, 63);
  Scheduler sched(4);
  treap::Store st;
  treap::Node* strict =
      treap::union_strict_blocking(st, st.build(a), st.build(b));
  const auto got = treap::wait_inorder(st.input(strict));
  std::set<std::int64_t> ref(a.begin(), a.end());
  ref.insert(b.begin(), b.end());
  EXPECT_EQ(got, std::vector<std::int64_t>(ref.begin(), ref.end()));
}

// ---- parallel 2-6 tree -------------------------------------------------------------

class RtTtree : public ::testing::TestWithParam<int> {};

TEST_P(RtTtree, BulkInsertMatchesSet) {
  const unsigned nthreads = static_cast<unsigned>(GetParam());
  const auto tree_keys = random_keys(3000, 700 + nthreads);
  const auto new_keys = random_keys(1000, 800 + nthreads);
  Scheduler sched(nthreads);
  ttree::Store st;
  ttree::Cell* root = st.input(st.build(tree_keys, 3));
  ttree::Cell* out = ttree::bulk_insert(st, root, new_keys);
  EXPECT_TRUE(ttree::validate(out));
  std::set<std::int64_t> ref(tree_keys.begin(), tree_keys.end());
  ref.insert(new_keys.begin(), new_keys.end());
  EXPECT_EQ(ttree::wait_keys(out),
            std::vector<std::int64_t>(ref.begin(), ref.end()));
}

INSTANTIATE_TEST_SUITE_P(Threads, RtTtree, ::testing::Values(1, 2, 4));

TEST(RtTtree, ManyWavesDeepPipeline) {
  // m > n: many waves chase each other down a shallow tree.
  const auto tree_keys = random_keys(64, 900);
  const auto new_keys = random_keys(4096, 901);
  Scheduler sched(4);
  ttree::Store st;
  ttree::Cell* out =
      ttree::bulk_insert(st, st.input(st.build(tree_keys, 3)), new_keys);
  EXPECT_TRUE(ttree::validate(out));
  std::set<std::int64_t> ref(tree_keys.begin(), tree_keys.end());
  ref.insert(new_keys.begin(), new_keys.end());
  EXPECT_EQ(ttree::wait_keys(out),
            std::vector<std::int64_t>(ref.begin(), ref.end()));
}

}  // namespace
}  // namespace pwf::rt
