#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace pwf {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  double sum = 0;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(ss / static_cast<double>(xs.size() - 1))
                 : 0.0;
  return s;
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  PWF_CHECK(x.size() == y.size() && x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  LinearFit f;
  const double denom = n * sxx - sx * sx;
  if (denom == 0) return f;
  f.a = (n * sxy - sx * sy) / denom;
  f.b = (sy - f.a * sx) / n;
  const double ymean = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = f.a * x[i] + f.b;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ymean) * (y[i] - ymean);
  }
  f.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

ScaleFit fit_scale(std::span<const double> f, std::span<const double> y) {
  PWF_CHECK(f.size() == y.size() && !f.empty());
  double num = 0, den = 0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    num += f[i] * y[i];
    den += f[i] * f[i];
  }
  ScaleFit out;
  if (den == 0) return out;
  out.a = num / den;
  double ss = 0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (y[i] == 0) continue;
    const double rel = (y[i] - out.a * f[i]) / y[i];
    ss += rel * rel;
    ++counted;
  }
  out.rel_rms =
      counted ? std::sqrt(ss / static_cast<double>(counted)) : 0.0;
  return out;
}

double lg(double x) { return x <= 1.0 ? 1.0 : std::log2(x); }

ModelChoice best_model(
    std::span<const double> y,
    const std::vector<std::pair<std::string, std::vector<double>>>& models) {
  PWF_CHECK(!models.empty());
  ModelChoice best;
  bool first = true;
  for (const auto& [name, f] : models) {
    PWF_CHECK(f.size() == y.size());
    const ScaleFit sf = fit_scale(f, y);
    if (first || sf.rel_rms < best.fit.rel_rms) {
      best.name = name;
      best.fit = sf;
      first = false;
    }
  }
  return best;
}

}  // namespace pwf
