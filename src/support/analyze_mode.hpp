// Process-wide switch for the pwf-analyze checkers (src/analyze).
//
// When on, every cost-model Engine records its computation DAG and runs the
// offline verifier (write-once, race-freedom, EREW, linearity stats) over
// the trace at destruction, aborting with diagnostics on a violation.
//
// It is turned on by either
//   * the PWF_ANALYZE=1 environment variable (covers gtest binaries and
//     ctest runs without touching each test), or
//   * the built-in `--analyze` flag that support/cli adds to every bench
//     and example binary.
// The flag lives here in pwf_support rather than in pwf_analyze so that
// cli.cpp can set it without a support -> analyze link cycle.
#pragma once

namespace pwf {

bool analyze_mode();
void set_analyze_mode(bool on);

}  // namespace pwf
