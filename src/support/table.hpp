// Fixed-width ASCII table printer used by every bench binary, so all the
// EXPERIMENTS.md tables share one format.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace pwf {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Row cells are preformatted strings; helpers below format common types.
  void add_row(std::vector<std::string> cells);

  void print(std::FILE* out = stdout) const;

  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a bench section banner: experiment id + paper reference + claim.
void print_banner(const char* experiment_id, const char* paper_ref,
                  const char* claim);

}  // namespace pwf
