#include "support/scan.hpp"

#include "support/check.hpp"

namespace pwf {

std::uint64_t exclusive_scan_u64(std::span<const std::uint64_t> in,
                                 std::span<std::uint64_t> out) {
  PWF_CHECK(out.size() >= in.size());
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::uint64_t x = in[i];
    out[i] = acc;
    acc += x;
  }
  return acc;
}

std::uint64_t inclusive_scan_u64(std::span<const std::uint64_t> in,
                                 std::span<std::uint64_t> out) {
  PWF_CHECK(out.size() >= in.size());
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    out[i] = acc;
  }
  return acc;
}

std::uint64_t exclusive_scan_inplace(std::vector<std::uint64_t>& v) {
  return exclusive_scan_u64(v, v);
}

}  // namespace pwf
