// Minimal command-line flag parsing for bench/example binaries.
//
// Flags look like --name=value or --name value. Unknown flags abort with a
// usage message so that typos in sweep scripts fail loudly.
//
// Every binary additionally understands the built-in `--analyze` flag: it
// turns on analyze mode (support/analyze_mode.hpp), under which every
// cost-model Engine records its DAG and runs the pwf-analyze verifier at
// destruction. The PWF_ANALYZE environment variable has the same effect.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace pwf {

class Cli {
 public:
  // `known` maps flag name -> default value (as string).
  Cli(int argc, char** argv,
      std::map<std::string, std::string> known);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::string get_str(const std::string& name) const;
  bool get_bool(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pwf
