// Minimal command-line flag parsing for bench/example binaries.
//
// Flags look like --name=value or --name value. Unknown flags abort with a
// usage message so that typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace pwf {

class Cli {
 public:
  // `known` maps flag name -> default value (as string).
  Cli(int argc, char** argv,
      std::map<std::string, std::string> known);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::string get_str(const std::string& name) const;
  bool get_bool(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pwf
