// Prefix-sum (scan) primitives.
//
// The paper's Section-4 runtime assumes an EREW PRAM extended with a
// unit-time plus-scan, used to place reactivated threads back on the active
// stack without concurrent writes. The simulator charges scans through these
// helpers, and the workload generators use them for array_split.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pwf {

// Exclusive plus-scan: out[i] = sum of in[0..i-1]; returns the total.
std::uint64_t exclusive_scan_u64(std::span<const std::uint64_t> in,
                                 std::span<std::uint64_t> out);

// Inclusive plus-scan: out[i] = sum of in[0..i].
std::uint64_t inclusive_scan_u64(std::span<const std::uint64_t> in,
                                 std::span<std::uint64_t> out);

// In-place exclusive scan over a vector; returns the total.
std::uint64_t exclusive_scan_inplace(std::vector<std::uint64_t>& v);

// Stable two-way partition driven by a flag vector, implemented with two
// scans exactly as the paper describes for array_split ("executing two scans
// to determine the final locations"). Elements with flags[i]==false come
// first, preserving order within each class. Returns the number of false
// entries (the split point).
template <typename T>
std::size_t scan_partition(std::span<const T> in, std::span<const bool> flags,
                           std::span<T> out) {
  const std::size_t n = in.size();
  std::size_t lo = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (!flags[i]) ++lo;
  std::size_t next_lo = 0, next_hi = lo;
  for (std::size_t i = 0; i < n; ++i) {
    if (!flags[i])
      out[next_lo++] = in[i];
    else
      out[next_hi++] = in[i];
  }
  return lo;
}

}  // namespace pwf
