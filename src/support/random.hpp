// Deterministic, fast PRNG for workload generation and treap priorities.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, so that a single
// 64-bit seed yields a well-mixed full state. All experiment code takes an
// explicit seed; nothing in the repo draws from global entropy, keeping every
// table and test reproducible.
#pragma once

#include <cstdint>
#include <limits>

#include "support/check.hpp"

namespace pwf {

// splitmix64: used only to expand seeds; also a fine standalone mixer.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  // Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) {
    PWF_DCHECK(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Integer in the closed range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    PWF_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool coin() { return (next() & 1) != 0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace pwf
