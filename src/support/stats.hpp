// Summary statistics and model fitting for the experiment tables.
//
// The paper's bounds are asymptotic; EXPERIMENTS.md judges "shape" by fitting
// measured depth/work against candidate models (lg n, lg n·lg m, lg n lglg n,
// m·lg(n/m), ...) and comparing normalized residuals. These helpers provide
// the mean/stddev aggregation over seeds and the least-squares machinery.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace pwf {

struct Summary {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  std::size_t count = 0;
};

Summary summarize(std::span<const double> xs);

// Fit y ≈ a*x + b by ordinary least squares; r2 is the coefficient of
// determination (1 = perfect linear relationship).
struct LinearFit {
  double a = 0;
  double b = 0;
  double r2 = 0;
};

LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

// Fit y ≈ a*f(x) through the origin (the natural form for "depth = c·lg n"
// claims); returns the constant a and the relative RMS residual, i.e.
// rms( (y - a f)/y ). Smaller residual = better model.
struct ScaleFit {
  double a = 0;
  double rel_rms = 0;
};

ScaleFit fit_scale(std::span<const double> f, std::span<const double> y);

// Convenience: base-2 logarithm that treats values <= 1 as 1 (so lg on tiny
// sizes never produces zero/negative model values).
double lg(double x);

// Given candidate model columns (name, values per row), pick the model with
// the smallest relative RMS residual against y. Used by the depth benches to
// report which asymptotic curve the data follows.
struct ModelChoice {
  std::string name;
  ScaleFit fit;
};

ModelChoice best_model(
    std::span<const double> y,
    const std::vector<std::pair<std::string, std::vector<double>>>& models);

}  // namespace pwf
