// Run a callable on a thread with a large stack.
//
// The cost-model engine evaluates futures eagerly, so algorithms with long
// fork chains (Halstead's quicksort forks once per list element) recurse as
// deeply as their DAG is long. Rather than contorting the algorithm code into
// iteration, benches and tests run the computation body on a dedicated
// pthread with an explicit multi-hundred-MB stack.
#pragma once

#include <pthread.h>

#include <cstddef>
#include <exception>
#include <functional>
#include <utility>

#include "support/check.hpp"

namespace pwf {

namespace detail {
struct BigStackCall {
  std::function<void()>* fn;
  std::exception_ptr error;
};

inline void* bigstack_trampoline(void* arg) {
  auto* call = static_cast<BigStackCall*>(arg);
  try {
    (*call->fn)();
  } catch (...) {
    call->error = std::current_exception();
  }
  return nullptr;
}
}  // namespace detail

// Blocks until `fn` returns; rethrows any exception it threw.
inline void run_with_stack(std::size_t stack_bytes,
                           std::function<void()> fn) {
  pthread_attr_t attr;
  PWF_CHECK(pthread_attr_init(&attr) == 0);
  PWF_CHECK(pthread_attr_setstacksize(&attr, stack_bytes) == 0);
  detail::BigStackCall call{&fn, nullptr};
  pthread_t tid;
  PWF_CHECK(pthread_create(&tid, &attr, detail::bigstack_trampoline, &call) ==
            0);
  pthread_attr_destroy(&attr);
  PWF_CHECK(pthread_join(tid, nullptr) == 0);
  if (call.error) std::rethrow_exception(call.error);
}

inline constexpr std::size_t kBigStackBytes = std::size_t{512} << 20;

// Convenience wrapper with the repo-wide default stack size.
inline void run_big(std::function<void()> fn) {
  run_with_stack(kBigStackBytes, std::move(fn));
}

}  // namespace pwf
