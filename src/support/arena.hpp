// Monotonic arena allocator for tree nodes.
//
// The algorithms in this repo are functional-style: operations share input
// subtrees and never mutate published nodes, so individual-node lifetimes are
// awkward for RAII pointers and a GC is out of scope. Instead every tree
// "store" owns an Arena; nodes are bump-allocated and the whole arena is
// released at once when the store dies. This mirrors the linear-code memory
// discipline of the paper's Section 4 (values have a single owner; whole
// structures are consumed/produced) without per-node bookkeeping.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace pwf {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 1 << 16)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  // Trivially-destructible types only: the arena never runs destructors.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena does not run destructors");
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  template <typename T>
  T* create_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    if (n == 0) return nullptr;
    void* p = allocate(sizeof(T) * n, alignof(T));
    return ::new (p) T[n]();
  }

  void* allocate(std::size_t bytes, std::size_t align) {
    PWF_DCHECK((align & (align - 1)) == 0);
    std::size_t offset = (cursor_ + align - 1) & ~(align - 1);
    if (offset + bytes > capacity_) {
      grow(bytes + align);
      offset = (cursor_ + align - 1) & ~(align - 1);
    }
    cursor_ = offset + bytes;
    bytes_used_ = bytes_total_base_ + cursor_;
    return chunks_.back().get() + offset;
  }

  // Drops every allocation but keeps the first chunk for reuse.
  void reset() {
    if (chunks_.size() > 1) chunks_.resize(1);
    cursor_ = 0;
    capacity_ = chunks_.empty() ? 0 : first_chunk_size_;
    bytes_total_base_ = 0;
    bytes_used_ = 0;
  }

  std::size_t bytes_used() const { return bytes_used_; }

 private:
  void grow(std::size_t min_bytes) {
    std::size_t size = chunk_bytes_;
    while (size < min_bytes) size *= 2;
    // Geometric growth keeps the number of chunks logarithmic.
    chunk_bytes_ = std::min<std::size_t>(chunk_bytes_ * 2, 1u << 24);
    bytes_total_base_ += cursor_;
    chunks_.push_back(std::make_unique<std::byte[]>(size));
    if (chunks_.size() == 1) first_chunk_size_ = size;
    cursor_ = 0;
    capacity_ = size;
  }

  std::size_t chunk_bytes_;
  std::size_t first_chunk_size_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::size_t cursor_ = 0;
  std::size_t capacity_ = 0;
  std::size_t bytes_total_base_ = 0;
  std::size_t bytes_used_ = 0;
};

}  // namespace pwf
