#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "support/check.hpp"

namespace pwf {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  PWF_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto line = [&](char fill) {
    std::fputc('+', out);
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) std::fputc(fill, out);
      std::fputc('+', out);
    }
    std::fputc('\n', out);
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    std::fputc('|', out);
    for (std::size_t c = 0; c < row.size(); ++c)
      std::fprintf(out, " %*s |", static_cast<int>(widths[c]),
                   row[c].c_str());
    std::fputc('\n', out);
  };

  line('-');
  print_row(headers_);
  line('=');
  for (const auto& row : rows_) print_row(row);
  line('-');
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

void print_banner(const char* experiment_id, const char* paper_ref,
                  const char* claim) {
  std::printf("\n=== %s — %s ===\n%s\n\n", experiment_id, paper_ref, claim);
}

}  // namespace pwf
