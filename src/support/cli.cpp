#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "support/analyze_mode.hpp"

namespace pwf {

Cli::Cli(int argc, char** argv, std::map<std::string, std::string> known)
    : values_(std::move(known)) {
  values_.emplace("analyze", "0");  // built-in, understood by every binary
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      std::exit(2);
    }
    arg.remove_prefix(2);
    std::string name, value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0)
        value = argv[++i];
      else
        value = "1";  // bare flag = boolean true
    }
    auto it = values_.find(name);
    if (it == values_.end()) {
      std::fprintf(stderr, "unknown flag --%s; known flags:", name.c_str());
      for (const auto& [k, v] : values_)
        std::fprintf(stderr, " --%s(=%s)", k.c_str(), v.c_str());
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    it->second = value;
  }
  if (get_bool("analyze")) set_analyze_mode(true);
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::strtoll(values_.at(name).c_str(), nullptr, 0);
}

double Cli::get_double(const std::string& name) const {
  return std::strtod(values_.at(name).c_str(), nullptr);
}

std::string Cli::get_str(const std::string& name) const {
  return values_.at(name);
}

bool Cli::get_bool(const std::string& name) const {
  const std::string& v = values_.at(name);
  return v == "1" || v == "true" || v == "yes";
}

}  // namespace pwf
