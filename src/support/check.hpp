// Lightweight invariant checking used across the pwf libraries.
//
// PWF_CHECK is always on (it guards data-structure invariants whose violation
// would silently corrupt results); PWF_DCHECK compiles out in release builds
// and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pwf {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "pwf: check failed: %s at %s:%d%s%s\n", expr, file,
               line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace pwf

#define PWF_CHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) ::pwf::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define PWF_CHECK_MSG(expr, msg)                               \
  do {                                                         \
    if (!(expr)) ::pwf::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define PWF_DCHECK(expr) ((void)0)
#else
#define PWF_DCHECK(expr) PWF_CHECK(expr)
#endif
