#include "support/analyze_mode.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace pwf {

namespace {

bool env_default() {
  const char* v = std::getenv("PWF_ANALYZE");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

std::atomic<bool>& flag() {
  static std::atomic<bool> f{env_default()};
  return f;
}

}  // namespace

bool analyze_mode() { return flag().load(std::memory_order_relaxed); }

void set_analyze_mode(bool on) {
  flag().store(on, std::memory_order_relaxed);
}

}  // namespace pwf
