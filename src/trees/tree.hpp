// Binary search trees with future-cell children — the data structure of the
// paper's Section 3.1 merge.
//
// The representation and the algorithm bodies live in src/pipelined/trees.hpp
// (single-source, substrate-templated); this header instantiates them on the
// cost-model substrate and keeps the original plain-function API that the
// tests, benches and docs are written against.
#pragma once

#include <cstdint>
#include <vector>

#include "costmodel/engine.hpp"
#include "pipelined/cm_exec.hpp"
#include "pipelined/trees.hpp"

namespace pwf::trees {

using Key = pipelined::trees::Key;

// Cost-model instantiation: timestamped nodes over cm::Cell futures.
using Node = pipelined::trees::Node<pipelined::CmPolicy>;

// A tree argument/result is a read pointer to a future cell holding the root
// (nullptr = empty tree).
using TreeCell = cm::Cell<Node*>;

// Owns the nodes and cells of one or more trees; construct with the engine
// (Store st(eng)). Trees freely share subtrees; the whole store is released
// at once.
using Store = pipelined::trees::Store<pipelined::CmPolicy>;

// Publishes a node into its destination cell, stamping t(v).
inline void publish(cm::Engine& eng, TreeCell* out, Node* n) {
  pipelined::trees::publish(pipelined::CmExec(eng), out, n);
}

// ---- analysis helpers (meta-level: walk the finished structure directly,
// ---- no engine actions, no linearity impact) -------------------------------

// Reads a finished cell's value without touching (analysis only).
inline Node* peek(const TreeCell* c) {
  return pipelined::trees::peek<pipelined::CmPolicy>(c);
}

// In-order keys.
void collect_inorder(const Node* root, std::vector<Key>& out);

// Height: empty tree = 0, single node = 1.
int height(const Node* root);

std::uint64_t count_nodes(const Node* root);

// Latest publication timestamp of any node in the tree.
cm::Time max_created(const Node* root);

// BST order check over the whole tree.
bool is_sorted_bst(const Node* root);

}  // namespace pwf::trees
