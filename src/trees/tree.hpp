// Binary search trees with future-cell children — the data structure of the
// paper's Section 3.1 merge.
//
// Pipelining lives *inside the data*: a node's child links are read pointers
// to write-once future cells, so a node can be published while its subtrees
// are still being computed, and building a node around an unfinished subtree
// stores the pointer without waiting (the paper's nonstrict data
// construction). Output cells are threaded down the recursion as write
// pointers — exactly the mechanism of the paper's Section 2 ("the thread t2
// is passed write pointers to each future cell").
//
// Input trees are built with all cells pre-written at time 0; algorithm
// output trees get their cells written as the computation unfolds, and each
// node records the DAG timestamp at which it was published (t(v) in the
// paper's analyses).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "costmodel/engine.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"

namespace pwf::trees {

using Key = std::int64_t;

struct Node;

// A tree argument/result is a read pointer to a future cell holding the root
// (nullptr = empty tree).
using TreeCell = cm::Cell<Node*>;

struct Node {
  Key key = 0;
  std::uint64_t size = 0;   // subtree size   (rebalance pre-pass only)
  std::uint64_t lsize = 0;  // left-subtree size (rank navigation)
  cm::Time created = 0;     // t(v): DAG time this node was published
  TreeCell* left = nullptr;
  TreeCell* right = nullptr;
};

// Owns the nodes and cells of one or more trees. Trees freely share
// subtrees; the whole store is released at once (see support/arena.hpp).
class Store {
 public:
  explicit Store(cm::Engine& eng) : eng_(eng) {}

  cm::Engine& engine() { return eng_; }

  // Fresh unwritten future cell for a tree.
  TreeCell* cell() { return arena_.create<TreeCell>(); }

  // Cell pre-written with `root`, available at time 0 (input data).
  TreeCell* input(Node* root) {
    TreeCell* c = cell();
    cm::Engine::preset(*c, root);
    return c;
  }

  // A node whose children are the given cells (either kept subtrees of an
  // input, or fresh futures a forked thread will fill in).
  Node* make(Key key, TreeCell* l, TreeCell* r) {
    Node* n = arena_.create<Node>();
    n->key = key;
    n->left = l;
    n->right = r;
    return n;
  }

  // A node with both children being fresh future cells.
  Node* make(Key key) { return make(key, cell(), cell()); }

  // A node with both children immediately available (inputs and the strict
  // baselines).
  Node* make_ready(Key key, Node* l, Node* r) {
    return make(key, input(l), input(r));
  }

  // Perfectly balanced BST over sorted, duplicate-free keys (input data;
  // costs nothing in the model).
  Node* build_balanced(std::span<const Key> sorted);

  std::size_t bytes_used() const { return arena_.bytes_used(); }

 private:
  cm::Engine& eng_;
  Arena arena_{1 << 18};
};

// Publishes a node into its destination cell, stamping t(v).
inline void publish(cm::Engine& eng, TreeCell* out, Node* n) {
  eng.write(out, n);
  if (n) n->created = out->ts;
}

// ---- analysis helpers (meta-level: walk the finished structure directly,
// ---- no engine actions, no linearity impact) -------------------------------

// Reads a finished cell's value without touching (analysis only).
inline Node* peek(const TreeCell* c) {
  PWF_CHECK_MSG(c->written, "peek of unwritten cell — computation incomplete");
  return c->value;
}

// In-order keys.
void collect_inorder(const Node* root, std::vector<Key>& out);

// Height: empty tree = 0, single node = 1.
int height(const Node* root);

std::uint64_t count_nodes(const Node* root);

// Latest publication timestamp of any node in the tree.
cm::Time max_created(const Node* root);

// BST order check over the whole tree.
bool is_sorted_bst(const Node* root);

}  // namespace pwf::trees
