// Section 3.1: merging two in-order binary search trees.
//
// Three implementations share the Store/Node representation:
//   * merge()         — the pipelined futures version (Figure 3 of the
//                       paper). Depth O(lg n + lg m), work O(m lg(n/m)) for
//                       balanced inputs (Theorem 3.1).
//   * merge_strict()  — the non-pipelined baseline the paper compares
//                       against: sequential split, then the two recursive
//                       merges fork-joined. Depth O(lg n · lg m).
//   * merge_reference() — plain std::merge over key vectors, used by tests
//                       as an independent oracle.
//
// Keys within each input must be unique and in-order; keys may be shared
// across the two inputs (both copies are kept, as in the paper's merge —
// duplicate *removal* is what distinguishes treap union in Section 3.2).
#pragma once

#include <vector>

#include "trees/tree.hpp"

namespace pwf::trees {

// ---- pipelined (futures) version -------------------------------------------

// Splits the available tree rooted at `t` by key `s` into keys < s (written
// progressively under *outL) and keys >= s (under *outR). Runs in the calling
// thread; fork it for the paper's semantics. Destination cells are write
// pointers threaded down the traversal, so each result root is published the
// moment the traversal decides it — this is what makes downstream consumers
// able to run ahead.
void split_from(Store& st, Key s, Node* t, TreeCell* outL, TreeCell* outR);

// Pipelined merge of the trees in cells `a` and `b` into `out`. Forks one
// split thread and two recursive merge threads per node, exactly mirroring
//   Node(v, ?merge(L1, L2), ?merge(R1, R2))  with  (L2, R2) = ?split(v, B).
void merge_into(Store& st, TreeCell* a, TreeCell* b, TreeCell* out);

// Top-level convenience: forks merge_into and returns the result cell.
TreeCell* merge(Store& st, TreeCell* a, TreeCell* b);

// ---- strict (non-pipelined) baseline ---------------------------------------

// Sequential split: the whole result is available when it returns.
std::pair<Node*, Node*> split_strict(Store& st, Key s, Node* t);

// Fork-join merge: split runs to completion, then the two submerges run in
// parallel (the paper's "natural implementation ... O(lg^2 n) time").
Node* merge_strict(Store& st, Node* a, Node* b);

// ---- oracle -----------------------------------------------------------------

// In-order merge of the key sequences (independent of the tree code paths).
std::vector<Key> merge_reference(const std::vector<Key>& a,
                                 const std::vector<Key>& b);

}  // namespace pwf::trees
