#include "trees/rebalance.hpp"

namespace pwf::trees {

namespace {
std::uint64_t size_of(const Node* n) { return n ? n->size : 0; }
}  // namespace

Node* measure(Store& st, TreeCell* t) {
  cm::Engine& eng = st.engine();
  Node* n = eng.touch(t);
  if (n == nullptr) return nullptr;
  auto [l, r] = eng.fork_join2([&] { return measure(st, n->left); },
                               [&] { return measure(st, n->right); });
  Node* copy = st.make_ready(n->key, l, r);
  copy->lsize = size_of(l);
  copy->size = 1 + size_of(l) + size_of(r);
  return copy;
}

void splitr_from(Store& st, std::uint64_t r, Node* t, TreeCell* outL,
                 cm::Cell<Node*>* outMid, TreeCell* outR) {
  cm::Engine& eng = st.engine();
  for (;;) {
    PWF_CHECK_MSG(t != nullptr, "rank out of range in splitr");
    eng.step();  // rank comparison
    if (r < t->lsize) {
      // Median is in the left subtree: the root and everything right of it
      // belong to the > side.
      Node* keep = st.make(t->key, st.cell(), t->right);
      keep->lsize = t->lsize - r - 1;
      keep->size = t->size - r - 1;
      publish(eng, outR, keep);
      outR = keep->left;
      t = eng.touch(t->left);
    } else if (r == t->lsize) {
      // t itself is the node of rank r; its subtrees are the two sides.
      eng.write(outMid, t);
      eng.write(outL, eng.touch(t->left));
      eng.write(outR, eng.touch(t->right));
      return;
    } else {
      Node* keep = st.make(t->key, t->left, st.cell());
      keep->lsize = t->lsize;
      keep->size = t->lsize + 1 + (r - t->lsize - 1);
      publish(eng, outL, keep);
      outL = keep->right;
      r -= t->lsize + 1;
      t = eng.touch(t->right);
    }
  }
}

void rebalance_into(Store& st, TreeCell* tree, std::uint64_t size,
                    TreeCell* out) {
  cm::Engine& eng = st.engine();
  if (size == 0) {
    Node* t = eng.touch(tree);  // consume the (empty) side
    PWF_CHECK(t == nullptr);
    eng.write(out, static_cast<Node*>(nullptr));
    return;
  }
  const std::uint64_t lcount = size / 2;  // median rank
  TreeCell* lpart = st.cell();
  TreeCell* rpart = st.cell();
  auto* midc = eng.new_cell<Node*>();
  eng.fork([&] {
    Node* t = eng.touch(tree);
    splitr_from(st, lcount, t, lpart, midc, rpart);
  });
  Node* mid = eng.touch(midc);
  Node* res = st.make(mid->key);
  eng.fork([&] { rebalance_into(st, lpart, lcount, res->left); });
  eng.fork([&] { rebalance_into(st, rpart, size - 1 - lcount, res->right); });
  publish(eng, out, res);
}

TreeCell* rebalance(Store& st, TreeCell* tree) {
  cm::Engine& eng = st.engine();
  Node* annotated = measure(st, tree);
  TreeCell* acell = st.input(annotated);
  TreeCell* out = st.cell();
  const std::uint64_t n = size_of(annotated);
  eng.fork([&] { rebalance_into(st, acell, n, out); });
  return out;
}

}  // namespace pwf::trees
