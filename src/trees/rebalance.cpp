#include "trees/rebalance.hpp"

#include "pipelined/cm_exec.hpp"
#include "pipelined/exec.hpp"

namespace pwf::trees {

namespace pl = pipelined;

Node* measure(Store& st, TreeCell* t) {
  return pl::run_inline(pl::trees::measure(pl::CmExec(st.engine()), st, t));
}

void splitr_from(Store& st, std::uint64_t r, Node* t, TreeCell* outL,
                 cm::Cell<Node*>* outMid, TreeCell* outR) {
  pl::run_inline(pl::trees::splitr_from(pl::CmExec(st.engine()), st, r, t,
                                        outL, outMid, outR));
}

void rebalance_into(Store& st, TreeCell* tree, std::uint64_t size,
                    TreeCell* out) {
  pl::run_inline(
      pl::trees::rebalance_into(pl::CmExec(st.engine()), st, tree, size, out));
}

TreeCell* rebalance(Store& st, TreeCell* tree) {
  // measure runs inline in the calling thread (the recorded DAG depends on
  // it); only the rebalance recursion is forked.
  Node* annotated = measure(st, tree);
  TreeCell* acell = st.input(annotated);
  TreeCell* out = st.cell();
  const std::uint64_t n = pl::trees::size_of(annotated);
  st.engine().fork([&] { rebalance_into(st, acell, n, out); });
  return out;
}

}  // namespace pwf::trees
