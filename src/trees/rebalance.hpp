// Section 3.1 extension: rebalancing the (possibly unbalanced) merge result.
//
// The paper sketches a three-phase pipeline: (1) a pass computing subtree
// sizes, (2) ranks, (3) a pipelined rebalance analogous to merge that splits
// by *rank* instead of by key and uses the node of median rank as each root.
// Total: O(lg n + lg m) depth and O(n + m) work, producing a tree of height
// <= ceil(lg(size+1)).
//
// We fold phases (1) and (2) together: measure() builds a fresh
// size-annotated copy (fork-join, O(n) work, O(h) depth — the copy also
// keeps the computation linear: the merge output cells are read exactly
// once, here), storing each node's left-subtree size for rank navigation.
// rebalance() then runs the pipelined rank-split recursion.
#pragma once

#include "trees/tree.hpp"

namespace pwf::trees {

// Phase 1+2: size-annotated copy of the tree in `t` (consumes its cells).
Node* measure(Store& st, TreeCell* t);

// Rank split of the available size-annotated tree rooted at `t`: nodes of
// rank < r under *outL, the node of rank r into *outMid, ranks > r under
// *outR. Published progressively (write-pointer style), like split_from.
void splitr_from(Store& st, std::uint64_t r, Node* t, TreeCell* outL,
                 cm::Cell<Node*>* outMid, TreeCell* outR);

// Pipelined rebalance of the size-annotated tree in `tree` (with `size`
// nodes) into `out`.
void rebalance_into(Store& st, TreeCell* tree, std::uint64_t size,
                    TreeCell* out);

// Convenience: measure + rebalance. Returns the result cell.
TreeCell* rebalance(Store& st, TreeCell* tree);

}  // namespace pwf::trees
