#include "trees/tree.hpp"

namespace pwf::trees {

namespace pt = pipelined::trees;

void collect_inorder(const Node* root, std::vector<Key>& out) {
  pt::collect_inorder(root, out);
}

int height(const Node* root) { return pt::height(root); }

std::uint64_t count_nodes(const Node* root) { return pt::count_nodes(root); }

cm::Time max_created(const Node* root) { return pt::max_created(root); }

bool is_sorted_bst(const Node* root) { return pt::is_sorted_bst(root); }

}  // namespace pwf::trees
