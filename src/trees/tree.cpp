#include "trees/tree.hpp"

namespace pwf::trees {

Node* Store::build_balanced(std::span<const Key> sorted) {
  if (sorted.empty()) return nullptr;
  const std::size_t mid = sorted.size() / 2;
  Node* l = build_balanced(sorted.subspan(0, mid));
  Node* r = build_balanced(sorted.subspan(mid + 1));
  return make_ready(sorted[mid], l, r);
}

void collect_inorder(const Node* root, std::vector<Key>& out) {
  if (root == nullptr) return;
  collect_inorder(peek(root->left), out);
  out.push_back(root->key);
  collect_inorder(peek(root->right), out);
}

int height(const Node* root) {
  if (root == nullptr) return 0;
  return 1 + std::max(height(peek(root->left)), height(peek(root->right)));
}

std::uint64_t count_nodes(const Node* root) {
  if (root == nullptr) return 0;
  return 1 + count_nodes(peek(root->left)) + count_nodes(peek(root->right));
}

cm::Time max_created(const Node* root) {
  if (root == nullptr) return 0;
  return std::max({root->created, max_created(peek(root->left)),
                   max_created(peek(root->right))});
}

namespace {
bool bst_in_range(const Node* n, const Key* lo, const Key* hi) {
  if (n == nullptr) return true;
  if (lo && n->key <= *lo) return false;
  if (hi && n->key >= *hi) return false;
  return bst_in_range(peek(n->left), lo, &n->key) &&
         bst_in_range(peek(n->right), &n->key, hi);
}
}  // namespace

bool is_sorted_bst(const Node* root) {
  return bst_in_range(root, nullptr, nullptr);
}

}  // namespace pwf::trees
