#include "trees/merge.hpp"

#include <algorithm>
#include <utility>

#include "pipelined/cm_exec.hpp"
#include "pipelined/exec.hpp"

namespace pwf::trees {

namespace pl = pipelined;

// The bodies live in src/pipelined/trees.hpp; on the cost-model substrate
// every awaiter is immediately ready, so run_inline drives each coroutine to
// completion synchronously with the exact engine-action sequence of the old
// plain-function code (sealed by tests/recorded_counts_test.cpp).

void split_from(Store& st, Key s, Node* t, TreeCell* outL, TreeCell* outR) {
  pl::run_inline(
      pl::trees::split_from(pl::CmExec(st.engine()), st, s, t, outL, outR));
}

void merge_into(Store& st, TreeCell* a, TreeCell* b, TreeCell* out) {
  pl::run_inline(
      pl::trees::merge_into(pl::CmExec(st.engine()), st, a, b, out));
}

TreeCell* merge(Store& st, TreeCell* a, TreeCell* b) {
  TreeCell* out = st.cell();
  st.engine().fork([&] { merge_into(st, a, b, out); });
  return out;
}

std::pair<Node*, Node*> split_strict(Store& st, Key s, Node* t) {
  return pl::run_inline(
      pl::trees::split_strict(pl::CmStrictExec(st.engine()), st, s, t));
}

Node* merge_strict(Store& st, Node* a, Node* b) {
  return pl::run_inline(
      pl::trees::merge_strict(pl::CmStrictExec(st.engine()), st, a, b));
}

std::vector<Key> merge_reference(const std::vector<Key>& a,
                                 const std::vector<Key>& b) {
  std::vector<Key> out(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin());
  return out;
}

}  // namespace pwf::trees
