#include "trees/merge.hpp"

#include <algorithm>

namespace pwf::trees {

void split_from(Store& st, Key s, Node* t, TreeCell* outL, TreeCell* outR) {
  cm::Engine& eng = st.engine();
  // Iterative destination-passing: each level publishes one node into
  // whichever side keeps the root, then descends into the other side. The
  // side roots therefore appear at a data-dependent delay — the dynamic
  // pipeline of the paper.
  for (;;) {
    if (t == nullptr) {
      eng.write(outL, static_cast<Node*>(nullptr));
      eng.write(outR, static_cast<Node*>(nullptr));
      return;
    }
    eng.step();  // the key comparison
    if (s <= t->key) {  // keys >= s (including s itself) go to the right side
      // Root and its right subtree belong to the >= side; keep descending
      // into the left subtree for the < side.
      Node* keep = st.make(t->key, st.cell(), t->right);
      publish(eng, outR, keep);
      outR = keep->left;
      t = eng.touch(t->left);
    } else {
      Node* keep = st.make(t->key, t->left, st.cell());
      publish(eng, outL, keep);
      outL = keep->right;
      t = eng.touch(t->right);
    }
  }
}

void merge_into(Store& st, TreeCell* a, TreeCell* b, TreeCell* out) {
  cm::Engine& eng = st.engine();
  Node* ta = eng.touch(a);
  Node* tb = eng.touch(b);
  if (ta == nullptr) {  // merge(Leaf, B) = B
    publish(eng, out, tb);
    return;
  }
  if (tb == nullptr) {  // merge(A, Leaf) = A
    publish(eng, out, ta);
    return;
  }
  // Node(v, ?merge(L1, L2), ?merge(R1, R2)) with (L2, R2) = ?split(v, B).
  Node* res = st.make(ta->key);
  TreeCell* l2 = st.cell();
  TreeCell* r2 = st.cell();
  const Key v = ta->key;  // linear code copies the splitter (Figure 12)
  eng.fork([&] { split_from(st, v, tb, l2, r2); });
  eng.fork([&] { merge_into(st, ta->left, l2, res->left); });
  eng.fork([&] { merge_into(st, ta->right, r2, res->right); });
  publish(eng, out, res);
}

TreeCell* merge(Store& st, TreeCell* a, TreeCell* b) {
  TreeCell* out = st.cell();
  st.engine().fork([&] { merge_into(st, a, b, out); });
  return out;
}

std::pair<Node*, Node*> split_strict(Store& st, Key s, Node* t) {
  cm::Engine& eng = st.engine();
  eng.step();
  if (t == nullptr) return {nullptr, nullptr};
  if (s <= t->key) {
    auto [l1, r1] = split_strict(st, s, peek(t->left));
    return {l1, st.make(t->key, st.input(r1), t->right)};
  }
  auto [l1, r1] = split_strict(st, s, peek(t->right));
  return {st.make(t->key, t->left, st.input(l1)), r1};
}

Node* merge_strict(Store& st, Node* a, Node* b) {
  cm::Engine& eng = st.engine();
  eng.step();
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  // The whole split completes before either recursive merge starts; the two
  // merges then run in parallel (fork-join).
  auto [l2, r2] = split_strict(st, a->key, b);
  auto [l, r] = eng.fork_join2(
      [&, l2 = l2] { return merge_strict(st, peek(a->left), l2); },
      [&, r2 = r2] { return merge_strict(st, peek(a->right), r2); });
  return st.make_ready(a->key, l, r);
}

std::vector<Key> merge_reference(const std::vector<Key>& a,
                                 const std::vector<Key>& b) {
  std::vector<Key> out(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin());
  return out;
}

}  // namespace pwf::trees
