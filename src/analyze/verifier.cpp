#include "analyze/verifier.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <unordered_map>

#include "support/check.hpp"

namespace pwf::analyze {

namespace {

using cm::ActionId;
using cm::CellId;
using cm::EdgeKind;
using cm::Trace;

// CSR adjacency (successors and predecessors) over the validated edges.
struct Graph {
  std::uint32_t n = 0;
  std::vector<std::uint32_t> succ_off, succ;
  std::vector<std::uint32_t> pred_off, pred;
  std::vector<std::uint32_t> level;  // earliest-start time, 1-based

  std::span<const std::uint32_t> succs(ActionId a) const {
    return {succ.data() + succ_off[a], succ_off[a + 1] - succ_off[a]};
  }
  std::span<const std::uint32_t> preds(ActionId a) const {
    return {pred.data() + pred_off[a], pred_off[a + 1] - pred_off[a]};
  }
};

Graph build_graph(const Trace& trace, std::vector<Trace::Edge>& valid) {
  Graph g;
  g.n = static_cast<std::uint32_t>(trace.num_actions());
  g.succ_off.assign(g.n + 1, 0);
  g.pred_off.assign(g.n + 1, 0);
  for (const auto& e : valid) {
    ++g.succ_off[e.src + 1];
    ++g.pred_off[e.dst + 1];
  }
  for (std::uint32_t i = 1; i <= g.n; ++i) {
    g.succ_off[i] += g.succ_off[i - 1];
    g.pred_off[i] += g.pred_off[i - 1];
  }
  g.succ.resize(valid.size());
  g.pred.resize(valid.size());
  std::vector<std::uint32_t> sfill(g.succ_off.begin(), g.succ_off.end() - 1);
  std::vector<std::uint32_t> pfill(g.pred_off.begin(), g.pred_off.end() - 1);
  for (const auto& e : valid) {
    g.succ[sfill[e.src]++] = e.dst;
    g.pred[pfill[e.dst]++] = e.src;
  }
  // Earliest-start levels: ids are a topological order, so one ascending
  // pass suffices. This reproduces the engine's clock (every action runs one
  // step after its latest dependence), which is the EREW timestep.
  g.level.assign(g.n, 1);
  for (std::uint32_t a = 0; a < g.n; ++a)
    for (std::uint32_t p : g.preds(a))
      g.level[a] = std::max(g.level[a], g.level[p] + 1);
  return g;
}

// Reachability w ->* r. Ids are topological, so the search never needs to
// visit an id > r; `stamp`/`epoch` make the visited set reusable across
// queries without clearing.
bool reachable(const Graph& g, ActionId w, ActionId r,
               std::vector<std::uint32_t>& stamp, std::uint32_t epoch) {
  if (w >= r) return false;
  std::deque<ActionId> queue{w};
  stamp[w] = epoch;
  while (!queue.empty()) {
    const ActionId a = queue.front();
    queue.pop_front();
    for (std::uint32_t s : g.succs(a)) {
      if (s > r || stamp[s] == epoch) continue;
      if (s == r) return true;
      stamp[s] = epoch;
      queue.push_back(s);
    }
  }
  return false;
}

// Shortest root->a path (BFS over predecessor edges from `a`, stopping at
// the first source action reached) — the witness of how the computation got
// to the offending action.
std::vector<ActionId> witness_path(const Graph& g, ActionId a) {
  if (a >= g.n) return {};
  std::vector<ActionId> parent(g.n, cm::kNoAction);
  std::deque<ActionId> queue{a};
  parent[a] = a;
  ActionId root = cm::kNoAction;
  while (!queue.empty() && root == cm::kNoAction) {
    const ActionId cur = queue.front();
    queue.pop_front();
    if (g.preds(cur).empty()) {
      root = cur;
      break;
    }
    for (std::uint32_t p : g.preds(cur)) {
      if (parent[p] != cm::kNoAction) continue;
      parent[p] = cur;
      queue.push_back(p);
    }
  }
  std::vector<ActionId> path;
  for (ActionId cur = root; cur != cm::kNoAction;) {
    path.push_back(cur);
    if (cur == a) break;
    cur = parent[cur];
  }
  return path;
}

struct CellAccesses {
  std::vector<ActionId> writes;
  std::vector<ActionId> reads;
  bool preset = false;
};

std::string action_str(const Trace& trace, ActionId a) {
  std::string s = "action " + std::to_string(a);
  if (a < trace.threads().size())
    s += " (thread " + std::to_string(trace.threads()[a]) + ")";
  // Coarsened-operation tags from the recording substrate: a violation
  // inside a leaf rebuild or a serial cutoff is reported as such.
  for (const Trace::Tag& t : trace.tags()) {
    if (t.action != a) continue;
    s += " [";
    s += cm::action_kind_name(t.kind);
    if (t.kind == cm::ActionKind::kLeafOp)
      s += " over " + std::to_string(t.payload) + " keys";
    s += "]";
    break;
  }
  return s;
}

}  // namespace

const char* violation_kind_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::kMalformedEdge: return "malformed-edge";
    case ViolationKind::kDoubleWrite: return "double-write";
    case ViolationKind::kReadNeverWritten: return "read-never-written";
    case ViolationKind::kReadRacesWrite: return "read-races-write";
    case ViolationKind::kErewConflict: return "erew-conflict";
    case ViolationKind::kNonLinearRead: return "nonlinear-read";
    case ViolationKind::kEpochCrossingData: return "epoch-crossing-data";
  }
  return "?";
}

std::string Report::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%llu actions, %llu edges, %llu cells, "
                "%llu reads, %llu writes, max reads/cell %u, "
                "nonlinear cells %llu",
                static_cast<unsigned long long>(num_actions),
                static_cast<unsigned long long>(num_edges),
                static_cast<unsigned long long>(num_cells),
                static_cast<unsigned long long>(num_reads),
                static_cast<unsigned long long>(num_writes), max_cell_reads,
                static_cast<unsigned long long>(nonlinear_cells));
  std::string out = buf;
  if (num_epochs > 1 || leaf_ops > 0 || serial_cutoffs > 0 || aug_ops > 0) {
    std::snprintf(buf, sizeof buf,
                  "; %u epochs, %llu leaf-ops over %llu keys, "
                  "%llu serial cutoffs, %llu aug-ops",
                  num_epochs, static_cast<unsigned long long>(leaf_ops),
                  static_cast<unsigned long long>(leaf_keys),
                  static_cast<unsigned long long>(serial_cutoffs),
                  static_cast<unsigned long long>(aug_ops));
    out += buf;
  }
  for (const auto& v : violations) {
    out += "\n  [";
    out += violation_kind_name(v.kind);
    out += "] ";
    if (v.cell != cm::kNoCell) out += "cell " + std::to_string(v.cell) + ": ";
    out += v.detail;
    if (!v.path.empty()) {
      out += "\n    witness path:";
      for (ActionId a : v.path) out += " -> " + std::to_string(a);
    }
  }
  if (truncated) out += "\n  ... further violations truncated";
  return out;
}

Report verify(const cm::Trace& trace, const Options& opts) {
  Report rep;
  rep.num_actions = trace.num_actions();
  rep.num_edges = trace.edges().size();
  rep.num_reads = trace.reads().size();
  rep.num_writes = trace.writes().size();
  rep.num_epochs = trace.num_epochs();
  for (const Trace::Tag& t : trace.tags()) {
    if (t.kind == cm::ActionKind::kLeafOp) {
      ++rep.leaf_ops;
      rep.leaf_keys += t.payload;
    } else if (t.kind == cm::ActionKind::kSerialCutoff) {
      ++rep.serial_cutoffs;
    } else if (t.kind == cm::ActionKind::kAugOp) {
      ++rep.aug_ops;
    }
  }

  auto add = [&](Violation v) {
    if (rep.violations.size() >= opts.max_violations) {
      rep.truncated = true;
      return false;
    }
    rep.violations.push_back(std::move(v));
    return true;
  };

  const std::uint32_t n = static_cast<std::uint32_t>(trace.num_actions());

  // Edge validation: ids in range and in topological (execution) order.
  std::vector<Trace::Edge> valid;
  valid.reserve(trace.edges().size());
  for (const auto& e : trace.edges()) {
    if (e.src >= n || e.dst >= n || e.src >= e.dst) {
      add({ViolationKind::kMalformedEdge, cm::kNoCell, e.src, e.dst, {},
           std::string(edge_kind_name(e.kind)) + " edge " +
               std::to_string(e.src) + " -> " + std::to_string(e.dst) +
               " violates topological action order"});
      continue;
    }
    valid.push_back(e);
  }

  Graph g = build_graph(trace, valid);

  // Epoch closure: every data edge must stay within one storage epoch. An
  // epoch boundary is a compaction point — the previous store's arena is
  // freed — so a write in one epoch feeding a read in a later one means the
  // reader dereferences freed memory.
  if (trace.num_epochs() > 1) {
    for (const auto& e : valid) {
      if (e.kind != EdgeKind::kData) continue;
      const std::uint32_t se = trace.epoch_of(e.src);
      const std::uint32_t de = trace.epoch_of(e.dst);
      if (se != de)
        add({ViolationKind::kEpochCrossingData, cm::kNoCell, e.src, e.dst,
             witness_path(g, e.dst),
             "data edge " + action_str(trace, e.src) + " (epoch " +
                 std::to_string(se) + ") -> " + action_str(trace, e.dst) +
                 " (epoch " + std::to_string(de) +
                 ") crosses a compaction: the read dereferences a freed "
                 "store"});
    }
  }

  // Group accesses per cell.
  std::unordered_map<CellId, CellAccesses> cells;
  for (const auto& [a, c] : trace.writes())
    if (a < n) cells[c].writes.push_back(a);
  for (const auto& [a, c] : trace.reads())
    if (a < n) cells[c].reads.push_back(a);
  for (CellId c : trace.presets()) cells[c].preset = true;
  rep.num_cells = cells.size();

  // Deterministic report order.
  std::vector<CellId> order;
  order.reserve(cells.size());
  for (const auto& [c, _] : cells) order.push_back(c);
  std::sort(order.begin(), order.end());

  std::vector<std::uint32_t> stamp(n, 0);
  std::uint32_t epoch = 0;

  for (CellId c : order) {
    CellAccesses& acc = cells[c];
    std::sort(acc.writes.begin(), acc.writes.end());
    std::sort(acc.reads.begin(), acc.reads.end());

    // Write-once.
    for (std::size_t i = 1; i < acc.writes.size(); ++i)
      add({ViolationKind::kDoubleWrite, c, acc.writes[0], acc.writes[i],
           witness_path(g, acc.writes[i]),
           "written by " + action_str(trace, acc.writes[0]) + " and again by " +
               action_str(trace, acc.writes[i])});
    if (acc.preset && !acc.writes.empty())
      add({ViolationKind::kDoubleWrite, c, acc.writes[0], cm::kNoAction,
           witness_path(g, acc.writes[0]),
           "preset input cell written by " + action_str(trace, acc.writes[0])});

    // Determinacy-race check: every read must be ordered after the write by
    // a DAG path (any write — double writes are reported above).
    for (ActionId r : acc.reads) {
      if (acc.writes.empty()) {
        if (acc.preset) continue;  // input data, available at time 0
        add({ViolationKind::kReadNeverWritten, c, cm::kNoAction, r,
             witness_path(g, r),
             "read by " + action_str(trace, r) +
                 " but never written: the reading thread would park forever"});
        continue;
      }
      bool ordered = false;
      for (ActionId w : acc.writes) {
        // Fast path: the write is a direct predecessor (the data edge the
        // engine records). Fall back to bounded reachability.
        for (std::uint32_t p : g.preds(r)) ordered |= (p == w);
        if (!ordered) ordered = reachable(g, w, r, stamp, ++epoch);
        if (ordered) break;
      }
      if (!ordered)
        add({ViolationKind::kReadRacesWrite, c, acc.writes[0], r,
             witness_path(g, r),
             "read by " + action_str(trace, r) +
                 " is not ordered after the write by " +
                 action_str(trace, acc.writes[0]) +
                 " (no DAG path; determinacy race)"});
    }

    // Linearity (Section 4): at most one read per cell *per storage epoch*.
    // Reads are sorted, and epochs partition the id space into ascending
    // ranges, so one pass groups them. Without epoch marks every read is in
    // epoch 0 and this is the plain per-cell check.
    bool cell_nonlinear = false;
    for (std::size_t i = 0; i < acc.reads.size();) {
      const std::uint32_t ep = trace.epoch_of(acc.reads[i]);
      std::size_t j = i + 1;
      while (j < acc.reads.size() && trace.epoch_of(acc.reads[j]) == ep) ++j;
      const auto nreads = static_cast<std::uint32_t>(j - i);
      rep.max_cell_reads = std::max(rep.max_cell_reads, nreads);
      if (nreads > 1) {
        cell_nonlinear = true;
        if (opts.check_linearity)
          for (std::size_t k = i + 1; k < j; ++k)
            add({ViolationKind::kNonLinearRead, c, acc.reads[i], acc.reads[k],
                 witness_path(g, acc.reads[k]),
                 "read by " + action_str(trace, acc.reads[i]) +
                     " and again by " + action_str(trace, acc.reads[k]) +
                     " (Section 4 requires linear code)"});
      }
      i = j;
    }
    if (cell_nonlinear) ++rep.nonlinear_cells;

    // EREW: no two same-cell accesses on one timestep. Levels are the
    // earliest-start schedule, which is how the engine's clocks place
    // actions; two accesses on one level are concurrent in that schedule.
    if (opts.check_erew) {
      std::vector<std::pair<std::uint32_t, ActionId>> by_level;
      for (ActionId w : acc.writes)
        if (w < n) by_level.emplace_back(g.level[w], w);
      for (ActionId r : acc.reads)
        if (r < n) by_level.emplace_back(g.level[r], r);
      std::sort(by_level.begin(), by_level.end());
      for (std::size_t i = 1; i < by_level.size(); ++i)
        if (by_level[i].first == by_level[i - 1].first)
          add({ViolationKind::kErewConflict, c, by_level[i - 1].second,
               by_level[i].second, witness_path(g, by_level[i].second),
               action_str(trace, by_level[i - 1].second) + " and " +
                   action_str(trace, by_level[i].second) +
                   " access the cell on the same timestep " +
                   std::to_string(by_level[i].first)});
    }
  }

  return rep;
}

void verify_and_report(const cm::Trace& trace, const char* what, bool crew) {
  // Linearity is a Section-4 property, not a well-formedness requirement of
  // the Section-2 model, so the always-on hook reports it as a statistic
  // only; tests that demand linear code call verify() directly. CREW traces
  // (augmented bodies, Engine::set_crew) additionally skip the EREW check —
  // the hard checks (write-once, races, dangling reads, epochs) remain.
  Options opts;
  opts.check_linearity = false;
  opts.check_erew = !crew;
  const Report rep = verify(trace, opts);
  std::fprintf(stderr, "%s [%s]: %s\n", rep.ok() ? "pwf-analyze ok" : "pwf-analyze FAILED",
               what, rep.to_string().c_str());
  PWF_CHECK_MSG(rep.ok(), "pwf-analyze: trace verification failed");
}

}  // namespace pwf::analyze
