// pwf-analyze: offline well-formedness verifier for computation-DAG traces.
//
// The paper's work/depth bounds (Section 2) and space bounds (Section 4)
// assume *well-formed* future programs. This pass checks a recorded
// cm::Trace for exactly those disciplines:
//
//   * write-once      — every future cell is written by at most one action;
//   * race-freedom    — every read of a cell is ordered after the cell's
//                       write by a DAG path (determinacy race otherwise).
//                       Action ids are a topological order, so reachability
//                       searches are bounded to the [writer, reader] window;
//   * no dangling read — a read of a cell with no write and no preset
//                       record is a touch of a never-written cell: in the
//                       real runtime that thread parks forever;
//   * EREW            — no two accesses to one cell on the same DAG
//                       timestep (level = earliest-start time, the engine's
//                       clock semantics), the paper's exclusive-read
//                       exclusive-write machine model;
//   * linearity       — every cell read at most once (Section 4's
//                       restriction; optional, reported as stats either
//                       way). Checked *per storage epoch*: a trace with
//                       epoch marks (compaction points recorded by the
//                       recording substrate, see rec_exec.hpp) is linear if
//                       no cell is read twice within one epoch;
//   * epoch closure   — no data edge crosses an epoch boundary: a
//                       compaction frees the previous store's arena, so a
//                       cross-epoch read dereferences freed memory.
//
// Traces from the recording substrate additionally tag coarsened actions
// (leaf-op with the covered key count, serial-cutoff); the verifier carries
// the tags into its statistics and diagnostics so a violation inside a leaf
// rebuild is reported as such.
//
// Violations carry the action ids (with their thread ids), the cell id, and
// a shortest root-to-offender witness path through the DAG — the "stack
// trace" of how the computation reached the offending action.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "costmodel/trace.hpp"

namespace pwf::analyze {

enum class ViolationKind : std::uint8_t {
  kMalformedEdge,     // edge not in topological (id) order, or out of range
  kDoubleWrite,       // two write actions on one cell
  kReadNeverWritten,  // read of a cell with no write and no preset
  kReadRacesWrite,    // read not ordered after the cell's write
  kErewConflict,      // two same-cell accesses on the same timestep
  kNonLinearRead,     // second (or later) read of a cell in one epoch
  kEpochCrossingData, // data edge across a storage-epoch boundary
};

const char* violation_kind_name(ViolationKind k);

struct Violation {
  ViolationKind kind;
  cm::CellId cell = cm::kNoCell;
  // The two actions involved: `first` is the earlier/establishing access
  // (e.g. the write), `second` the offending one. kNoAction when absent.
  cm::ActionId first = cm::kNoAction;
  cm::ActionId second = cm::kNoAction;
  // Shortest path from a DAG root to the offending action (witness of how
  // the computation reached it). Empty if not applicable.
  std::vector<cm::ActionId> path;
  std::string detail;
};

struct Options {
  bool check_linearity = true;  // flag >1 read per cell as a violation
  bool check_erew = true;
  // Stop collecting after this many violations (diagnostics stay readable
  // on badly broken traces; the report notes the truncation).
  std::size_t max_violations = 64;
};

struct Report {
  std::vector<Violation> violations;
  bool truncated = false;

  // Trace statistics (filled even when the trace is clean).
  std::uint64_t num_actions = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t num_cells = 0;
  std::uint64_t num_reads = 0;
  std::uint64_t num_writes = 0;
  std::uint32_t max_cell_reads = 0;  // linearity: <= 1 for linear programs
  std::uint64_t nonlinear_cells = 0;

  // Recording-substrate extras (zero on plain cost-model traces).
  std::uint32_t num_epochs = 1;        // storage epochs (1 = no compaction)
  std::uint64_t leaf_ops = 0;          // actions tagged kLeafOp
  std::uint64_t leaf_keys = 0;         // total keys covered by leaf ops
  std::uint64_t serial_cutoffs = 0;    // actions tagged kSerialCutoff
  std::uint64_t aug_ops = 0;           // actions tagged kAugOp

  bool ok() const { return violations.empty(); }
  bool linear() const { return max_cell_reads <= 1; }
  std::string to_string() const;
};

// Verify a recorded trace against the disciplines above.
Report verify(const cm::Trace& trace, const Options& opts = {});

// Engine-destructor hook (analyze mode): verify with linearity demoted to a
// statistic (the Section-2 model legitimately allows multi-reads), print the
// report to stderr if anything is wrong, and abort on hard violations.
// `crew` additionally relaxes the EREW check: augmented bodies re-read node
// cells concurrently from their aggregate fibers by design, and every such
// read still carries its data edge, so race-freedom remains fully checked.
void verify_and_report(const cm::Trace& trace, const char* what,
                       bool crew = false);

}  // namespace pwf::analyze
