// pwf-analyze: event recorder for the coroutine futures runtime.
//
// The offline verifier (verifier.hpp) checks traces of the *cost model*;
// this recorder mirrors those checks inside the real runtime. When the
// build is configured with -DPWF_ANALYZE=ON, FutCell and the Scheduler log
// every preset/write/touch/park with the acting worker and fiber (the
// resumed coroutine frame), and the Scheduler destructor audits the log:
//
//   * double writes / preset-after-write  (also caught eagerly by the
//     PWF_CHECKs in FutCell — the audit is the backstop and the report);
//   * cells parked on but never written   — waiters that would sleep
//     forever; without the audit this is a silent hang at shutdown;
//   * non-linear reads                    — cells touched more than once,
//     reported (not fatal: the runtime's waiter list deliberately supports
//     the general multi-reader model of Section 2).
//
// The recorder is compiled unconditionally (so tools can link against it),
// but the runtime only calls into it under PWF_ANALYZE — with the option
// off there is zero instrumentation on the hot paths.
#pragma once

#include <cstdint>
#include <vector>

namespace pwf::rt::analyze {

enum class Ev : std::uint8_t {
  kCreate,  // FutCell constructed (cells are arena/stack allocated, so an
            // address can host several cell incarnations; a create retires
            // the previous incarnation at that address)
  kPreset,
  kWrite,
  kTouch,  // completed read (await_resume or an immediately-ready await)
  kPark,   // reader suspended on an unwritten cell
};

const char* event_name(Ev e);

struct Event {
  std::uint64_t seq;
  const void* cell;
  const void* fiber;  // coroutine frame being resumed; null on external threads
  int worker;         // worker index; -1 on external threads
  Ev kind;
};

// Per-cell tallies derived from the log.
struct CellCounts {
  const void* cell = nullptr;
  std::uint32_t presets = 0;
  std::uint32_t writes = 0;
  std::uint32_t touches = 0;
  std::uint32_t parks = 0;
};

struct RtReport {
  std::uint64_t events = 0;
  std::uint64_t cells = 0;
  std::uint64_t unflushed = 0;             // service batches chained, not flushed
  std::vector<CellCounts> double_written;  // presets + writes > 1
  std::vector<CellCounts> never_written;   // parked on, never preset/written
  std::vector<CellCounts> pending;         // like never_written, but an
                                           // unflushed service pipeline was
                                           // live at audit time — legitimately
                                           // still materializing, not a hang
  std::vector<CellCounts> nonlinear;       // touched more than once

  // Deadlocks and double writes are hard violations; nonlinear reads and
  // pending-pipeline cells are property reports.
  bool ok() const { return double_written.empty() && never_written.empty(); }
};

// ---- recording (called from FutCell / Scheduler under PWF_ANALYZE) --------

void record(Ev kind, const void* cell);
// Worker-thread identity, set by Scheduler::worker_loop.
void set_worker(int index);
// Fiber identity: the coroutine frame the worker is about to resume.
void set_current_fiber(const void* frame);

// ---- service-pipeline accounting ------------------------------------------
//
// ParallelSet/ParallelMap batches chain onto a still-materializing root and
// return immediately; their cells stay unwritten until a quiescence point
// (flush/compact/whole-tree read) forces them. If the Scheduler is destroyed
// first, the shutdown audit would misread those cells as parked-forever
// deadlocks. The services report chained/flushed batch counts so the audit
// can demote such findings to "pending on an unflushed pipeline" instead.
// The counter is owned by live services, so reset() does not clear it.

void note_pipeline_chained();
void note_pipeline_flushed(std::uint64_t batches);
std::uint64_t pipeline_unflushed();

// ---- auditing -------------------------------------------------------------

// Snapshot audit of everything recorded since the last reset().
RtReport audit();
// Recent events (up to `max`, newest last) — diagnostic context for reports.
std::vector<Event> recent_events(std::size_t max);
void reset();

// Scheduler-shutdown audit: prints the report to stderr if it is not clean
// and aborts on hard violations (a parked-forever waiter is a deadlock the
// process would otherwise hang on silently). Resets the recorder so
// back-to-back Scheduler lifetimes audit independently.
void audit_at_shutdown();

}  // namespace pwf::rt::analyze
