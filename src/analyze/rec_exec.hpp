// RecExec — the recording substrate (the fourth execution substrate, see
// docs/substrates.md).
//
// Like CmExec its awaiters are immediately ready, so the shared coroutine
// bodies run to completion inside a single resume() and every trace is
// recorded from the *real* algorithm code paths — not from a model of them.
// Unlike CmExec, the substrate parameters that shape the runtime's execution
// are live here instead of if-constexpr-dead:
//
//   * RecPolicy::kMaxLeafCapacity > 0 — chunked-leaf storage is enabled, so
//     a Store may be configured with any leaf capacity up to the runtime's
//     bound and the bodies' leaf fast paths actually execute;
//   * serial_threshold() is a runtime value — subtrees below it take the
//     serial-cutoff branches exactly as RtExec would.
//
// The fork/touch/write hooks emit a cm::Trace as usual, and the granularity
// hooks tag their actions (ActionKind::kLeafOp with the covered key count,
// ActionKind::kSerialCutoff), so the coarsened operations appear in the DAG
// as explicit actions. The result feeds two consumers unchanged:
//
//   * pwf::analyze::verify() — well-formedness of the runtime's real code
//     paths (write-once, race-freedom, EREW, per-epoch linearity);
//   * sim::Dag — the Section-4 greedy-schedule simulator, now replaying the
//     coarsened DAG the runtime executes rather than the node-per-key model.
//
// The pwf-record driver (tools/pwf_record.cpp) runs every algorithm family
// across a leaf-capacity x serial-threshold grid and verifies each trace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "costmodel/engine.hpp"
#include "costmodel/trace.hpp"
#include "pipelined/cm_exec.hpp"
#include "pipelined/exec.hpp"
#include "pipelined/list.hpp"
#include "pipelined/mergesort.hpp"
#include "pipelined/treap.hpp"
#include "pipelined/trees.hpp"
#include "pipelined/ttree.hpp"
#include "support/check.hpp"

namespace pwf::analyze {

// Same cells, clocks and context as the cost model — the trace format is
// shared — but with chunked-leaf storage enabled at the runtime's bound
// (pipelined::RtPolicy::kMaxLeafCapacity), so a Store<RecPolicy> accepts the
// same leaf capacities the runtime services use.
struct RecPolicy : pipelined::CmPolicy {
  static constexpr std::size_t kMaxLeafCapacity = 1024;
};

class RecExec : public pipelined::CmExecBase {
 public:
  using Policy = RecPolicy;

  // `threshold` is the serial cutoff the shared bodies consult (0 = never
  // coarsen, RtExec::kDefaultSerialThreshold = what the runtime does). The
  // engine must be tracing — a recording substrate with no trace records
  // nothing, which is always a configuration bug.
  explicit RecExec(cm::Engine& eng, std::size_t threshold = 0)
      : CmExecBase(eng), threshold_(threshold) {
    PWF_CHECK_MSG(eng.trace() != nullptr,
                  "RecExec requires a tracing engine: cm::Engine(true)");
  }

  // ---- granularity control (live, unlike the cost model's) -----------------

  std::size_t serial_threshold() const { return threshold_; }

  void on_serial_cutoff() const { engine().serial_cutoff(); }

  // A chunked-leaf rebuild/merge/split covering `keys` keys: one explicit,
  // tagged DAG action (the bodies then run the leaf operation itself as
  // ordinary node construction, which costs no further actions).
  void on_leaf_op(std::size_t keys) const {
    engine().leaf_op(static_cast<std::uint64_t>(keys));
  }

  // An augmented-value recomputation (one forked aug_into fiber finishing):
  // one explicit, tagged DAG action, so the maintenance cost of PAM-style
  // augmentation is visible in the recorded trace. Aug fibers re-read node
  // cells the structural fibers also read (CREW, not EREW) — recording runs
  // over augmented entries must call cm::Engine::set_crew(true).
  void on_aug_op() const { engine().aug_op(); }

  // Opens a new storage epoch in the trace (call at a compaction point,
  // before rebuilding into a fresh store). The verifier checks that no data
  // edge crosses an epoch boundary: a cross-epoch read would dereference an
  // arena the compaction freed.
  void new_epoch() const { engine().new_epoch(); }

 private:
  std::size_t threshold_;
};

// ---- family shims -----------------------------------------------------------
//
// Mirrors of the cost-model shims (src/treap/setops.cpp, src/trees/*.cpp,
// src/algos/*.cpp, src/ttree/insert.cpp) on the recording substrate: every
// awaiter is ready, so run_inline drives each coroutine to completion on the
// calling thread while the engine records the DAG.
namespace rec {

using Key = pipelined::treap::Key;
using Value = pipelined::list::Value;

using TreapStore = pipelined::treap::Store<RecPolicy>;
using TreapNode = pipelined::treap::Node<RecPolicy>;
using TreapCell = pipelined::treap::Cell<RecPolicy>;

using TreeStore = pipelined::trees::Store<RecPolicy>;
using TreeNode = pipelined::trees::Node<RecPolicy>;
using TreeCell = pipelined::trees::Cell<RecPolicy>;

using TtreeStore = pipelined::ttree::Store<RecPolicy>;
using TtreeNode = pipelined::ttree::TNode<RecPolicy>;
using TtreeCell = pipelined::ttree::Cell<RecPolicy>;

using ListStore = pipelined::list::Store<RecPolicy>;
using ListCell = pipelined::list::Cell<RecPolicy>;

// ---- treap set operations (pipelined + strict) ------------------------------

inline TreapCell* union_treaps(RecExec ex, TreapStore& st, TreapCell* a,
                               TreapCell* b) {
  TreapCell* out = st.cell();
  ex.engine().fork([&] {
    pipelined::run_inline(pipelined::treap::union_into(ex, st, a, b, out));
  });
  return out;
}

inline TreapCell* diff_treaps(RecExec ex, TreapStore& st, TreapCell* a,
                              TreapCell* b) {
  TreapCell* out = st.cell();
  ex.engine().fork([&] {
    pipelined::run_inline(pipelined::treap::diff_into(ex, st, a, b, out));
  });
  return out;
}

inline TreapCell* intersect_treaps(RecExec ex, TreapStore& st, TreapCell* a,
                                   TreapCell* b) {
  TreapCell* out = st.cell();
  ex.engine().fork([&] {
    pipelined::run_inline(pipelined::treap::intersect_into(ex, st, a, b, out));
  });
  return out;
}

inline TreapNode* union_strict(RecExec ex, TreapStore& st, TreapNode* a,
                               TreapNode* b) {
  return pipelined::run_inline(pipelined::treap::union_strict(ex, st, a, b));
}

inline TreapNode* diff_strict(RecExec ex, TreapStore& st, TreapNode* a,
                              TreapNode* b) {
  return pipelined::run_inline(pipelined::treap::diff_strict(ex, st, a, b));
}

// ---- adaptive-shard rebalance primitives ------------------------------------
//
// The contention-adaptive sharded facades rebalance by splitting a hot
// shard's treap at a pivot and joining adjacent cold shards' treaps
// (docs/service.md). These shims record the same bodies the runtime
// drivers fork (treap::split_at / treap::join_entry), so the
// shard-rebalance pwf-record family verifies the rebalance DAG itself.

inline void split_treap(RecExec ex, TreapStore& st, Key pivot, TreapCell* in,
                        TreapCell* outL, TreapCell* outR) {
  ex.engine().fork([&] {
    pipelined::run_inline(
        pipelined::treap::split_at(ex, st, pivot, in, outL, outR));
  });
}

inline TreapCell* join_treaps(RecExec ex, TreapStore& st, TreapCell* a,
                              TreapCell* b) {
  TreapCell* out = st.cell();
  ex.engine().fork([&] {
    pipelined::run_inline(pipelined::treap::join_entry(ex, st, a, b, out));
  });
  return out;
}

inline std::vector<Key> treap_inorder(const TreapCell* c) {
  std::vector<Key> out;
  pipelined::treap::collect_inorder<RecPolicy>(
      pipelined::treap::peek<RecPolicy>(c), out);
  return out;
}

// ---- augmented treap maps ---------------------------------------------------
//
// The aug-map family records the same union body instantiated with a
// sum-augmented int64 map entry, so the forked aug_into fibers (tagged
// kAugOp) appear in the DAG and the verifier checks the real augmented code
// paths. Aug fibers re-read node cells structural fibers read, so the
// engine must run with set_crew(true) (races are still checked).

using AugMapEntry =
    pipelined::treap::AugEntry<pipelined::treap::MapEntry<std::int64_t>,
                               pipelined::treap::SumAug<std::int64_t>>;
using AugMapStore = pipelined::treap::Store<RecPolicy, AugMapEntry>;
using AugMapNode = pipelined::treap::Node<RecPolicy, AugMapEntry>;
using AugMapCell = pipelined::treap::Cell<RecPolicy, AugMapEntry>;

inline AugMapCell* union_aug_maps(RecExec ex, AugMapStore& st, AugMapCell* a,
                                  AugMapCell* b) {
  AugMapCell* out = st.cell();
  ex.engine().fork([&] {
    pipelined::run_inline(pipelined::treap::union_into(
        ex, st, a, b, out,
        [](std::int64_t x, std::int64_t y) { return x + y; }));
  });
  return out;
}

inline AugMapCell* diff_aug_maps(RecExec ex, AugMapStore& st, AugMapCell* a,
                                 AugMapCell* b) {
  AugMapCell* out = st.cell();
  ex.engine().fork([&] {
    pipelined::run_inline(pipelined::treap::diff_into(ex, st, a, b, out));
  });
  return out;
}

// ---- binary-tree merge / rebalance ------------------------------------------

inline TreeCell* merge(RecExec ex, TreeStore& st, TreeCell* a, TreeCell* b) {
  TreeCell* out = st.cell();
  ex.engine().fork([&] {
    pipelined::run_inline(pipelined::trees::merge_into(ex, st, a, b, out));
  });
  return out;
}

inline TreeCell* rebalance(RecExec ex, TreeStore& st, TreeCell* tree) {
  // measure runs inline in the calling thread (the recorded DAG depends on
  // it); only the rebalance recursion is forked.
  TreeNode* annotated =
      pipelined::run_inline(pipelined::trees::measure(ex, st, tree));
  TreeCell* acell = st.input(annotated);
  TreeCell* out = st.cell();
  const std::uint64_t n = pipelined::trees::size_of(annotated);
  ex.engine().fork([&] {
    pipelined::run_inline(
        pipelined::trees::rebalance_into(ex, st, acell, n, out));
  });
  return out;
}

inline std::vector<Key> tree_inorder(const TreeCell* c) {
  std::vector<Key> out;
  pipelined::trees::collect_inorder<RecPolicy>(
      pipelined::trees::peek<RecPolicy>(c), out);
  return out;
}

// ---- mergesort --------------------------------------------------------------

inline TreeCell* mergesort(RecExec ex, TreeStore& st,
                           const std::vector<Key>& values) {
  TreeCell* out = st.cell();
  ex.fork(pipelined::trees::msort_into(ex, st, values, out));
  return out;
}

// ---- 2-6 tree bulk insert ---------------------------------------------------

inline TtreeCell* bulk_insert(RecExec ex, TtreeStore& st, TtreeCell* root,
                              std::span<const Key> sorted) {
  return pipelined::ttree::bulk_insert(ex, st, root, sorted);
}

inline std::vector<Key> ttree_keys(const TtreeCell* c) {
  std::vector<Key> out;
  pipelined::ttree::collect_keys<RecPolicy>(
      pipelined::ttree::peek<RecPolicy>(c), out);
  return out;
}

// ---- list quicksort + producer/consumer -------------------------------------

inline ListCell* quicksort(RecExec ex, ListStore& st,
                           const std::vector<Value>& values) {
  ListCell* in = st.input_list(values);
  ListCell* nil = st.input(nullptr);
  ListCell* out = st.cell();
  ex.fork(pipelined::list::quicksort_into(ex, st, in, nil, out));
  return out;
}

inline std::vector<Value> list_values(const ListCell* head) {
  return pipelined::list::peek_list<RecPolicy>(head);
}

inline std::int64_t produce_consume(RecExec ex, ListStore& st,
                                    std::int64_t n) {
  ListCell* list = st.cell();
  ex.fork(pipelined::list::produce(ex, st, n, list));
  return pipelined::run_inline(pipelined::list::consume(ex, list));
}

}  // namespace rec
}  // namespace pwf::analyze
