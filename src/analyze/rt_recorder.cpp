#include "analyze/rt_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <unordered_map>

#include "support/check.hpp"

namespace pwf::rt::analyze {

namespace {

// Cap the raw event log so pathological runs don't exhaust memory; the
// per-cell tallies (what the audit decisions use) are always complete.
constexpr std::size_t kMaxLoggedEvents = 1u << 20;

struct State {
  std::mutex mu;
  std::uint64_t seq = 0;
  std::vector<Event> log;
  // Live incarnation per address, plus the violations of incarnations that
  // were retired when their address was reused by a new cell.
  std::unordered_map<const void*, CellCounts> cells;
  std::vector<CellCounts> retired_double;
  std::vector<CellCounts> retired_parked;
  std::vector<CellCounts> retired_nonlinear;

  // Keep a retired incarnation's verdicts. A retired cell with a waiter
  // still parked is a deadlock: the cell is gone, nobody can wake the
  // waiter.
  void retire(const CellCounts& c) {
    if (c.presets + c.writes > 1) retired_double.push_back(c);
    if (c.parks > 0 && c.presets + c.writes == 0) retired_parked.push_back(c);
    if (c.touches > 1) retired_nonlinear.push_back(c);
  }
};

State& state() {
  static State s;
  return s;
}

thread_local int t_worker = -1;
thread_local const void* t_fiber = nullptr;

// Batches chained onto a service root but not yet flushed/compacted.
// Deliberately outside State: it is owned by live ParallelSet/ParallelMap
// instances and must survive reset() between Scheduler lifetimes.
std::atomic<std::uint64_t> g_unflushed{0};

}  // namespace

const char* event_name(Ev e) {
  switch (e) {
    case Ev::kCreate: return "create";
    case Ev::kPreset: return "preset";
    case Ev::kWrite: return "write";
    case Ev::kTouch: return "touch";
    case Ev::kPark: return "park";
  }
  return "?";
}

void record(Ev kind, const void* cell) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.log.size() < kMaxLoggedEvents)
    s.log.push_back({s.seq, cell, t_fiber, t_worker, kind});
  ++s.seq;
  CellCounts& c = s.cells[cell];
  switch (kind) {
    case Ev::kCreate:
      if (c.cell != nullptr) {
        s.retire(c);
        c = CellCounts{};
      }
      break;
    case Ev::kPreset: ++c.presets; break;
    case Ev::kWrite: ++c.writes; break;
    case Ev::kTouch: ++c.touches; break;
    case Ev::kPark: ++c.parks; break;
  }
  c.cell = cell;
}

void set_worker(int index) { t_worker = index; }
void set_current_fiber(const void* frame) { t_fiber = frame; }

void note_pipeline_chained() {
  g_unflushed.fetch_add(1, std::memory_order_relaxed);
}

void note_pipeline_flushed(std::uint64_t batches) {
  // Saturating decrement: a service may flush counts it chained before the
  // recorder was last reset by an unrelated test harness.
  std::uint64_t cur = g_unflushed.load(std::memory_order_relaxed);
  while (cur != 0 &&
         !g_unflushed.compare_exchange_weak(cur, cur - std::min(cur, batches),
                                            std::memory_order_relaxed)) {
  }
}

std::uint64_t pipeline_unflushed() {
  return g_unflushed.load(std::memory_order_relaxed);
}

RtReport audit() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  RtReport rep;
  rep.events = s.seq;
  rep.cells = s.cells.size();
  rep.unflushed = g_unflushed.load(std::memory_order_relaxed);
  // With an unflushed service pipeline live, a parked-but-unwritten cell is
  // simply still materializing — its writer chains off the unflushed root.
  std::vector<CellCounts>& parked_bucket =
      rep.unflushed > 0 ? rep.pending : rep.never_written;
  for (const auto& [ptr, c] : s.cells) {
    if (c.presets + c.writes > 1) rep.double_written.push_back(c);
    if (c.parks > 0 && c.presets + c.writes == 0) parked_bucket.push_back(c);
    if (c.touches > 1) rep.nonlinear.push_back(c);
  }
  rep.double_written.insert(rep.double_written.end(), s.retired_double.begin(),
                            s.retired_double.end());
  parked_bucket.insert(parked_bucket.end(), s.retired_parked.begin(),
                       s.retired_parked.end());
  rep.nonlinear.insert(rep.nonlinear.end(), s.retired_nonlinear.begin(),
                       s.retired_nonlinear.end());
  auto by_ptr = [](const CellCounts& a, const CellCounts& b) {
    return a.cell < b.cell;
  };
  std::sort(rep.double_written.begin(), rep.double_written.end(), by_ptr);
  std::sort(rep.never_written.begin(), rep.never_written.end(), by_ptr);
  std::sort(rep.pending.begin(), rep.pending.end(), by_ptr);
  std::sort(rep.nonlinear.begin(), rep.nonlinear.end(), by_ptr);
  return rep;
}

std::vector<Event> recent_events(std::size_t max) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  const std::size_t n = std::min(max, s.log.size());
  return {s.log.end() - static_cast<std::ptrdiff_t>(n), s.log.end()};
}

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.seq = 0;
  s.log.clear();
  s.cells.clear();
  s.retired_double.clear();
  s.retired_parked.clear();
  s.retired_nonlinear.clear();
}

void audit_at_shutdown() {
  const RtReport rep = audit();
  if (!rep.pending.empty()) {
    std::fprintf(stderr,
                 "pwf-analyze(rt): note: %zu cell(s) pending on %llu "
                 "unflushed service batch(es) at scheduler shutdown (call "
                 "flush()/compact() before destroying the Scheduler to drain "
                 "them)\n",
                 rep.pending.size(),
                 static_cast<unsigned long long>(rep.unflushed));
  }
  if (!rep.ok() || !rep.nonlinear.empty()) {
    std::fprintf(stderr,
                 "pwf-analyze(rt): audit of %llu events over %llu cells:\n",
                 static_cast<unsigned long long>(rep.events),
                 static_cast<unsigned long long>(rep.cells));
    for (const auto& c : rep.double_written)
      std::fprintf(stderr,
                   "  [double-write] cell %p: %u writes + %u presets\n",
                   c.cell, c.writes, c.presets);
    for (const auto& c : rep.never_written)
      std::fprintf(stderr,
                   "  [never-written] cell %p: %u waiter(s) parked forever "
                   "(touched but no write reaches it)\n",
                   c.cell, c.parks);
    for (const auto& c : rep.nonlinear)
      std::fprintf(stderr,
                   "  [nonlinear] cell %p: %u touches (linear code reads "
                   "each cell at most once)\n",
                   c.cell, c.touches);
    for (const Event& e : recent_events(16))
      std::fprintf(stderr, "    event %llu: %s cell %p worker %d fiber %p\n",
                   static_cast<unsigned long long>(e.seq), event_name(e.kind),
                   e.cell, e.worker, e.fiber);
  }
  const bool clean = rep.ok();
  reset();
  PWF_CHECK_MSG(clean,
                "pwf-analyze(rt): runtime audit failed (double write or "
                "parked-forever waiter)");
}

}  // namespace pwf::rt::analyze
