#include "treap/setops.hpp"

namespace pwf::treap {

void splitm_from(Store& st, Key s, Node* t, TreapCell* outL, TreapCell* outR,
                 cm::Cell<Node*>* outEq) {
  cm::Engine& eng = st.engine();
  for (;;) {
    if (t == nullptr) {
      eng.write(outL, static_cast<Node*>(nullptr));
      eng.write(outR, static_cast<Node*>(nullptr));
      if (outEq) eng.write(outEq, static_cast<Node*>(nullptr));
      return;
    }
    eng.step();  // key comparison
    if (s < t->key) {
      Node* keep = st.make(t->key, t->pri, st.cell(), t->right);
      keep->val = t->val;
      publish(eng, outR, keep);
      outR = keep->left;
      t = eng.touch(t->left);
    } else if (s > t->key) {
      Node* keep = st.make(t->key, t->pri, t->left, st.cell());
      keep->val = t->val;
      publish(eng, outL, keep);
      outL = keep->right;
      t = eng.touch(t->right);
    } else {
      // Splitter found: its subtrees are the two sides; the node itself is
      // excluded (and reported through outEq for difference).
      eng.write(outL, eng.touch(t->left));
      eng.write(outR, eng.touch(t->right));
      if (outEq) eng.write(outEq, t);
      return;
    }
  }
}

void union_into(Store& st, TreapCell* a, TreapCell* b, TreapCell* out) {
  cm::Engine& eng = st.engine();
  Node* ta = eng.touch(a);
  Node* tb = eng.touch(b);
  if (ta == nullptr) {
    publish(eng, out, tb);
    return;
  }
  if (tb == nullptr) {
    publish(eng, out, ta);
    return;
  }
  eng.step();  // priority comparison
  if (ta->pri < tb->pri) std::swap(ta, tb);  // higher priority becomes root
  Node* res = st.make(ta->key, ta->pri);
  res->val = ta->val;
  TreapCell* l2 = st.cell();
  TreapCell* r2 = st.cell();
  const Key v = ta->key;
  eng.fork([&] { splitm_from(st, v, tb, l2, r2, nullptr); });
  eng.fork([&] { union_into(st, ta->left, l2, res->left); });
  eng.fork([&] { union_into(st, ta->right, r2, res->right); });
  publish(eng, out, res);
}

TreapCell* union_treaps(Store& st, TreapCell* a, TreapCell* b) {
  TreapCell* out = st.cell();
  st.engine().fork([&] { union_into(st, a, b, out); });
  return out;
}

void join_from(Store& st, Node* t1, Node* t2, TreapCell* out) {
  cm::Engine& eng = st.engine();
  for (;;) {
    if (t1 == nullptr) {
      publish(eng, out, t2);
      return;
    }
    if (t2 == nullptr) {
      publish(eng, out, t1);
      return;
    }
    eng.step();  // priority comparison
    if (t1->pri >= t2->pri) {
      Node* res = st.make(t1->key, t1->pri, t1->left, st.cell());
      res->val = t1->val;
      publish(eng, out, res);
      out = res->right;
      t1 = eng.touch(t1->right);
    } else {
      Node* res = st.make(t2->key, t2->pri, st.cell(), t2->right);
      res->val = t2->val;
      publish(eng, out, res);
      out = res->left;
      t2 = eng.touch(t2->left);
    }
  }
}

void diff_into(Store& st, TreapCell* a, TreapCell* b, TreapCell* out) {
  cm::Engine& eng = st.engine();
  Node* t1 = eng.touch(a);
  Node* t2 = eng.touch(b);
  if (t1 == nullptr) {
    eng.write(out, static_cast<Node*>(nullptr));
    return;
  }
  if (t2 == nullptr) {
    publish(eng, out, t1);
    return;
  }
  eng.step();
  TreapCell* l2 = st.cell();
  TreapCell* r2 = st.cell();
  auto* eq = eng.new_cell<Node*>();
  const Key v = t1->key;
  eng.fork([&] { splitm_from(st, v, t2, l2, r2, eq); });
  TreapCell* dl = st.cell();
  TreapCell* dr = st.cell();
  eng.fork([&] { diff_into(st, t1->left, l2, dl); });
  eng.fork([&] { diff_into(st, t1->right, r2, dr); });
  // Whether the root survives depends on whether splitm found it in b — the
  // "work after the recursive calls" that makes diff's pipeline notable.
  Node* found = eng.touch(eq);
  if (found != nullptr) {
    eng.fork([&] {
      Node* jl = eng.touch(dl);
      Node* jr = eng.touch(dr);
      join_from(st, jl, jr, out);
    });
  } else {
    Node* res = st.make(t1->key, t1->pri, dl, dr);
    res->val = t1->val;
    publish(eng, out, res);
  }
}

TreapCell* diff_treaps(Store& st, TreapCell* a, TreapCell* b) {
  TreapCell* out = st.cell();
  st.engine().fork([&] { diff_into(st, a, b, out); });
  return out;
}

void intersect_into(Store& st, TreapCell* a, TreapCell* b, TreapCell* out) {
  cm::Engine& eng = st.engine();
  Node* ta = eng.touch(a);
  Node* tb = eng.touch(b);
  if (ta == nullptr || tb == nullptr) {
    eng.write(out, static_cast<Node*>(nullptr));
    return;
  }
  eng.step();  // priority comparison
  if (ta->pri < tb->pri) std::swap(ta, tb);  // recurse on the higher root
  TreapCell* l2 = st.cell();
  TreapCell* r2 = st.cell();
  auto* eq = eng.new_cell<Node*>();
  const Key v = ta->key;
  eng.fork([&] { splitm_from(st, v, tb, l2, r2, eq); });
  TreapCell* il = st.cell();
  TreapCell* ir = st.cell();
  eng.fork([&] { intersect_into(st, ta->left, l2, il); });
  eng.fork([&] { intersect_into(st, ta->right, r2, ir); });
  // Dual of diff: the root survives exactly when splitm found it in b.
  Node* found = eng.touch(eq);
  if (found != nullptr) {
    Node* res = st.make(ta->key, ta->pri, il, ir);
    res->val = ta->val;
    publish(eng, out, res);
  } else {
    eng.fork([&] {
      Node* jl = eng.touch(il);
      Node* jr = eng.touch(ir);
      join_from(st, jl, jr, out);
    });
  }
}

TreapCell* intersect_treaps(Store& st, TreapCell* a, TreapCell* b) {
  TreapCell* out = st.cell();
  st.engine().fork([&] { intersect_into(st, a, b, out); });
  return out;
}

// ---- strict baselines --------------------------------------------------------

StrictSplit splitm_strict(Store& st, Key s, Node* t) {
  cm::Engine& eng = st.engine();
  eng.step();
  if (t == nullptr) return {};
  if (s < t->key) {
    StrictSplit sub = splitm_strict(st, s, peek(t->left));
    sub.greater = st.make(t->key, t->pri, st.input(sub.greater), t->right);
    sub.greater->val = t->val;
    return sub;
  }
  if (s > t->key) {
    StrictSplit sub = splitm_strict(st, s, peek(t->right));
    sub.less = st.make(t->key, t->pri, t->left, st.input(sub.less));
    sub.less->val = t->val;
    return sub;
  }
  return {peek(t->left), peek(t->right), t};
}

Node* join_strict(Store& st, Node* t1, Node* t2) {
  cm::Engine& eng = st.engine();
  eng.step();
  if (t1 == nullptr) return t2;
  if (t2 == nullptr) return t1;
  if (t1->pri >= t2->pri)
    return st.make(t1->key, t1->pri, t1->left,
                   st.input(join_strict(st, peek(t1->right), t2)));
  return st.make(t2->key, t2->pri,
                 st.input(join_strict(st, t1, peek(t2->left))), t2->right);
}

Node* union_strict(Store& st, Node* a, Node* b) {
  cm::Engine& eng = st.engine();
  eng.step();
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (a->pri < b->pri) std::swap(a, b);
  StrictSplit s = splitm_strict(st, a->key, b);
  auto [l, r] = eng.fork_join2(
      [&, ls = s.less] { return union_strict(st, peek(a->left), ls); },
      [&, rs = s.greater] { return union_strict(st, peek(a->right), rs); });
  return st.make_ready(a->key, a->pri, l, r);
}

Node* intersect_strict(Store& st, Node* a, Node* b) {
  cm::Engine& eng = st.engine();
  eng.step();
  if (a == nullptr || b == nullptr) return nullptr;
  if (a->pri < b->pri) std::swap(a, b);
  StrictSplit s = splitm_strict(st, a->key, b);
  auto [l, r] = eng.fork_join2(
      [&, ls = s.less] { return intersect_strict(st, peek(a->left), ls); },
      [&, rs = s.greater] {
        return intersect_strict(st, peek(a->right), rs);
      });
  if (s.equal != nullptr) return st.make_ready(a->key, a->pri, l, r);
  return join_strict(st, l, r);
}

Node* diff_strict(Store& st, Node* a, Node* b) {
  cm::Engine& eng = st.engine();
  eng.step();
  if (a == nullptr) return nullptr;
  if (b == nullptr) return a;
  StrictSplit s = splitm_strict(st, a->key, b);
  auto [l, r] = eng.fork_join2(
      [&, ls = s.less] { return diff_strict(st, peek(a->left), ls); },
      [&, rs = s.greater] { return diff_strict(st, peek(a->right), rs); });
  if (s.equal != nullptr) return join_strict(st, l, r);
  return st.make_ready(a->key, a->pri, l, r);
}

TreapCell* insert_keys(Store& st, TreapCell* t, std::span<const Key> keys) {
  if (keys.empty()) return t;
  return union_treaps(st, t, st.input(st.build(keys)));
}

TreapCell* erase_keys(Store& st, TreapCell* t, std::span<const Key> keys) {
  if (keys.empty()) return t;
  return diff_treaps(st, t, st.input(st.build(keys)));
}

}  // namespace pwf::treap
