#include "treap/setops.hpp"

#include "pipelined/cm_exec.hpp"
#include "pipelined/exec.hpp"

namespace pwf::treap {

namespace pl = pipelined;

// The bodies live in src/pipelined/treap.hpp; on the cost-model substrate
// run_inline drives each coroutine to completion synchronously with the
// exact engine-action sequence of the old plain-function code (sealed by
// tests/recorded_counts_test.cpp).

void splitm_from(Store& st, Key s, Node* t, TreapCell* outL, TreapCell* outR,
                 cm::Cell<Node*>* outEq) {
  pl::run_inline(pl::treap::splitm_from(pl::CmExec(st.engine()), st, s, t,
                                        outL, outR, outEq));
}

void union_into(Store& st, TreapCell* a, TreapCell* b, TreapCell* out) {
  pl::run_inline(
      pl::treap::union_into(pl::CmExec(st.engine()), st, a, b, out));
}

TreapCell* union_treaps(Store& st, TreapCell* a, TreapCell* b) {
  TreapCell* out = st.cell();
  st.engine().fork([&] { union_into(st, a, b, out); });
  return out;
}

void join_from(Store& st, Node* t1, Node* t2, TreapCell* out) {
  pl::run_inline(
      pl::treap::join_from(pl::CmExec(st.engine()), st, t1, t2, out));
}

void diff_into(Store& st, TreapCell* a, TreapCell* b, TreapCell* out) {
  pl::run_inline(pl::treap::diff_into(pl::CmExec(st.engine()), st, a, b, out));
}

TreapCell* diff_treaps(Store& st, TreapCell* a, TreapCell* b) {
  TreapCell* out = st.cell();
  st.engine().fork([&] { diff_into(st, a, b, out); });
  return out;
}

void intersect_into(Store& st, TreapCell* a, TreapCell* b, TreapCell* out) {
  pl::run_inline(
      pl::treap::intersect_into(pl::CmExec(st.engine()), st, a, b, out));
}

TreapCell* intersect_treaps(Store& st, TreapCell* a, TreapCell* b) {
  TreapCell* out = st.cell();
  st.engine().fork([&] { intersect_into(st, a, b, out); });
  return out;
}

// ---- strict baselines --------------------------------------------------------

StrictSplit splitm_strict(Store& st, Key s, Node* t) {
  auto s2 = pl::run_inline(
      pl::treap::splitm_strict(pl::CmStrictExec(st.engine()), st, s, t));
  return {s2.less, s2.greater, s2.equal};
}

Node* join_strict(Store& st, Node* t1, Node* t2) {
  return pl::run_inline(
      pl::treap::join_strict(pl::CmStrictExec(st.engine()), st, t1, t2));
}

Node* union_strict(Store& st, Node* a, Node* b) {
  return pl::run_inline(
      pl::treap::union_strict(pl::CmStrictExec(st.engine()), st, a, b));
}

Node* intersect_strict(Store& st, Node* a, Node* b) {
  return pl::run_inline(
      pl::treap::intersect_strict(pl::CmStrictExec(st.engine()), st, a, b));
}

Node* diff_strict(Store& st, Node* a, Node* b) {
  return pl::run_inline(
      pl::treap::diff_strict(pl::CmStrictExec(st.engine()), st, a, b));
}

TreapCell* insert_keys(Store& st, TreapCell* t, std::span<const Key> keys) {
  if (keys.empty()) return t;
  return union_treaps(st, t, st.input(st.build(keys)));
}

TreapCell* erase_keys(Store& st, TreapCell* t, std::span<const Key> keys) {
  if (keys.empty()) return t;
  return diff_treaps(st, t, st.input(st.build(keys)));
}

}  // namespace pwf::treap
