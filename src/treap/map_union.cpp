#include "treap/map_union.hpp"

namespace pwf::treap {

Node* build_map(Store& st,
                std::span<const std::pair<Key, std::int64_t>> items) {
  // Same right-spine construction as Store::build, carrying payloads.
  std::vector<Node*> spine;
  for (const auto& [k, v] : items) {
    Node* n = st.make_ready(k, st.priority(k), nullptr, nullptr);
    n->val = v;
    Node* last_popped = nullptr;
    while (!spine.empty() && spine.back()->pri < n->pri) {
      last_popped = spine.back();
      spine.pop_back();
    }
    if (last_popped != nullptr) cm::Engine::preset(*n->left, last_popped);
    if (!spine.empty()) cm::Engine::preset(*spine.back()->right, n);
    spine.push_back(n);
  }
  return spine.empty() ? nullptr : spine.front();
}

void collect_items(const Node* root,
                   std::vector<std::pair<Key, std::int64_t>>& out) {
  if (root == nullptr) return;
  collect_items(peek(root->left), out);
  out.emplace_back(root->key, root->val);
  collect_items(peek(root->right), out);
}

}  // namespace pwf::treap
