#include "treap/map_union.hpp"

namespace pwf::treap {

MapNode* build_map(MapStore& st,
                   std::span<const std::pair<Key, std::int64_t>> items) {
  return st.build(items);
}

void collect_items(const MapNode* root,
                   std::vector<std::pair<Key, std::int64_t>>& out) {
  pipelined::treap::collect_items(root, out);
}

}  // namespace pwf::treap
