// Value-merging treap union in the cost model — the map counterpart of
// Figure 4's union, for measuring what payload merging costs the pipeline.
//
// The set union can publish each result root immediately (a duplicate key
// is silently excluded by splitm). With values, the root's payload depends
// on *whether* the key is shared, so the thread must wait for splitm's
// "found" verdict before publishing — the same ascending-information
// pattern as difference, and covered by the same ρ-value style argument:
// expected depth stays O(lg n + lg m) (measured by E21).
//
// Since the Entry-policy refactor the body is the shared union_into in
// src/pipelined/treap.hpp instantiated with MapEntry<int64>: result value
// for a shared key is merge(value_in_a, value_in_b), operand order by map
// regardless of which root won the priority comparison (the body's `flip`).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "pipelined/cm_exec.hpp"
#include "pipelined/exec.hpp"
#include "pipelined/treap.hpp"
#include "treap/treap.hpp"

namespace pwf::treap {

// Cost-model map instantiation: int64 payloads over cm::Cell futures.
using MapEntry = pipelined::treap::MapEntry<std::int64_t>;
using MapNode = pipelined::treap::Node<pipelined::CmPolicy, MapEntry>;
using MapCell = cm::Cell<MapNode*>;
using MapStore = pipelined::treap::Store<pipelined::CmPolicy, MapEntry>;

template <typename Merge>
void union_merge_into(MapStore& st, MapCell* a, MapCell* b, MapCell* out,
                      Merge merge) {
  pipelined::run_inline(pipelined::treap::union_into(
      pipelined::CmExec(st.engine()), st, a, b, out, merge));
}

template <typename Merge>
MapCell* union_merge(MapStore& st, MapCell* a, MapCell* b, Merge merge) {
  MapCell* out = st.cell();
  st.engine().fork([&] { union_merge_into(st, a, b, out, merge); });
  return out;
}

// Builder over key-sorted, duplicate-free (key, value) items.
MapNode* build_map(MapStore& st,
                   std::span<const std::pair<Key, std::int64_t>> items);

// Analysis: in-order (key, value) items of a finished map treap.
void collect_items(const MapNode* root,
                   std::vector<std::pair<Key, std::int64_t>>& out);

// Analysis overloads matching the set wrappers in treap/treap.hpp.
inline MapNode* peek(const MapCell* c) {
  return pipelined::treap::peek<pipelined::CmPolicy>(c);
}

inline bool validate(const MapStore& st, const MapNode* root) {
  return pipelined::treap::validate(st, root);
}

}  // namespace pwf::treap
