// Value-merging treap union in the cost model — the map counterpart of
// Figure 4's union, for measuring what payload merging costs the pipeline.
//
// The set union can publish each result root immediately (a duplicate key
// is silently excluded by splitm). With values, the root's payload depends
// on *whether* the key is shared, so the thread must wait for splitm's
// "found" verdict before publishing — the same ascending-information
// pattern as difference, and covered by the same ρ-value style argument:
// expected depth stays O(lg n + lg m) (measured by E21).
//
// Merge is a functor (Key-value payloads are the Node::val int64 field):
// result value for a shared key is merge(value_in_a, value_in_b), operand
// order by map regardless of which root won the priority comparison.
#pragma once

#include <utility>

#include "treap/setops.hpp"
#include "treap/treap.hpp"

namespace pwf::treap {

template <typename Merge>
void union_merge_into(Store& st, TreapCell* a, TreapCell* b, TreapCell* out,
                      Merge merge, bool flipped = false) {
  cm::Engine& eng = st.engine();
  Node* ta = eng.touch(a);
  Node* tb = eng.touch(b);
  if (ta == nullptr) {
    publish(eng, out, tb);
    return;
  }
  if (tb == nullptr) {
    publish(eng, out, ta);
    return;
  }
  eng.step();  // priority comparison
  bool flip = flipped;
  if (ta->pri < tb->pri) {
    std::swap(ta, tb);
    flip = !flip;
  }
  Node* res = st.make(ta->key, ta->pri);
  res->val = ta->val;
  TreapCell* l2 = st.cell();
  TreapCell* r2 = st.cell();
  auto* eq = eng.new_cell<Node*>();
  const Key v = ta->key;
  eng.fork([&] { splitm_from(st, v, tb, l2, r2, eq); });
  eng.fork([&] { union_merge_into(st, ta->left, l2, res->left, merge, flip); });
  eng.fork(
      [&] { union_merge_into(st, ta->right, r2, res->right, merge, flip); });
  // The payload depends on whether the key is shared: wait for the verdict.
  Node* dup = eng.touch(eq);
  if (dup != nullptr)
    res->val = flip ? merge(dup->val, ta->val) : merge(ta->val, dup->val);
  publish(eng, out, res);
}

template <typename Merge>
TreapCell* union_merge(Store& st, TreapCell* a, TreapCell* b, Merge merge) {
  TreapCell* out = st.cell();
  st.engine().fork([&] { union_merge_into(st, a, b, out, merge); });
  return out;
}

// Builder over key-sorted, duplicate-free (key, value) items.
Node* build_map(Store& st,
                std::span<const std::pair<Key, std::int64_t>> items);

// Analysis: in-order (key, value) items of a finished map treap.
void collect_items(const Node* root,
                   std::vector<std::pair<Key, std::int64_t>>& out);

}  // namespace pwf::treap
