// A self-contained sequential treap — deliberately implemented independently
// of the cost-model treap (different memory management, different recursion
// structure) so tests can use it as a differential oracle, and examples can
// use it as the "what you'd write without the paper" comparison point.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace pwf::treap {

class SeqTreap {
 public:
  using Key = std::int64_t;

  explicit SeqTreap(std::uint64_t salt = 0x9e3779b97f4a7c15ULL)
      : salt_(salt) {}

  SeqTreap(SeqTreap&&) noexcept = default;
  SeqTreap& operator=(SeqTreap&&) noexcept = default;

  void insert(Key k);
  bool erase(Key k);  // true if the key was present
  bool contains(Key k) const;
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Set operations; all consume `other` (the paper's ops are linear).
  void unite(SeqTreap&& other);
  void subtract(SeqTreap&& other);
  void intersect(SeqTreap&& other);

  std::vector<Key> keys() const;  // in-order
  int height() const;
  bool validate() const;  // BST + heap invariants

  static SeqTreap from_keys(std::span<const Key> keys,
                            std::uint64_t salt = 0x9e3779b97f4a7c15ULL);

 private:
  struct Node {
    Key key;
    std::uint64_t pri;
    std::unique_ptr<Node> left, right;
  };
  using Ptr = std::unique_ptr<Node>;

  std::uint64_t priority(Key k) const;
  static Ptr join(Ptr a, Ptr b);
  // Splits by k into (<k, ==k, >k).
  static void split(Ptr t, Key k, Ptr& less, Ptr& equal, Ptr& greater);
  static Ptr unite_rec(Ptr a, Ptr b);
  static Ptr subtract_rec(Ptr a, Ptr b);
  static Ptr intersect_rec(Ptr a, Ptr b);
  void recount();

  std::uint64_t salt_;
  Ptr root_;
  std::size_t size_ = 0;
};

}  // namespace pwf::treap
