// Sections 3.2–3.3: pipelined treap union and difference.
//
// Both are *dynamic* pipelines — the delay before a split result's root
// appears depends on the input data — which is what makes them "particularly
// difficult to pipeline by hand" (the paper knows of no prior PRAM algorithm
// with a dynamic pipeline). With futures the code below is just the obvious
// sequential recursion plus forks.
//
// Pipelined versions (cost model, Figures 4 and 7):
//   union_into / diff_into     expected depth O(lg n + lg m)
//                              union expected work O(m lg(n/m))
// Strict fork-join baselines:
//   union_strict / diff_strict expected depth O(lg n · lg m)
//                              (diff worse still because of the joins)
#pragma once

#include <utility>

#include "treap/treap.hpp"

namespace pwf::treap {

// ---- pipelined (futures) versions ------------------------------------------

// splitm (Figure 4): splits the available treap rooted at `t` by key `s`.
// Keys < s are published progressively under *outL, keys > s under *outR; a
// node with key == s is excluded from both and, when outEq != nullptr,
// delivered through it (nullptr if s was absent). outEq is written only when
// the traversal terminates — the "splitm completes as soon as it finds the
// splitter" behaviour diff depends on.
void splitm_from(Store& st, Key s, Node* t, TreapCell* outL, TreapCell* outR,
                 cm::Cell<Node*>* outEq);

// Pipelined union (Figure 4): keys of both treaps, duplicates removed, heap
// and BST order restored. Consumes both inputs.
void union_into(Store& st, TreapCell* a, TreapCell* b, TreapCell* out);
TreapCell* union_treaps(Store& st, TreapCell* a, TreapCell* b);

// join (Figure 7 helper): every key of `t1` less than every key of `t2`;
// interleaves the right spine of t1 with the left spine of t2 by priority.
// Runs in the calling thread, publishing progressively.
void join_from(Store& st, Node* t1, Node* t2, TreapCell* out);

// Pipelined difference (Figure 7): keys of `a` not present in `b`.
void diff_into(Store& st, TreapCell* a, TreapCell* b, TreapCell* out);
TreapCell* diff_treaps(Store& st, TreapCell* a, TreapCell* b);

// Pipelined intersection (extension; the third set operation from the
// authors' companion paper "Fast set operations using treaps" [11]): keys
// present in both treaps. Structurally the dual of difference — the root
// survives exactly when splitm *finds* it — so it exercises the same
// dynamic ascending pipeline (joins after the recursion) on the opposite
// branch. Expected depth O(lg n + lg m), work O(m lg(n/m)).
void intersect_into(Store& st, TreapCell* a, TreapCell* b, TreapCell* out);
TreapCell* intersect_treaps(Store& st, TreapCell* a, TreapCell* b);

// ---- strict (non-pipelined) baselines ---------------------------------------

// Sequential splitm returning complete trees (+ the equal node if present).
struct StrictSplit {
  Node* less = nullptr;
  Node* greater = nullptr;
  Node* equal = nullptr;
};
StrictSplit splitm_strict(Store& st, Key s, Node* t);

Node* join_strict(Store& st, Node* t1, Node* t2);

// Fork-join union/difference: splitm runs to completion, then the two
// recursive calls run in parallel.
Node* union_strict(Store& st, Node* a, Node* b);
Node* diff_strict(Store& st, Node* a, Node* b);
Node* intersect_strict(Store& st, Node* a, Node* b);

// ---- bulk-update wrappers -----------------------------------------------------

// The paper: union "can be used to insert a set of keys into a treap" and
// difference "can be used to delete a set of keys". These wrappers build the
// key-set treap (input data) and run the pipelined operation.
TreapCell* insert_keys(Store& st, TreapCell* t, std::span<const Key> keys);
TreapCell* erase_keys(Store& st, TreapCell* t, std::span<const Key> keys);

}  // namespace pwf::treap
