#include "treap/seq_treap.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"
#include "support/random.hpp"

namespace pwf::treap {

std::uint64_t SeqTreap::priority(Key k) const {
  std::uint64_t x = static_cast<std::uint64_t>(k) ^ salt_;
  return splitmix64(x);
}

void SeqTreap::split(Ptr t, Key k, Ptr& less, Ptr& equal, Ptr& greater) {
  if (!t) {
    less.reset();
    equal.reset();
    greater.reset();
    return;
  }
  if (k < t->key) {
    Ptr sub_greater;
    split(std::move(t->left), k, less, equal, sub_greater);
    t->left = std::move(sub_greater);
    greater = std::move(t);
  } else if (k > t->key) {
    Ptr sub_less;
    split(std::move(t->right), k, sub_less, equal, greater);
    t->right = std::move(sub_less);
    less = std::move(t);
  } else {
    less = std::move(t->left);
    greater = std::move(t->right);
    equal = std::move(t);
    equal->left.reset();
    equal->right.reset();
  }
}

SeqTreap::Ptr SeqTreap::join(Ptr a, Ptr b) {
  if (!a) return b;
  if (!b) return a;
  if (a->pri >= b->pri) {
    a->right = join(std::move(a->right), std::move(b));
    return a;
  }
  b->left = join(std::move(a), std::move(b->left));
  return b;
}

void SeqTreap::insert(Key k) {
  Ptr less, equal, greater;
  split(std::move(root_), k, less, equal, greater);
  if (!equal) {
    equal = std::make_unique<Node>(Node{k, priority(k), nullptr, nullptr});
    ++size_;
  }
  root_ = join(join(std::move(less), std::move(equal)), std::move(greater));
}

bool SeqTreap::erase(Key k) {
  Ptr less, equal, greater;
  split(std::move(root_), k, less, equal, greater);
  const bool present = equal != nullptr;
  if (present) --size_;
  root_ = join(std::move(less), std::move(greater));
  return present;
}

bool SeqTreap::contains(Key k) const {
  const Node* n = root_.get();
  while (n) {
    if (k < n->key)
      n = n->left.get();
    else if (k > n->key)
      n = n->right.get();
    else
      return true;
  }
  return false;
}

SeqTreap::Ptr SeqTreap::unite_rec(Ptr a, Ptr b) {
  if (!a) return b;
  if (!b) return a;
  if (a->pri < b->pri) std::swap(a, b);
  Ptr less, equal, greater;
  split(std::move(b), a->key, less, equal, greater);
  a->left = unite_rec(std::move(a->left), std::move(less));
  a->right = unite_rec(std::move(a->right), std::move(greater));
  return a;
}

SeqTreap::Ptr SeqTreap::subtract_rec(Ptr a, Ptr b) {
  if (!a || !b) return a;
  Ptr less, equal, greater;
  const Key k = a->key;
  split(std::move(b), k, less, equal, greater);
  Ptr dl = subtract_rec(std::move(a->left), std::move(less));
  Ptr dr = subtract_rec(std::move(a->right), std::move(greater));
  if (equal) return join(std::move(dl), std::move(dr));
  a->left = std::move(dl);
  a->right = std::move(dr);
  return a;
}

void SeqTreap::recount() {
  std::size_t n = 0;
  std::vector<const Node*> stack;
  if (root_) stack.push_back(root_.get());
  while (!stack.empty()) {
    const Node* x = stack.back();
    stack.pop_back();
    ++n;
    if (x->left) stack.push_back(x->left.get());
    if (x->right) stack.push_back(x->right.get());
  }
  size_ = n;
}

SeqTreap::Ptr SeqTreap::intersect_rec(Ptr a, Ptr b) {
  if (!a || !b) return nullptr;
  if (a->pri < b->pri) std::swap(a, b);
  Ptr less, equal, greater;
  split(std::move(b), a->key, less, equal, greater);
  Ptr il = intersect_rec(std::move(a->left), std::move(less));
  Ptr ir = intersect_rec(std::move(a->right), std::move(greater));
  if (equal) {
    a->left = std::move(il);
    a->right = std::move(ir);
    return a;
  }
  return join(std::move(il), std::move(ir));
}

void SeqTreap::unite(SeqTreap&& other) {
  PWF_CHECK_MSG(salt_ == other.salt_,
                "uniting treaps with different priority salts");
  root_ = unite_rec(std::move(root_), std::move(other.root_));
  other.size_ = 0;
  recount();  // duplicates were dropped
}

void SeqTreap::subtract(SeqTreap&& other) {
  PWF_CHECK_MSG(salt_ == other.salt_,
                "subtracting treaps with different priority salts");
  root_ = subtract_rec(std::move(root_), std::move(other.root_));
  other.size_ = 0;
  recount();
}

void SeqTreap::intersect(SeqTreap&& other) {
  PWF_CHECK_MSG(salt_ == other.salt_,
                "intersecting treaps with different priority salts");
  root_ = intersect_rec(std::move(root_), std::move(other.root_));
  other.size_ = 0;
  recount();
}

std::vector<SeqTreap::Key> SeqTreap::keys() const {
  std::vector<Key> out;
  out.reserve(size_);
  // Iterative in-order traversal (trees can be deep before balancing luck).
  std::vector<const Node*> stack;
  const Node* cur = root_.get();
  while (cur || !stack.empty()) {
    while (cur) {
      stack.push_back(cur);
      cur = cur->left.get();
    }
    cur = stack.back();
    stack.pop_back();
    out.push_back(cur->key);
    cur = cur->right.get();
  }
  return out;
}


int SeqTreap::height() const {
  struct H {
    static int of(const Node* n) {
      if (!n) return 0;
      return 1 + std::max(of(n->left.get()), of(n->right.get()));
    }
  };
  return H::of(root_.get());
}

bool SeqTreap::validate() const {
  struct V {
    static bool ok(const Node* n, const Key* lo, const Key* hi,
                   std::uint64_t max_pri) {
      if (!n) return true;
      if (lo && n->key <= *lo) return false;
      if (hi && n->key >= *hi) return false;
      if (n->pri > max_pri) return false;
      return ok(n->left.get(), lo, &n->key, n->pri) &&
             ok(n->right.get(), &n->key, hi, n->pri);
    }
  };
  return V::ok(root_.get(), nullptr, nullptr,
               std::numeric_limits<std::uint64_t>::max());
}

SeqTreap SeqTreap::from_keys(std::span<const Key> keys, std::uint64_t salt) {
  SeqTreap t(salt);
  for (Key k : keys) t.insert(k);
  return t;
}

}  // namespace pwf::treap
