// Treaps (randomized balanced search trees, Seidel & Aragon) with future-cell
// children — the data structure of the paper's Sections 3.2 and 3.3.
//
// The representation and the algorithm bodies live in
// src/pipelined/treap.hpp (single-source, substrate-templated); this header
// instantiates them on the cost-model substrate and keeps the original
// plain-function API.
#pragma once

#include <cstdint>
#include <vector>

#include "costmodel/engine.hpp"
#include "pipelined/cm_exec.hpp"
#include "pipelined/treap.hpp"

namespace pwf::treap {

using Key = pipelined::treap::Key;
using Pri = pipelined::treap::Pri;

// Cost-model instantiation: timestamped nodes over cm::Cell futures.
using Node = pipelined::treap::Node<pipelined::CmPolicy>;
using TreapCell = cm::Cell<Node*>;

// Construct with the engine and an optional priority-hash salt:
// Store st(eng) or Store st(eng, salt).
using Store = pipelined::treap::Store<pipelined::CmPolicy>;

// Publishes a node into its destination cell, stamping t(v).
inline void publish(cm::Engine& eng, TreapCell* out, Node* n) {
  pipelined::treap::publish(pipelined::CmExec(eng), out, n);
}

// ---- analysis helpers (no engine actions) ----------------------------------

inline Node* peek(const TreapCell* c) {
  return pipelined::treap::peek<pipelined::CmPolicy>(c);
}

void collect_inorder(const Node* root, std::vector<Key>& out);
int height(const Node* root);
std::uint64_t count_nodes(const Node* root);
cm::Time max_created(const Node* root);

// Full treap invariant: BST order on keys, heap order on priorities, and
// priorities consistent with the store's hash.
bool validate(const Store& st, const Node* root);

}  // namespace pwf::treap
