// Treaps (randomized balanced search trees, Seidel & Aragon) with future-cell
// children — the data structure of the paper's Sections 3.2 and 3.3.
//
// Priorities are derived from keys by hashing (splitmix64 with a store-wide
// salt), so a key has the same priority in every treap of a store; this is
// the standard trick that makes union/difference of treaps sharing keys
// well-defined, and it preserves the paper's randomness assumption because
// the hash is a PRF of the key.
//
// Like trees::Node, child links are read pointers to write-once cells and
// results are produced through write pointers threaded down the recursion.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "costmodel/engine.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace pwf::treap {

using Key = std::int64_t;
using Pri = std::uint64_t;

struct Node;
using TreapCell = cm::Cell<Node*>;

struct Node {
  Key key = 0;
  Pri pri = 0;
  std::int64_t val = 0;  // payload (used by the map operations only)
  cm::Time created = 0;  // t(v)
  TreapCell* left = nullptr;
  TreapCell* right = nullptr;
};

class Store {
 public:
  explicit Store(cm::Engine& eng, std::uint64_t salt = 0x9e3779b97f4a7c15ULL)
      : eng_(eng), salt_(salt) {}

  cm::Engine& engine() { return eng_; }

  Pri priority(Key k) const {
    std::uint64_t x = static_cast<std::uint64_t>(k) ^ salt_;
    return splitmix64(x);
  }

  TreapCell* cell() { return arena_.create<TreapCell>(); }

  TreapCell* input(Node* root) {
    TreapCell* c = cell();
    cm::Engine::preset(*c, root);
    return c;
  }

  Node* make(Key key, Pri pri, TreapCell* l, TreapCell* r) {
    Node* n = arena_.create<Node>();
    n->key = key;
    n->pri = pri;
    n->left = l;
    n->right = r;
    return n;
  }

  Node* make(Key key, Pri pri) { return make(key, pri, cell(), cell()); }

  Node* make_ready(Key key, Pri pri, Node* l, Node* r) {
    return make(key, pri, input(l), input(r));
  }

  // Builds a treap over the given keys (input data; costs nothing in the
  // model). Keys are sorted and deduplicated; construction is the O(n)
  // right-spine (Cartesian tree) method.
  Node* build(std::span<const Key> keys);

  std::size_t bytes_used() const { return arena_.bytes_used(); }

 private:
  cm::Engine& eng_;
  std::uint64_t salt_;
  Arena arena_{1 << 18};
};

// Publishes a node into its destination cell, stamping t(v).
inline void publish(cm::Engine& eng, TreapCell* out, Node* n) {
  eng.write(out, n);
  if (n) n->created = out->ts;
}

// ---- analysis helpers (no engine actions) ----------------------------------

inline Node* peek(const TreapCell* c) {
  PWF_CHECK_MSG(c->written, "peek of unwritten cell — computation incomplete");
  return c->value;
}

void collect_inorder(const Node* root, std::vector<Key>& out);
int height(const Node* root);
std::uint64_t count_nodes(const Node* root);
cm::Time max_created(const Node* root);

// Full treap invariant: BST order on keys, heap order on priorities, and
// priorities consistent with the store's hash.
bool validate(const Store& st, const Node* root);

}  // namespace pwf::treap
