#include "treap/treap.hpp"

#include <algorithm>
#include <limits>

namespace pwf::treap {

Node* Store::build(std::span<const Key> keys) {
  std::vector<Key> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  // Right-spine construction: maintain the spine of the treap built so far;
  // each new (larger) key pops smaller-priority spine nodes and adopts the
  // popped chain as its left subtree. O(n) after sorting.
  std::vector<Node*> spine;
  spine.reserve(64);
  for (Key k : sorted) {
    Node* n = make_ready(k, priority(k), nullptr, nullptr);
    Node* last_popped = nullptr;
    while (!spine.empty() && spine.back()->pri < n->pri) {
      last_popped = spine.back();
      spine.pop_back();
    }
    if (last_popped != nullptr) cm::Engine::preset(*n->left, last_popped);
    if (!spine.empty()) cm::Engine::preset(*spine.back()->right, n);
    spine.push_back(n);
  }
  return spine.empty() ? nullptr : spine.front();
}

void collect_inorder(const Node* root, std::vector<Key>& out) {
  if (root == nullptr) return;
  collect_inorder(peek(root->left), out);
  out.push_back(root->key);
  collect_inorder(peek(root->right), out);
}

int height(const Node* root) {
  if (root == nullptr) return 0;
  return 1 + std::max(height(peek(root->left)), height(peek(root->right)));
}

std::uint64_t count_nodes(const Node* root) {
  if (root == nullptr) return 0;
  return 1 + count_nodes(peek(root->left)) + count_nodes(peek(root->right));
}

cm::Time max_created(const Node* root) {
  if (root == nullptr) return 0;
  return std::max({root->created, max_created(peek(root->left)),
                   max_created(peek(root->right))});
}

namespace {
bool valid_in_range(const Store& st, const Node* n, const Key* lo,
                    const Key* hi, Pri max_pri) {
  if (n == nullptr) return true;
  if (lo && n->key <= *lo) return false;
  if (hi && n->key >= *hi) return false;
  if (n->pri > max_pri) return false;
  if (n->pri != st.priority(n->key)) return false;
  return valid_in_range(st, peek(n->left), lo, &n->key, n->pri) &&
         valid_in_range(st, peek(n->right), &n->key, hi, n->pri);
}
}  // namespace

bool validate(const Store& st, const Node* root) {
  return valid_in_range(st, root, nullptr, nullptr,
                        std::numeric_limits<Pri>::max());
}

}  // namespace pwf::treap
