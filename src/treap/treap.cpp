#include "treap/treap.hpp"

namespace pwf::treap {

namespace pt = pipelined::treap;

void collect_inorder(const Node* root, std::vector<Key>& out) {
  pt::collect_inorder(root, out);
}

int height(const Node* root) { return pt::height(root); }

std::uint64_t count_nodes(const Node* root) { return pt::count_nodes(root); }

cm::Time max_created(const Node* root) { return pt::max_created(root); }

bool validate(const Store& st, const Node* root) {
  return pt::validate(st, root);
}

}  // namespace pwf::treap
