// Cole's pipelined merge sort — the paper's second motivating example of a
// hand-built PRAM pipeline ("the first O(lg n) time sorting algorithm on
// the PRAM not based on the AKS network", Section 1).
//
// Every internal node of the merge tree keeps UP(v), the sorted sequence of
// its subtree items merged "so far". At each synchronous stage an
// incomplete node receives from each child a sample SUP of the child's UP —
// every 4th element while the child is incomplete, every 4th / every 2nd /
// all elements in the three stages after the child completes — and merges
// the two samples into its new UP. A node at height h completes at stage
// 3h, so the root finishes after 3 lg n stages with O(n lg n) total work.
//
// In Cole's paper each stage runs in O(1) PRAM time using rank pointers
// maintained via the 3-cover property; here the per-stage merges are done
// directly (std::merge), which changes only the per-stage constant, not the
// stage count or total work — the two quantities this reproduction
// measures. Correctness does not depend on the cover property (that is
// only needed for the O(1)-time merging), so this implementation is a
// faithful executable of Cole's *schedule*.
//
// Its role in the repro: E20 sets Cole's hand-pipelined 3·lg n stages
// against the futures mergesort's implicit pipeline (conjectured
// ≈ lg n lglg n depth, E11) — the exact gap the paper's Section 5 leaves
// open.
#pragma once

#include <cstdint>
#include <vector>

namespace pwf::algos::cole {

using Value = std::int64_t;

struct ColeStats {
  std::uint64_t stages = 0;       // synchronous pipeline stages
  std::uint64_t work = 0;         // total merged elements over all stages
  std::uint64_t max_width = 0;    // peak per-stage merged elements
  int tree_height = 0;            // merge-tree height (lg n for powers of 2)
};

// Sorts `values` with Cole's staged pipeline; duplicates allowed. `stats`
// may be null.
std::vector<Value> cole_sort(const std::vector<Value>& values,
                             ColeStats* stats);

}  // namespace pwf::algos::cole
