#include "algos/producer_consumer.hpp"

namespace pwf::algos {

namespace {

// produce n = n :: ?produce(n-1): each element is created by its own thread
// (the paper's Figure 1 DAG), so the list head appears in O(1) and each
// subsequent cell a constant number of time steps later.
void produce(ListStore& st, std::int64_t n, ListCell* out) {
  cm::Engine& eng = st.engine();
  if (n < 0) {
    eng.write(out, static_cast<LNode*>(nullptr));
    return;
  }
  ListCell* tail = st.cell();
  eng.fork([&] { produce(st, n - 1, tail); });
  eng.write(out, st.cons(n, tail));
}

// consume(h::t) = h + consume(t): one thread chasing the data edges, one
// action per element (the touch; the addition rides along), matching the
// 1:1 producer/consumer rate of the paper's Figure 1 DAG.
Value consume(ListStore& st, ListCell* list) {
  cm::Engine& eng = st.engine();
  Value sum = 0;
  for (;;) {
    LNode* h = eng.touch(list);
    if (h == nullptr) return sum;
    sum += h->value;
    list = h->next;
  }
}

}  // namespace

PipelineResult produce_consume(ListStore& st, std::int64_t n) {
  cm::Engine& eng = st.engine();
  ListCell* list = st.cell();
  eng.fork([&] { produce(st, n, list); });
  const cm::Time produce_done = eng.depth();  // eager: producer just finished
  PipelineResult r;
  r.sum = consume(st, list);
  r.produce_done = produce_done;
  r.consume_done = eng.now();
  return r;
}

PipelineResult produce_consume_strict(ListStore& st, std::int64_t n) {
  // Non-pipelined baseline: the list is fully materialized before the
  // consumer starts (the producer is a chain either way, so sequential
  // production has the same asymptotic depth as the forked version — what
  // changes is that consumption cannot overlap it).
  cm::Engine& eng = st.engine();
  ListCell* list = st.input(nullptr);
  for (std::int64_t i = 0; i <= n; ++i) {  // build n..0 back to front
    eng.steps(2);  // allocate + link, one element at a time
    list = st.input(st.cons(i, list));
  }
  PipelineResult r;
  r.produce_done = eng.now();
  r.sum = consume(st, list);
  r.consume_done = eng.now();
  return r;
}

}  // namespace pwf::algos
