#include "algos/producer_consumer.hpp"

#include "pipelined/cm_exec.hpp"
#include "pipelined/exec.hpp"

namespace pwf::algos {

namespace pl = pipelined;

PipelineResult produce_consume(ListStore& st, std::int64_t n) {
  cm::Engine& eng = st.engine();
  pl::CmExec ex(eng);
  ListCell* list = st.cell();
  ex.fork(pl::list::produce(ex, st, n, list));
  const cm::Time produce_done = eng.depth();  // eager: producer just finished
  PipelineResult r;
  r.sum = pl::run_inline(pl::list::consume(ex, list));
  r.produce_done = produce_done;
  r.consume_done = eng.now();
  return r;
}

PipelineResult produce_consume_strict(ListStore& st, std::int64_t n) {
  // Non-pipelined baseline: the list is fully materialized before the
  // consumer starts (the producer is a chain either way, so sequential
  // production has the same asymptotic depth as the forked version — what
  // changes is that consumption cannot overlap it).
  cm::Engine& eng = st.engine();
  ListCell* list = st.input(nullptr);
  for (std::int64_t i = 0; i <= n; ++i) {  // build n..0 back to front
    eng.steps(2);  // allocate + link, one element at a time
    list = st.input(st.cons(i, list));
  }
  PipelineResult r;
  r.produce_done = eng.now();
  r.sum = pl::run_inline(pl::list::consume(pl::CmExec(eng), list));
  r.consume_done = eng.now();
  return r;
}

}  // namespace pwf::algos
