// Figure 1 of the paper: a producer thread chain builds the list n, n-1,
// ..., 0 (one thread per element) while a consumer sums it, pipelined
// through the list's future cells. Both the producer chain and the consumer
// chain have Θ(n) depth; pipelining makes the whole computation finish O(1)
// after the producer instead of Θ(n) after it.
#pragma once

#include "algos/list.hpp"

namespace pwf::algos {

struct PipelineResult {
  Value sum = 0;
  cm::Time produce_done = 0;  // timestamp of the last list cell write
  cm::Time consume_done = 0;  // clock when the sum was complete
};

// Pipelined: consume runs concurrently with produce.
PipelineResult produce_consume(ListStore& st, std::int64_t n);

// Strict baseline: the consumer starts only after the producer has written
// the entire list (fork-join around produce).
PipelineResult produce_consume_strict(ListStore& st, std::int64_t n);

}  // namespace pwf::algos
