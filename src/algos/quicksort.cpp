#include "algos/quicksort.hpp"

#include "pipelined/cm_exec.hpp"
#include "pipelined/exec.hpp"

namespace pwf::algos {

namespace pl = pipelined;

void quicksort_into(ListStore& st, ListCell* list, ListCell* rest,
                    ListCell* out) {
  pl::run_inline(pl::list::quicksort_into(pl::CmExec(st.engine()), st, list,
                                          rest, out));
}

ListCell* quicksort(ListStore& st, const std::vector<Value>& values) {
  pl::CmExec ex(st.engine());
  ListCell* in = st.input_list(values);
  ListCell* nil = st.input(nullptr);
  ListCell* out = st.cell();
  ex.fork(pl::list::quicksort_into(ex, st, in, nil, out));
  return out;
}

ListCell* quicksort_strict(ListStore& st, const std::vector<Value>& values) {
  std::vector<Value> sorted = pl::run_inline(
      pl::list::qs_strict_rec(pl::CmStrictExec(st.engine()), values));
  return st.input_list(sorted);
}

}  // namespace pwf::algos
