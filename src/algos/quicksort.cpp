#include "algos/quicksort.hpp"

namespace pwf::algos {

namespace {

// part(p, l) = (elements < p, elements >= p), produced front-first through
// the destination cells so the recursive qs calls can consume the prefixes
// while the suffix is still being partitioned.
void part(ListStore& st, Value p, ListCell* list, ListCell* outLes,
          ListCell* outGrt) {
  cm::Engine& eng = st.engine();
  for (;;) {
    LNode* h = eng.touch(list);
    if (h == nullptr) {
      eng.write(outLes, static_cast<LNode*>(nullptr));
      eng.write(outGrt, static_cast<LNode*>(nullptr));
      return;
    }
    eng.step();  // the comparison
    if (h->value < p) {
      ListCell* tail = st.cell();
      eng.write(outLes, st.cons(h->value, tail));
      outLes = tail;
    } else {
      ListCell* tail = st.cell();
      eng.write(outGrt, st.cons(h->value, tail));
      outGrt = tail;
    }
    list = h->next;
  }
}

}  // namespace

void quicksort_into(ListStore& st, ListCell* list, ListCell* rest,
                    ListCell* out) {
  cm::Engine& eng = st.engine();
  LNode* h = eng.touch(list);
  if (h == nullptr) {  // qs(nil, rest) = rest
    eng.write(out, eng.touch(rest));
    return;
  }
  eng.step();
  ListCell* les = st.cell();
  ListCell* grt = st.cell();
  const Value pivot = h->value;
  eng.fork([&] { part(st, pivot, h->next, les, grt); });
  // qs(les, h :: ?qs(grt, rest))
  ListCell* sorted_grt = st.cell();
  eng.fork([&] { quicksort_into(st, grt, rest, sorted_grt); });
  ListCell* mid = st.input(st.cons(pivot, sorted_grt));
  quicksort_into(st, les, mid, out);
}

ListCell* quicksort(ListStore& st, const std::vector<Value>& values) {
  cm::Engine& eng = st.engine();
  ListCell* in = st.input_list(values);
  ListCell* nil = st.input(nullptr);
  ListCell* out = st.cell();
  eng.fork([&] { quicksort_into(st, in, nil, out); });
  return out;
}

namespace {

// Strict recursion over materialized value sequences: sequential partition,
// parallel recursive sorts, sequential append — the paper's "two recursive
// calls to quicksort in parallel after the sequential partition is
// complete". Expected depth Θ(n), like the pipelined version.
std::vector<Value> qs_strict_rec(cm::Engine& eng,
                                 std::vector<Value> values) {
  eng.step();
  if (values.size() <= 1) return values;
  const Value pivot = values.front();
  std::vector<Value> les, grt;
  for (std::size_t i = 1; i < values.size(); ++i) {
    eng.step();  // the comparison (partition is a sequential chain)
    (values[i] < pivot ? les : grt).push_back(values[i]);
  }
  auto [sl, sg] = eng.fork_join2(
      [&] { return qs_strict_rec(eng, std::move(les)); },
      [&] { return qs_strict_rec(eng, std::move(grt)); });
  // Append sl ++ [pivot] ++ sg, paying one action per copied element.
  std::vector<Value> out;
  out.reserve(values.size());
  for (Value v : sl) {
    eng.step();
    out.push_back(v);
  }
  eng.step();
  out.push_back(pivot);
  for (Value v : sg) {
    eng.step();
    out.push_back(v);
  }
  return out;
}

}  // namespace

ListCell* quicksort_strict(ListStore& st, const std::vector<Value>& values) {
  std::vector<Value> sorted = qs_strict_rec(st.engine(), values);
  return st.input_list(sorted);
}

}  // namespace pwf::algos
