#include "algos/list.hpp"

namespace pwf::algos {

std::vector<Value> peek_list(const ListCell* head) {
  return pipelined::list::peek_list<pipelined::CmPolicy>(head);
}

}  // namespace pwf::algos
