#include "algos/list.hpp"

namespace pwf::algos {

std::vector<Value> peek_list(const ListCell* head) {
  std::vector<Value> out;
  const ListCell* c = head;
  for (;;) {
    PWF_CHECK_MSG(c->written, "peek of unwritten list cell");
    const LNode* n = c->value;
    if (n == nullptr) return out;
    out.push_back(n->value);
    c = n->next;
  }
}

}  // namespace pwf::algos
