// Section 5 of the paper (open conjecture): a mergesort built from the
// Section 3.1 pipelined tree merge. The recursion tree, the merges, and the
// splits inside the merges give three levels of pipelining; the paper
// conjectures the expected depth over random input orderings is close to
// O(lg n lg lg n) (it is O(lg^3 n) without pipelining). E11 measures it.
#pragma once

#include <vector>

#include "trees/tree.hpp"

namespace pwf::algos {

// Sorts `values` (duplicates allowed — they survive as equal adjacent keys)
// into a BST using pipelined merges; returns the result cell.
trees::TreeCell* mergesort(trees::Store& st,
                           const std::vector<trees::Key>& values);

// Non-pipelined baseline: same recursion with strict merges.
trees::Node* mergesort_strict(trees::Store& st,
                              const std::vector<trees::Key>& values);

// Balanced variant (ablation): rebalances after every merge level using the
// Section 3.1 rebalance pipeline. The measure pass inside rebalance waits
// for the level's merge to finish, so levels no longer overlap — depth
// becomes a guaranteed Θ(lg² n) (each of lg n levels costs Θ(lg n)), and
// the output is height-optimal. Contrast with mergesort(), whose levels
// pipeline into each other (conjectured ≈ lg n lglg n expected depth) but
// whose intermediate trees drift out of balance.
trees::TreeCell* mergesort_balanced(trees::Store& st,
                                    const std::vector<trees::Key>& values);

}  // namespace pwf::algos
