// Linked lists with future tails — the list type of the paper's Figure 1
// producer/consumer and Figure 2 quicksort.
//
// The representation and the algorithm bodies live in
// src/pipelined/list.hpp (single-source, substrate-templated); this header
// instantiates them on the cost-model substrate and keeps the original
// plain-function API.
#pragma once

#include <cstdint>
#include <vector>

#include "costmodel/engine.hpp"
#include "pipelined/cm_exec.hpp"
#include "pipelined/list.hpp"

namespace pwf::algos {

using Value = pipelined::list::Value;

// Cost-model instantiation: cons cells over cm::Cell future tails.
using LNode = pipelined::list::LNode<pipelined::CmPolicy>;
using ListCell = cm::Cell<LNode*>;

// Construct with the engine: ListStore st(eng).
using ListStore = pipelined::list::Store<pipelined::CmPolicy>;

// Analysis-only: collect a finished list's values.
std::vector<Value> peek_list(const ListCell* head);

}  // namespace pwf::algos
