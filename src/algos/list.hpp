// Linked lists with future tails — the list type of the paper's Figure 1
// producer/consumer and Figure 2 quicksort. A cons cell's head is an
// immediate value; its tail is a read pointer to a future cell, so a list
// can be consumed while its tail is still being produced.
#pragma once

#include <cstdint>
#include <vector>

#include "costmodel/engine.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"

namespace pwf::algos {

using Value = std::int64_t;

struct LNode;
using ListCell = cm::Cell<LNode*>;

struct LNode {
  Value value = 0;
  ListCell* next = nullptr;
};

class ListStore {
 public:
  explicit ListStore(cm::Engine& eng) : eng_(eng) {}

  cm::Engine& engine() { return eng_; }

  ListCell* cell() { return arena_.create<ListCell>(); }

  ListCell* input(LNode* head) {
    ListCell* c = cell();
    cm::Engine::preset(*c, head);
    return c;
  }

  LNode* cons(Value v, ListCell* next) {
    LNode* n = arena_.create<LNode>();
    n->value = v;
    n->next = next;
    return n;
  }

  // Fully materialized input list (available at time 0).
  ListCell* input_list(const std::vector<Value>& values) {
    LNode* head = nullptr;
    ListCell* next = input(nullptr);
    for (std::size_t i = values.size(); i-- > 0;) {
      head = cons(values[i], next);
      next = input(head);
    }
    return next;
  }

 private:
  cm::Engine& eng_;
  Arena arena_{1 << 16};
};

// Analysis-only: collect a finished list's values.
std::vector<Value> peek_list(const ListCell* head);

}  // namespace pwf::algos
