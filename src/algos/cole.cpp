#include "algos/cole.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pwf::algos::cole {

namespace {

struct CNode {
  int left = -1;   // child indices; -1 for leaves
  int right = -1;
  int height = 0;  // leaves are height 0
  int complete_stage = -1;
  std::vector<Value> up;
};

// Builds the merge tree over values[lo, hi); returns the node index.
int build(std::vector<CNode>& nodes, const std::vector<Value>& values,
          std::size_t lo, std::size_t hi) {
  const int idx = static_cast<int>(nodes.size());
  nodes.emplace_back();
  if (hi - lo == 1) {
    nodes[idx].up.push_back(values[lo]);
    nodes[idx].complete_stage = 0;  // a leaf's UP is its item, immediately
    return idx;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  const int l = build(nodes, values, lo, mid);
  const int r = build(nodes, values, mid, hi);
  nodes[idx].left = l;
  nodes[idx].right = r;
  nodes[idx].height = 1 + std::max(nodes[l].height, nodes[r].height);
  return idx;
}

// The sample a child contributes at stage t: every 4th element while the
// child is incomplete; every 4th / every 2nd / all in the first / second /
// subsequent stages after it completes.
void sample(const CNode& child, std::uint64_t stage,
            std::vector<Value>& out) {
  out.clear();
  std::size_t step;
  std::size_t first;
  if (child.complete_stage < 0 ||
      stage <= static_cast<std::uint64_t>(child.complete_stage)) {
    step = 4;
    first = 3;
  } else {
    const std::uint64_t age =
        stage - static_cast<std::uint64_t>(child.complete_stage);
    if (age == 1) {
      step = 4;
      first = 3;
    } else if (age == 2) {
      step = 2;
      first = 1;
    } else {
      step = 1;
      first = 0;
    }
  }
  for (std::size_t i = first; i < child.up.size(); i += step)
    out.push_back(child.up[i]);
}

}  // namespace

std::vector<Value> cole_sort(const std::vector<Value>& values,
                             ColeStats* stats) {
  ColeStats local;
  if (values.size() <= 1) {
    if (stats) *stats = local;
    return values;
  }

  std::vector<CNode> nodes;
  nodes.reserve(2 * values.size());
  const int root = build(nodes, values, 0, values.size());
  local.tree_height = nodes[root].height;

  // Top-down processing order: a node reads only its children, so visiting
  // decreasing heights within one stage sees exactly the previous stage's
  // child state — the synchronous PRAM step without double buffering.
  std::vector<int> order;
  order.reserve(nodes.size());
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i)
    if (nodes[i].left >= 0) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return nodes[a].height > nodes[b].height;
  });

  std::vector<Value> sup_l, sup_r, merged;
  for (std::uint64_t stage = 1; nodes[root].complete_stage < 0; ++stage) {
    std::uint64_t width = 0;
    for (int v : order) {
      CNode& node = nodes[v];
      if (node.complete_stage >= 0) continue;
      const CNode& l = nodes[node.left];
      const CNode& r = nodes[node.right];
      sample(l, stage, sup_l);
      sample(r, stage, sup_r);
      merged.resize(sup_l.size() + sup_r.size());
      std::merge(sup_l.begin(), sup_l.end(), sup_r.begin(), sup_r.end(),
                 merged.begin());
      node.up = merged;
      width += merged.size();
      local.work += merged.size();
      // Complete once both children have been complete for >= 3 stages:
      // the samples above were then the children's entire UP lists.
      if (l.complete_stage >= 0 && r.complete_stage >= 0 &&
          stage >= static_cast<std::uint64_t>(l.complete_stage) + 3 &&
          stage >= static_cast<std::uint64_t>(r.complete_stage) + 3)
        node.complete_stage = static_cast<int>(stage);
    }
    local.max_width = std::max(local.max_width, width);
    local.stages = stage;
    PWF_CHECK_MSG(stage < 16 * (static_cast<std::uint64_t>(
                                    nodes[root].height) +
                                2),
                  "Cole pipeline failed to complete on schedule");
  }

  if (stats) *stats = local;
  return nodes[root].up;
}

}  // namespace pwf::algos::cole
