#include "algos/mergesort.hpp"

#include "trees/merge.hpp"
#include "trees/rebalance.hpp"

namespace pwf::algos {

namespace {

using trees::Node;
using trees::Store;
using trees::TreeCell;

void msort_into(Store& st, std::span<const trees::Key> values,
                TreeCell* out) {
  cm::Engine& eng = st.engine();
  eng.step();
  if (values.empty()) {
    eng.write(out, static_cast<Node*>(nullptr));
    return;
  }
  if (values.size() == 1) {
    trees::publish(eng, out, st.make_ready(values[0], nullptr, nullptr));
    return;
  }
  const std::size_t mid = values.size() / 2;
  TreeCell* l = st.cell();
  TreeCell* r = st.cell();
  eng.fork([&] { msort_into(st, values.subspan(0, mid), l); });
  eng.fork([&] { msort_into(st, values.subspan(mid), r); });
  trees::merge_into(st, l, r, out);
}

Node* msort_strict(Store& st, std::span<const trees::Key> values) {
  cm::Engine& eng = st.engine();
  eng.step();
  if (values.empty()) return nullptr;
  if (values.size() == 1)
    return st.make_ready(values[0], nullptr, nullptr);
  const std::size_t mid = values.size() / 2;
  auto [l, r] =
      eng.fork_join2([&] { return msort_strict(st, values.subspan(0, mid)); },
                     [&] { return msort_strict(st, values.subspan(mid)); });
  return trees::merge_strict(st, l, r);
}

void msort_balanced_into(Store& st, std::span<const trees::Key> values,
                         TreeCell* out) {
  cm::Engine& eng = st.engine();
  eng.step();
  if (values.empty()) {
    eng.write(out, static_cast<Node*>(nullptr));
    return;
  }
  if (values.size() == 1) {
    trees::publish(eng, out, st.make_ready(values[0], nullptr, nullptr));
    return;
  }
  const std::size_t mid = values.size() / 2;
  TreeCell* l = st.cell();
  TreeCell* r = st.cell();
  eng.fork([&] { msort_balanced_into(st, values.subspan(0, mid), l); });
  eng.fork([&] { msort_balanced_into(st, values.subspan(mid), r); });
  TreeCell* merged = st.cell();
  eng.fork([&] { trees::merge_into(st, l, r, merged); });
  // Rebalance phase in its own thread: its measure pass waits (through data
  // edges) for this level's merge only, so sibling subtrees still overlap;
  // levels serialize at the rebalance barrier — D(n) = D(n/2) + O(lg n).
  eng.fork([&] {
    Node* annotated = trees::measure(st, merged);
    trees::rebalance_into(st, st.input(annotated), values.size(), out);
  });
}

}  // namespace

trees::TreeCell* mergesort(trees::Store& st,
                           const std::vector<trees::Key>& values) {
  TreeCell* out = st.cell();
  st.engine().fork([&] { msort_into(st, values, out); });
  return out;
}

trees::Node* mergesort_strict(trees::Store& st,
                              const std::vector<trees::Key>& values) {
  return msort_strict(st, values);
}

trees::TreeCell* mergesort_balanced(trees::Store& st,
                                    const std::vector<trees::Key>& values) {
  TreeCell* out = st.cell();
  st.engine().fork([&] { msort_balanced_into(st, values, out); });
  return out;
}

}  // namespace pwf::algos
