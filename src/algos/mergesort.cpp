#include "algos/mergesort.hpp"

#include "pipelined/cm_exec.hpp"
#include "pipelined/exec.hpp"
#include "pipelined/mergesort.hpp"

namespace pwf::algos {

namespace pl = pipelined;

using trees::TreeCell;

trees::TreeCell* mergesort(trees::Store& st,
                           const std::vector<trees::Key>& values) {
  pl::CmExec ex(st.engine());
  TreeCell* out = st.cell();
  ex.fork(pl::trees::msort_into(ex, st, values, out));
  return out;
}

trees::Node* mergesort_strict(trees::Store& st,
                              const std::vector<trees::Key>& values) {
  return pl::run_inline(
      pl::trees::msort_strict(pl::CmStrictExec(st.engine()), st, values));
}

trees::TreeCell* mergesort_balanced(trees::Store& st,
                                    const std::vector<trees::Key>& values) {
  pl::CmExec ex(st.engine());
  TreeCell* out = st.cell();
  ex.fork(pl::trees::msort_balanced_into(ex, st, values, out));
  return out;
}

}  // namespace pwf::algos
