// Figure 2 of the paper: Halstead's future-based quicksort (transcribed from
// Multilisp). The partition's partial results pipeline into the recursive
// calls, but — the paper's point — the *expected depth is Θ(n) either way*:
// futures give this algorithm no asymptotic advantage over the non-pipelined
// fork-join version, in contrast to the tree algorithms. E7 regenerates that
// comparison.
#pragma once

#include "algos/list.hpp"

namespace pwf::algos {

// Pipelined quicksort of the list in `list`, with `rest` appended (the
// accumulator in qs(les, h :: ?qs(grt, rest))). Top-level callers pass an
// input cell holding nullptr as `rest`.
void quicksort_into(ListStore& st, ListCell* list, ListCell* rest,
                    ListCell* out);

// Convenience: sorts `values`, returns the result cell.
ListCell* quicksort(ListStore& st, const std::vector<Value>& values);

// Strict baseline: sequential partition into complete lists, then the two
// recursive sorts fork-joined.
ListCell* quicksort_strict(ListStore& st, const std::vector<Value>& values);

}  // namespace pwf::algos
