// 2-6 trees — the paper's Section 3.4 top-down variant of PVW 2-3 trees.
//
// The representation and the algorithm bodies live in
// src/pipelined/ttree.hpp (single-source, substrate-templated); this header
// instantiates them on the cost-model substrate and keeps the original
// plain-function API.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "costmodel/engine.hpp"
#include "pipelined/cm_exec.hpp"
#include "pipelined/ttree.hpp"

namespace pwf::ttree {

using Key = pipelined::ttree::Key;

inline constexpr int kMaxKeys = pipelined::ttree::kMaxKeys;
inline constexpr int kMaxChildren = pipelined::ttree::kMaxChildren;

// Cost-model instantiation: timestamped nodes over cm::Cell futures.
using TNode = pipelined::ttree::TNode<pipelined::CmPolicy>;
using TCell = cm::Cell<TNode*>;

// Construct with the engine: Store st(eng).
using Store = pipelined::ttree::Store<pipelined::CmPolicy>;

// ---- analysis helpers (no engine actions) ----------------------------------

inline TNode* peek(const TCell* c) {
  return pipelined::ttree::peek<pipelined::CmPolicy>(c);
}

// All keys of the set, in order (splitters and leaf keys interleaved).
void collect_keys(const TNode* root, std::vector<Key>& out);

// Height in levels (leaf = 1; empty tree = 0).
int height(const TNode* root);

std::uint64_t count_keys(const TNode* root);

cm::Time max_created(const TNode* root);

// Structural invariant: key counts in range, per-node key order, children
// count, all leaves at the same depth, global key order, and no duplicate
// keys.
bool validate(const TNode* root);

// Membership test (splitters are members).
bool contains(const TNode* root, Key k);

}  // namespace pwf::ttree
