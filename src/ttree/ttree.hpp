// 2-6 trees — the paper's Section 3.4 top-down variant of PVW 2-3 trees.
//
// Every node holds 1–5 keys in increasing order; an internal node has one
// child per range (2–6 children); all leaves are at the same level; every
// key of the set appears exactly once, either as an internal splitter or in
// a leaf. The bulk-insert algorithm maintains the invariant that any node it
// recurses into is a *2-3 node* (<= 2 keys) by pre-emptively splitting
// children, so pulled-up splitters never overflow the 1–5 key bound.
//
// Child links are read pointers to write-once cells, like the other tree
// libraries: a wave of insertion publishes each level's node in O(1) after
// the level above, leaving the children as futures — which is exactly what
// lets the next wave follow one or two levels behind (the paper's Figure 11).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "costmodel/engine.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"

namespace pwf::ttree {

using Key = std::int64_t;

inline constexpr int kMaxKeys = 5;
inline constexpr int kMaxChildren = 6;

struct TNode;
using TCell = cm::Cell<TNode*>;

struct TNode {
  std::uint8_t nkeys = 0;
  bool leaf = true;
  cm::Time created = 0;  // t(v)
  Key keys[kMaxKeys] = {};
  TCell* child[kMaxChildren] = {};  // child[0..nkeys] valid when internal

  int nchildren() const { return leaf ? 0 : nkeys + 1; }
};

class Store {
 public:
  explicit Store(cm::Engine& eng) : eng_(eng) {}

  cm::Engine& engine() { return eng_; }

  TCell* cell() { return arena_.create<TCell>(); }

  TCell* input(TNode* n) {
    TCell* c = cell();
    cm::Engine::preset(*c, n);
    return c;
  }

  TNode* make_leaf(std::span<const Key> keys) {
    PWF_CHECK(keys.size() >= 1 && keys.size() <= kMaxKeys);
    TNode* n = arena_.create<TNode>();
    n->leaf = true;
    n->nkeys = static_cast<std::uint8_t>(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) n->keys[i] = keys[i];
    return n;
  }

  // Internal node; children cells supplied by the caller (kept subtrees,
  // fresh futures, or preset inputs).
  TNode* make_internal(std::span<const Key> keys,
                       std::span<TCell* const> children) {
    PWF_CHECK(keys.size() >= 1 && keys.size() <= kMaxKeys);
    PWF_CHECK(children.size() == keys.size() + 1);
    TNode* n = arena_.create<TNode>();
    n->leaf = false;
    n->nkeys = static_cast<std::uint8_t>(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) n->keys[i] = keys[i];
    for (std::size_t i = 0; i < children.size(); ++i) n->child[i] = children[i];
    return n;
  }

  // Builds a valid 2-6 tree over sorted, duplicate-free keys (input data;
  // costs nothing in the model). `fanout` chooses how full the internal
  // nodes are: 3 gives an all-2-3 tree (maximal splitting work for inserts),
  // 6 a maximally packed tree. Returns nullptr for empty input.
  TNode* build(std::span<const Key> sorted, int fanout = 3);

  // Stable storage for key arrays whose subspans flow through the insertion
  // pipeline.
  std::span<const Key> hold(std::vector<Key> keys) {
    held_.push_back(std::move(keys));
    return held_.back();
  }

  std::size_t bytes_used() const { return arena_.bytes_used(); }

 private:
  cm::Engine& eng_;
  Arena arena_{1 << 18};
  std::vector<std::vector<Key>> held_;
};

// ---- analysis helpers (no engine actions) ----------------------------------

inline TNode* peek(const TCell* c) {
  PWF_CHECK_MSG(c->written, "peek of unwritten cell — computation incomplete");
  return c->value;
}

// All keys of the set, in order (splitters and leaf keys interleaved).
void collect_keys(const TNode* root, std::vector<Key>& out);

// Height in levels (leaf = 1; empty tree = 0).
int height(const TNode* root);

std::uint64_t count_keys(const TNode* root);

cm::Time max_created(const TNode* root);

// Structural invariant: key counts in range, per-node key order, children
// count, all leaves at the same depth, global key order, and no duplicate
// keys. `root_relaxed` permits the root to be a leaf with any 1–5 keys or an
// internal node with 2–6 children (which the invariant always allows anyway).
bool validate(const TNode* root);

// Membership test (splitters are members).
bool contains(const TNode* root, Key k);

}  // namespace pwf::ttree
