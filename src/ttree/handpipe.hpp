// Hand-managed synchronous pipeline for 2-6 tree bulk insertion — the
// PVW-style baseline the paper argues futures make unnecessary.
//
// Where the futures version (insert.hpp) is the plain recursion with `?`
// annotations and lets the runtime discover that wave i+1 can run two
// levels behind wave i, this implementation *schedules the pipeline by
// hand*: it keeps an explicit frontier of tasks per wave and advances every
// active wave one tree level per global tick, wave w entering level l at
// tick 2w + l. The readiness argument (why wave w may touch level-l and
// level-(l+1) nodes of wave w-1's output at that tick) has to be made by
// the programmer — precisely the bookkeeping the paper's Sections 1 and 5
// call "quite cumbersome".
//
// It exists (a) as an executable demonstration of that contrast, and (b) as
// an independent oracle: it must produce the same tree contents and a tick
// count ~ 2 lg m + height, matching the futures version's depth shape.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/arena.hpp"
#include "support/check.hpp"
#include "ttree/ttree.hpp"

namespace pwf::ttree::handpipe {

using Key = ttree::Key;

// Plain 2-6 nodes — no future cells; synchronization is the tick schedule.
struct HNode {
  std::uint8_t nkeys = 0;
  bool leaf = true;
  Key keys[kMaxKeys] = {};
  HNode* child[kMaxChildren] = {};

  int nchildren() const { return leaf ? 0 : nkeys + 1; }
};

struct Stats {
  std::uint64_t ticks = 0;        // synchronous pipeline steps
  std::uint64_t work = 0;         // total per-task key operations
  std::uint64_t max_frontier = 0; // peak simultaneous tasks (PRAM width)
  std::uint64_t waves = 0;
};

class HandPipeline {
 public:
  HandPipeline() = default;

  // Builds the initial tree (same shape rules as ttree::Store::build).
  HNode* build(std::span<const Key> sorted, int fanout = 3);

  // Inserts the sorted key set through the hand-scheduled wavefront
  // pipeline; returns the new root and fills `stats`.
  HNode* bulk_insert(HNode* root, std::span<const Key> sorted, Stats* stats);

  // Validation / extraction on HNodes.
  static bool validate(const HNode* root);
  static void collect_keys(const HNode* root, std::vector<Key>& out);
  static int height(const HNode* root);

 private:
  struct Task {
    const HNode* src;           // node of the previous wave's tree
    std::span<const Key> keys;  // nonempty, well separated
    HNode** dest;               // where the rebuilt node must be linked
  };

  HNode* make_leaf(std::span<const Key> keys);
  HNode* make_internal(std::span<const Key> keys,
                       std::span<HNode* const> children);

  // Advances one task by one level: rebuilds `src` with the keys routed
  // into it and enqueues child tasks on `next`.
  void step_task(const Task& task, std::vector<Task>& next,
                 std::uint64_t* work);

  Arena arena_{1 << 18};
  std::vector<std::vector<Key>> held_;
};

}  // namespace pwf::ttree::handpipe
