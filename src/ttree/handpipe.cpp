#include "ttree/handpipe.hpp"

#include <algorithm>

#include "ttree/insert.hpp"  // level_arrays

namespace pwf::ttree::handpipe {

namespace {

std::uint64_t capacity(int h, int fanout) {
  std::uint64_t x = 1;
  for (int i = 0; i < h; ++i) x *= fanout;
  return x - 1;
}

bool needs_split(const HNode* n) {
  return n->leaf ? n->nkeys > 2 : n->nchildren() > 3;
}

std::pair<std::span<const Key>, std::span<const Key>> array_split(
    std::span<const Key> keys, Key s) {
  const auto lo = std::lower_bound(keys.begin(), keys.end(), s);
  const std::size_t i = static_cast<std::size_t>(lo - keys.begin());
  std::size_t j = i;
  if (j < keys.size() && keys[j] == s) ++j;  // drop duplicates of members
  return {keys.subspan(0, i), keys.subspan(j)};
}

}  // namespace

HNode* HandPipeline::make_leaf(std::span<const Key> keys) {
  PWF_CHECK(keys.size() >= 1 && keys.size() <= kMaxKeys);
  HNode* n = arena_.create<HNode>();
  n->leaf = true;
  n->nkeys = static_cast<std::uint8_t>(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) n->keys[i] = keys[i];
  return n;
}

HNode* HandPipeline::make_internal(std::span<const Key> keys,
                                   std::span<HNode* const> children) {
  PWF_CHECK(keys.size() >= 1 && keys.size() <= kMaxKeys);
  PWF_CHECK(children.size() == keys.size() + 1);
  HNode* n = arena_.create<HNode>();
  n->leaf = false;
  n->nkeys = static_cast<std::uint8_t>(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) n->keys[i] = keys[i];
  for (std::size_t i = 0; i < children.size(); ++i) n->child[i] = children[i];
  return n;
}

HNode* HandPipeline::build(std::span<const Key> sorted, int fanout) {
  PWF_CHECK(fanout >= 3 && fanout <= kMaxChildren);
  if (sorted.empty()) return nullptr;
  int h = 1;
  while (capacity(h, fanout) < sorted.size()) ++h;
  struct Rec {
    HandPipeline& hp;
    int fanout;
    HNode* go(std::span<const Key> keys, int height) {
      if (height == 1) return hp.make_leaf(keys);
      const std::uint64_t n = keys.size();
      const std::uint64_t child_cap = capacity(height - 1, fanout);
      int f = 2;
      while (f < fanout && static_cast<std::uint64_t>(f) - 1 +
                                   static_cast<std::uint64_t>(f) * child_cap <
                               n)
        ++f;
      const std::uint64_t child_total =
          n - (static_cast<std::uint64_t>(f) - 1);
      std::vector<Key> seps;
      std::vector<HNode*> children;
      std::size_t pos = 0;
      for (int i = 0; i < f; ++i) {
        const std::uint64_t take =
            child_total / f +
            (static_cast<std::uint64_t>(i) < child_total % f ? 1 : 0);
        children.push_back(go(keys.subspan(pos, take), height - 1));
        pos += take;
        if (i + 1 < f) seps.push_back(keys[pos++]);
      }
      return hp.make_internal(seps, children);
    }
  };
  return Rec{*this, fanout}.go(sorted, h);
}

void HandPipeline::step_task(const Task& task, std::vector<Task>& next,
                             std::uint64_t* work) {
  const HNode* t = task.src;
  const std::span<const Key> keys = task.keys;
  PWF_CHECK(!keys.empty());
  *work += keys.size() + t->nkeys;

  if (t->leaf) {
    Key merged[kMaxKeys];
    std::span<const Key> old{t->keys, static_cast<std::size_t>(t->nkeys)};
    std::size_t n = 0, i = 0, j = 0;
    while (i < old.size() || j < keys.size()) {
      Key k;
      if (j == keys.size() || (i < old.size() && old[i] <= keys[j])) {
        k = old[i++];
        if (j < keys.size() && k == keys[j]) ++j;
      } else {
        k = keys[j++];
      }
      PWF_CHECK_MSG(n < kMaxKeys,
                    "leaf overflow: key array was not well separated");
      merged[n++] = k;
    }
    *task.dest = make_leaf({merged, n});
    return;
  }

  // Rebuild this node: route key ranges to children, pre-splitting any
  // child that is not a 2-3 node (its node — one level down in the previous
  // wave's tree — is ready by the tick schedule's staggering argument).
  Key out_keys[kMaxKeys];
  HNode* out_child[kMaxChildren];
  int nk = 0, nc = 0;
  auto add_key = [&](Key k) {
    PWF_CHECK(nk < kMaxKeys);
    out_keys[nk++] = k;
  };
  auto add_child = [&](HNode* c) {
    PWF_CHECK(nc < kMaxChildren);
    out_child[nc++] = c;
  };
  // Placeholder slots to be filled by the enqueued child tasks.
  struct Pending {
    const HNode* src;
    std::span<const Key> keys;
    int slot;
  };
  std::vector<Pending> pending;

  std::span<const Key> rest = keys;
  for (int i = 0; i <= t->nkeys; ++i) {
    std::span<const Key> part;
    if (i < t->nkeys) {
      auto [lo, hi] = array_split(rest, t->keys[i]);
      part = lo;
      rest = hi;
    } else {
      part = rest;
    }
    if (part.empty()) {
      add_child(t->child[i]);
    } else {
      const HNode* c = t->child[i];
      if (!needs_split(c)) {
        pending.push_back({c, part, nc});
        add_child(nullptr);
      } else {
        // Split around the middle splitter; the halves reference c's child
        // pointers, which the previous wave has already filled.
        if (c->leaf) {
          const int lk = c->nkeys / 2;
          HNode* cl = make_leaf({c->keys, static_cast<std::size_t>(lk)});
          HNode* cr = make_leaf(
              {c->keys + lk + 1, static_cast<std::size_t>(c->nkeys - lk - 1)});
          const Key sep = c->keys[lk];
          auto [a1, a2] = array_split(part, sep);
          if (a1.empty()) {
            add_child(cl);
          } else {
            pending.push_back({cl, a1, nc});
            add_child(nullptr);
          }
          add_key(sep);
          if (a2.empty()) {
            add_child(cr);
          } else {
            pending.push_back({cr, a2, nc});
            add_child(nullptr);
          }
        } else {
          const int ncc = c->nchildren();
          const int lc = ncc / 2;
          HNode* cl =
              make_internal({c->keys, static_cast<std::size_t>(lc - 1)},
                            {c->child, static_cast<std::size_t>(lc)});
          HNode* cr = make_internal(
              {c->keys + lc, static_cast<std::size_t>(c->nkeys - lc)},
              {c->child + lc, static_cast<std::size_t>(ncc - lc)});
          const Key sep = c->keys[lc - 1];
          auto [a1, a2] = array_split(part, sep);
          if (a1.empty()) {
            add_child(cl);
          } else {
            pending.push_back({cl, a1, nc});
            add_child(nullptr);
          }
          add_key(sep);
          if (a2.empty()) {
            add_child(cr);
          } else {
            pending.push_back({cr, a2, nc});
            add_child(nullptr);
          }
        }
      }
    }
    if (i < t->nkeys) add_key(t->keys[i]);
  }

  HNode* nt = make_internal({out_keys, static_cast<std::size_t>(nk)},
                            {out_child, static_cast<std::size_t>(nc)});
  for (const Pending& p : pending)
    next.push_back({p.src, p.keys, &nt->child[p.slot]});
  *task.dest = nt;
}

HNode* HandPipeline::bulk_insert(HNode* root, std::span<const Key> sorted,
                                 Stats* stats) {
  PWF_CHECK_MSG(root != nullptr, "bulk insert requires a nonempty tree");
  Stats local;
  if (sorted.empty()) {
    if (stats) *stats = local;
    return root;
  }

  // Stage the well-separated waves; wave w launches at tick kDelta * w.
  constexpr std::uint64_t kDelta = 2;
  std::vector<std::span<const Key>> waves;
  for (auto& level : ttree::level_arrays(sorted)) {
    held_.push_back(std::move(level));
    waves.push_back(held_.back());
  }
  local.waves = waves.size();

  std::vector<std::vector<Task>> frontier(waves.size());
  std::vector<HNode*> roots(waves.size(), nullptr);
  std::size_t started = 0;
  std::size_t finished = 0;

  for (std::uint64_t tick = 0; finished < waves.size(); ++tick) {
    // Launch the next wave when its slot in the stagger arrives. Its source
    // root (the previous wave's output root) exists: wave w-1 produced it
    // kDelta ticks ago.
    if (started < waves.size() && tick == kDelta * started) {
      const HNode* src_root = started == 0 ? root : roots[started - 1];
      // Root handling: split a non-2-3 root, growing the tree one level.
      if (needs_split(src_root)) {
        HNode* grown = nullptr;
        if (src_root->leaf) {
          const int lk = src_root->nkeys / 2;
          HNode* cl =
              make_leaf({src_root->keys, static_cast<std::size_t>(lk)});
          HNode* cr = make_leaf({src_root->keys + lk + 1,
                                 static_cast<std::size_t>(src_root->nkeys -
                                                          lk - 1)});
          Key sep[1] = {src_root->keys[lk]};
          HNode* ch[2] = {cl, cr};
          grown = make_internal(sep, ch);
        } else {
          const int ncc = src_root->nchildren();
          const int lc = ncc / 2;
          HNode* cl = make_internal(
              {src_root->keys, static_cast<std::size_t>(lc - 1)},
              {src_root->child, static_cast<std::size_t>(lc)});
          HNode* cr = make_internal(
              {src_root->keys + lc,
               static_cast<std::size_t>(src_root->nkeys - lc)},
              {src_root->child + lc, static_cast<std::size_t>(ncc - lc)});
          Key sep[1] = {src_root->keys[lc - 1]};
          HNode* ch[2] = {cl, cr};
          grown = make_internal(sep, ch);
        }
        src_root = grown;
      }
      frontier[started].push_back(
          {src_root, waves[started], &roots[started]});
      ++started;
    }

    // One synchronous step: every active wave advances one level.
    std::uint64_t width = 0;
    for (std::size_t w = 0; w < started; ++w) {
      if (frontier[w].empty()) continue;
      width += frontier[w].size();
      std::vector<Task> next;
      for (const Task& task : frontier[w])
        step_task(task, next, &local.work);
      frontier[w] = std::move(next);
      if (frontier[w].empty()) ++finished;
    }
    local.max_frontier = std::max(local.max_frontier, width);
    ++local.ticks;
  }

  if (stats) *stats = local;
  return roots.back();
}

bool HandPipeline::validate(const HNode* root) {
  struct V {
    static int rec(const HNode* n, const Key* lo, const Key* hi) {
      if (n == nullptr) return -1;
      if (n->nkeys < 1 || n->nkeys > kMaxKeys) return -1;
      for (int i = 0; i < n->nkeys; ++i) {
        if (lo && n->keys[i] <= *lo) return -1;
        if (hi && n->keys[i] >= *hi) return -1;
        if (i > 0 && n->keys[i] <= n->keys[i - 1]) return -1;
      }
      if (n->leaf) return 1;
      int depth = -2;
      for (int i = 0; i <= n->nkeys; ++i) {
        const Key* clo = i == 0 ? lo : &n->keys[i - 1];
        const Key* chi = i == n->nkeys ? hi : &n->keys[i];
        const int d = rec(n->child[i], clo, chi);
        if (d < 0) return -1;
        if (depth == -2)
          depth = d;
        else if (d != depth)
          return -1;
      }
      return depth + 1;
    }
  };
  if (root == nullptr) return true;
  return V::rec(root, nullptr, nullptr) > 0;
}

void HandPipeline::collect_keys(const HNode* root, std::vector<Key>& out) {
  if (root == nullptr) return;
  if (root->leaf) {
    for (int i = 0; i < root->nkeys; ++i) out.push_back(root->keys[i]);
    return;
  }
  for (int i = 0; i < root->nkeys; ++i) {
    collect_keys(root->child[i], out);
    out.push_back(root->keys[i]);
  }
  collect_keys(root->child[root->nkeys], out);
}

int HandPipeline::height(const HNode* root) {
  if (root == nullptr) return 0;
  if (root->leaf) return 1;
  return 1 + height(root->child[0]);
}

}  // namespace pwf::ttree::handpipe
