// Section 3.4: inserting a sorted set of keys into a 2-6 tree.
//
// The driver decomposes the m sorted keys into lg m *well-separated* level
// arrays (median; quartiles; octiles; ...) — each array's adjacent keys are
// separated by a previously inserted key — and inserts them as successive
// waves. A wave publishes its new root in O(1) (keys known, children still
// futures), so wave i+1 runs one or two levels behind wave i down the tree:
// the paper's synchronous pipeline, obtained "by simply making the recursive
// call ... return a future".
//
//   bulk_insert        pipelined: depth O(lg n + lg m), work O(m lg n)
//   bulk_insert_strict waves fork-join internally and run one after the
//                      other: depth O(lg n · lg m) (Theorem 3.13 baseline)
//
// Duplicate keys (already present in the tree) are dropped — set semantics.
#pragma once

#include "ttree/ttree.hpp"

namespace pwf::ttree {

// Level decomposition of a sorted, duplicate-free key array: level 0 = the
// median, level 1 = first and third quartiles, etc. Each level, given that
// all previous levels were inserted, is well separated.
std::vector<std::vector<Key>> level_arrays(std::span<const Key> sorted);

// One pipelined wave: inserts the well-separated sorted `keys` into the tree
// in `root`, publishing the new tree under *out. Fork it.
void insert_wave(Store& st, TCell* root, std::span<const Key> keys,
                 TCell* out);

// Full pipelined bulk insert into a nonempty tree. Returns the final root
// cell (each wave's result cell feeds the next wave).
TCell* bulk_insert(Store& st, TCell* root, std::span<const Key> sorted);

// Strict baseline: each wave is a fork-join computation returning a complete
// tree; waves run back-to-back with no overlap.
TNode* insert_wave_strict(Store& st, TNode* root, std::span<const Key> keys);
TNode* bulk_insert_strict(Store& st, TNode* root,
                          std::span<const Key> sorted);

}  // namespace pwf::ttree
