#include "ttree/ttree.hpp"

#include <algorithm>

namespace pwf::ttree {

namespace {

// Max keys held by a tree of height h with internal fan-out at most f
// (every node holding f-1 keys): X(h) = f^h - 1.
std::uint64_t capacity(int h, int fanout) {
  std::uint64_t x = 1;
  for (int i = 0; i < h; ++i) x *= fanout;
  return x - 1;
}

TNode* build_rec(Store& st, std::span<const Key> keys, int h, int fanout) {
  if (h == 1) return st.make_leaf(keys);
  const std::uint64_t n = keys.size();
  const std::uint64_t child_cap = capacity(h - 1, fanout);
  // Smallest feasible fan-out f in [2, fanout] with f-1 + f*child_cap >= n.
  int f = 2;
  while (f < fanout &&
         static_cast<std::uint64_t>(f) - 1 + static_cast<std::uint64_t>(f) * child_cap < n)
    ++f;
  PWF_CHECK(static_cast<std::uint64_t>(f) - 1 +
                static_cast<std::uint64_t>(f) * child_cap >= n);
  // Distribute the n - (f-1) child keys as evenly as possible.
  const std::uint64_t child_total = n - (static_cast<std::uint64_t>(f) - 1);
  std::vector<Key> seps;
  std::vector<TCell*> children;
  std::size_t pos = 0;
  for (int i = 0; i < f; ++i) {
    std::uint64_t take = child_total / f + (static_cast<std::uint64_t>(i) <
                                                    child_total % f
                                                ? 1
                                                : 0);
    children.push_back(
        st.input(build_rec(st, keys.subspan(pos, take), h - 1, fanout)));
    pos += take;
    if (i + 1 < f) seps.push_back(keys[pos++]);
  }
  return st.make_internal(seps, children);
}

}  // namespace

TNode* Store::build(std::span<const Key> sorted, int fanout) {
  PWF_CHECK(fanout >= 3 && fanout <= kMaxChildren);
  if (sorted.empty()) return nullptr;
  int h = 1;
  while (capacity(h, fanout) < sorted.size()) ++h;
  return build_rec(*this, sorted, h, fanout);
}

void collect_keys(const TNode* root, std::vector<Key>& out) {
  if (root == nullptr) return;
  if (root->leaf) {
    for (int i = 0; i < root->nkeys; ++i) out.push_back(root->keys[i]);
    return;
  }
  for (int i = 0; i < root->nkeys; ++i) {
    collect_keys(peek(root->child[i]), out);
    out.push_back(root->keys[i]);
  }
  collect_keys(peek(root->child[root->nkeys]), out);
}

int height(const TNode* root) {
  if (root == nullptr) return 0;
  if (root->leaf) return 1;
  return 1 + height(peek(root->child[0]));
}

std::uint64_t count_keys(const TNode* root) {
  if (root == nullptr) return 0;
  std::uint64_t n = root->nkeys;
  if (!root->leaf)
    for (int i = 0; i <= root->nkeys; ++i) n += count_keys(peek(root->child[i]));
  return n;
}

cm::Time max_created(const TNode* root) {
  if (root == nullptr) return 0;
  cm::Time t = root->created;
  if (!root->leaf)
    for (int i = 0; i <= root->nkeys; ++i)
      t = std::max(t, max_created(peek(root->child[i])));
  return t;
}

namespace {

// Returns the leaf depth, or -1 on violation. lo/hi bound the subtree keys
// strictly (nullptr = unbounded).
int validate_rec(const TNode* n, const Key* lo, const Key* hi) {
  if (n == nullptr) return -1;  // null child of an internal node: invalid
  if (n->nkeys < 1 || n->nkeys > kMaxKeys) return -1;
  for (int i = 0; i < n->nkeys; ++i) {
    if (lo && n->keys[i] <= *lo) return -1;
    if (hi && n->keys[i] >= *hi) return -1;
    if (i > 0 && n->keys[i] <= n->keys[i - 1]) return -1;
  }
  if (n->leaf) return 1;
  int depth = -2;
  for (int i = 0; i <= n->nkeys; ++i) {
    const Key* clo = i == 0 ? lo : &n->keys[i - 1];
    const Key* chi = i == n->nkeys ? hi : &n->keys[i];
    const int d = validate_rec(peek(n->child[i]), clo, chi);
    if (d < 0) return -1;
    if (depth == -2)
      depth = d;
    else if (d != depth)
      return -1;  // leaves not all at the same level
  }
  return depth + 1;
}

}  // namespace

bool validate(const TNode* root) {
  if (root == nullptr) return true;
  return validate_rec(root, nullptr, nullptr) > 0;
}

bool contains(const TNode* root, Key k) {
  const TNode* n = root;
  while (n != nullptr) {
    int i = 0;
    while (i < n->nkeys && k > n->keys[i]) ++i;
    if (i < n->nkeys && k == n->keys[i]) return true;
    if (n->leaf) return false;
    n = peek(n->child[i]);
  }
  return false;
}

}  // namespace pwf::ttree
