#include "ttree/ttree.hpp"

namespace pwf::ttree {

namespace pt = pipelined::ttree;

void collect_keys(const TNode* root, std::vector<Key>& out) {
  pt::collect_keys(root, out);
}

int height(const TNode* root) { return pt::height(root); }

std::uint64_t count_keys(const TNode* root) { return pt::count_keys(root); }

cm::Time max_created(const TNode* root) { return pt::max_created(root); }

bool validate(const TNode* root) { return pt::validate(root); }

bool contains(const TNode* root, Key k) { return pt::contains(root, k); }

}  // namespace pwf::ttree
