#include "ttree/insert.hpp"

#include "pipelined/cm_exec.hpp"
#include "pipelined/exec.hpp"

namespace pwf::ttree {

namespace pl = pipelined;

// The bodies live in src/pipelined/ttree.hpp; on the cost-model substrate
// run_inline drives each coroutine to completion synchronously with the
// exact engine-action sequence of the old plain-function code (sealed by
// tests/recorded_counts_test.cpp).

std::vector<std::vector<Key>> level_arrays(std::span<const Key> sorted) {
  return pl::ttree::level_arrays(sorted);
}

void insert_wave(Store& st, TCell* root, std::span<const Key> keys,
                 TCell* out) {
  pl::run_inline(
      pl::ttree::insert_wave(pl::CmExec(st.engine()), st, root, keys, out));
}

TCell* bulk_insert(Store& st, TCell* root, std::span<const Key> sorted) {
  return pl::ttree::bulk_insert(pl::CmExec(st.engine()), st, root, sorted);
}

TNode* insert_wave_strict(Store& st, TNode* root, std::span<const Key> keys) {
  return pl::run_inline(pl::ttree::insert_wave_strict(
      pl::CmStrictExec(st.engine()), st, root, keys));
}

TNode* bulk_insert_strict(Store& st, TNode* root,
                          std::span<const Key> sorted) {
  return pl::run_inline(pl::ttree::bulk_insert_strict(
      pl::CmStrictExec(st.engine()), st, root, sorted));
}

}  // namespace pwf::ttree
