#include "ttree/insert.hpp"

#include <algorithm>
#include <functional>

namespace pwf::ttree {

namespace {

// Publishes a node into its destination cell, stamping t(v).
void publish(cm::Engine& eng, TCell* out, TNode* n) {
  eng.write(out, n);
  n->created = out->ts;
}

// A node must be split before the recursion enters it if it is not a 2-3
// node: internal with more than 3 children, or leaf with more than 2 keys.
bool needs_split(const TNode* n) {
  return n->leaf ? n->nkeys > 2 : n->nchildren() > 3;
}

struct NodeSplit {
  TNode* left;
  Key sep;
  TNode* right;
};

// Splits a 4-6-child internal node (or 3-5-key leaf) around its middle
// splitter. Only the node's own keys and child-cell pointers are needed —
// grandchildren may still be unwritten futures, so a wave can split a child
// the previous wave published moments ago.
NodeSplit split_node(Store& st, const TNode* n) {
  NodeSplit sp;
  if (n->leaf) {
    const int lk = n->nkeys / 2;
    sp = {st.make_leaf({n->keys, static_cast<std::size_t>(lk)}),
          n->keys[lk],
          st.make_leaf({n->keys + lk + 1,
                        static_cast<std::size_t>(n->nkeys - lk - 1)})};
  } else {
    const int nc = n->nchildren();
    const int lc = nc / 2;  // left child count
    TNode* l = st.make_internal({n->keys, static_cast<std::size_t>(lc - 1)},
                                {n->child, static_cast<std::size_t>(lc)});
    TNode* r = st.make_internal(
        {n->keys + lc, static_cast<std::size_t>(n->nkeys - lc)},
        {n->child + lc, static_cast<std::size_t>(nc - lc)});
    sp = {l, n->keys[lc - 1], r};
  }
  sp.left->created = st.engine().now();
  sp.right->created = sp.left->created;
  return sp;
}

// array_split: partitions the sorted `keys` around splitter `s` into (<s)
// and (>s); a key equal to s is dropped (already a member). The engine is
// charged the paper's O(1)-depth, O(|keys|)-work cost by the caller.
std::pair<std::span<const Key>, std::span<const Key>> array_split(
    std::span<const Key> keys, Key s) {
  const auto lo = std::lower_bound(keys.begin(), keys.end(), s);
  const std::size_t i = static_cast<std::size_t>(lo - keys.begin());
  std::size_t j = i;
  if (j < keys.size() && keys[j] == s) ++j;  // drop the duplicate
  return {keys.subspan(0, i), keys.subspan(j)};
}

// Output assembly buffer for one rebuilt node (at most 5 keys, 6 children).
struct Assembly {
  Key keys[kMaxKeys];
  TCell* child[kMaxChildren];
  int nk = 0;
  int nc = 0;

  void add_child(TCell* c) {
    PWF_CHECK(nc < kMaxChildren);
    child[nc++] = c;
  }
  void add_key(Key k) {
    PWF_CHECK(nk < kMaxKeys);
    keys[nk++] = k;
  }
};

void insert_rec(Store& st, TNode* t, std::span<const Key> keys, TCell* out);

// Handles one child slot that received a nonempty key range: touch the
// child, pre-emptively split it if it is not a 2-3 node (pulling the middle
// splitter up into `as`), and fork the recursive insertions.
void descend_child(Store& st, TCell* child_cell, std::span<const Key> keys,
                   Assembly& as) {
  cm::Engine& eng = st.engine();
  TNode* c = eng.touch(child_cell);
  eng.step();  // the needs-split check
  if (!needs_split(c)) {
    TCell* nc = st.cell();
    eng.fork([&] { insert_rec(st, c, keys, nc); });
    as.add_child(nc);
    return;
  }
  NodeSplit sp = split_node(st, c);
  eng.array_op(keys.size());
  auto [a1, a2] = array_split(keys, sp.sep);
  if (a1.empty()) {
    as.add_child(st.input(sp.left));
  } else {
    TCell* ncell = st.cell();
    eng.fork([&] { insert_rec(st, sp.left, a1, ncell); });
    as.add_child(ncell);
  }
  as.add_key(sp.sep);
  if (a2.empty()) {
    as.add_child(st.input(sp.right));
  } else {
    TCell* ncell = st.cell();
    eng.fork([&] { insert_rec(st, sp.right, a2, ncell); });
    as.add_child(ncell);
  }
}

void insert_rec(Store& st, TNode* t, std::span<const Key> keys, TCell* out) {
  cm::Engine& eng = st.engine();
  PWF_CHECK(!keys.empty());
  if (t->leaf) {
    // Merge into the leaf; well-separation guarantees the result fits.
    eng.array_op(keys.size() + t->nkeys);
    Key merged[kMaxKeys];
    std::span<const Key> old{t->keys, static_cast<std::size_t>(t->nkeys)};
    std::size_t n = 0, i = 0, j = 0;
    while (i < old.size() || j < keys.size()) {
      Key k;
      if (j == keys.size() || (i < old.size() && old[i] <= keys[j])) {
        k = old[i++];
        if (i - 1 < old.size() && j < keys.size() && k == keys[j]) ++j;
      } else {
        k = keys[j++];
      }
      PWF_CHECK_MSG(n < kMaxKeys,
                    "leaf overflow: key array was not well separated");
      merged[n++] = k;
    }
    publish(eng, out, st.make_leaf({merged, n}));
    return;
  }

  // Partition the keys by this node's splitters (the paper's array_split
  // applied once per splitter), then rebuild the node around the descents.
  Assembly as;
  std::span<const Key> rest = keys;
  for (int i = 0; i <= t->nkeys; ++i) {
    std::span<const Key> part;
    if (i < t->nkeys) {
      eng.array_op(rest.size());
      auto [lo, hi] = array_split(rest, t->keys[i]);
      part = lo;
      rest = hi;
    } else {
      part = rest;
    }
    if (part.empty())
      as.add_child(t->child[i]);  // untouched subtree, cell reused
    else
      descend_child(st, t->child[i], part, as);
    if (i < t->nkeys) as.add_key(t->keys[i]);
  }
  publish(eng, out,
          st.make_internal({as.keys, static_cast<std::size_t>(as.nk)},
                           {as.child, static_cast<std::size_t>(as.nc)}));
}

}  // namespace

std::vector<std::vector<Key>> level_arrays(std::span<const Key> sorted) {
  std::vector<std::vector<Key>> levels;
  // Pre-order recursion keeps each level's keys in sorted order.
  struct Fill {
    std::vector<std::vector<Key>>& levels;
    void operator()(std::span<const Key> keys, std::size_t depth) {
      if (keys.empty()) return;
      if (levels.size() <= depth) levels.resize(depth + 1);
      const std::size_t mid = keys.size() / 2;
      levels[depth].push_back(keys[mid]);
      (*this)(keys.subspan(0, mid), depth + 1);
      (*this)(keys.subspan(mid + 1), depth + 1);
    }
  };
  Fill{levels}(sorted, 0);
  return levels;
}

void insert_wave(Store& st, TCell* root, std::span<const Key> keys,
                 TCell* out) {
  cm::Engine& eng = st.engine();
  TNode* t = eng.touch(root);
  PWF_CHECK_MSG(t != nullptr, "bulk insert requires a nonempty tree");
  eng.step();
  if (needs_split(t)) {
    // Split the root and grow the tree by one level; the new root is a
    // 2-node, restoring the invariant.
    NodeSplit sp = split_node(st, t);
    Key sep[1] = {sp.sep};
    TCell* ch[2] = {st.input(sp.left), st.input(sp.right)};
    t = st.make_internal(sep, ch);
  }
  insert_rec(st, t, keys, out);
}

TCell* bulk_insert(Store& st, TCell* root, std::span<const Key> sorted) {
  cm::Engine& eng = st.engine();
  if (sorted.empty()) return root;
  std::vector<std::vector<Key>> levels = level_arrays(sorted);
  for (auto& level : levels) {
    const std::span<const Key> keys = st.hold(std::move(level));
    TCell* out = st.cell();
    eng.fork([&] { insert_wave(st, root, keys, out); });
    root = out;
  }
  return root;
}

// ---- strict baseline ---------------------------------------------------------

namespace {

TNode* insert_rec_strict(Store& st, TNode* t, std::span<const Key> keys);

TNode* descend_strict(Store& st, TNode* c, std::span<const Key> keys) {
  return insert_rec_strict(st, c, keys);
}

TNode* insert_rec_strict(Store& st, TNode* t, std::span<const Key> keys) {
  cm::Engine& eng = st.engine();
  PWF_CHECK(!keys.empty());
  if (t->leaf) {
    eng.array_op(keys.size() + t->nkeys);
    std::vector<Key> merged;
    std::span<const Key> old{t->keys, static_cast<std::size_t>(t->nkeys)};
    std::merge(old.begin(), old.end(), keys.begin(), keys.end(),
               std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    PWF_CHECK_MSG(merged.size() <= kMaxKeys,
                  "leaf overflow: key array was not well separated");
    return st.make_leaf(merged);
  }

  Assembly as;
  // Slots to fill in parallel: (child node, keys, output index in Assembly).
  struct Job {
    TNode* node;
    std::span<const Key> keys;
    int slot;
  };
  std::vector<Job> jobs;
  std::span<const Key> rest = keys;
  for (int i = 0; i <= t->nkeys; ++i) {
    std::span<const Key> part;
    if (i < t->nkeys) {
      eng.array_op(rest.size());
      auto [lo, hi] = array_split(rest, t->keys[i]);
      part = lo;
      rest = hi;
    } else {
      part = rest;
    }
    if (part.empty()) {
      as.add_child(t->child[i]);
    } else {
      TNode* c = peek(t->child[i]);
      eng.step();
      if (!needs_split(c)) {
        jobs.push_back({c, part, as.nc});
        as.add_child(nullptr);  // placeholder
      } else {
        NodeSplit sp = split_node(st, c);
        eng.array_op(part.size());
        auto [a1, a2] = array_split(part, sp.sep);
        if (a1.empty()) {
          as.add_child(st.input(sp.left));
        } else {
          jobs.push_back({sp.left, a1, as.nc});
          as.add_child(nullptr);
        }
        as.add_key(sp.sep);
        if (a2.empty()) {
          as.add_child(st.input(sp.right));
        } else {
          jobs.push_back({sp.right, a2, as.nc});
          as.add_child(nullptr);
        }
      }
    }
    if (i < t->nkeys) as.add_key(t->keys[i]);
  }

  // Run the child insertions in parallel (fork-join), then assemble.
  std::vector<std::function<void()>> thunks;
  thunks.reserve(jobs.size());
  for (Job& job : jobs)
    thunks.push_back([&st, &as, job] {
      as.child[job.slot] = st.input(descend_strict(st, job.node, job.keys));
    });
  fork_join_all(eng, std::span<std::function<void()>>(thunks));

  return st.make_internal({as.keys, static_cast<std::size_t>(as.nk)},
                          {as.child, static_cast<std::size_t>(as.nc)});
}

}  // namespace

TNode* insert_wave_strict(Store& st, TNode* root,
                          std::span<const Key> keys) {
  cm::Engine& eng = st.engine();
  PWF_CHECK_MSG(root != nullptr, "bulk insert requires a nonempty tree");
  eng.step();
  TNode* t = root;
  if (needs_split(t)) {
    NodeSplit sp = split_node(st, t);
    Key sep[1] = {sp.sep};
    TCell* ch[2] = {st.input(sp.left), st.input(sp.right)};
    t = st.make_internal(sep, ch);
  }
  return insert_rec_strict(st, t, keys);
}

TNode* bulk_insert_strict(Store& st, TNode* root,
                          std::span<const Key> sorted) {
  if (sorted.empty()) return root;
  for (auto& level : level_arrays(sorted)) {
    const std::span<const Key> keys = st.hold(std::move(level));
    root = insert_wave_strict(st, root, keys);
  }
  return root;
}

}  // namespace pwf::ttree
