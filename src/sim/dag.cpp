#include "sim/dag.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pwf::sim {

Dag::Dag(const cm::Trace& trace) {
  num_actions_ = trace.num_actions();
  const auto edges = trace.edges();

  succ_off_.assign(num_actions_ + 1, 0);
  in_degree_.assign(num_actions_, 0);
  for (const auto& e : edges) {
    PWF_CHECK_MSG(e.src < e.dst, "trace edge violates topological order");
    ++succ_off_[e.src + 1];
    ++in_degree_[e.dst];
  }
  for (std::size_t i = 1; i <= num_actions_; ++i)
    succ_off_[i] += succ_off_[i - 1];
  succ_.resize(edges.size());
  std::vector<std::uint64_t> fill(succ_off_.begin(), succ_off_.end() - 1);
  for (const auto& e : edges) succ_[fill[e.src]++] = e.dst;

  // Longest path by one pass in topological (= id) order.
  std::vector<std::uint32_t> dist(num_actions_, 1);
  std::uint64_t best = num_actions_ > 0 ? 1 : 0;
  for (std::uint32_t a = 0; a < num_actions_; ++a) {
    const std::uint32_t da = dist[a];
    if (da > best) best = da;
    for (std::uint32_t s : successors(a))
      dist[s] = std::max(dist[s], da + 1);
  }
  depth_ = best;

  reads_.assign(num_actions_, cm::kNoCell);
  writes_.assign(num_actions_, cm::kNoCell);
  std::uint32_t max_cell = 0;
  for (const auto& [a, c] : trace.reads()) {
    reads_[a] = c;
    max_cell = std::max(max_cell, c + 1);
  }
  for (const auto& [a, c] : trace.writes()) {
    writes_[a] = c;
    max_cell = std::max(max_cell, c + 1);
  }
  num_cells_ = max_cell;
}

}  // namespace pwf::sim
