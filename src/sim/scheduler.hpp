// Section 4's provably efficient runtime, as a discrete-event simulator.
//
// The paper's implementation keeps the set S of active threads on a stack;
// each step removes m = min(|S|, p) threads from the top, executes one
// action of each (possibly suspending on a future-cell read or reactivating
// a suspended thread on a write), and uses a plus-scan to place the returned
// threads back on S without concurrent writes. Because the schedule is
// greedy, the number of steps is at most w/p + d (Blumofe–Leiserson via
// Brent), which is Lemma 4.1's O(w/p + d) EREW-scan-model time.
//
// At the DAG level, "one action of each selected thread" is exactly "execute
// a ready action and enable its successors": a thread's next action is ready
// iff all its dependence edges (thread, fork, data) are satisfied, a suspend
// is an action whose data edge is missing (it is simply not ready and sits
// outside S), and a reactivation is the write action enabling the stalled
// touch action. The simulator therefore replays recorded computation DAGs,
// counting steps, the peak size of S (the space the paper's stack-vs-queue
// remark is about), and auditing EREW and linearity.
#pragma once

#include <cstdint>

#include "sim/dag.hpp"

namespace pwf::sim {

enum class Discipline {
  kStack,  // the paper's choice: LIFO, "probably much better for space"
  kQueue,  // FIFO ablation (breadth-first)
};

struct ScheduleResult {
  std::uint64_t steps = 0;     // scheduler steps = simulated time
  std::uint64_t work = 0;      // actions executed (== dag.work())
  std::uint64_t depth = 0;     // dag.depth(), for the bound
  std::uint64_t max_live = 0;  // peak |S| (active-set space)
  std::uint64_t scans = 0;     // plus-scan invocations (one per step)

  bool erew_ok = true;    // no two same-cell reads scheduled on one step
  bool linear_ok = true;  // every cell read at most once over the whole run

  // The Lemma 4.1 / Brent bound, steps <= w/p + d, checked exactly in
  // integers as steps * p <= w + d * p.
  bool within_bound(std::uint64_t p) const {
    return steps * p <= work + depth * p;
  }
};

// Greedy p-processor schedule of the DAG under the given discipline.
ScheduleResult schedule(const Dag& dag, std::uint64_t p, Discipline d);

}  // namespace pwf::sim
