// Compiled computation DAG, built from a cost-model trace.
//
// Action ids are assigned in (eager) execution order, which is a valid
// topological order — every thread, fork, and data edge points from a lower
// id to a higher id. The compiler below turns the trace's edge list into CSR
// adjacency plus per-action in-degrees and cell annotations, ready for the
// greedy scheduler to replay.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "costmodel/trace.hpp"

namespace pwf::sim {

class Dag {
 public:
  explicit Dag(const cm::Trace& trace);

  std::uint64_t num_actions() const { return num_actions_; }
  std::uint64_t work() const { return num_actions_; }
  // Longest path in actions (so a chain of k actions has depth k). Matches
  // the cost model's depth measure.
  std::uint64_t depth() const { return depth_; }

  std::span<const std::uint32_t> successors(std::uint32_t a) const {
    return {succ_.data() + succ_off_[a], succ_off_[a + 1] - succ_off_[a]};
  }
  std::uint32_t in_degree(std::uint32_t a) const { return in_degree_[a]; }

  // Cell read/written by the action, or cm::kNoCell.
  cm::CellId read_cell(std::uint32_t a) const { return reads_[a]; }
  cm::CellId write_cell(std::uint32_t a) const { return writes_[a]; }

  std::uint32_t num_cells() const { return num_cells_; }

 private:
  std::uint64_t num_actions_ = 0;
  std::uint64_t depth_ = 0;
  std::uint32_t num_cells_ = 0;
  std::vector<std::uint64_t> succ_off_;
  std::vector<std::uint32_t> succ_;
  std::vector<std::uint32_t> in_degree_;
  std::vector<cm::CellId> reads_;
  std::vector<cm::CellId> writes_;
};

}  // namespace pwf::sim
