#include "sim/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <vector>

#include "support/check.hpp"

namespace pwf::sim {

ScheduleResult schedule(const Dag& dag, std::uint64_t p, Discipline d) {
  PWF_CHECK(p >= 1);
  ScheduleResult res;
  res.work = dag.work();
  res.depth = dag.depth();
  if (dag.num_actions() == 0) return res;

  std::vector<std::uint32_t> pending(dag.num_actions());
  std::deque<std::uint32_t> active;  // S: back = stack top / queue tail
  for (std::uint32_t a = 0; a < dag.num_actions(); ++a) {
    pending[a] = dag.in_degree(a);
    if (pending[a] == 0) active.push_back(a);
  }

  std::vector<std::uint8_t> cell_reads(dag.num_cells(), 0);
  std::vector<std::uint32_t> batch;
  std::vector<cm::CellId> batch_reads;
  std::uint64_t executed = 0;

  while (!active.empty()) {
    res.max_live = std::max<std::uint64_t>(res.max_live, active.size());
    // Remove m = min(|S|, p) threads from the top of the stack (or the
    // front of the queue in the FIFO ablation).
    const std::size_t m = std::min<std::size_t>(active.size(), p);
    batch.clear();
    for (std::size_t i = 0; i < m; ++i) {
      if (d == Discipline::kStack) {
        batch.push_back(active.back());
        active.pop_back();
      } else {
        batch.push_back(active.front());
        active.pop_front();
      }
    }

    // Execute one action of each selected thread: audit cell accesses, then
    // enable successors (new threads from forks, continuations, and
    // reactivated suspended threads).
    batch_reads.clear();
    for (std::uint32_t a : batch) {
      const cm::CellId rc = dag.read_cell(a);
      if (rc != cm::kNoCell) {
        batch_reads.push_back(rc);
        if (++cell_reads[rc] > 1) res.linear_ok = false;
      }
    }
    std::sort(batch_reads.begin(), batch_reads.end());
    if (std::adjacent_find(batch_reads.begin(), batch_reads.end()) !=
        batch_reads.end())
      res.erew_ok = false;

    for (std::uint32_t a : batch) {
      ++executed;
      for (std::uint32_t s : dag.successors(a))
        if (--pending[s] == 0) active.push_back(s);
    }
    ++res.steps;
    ++res.scans;  // the paper's per-step plus-scan for placing threads back
  }

  PWF_CHECK_MSG(executed == dag.num_actions(),
                "deadlock: DAG has unexecutable actions");
  return res;
}

}  // namespace pwf::sim
