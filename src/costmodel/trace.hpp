// Computation-DAG trace recorded by the cost-model engine.
//
// The Section-4 simulator replays these traces: it needs, per action, the set
// of incoming edges (to know when the action becomes ready) and outgoing
// edges (to know what a completed action enables), plus which cell each
// action reads/writes for the EREW and linearity audits. Actions are numbered
// in execution (= creation) order, which is a valid topological order.
//
// For the pwf-analyze verifier (src/analyze) the trace additionally tags
// every edge with its kind (thread / fork / data / join), records which
// thread each action belongs to, and notes cells that were preset as input
// data (available at time 0, so a read of them needs no ordering write).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace pwf::cm {

using ActionId = std::uint32_t;
using CellId = std::uint32_t;
using ThreadId = std::uint32_t;

inline constexpr ActionId kNoAction = 0xFFFFFFFFu;
// Placeholder id used when tracing is off (distinguishes "thread has a
// predecessor" from "first action of a thread" without allocating ids).
inline constexpr ActionId kActionUntraced = 0xFFFFFFFEu;
inline constexpr CellId kNoCell = 0xFFFFFFFFu;

// The paper's three dependence-edge kinds, plus the join edge of the strict
// fork-join baseline (a control dependence that is neither a thread
// successor nor a future-cell data edge).
enum class EdgeKind : std::uint8_t {
  kThread,  // successive actions of one thread
  kFork,    // future-creating action -> child's first action
  kData,    // cell write -> cell touch
  kJoin,    // child's last action -> fork-join2 join action
};

inline const char* edge_kind_name(EdgeKind k) {
  switch (k) {
    case EdgeKind::kThread: return "thread";
    case EdgeKind::kFork: return "fork";
    case EdgeKind::kData: return "data";
    case EdgeKind::kJoin: return "join";
  }
  return "?";
}

class Trace {
 public:
  struct Edge {
    ActionId src;
    ActionId dst;
    EdgeKind kind;
  };

  ActionId new_action(ThreadId thread = 0) {
    threads_.push_back(thread);
    return static_cast<ActionId>(num_actions_++);
  }

  void add_edge(ActionId src, ActionId dst, EdgeKind kind = EdgeKind::kThread) {
    edges_.push_back({src, dst, kind});
  }

  void record_read(ActionId a, CellId c) { reads_.push_back({a, c}); }
  void record_write(ActionId a, CellId c) { writes_.push_back({a, c}); }
  // Marks `c` as preset input data (available at time 0): its reads need no
  // write action. May be called repeatedly for the same cell.
  void note_preset(CellId c) { presets_.push_back(c); }

  std::uint64_t num_actions() const { return num_actions_; }
  std::span<const Edge> edges() const { return edges_; }
  // Thread id of each action, indexed by ActionId.
  std::span<const ThreadId> threads() const { return threads_; }
  std::span<const std::pair<ActionId, CellId>> reads() const {
    return reads_;
  }
  std::span<const std::pair<ActionId, CellId>> writes() const {
    return writes_;
  }
  std::span<const CellId> presets() const { return presets_; }

 private:
  std::uint64_t num_actions_ = 0;
  std::vector<Edge> edges_;
  std::vector<ThreadId> threads_;
  std::vector<std::pair<ActionId, CellId>> reads_;
  std::vector<std::pair<ActionId, CellId>> writes_;
  std::vector<CellId> presets_;
};

}  // namespace pwf::cm
