// Computation-DAG trace recorded by the cost-model engine.
//
// The Section-4 simulator replays these traces: it needs, per action, the set
// of incoming edges (to know when the action becomes ready) and outgoing
// edges (to know what a completed action enables), plus which cell each
// action reads/writes for the EREW and linearity audits. Actions are numbered
// in execution (= creation) order, which is a valid topological order.
//
// For the pwf-analyze verifier (src/analyze) the trace additionally tags
// every edge with its kind (thread / fork / data / join), records which
// thread each action belongs to, and notes cells that were preset as input
// data (available at time 0, so a read of them needs no ordering write).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace pwf::cm {

using ActionId = std::uint32_t;
using CellId = std::uint32_t;
using ThreadId = std::uint32_t;

inline constexpr ActionId kNoAction = 0xFFFFFFFFu;
// Placeholder id used when tracing is off (distinguishes "thread has a
// predecessor" from "first action of a thread" without allocating ids).
inline constexpr ActionId kActionUntraced = 0xFFFFFFFEu;
inline constexpr CellId kNoCell = 0xFFFFFFFFu;

// The paper's three dependence-edge kinds, plus the join edge of the strict
// fork-join baseline (a control dependence that is neither a thread
// successor nor a future-cell data edge).
enum class EdgeKind : std::uint8_t {
  kThread,  // successive actions of one thread
  kFork,    // future-creating action -> child's first action
  kData,    // cell write -> cell touch
  kJoin,    // child's last action -> fork-join2 join action
};

inline const char* edge_kind_name(EdgeKind k) {
  switch (k) {
    case EdgeKind::kThread: return "thread";
    case EdgeKind::kFork: return "fork";
    case EdgeKind::kData: return "data";
    case EdgeKind::kJoin: return "join";
  }
  return "?";
}

// Optional per-action tags. Most actions are untagged unit steps (kGeneric);
// the recording substrate (src/analyze/rec_exec.hpp) tags the runtime's
// coarsened operations so the verifier and the simulator can see them:
//   kLeafOp        — a chunked-leaf rebuild/merge/split; payload = number of
//                    keys the leaf operation covered.
//   kSerialCutoff  — a subtree fell under the serial threshold and ran as a
//                    plain recursive call; payload unused (0).
//   kAugOp         — an augmented-value recomputation (aug_into combining a
//                    node's subtree aggregate); payload unused (0).
enum class ActionKind : std::uint8_t {
  kGeneric,
  kLeafOp,
  kSerialCutoff,
  kAugOp,
};

inline const char* action_kind_name(ActionKind k) {
  switch (k) {
    case ActionKind::kGeneric: return "generic";
    case ActionKind::kLeafOp: return "leaf-op";
    case ActionKind::kSerialCutoff: return "serial-cutoff";
    case ActionKind::kAugOp: return "aug-op";
  }
  return "?";
}

class Trace {
 public:
  struct Edge {
    ActionId src;
    ActionId dst;
    EdgeKind kind;
  };

  struct Tag {
    ActionId action;
    ActionKind kind;
    std::uint64_t payload;  // kLeafOp: key count; otherwise 0
  };

  ActionId new_action(ThreadId thread = 0) {
    threads_.push_back(thread);
    return static_cast<ActionId>(num_actions_++);
  }

  void add_edge(ActionId src, ActionId dst, EdgeKind kind = EdgeKind::kThread) {
    edges_.push_back({src, dst, kind});
  }

  void record_read(ActionId a, CellId c) { reads_.push_back({a, c}); }
  void record_write(ActionId a, CellId c) { writes_.push_back({a, c}); }
  // Marks `c` as preset input data (available at time 0): its reads need no
  // write action. May be called repeatedly for the same cell.
  void note_preset(CellId c) { presets_.push_back(c); }

  // Tags an existing action with a coarsened-operation kind (see ActionKind).
  void tag_action(ActionId a, ActionKind kind, std::uint64_t payload = 0) {
    tags_.push_back({a, kind, payload});
  }

  // Opens a new storage epoch: all actions recorded from now on belong to it.
  // Epoch boundaries are compaction points — a store is rebuilt wholesale and
  // the previous arena freed, so a data edge must never cross one (the
  // verifier's epoch check). Epoch 0 exists implicitly from the start.
  void new_epoch() { epoch_marks_.push_back(num_actions_); }

  // Epoch an action belongs to: the number of marks at or before its id.
  std::uint32_t epoch_of(ActionId a) const {
    const auto it = std::upper_bound(epoch_marks_.begin(), epoch_marks_.end(),
                                     static_cast<std::uint64_t>(a));
    return static_cast<std::uint32_t>(it - epoch_marks_.begin());
  }
  std::uint32_t num_epochs() const {
    return static_cast<std::uint32_t>(epoch_marks_.size()) + 1;
  }

  std::uint64_t num_actions() const { return num_actions_; }
  std::span<const Edge> edges() const { return edges_; }
  // Thread id of each action, indexed by ActionId.
  std::span<const ThreadId> threads() const { return threads_; }
  std::span<const std::pair<ActionId, CellId>> reads() const {
    return reads_;
  }
  std::span<const std::pair<ActionId, CellId>> writes() const {
    return writes_;
  }
  std::span<const CellId> presets() const { return presets_; }
  std::span<const Tag> tags() const { return tags_; }
  // Action-id boundaries of the epochs after the implicit epoch 0 (ascending).
  std::span<const std::uint64_t> epoch_marks() const { return epoch_marks_; }

 private:
  std::uint64_t num_actions_ = 0;
  std::vector<Edge> edges_;
  std::vector<ThreadId> threads_;
  std::vector<std::pair<ActionId, CellId>> reads_;
  std::vector<std::pair<ActionId, CellId>> writes_;
  std::vector<CellId> presets_;
  std::vector<Tag> tags_;
  std::vector<std::uint64_t> epoch_marks_;
};

}  // namespace pwf::cm
