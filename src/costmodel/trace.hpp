// Computation-DAG trace recorded by the cost-model engine.
//
// The Section-4 simulator replays these traces: it needs, per action, the set
// of incoming edges (to know when the action becomes ready) and outgoing
// edges (to know what a completed action enables), plus which cell each
// action reads/writes for the EREW and linearity audits. Actions are numbered
// in execution (= creation) order, which is a valid topological order.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace pwf::cm {

using ActionId = std::uint32_t;
using CellId = std::uint32_t;

inline constexpr ActionId kNoAction = 0xFFFFFFFFu;
// Placeholder id used when tracing is off (distinguishes "thread has a
// predecessor" from "first action of a thread" without allocating ids).
inline constexpr ActionId kActionUntraced = 0xFFFFFFFEu;
inline constexpr CellId kNoCell = 0xFFFFFFFFu;

class Trace {
 public:
  struct Edge {
    ActionId src;
    ActionId dst;
  };

  ActionId new_action() {
    return static_cast<ActionId>(num_actions_++);
  }

  void add_edge(ActionId src, ActionId dst) { edges_.push_back({src, dst}); }

  void record_read(ActionId a, CellId c) { reads_.push_back({a, c}); }
  void record_write(ActionId a, CellId c) { writes_.push_back({a, c}); }

  std::uint64_t num_actions() const { return num_actions_; }
  std::span<const Edge> edges() const { return edges_; }
  std::span<const std::pair<ActionId, CellId>> reads() const {
    return reads_;
  }
  std::span<const std::pair<ActionId, CellId>> writes() const {
    return writes_;
  }

 private:
  std::uint64_t num_actions_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::pair<ActionId, CellId>> reads_;
  std::vector<std::pair<ActionId, CellId>> writes_;
};

}  // namespace pwf::cm
