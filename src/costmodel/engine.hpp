// The paper's language-based cost model (Section 2) as an executable engine.
//
// A computation is a dynamically unfolding DAG: each node is a unit-time
// *action*, and edges are
//   - thread edges   between successive actions of one thread,
//   - fork edges     from a future-creating action to the child's first action,
//   - data edges     from the action writing a future cell to each action
//                    reading (touching) it.
// Cost = work (number of nodes) and depth (longest path).
//
// Execution strategy. The programs we model are purely functional, so any
// read pointer reachable by a thread refers to a cell whose writer thread was
// forked *earlier*. Evaluating every future eagerly at its fork point is
// therefore a valid linearization that never touches an unwritten cell. The
// engine exploits this: algorithms run as ordinary sequential recursion while
// the engine maintains per-thread clocks,
//     fork:   child's first action at t(fork)+1,
//     touch:  t = max(clock, cell.ts) + 1      (the data edge),
//     write:  cell.ts = t(write),
// so the measured depth is exactly the longest path of the paper's DAG with
// no real concurrency — deterministic and exact, not sampled.
//
// Two primitive families:
//   * fork/touch/write cells  — the futures (pipelined) semantics;
//   * fork_join2/_seq calls   — the strict fork-join baseline ("make the two
//     recursive calls in parallel after the sequential split is complete"),
//     used by the paper as the non-pipelined comparison point.
//
// The engine can optionally record the full DAG (see trace.hpp) for replay by
// the Section-4 greedy-schedule simulator, and audits *linearity*: in code
// converted to linear form every future cell is read at most once (paper
// Section 4); `max_cell_reads()` reports the observed maximum.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>

#include "costmodel/trace.hpp"
#include "support/analyze_mode.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"

namespace pwf::cm {

using Time = std::uint64_t;

// A write-once future cell. With eager evaluation `value` is always present
// by the time it is touched; `ts` is the DAG timestamp of the write action,
// which may lie in the toucher's future — that gap is the pipeline delay.
//
// Cells for algorithm data structures are usually embedded directly in tree
// nodes (see the tree libraries); Engine::new_cell() provides arena-backed
// standalone cells.
template <typename T>
struct Cell {
  static_assert(std::is_trivially_destructible_v<T>);
  T value{};
  Time ts = 0;
  ActionId writer = kNoAction;  // write action (traces/data edges)
  CellId id = kNoCell;          // assigned lazily when traced
  std::uint32_t reads = 0;
  bool written = false;
};

class Engine {
 public:
  // In analyze mode (support/analyze_mode.hpp: the PWF_ANALYZE env var or a
  // binary's --analyze flag) every engine records its DAG and the destructor
  // runs the pwf-analyze verifier over it.
  explicit Engine(bool trace_enabled = false)
      : trace_(trace_enabled || analyze_mode() ? new Trace() : nullptr) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  // ---- actions ------------------------------------------------------------

  // One unit action in the current thread (local computation step).
  void step() { act(); }

  // k unit actions (a sequential loop); traced as a chain.
  void steps(std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) act();
  }

  // The paper's array primitive (Section 3.4): O(1) depth, O(n) work,
  // modelled as a breadth-n, depth-2 DAG (Figure 9).
  void array_op(std::uint64_t n);

  // One unit action tagged as a chunked-leaf operation covering `keys` keys
  // (recording substrate: makes the runtime's leaf fast paths visible as
  // explicit DAG nodes instead of untagged steps).
  void leaf_op(std::uint64_t keys) {
    act();
    ++leaf_ops_;
    if (trace_) trace_->tag_action(last_action_, ActionKind::kLeafOp, keys);
  }

  // One unit action tagged as a serial cutoff: the subtree below fell under
  // the substrate's serial threshold and ran as a plain recursive call.
  void serial_cutoff() {
    act();
    ++serial_cutoffs_;
    if (trace_)
      trace_->tag_action(last_action_, ActionKind::kSerialCutoff);
  }

  // One unit action tagged as an augmented-value recomputation (the
  // aug_into fiber combining a node's subtree aggregate).
  void aug_op() {
    act();
    ++aug_ops_;
    if (trace_) trace_->tag_action(last_action_, ActionKind::kAugOp);
  }

  // Opens a new storage epoch in the trace (a compaction point: the store is
  // rebuilt wholesale; data edges must not cross it). No engine action.
  void new_epoch() {
    if (trace_) trace_->new_epoch();
  }

  // ---- future cells ---------------------------------------------------------

  template <typename T>
  Cell<T>* new_cell() {
    return cells_.create<Cell<T>>();
  }

  // A cell pre-written with input data, available at time 0 (used to wrap
  // the nodes of input trees so touching input and computed data is uniform).
  template <typename T>
  Cell<T>* input_cell(T v) {
    Cell<T>* c = cells_.create<Cell<T>>();
    c->value = std::move(v);
    c->ts = 0;
    c->written = true;
    return c;
  }

  // Mark an *embedded* cell (one living inside a caller-owned node) as input
  // data available at time 0.
  template <typename T>
  static void preset(Cell<T>& c, T v) {
    c.value = std::move(v);
    c.ts = 0;
    c.written = true;
  }

  // Write action: publishes the value with the current DAG timestamp.
  template <typename T>
  void write(Cell<T>* c, T v) {
    PWF_CHECK_MSG(!c->written, "future cell written twice");
    act();
    c->value = std::move(v);
    c->ts = clock_;
    c->writer = last_action_;
    c->written = true;
    if (trace_) trace_->record_write(last_action_, cell_id(c));
  }

  // Touch (read) action: strict use of the cell's value. Advances the clock
  // past the writer's timestamp — this is the data edge.
  template <typename T>
  const T& touch(Cell<T>* c) {
    PWF_CHECK_MSG(c->written, "touched an unwritten cell (invalid eager order)");
    ++c->reads;
    if (c->reads > max_cell_reads_) max_cell_reads_ = c->reads;
    if (c->reads > 1) ++nonlinear_reads_;
    const Time dep = c->ts;
    const ActionId writer = c->writer;
    // Pipeline-delay accounting: how long this touch would have suspended.
    ++waits_.touches;
    if (dep > clock_) {
      const Time w = dep - clock_;
      ++waits_.suspensions;
      waits_.total_wait += w;
      if (w > waits_.max_wait) waits_.max_wait = w;
    }
    act_with_dep(dep, writer, EdgeKind::kData);
    if (trace_) {
      const CellId id = cell_id(c);
      // A written cell with no writer action is preset input data; note it
      // so the verifier knows its reads need no ordering write.
      if (writer == kNoAction) trace_->note_preset(id);
      trace_->record_read(last_action_, id);
    }
    return c->value;
  }

  // Timestamp of a cell without reading it (analysis/property tests only;
  // does not create an action or an edge).
  template <typename T>
  static Time stamp_of(const Cell<T>& c) {
    return c.ts;
  }

  // ---- futures (pipelined) forks -------------------------------------------

  // Fork a child thread. `fn` runs eagerly under the child's clock and should
  // publish its results by writing cells (possibly several, at different
  // times — the multi-result futures the paper needs for splitm).
  template <typename F>
  void fork(F&& fn) {
    act();  // the fork action
    const Time fork_time = clock_;
    const ActionId fork_act = last_action_;
    const Time parent_clock = clock_;
    const ActionId parent_last = last_action_;
    const ThreadId parent_thread = cur_thread_;
    // Enter child: its first action hangs off the fork edge.
    clock_ = fork_time;
    last_action_ = kNoAction;
    pending_fork_edge_ = fork_act;
    cur_thread_ = next_thread_++;
    fn();
    pending_fork_edge_ = kNoAction;
    // Leave child: parent resumes at its own clock.
    clock_ = parent_clock;
    last_action_ = parent_last;
    cur_thread_ = parent_thread;
  }

  // Fork a child computing a single value into a fresh cell.
  template <typename F>
  auto fork_value(F&& fn) -> Cell<std::invoke_result_t<F>>* {
    using T = std::invoke_result_t<F>;
    Cell<T>* c = new_cell<T>();
    fork([&] { write(c, fn()); });
    return c;
  }

  // Fork a child that writes into a caller-provided (usually node-embedded)
  // cell.
  template <typename T, typename F>
  void fork_into(Cell<T>* c, F&& fn) {
    fork([&] { write(c, fn()); });
  }

  // ---- strict fork-join (non-pipelined baseline) ----------------------------

  // Runs f0 and f1 as parallel children and joins: the caller's clock
  // afterwards is past *both* children's completion. Returns their results as
  // plain (fully available) values.
  template <typename F0, typename F1>
  auto fork_join2(F0&& f0, F1&& f1)
      -> std::pair<std::invoke_result_t<F0>, std::invoke_result_t<F1>> {
    act();  // fork action
    const Time t = clock_;
    const ActionId fork_act = last_action_;
    const ThreadId parent_thread = cur_thread_;

    clock_ = t;
    last_action_ = kNoAction;
    pending_fork_edge_ = fork_act;
    cur_thread_ = next_thread_++;
    auto r0 = f0();
    const Time t0 = clock_;
    const ActionId l0 = last_action_;

    clock_ = t;
    last_action_ = kNoAction;
    pending_fork_edge_ = fork_act;
    cur_thread_ = next_thread_++;
    auto r1 = f1();
    const Time t1 = clock_;
    const ActionId l1 = last_action_;
    pending_fork_edge_ = kNoAction;
    cur_thread_ = parent_thread;

    // Join action: depends on both children's last actions. A child that
    // executed no actions contributes the fork action itself (its end time
    // is the fork time), so the traced DAG keeps the same critical path as
    // the clock accounting.
    clock_ = t0 > t1 ? t0 : t1;
    last_action_ = l0 == kNoAction ? fork_act : l0;
    act_with_dep(t1, l1 == kNoAction ? fork_act : l1, EdgeKind::kJoin);
    return {std::move(r0), std::move(r1)};
  }

  // ---- results --------------------------------------------------------------

  Time now() const { return clock_; }
  // Depth of the computation so far = latest action anywhere in the DAG.
  Time depth() const { return max_time_; }
  std::uint64_t work() const { return work_; }

  // Linearity audit (paper Section 4): max times any one cell was read, and
  // the number of reads beyond the first on any cell. Linear code has
  // max_cell_reads() <= 1 and nonlinear_reads() == 0.
  std::uint32_t max_cell_reads() const { return max_cell_reads_; }
  std::uint64_t nonlinear_reads() const { return nonlinear_reads_; }

  // Coarsened-operation counters (recording substrate).
  std::uint64_t leaf_ops() const { return leaf_ops_; }
  std::uint64_t serial_cutoffs() const { return serial_cutoffs_; }
  std::uint64_t aug_ops() const { return aug_ops_; }

  // Declares the trace concurrent-read (CREW): augmented bodies re-read node
  // cells from their aug fibers, so the destructor's analyze-mode
  // verification must relax the EREW-by-level check (races are still
  // impossible — every touch records its data edge). See docs/augmentation.md.
  void set_crew(bool crew) { crew_ = crew; }

  // Pipeline-delay profile: a touch "suspends" when the writer's timestamp
  // lies ahead of the toucher's clock; the wait is the data-edge slack.
  // These are the dynamic pipeline delays of Sections 3.1–3.3 (data
  // dependent) versus the constant delays of Section 3.4.
  struct WaitStats {
    std::uint64_t touches = 0;      // total touch actions
    std::uint64_t suspensions = 0;  // touches that had to wait
    Time total_wait = 0;            // sum of waits
    Time max_wait = 0;              // longest single wait
  };
  const WaitStats& wait_stats() const { return waits_; }

  const Trace* trace() const { return trace_; }

 private:
  // A unit action whose only dependence is the thread/fork predecessor.
  void act() {
    const Time t = clock_ + 1;
    finish_action(t, kNoAction, EdgeKind::kData);
  }

  // A unit action with an extra dependence (data edge or join edge).
  void act_with_dep(Time dep_time, ActionId dep_act, EdgeKind dep_kind) {
    const Time t = (clock_ > dep_time ? clock_ : dep_time) + 1;
    finish_action(t, dep_act, dep_kind);
  }

  void finish_action(Time t, ActionId extra_dep, EdgeKind dep_kind) {
    ++work_;
    clock_ = t;
    if (t > max_time_) max_time_ = t;
    if (trace_) {
      const ActionId id = trace_->new_action(cur_thread_);
      if (last_action_ != kNoAction)
        trace_->add_edge(last_action_, id, EdgeKind::kThread);
      if (pending_fork_edge_ != kNoAction) {
        trace_->add_edge(pending_fork_edge_, id, EdgeKind::kFork);
        pending_fork_edge_ = kNoAction;
      }
      if (extra_dep != kNoAction) trace_->add_edge(extra_dep, id, dep_kind);
      last_action_ = id;
    } else {
      // Still consume the fork edge marker so nesting stays balanced.
      pending_fork_edge_ = kNoAction;
      last_action_ = kActionUntraced;
    }
  }

  template <typename T>
  CellId cell_id(Cell<T>* c) {
    if (c->id == kNoCell) c->id = next_cell_id_++;
    return c->id;
  }

  Time clock_ = 0;
  Time max_time_ = 0;
  std::uint64_t work_ = 0;
  std::uint32_t max_cell_reads_ = 0;
  std::uint64_t nonlinear_reads_ = 0;
  std::uint64_t leaf_ops_ = 0;
  std::uint64_t serial_cutoffs_ = 0;
  std::uint64_t aug_ops_ = 0;
  bool crew_ = false;
  WaitStats waits_;

  ActionId last_action_ = kNoAction;
  ActionId pending_fork_edge_ = kNoAction;
  CellId next_cell_id_ = 0;
  ThreadId cur_thread_ = 0;
  ThreadId next_thread_ = 1;

  Trace* trace_ = nullptr;
  Arena cells_{1 << 16};
};

// Fork-join over a set of void thunks, reduced pairwise (strict baselines
// with node fan-out > 2, e.g. 2-6 tree children).
template <typename F>
void fork_join_all(Engine& eng, std::span<F> fns) {
  if (fns.empty()) return;
  if (fns.size() == 1) {
    fns[0]();
    return;
  }
  const std::size_t mid = fns.size() / 2;
  eng.fork_join2(
      [&] {
        fork_join_all(eng, fns.subspan(0, mid));
        return 0;
      },
      [&] {
        fork_join_all(eng, fns.subspan(mid));
        return 0;
      });
}

}  // namespace pwf::cm
