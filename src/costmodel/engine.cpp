#include "costmodel/engine.hpp"

#include "analyze/verifier.hpp"

namespace pwf::cm {

Engine::~Engine() {
  // Analyze mode: audit the recorded DAG before dropping it. Aborts (with a
  // printed report) on double writes, determinacy races, dangling reads, or
  // EREW conflicts; linearity is reported as a statistic. Engines running
  // augmented bodies declare themselves CREW (set_crew), which relaxes only
  // the EREW-by-level check — aug fibers re-read node cells by design.
  if (trace_ != nullptr && analyze_mode())
    analyze::verify_and_report(*trace_, "cm::Engine", crew_);
  delete trace_;
}

void Engine::array_op(std::uint64_t n) {
  // Figure 9 of the paper: a source action fanning out to n unit actions
  // that fan back into a sink. Depth contribution O(1), work n + O(1).
  if (n == 0) {  // degenerate split of an empty array: one bookkeeping action
    act();
    return;
  }
  act();  // source / dispatch action
  const Time t_src = clock_;
  const ActionId src = last_action_;

  work_ += n;
  const Time t_mid = t_src + 1;
  const Time t_sink = t_src + 2;
  if (t_sink > max_time_) max_time_ = t_sink;

  if (trace_) {
    ActionId sink = kNoAction;
    std::vector<ActionId> mids;
    mids.reserve(n);
    // The fan-out actions are logically one short-lived thread each.
    for (std::uint64_t i = 0; i < n; ++i) {
      const ActionId mid = trace_->new_action(next_thread_++);
      trace_->add_edge(src, mid, EdgeKind::kFork);
      mids.push_back(mid);
    }
    sink = trace_->new_action(cur_thread_);
    ++work_;  // the sink action
    for (ActionId mid : mids) trace_->add_edge(mid, sink, EdgeKind::kJoin);
    last_action_ = sink;
  } else {
    ++work_;  // the sink action
    last_action_ = kActionUntraced;
  }
  clock_ = t_sink;
  (void)t_mid;
}

}  // namespace pwf::cm
