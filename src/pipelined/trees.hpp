// Single-source binary search trees (the paper's Section 3.1) — merge,
// split, measure and rank-rebalance written once against the substrate
// concept (docs/substrates.md) and instantiated by src/trees (cost model)
// and src/runtime/rt_trees (coroutine runtime).
//
// Pipelining lives *inside the data*: a node's child links are read pointers
// to write-once future cells, so a node can be published while its subtrees
// are still being computed. Output cells are threaded down the recursion as
// write pointers, exactly the mechanism of the paper's Section 2.
//
// Bodies are C++20 coroutines over an executor Ex. On the cost-model
// substrates every co_await is immediately ready (or transfers straight into
// the child), so the engine sees the plain-call action sequence; on the
// runtime substrate co_await ex.touch(...) parks the fiber in the cell.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "pipelined/exec.hpp"
#include "support/check.hpp"

namespace pwf::pipelined::trees {

using Key = std::int64_t;

template <typename P>
struct Node;

// A tree argument/result is a read pointer to a future cell holding the root
// (nullptr = empty tree).
template <typename P>
using Cell = typename P::template Cell<Node<P>*>;

template <typename P>
struct Node {
  Key key = 0;
  std::uint64_t size = 0;   // subtree size   (rebalance pre-pass only)
  std::uint64_t lsize = 0;  // left-subtree size (rank navigation)
  typename P::Time created{};  // t(v): DAG time published (cost model only)
  Cell<P>* left = nullptr;
  Cell<P>* right = nullptr;
};

// Owns the nodes and cells of one or more trees. Trees freely share
// subtrees; the whole store is released at once.
template <typename P>
class Store {
 public:
  using Context = typename P::Context;

  explicit Store(Context ctx) : ctx_(std::move(ctx)) {}
  Store()
    requires std::default_initializable<Context>
  = default;

  // Cost-model substrates only (lazily instantiated).
  decltype(auto) engine() { return ctx_.engine(); }

  // Fresh unwritten future cell for a tree.
  Cell<P>* cell() { return arena_.template create<Cell<P>>(); }

  // Cell pre-written with `root`, available at time 0 (input data).
  Cell<P>* input(Node<P>* root) {
    Cell<P>* c = cell();
    P::preset(*c, root);
    return c;
  }

  // A node whose children are the given cells (either kept subtrees of an
  // input, or fresh futures a forked thread will fill in).
  Node<P>* make(Key key, Cell<P>* l, Cell<P>* r) {
    Node<P>* n = arena_.template create<Node<P>>();
    n->key = key;
    n->left = l;
    n->right = r;
    return n;
  }

  // A node with both children being fresh future cells.
  Node<P>* make(Key key) { return make(key, cell(), cell()); }

  // A node with both children immediately available (inputs and the strict
  // baselines).
  Node<P>* make_ready(Key key, Node<P>* l, Node<P>* r) {
    return make(key, input(l), input(r));
  }

  // Perfectly balanced BST over sorted, duplicate-free keys (input data;
  // costs nothing in the model).
  Node<P>* build_balanced(std::span<const Key> sorted) {
    if (sorted.empty()) return nullptr;
    const std::size_t mid = sorted.size() / 2;
    Node<P>* l = build_balanced(sorted.subspan(0, mid));
    Node<P>* r = build_balanced(sorted.subspan(mid + 1));
    return make_ready(sorted[mid], l, r);
  }

  std::size_t bytes_used() const { return arena_.bytes_used(); }

 private:
  Context ctx_;
  typename P::Arena arena_;
};

// Publishes a node into its destination cell, stamping t(v) where the
// substrate keeps timestamps.
template <typename Ex, typename P = typename Ex::Policy>
void publish(Ex ex, Cell<P>* out, Node<P>* n) {
  ex.write(out, n);
  if constexpr (P::kHasTimestamps) {
    if (n) n->created = out->ts;
  }
}

// Reads a finished cell's value without touching (analysis only; P is not
// deducible through the Cell alias, so spell it: peek<MyPolicy>(c)).
template <typename P>
Node<P>* peek(const Cell<P>* c) {
  return P::peek(c);
}

// ---- serial fast paths (granularity control) --------------------------------
//
// Below Ex::serial_threshold() the bodies stop forking one fiber per node
// and run plain recursive code instead. The guard is availability-bounded:
// tree_avail walks the subtree through its cells with a shared node budget
// and succeeds only if every cell is already written within the budget — so
// the serial path never parks, never blocks, and simply falls back to the
// pipelined path when a producer is still running. Cost-model substrates
// keep threshold 0, making every branch below dead there (recorded counts
// are bit-identical).

namespace detail {

// True iff the subtree under `n` is fully materialized using at most
// `budget` nodes (decremented; shared across sibling calls).
template <typename P>
bool tree_avail(const Node<P>* n, std::size_t& budget) {
  if (n == nullptr) return true;
  if (budget == 0) return false;
  --budget;
  if (!P::ready(n->left) || !P::ready(n->right)) return false;
  return tree_avail<P>(P::peek(n->left), budget) &&
         tree_avail<P>(P::peek(n->right), budget);
}

// split_strict without the coroutine: same structure, plain recursion.
template <typename P>
std::pair<Node<P>*, Node<P>*> split_serial(Store<P>& st, Key s, Node<P>* t) {
  if (t == nullptr) return {nullptr, nullptr};
  if (s <= t->key) {
    auto [l1, r1] = split_serial(st, s, peek<P>(t->left));
    return {l1, st.make(t->key, st.input(r1), t->right)};
  }
  auto [l1, r1] = split_serial(st, s, peek<P>(t->right));
  return {st.make(t->key, t->left, st.input(l1)), r1};
}

template <typename P>
Node<P>* merge_serial(Store<P>& st, Node<P>* a, Node<P>* b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  auto [l2, r2] = split_serial(st, a->key, b);
  return st.make_ready(a->key, merge_serial(st, peek<P>(a->left), l2),
                       merge_serial(st, peek<P>(a->right), r2));
}

template <typename P>
void collect_keys(const Node<P>* n, std::vector<Key>& out) {
  if (n == nullptr) return;
  collect_keys(peek<P>(n->left), out);
  out.push_back(n->key);
  collect_keys(peek<P>(n->right), out);
}

// measure without fork_join2: sequential size-annotated copy.
template <typename P>
Node<P>* measure_serial(Store<P>& st, Node<P>* n) {
  if (n == nullptr) return nullptr;
  Node<P>* l = measure_serial(st, peek<P>(n->left));
  Node<P>* r = measure_serial(st, peek<P>(n->right));
  Node<P>* copy = st.make_ready(n->key, l, r);
  copy->lsize = l ? l->size : 0;
  copy->size = 1 + copy->lsize + (r ? r->size : 0);
  return copy;
}

}  // namespace detail

// ---- pipelined merge (Figure 3) ---------------------------------------------

// Splits the available tree rooted at `t` by key `s` into keys < s (written
// progressively under *outL) and keys >= s (under *outR). Iterative
// destination-passing: each level publishes one node into whichever side
// keeps the root, then descends into the other side.
template <typename Ex, typename P = typename Ex::Policy>
Fiber split_from(Ex ex, Store<P>& st, Key s, Node<P>* t, Cell<P>* outL,
                 Cell<P>* outR) {
  for (;;) {
    if (t == nullptr) {
      ex.write(outL, static_cast<Node<P>*>(nullptr));
      ex.write(outR, static_cast<Node<P>*>(nullptr));
      co_return;
    }
    if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
      std::size_t budget = thr;
      if (detail::tree_avail<P>(t, budget)) {
        ex.on_serial_cutoff();
        auto [l, r] = detail::split_serial(st, s, t);
        publish(ex, outL, l);
        publish(ex, outR, r);
        co_return;
      }
    }
    ex.step();  // the key comparison
    if (s <= t->key) {  // keys >= s (including s itself) go to the right side
      Node<P>* keep = st.make(t->key, st.cell(), t->right);
      publish(ex, outR, keep);
      outR = keep->left;
      t = co_await ex.touch(t->left);
    } else {
      Node<P>* keep = st.make(t->key, t->left, st.cell());
      publish(ex, outL, keep);
      outL = keep->right;
      t = co_await ex.touch(t->right);
    }
  }
}

// Pipelined merge of the trees in cells `a` and `b` into `out`:
//   Node(v, ?merge(L1, L2), ?merge(R1, R2))  with  (L2, R2) = ?split(v, B).
template <typename Ex, typename P = typename Ex::Policy>
Fiber merge_into(Ex ex, Store<P>& st, Cell<P>* a, Cell<P>* b, Cell<P>* out) {
  Node<P>* ta = co_await ex.touch(a);
  Node<P>* tb = co_await ex.touch(b);
  if (ta == nullptr) {  // merge(Leaf, B) = B
    publish(ex, out, tb);
    co_return;
  }
  if (tb == nullptr) {  // merge(A, Leaf) = A
    publish(ex, out, ta);
    co_return;
  }
  if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
    std::size_t budget = thr;
    if (detail::tree_avail<P>(ta, budget) && detail::tree_avail<P>(tb, budget)) {
      ex.on_serial_cutoff();
      publish(ex, out, detail::merge_serial(st, ta, tb));
      co_return;
    }
  }
  Node<P>* res = st.make(ta->key);
  Cell<P>* l2 = st.cell();
  Cell<P>* r2 = st.cell();
  const Key v = ta->key;  // linear code copies the splitter (Figure 12)
  ex.fork(split_from(ex, st, v, tb, l2, r2));
  ex.fork(merge_into(ex, st, ta->left, l2, res->left));
  ex.fork(merge_into(ex, st, ta->right, r2, res->right));
  publish(ex, out, res);
}

// ---- strict (non-pipelined) baseline ----------------------------------------

// Sequential split: the whole result is available when it returns.
template <typename Ex, typename P = typename Ex::Policy>
Task<std::pair<Node<P>*, Node<P>*>> split_strict(Ex ex, Store<P>& st, Key s,
                                                 Node<P>* t) {
  ex.step();
  if (t == nullptr) co_return {nullptr, nullptr};
  if (s <= t->key) {
    auto [l1, r1] = co_await split_strict(ex, st, s, peek<P>(t->left));
    co_return {l1, st.make(t->key, st.input(r1), t->right)};
  }
  auto [l1, r1] = co_await split_strict(ex, st, s, peek<P>(t->right));
  co_return {st.make(t->key, t->left, st.input(l1)), r1};
}

// Fork-join merge: split runs to completion, then the two submerges run in
// parallel (the paper's "natural implementation ... O(lg^2 n) time").
template <typename Ex, typename P = typename Ex::Policy>
Task<Node<P>*> merge_strict(Ex ex, Store<P>& st, Node<P>* a, Node<P>* b) {
  ex.step();
  if (a == nullptr) co_return b;
  if (b == nullptr) co_return a;
  auto [l2, r2] = co_await split_strict(ex, st, a->key, b);
  auto [l, r] =
      co_await ex.fork_join2(merge_strict(ex, st, peek<P>(a->left), l2),
                             merge_strict(ex, st, peek<P>(a->right), r2));
  co_return st.make_ready(a->key, l, r);
}

// ---- measure + rank-rebalance (Section 3.1 extension) -----------------------

template <typename P>
std::uint64_t size_of(const Node<P>* n) {
  return n ? n->size : 0;
}

// Phase 1+2: size-annotated copy of the tree in `t` (consumes its cells).
// Fork-join: O(n) work, O(h) depth; the copy also keeps the computation
// linear (the merge output cells are read exactly once, here).
template <typename Ex, typename P = typename Ex::Policy>
Task<Node<P>*> measure(Ex ex, Store<P>& st, Cell<P>* t) {
  Node<P>* n = co_await ex.touch(t);
  if (n == nullptr) co_return nullptr;
  if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
    std::size_t budget = thr;
    if (detail::tree_avail<P>(n, budget)) {
      ex.on_serial_cutoff();
      co_return detail::measure_serial(st, n);
    }
  }
  auto [l, r] = co_await ex.fork_join2(measure(ex, st, n->left),
                                       measure(ex, st, n->right));
  Node<P>* copy = st.make_ready(n->key, l, r);
  copy->lsize = size_of(l);
  copy->size = 1 + size_of(l) + size_of(r);
  co_return copy;
}

// Rank split of the available size-annotated tree rooted at `t`: nodes of
// rank < r under *outL, the node of rank r into *outMid, ranks > r under
// *outR. Published progressively (write-pointer style), like split_from.
template <typename Ex, typename P = typename Ex::Policy>
Fiber splitr_from(Ex ex, Store<P>& st, std::uint64_t r, Node<P>* t,
                  Cell<P>* outL, Cell<P>* outMid, Cell<P>* outR) {
  for (;;) {
    PWF_CHECK_MSG(t != nullptr, "rank out of range in splitr");
    ex.step();  // rank comparison
    if (r < t->lsize) {
      // Median is in the left subtree: the root and everything right of it
      // belong to the > side.
      Node<P>* keep = st.make(t->key, st.cell(), t->right);
      keep->lsize = t->lsize - r - 1;
      keep->size = t->size - r - 1;
      publish(ex, outR, keep);
      outR = keep->left;
      t = co_await ex.touch(t->left);
    } else if (r == t->lsize) {
      // t itself is the node of rank r; its subtrees are the two sides.
      ex.write(outMid, t);
      ex.write(outL, co_await ex.touch(t->left));
      ex.write(outR, co_await ex.touch(t->right));
      co_return;
    } else {
      Node<P>* keep = st.make(t->key, t->left, st.cell());
      keep->lsize = t->lsize;
      keep->size = t->lsize + 1 + (r - t->lsize - 1);
      publish(ex, outL, keep);
      outL = keep->right;
      r -= t->lsize + 1;
      t = co_await ex.touch(t->right);
    }
  }
}

// Forked wrapper: wait for the annotated tree, then rank-split it.
template <typename Ex, typename P = typename Ex::Policy>
Fiber splitr_entry(Ex ex, Store<P>& st, std::uint64_t r, Cell<P>* tree,
                   Cell<P>* outL, Cell<P>* outMid, Cell<P>* outR) {
  Node<P>* t = co_await ex.touch(tree);
  co_await splitr_from(ex, st, r, t, outL, outMid, outR);
}

// Pipelined rebalance of the size-annotated tree in `tree` (with `size`
// nodes) into `out`.
template <typename Ex, typename P = typename Ex::Policy>
Fiber rebalance_into(Ex ex, Store<P>& st, Cell<P>* tree, std::uint64_t size,
                     Cell<P>* out) {
  if (size == 0) {
    Node<P>* t = co_await ex.touch(tree);  // consume the (empty) side
    PWF_CHECK(t == nullptr);
    ex.write(out, static_cast<Node<P>*>(nullptr));
    co_return;
  }
  // Serial cutoff: size is known here, so the guard is exact — if the whole
  // (size-annotated) input is already materialized and small, rebuild it
  // perfectly balanced in one pass. Picking rank size/2 at every level is
  // precisely build_balanced's mid split, so the output tree is the very
  // tree the pipelined path would produce.
  if (const std::size_t thr = ex.serial_threshold();
      thr > 0 && size <= thr && P::ready(tree)) {
    Node<P>* t = P::peek(tree);
    std::size_t budget = thr;
    if (detail::tree_avail<P>(t, budget)) {
      ex.on_serial_cutoff();
      std::vector<Key> keys;
      keys.reserve(size);
      detail::collect_keys<P>(t, keys);
      publish(ex, out, st.build_balanced(keys));
      co_return;
    }
  }
  const std::uint64_t lcount = size / 2;  // median rank
  Cell<P>* lpart = st.cell();
  Cell<P>* rpart = st.cell();
  Cell<P>* midc = st.cell();
  ex.fork(splitr_entry(ex, st, lcount, tree, lpart, midc, rpart));
  Node<P>* mid = co_await ex.touch(midc);
  Node<P>* res = st.make(mid->key);
  ex.fork(rebalance_into(ex, st, lpart, lcount, res->left));
  ex.fork(rebalance_into(ex, st, rpart, size - 1 - lcount, res->right));
  publish(ex, out, res);
}

// Forked driver for substrates without an eager inline measure (the
// runtime): measure, then rebalance the annotated copy. The cost-model shim
// keeps its own driver (measure runs inline there, which the recorded DAG
// depends on).
template <typename Ex, typename P = typename Ex::Policy>
Fiber rebalance_entry(Ex ex, Store<P>& st, Cell<P>* tree, Cell<P>* out) {
  Node<P>* annotated = co_await measure(ex, st, tree);
  co_await rebalance_into(ex, st, st.input(annotated), size_of(annotated),
                          out);
}

// ---- analysis helpers (meta-level: walk the finished structure directly,
// ---- no substrate actions, no linearity impact) -----------------------------

// In-order keys.
template <typename P>
void collect_inorder(const Node<P>* root, std::vector<Key>& out) {
  if (root == nullptr) return;
  collect_inorder(peek<P>(root->left), out);
  out.push_back(root->key);
  collect_inorder(peek<P>(root->right), out);
}

// Height: empty tree = 0, single node = 1.
template <typename P>
int height(const Node<P>* root) {
  if (root == nullptr) return 0;
  return 1 +
         std::max(height(peek<P>(root->left)), height(peek<P>(root->right)));
}

template <typename P>
std::uint64_t count_nodes(const Node<P>* root) {
  if (root == nullptr) return 0;
  return 1 + count_nodes(peek<P>(root->left)) +
         count_nodes(peek<P>(root->right));
}

// Latest publication timestamp of any node in the tree.
template <typename P>
typename P::Time max_created(const Node<P>* root) {
  if (root == nullptr) return 0;
  return std::max({root->created, max_created(peek<P>(root->left)),
                   max_created(peek<P>(root->right))});
}

namespace detail {
template <typename P>
bool bst_in_range(const Node<P>* n, const Key* lo, const Key* hi) {
  if (n == nullptr) return true;
  if (lo && n->key <= *lo) return false;
  if (hi && n->key >= *hi) return false;
  return bst_in_range(peek<P>(n->left), lo, &n->key) &&
         bst_in_range(peek<P>(n->right), &n->key, hi);
}
}  // namespace detail

// BST order check over the whole tree.
template <typename P>
bool is_sorted_bst(const Node<P>* root) {
  return detail::bst_in_range(root, nullptr, nullptr);
}

}  // namespace pwf::pipelined::trees
