// Single-source treaps (the paper's Sections 3.2–3.3) — splitm, union,
// join, difference, intersection, plus the strict fork-join baselines —
// written once against the substrate concept (docs/substrates.md) and
// instantiated by src/treap (cost model) and src/runtime/rt_treap
// (coroutine runtime).
//
// Priorities are derived from keys by hashing (splitmix64 with a store-wide
// salt), so a key has the same priority in every treap of a store; this
// preserves the paper's randomness assumption because the hash is a PRF of
// the key. The hash is computed once per key at build time and cached in the
// node / leaf-entry record; the hot bodies below only ever compare cached
// priorities.
//
// Storage is B-treap-style (docs/storage.md): internal nodes keep the
// key/priority/child layout in one cache line, while subtrees below the
// store's leaf capacity collapse into sorted flat chunks of LeafEntry that
// the serial fast paths process branch-free. Substrates opt in through
// P::kMaxLeafCapacity — the cost model pins it to 0, so every leaf branch is
// `if constexpr`-dead there and the recorded DAG counts stay bit-identical.
#pragma once

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "pipelined/exec.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace pwf::pipelined::treap {

using Key = std::int64_t;
using Pri = std::uint64_t;

template <typename P>
struct Node;

template <typename P>
using Cell = typename P::template Cell<Node<P>*>;

// One key of a flat leaf chunk. The priority is cached alongside the key so
// re-chunking (slices, merges, joins) never rehashes.
struct LeafEntry {
  Key key = 0;
  Pri pri = 0;
};

// A node is either *internal* (items == nullptr; left/right are cells) or a
// *leaf view* (items != nullptr; left/right unused): a window [items,
// items+count) into an immutable, key-sorted, arena-backed entry array. A
// leaf's key/pri mirror its maximum-priority entry (items[root_pos]) — the
// root the subtree would have had — so every priority comparison in the
// bodies below works on leaves unchanged.
template <typename P>
struct Node {
  Key key = 0;
  Pri pri = 0;
  std::int64_t val = 0;  // payload (used by the map operations only)
  typename P::Time created{};  // t(v) (cost model only)
  Cell<P>* left = nullptr;
  Cell<P>* right = nullptr;
  const LeafEntry* items = nullptr;  // leaf view into a sorted chunk
  std::uint32_t count = 0;           // number of entries in the view
  std::uint32_t root_pos = 0;        // index of the max-priority entry
};

template <typename P>
bool is_leaf(const Node<P>* n) {
  return n != nullptr && n->items != nullptr;
}

inline constexpr std::uint64_t kDefaultSalt = 0x9e3779b97f4a7c15ULL;

// Default flat-chunk capacity: picked by the bench_e19 --leaf-cap sweep
// (BENCH_e19.json); tunable per Store.
inline constexpr std::size_t kDefaultLeafCapacity = 32;

template <typename P>
class Store {
 public:
  using Context = typename P::Context;

  // Internal nodes must stay within one cache line — the point of caching
  // the priority and packing the leaf view into the node record.
  static_assert(sizeof(Node<P>) <= 64,
                "treap::Node must fit in a 64-byte cache line");

  explicit Store(Context ctx, std::uint64_t salt = kDefaultSalt,
                 std::size_t leaf_cap = kDefaultLeafCapacity)
      : ctx_(std::move(ctx)), salt_(salt), leaf_cap_(clamp_cap(leaf_cap)) {}
  explicit Store(std::uint64_t salt = kDefaultSalt,
                 std::size_t leaf_cap = kDefaultLeafCapacity)
    requires std::default_initializable<Context>
      : salt_(salt), leaf_cap_(clamp_cap(leaf_cap)) {}

  decltype(auto) engine() { return ctx_.engine(); }

  Pri priority(Key k) const {
    std::uint64_t x = static_cast<std::uint64_t>(k) ^ salt_;
    return splitmix64(x);
  }

  // Effective flat-chunk capacity: 1 means "no chunking" (every key is its
  // own node); the substrate's kMaxLeafCapacity bounds it from above.
  std::size_t leaf_capacity() const { return leaf_cap_; }

  Cell<P>* cell() { return arena_.template create<Cell<P>>(); }

  Cell<P>* input(Node<P>* root) {
    Cell<P>* c = cell();
    P::preset(*c, root);
    return c;
  }

  Node<P>* make(Key key, Pri pri, Cell<P>* l, Cell<P>* r) {
    Node<P>* n = arena_.template create<Node<P>>();
    n->key = key;
    n->pri = pri;
    n->left = l;
    n->right = r;
    return n;
  }

  Node<P>* make(Key key, Pri pri) { return make(key, pri, cell(), cell()); }

  Node<P>* make_ready(Key key, Pri pri, Node<P>* l, Node<P>* r) {
    return make(key, pri, input(l), input(r));
  }

  // 64-byte-aligned chunk storage for leaf entries.
  LeafEntry* alloc_entries(std::size_t n) {
    return static_cast<LeafEntry*>(
        arena_.allocate(n * sizeof(LeafEntry), 64));
  }

  // Leaf view over base[lo, hi) (hi > lo); scans for the max-priority entry.
  Node<P>* make_leaf(const LeafEntry* base, std::uint32_t lo,
                     std::uint32_t hi) {
    std::uint32_t rp = lo;
    for (std::uint32_t i = lo + 1; i < hi; ++i)
      if (base[i].pri > base[rp].pri) rp = i;
    Node<P>* n = arena_.template create<Node<P>>();
    n->key = base[rp].key;
    n->pri = base[rp].pri;
    n->items = base + lo;
    n->count = hi - lo;
    n->root_pos = rp - lo;
    return n;
  }

  // Treap over a sorted, duplicate-free entry range: ranges at or below the
  // leaf capacity become flat chunks, larger ones get an internal node at
  // the max-priority entry. Equivalent (same keys, same heap/BST shape above
  // the chunks) to the node-per-key treap over the same keys.
  Node<P>* chunked(const LeafEntry* base, std::uint32_t lo, std::uint32_t hi) {
    if (lo == hi) return nullptr;
    if (hi - lo <= leaf_cap_) return make_leaf(base, lo, hi);
    std::uint32_t rp = lo;
    for (std::uint32_t i = lo + 1; i < hi; ++i)
      if (base[i].pri > base[rp].pri) rp = i;
    Node<P>* l = chunked(base, lo, rp);
    Node<P>* r = chunked(base, rp + 1, hi);
    return make(base[rp].key, base[rp].pri, input(l), input(r));
  }

  // Builds a treap over the given keys (input data; costs nothing in the
  // model). Keys are sorted and deduplicated. With chunking enabled the tree
  // is built over a flat entry array (hashing each priority exactly once);
  // otherwise construction is the O(n) right-spine (Cartesian tree) method.
  Node<P>* build(std::span<const Key> keys) {
    std::vector<Key> sorted(keys.begin(), keys.end());
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

    if constexpr (P::kMaxLeafCapacity > 0) {
      if (leaf_cap_ > 1 && !sorted.empty()) {
        LeafEntry* e = alloc_entries(sorted.size());
        for (std::size_t i = 0; i < sorted.size(); ++i)
          e[i] = {sorted[i], priority(sorted[i])};
        return chunked(e, 0, static_cast<std::uint32_t>(sorted.size()));
      }
    }

    // Each new (larger) key pops smaller-priority spine nodes and adopts the
    // popped chain as its left subtree. Adopted links get fresh preset cells
    // (runtime cells are write-once, so the placeholder can't be rewritten).
    std::vector<Node<P>*> spine;
    spine.reserve(64);
    for (Key k : sorted) {
      Node<P>* n = make_ready(k, priority(k), nullptr, nullptr);
      Node<P>* last_popped = nullptr;
      while (!spine.empty() && spine.back()->pri < n->pri) {
        last_popped = spine.back();
        spine.pop_back();
      }
      if (last_popped != nullptr) n->left = input(last_popped);
      if (!spine.empty()) spine.back()->right = input(n);
      spine.push_back(n);
    }
    return spine.empty() ? nullptr : spine.front();
  }

  std::size_t bytes_used() const { return arena_.bytes_used(); }

  // Arena monitoring passthrough; only instantiated for arenas that track
  // padding (the runtime's ConcurrentArena).
  std::size_t wasted_padding() const { return arena_.wasted_padding(); }

  // Leaf-chunk operations (merge/split/concat of flat runs) performed
  // against this store, across all substrates and both the serial and
  // pipelined paths. Relaxed: a monitoring counter, like arena bytes.
  void note_leaf_op() const {
    leaf_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t leaf_ops() const {
    return leaf_ops_.load(std::memory_order_relaxed);
  }

 private:
  static std::size_t clamp_cap(std::size_t req) {
    if constexpr (P::kMaxLeafCapacity == 0) {
      return 1;
    } else {
      return std::min(std::max<std::size_t>(req, 1), P::kMaxLeafCapacity);
    }
  }

  Context ctx_;
  std::uint64_t salt_ = kDefaultSalt;
  std::size_t leaf_cap_ = 1;
  mutable std::atomic<std::uint64_t> leaf_ops_{0};
  typename P::Arena arena_;
};

// Publishes a node into its destination cell, stamping t(v) where the
// substrate keeps timestamps.
template <typename Ex, typename P = typename Ex::Policy>
void publish(Ex ex, Cell<P>* out, Node<P>* n) {
  ex.write(out, n);
  if constexpr (P::kHasTimestamps) {
    if (n) n->created = out->ts;
  }
}

template <typename P>
Node<P>* peek(const Cell<P>* c) {
  return P::peek(c);
}

// ---- serial fast paths (granularity control) --------------------------------
//
// Plain recursive counterparts of the pipelined bodies, taken when the
// relevant subtrees are fully materialized within Ex::serial_threshold()
// nodes (see trees.hpp for the scheme). Unlike the strict baselines below,
// these mirror the *pipelined* semantics exactly — including `val`
// propagation — so the published result is indistinguishable from the one
// the forked path would build. Dead on the cost-model substrates
// (threshold 0), as is every leaf branch (kMaxLeafCapacity 0).

namespace detail {

inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}

template <typename P>
bool tree_avail(const Node<P>* n, std::size_t& budget) {
  if (n == nullptr) return true;
  if (budget == 0) return false;
  --budget;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (n->items != nullptr) return true;  // leaf chunks are always complete
  }
  if (!P::ready(n->left) || !P::ready(n->right)) return false;
  return tree_avail<P>(P::peek(n->left), budget) &&
         tree_avail<P>(P::peek(n->right), budget);
}

template <typename P>
struct SerialSplit {
  Node<P>* less = nullptr;
  Node<P>* greater = nullptr;
  Node<P>* equal = nullptr;
};

// ---- leaf-chunk primitives --------------------------------------------------
//
// Only instantiated when P::kMaxLeafCapacity > 0. All of them operate on the
// immutable entry arrays, so slices share storage with their source leaf and
// only merges/joins allocate new chunks.

// Sub-view of a leaf, [lo, hi) relative to leaf->items. Empty -> nullptr.
template <typename P>
Node<P>* leaf_slice(Store<P>& st, const Node<P>* leaf, std::uint32_t lo,
                    std::uint32_t hi) {
  if (lo >= hi) return nullptr;
  return st.make_leaf(leaf->items, lo, hi);
}

// The subtree a leaf's root entry would have on each side.
template <typename P>
Node<P>* left_part(Store<P>& st, Node<P>* t) {
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t)) return leaf_slice(st, t, 0, t->root_pos);
  }
  return peek<P>(t->left);
}

template <typename P>
Node<P>* right_part(Store<P>& st, Node<P>* t) {
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t)) return leaf_slice(st, t, t->root_pos + 1, t->count);
  }
  return peek<P>(t->right);
}

// Rewrites a leaf as an internal node (same key/pri, preset side slices) so
// the pipelined bodies can hand out child cells.
template <typename P>
Node<P>* open_leaf(Store<P>& st, Node<P>* t) {
  return st.make(t->key, t->pri, st.input(left_part(st, t)),
                 st.input(right_part(st, t)));
}

// splitm on a flat chunk: one binary search, two zero-copy slices. The equal
// verdict is a one-entry leaf view (consumers only null-check it on the set
// path).
template <typename P>
SerialSplit<P> split_leaf(Store<P>& st, Key s, const Node<P>* t) {
  st.note_leaf_op();
  const LeafEntry* e = t->items;
  const std::uint32_t n = t->count;
  std::uint32_t lo = 0, hi = n;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (e[mid].key < s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  SerialSplit<P> out;
  out.less = leaf_slice(st, t, 0, lo);
  if (lo < n && e[lo].key == s) {
    out.equal = st.make_leaf(e, lo, lo + 1);
    out.greater = leaf_slice(st, t, lo + 1, n);
  } else {
    out.greater = leaf_slice(st, t, lo, n);
  }
  return out;
}

// Sorted-array union of two chunks; duplicates keep a's entry. Re-chunks the
// merged array (an internal spine appears only above the capacity).
template <typename P>
Node<P>* leaf_union(Store<P>& st, const Node<P>* a, const Node<P>* b) {
  st.note_leaf_op();
  LeafEntry* out = st.alloc_entries(a->count + b->count);
  const LeafEntry* x = a->items;
  const LeafEntry* xe = x + a->count;
  const LeafEntry* y = b->items;
  const LeafEntry* ye = y + b->count;
  LeafEntry* w = out;
  while (x != xe && y != ye) {
    prefetch(x + 4);
    prefetch(y + 4);
    if (x->key < y->key) {
      *w++ = *x++;
    } else if (y->key < x->key) {
      *w++ = *y++;
    } else {
      *w++ = *x++;
      ++y;
    }
  }
  while (x != xe) *w++ = *x++;
  while (y != ye) *w++ = *y++;
  return st.chunked(out, 0, static_cast<std::uint32_t>(w - out));
}

// Sorted-array difference a \ b.
template <typename P>
Node<P>* leaf_diff(Store<P>& st, const Node<P>* a, const Node<P>* b) {
  st.note_leaf_op();
  LeafEntry* out = st.alloc_entries(a->count);
  const LeafEntry* x = a->items;
  const LeafEntry* xe = x + a->count;
  const LeafEntry* y = b->items;
  const LeafEntry* ye = y + b->count;
  LeafEntry* w = out;
  while (x != xe && y != ye) {
    prefetch(x + 4);
    prefetch(y + 4);
    if (x->key < y->key) {
      *w++ = *x++;
    } else if (y->key < x->key) {
      ++y;
    } else {
      ++x;
      ++y;
    }
  }
  while (x != xe) *w++ = *x++;
  return st.chunked(out, 0, static_cast<std::uint32_t>(w - out));
}

// Sorted-array intersection.
template <typename P>
Node<P>* leaf_intersect(Store<P>& st, const Node<P>* a, const Node<P>* b) {
  st.note_leaf_op();
  LeafEntry* out = st.alloc_entries(std::min(a->count, b->count));
  const LeafEntry* x = a->items;
  const LeafEntry* xe = x + a->count;
  const LeafEntry* y = b->items;
  const LeafEntry* ye = y + b->count;
  LeafEntry* w = out;
  while (x != xe && y != ye) {
    prefetch(x + 4);
    prefetch(y + 4);
    if (x->key < y->key) {
      ++x;
    } else if (y->key < x->key) {
      ++y;
    } else {
      *w++ = *x++;
      ++y;
    }
  }
  return st.chunked(out, 0, static_cast<std::uint32_t>(w - out));
}

// join of two chunks (all of a's keys < all of b's): flat concatenation.
template <typename P>
Node<P>* leaf_concat(Store<P>& st, const Node<P>* a, const Node<P>* b) {
  st.note_leaf_op();
  LeafEntry* out = st.alloc_entries(a->count + b->count);
  std::memcpy(out, a->items, a->count * sizeof(LeafEntry));
  std::memcpy(out + a->count, b->items, b->count * sizeof(LeafEntry));
  return st.chunked(out, 0, a->count + b->count);
}

// ---- serial recursive bodies ------------------------------------------------

template <typename P>
SerialSplit<P> splitm_serial(Store<P>& st, Key s, Node<P>* t) {
  if (t == nullptr) return {};
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t)) return split_leaf(st, s, t);
  }
  if (s < t->key) {
    SerialSplit<P> sub = splitm_serial(st, s, peek<P>(t->left));
    sub.greater = st.make(t->key, t->pri, st.input(sub.greater), t->right);
    sub.greater->val = t->val;
    return sub;
  }
  if (s > t->key) {
    SerialSplit<P> sub = splitm_serial(st, s, peek<P>(t->right));
    sub.less = st.make(t->key, t->pri, t->left, st.input(sub.less));
    sub.less->val = t->val;
    return sub;
  }
  return {peek<P>(t->left), peek<P>(t->right), t};
}

template <typename P>
Node<P>* join_serial(Store<P>& st, Node<P>* t1, Node<P>* t2) {
  if (t1 == nullptr) return t2;
  if (t2 == nullptr) return t1;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t1) && is_leaf(t2)) return leaf_concat(st, t1, t2);
  }
  Node<P>* res;
  if (t1->pri >= t2->pri) {
    if constexpr (P::kMaxLeafCapacity > 0) {
      if (is_leaf(t1)) t1 = open_leaf(st, t1);
    }
    Node<P>* j = join_serial(st, peek<P>(t1->right), t2);
    res = st.make(t1->key, t1->pri, t1->left, st.input(j));
    res->val = t1->val;
  } else {
    if constexpr (P::kMaxLeafCapacity > 0) {
      if (is_leaf(t2)) t2 = open_leaf(st, t2);
    }
    Node<P>* j = join_serial(st, t1, peek<P>(t2->left));
    res = st.make(t2->key, t2->pri, st.input(j), t2->right);
    res->val = t2->val;
  }
  return res;
}

template <typename P>
Node<P>* union_serial(Store<P>& st, Node<P>* ta, Node<P>* tb) {
  if (ta == nullptr) return tb;
  if (tb == nullptr) return ta;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(ta) && is_leaf(tb)) return leaf_union(st, ta, tb);
  }
  if (ta->pri < tb->pri) std::swap(ta, tb);
  SerialSplit<P> s = splitm_serial(st, ta->key, tb);
  Node<P>* res =
      st.make_ready(ta->key, ta->pri,
                    union_serial(st, left_part(st, ta), s.less),
                    union_serial(st, right_part(st, ta), s.greater));
  res->val = ta->val;
  return res;
}

template <typename P>
Node<P>* diff_serial(Store<P>& st, Node<P>* t1, Node<P>* t2) {
  if (t1 == nullptr) return nullptr;
  if (t2 == nullptr) return t1;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t1) && is_leaf(t2)) return leaf_diff(st, t1, t2);
  }
  SerialSplit<P> s = splitm_serial(st, t1->key, t2);
  Node<P>* l = diff_serial(st, left_part(st, t1), s.less);
  Node<P>* r = diff_serial(st, right_part(st, t1), s.greater);
  if (s.equal != nullptr) return join_serial(st, l, r);
  Node<P>* res = st.make_ready(t1->key, t1->pri, l, r);
  res->val = t1->val;
  return res;
}

template <typename P>
Node<P>* intersect_serial(Store<P>& st, Node<P>* ta, Node<P>* tb) {
  if (ta == nullptr || tb == nullptr) return nullptr;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(ta) && is_leaf(tb)) return leaf_intersect(st, ta, tb);
  }
  if (ta->pri < tb->pri) std::swap(ta, tb);
  SerialSplit<P> s = splitm_serial(st, ta->key, tb);
  Node<P>* l = intersect_serial(st, left_part(st, ta), s.less);
  Node<P>* r = intersect_serial(st, right_part(st, ta), s.greater);
  if (s.equal == nullptr) return join_serial(st, l, r);
  Node<P>* res = st.make_ready(ta->key, ta->pri, l, r);
  res->val = ta->val;
  return res;
}

}  // namespace detail

// ---- pipelined versions (Figures 4 and 7) -----------------------------------

// splitm (Figure 4): splits the available treap rooted at `t` by key `s`.
// Keys < s are published progressively under *outL, keys > s under *outR; a
// node with key == s is excluded from both and, when outEq != nullptr,
// delivered through it (nullptr if s was absent). outEq is written only when
// the traversal terminates — the "splitm completes as soon as it finds the
// splitter" behaviour diff depends on.
template <typename Ex, typename P = typename Ex::Policy>
Fiber splitm_from(Ex ex, Store<P>& st, Key s, Node<P>* t, Cell<P>* outL,
                  Cell<P>* outR, Cell<P>* outEq) {
  for (;;) {
    if (t == nullptr) {
      ex.write(outL, static_cast<Node<P>*>(nullptr));
      ex.write(outR, static_cast<Node<P>*>(nullptr));
      if (outEq) ex.write(outEq, static_cast<Node<P>*>(nullptr));
      co_return;
    }
    if constexpr (P::kMaxLeafCapacity > 0) {
      if (is_leaf(t)) {
        ex.on_leaf_op(t->count);
        detail::SerialSplit<P> sp = detail::split_leaf(st, s, t);
        publish(ex, outL, sp.less);
        publish(ex, outR, sp.greater);
        if (outEq) ex.write(outEq, sp.equal);
        co_return;
      }
    }
    if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
      std::size_t budget = thr;
      if (detail::tree_avail<P>(t, budget)) {
        ex.on_serial_cutoff();
        detail::SerialSplit<P> sp = detail::splitm_serial(st, s, t);
        publish(ex, outL, sp.less);
        publish(ex, outR, sp.greater);
        if (outEq) ex.write(outEq, sp.equal);
        co_return;
      }
    }
    ex.step();  // key comparison
    if (s < t->key) {
      Node<P>* keep = st.make(t->key, t->pri, st.cell(), t->right);
      keep->val = t->val;
      publish(ex, outR, keep);
      outR = keep->left;
      t = co_await ex.touch(t->left);
    } else if (s > t->key) {
      Node<P>* keep = st.make(t->key, t->pri, t->left, st.cell());
      keep->val = t->val;
      publish(ex, outL, keep);
      outL = keep->right;
      t = co_await ex.touch(t->right);
    } else {
      // Splitter found: its subtrees are the two sides; the node itself is
      // excluded (and reported through outEq for difference).
      ex.write(outL, co_await ex.touch(t->left));
      ex.write(outR, co_await ex.touch(t->right));
      if (outEq) ex.write(outEq, t);
      co_return;
    }
  }
}

// Pipelined union (Figure 4): keys of both treaps, duplicates removed, heap
// and BST order restored. Consumes both inputs.
template <typename Ex, typename P = typename Ex::Policy>
Fiber union_into(Ex ex, Store<P>& st, Cell<P>* a, Cell<P>* b, Cell<P>* out) {
  Node<P>* ta = co_await ex.touch(a);
  Node<P>* tb = co_await ex.touch(b);
  if (ta == nullptr) {
    publish(ex, out, tb);
    co_return;
  }
  if (tb == nullptr) {
    publish(ex, out, ta);
    co_return;
  }
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(ta) && is_leaf(tb)) {
      ex.on_leaf_op(ta->count + tb->count);
      publish(ex, out, detail::leaf_union(st, ta, tb));
      co_return;
    }
  }
  if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
    std::size_t budget = thr;
    if (detail::tree_avail<P>(ta, budget) && detail::tree_avail<P>(tb, budget)) {
      ex.on_serial_cutoff();
      publish(ex, out, detail::union_serial(st, ta, tb));
      co_return;
    }
  }
  ex.step();  // priority comparison
  if (ta->pri < tb->pri) std::swap(ta, tb);  // higher priority becomes root
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(ta)) ta = detail::open_leaf(st, ta);
  }
  Node<P>* res = st.make(ta->key, ta->pri);
  res->val = ta->val;
  Cell<P>* l2 = st.cell();
  Cell<P>* r2 = st.cell();
  const Key v = ta->key;
  ex.fork(splitm_from(ex, st, v, tb, l2, r2, nullptr));
  ex.fork(union_into(ex, st, ta->left, l2, res->left));
  ex.fork(union_into(ex, st, ta->right, r2, res->right));
  publish(ex, out, res);
}

// join (Figure 7 helper): every key of `t1` less than every key of `t2`;
// interleaves the right spine of t1 with the left spine of t2 by priority,
// publishing progressively.
template <typename Ex, typename P = typename Ex::Policy>
Fiber join_from(Ex ex, Store<P>& st, Node<P>* t1, Node<P>* t2, Cell<P>* out) {
  for (;;) {
    if (t1 == nullptr) {
      publish(ex, out, t2);
      co_return;
    }
    if (t2 == nullptr) {
      publish(ex, out, t1);
      co_return;
    }
    if constexpr (P::kMaxLeafCapacity > 0) {
      if (is_leaf(t1) && is_leaf(t2)) {
        ex.on_leaf_op(t1->count + t2->count);
        publish(ex, out, detail::leaf_concat(st, t1, t2));
        co_return;
      }
    }
    if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
      std::size_t budget = thr;
      if (detail::tree_avail<P>(t1, budget) &&
          detail::tree_avail<P>(t2, budget)) {
        ex.on_serial_cutoff();
        publish(ex, out, detail::join_serial(st, t1, t2));
        co_return;
      }
    }
    ex.step();  // priority comparison
    if (t1->pri >= t2->pri) {
      if constexpr (P::kMaxLeafCapacity > 0) {
        if (is_leaf(t1)) t1 = detail::open_leaf(st, t1);
      }
      Node<P>* res = st.make(t1->key, t1->pri, t1->left, st.cell());
      res->val = t1->val;
      publish(ex, out, res);
      out = res->right;
      t1 = co_await ex.touch(t1->right);
    } else {
      if constexpr (P::kMaxLeafCapacity > 0) {
        if (is_leaf(t2)) t2 = detail::open_leaf(st, t2);
      }
      Node<P>* res = st.make(t2->key, t2->pri, st.cell(), t2->right);
      res->val = t2->val;
      publish(ex, out, res);
      out = res->left;
      t2 = co_await ex.touch(t2->left);
    }
  }
}

// Forked wrapper: wait for both diff/intersect sides, then join them.
template <typename Ex, typename P = typename Ex::Policy>
Fiber join_entry(Ex ex, Store<P>& st, Cell<P>* l, Cell<P>* r, Cell<P>* out) {
  Node<P>* jl = co_await ex.touch(l);
  Node<P>* jr = co_await ex.touch(r);
  co_await join_from(ex, st, jl, jr, out);
}

// Pipelined difference (Figure 7): keys of `a` not present in `b`.
template <typename Ex, typename P = typename Ex::Policy>
Fiber diff_into(Ex ex, Store<P>& st, Cell<P>* a, Cell<P>* b, Cell<P>* out) {
  Node<P>* t1 = co_await ex.touch(a);
  Node<P>* t2 = co_await ex.touch(b);
  if (t1 == nullptr) {
    ex.write(out, static_cast<Node<P>*>(nullptr));
    co_return;
  }
  if (t2 == nullptr) {
    publish(ex, out, t1);
    co_return;
  }
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t1) && is_leaf(t2)) {
      ex.on_leaf_op(t1->count + t2->count);
      publish(ex, out, detail::leaf_diff(st, t1, t2));
      co_return;
    }
  }
  if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
    std::size_t budget = thr;
    if (detail::tree_avail<P>(t1, budget) && detail::tree_avail<P>(t2, budget)) {
      ex.on_serial_cutoff();
      publish(ex, out, detail::diff_serial(st, t1, t2));
      co_return;
    }
  }
  ex.step();
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t1)) t1 = detail::open_leaf(st, t1);
  }
  Cell<P>* l2 = st.cell();
  Cell<P>* r2 = st.cell();
  Cell<P>* eq = st.cell();
  const Key v = t1->key;
  ex.fork(splitm_from(ex, st, v, t2, l2, r2, eq));
  Cell<P>* dl = st.cell();
  Cell<P>* dr = st.cell();
  ex.fork(diff_into(ex, st, t1->left, l2, dl));
  ex.fork(diff_into(ex, st, t1->right, r2, dr));
  // Whether the root survives depends on whether splitm found it in b — the
  // "work after the recursive calls" that makes diff's pipeline notable.
  Node<P>* found = co_await ex.touch(eq);
  if (found != nullptr) {
    ex.fork(join_entry(ex, st, dl, dr, out));
  } else {
    Node<P>* res = st.make(t1->key, t1->pri, dl, dr);
    res->val = t1->val;
    publish(ex, out, res);
  }
}

// Pipelined intersection (the third set operation from the authors'
// companion paper "Fast set operations using treaps"): keys present in both
// treaps. Structurally the dual of difference — the root survives exactly
// when splitm *finds* it.
template <typename Ex, typename P = typename Ex::Policy>
Fiber intersect_into(Ex ex, Store<P>& st, Cell<P>* a, Cell<P>* b,
                     Cell<P>* out) {
  Node<P>* ta = co_await ex.touch(a);
  Node<P>* tb = co_await ex.touch(b);
  if (ta == nullptr || tb == nullptr) {
    ex.write(out, static_cast<Node<P>*>(nullptr));
    co_return;
  }
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(ta) && is_leaf(tb)) {
      ex.on_leaf_op(ta->count + tb->count);
      publish(ex, out, detail::leaf_intersect(st, ta, tb));
      co_return;
    }
  }
  if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
    std::size_t budget = thr;
    if (detail::tree_avail<P>(ta, budget) && detail::tree_avail<P>(tb, budget)) {
      ex.on_serial_cutoff();
      publish(ex, out, detail::intersect_serial(st, ta, tb));
      co_return;
    }
  }
  ex.step();  // priority comparison
  if (ta->pri < tb->pri) std::swap(ta, tb);  // recurse on the higher root
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(ta)) ta = detail::open_leaf(st, ta);
  }
  Cell<P>* l2 = st.cell();
  Cell<P>* r2 = st.cell();
  Cell<P>* eq = st.cell();
  const Key v = ta->key;
  ex.fork(splitm_from(ex, st, v, tb, l2, r2, eq));
  Cell<P>* il = st.cell();
  Cell<P>* ir = st.cell();
  ex.fork(intersect_into(ex, st, ta->left, l2, il));
  ex.fork(intersect_into(ex, st, ta->right, r2, ir));
  // Dual of diff: the root survives exactly when splitm found it in b.
  Node<P>* found = co_await ex.touch(eq);
  if (found != nullptr) {
    Node<P>* res = st.make(ta->key, ta->pri, il, ir);
    res->val = ta->val;
    publish(ex, out, res);
  } else {
    ex.fork(join_entry(ex, st, il, ir, out));
  }
}

// ---- strict (non-pipelined) baselines ---------------------------------------

// Sequential splitm returning complete trees (+ the equal node if present).
template <typename P>
struct StrictSplit {
  Node<P>* less = nullptr;
  Node<P>* greater = nullptr;
  Node<P>* equal = nullptr;
};

template <typename Ex, typename P = typename Ex::Policy>
Task<StrictSplit<P>> splitm_strict(Ex ex, Store<P>& st, Key s, Node<P>* t) {
  ex.step();
  if (t == nullptr) co_return {};
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t)) {
      ex.on_leaf_op(t->count);
      detail::SerialSplit<P> sp = detail::split_leaf(st, s, t);
      co_return {sp.less, sp.greater, sp.equal};
    }
  }
  if (s < t->key) {
    StrictSplit<P> sub = co_await splitm_strict(ex, st, s, peek<P>(t->left));
    sub.greater = st.make(t->key, t->pri, st.input(sub.greater), t->right);
    sub.greater->val = t->val;
    co_return sub;
  }
  if (s > t->key) {
    StrictSplit<P> sub = co_await splitm_strict(ex, st, s, peek<P>(t->right));
    sub.less = st.make(t->key, t->pri, t->left, st.input(sub.less));
    sub.less->val = t->val;
    co_return sub;
  }
  co_return {peek<P>(t->left), peek<P>(t->right), t};
}

template <typename Ex, typename P = typename Ex::Policy>
Task<Node<P>*> join_strict(Ex ex, Store<P>& st, Node<P>* t1, Node<P>* t2) {
  ex.step();
  if (t1 == nullptr) co_return t2;
  if (t2 == nullptr) co_return t1;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t1) && is_leaf(t2)) {
      ex.on_leaf_op(t1->count + t2->count);
      co_return detail::leaf_concat(st, t1, t2);
    }
  }
  if (t1->pri >= t2->pri) {
    if constexpr (P::kMaxLeafCapacity > 0) {
      if (is_leaf(t1)) t1 = detail::open_leaf(st, t1);
    }
    Node<P>* j = co_await join_strict(ex, st, peek<P>(t1->right), t2);
    co_return st.make(t1->key, t1->pri, t1->left, st.input(j));
  }
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t2)) t2 = detail::open_leaf(st, t2);
  }
  Node<P>* j = co_await join_strict(ex, st, t1, peek<P>(t2->left));
  co_return st.make(t2->key, t2->pri, st.input(j), t2->right);
}

// Fork-join union/difference/intersection: splitm runs to completion, then
// the two recursive calls run in parallel.
template <typename Ex, typename P = typename Ex::Policy>
Task<Node<P>*> union_strict(Ex ex, Store<P>& st, Node<P>* a, Node<P>* b) {
  ex.step();
  if (a == nullptr) co_return b;
  if (b == nullptr) co_return a;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(a) && is_leaf(b)) {
      ex.on_leaf_op(a->count + b->count);
      co_return detail::leaf_union(st, a, b);
    }
  }
  if (a->pri < b->pri) std::swap(a, b);
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(a)) a = detail::open_leaf(st, a);
  }
  StrictSplit<P> s = co_await splitm_strict(ex, st, a->key, b);
  auto [l, r] =
      co_await ex.fork_join2(union_strict(ex, st, peek<P>(a->left), s.less),
                             union_strict(ex, st, peek<P>(a->right), s.greater));
  co_return st.make_ready(a->key, a->pri, l, r);
}

template <typename Ex, typename P = typename Ex::Policy>
Task<Node<P>*> intersect_strict(Ex ex, Store<P>& st, Node<P>* a, Node<P>* b) {
  ex.step();
  if (a == nullptr || b == nullptr) co_return nullptr;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(a) && is_leaf(b)) {
      ex.on_leaf_op(a->count + b->count);
      co_return detail::leaf_intersect(st, a, b);
    }
  }
  if (a->pri < b->pri) std::swap(a, b);
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(a)) a = detail::open_leaf(st, a);
  }
  StrictSplit<P> s = co_await splitm_strict(ex, st, a->key, b);
  auto [l, r] = co_await ex.fork_join2(
      intersect_strict(ex, st, peek<P>(a->left), s.less),
      intersect_strict(ex, st, peek<P>(a->right), s.greater));
  if (s.equal != nullptr) co_return st.make_ready(a->key, a->pri, l, r);
  co_return co_await join_strict(ex, st, l, r);
}

template <typename Ex, typename P = typename Ex::Policy>
Task<Node<P>*> diff_strict(Ex ex, Store<P>& st, Node<P>* a, Node<P>* b) {
  ex.step();
  if (a == nullptr) co_return nullptr;
  if (b == nullptr) co_return a;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(a) && is_leaf(b)) {
      ex.on_leaf_op(a->count + b->count);
      co_return detail::leaf_diff(st, a, b);
    }
  }
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(a)) a = detail::open_leaf(st, a);
  }
  StrictSplit<P> s = co_await splitm_strict(ex, st, a->key, b);
  auto [l, r] =
      co_await ex.fork_join2(diff_strict(ex, st, peek<P>(a->left), s.less),
                             diff_strict(ex, st, peek<P>(a->right), s.greater));
  if (s.equal != nullptr) co_return co_await join_strict(ex, st, l, r);
  co_return st.make_ready(a->key, a->pri, l, r);
}

// ---- analysis helpers (no substrate actions) --------------------------------

template <typename P>
void collect_inorder(const Node<P>* root, std::vector<Key>& out) {
  if (root == nullptr) return;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(root)) {
      for (std::uint32_t i = 0; i < root->count; ++i)
        out.push_back(root->items[i].key);
      return;
    }
  }
  collect_inorder(peek<P>(root->left), out);
  out.push_back(root->key);
  collect_inorder(peek<P>(root->right), out);
}

template <typename P>
int height(const Node<P>* root) {
  if (root == nullptr) return 0;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(root)) return 1;
  }
  return 1 +
         std::max(height(peek<P>(root->left)), height(peek<P>(root->right)));
}

// Number of *keys* (a leaf chunk contributes all its entries), so the size
// semantics match the node-per-key layout.
template <typename P>
std::uint64_t count_nodes(const Node<P>* root) {
  if (root == nullptr) return 0;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(root)) return root->count;
  }
  return 1 + count_nodes(peek<P>(root->left)) +
         count_nodes(peek<P>(root->right));
}

template <typename P>
typename P::Time max_created(const Node<P>* root) {
  if (root == nullptr) return 0;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(root)) return root->created;
  }
  return std::max({root->created, max_created(peek<P>(root->left)),
                   max_created(peek<P>(root->right))});
}

// Software cache-economy of a finished tree: how many cache lines an
// operation has to touch, and how they are spent.
struct CacheEconomy {
  std::uint64_t internal_nodes = 0;
  std::uint64_t leaf_chunks = 0;
  std::uint64_t leaf_keys = 0;  // keys stored inside chunks
};

template <typename P>
void cache_economy_of(const Node<P>* root, CacheEconomy& ce) {
  if (root == nullptr) return;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(root)) {
      ++ce.leaf_chunks;
      ce.leaf_keys += root->count;
      return;
    }
  }
  ++ce.internal_nodes;
  cache_economy_of(peek<P>(root->left), ce);
  cache_economy_of(peek<P>(root->right), ce);
}

namespace detail {
template <typename P>
bool valid_in_range(const Store<P>& st, const Node<P>* n, const Key* lo,
                    const Key* hi, Pri max_pri) {
  if (n == nullptr) return true;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(n)) {
      if (n->count == 0 || n->root_pos >= n->count) return false;
      if (n->pri > max_pri) return false;
      Pri best = 0;
      for (std::uint32_t i = 0; i < n->count; ++i) {
        const LeafEntry& e = n->items[i];
        if (lo && e.key <= *lo) return false;
        if (hi && e.key >= *hi) return false;
        if (i > 0 && n->items[i - 1].key >= e.key) return false;
        if (e.pri > best) best = e.pri;
      }
      // The node record mirrors the max-priority entry.
      return n->items[n->root_pos].pri == best &&
             n->key == n->items[n->root_pos].key &&
             n->pri == n->items[n->root_pos].pri;
    }
  }
  if (lo && n->key <= *lo) return false;
  if (hi && n->key >= *hi) return false;
  if (n->pri > max_pri) return false;
  return valid_in_range(st, peek<P>(n->left), lo, &n->key, n->pri) &&
         valid_in_range(st, peek<P>(n->right), &n->key, hi, n->pri);
}
}  // namespace detail

// Full treap invariant: BST order on keys, heap order on priorities. The
// recursion checks order against the *cached* priorities (they are copied,
// never recomputed, by every operation); consistency with the store's hash
// is spot-checked once at the root instead of rehashing every node.
template <typename P>
bool validate(const Store<P>& st, const Node<P>* root) {
  if (root == nullptr) return true;
  if (root->pri != st.priority(root->key)) return false;
  return detail::valid_in_range(st, root, nullptr, nullptr,
                                std::numeric_limits<Pri>::max());
}

}  // namespace pwf::pipelined::treap
