// Single-source treaps (the paper's Sections 3.2–3.3) — splitm, union,
// join, difference, intersection, plus the strict fork-join baselines —
// written once against the substrate concept (docs/substrates.md) and
// instantiated by src/treap (cost model), src/runtime/rt_treap (coroutine
// runtime sets) and src/runtime/rt_map (coroutine runtime maps).
//
// Every body is parameterized on an Entry policy E (treap_entry.hpp):
//   * SetEntry keeps the paper's key-only semantics — all payload and
//     augmentation statements are `if constexpr`-dead, so the recorded
//     cost-model counts are bit-identical to the key-only formulation;
//   * MapEntry<V> carries a value; union takes a Merge functor applied in
//     *operand* order (merge(value_in_a, value_in_b), tracked by `flip`
//     across the priority swaps), difference drops b's values;
//   * AugEntry adds a PAM-style augmentation: each node owns one extra
//     future cell holding combine() over its subtree, recomputed by a
//     forked aug_into fiber per rebuilt node — the aggregate flows through
//     the same pipelined DAG as the structure itself (docs/augmentation.md).
//
// Priorities are derived from keys by hashing (splitmix64 with a store-wide
// salt), so a key has the same priority in every treap of a store; this
// preserves the paper's randomness assumption because the hash is a PRF of
// the key. The hash is computed once per key at build time and cached in the
// node / leaf-entry record; the hot bodies below only ever compare cached
// priorities.
//
// Storage is B-treap-style (docs/storage.md): internal nodes keep the
// key/priority/child layout in one cache line, while subtrees below the
// store's leaf capacity collapse into sorted flat chunks of LeafEntryT that
// the serial fast paths process branch-free. Substrates opt in through
// P::kMaxLeafCapacity — the cost model pins it to 0, so every leaf branch is
// `if constexpr`-dead there and the recorded DAG counts stay bit-identical.
#pragma once

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "pipelined/exec.hpp"
#include "pipelined/treap_entry.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace pwf::pipelined::treap {

template <typename P, typename E = SetEntry>
struct Node;

template <typename P, typename E = SetEntry>
using Cell = typename P::template Cell<Node<P, E>*>;

// One key of a flat leaf chunk. The priority is cached alongside the key so
// re-chunking (slices, merges, joins) never rehashes; the value column
// vanishes for key-only entries.
template <typename E>
struct LeafEntryT {
  Key key = 0;
  Pri pri = 0;
  [[no_unique_address]] typename E::Value value{};
};

// Key-only alias, kept for the set-facade code that scans chunks directly.
using LeafEntry = LeafEntryT<SetEntry>;

namespace detail {

// Augmented nodes own one extra future cell: the subtree aggregate, written
// by the aug_into fiber (or preset by the chunk builders). Empty base for
// unaugmented entries so the node layout doesn't move.
template <typename P, typename E, bool = E::kHasAug>
struct AugBase {};

template <typename P, typename E>
struct AugBase<P, E, true> {
  typename P::template Cell<typename E::AugOps::Aug>* aug = nullptr;
};

}  // namespace detail

// A node is either *internal* (items == nullptr; left/right are cells) or a
// *leaf view* (items != nullptr; left/right unused): a window [items,
// items+count) into an immutable, key-sorted, arena-backed entry array. A
// leaf's key/pri/value mirror its maximum-priority entry (items[root_pos]) —
// the root the subtree would have had — so every priority comparison in the
// bodies below works on leaves unchanged.
template <typename P, typename E>
struct Node : detail::AugBase<P, E> {
  using Policy = P;
  using Entry = E;

  Key key = 0;
  Pri pri = 0;
  [[no_unique_address]] typename E::Value value{};
  typename P::Time created{};  // t(v) (cost model only)
  Cell<P, E>* left = nullptr;
  Cell<P, E>* right = nullptr;
  const LeafEntryT<E>* items = nullptr;  // leaf view into a sorted chunk
  std::uint32_t count = 0;               // number of entries in the view
  std::uint32_t root_pos = 0;            // index of the max-priority entry
};

template <typename P, typename E>
bool is_leaf(const Node<P, E>* n) {
  return n != nullptr && n->items != nullptr;
}

inline constexpr std::uint64_t kDefaultSalt = 0x9e3779b97f4a7c15ULL;

// Default flat-chunk capacity: picked by the bench_e19 --leaf-cap sweep
// (BENCH_e19.json); tunable per Store.
inline constexpr std::size_t kDefaultLeafCapacity = 32;

template <typename P, typename E = SetEntry>
class Store {
 public:
  using Context = typename P::Context;
  using Entry = E;
  using Value = typename E::Value;
  using AugValue = typename AugTraits<E>::Aug;

  // Internal nodes must stay within one cache line — the point of caching
  // the priority and packing the leaf view into the node record. Augmented
  // nodes spend one extra pointer on the aggregate cell; payloads beyond a
  // word trade the line for locality of the payload itself.
  static_assert(E::kHasAug || sizeof(Value) > 8 || sizeof(Node<P, E>) <= 64,
                "treap::Node must fit in a 64-byte cache line");

  explicit Store(Context ctx, std::uint64_t salt = kDefaultSalt,
                 std::size_t leaf_cap = kDefaultLeafCapacity)
      : ctx_(std::move(ctx)), salt_(salt), leaf_cap_(clamp_cap(leaf_cap)) {}
  explicit Store(std::uint64_t salt = kDefaultSalt,
                 std::size_t leaf_cap = kDefaultLeafCapacity)
    requires std::default_initializable<Context>
      : salt_(salt), leaf_cap_(clamp_cap(leaf_cap)) {}

  decltype(auto) engine() { return ctx_.engine(); }

  Pri priority(Key k) const {
    std::uint64_t x = static_cast<std::uint64_t>(k) ^ salt_;
    return splitmix64(x);
  }

  // Effective flat-chunk capacity: 1 means "no chunking" (every key is its
  // own node); the substrate's kMaxLeafCapacity bounds it from above.
  std::size_t leaf_capacity() const { return leaf_cap_; }

  Cell<P, E>* cell() { return arena_.template create<Cell<P, E>>(); }

  Cell<P, E>* input(Node<P, E>* root) {
    Cell<P, E>* c = cell();
    P::preset(*c, root);
    return c;
  }

  Node<P, E>* make(Key key, Pri pri, Cell<P, E>* l, Cell<P, E>* r) {
    Node<P, E>* n = create_node();
    n->key = key;
    n->pri = pri;
    n->left = l;
    n->right = r;
    return n;
  }

  Node<P, E>* make(Key key, Pri pri) { return make(key, pri, cell(), cell()); }

  Node<P, E>* make_ready(Key key, Pri pri, Node<P, E>* l, Node<P, E>* r) {
    return make(key, pri, input(l), input(r));
  }

  // 64-byte-aligned chunk storage for leaf entries.
  LeafEntryT<E>* alloc_entries(std::size_t n) {
    return static_cast<LeafEntryT<E>*>(
        arena_.allocate(n * sizeof(LeafEntryT<E>), 64));
  }

  // Leaf view over base[lo, hi) (hi > lo); scans for the max-priority entry.
  // The chunk is fully materialized data, so an augmented leaf's aggregate
  // is preset here — leaf aug cells are *always* readable.
  Node<P, E>* make_leaf(const LeafEntryT<E>* base, std::uint32_t lo,
                        std::uint32_t hi) {
    std::uint32_t rp = lo;
    for (std::uint32_t i = lo + 1; i < hi; ++i)
      if (base[i].pri > base[rp].pri) rp = i;
    Node<P, E>* n = create_node();
    n->key = base[rp].key;
    n->pri = base[rp].pri;
    n->value = base[rp].value;
    n->items = base + lo;
    n->count = hi - lo;
    n->root_pos = rp - lo;
    if constexpr (E::kHasAug) {
      using Ops = typename E::AugOps;
      AugValue acc = Ops::identity();
      for (std::uint32_t i = lo; i < hi; ++i)
        acc = Ops::combine(acc, Ops::from_entry(base[i].key, base[i].value));
      P::preset(*n->aug, acc);
    }
    return n;
  }

  // Treap over a sorted, duplicate-free entry range: ranges at or below the
  // leaf capacity become flat chunks, larger ones get an internal node at
  // the max-priority entry. Equivalent (same keys, same heap/BST shape above
  // the chunks) to the node-per-key treap over the same keys. Aggregates are
  // preset bottom-up (children are complete when the parent is made).
  Node<P, E>* chunked(const LeafEntryT<E>* base, std::uint32_t lo,
                      std::uint32_t hi) {
    if (lo == hi) return nullptr;
    if (hi - lo <= leaf_cap_) return make_leaf(base, lo, hi);
    std::uint32_t rp = lo;
    for (std::uint32_t i = lo + 1; i < hi; ++i)
      if (base[i].pri > base[rp].pri) rp = i;
    Node<P, E>* l = chunked(base, lo, rp);
    Node<P, E>* r = chunked(base, rp + 1, hi);
    Node<P, E>* n = make(base[rp].key, base[rp].pri, input(l), input(r));
    n->value = base[rp].value;
    if constexpr (E::kHasAug) {
      using Ops = typename E::AugOps;
      AugValue acc = Ops::identity();
      if (l != nullptr) acc = Ops::combine(acc, P::peek(l->aug));
      acc = Ops::combine(acc, Ops::from_entry(n->key, n->value));
      if (r != nullptr) acc = Ops::combine(acc, P::peek(r->aug));
      P::preset(*n->aug, acc);
    }
    return n;
  }

  // Builds a treap over the given keys (input data; costs nothing in the
  // model). Keys are sorted and deduplicated. With chunking enabled the tree
  // is built over a flat entry array (hashing each priority exactly once);
  // otherwise construction is the O(n) right-spine (Cartesian tree) method.
  Node<P, E>* build(std::span<const Key> keys) {
    std::vector<Key> sorted(keys.begin(), keys.end());
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

    if constexpr (P::kMaxLeafCapacity > 0) {
      if (leaf_cap_ > 1 && !sorted.empty()) {
        LeafEntryT<E>* e = alloc_entries(sorted.size());
        for (std::size_t i = 0; i < sorted.size(); ++i)
          e[i] = {sorted[i], priority(sorted[i])};
        return chunked(e, 0, static_cast<std::uint32_t>(sorted.size()));
      }
    }

    // Each new (larger) key pops smaller-priority spine nodes and adopts the
    // popped chain as its left subtree. Adopted links get fresh preset cells
    // (runtime cells are write-once, so the placeholder can't be rewritten).
    std::vector<Node<P, E>*> spine;
    spine.reserve(64);
    for (Key k : sorted) {
      Node<P, E>* n = make_ready(k, priority(k), nullptr, nullptr);
      Node<P, E>* last_popped = nullptr;
      while (!spine.empty() && spine.back()->pri < n->pri) {
        last_popped = spine.back();
        spine.pop_back();
      }
      if (last_popped != nullptr) n->left = input(last_popped);
      if (!spine.empty()) spine.back()->right = input(n);
      spine.push_back(n);
    }
    Node<P, E>* root = spine.empty() ? nullptr : spine.front();
    if constexpr (E::kHasAug) preset_augs(root);
    return root;
  }

  // Construction over key-sorted, duplicate-free (key, value) items (input
  // data): hashes each priority once into a flat item array, then chunks it.
  // With leaf_cap == 1 falls back to the O(n) right-spine method.
  Node<P, E>* build(std::span<const std::pair<Key, Value>> sorted)
    requires(E::kHasValue)
  {
    if constexpr (P::kMaxLeafCapacity > 0) {
      if (leaf_cap_ > 1 && !sorted.empty()) {
        LeafEntryT<E>* e = alloc_entries(sorted.size());
        for (std::size_t i = 0; i < sorted.size(); ++i)
          e[i] = {sorted[i].first, priority(sorted[i].first),
                  sorted[i].second};
        return chunked(e, 0, static_cast<std::uint32_t>(sorted.size()));
      }
    }
    std::vector<Node<P, E>*> spine;
    spine.reserve(64);
    for (const auto& [k, v] : sorted) {
      Node<P, E>* n = make_ready(k, priority(k), nullptr, nullptr);
      n->value = v;
      Node<P, E>* last_popped = nullptr;
      while (!spine.empty() && spine.back()->pri < n->pri) {
        last_popped = spine.back();
        spine.pop_back();
      }
      if (last_popped != nullptr) n->left = input(last_popped);
      if (!spine.empty()) spine.back()->right = input(n);
      spine.push_back(n);
    }
    Node<P, E>* root = spine.empty() ? nullptr : spine.front();
    if constexpr (E::kHasAug) preset_augs(root);
    return root;
  }

  std::size_t bytes_used() const { return arena_.bytes_used(); }

  // Arena monitoring passthrough; only instantiated for arenas that track
  // padding (the runtime's ConcurrentArena).
  std::size_t wasted_padding() const { return arena_.wasted_padding(); }

  // Leaf-chunk operations (merge/split/concat of flat runs) performed
  // against this store, across all substrates and both the serial and
  // pipelined paths. Relaxed: a monitoring counter, like arena bytes.
  void note_leaf_op() const {
    leaf_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t leaf_ops() const {
    return leaf_ops_.load(std::memory_order_relaxed);
  }

 private:
  Node<P, E>* create_node() {
    Node<P, E>* n = arena_.template create<Node<P, E>>();
    if constexpr (E::kHasAug)
      n->aug = arena_.template create<
          typename P::template Cell<typename E::AugOps::Aug>>();
    return n;
  }

  // Bottom-up aggregate preset for spine-built trees (every cell of the
  // tree is already preset, so peeking children is safe).
  AugValue preset_augs(Node<P, E>* n)
    requires(E::kHasAug)
  {
    using Ops = typename E::AugOps;
    if (n == nullptr) return Ops::identity();
    if (is_leaf(n)) return P::peek(n->aug);
    AugValue acc = preset_augs(P::peek(n->left));
    acc = Ops::combine(acc, Ops::from_entry(n->key, n->value));
    acc = Ops::combine(acc, preset_augs(P::peek(n->right)));
    P::preset(*n->aug, acc);
    return acc;
  }

  static std::size_t clamp_cap(std::size_t req) {
    if constexpr (P::kMaxLeafCapacity == 0) {
      return 1;
    } else {
      return std::min(std::max<std::size_t>(req, 1), P::kMaxLeafCapacity);
    }
  }

  Context ctx_;
  std::uint64_t salt_ = kDefaultSalt;
  std::size_t leaf_cap_ = 1;
  mutable std::atomic<std::uint64_t> leaf_ops_{0};
  typename P::Arena arena_;
};

// Publishes a node into its destination cell, stamping t(v) where the
// substrate keeps timestamps.
template <typename Ex, typename P, typename E>
void publish(Ex ex, Cell<P, E>* out, Node<P, E>* n) {
  ex.write(out, n);
  if constexpr (P::kHasTimestamps) {
    if (n) n->created = out->ts;
  }
}

template <typename P, typename C>
auto peek(const C* c) {
  return P::peek(c);
}

// ---- augmentation -----------------------------------------------------------

// Recomputes one rebuilt internal node's aggregate from its children. This
// is itself a pipelined consumer: it touches the child cells and the child
// aggregate cells, so the aggregate flows bottom-up through the same future
// DAG as the structure (the paper's pipelining argument, applied to PAM-style
// augmentation). Leaf chunks never get here — their aggregates are preset by
// make_leaf. Note the deliberate CREW reads: an aug fiber re-reads cells the
// structural fibers also read, so augmented traces are verified with the
// EREW/linearity checks relaxed (docs/augmentation.md).
template <typename Ex, typename P, typename E>
Fiber aug_into(Ex ex, Node<P, E>* n) {
  using Ops = typename E::AugOps;
  typename E::AugOps::Aug acc = Ops::identity();
  Node<P, E>* l = co_await ex.touch(n->left);
  if (l != nullptr) acc = Ops::combine(acc, co_await ex.touch(l->aug));
  acc = Ops::combine(acc, Ops::from_entry(n->key, n->value));
  Node<P, E>* r = co_await ex.touch(n->right);
  if (r != nullptr) acc = Ops::combine(acc, co_await ex.touch(r->aug));
  ex.on_aug_op();
  ex.write(n->aug, acc);
}

namespace detail {

// Deferred aug_into forks for the progressive bodies (splitm, join): their
// nodes are published *before* the child cells are written, so the aug
// fibers can only be forked at the body's exits — in reverse creation order,
// because later nodes are descendants of earlier ones and the eager
// substrates require a valid topological fork order. Empty (and free) for
// unaugmented entries.
template <typename P, typename E, bool = E::kHasAug>
struct AugPending {
  void add(Node<P, E>*) {}
  template <typename Ex>
  void flush(Ex) {}
};

template <typename P, typename E>
struct AugPending<P, E, true> {
  std::vector<Node<P, E>*> nodes;
  void add(Node<P, E>* n) { nodes.push_back(n); }
  template <typename Ex>
  void flush(Ex ex) {
    for (auto it = nodes.rbegin(); it != nodes.rend(); ++it)
      ex.fork(aug_into(ex, *it));
    nodes.clear();
  }
};

// Forks the aggregate recomputation for one freshly built node whose child
// cells are already linked (the non-progressive creation sites).
template <typename Ex, typename P, typename E>
void fork_aug(Ex ex, Node<P, E>* n) {
  if constexpr (E::kHasAug) ex.fork(aug_into(ex, n));
}

}  // namespace detail

// ---- serial fast paths (granularity control) --------------------------------
//
// Plain recursive counterparts of the pipelined bodies, taken when the
// relevant subtrees are fully materialized within Ex::serial_threshold()
// nodes (see trees.hpp for the scheme). Unlike the strict baselines below,
// these mirror the *pipelined* semantics exactly — including value and
// aggregate propagation — so the published result is indistinguishable from
// the one the forked path would build. They take the executor only to fork
// aggregate fibers (child aggregates of a pre-existing tree may still be in
// flight on the runtime substrate, so even the serial path cannot compute
// them synchronously). Dead on the cost-model substrates (threshold 0), as
// is every leaf branch (kMaxLeafCapacity 0).

namespace detail {

inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}

template <typename P, typename E>
bool tree_avail(const Node<P, E>* n, std::size_t& budget) {
  if (n == nullptr) return true;
  if (budget == 0) return false;
  --budget;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (n->items != nullptr) return true;  // leaf chunks are always complete
  }
  if (!P::ready(n->left) || !P::ready(n->right)) return false;
  return tree_avail(P::peek(n->left), budget) &&
         tree_avail(P::peek(n->right), budget);
}

template <typename P, typename E>
struct SerialSplit {
  Node<P, E>* less = nullptr;
  Node<P, E>* greater = nullptr;
  Node<P, E>* equal = nullptr;
};

// ---- leaf-chunk primitives --------------------------------------------------
//
// Only instantiated when P::kMaxLeafCapacity > 0. All of them operate on the
// immutable entry arrays, so slices share storage with their source leaf and
// only merges/joins allocate new chunks.

// Sub-view of a leaf, [lo, hi) relative to leaf->items. Empty -> nullptr.
template <typename P, typename E>
Node<P, E>* leaf_slice(Store<P, E>& st, const Node<P, E>* leaf,
                       std::uint32_t lo, std::uint32_t hi) {
  if (lo >= hi) return nullptr;
  return st.make_leaf(leaf->items, lo, hi);
}

// The subtree a leaf's root entry would have on each side.
template <typename P, typename E>
Node<P, E>* left_part(Store<P, E>& st, Node<P, E>* t) {
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t)) return leaf_slice(st, t, 0, t->root_pos);
  }
  return peek<P>(t->left);
}

template <typename P, typename E>
Node<P, E>* right_part(Store<P, E>& st, Node<P, E>* t) {
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t)) return leaf_slice(st, t, t->root_pos + 1, t->count);
  }
  return peek<P>(t->right);
}

// Rewrites a leaf as an internal node (same key/pri/value, preset side
// slices) so the pipelined bodies can hand out child cells. The opened node
// is only ever consumed as an operand (never published), but its aggregate
// is preset anyway — copied from the leaf — so every node keeps the "aug
// cell readable or in flight" invariant.
template <typename P, typename E>
Node<P, E>* open_leaf(Store<P, E>& st, Node<P, E>* t) {
  Node<P, E>* n = st.make(t->key, t->pri, st.input(left_part(st, t)),
                          st.input(right_part(st, t)));
  n->value = t->value;
  if constexpr (E::kHasAug) P::preset(*n->aug, P::peek(t->aug));
  return n;
}

// splitm on a flat chunk: one binary search, two zero-copy slices. The equal
// verdict is a one-entry leaf view carrying the value (the set path only
// null-checks it).
template <typename P, typename E>
SerialSplit<P, E> split_leaf(Store<P, E>& st, Key s, const Node<P, E>* t) {
  st.note_leaf_op();
  const LeafEntryT<E>* e = t->items;
  const std::uint32_t n = t->count;
  std::uint32_t lo = 0, hi = n;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (e[mid].key < s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  SerialSplit<P, E> out;
  out.less = leaf_slice(st, t, 0, lo);
  if (lo < n && e[lo].key == s) {
    out.equal = st.make_leaf(e, lo, lo + 1);
    out.greater = leaf_slice(st, t, lo + 1, n);
  } else {
    out.greater = leaf_slice(st, t, lo, n);
  }
  return out;
}

// Sorted-array union of two chunks; a shared key keeps
// merge(value_in_a, value_in_b) (`flip` says (a, b) arrived swapped relative
// to the caller's operand order). Re-chunks the merged array (an internal
// spine appears only above the capacity).
template <typename P, typename E, typename Merge>
Node<P, E>* leaf_union(Store<P, E>& st, const Node<P, E>* a,
                       const Node<P, E>* b, Merge merge, bool flip) {
  st.note_leaf_op();
  LeafEntryT<E>* out = st.alloc_entries(a->count + b->count);
  const LeafEntryT<E>* x = a->items;
  const LeafEntryT<E>* xe = x + a->count;
  const LeafEntryT<E>* y = b->items;
  const LeafEntryT<E>* ye = y + b->count;
  LeafEntryT<E>* w = out;
  while (x != xe && y != ye) {
    prefetch(x + 4);
    prefetch(y + 4);
    if (x->key < y->key) {
      *w++ = *x++;
    } else if (y->key < x->key) {
      *w++ = *y++;
    } else {
      *w = *x;
      w->value = flip ? merge(y->value, x->value) : merge(x->value, y->value);
      ++w;
      ++x;
      ++y;
    }
  }
  while (x != xe) *w++ = *x++;
  while (y != ye) *w++ = *y++;
  return st.chunked(out, 0, static_cast<std::uint32_t>(w - out));
}

// Sorted-array difference a \ b (b's values are irrelevant).
template <typename P, typename E>
Node<P, E>* leaf_diff(Store<P, E>& st, const Node<P, E>* a,
                      const Node<P, E>* b) {
  st.note_leaf_op();
  LeafEntryT<E>* out = st.alloc_entries(a->count);
  const LeafEntryT<E>* x = a->items;
  const LeafEntryT<E>* xe = x + a->count;
  const LeafEntryT<E>* y = b->items;
  const LeafEntryT<E>* ye = y + b->count;
  LeafEntryT<E>* w = out;
  while (x != xe && y != ye) {
    prefetch(x + 4);
    prefetch(y + 4);
    if (x->key < y->key) {
      *w++ = *x++;
    } else if (y->key < x->key) {
      ++y;
    } else {
      ++x;
      ++y;
    }
  }
  while (x != xe) *w++ = *x++;
  return st.chunked(out, 0, static_cast<std::uint32_t>(w - out));
}

// Sorted-array intersection (a's values survive).
template <typename P, typename E>
Node<P, E>* leaf_intersect(Store<P, E>& st, const Node<P, E>* a,
                           const Node<P, E>* b) {
  st.note_leaf_op();
  LeafEntryT<E>* out = st.alloc_entries(std::min(a->count, b->count));
  const LeafEntryT<E>* x = a->items;
  const LeafEntryT<E>* xe = x + a->count;
  const LeafEntryT<E>* y = b->items;
  const LeafEntryT<E>* ye = y + b->count;
  LeafEntryT<E>* w = out;
  while (x != xe && y != ye) {
    prefetch(x + 4);
    prefetch(y + 4);
    if (x->key < y->key) {
      ++x;
    } else if (y->key < x->key) {
      ++y;
    } else {
      *w++ = *x++;
      ++y;
    }
  }
  return st.chunked(out, 0, static_cast<std::uint32_t>(w - out));
}

// join of two chunks (all of a's keys < all of b's): flat concatenation.
template <typename P, typename E>
Node<P, E>* leaf_concat(Store<P, E>& st, const Node<P, E>* a,
                        const Node<P, E>* b) {
  st.note_leaf_op();
  LeafEntryT<E>* out = st.alloc_entries(a->count + b->count);
  std::memcpy(out, a->items, a->count * sizeof(LeafEntryT<E>));
  std::memcpy(out + a->count, b->items, b->count * sizeof(LeafEntryT<E>));
  return st.chunked(out, 0, a->count + b->count);
}

// ---- serial recursive bodies ------------------------------------------------

template <typename Ex, typename P, typename E>
SerialSplit<P, E> splitm_serial(Ex ex, Store<P, E>& st, Key s, Node<P, E>* t) {
  if (t == nullptr) return {};
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t)) return split_leaf(st, s, t);
  }
  if (s < t->key) {
    SerialSplit<P, E> sub = splitm_serial(ex, st, s, peek<P>(t->left));
    sub.greater = st.make(t->key, t->pri, st.input(sub.greater), t->right);
    sub.greater->value = t->value;
    fork_aug(ex, sub.greater);
    return sub;
  }
  if (s > t->key) {
    SerialSplit<P, E> sub = splitm_serial(ex, st, s, peek<P>(t->right));
    sub.less = st.make(t->key, t->pri, t->left, st.input(sub.less));
    sub.less->value = t->value;
    fork_aug(ex, sub.less);
    return sub;
  }
  return {peek<P>(t->left), peek<P>(t->right), t};
}

template <typename Ex, typename P, typename E>
Node<P, E>* join_serial(Ex ex, Store<P, E>& st, Node<P, E>* t1,
                        Node<P, E>* t2) {
  if (t1 == nullptr) return t2;
  if (t2 == nullptr) return t1;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t1) && is_leaf(t2)) return leaf_concat(st, t1, t2);
  }
  Node<P, E>* res;
  if (t1->pri >= t2->pri) {
    if constexpr (P::kMaxLeafCapacity > 0) {
      if (is_leaf(t1)) t1 = open_leaf(st, t1);
    }
    Node<P, E>* j = join_serial(ex, st, peek<P>(t1->right), t2);
    res = st.make(t1->key, t1->pri, t1->left, st.input(j));
    res->value = t1->value;
  } else {
    if constexpr (P::kMaxLeafCapacity > 0) {
      if (is_leaf(t2)) t2 = open_leaf(st, t2);
    }
    Node<P, E>* j = join_serial(ex, st, t1, peek<P>(t2->left));
    res = st.make(t2->key, t2->pri, st.input(j), t2->right);
    res->value = t2->value;
  }
  fork_aug(ex, res);
  return res;
}

template <typename Ex, typename P, typename E, typename Merge>
Node<P, E>* union_serial(Ex ex, Store<P, E>& st, Node<P, E>* ta,
                         Node<P, E>* tb, Merge merge, bool flip) {
  if (ta == nullptr) return tb;
  if (tb == nullptr) return ta;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(ta) && is_leaf(tb)) return leaf_union(st, ta, tb, merge, flip);
  }
  if (ta->pri < tb->pri) {
    std::swap(ta, tb);
    flip = !flip;
  }
  SerialSplit<P, E> s = splitm_serial(ex, st, ta->key, tb);
  Node<P, E>* res = st.make_ready(
      ta->key, ta->pri,
      union_serial(ex, st, left_part(st, ta), s.less, merge, flip),
      union_serial(ex, st, right_part(st, ta), s.greater, merge, flip));
  res->value = ta->value;
  if constexpr (E::kHasValue) {
    if (s.equal != nullptr)
      res->value = flip ? merge(s.equal->value, ta->value)
                        : merge(ta->value, s.equal->value);
  }
  fork_aug(ex, res);
  return res;
}

template <typename Ex, typename P, typename E>
Node<P, E>* diff_serial(Ex ex, Store<P, E>& st, Node<P, E>* t1,
                        Node<P, E>* t2) {
  if (t1 == nullptr) return nullptr;
  if (t2 == nullptr) return t1;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t1) && is_leaf(t2)) return leaf_diff(st, t1, t2);
  }
  SerialSplit<P, E> s = splitm_serial(ex, st, t1->key, t2);
  Node<P, E>* l = diff_serial(ex, st, left_part(st, t1), s.less);
  Node<P, E>* r = diff_serial(ex, st, right_part(st, t1), s.greater);
  if (s.equal != nullptr) return join_serial(ex, st, l, r);
  Node<P, E>* res = st.make_ready(t1->key, t1->pri, l, r);
  res->value = t1->value;
  fork_aug(ex, res);
  return res;
}

template <typename Ex, typename P, typename E>
Node<P, E>* intersect_serial(Ex ex, Store<P, E>& st, Node<P, E>* ta,
                             Node<P, E>* tb) {
  if (ta == nullptr || tb == nullptr) return nullptr;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(ta) && is_leaf(tb)) return leaf_intersect(st, ta, tb);
  }
  if (ta->pri < tb->pri) std::swap(ta, tb);
  SerialSplit<P, E> s = splitm_serial(ex, st, ta->key, tb);
  Node<P, E>* l = intersect_serial(ex, st, left_part(st, ta), s.less);
  Node<P, E>* r = intersect_serial(ex, st, right_part(st, ta), s.greater);
  if (s.equal == nullptr) return join_serial(ex, st, l, r);
  Node<P, E>* res = st.make_ready(ta->key, ta->pri, l, r);
  res->value = ta->value;
  fork_aug(ex, res);
  return res;
}

}  // namespace detail

// ---- pipelined versions (Figures 4 and 7) -----------------------------------

// splitm (Figure 4): splits the available treap rooted at `t` by key `s`.
// Keys < s are published progressively under *outL, keys > s under *outR; a
// node with key == s is excluded from both and, when outEq != nullptr,
// delivered through it (nullptr if s was absent). outEq is written only when
// the traversal terminates — the "splitm completes as soon as it finds the
// splitter" behaviour diff depends on.
template <typename Ex, typename P, typename E>
Fiber splitm_from(Ex ex, Store<P, E>& st, Key s, Node<P, E>* t,
                  Cell<P, E>* outL, Cell<P, E>* outR, Cell<P, E>* outEq) {
  detail::AugPending<P, E> augs;
  for (;;) {
    if (t == nullptr) {
      ex.write(outL, static_cast<Node<P, E>*>(nullptr));
      ex.write(outR, static_cast<Node<P, E>*>(nullptr));
      if (outEq) ex.write(outEq, static_cast<Node<P, E>*>(nullptr));
      augs.flush(ex);
      co_return;
    }
    if constexpr (P::kMaxLeafCapacity > 0) {
      if (is_leaf(t)) {
        ex.on_leaf_op(t->count);
        detail::SerialSplit<P, E> sp = detail::split_leaf(st, s, t);
        publish(ex, outL, sp.less);
        publish(ex, outR, sp.greater);
        if (outEq) ex.write(outEq, sp.equal);
        augs.flush(ex);
        co_return;
      }
    }
    if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
      std::size_t budget = thr;
      if (detail::tree_avail(t, budget)) {
        ex.on_serial_cutoff();
        detail::SerialSplit<P, E> sp = detail::splitm_serial(ex, st, s, t);
        publish(ex, outL, sp.less);
        publish(ex, outR, sp.greater);
        if (outEq) ex.write(outEq, sp.equal);
        augs.flush(ex);
        co_return;
      }
    }
    ex.step();  // key comparison
    if (s < t->key) {
      Node<P, E>* keep = st.make(t->key, t->pri, st.cell(), t->right);
      keep->value = t->value;
      publish(ex, outR, keep);
      augs.add(keep);
      outR = keep->left;
      t = co_await ex.touch(t->left);
    } else if (s > t->key) {
      Node<P, E>* keep = st.make(t->key, t->pri, t->left, st.cell());
      keep->value = t->value;
      publish(ex, outL, keep);
      augs.add(keep);
      outL = keep->right;
      t = co_await ex.touch(t->right);
    } else {
      // Splitter found: its subtrees are the two sides; the node itself is
      // excluded (and reported through outEq for difference and the map
      // union's value merge).
      ex.write(outL, co_await ex.touch(t->left));
      ex.write(outR, co_await ex.touch(t->right));
      if (outEq) ex.write(outEq, t);
      augs.flush(ex);
      co_return;
    }
  }
}

// Pipelined union (Figure 4): keys of both treaps, duplicates removed, heap
// and BST order restored. Consumes both inputs. For value-carrying entries a
// shared key keeps merge(value_in_a, value_in_b) — operand order, tracked by
// `flip` across priority swaps — which requires waiting for splitm's equal
// verdict before publishing each root (the set path keeps the original
// publish-before-verdict pipeline, so its recorded counts don't move).
template <typename Ex, typename P, typename E, typename Merge = FirstWins>
Fiber union_into(Ex ex, Store<P, E>& st, Cell<P, E>* a, Cell<P, E>* b,
                 Cell<P, E>* out, Merge merge = {}, bool flip = false) {
  Node<P, E>* ta = co_await ex.touch(a);
  Node<P, E>* tb = co_await ex.touch(b);
  if (ta == nullptr) {
    publish(ex, out, tb);
    co_return;
  }
  if (tb == nullptr) {
    publish(ex, out, ta);
    co_return;
  }
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(ta) && is_leaf(tb)) {
      ex.on_leaf_op(ta->count + tb->count);
      publish(ex, out, detail::leaf_union(st, ta, tb, merge, flip));
      co_return;
    }
  }
  if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
    std::size_t budget = thr;
    if (detail::tree_avail(ta, budget) && detail::tree_avail(tb, budget)) {
      ex.on_serial_cutoff();
      publish(ex, out, detail::union_serial(ex, st, ta, tb, merge, flip));
      co_return;
    }
  }
  ex.step();  // priority comparison
  if (ta->pri < tb->pri) {  // higher priority becomes root
    std::swap(ta, tb);
    flip = !flip;
  }
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(ta)) ta = detail::open_leaf(st, ta);
  }
  Node<P, E>* res = st.make(ta->key, ta->pri);
  res->value = ta->value;
  Cell<P, E>* l2 = st.cell();
  Cell<P, E>* r2 = st.cell();
  Cell<P, E>* eq = nullptr;
  if constexpr (E::kHasValue) eq = st.cell();
  const Key v = ta->key;
  ex.fork(splitm_from(ex, st, v, tb, l2, r2, eq));
  ex.fork(union_into(ex, st, ta->left, l2, res->left, merge, flip));
  ex.fork(union_into(ex, st, ta->right, r2, res->right, merge, flip));
  if constexpr (E::kHasValue) {
    // The root's final value depends on whether the key is shared; unlike
    // the pure-set union we must wait for splitm's verdict before
    // publishing.
    Node<P, E>* dup = co_await ex.touch(eq);
    if (dup != nullptr)
      res->value = flip ? merge(dup->value, ta->value)
                        : merge(ta->value, dup->value);
  }
  publish(ex, out, res);
  detail::fork_aug(ex, res);
}

// join (Figure 7 helper): every key of `t1` less than every key of `t2`;
// interleaves the right spine of t1 with the left spine of t2 by priority,
// publishing progressively.
template <typename Ex, typename P, typename E>
Fiber join_from(Ex ex, Store<P, E>& st, Node<P, E>* t1, Node<P, E>* t2,
                Cell<P, E>* out) {
  detail::AugPending<P, E> augs;
  for (;;) {
    if (t1 == nullptr) {
      publish(ex, out, t2);
      augs.flush(ex);
      co_return;
    }
    if (t2 == nullptr) {
      publish(ex, out, t1);
      augs.flush(ex);
      co_return;
    }
    if constexpr (P::kMaxLeafCapacity > 0) {
      if (is_leaf(t1) && is_leaf(t2)) {
        ex.on_leaf_op(t1->count + t2->count);
        publish(ex, out, detail::leaf_concat(st, t1, t2));
        augs.flush(ex);
        co_return;
      }
    }
    if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
      std::size_t budget = thr;
      if (detail::tree_avail(t1, budget) && detail::tree_avail(t2, budget)) {
        ex.on_serial_cutoff();
        publish(ex, out, detail::join_serial(ex, st, t1, t2));
        augs.flush(ex);
        co_return;
      }
    }
    ex.step();  // priority comparison
    if (t1->pri >= t2->pri) {
      if constexpr (P::kMaxLeafCapacity > 0) {
        if (is_leaf(t1)) t1 = detail::open_leaf(st, t1);
      }
      Node<P, E>* res = st.make(t1->key, t1->pri, t1->left, st.cell());
      res->value = t1->value;
      publish(ex, out, res);
      augs.add(res);
      out = res->right;
      t1 = co_await ex.touch(t1->right);
    } else {
      if constexpr (P::kMaxLeafCapacity > 0) {
        if (is_leaf(t2)) t2 = detail::open_leaf(st, t2);
      }
      Node<P, E>* res = st.make(t2->key, t2->pri, st.cell(), t2->right);
      res->value = t2->value;
      publish(ex, out, res);
      augs.add(res);
      out = res->left;
      t2 = co_await ex.touch(t2->left);
    }
  }
}

// Forked wrapper: wait for both diff/intersect sides, then join them.
template <typename Ex, typename P, typename E>
Fiber join_entry(Ex ex, Store<P, E>& st, Cell<P, E>* l, Cell<P, E>* r,
                 Cell<P, E>* out) {
  Node<P, E>* jl = co_await ex.touch(l);
  Node<P, E>* jr = co_await ex.touch(r);
  co_await join_from(ex, st, jl, jr, out);
}

// Pipelined two-way split: keys < pivot published progressively under
// *outL, keys >= pivot under *outR. This is the rebalance primitive of the
// contention-adaptive sharded facades (a hot shard splits at its traffic
// median); the complement is join_entry. Built on splitm_from, which
// excludes a node with key == pivot from both sides — that node's priority
// need not dominate the >= side, so it is reattached as a singleton union
// (an O(lg n) pipelined fix-up that only runs when the pivot is present).
template <typename Ex, typename P, typename E>
Fiber split_at(Ex ex, Store<P, E>& st, Key pivot, Cell<P, E>* in,
               Cell<P, E>* outL, Cell<P, E>* outR) {
  Node<P, E>* t = co_await ex.touch(in);
  Cell<P, E>* greater = st.cell();
  Cell<P, E>* eq = st.cell();
  ex.fork(splitm_from(ex, st, pivot, t, outL, greater, eq));
  Node<P, E>* dup = co_await ex.touch(eq);
  if (dup == nullptr) {
    publish(ex, outR, co_await ex.touch(greater));
  } else {
    Node<P, E>* single = st.make_ready(dup->key, dup->pri, nullptr, nullptr);
    single->value = dup->value;
    if constexpr (E::kHasAug) {
      using Ops = typename E::AugOps;
      P::preset(*single->aug, Ops::from_entry(single->key, single->value));
    }
    ex.fork(union_into(ex, st, st.input(single), greater, outR));
  }
}

// Pipelined difference (Figure 7): keys of `a` not present in `b` (b's
// values are irrelevant).
template <typename Ex, typename P, typename E>
Fiber diff_into(Ex ex, Store<P, E>& st, Cell<P, E>* a, Cell<P, E>* b,
                Cell<P, E>* out) {
  Node<P, E>* t1 = co_await ex.touch(a);
  Node<P, E>* t2 = co_await ex.touch(b);
  if (t1 == nullptr) {
    ex.write(out, static_cast<Node<P, E>*>(nullptr));
    co_return;
  }
  if (t2 == nullptr) {
    publish(ex, out, t1);
    co_return;
  }
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t1) && is_leaf(t2)) {
      ex.on_leaf_op(t1->count + t2->count);
      publish(ex, out, detail::leaf_diff(st, t1, t2));
      co_return;
    }
  }
  if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
    std::size_t budget = thr;
    if (detail::tree_avail(t1, budget) && detail::tree_avail(t2, budget)) {
      ex.on_serial_cutoff();
      publish(ex, out, detail::diff_serial(ex, st, t1, t2));
      co_return;
    }
  }
  ex.step();
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t1)) t1 = detail::open_leaf(st, t1);
  }
  Cell<P, E>* l2 = st.cell();
  Cell<P, E>* r2 = st.cell();
  Cell<P, E>* eq = st.cell();
  const Key v = t1->key;
  ex.fork(splitm_from(ex, st, v, t2, l2, r2, eq));
  Cell<P, E>* dl = st.cell();
  Cell<P, E>* dr = st.cell();
  ex.fork(diff_into(ex, st, t1->left, l2, dl));
  ex.fork(diff_into(ex, st, t1->right, r2, dr));
  // Whether the root survives depends on whether splitm found it in b — the
  // "work after the recursive calls" that makes diff's pipeline notable.
  Node<P, E>* found = co_await ex.touch(eq);
  if (found != nullptr) {
    ex.fork(join_entry(ex, st, dl, dr, out));
  } else {
    Node<P, E>* res = st.make(t1->key, t1->pri, dl, dr);
    res->value = t1->value;
    publish(ex, out, res);
    detail::fork_aug(ex, res);
  }
}

// Pipelined intersection (the third set operation from the authors'
// companion paper "Fast set operations using treaps"): keys present in both
// treaps (a's values survive where the surviving root came from a).
// Structurally the dual of difference — the root survives exactly when
// splitm *finds* it.
template <typename Ex, typename P, typename E>
Fiber intersect_into(Ex ex, Store<P, E>& st, Cell<P, E>* a, Cell<P, E>* b,
                     Cell<P, E>* out) {
  Node<P, E>* ta = co_await ex.touch(a);
  Node<P, E>* tb = co_await ex.touch(b);
  if (ta == nullptr || tb == nullptr) {
    ex.write(out, static_cast<Node<P, E>*>(nullptr));
    co_return;
  }
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(ta) && is_leaf(tb)) {
      ex.on_leaf_op(ta->count + tb->count);
      publish(ex, out, detail::leaf_intersect(st, ta, tb));
      co_return;
    }
  }
  if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
    std::size_t budget = thr;
    if (detail::tree_avail(ta, budget) && detail::tree_avail(tb, budget)) {
      ex.on_serial_cutoff();
      publish(ex, out, detail::intersect_serial(ex, st, ta, tb));
      co_return;
    }
  }
  ex.step();  // priority comparison
  if (ta->pri < tb->pri) std::swap(ta, tb);  // recurse on the higher root
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(ta)) ta = detail::open_leaf(st, ta);
  }
  Cell<P, E>* l2 = st.cell();
  Cell<P, E>* r2 = st.cell();
  Cell<P, E>* eq = st.cell();
  const Key v = ta->key;
  ex.fork(splitm_from(ex, st, v, tb, l2, r2, eq));
  Cell<P, E>* il = st.cell();
  Cell<P, E>* ir = st.cell();
  ex.fork(intersect_into(ex, st, ta->left, l2, il));
  ex.fork(intersect_into(ex, st, ta->right, r2, ir));
  // Dual of diff: the root survives exactly when splitm found it in b.
  Node<P, E>* found = co_await ex.touch(eq);
  if (found != nullptr) {
    Node<P, E>* res = st.make(ta->key, ta->pri, il, ir);
    res->value = ta->value;
    publish(ex, out, res);
    detail::fork_aug(ex, res);
  } else {
    ex.fork(join_entry(ex, st, il, ir, out));
  }
}

// ---- strict (non-pipelined) baselines ---------------------------------------

// Sequential splitm returning complete trees (+ the equal node if present).
template <typename P, typename E>
struct StrictSplit {
  Node<P, E>* less = nullptr;
  Node<P, E>* greater = nullptr;
  Node<P, E>* equal = nullptr;
};

template <typename Ex, typename P, typename E>
Task<StrictSplit<P, E>> splitm_strict(Ex ex, Store<P, E>& st, Key s,
                                      Node<P, E>* t) {
  ex.step();
  if (t == nullptr) co_return {};
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t)) {
      ex.on_leaf_op(t->count);
      detail::SerialSplit<P, E> sp = detail::split_leaf(st, s, t);
      co_return {sp.less, sp.greater, sp.equal};
    }
  }
  if (s < t->key) {
    StrictSplit<P, E> sub = co_await splitm_strict(ex, st, s, peek<P>(t->left));
    sub.greater = st.make(t->key, t->pri, st.input(sub.greater), t->right);
    sub.greater->value = t->value;
    detail::fork_aug(ex, sub.greater);
    co_return sub;
  }
  if (s > t->key) {
    StrictSplit<P, E> sub =
        co_await splitm_strict(ex, st, s, peek<P>(t->right));
    sub.less = st.make(t->key, t->pri, t->left, st.input(sub.less));
    sub.less->value = t->value;
    detail::fork_aug(ex, sub.less);
    co_return sub;
  }
  co_return {peek<P>(t->left), peek<P>(t->right), t};
}

template <typename Ex, typename P, typename E>
Task<Node<P, E>*> join_strict(Ex ex, Store<P, E>& st, Node<P, E>* t1,
                              Node<P, E>* t2) {
  ex.step();
  if (t1 == nullptr) co_return t2;
  if (t2 == nullptr) co_return t1;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(t1) && is_leaf(t2)) {
      ex.on_leaf_op(t1->count + t2->count);
      co_return detail::leaf_concat(st, t1, t2);
    }
  }
  Node<P, E>* res;
  if (t1->pri >= t2->pri) {
    if constexpr (P::kMaxLeafCapacity > 0) {
      if (is_leaf(t1)) t1 = detail::open_leaf(st, t1);
    }
    Node<P, E>* j = co_await join_strict(ex, st, peek<P>(t1->right), t2);
    res = st.make(t1->key, t1->pri, t1->left, st.input(j));
    res->value = t1->value;
  } else {
    if constexpr (P::kMaxLeafCapacity > 0) {
      if (is_leaf(t2)) t2 = detail::open_leaf(st, t2);
    }
    Node<P, E>* j = co_await join_strict(ex, st, t1, peek<P>(t2->left));
    res = st.make(t2->key, t2->pri, st.input(j), t2->right);
    res->value = t2->value;
  }
  detail::fork_aug(ex, res);
  co_return res;
}

// Fork-join union/difference/intersection: splitm runs to completion, then
// the two recursive calls run in parallel.
template <typename Ex, typename P, typename E, typename Merge = FirstWins>
Task<Node<P, E>*> union_strict(Ex ex, Store<P, E>& st, Node<P, E>* a,
                               Node<P, E>* b, Merge merge = {},
                               bool flip = false) {
  ex.step();
  if (a == nullptr) co_return b;
  if (b == nullptr) co_return a;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(a) && is_leaf(b)) {
      ex.on_leaf_op(a->count + b->count);
      co_return detail::leaf_union(st, a, b, merge, flip);
    }
  }
  if (a->pri < b->pri) {
    std::swap(a, b);
    flip = !flip;
  }
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(a)) a = detail::open_leaf(st, a);
  }
  StrictSplit<P, E> s = co_await splitm_strict(ex, st, a->key, b);
  auto [l, r] = co_await ex.fork_join2(
      union_strict(ex, st, peek<P>(a->left), s.less, merge, flip),
      union_strict(ex, st, peek<P>(a->right), s.greater, merge, flip));
  Node<P, E>* res = st.make_ready(a->key, a->pri, l, r);
  res->value = a->value;
  if constexpr (E::kHasValue) {
    if (s.equal != nullptr)
      res->value = flip ? merge(s.equal->value, a->value)
                        : merge(a->value, s.equal->value);
  }
  detail::fork_aug(ex, res);
  co_return res;
}

template <typename Ex, typename P, typename E>
Task<Node<P, E>*> intersect_strict(Ex ex, Store<P, E>& st, Node<P, E>* a,
                                   Node<P, E>* b) {
  ex.step();
  if (a == nullptr || b == nullptr) co_return nullptr;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(a) && is_leaf(b)) {
      ex.on_leaf_op(a->count + b->count);
      co_return detail::leaf_intersect(st, a, b);
    }
  }
  if (a->pri < b->pri) std::swap(a, b);
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(a)) a = detail::open_leaf(st, a);
  }
  StrictSplit<P, E> s = co_await splitm_strict(ex, st, a->key, b);
  auto [l, r] = co_await ex.fork_join2(
      intersect_strict(ex, st, peek<P>(a->left), s.less),
      intersect_strict(ex, st, peek<P>(a->right), s.greater));
  if (s.equal != nullptr) {
    Node<P, E>* res = st.make_ready(a->key, a->pri, l, r);
    res->value = a->value;
    detail::fork_aug(ex, res);
    co_return res;
  }
  co_return co_await join_strict(ex, st, l, r);
}

template <typename Ex, typename P, typename E>
Task<Node<P, E>*> diff_strict(Ex ex, Store<P, E>& st, Node<P, E>* a,
                              Node<P, E>* b) {
  ex.step();
  if (a == nullptr) co_return nullptr;
  if (b == nullptr) co_return a;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(a) && is_leaf(b)) {
      ex.on_leaf_op(a->count + b->count);
      co_return detail::leaf_diff(st, a, b);
    }
  }
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(a)) a = detail::open_leaf(st, a);
  }
  StrictSplit<P, E> s = co_await splitm_strict(ex, st, a->key, b);
  auto [l, r] =
      co_await ex.fork_join2(diff_strict(ex, st, peek<P>(a->left), s.less),
                             diff_strict(ex, st, peek<P>(a->right), s.greater));
  if (s.equal != nullptr) co_return co_await join_strict(ex, st, l, r);
  Node<P, E>* res = st.make_ready(a->key, a->pri, l, r);
  res->value = a->value;
  detail::fork_aug(ex, res);
  co_return res;
}

// ---- analysis helpers (no substrate actions) --------------------------------

template <typename P, typename E>
void collect_inorder(const Node<P, E>* root, std::vector<Key>& out) {
  if (root == nullptr) return;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(root)) {
      for (std::uint32_t i = 0; i < root->count; ++i)
        out.push_back(root->items[i].key);
      return;
    }
  }
  collect_inorder(peek<P>(root->left), out);
  out.push_back(root->key);
  collect_inorder(peek<P>(root->right), out);
}

// In-order (key, value) collection for value-carrying entries.
template <typename P, typename E>
void collect_items(const Node<P, E>* root,
                   std::vector<std::pair<Key, typename E::Value>>& out) {
  if (root == nullptr) return;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(root)) {
      for (std::uint32_t i = 0; i < root->count; ++i)
        out.emplace_back(root->items[i].key, root->items[i].value);
      return;
    }
  }
  collect_items(peek<P>(root->left), out);
  out.emplace_back(root->key, root->value);
  collect_items(peek<P>(root->right), out);
}

template <typename P, typename E>
int height(const Node<P, E>* root) {
  if (root == nullptr) return 0;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(root)) return 1;
  }
  return 1 +
         std::max(height(peek<P>(root->left)), height(peek<P>(root->right)));
}

// Number of *keys* (a leaf chunk contributes all its entries), so the size
// semantics match the node-per-key layout.
template <typename P, typename E>
std::uint64_t count_nodes(const Node<P, E>* root) {
  if (root == nullptr) return 0;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(root)) return root->count;
  }
  return 1 + count_nodes(peek<P>(root->left)) +
         count_nodes(peek<P>(root->right));
}

template <typename P, typename E>
typename P::Time max_created(const Node<P, E>* root) {
  if (root == nullptr) return 0;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(root)) return root->created;
  }
  return std::max({root->created, max_created(peek<P>(root->left)),
                   max_created(peek<P>(root->right))});
}

// Software cache-economy of a finished tree: how many cache lines an
// operation has to touch, and how they are spent.
struct CacheEconomy {
  std::uint64_t internal_nodes = 0;
  std::uint64_t leaf_chunks = 0;
  std::uint64_t leaf_keys = 0;  // keys stored inside chunks
};

template <typename P, typename E>
void cache_economy_of(const Node<P, E>* root, CacheEconomy& ce) {
  if (root == nullptr) return;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(root)) {
      ++ce.leaf_chunks;
      ce.leaf_keys += root->count;
      return;
    }
  }
  ++ce.internal_nodes;
  cache_economy_of(peek<P>(root->left), ce);
  cache_economy_of(peek<P>(root->right), ce);
}

namespace detail {
template <typename P, typename E>
bool valid_in_range(const Store<P, E>& st, const Node<P, E>* n, const Key* lo,
                    const Key* hi, Pri max_pri) {
  if (n == nullptr) return true;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(n)) {
      if (n->count == 0 || n->root_pos >= n->count) return false;
      if (n->pri > max_pri) return false;
      Pri best = 0;
      for (std::uint32_t i = 0; i < n->count; ++i) {
        const LeafEntryT<E>& e = n->items[i];
        if (lo && e.key <= *lo) return false;
        if (hi && e.key >= *hi) return false;
        if (i > 0 && n->items[i - 1].key >= e.key) return false;
        if (e.pri > best) best = e.pri;
      }
      // The node record mirrors the max-priority entry.
      return n->items[n->root_pos].pri == best &&
             n->key == n->items[n->root_pos].key &&
             n->pri == n->items[n->root_pos].pri;
    }
  }
  if (lo && n->key <= *lo) return false;
  if (hi && n->key >= *hi) return false;
  if (n->pri > max_pri) return false;
  return valid_in_range(st, peek<P>(n->left), lo, &n->key, n->pri) &&
         valid_in_range(st, peek<P>(n->right), &n->key, hi, n->pri);
}

// Bottom-up recomputation of every cached aggregate — the same discipline as
// the cached-priority check: the cache is only trusted after it has been
// re-derived from the entries it summarizes. Returns false (and stops) on
// the first node whose aggregate cell disagrees.
template <typename P, typename E>
bool augs_valid(const Node<P, E>* n, typename E::AugOps::Aug& out) {
  using Ops = typename E::AugOps;
  out = Ops::identity();
  if (n == nullptr) return true;
  if constexpr (P::kMaxLeafCapacity > 0) {
    if (is_leaf(n)) {
      for (std::uint32_t i = 0; i < n->count; ++i)
        out = Ops::combine(out,
                           Ops::from_entry(n->items[i].key, n->items[i].value));
      return P::peek(n->aug) == out;
    }
  }
  typename Ops::Aug l, r;
  if (!augs_valid<P, E>(peek<P>(n->left), l)) return false;
  if (!augs_valid<P, E>(peek<P>(n->right), r)) return false;
  out = Ops::combine(Ops::combine(l, Ops::from_entry(n->key, n->value)), r);
  return P::peek(n->aug) == out;
}
}  // namespace detail

// Full treap invariant: BST order on keys, heap order on priorities, and —
// for augmented entries — every cached aggregate equal to the bottom-up
// recomputation over its subtree. The recursion checks order against the
// *cached* priorities (they are copied, never recomputed, by every
// operation); consistency with the store's hash is spot-checked once at the
// root instead of rehashing every node.
template <typename P, typename E>
bool validate(const Store<P, E>& st, const Node<P, E>* root) {
  if (root == nullptr) return true;
  if (root->pri != st.priority(root->key)) return false;
  if (!detail::valid_in_range(st, root, nullptr, nullptr,
                              std::numeric_limits<Pri>::max()))
    return false;
  if constexpr (E::kHasAug) {
    typename E::AugOps::Aug total;
    if (!detail::augs_valid<P, E>(root, total)) return false;
  }
  return true;
}

}  // namespace pwf::pipelined::treap
