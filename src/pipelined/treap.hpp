// Single-source treaps (the paper's Sections 3.2–3.3) — splitm, union,
// join, difference, intersection, plus the strict fork-join baselines —
// written once against the substrate concept (docs/substrates.md) and
// instantiated by src/treap (cost model) and src/runtime/rt_treap
// (coroutine runtime).
//
// Priorities are derived from keys by hashing (splitmix64 with a store-wide
// salt), so a key has the same priority in every treap of a store; this
// preserves the paper's randomness assumption because the hash is a PRF of
// the key.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "pipelined/exec.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace pwf::pipelined::treap {

using Key = std::int64_t;
using Pri = std::uint64_t;

template <typename P>
struct Node;

template <typename P>
using Cell = typename P::template Cell<Node<P>*>;

template <typename P>
struct Node {
  Key key = 0;
  Pri pri = 0;
  std::int64_t val = 0;  // payload (used by the map operations only)
  typename P::Time created{};  // t(v) (cost model only)
  Cell<P>* left = nullptr;
  Cell<P>* right = nullptr;
};

inline constexpr std::uint64_t kDefaultSalt = 0x9e3779b97f4a7c15ULL;

template <typename P>
class Store {
 public:
  using Context = typename P::Context;

  explicit Store(Context ctx, std::uint64_t salt = kDefaultSalt)
      : ctx_(std::move(ctx)), salt_(salt) {}
  explicit Store(std::uint64_t salt = kDefaultSalt)
    requires std::default_initializable<Context>
      : salt_(salt) {}

  decltype(auto) engine() { return ctx_.engine(); }

  Pri priority(Key k) const {
    std::uint64_t x = static_cast<std::uint64_t>(k) ^ salt_;
    return splitmix64(x);
  }

  Cell<P>* cell() { return arena_.template create<Cell<P>>(); }

  Cell<P>* input(Node<P>* root) {
    Cell<P>* c = cell();
    P::preset(*c, root);
    return c;
  }

  Node<P>* make(Key key, Pri pri, Cell<P>* l, Cell<P>* r) {
    Node<P>* n = arena_.template create<Node<P>>();
    n->key = key;
    n->pri = pri;
    n->left = l;
    n->right = r;
    return n;
  }

  Node<P>* make(Key key, Pri pri) { return make(key, pri, cell(), cell()); }

  Node<P>* make_ready(Key key, Pri pri, Node<P>* l, Node<P>* r) {
    return make(key, pri, input(l), input(r));
  }

  // Builds a treap over the given keys (input data; costs nothing in the
  // model). Keys are sorted and deduplicated; construction is the O(n)
  // right-spine (Cartesian tree) method.
  Node<P>* build(std::span<const Key> keys) {
    std::vector<Key> sorted(keys.begin(), keys.end());
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

    // Each new (larger) key pops smaller-priority spine nodes and adopts the
    // popped chain as its left subtree. Adopted links get fresh preset cells
    // (runtime cells are write-once, so the placeholder can't be rewritten).
    std::vector<Node<P>*> spine;
    spine.reserve(64);
    for (Key k : sorted) {
      Node<P>* n = make_ready(k, priority(k), nullptr, nullptr);
      Node<P>* last_popped = nullptr;
      while (!spine.empty() && spine.back()->pri < n->pri) {
        last_popped = spine.back();
        spine.pop_back();
      }
      if (last_popped != nullptr) n->left = input(last_popped);
      if (!spine.empty()) spine.back()->right = input(n);
      spine.push_back(n);
    }
    return spine.empty() ? nullptr : spine.front();
  }

  std::size_t bytes_used() const { return arena_.bytes_used(); }

 private:
  Context ctx_;
  std::uint64_t salt_ = kDefaultSalt;
  typename P::Arena arena_;
};

// Publishes a node into its destination cell, stamping t(v) where the
// substrate keeps timestamps.
template <typename Ex, typename P = typename Ex::Policy>
void publish(Ex ex, Cell<P>* out, Node<P>* n) {
  ex.write(out, n);
  if constexpr (P::kHasTimestamps) {
    if (n) n->created = out->ts;
  }
}

template <typename P>
Node<P>* peek(const Cell<P>* c) {
  return P::peek(c);
}

// ---- serial fast paths (granularity control) --------------------------------
//
// Plain recursive counterparts of the pipelined bodies, taken when the
// relevant subtrees are fully materialized within Ex::serial_threshold()
// nodes (see trees.hpp for the scheme). Unlike the strict baselines below,
// these mirror the *pipelined* semantics exactly — including `val`
// propagation — so the published result is indistinguishable from the one
// the forked path would build. Dead on the cost-model substrates
// (threshold 0).

namespace detail {

template <typename P>
bool tree_avail(const Node<P>* n, std::size_t& budget) {
  if (n == nullptr) return true;
  if (budget == 0) return false;
  --budget;
  if (!P::ready(n->left) || !P::ready(n->right)) return false;
  return tree_avail<P>(P::peek(n->left), budget) &&
         tree_avail<P>(P::peek(n->right), budget);
}

template <typename P>
struct SerialSplit {
  Node<P>* less = nullptr;
  Node<P>* greater = nullptr;
  Node<P>* equal = nullptr;
};

template <typename P>
SerialSplit<P> splitm_serial(Store<P>& st, Key s, Node<P>* t) {
  if (t == nullptr) return {};
  if (s < t->key) {
    SerialSplit<P> sub = splitm_serial(st, s, peek<P>(t->left));
    sub.greater = st.make(t->key, t->pri, st.input(sub.greater), t->right);
    sub.greater->val = t->val;
    return sub;
  }
  if (s > t->key) {
    SerialSplit<P> sub = splitm_serial(st, s, peek<P>(t->right));
    sub.less = st.make(t->key, t->pri, t->left, st.input(sub.less));
    sub.less->val = t->val;
    return sub;
  }
  return {peek<P>(t->left), peek<P>(t->right), t};
}

template <typename P>
Node<P>* join_serial(Store<P>& st, Node<P>* t1, Node<P>* t2) {
  if (t1 == nullptr) return t2;
  if (t2 == nullptr) return t1;
  Node<P>* res;
  if (t1->pri >= t2->pri) {
    Node<P>* j = join_serial(st, peek<P>(t1->right), t2);
    res = st.make(t1->key, t1->pri, t1->left, st.input(j));
    res->val = t1->val;
  } else {
    Node<P>* j = join_serial(st, t1, peek<P>(t2->left));
    res = st.make(t2->key, t2->pri, st.input(j), t2->right);
    res->val = t2->val;
  }
  return res;
}

template <typename P>
Node<P>* union_serial(Store<P>& st, Node<P>* ta, Node<P>* tb) {
  if (ta == nullptr) return tb;
  if (tb == nullptr) return ta;
  if (ta->pri < tb->pri) std::swap(ta, tb);
  SerialSplit<P> s = splitm_serial(st, ta->key, tb);
  Node<P>* res =
      st.make_ready(ta->key, ta->pri, union_serial(st, peek<P>(ta->left), s.less),
                    union_serial(st, peek<P>(ta->right), s.greater));
  res->val = ta->val;
  return res;
}

template <typename P>
Node<P>* diff_serial(Store<P>& st, Node<P>* t1, Node<P>* t2) {
  if (t1 == nullptr) return nullptr;
  if (t2 == nullptr) return t1;
  SerialSplit<P> s = splitm_serial(st, t1->key, t2);
  Node<P>* l = diff_serial(st, peek<P>(t1->left), s.less);
  Node<P>* r = diff_serial(st, peek<P>(t1->right), s.greater);
  if (s.equal != nullptr) return join_serial(st, l, r);
  Node<P>* res = st.make_ready(t1->key, t1->pri, l, r);
  res->val = t1->val;
  return res;
}

template <typename P>
Node<P>* intersect_serial(Store<P>& st, Node<P>* ta, Node<P>* tb) {
  if (ta == nullptr || tb == nullptr) return nullptr;
  if (ta->pri < tb->pri) std::swap(ta, tb);
  SerialSplit<P> s = splitm_serial(st, ta->key, tb);
  Node<P>* l = intersect_serial(st, peek<P>(ta->left), s.less);
  Node<P>* r = intersect_serial(st, peek<P>(ta->right), s.greater);
  if (s.equal == nullptr) return join_serial(st, l, r);
  Node<P>* res = st.make_ready(ta->key, ta->pri, l, r);
  res->val = ta->val;
  return res;
}

}  // namespace detail

// ---- pipelined versions (Figures 4 and 7) -----------------------------------

// splitm (Figure 4): splits the available treap rooted at `t` by key `s`.
// Keys < s are published progressively under *outL, keys > s under *outR; a
// node with key == s is excluded from both and, when outEq != nullptr,
// delivered through it (nullptr if s was absent). outEq is written only when
// the traversal terminates — the "splitm completes as soon as it finds the
// splitter" behaviour diff depends on.
template <typename Ex, typename P = typename Ex::Policy>
Fiber splitm_from(Ex ex, Store<P>& st, Key s, Node<P>* t, Cell<P>* outL,
                  Cell<P>* outR, Cell<P>* outEq) {
  for (;;) {
    if (t == nullptr) {
      ex.write(outL, static_cast<Node<P>*>(nullptr));
      ex.write(outR, static_cast<Node<P>*>(nullptr));
      if (outEq) ex.write(outEq, static_cast<Node<P>*>(nullptr));
      co_return;
    }
    if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
      std::size_t budget = thr;
      if (detail::tree_avail<P>(t, budget)) {
        ex.on_serial_cutoff();
        detail::SerialSplit<P> sp = detail::splitm_serial(st, s, t);
        publish(ex, outL, sp.less);
        publish(ex, outR, sp.greater);
        if (outEq) ex.write(outEq, sp.equal);
        co_return;
      }
    }
    ex.step();  // key comparison
    if (s < t->key) {
      Node<P>* keep = st.make(t->key, t->pri, st.cell(), t->right);
      keep->val = t->val;
      publish(ex, outR, keep);
      outR = keep->left;
      t = co_await ex.touch(t->left);
    } else if (s > t->key) {
      Node<P>* keep = st.make(t->key, t->pri, t->left, st.cell());
      keep->val = t->val;
      publish(ex, outL, keep);
      outL = keep->right;
      t = co_await ex.touch(t->right);
    } else {
      // Splitter found: its subtrees are the two sides; the node itself is
      // excluded (and reported through outEq for difference).
      ex.write(outL, co_await ex.touch(t->left));
      ex.write(outR, co_await ex.touch(t->right));
      if (outEq) ex.write(outEq, t);
      co_return;
    }
  }
}

// Pipelined union (Figure 4): keys of both treaps, duplicates removed, heap
// and BST order restored. Consumes both inputs.
template <typename Ex, typename P = typename Ex::Policy>
Fiber union_into(Ex ex, Store<P>& st, Cell<P>* a, Cell<P>* b, Cell<P>* out) {
  Node<P>* ta = co_await ex.touch(a);
  Node<P>* tb = co_await ex.touch(b);
  if (ta == nullptr) {
    publish(ex, out, tb);
    co_return;
  }
  if (tb == nullptr) {
    publish(ex, out, ta);
    co_return;
  }
  if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
    std::size_t budget = thr;
    if (detail::tree_avail<P>(ta, budget) && detail::tree_avail<P>(tb, budget)) {
      ex.on_serial_cutoff();
      publish(ex, out, detail::union_serial(st, ta, tb));
      co_return;
    }
  }
  ex.step();  // priority comparison
  if (ta->pri < tb->pri) std::swap(ta, tb);  // higher priority becomes root
  Node<P>* res = st.make(ta->key, ta->pri);
  res->val = ta->val;
  Cell<P>* l2 = st.cell();
  Cell<P>* r2 = st.cell();
  const Key v = ta->key;
  ex.fork(splitm_from(ex, st, v, tb, l2, r2, nullptr));
  ex.fork(union_into(ex, st, ta->left, l2, res->left));
  ex.fork(union_into(ex, st, ta->right, r2, res->right));
  publish(ex, out, res);
}

// join (Figure 7 helper): every key of `t1` less than every key of `t2`;
// interleaves the right spine of t1 with the left spine of t2 by priority,
// publishing progressively.
template <typename Ex, typename P = typename Ex::Policy>
Fiber join_from(Ex ex, Store<P>& st, Node<P>* t1, Node<P>* t2, Cell<P>* out) {
  for (;;) {
    if (t1 == nullptr) {
      publish(ex, out, t2);
      co_return;
    }
    if (t2 == nullptr) {
      publish(ex, out, t1);
      co_return;
    }
    if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
      std::size_t budget = thr;
      if (detail::tree_avail<P>(t1, budget) &&
          detail::tree_avail<P>(t2, budget)) {
        ex.on_serial_cutoff();
        publish(ex, out, detail::join_serial(st, t1, t2));
        co_return;
      }
    }
    ex.step();  // priority comparison
    if (t1->pri >= t2->pri) {
      Node<P>* res = st.make(t1->key, t1->pri, t1->left, st.cell());
      res->val = t1->val;
      publish(ex, out, res);
      out = res->right;
      t1 = co_await ex.touch(t1->right);
    } else {
      Node<P>* res = st.make(t2->key, t2->pri, st.cell(), t2->right);
      res->val = t2->val;
      publish(ex, out, res);
      out = res->left;
      t2 = co_await ex.touch(t2->left);
    }
  }
}

// Forked wrapper: wait for both diff/intersect sides, then join them.
template <typename Ex, typename P = typename Ex::Policy>
Fiber join_entry(Ex ex, Store<P>& st, Cell<P>* l, Cell<P>* r, Cell<P>* out) {
  Node<P>* jl = co_await ex.touch(l);
  Node<P>* jr = co_await ex.touch(r);
  co_await join_from(ex, st, jl, jr, out);
}

// Pipelined difference (Figure 7): keys of `a` not present in `b`.
template <typename Ex, typename P = typename Ex::Policy>
Fiber diff_into(Ex ex, Store<P>& st, Cell<P>* a, Cell<P>* b, Cell<P>* out) {
  Node<P>* t1 = co_await ex.touch(a);
  Node<P>* t2 = co_await ex.touch(b);
  if (t1 == nullptr) {
    ex.write(out, static_cast<Node<P>*>(nullptr));
    co_return;
  }
  if (t2 == nullptr) {
    publish(ex, out, t1);
    co_return;
  }
  if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
    std::size_t budget = thr;
    if (detail::tree_avail<P>(t1, budget) && detail::tree_avail<P>(t2, budget)) {
      ex.on_serial_cutoff();
      publish(ex, out, detail::diff_serial(st, t1, t2));
      co_return;
    }
  }
  ex.step();
  Cell<P>* l2 = st.cell();
  Cell<P>* r2 = st.cell();
  Cell<P>* eq = st.cell();
  const Key v = t1->key;
  ex.fork(splitm_from(ex, st, v, t2, l2, r2, eq));
  Cell<P>* dl = st.cell();
  Cell<P>* dr = st.cell();
  ex.fork(diff_into(ex, st, t1->left, l2, dl));
  ex.fork(diff_into(ex, st, t1->right, r2, dr));
  // Whether the root survives depends on whether splitm found it in b — the
  // "work after the recursive calls" that makes diff's pipeline notable.
  Node<P>* found = co_await ex.touch(eq);
  if (found != nullptr) {
    ex.fork(join_entry(ex, st, dl, dr, out));
  } else {
    Node<P>* res = st.make(t1->key, t1->pri, dl, dr);
    res->val = t1->val;
    publish(ex, out, res);
  }
}

// Pipelined intersection (the third set operation from the authors'
// companion paper "Fast set operations using treaps"): keys present in both
// treaps. Structurally the dual of difference — the root survives exactly
// when splitm *finds* it.
template <typename Ex, typename P = typename Ex::Policy>
Fiber intersect_into(Ex ex, Store<P>& st, Cell<P>* a, Cell<P>* b,
                     Cell<P>* out) {
  Node<P>* ta = co_await ex.touch(a);
  Node<P>* tb = co_await ex.touch(b);
  if (ta == nullptr || tb == nullptr) {
    ex.write(out, static_cast<Node<P>*>(nullptr));
    co_return;
  }
  if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
    std::size_t budget = thr;
    if (detail::tree_avail<P>(ta, budget) && detail::tree_avail<P>(tb, budget)) {
      ex.on_serial_cutoff();
      publish(ex, out, detail::intersect_serial(st, ta, tb));
      co_return;
    }
  }
  ex.step();  // priority comparison
  if (ta->pri < tb->pri) std::swap(ta, tb);  // recurse on the higher root
  Cell<P>* l2 = st.cell();
  Cell<P>* r2 = st.cell();
  Cell<P>* eq = st.cell();
  const Key v = ta->key;
  ex.fork(splitm_from(ex, st, v, tb, l2, r2, eq));
  Cell<P>* il = st.cell();
  Cell<P>* ir = st.cell();
  ex.fork(intersect_into(ex, st, ta->left, l2, il));
  ex.fork(intersect_into(ex, st, ta->right, r2, ir));
  // Dual of diff: the root survives exactly when splitm found it in b.
  Node<P>* found = co_await ex.touch(eq);
  if (found != nullptr) {
    Node<P>* res = st.make(ta->key, ta->pri, il, ir);
    res->val = ta->val;
    publish(ex, out, res);
  } else {
    ex.fork(join_entry(ex, st, il, ir, out));
  }
}

// ---- strict (non-pipelined) baselines ---------------------------------------

// Sequential splitm returning complete trees (+ the equal node if present).
template <typename P>
struct StrictSplit {
  Node<P>* less = nullptr;
  Node<P>* greater = nullptr;
  Node<P>* equal = nullptr;
};

template <typename Ex, typename P = typename Ex::Policy>
Task<StrictSplit<P>> splitm_strict(Ex ex, Store<P>& st, Key s, Node<P>* t) {
  ex.step();
  if (t == nullptr) co_return {};
  if (s < t->key) {
    StrictSplit<P> sub = co_await splitm_strict(ex, st, s, peek<P>(t->left));
    sub.greater = st.make(t->key, t->pri, st.input(sub.greater), t->right);
    sub.greater->val = t->val;
    co_return sub;
  }
  if (s > t->key) {
    StrictSplit<P> sub = co_await splitm_strict(ex, st, s, peek<P>(t->right));
    sub.less = st.make(t->key, t->pri, t->left, st.input(sub.less));
    sub.less->val = t->val;
    co_return sub;
  }
  co_return {peek<P>(t->left), peek<P>(t->right), t};
}

template <typename Ex, typename P = typename Ex::Policy>
Task<Node<P>*> join_strict(Ex ex, Store<P>& st, Node<P>* t1, Node<P>* t2) {
  ex.step();
  if (t1 == nullptr) co_return t2;
  if (t2 == nullptr) co_return t1;
  if (t1->pri >= t2->pri) {
    Node<P>* j = co_await join_strict(ex, st, peek<P>(t1->right), t2);
    co_return st.make(t1->key, t1->pri, t1->left, st.input(j));
  }
  Node<P>* j = co_await join_strict(ex, st, t1, peek<P>(t2->left));
  co_return st.make(t2->key, t2->pri, st.input(j), t2->right);
}

// Fork-join union/difference/intersection: splitm runs to completion, then
// the two recursive calls run in parallel.
template <typename Ex, typename P = typename Ex::Policy>
Task<Node<P>*> union_strict(Ex ex, Store<P>& st, Node<P>* a, Node<P>* b) {
  ex.step();
  if (a == nullptr) co_return b;
  if (b == nullptr) co_return a;
  if (a->pri < b->pri) std::swap(a, b);
  StrictSplit<P> s = co_await splitm_strict(ex, st, a->key, b);
  auto [l, r] =
      co_await ex.fork_join2(union_strict(ex, st, peek<P>(a->left), s.less),
                             union_strict(ex, st, peek<P>(a->right), s.greater));
  co_return st.make_ready(a->key, a->pri, l, r);
}

template <typename Ex, typename P = typename Ex::Policy>
Task<Node<P>*> intersect_strict(Ex ex, Store<P>& st, Node<P>* a, Node<P>* b) {
  ex.step();
  if (a == nullptr || b == nullptr) co_return nullptr;
  if (a->pri < b->pri) std::swap(a, b);
  StrictSplit<P> s = co_await splitm_strict(ex, st, a->key, b);
  auto [l, r] = co_await ex.fork_join2(
      intersect_strict(ex, st, peek<P>(a->left), s.less),
      intersect_strict(ex, st, peek<P>(a->right), s.greater));
  if (s.equal != nullptr) co_return st.make_ready(a->key, a->pri, l, r);
  co_return co_await join_strict(ex, st, l, r);
}

template <typename Ex, typename P = typename Ex::Policy>
Task<Node<P>*> diff_strict(Ex ex, Store<P>& st, Node<P>* a, Node<P>* b) {
  ex.step();
  if (a == nullptr) co_return nullptr;
  if (b == nullptr) co_return a;
  StrictSplit<P> s = co_await splitm_strict(ex, st, a->key, b);
  auto [l, r] =
      co_await ex.fork_join2(diff_strict(ex, st, peek<P>(a->left), s.less),
                             diff_strict(ex, st, peek<P>(a->right), s.greater));
  if (s.equal != nullptr) co_return co_await join_strict(ex, st, l, r);
  co_return st.make_ready(a->key, a->pri, l, r);
}

// ---- analysis helpers (no substrate actions) --------------------------------

template <typename P>
void collect_inorder(const Node<P>* root, std::vector<Key>& out) {
  if (root == nullptr) return;
  collect_inorder(peek<P>(root->left), out);
  out.push_back(root->key);
  collect_inorder(peek<P>(root->right), out);
}

template <typename P>
int height(const Node<P>* root) {
  if (root == nullptr) return 0;
  return 1 +
         std::max(height(peek<P>(root->left)), height(peek<P>(root->right)));
}

template <typename P>
std::uint64_t count_nodes(const Node<P>* root) {
  if (root == nullptr) return 0;
  return 1 + count_nodes(peek<P>(root->left)) +
         count_nodes(peek<P>(root->right));
}

template <typename P>
typename P::Time max_created(const Node<P>* root) {
  if (root == nullptr) return 0;
  return std::max({root->created, max_created(peek<P>(root->left)),
                   max_created(peek<P>(root->right))});
}

namespace detail {
template <typename P>
bool valid_in_range(const Store<P>& st, const Node<P>* n, const Key* lo,
                    const Key* hi, Pri max_pri) {
  if (n == nullptr) return true;
  if (lo && n->key <= *lo) return false;
  if (hi && n->key >= *hi) return false;
  if (n->pri > max_pri) return false;
  if (n->pri != st.priority(n->key)) return false;
  return valid_in_range(st, peek<P>(n->left), lo, &n->key, n->pri) &&
         valid_in_range(st, peek<P>(n->right), &n->key, hi, n->pri);
}
}  // namespace detail

// Full treap invariant: BST order on keys, heap order on priorities, and
// priorities consistent with the store's hash.
template <typename P>
bool validate(const Store<P>& st, const Node<P>* root) {
  return detail::valid_in_range(st, root, nullptr, nullptr,
                                std::numeric_limits<Pri>::max());
}

}  // namespace pwf::pipelined::treap
