// Cost-model substrates: CmExec (pipelined) and CmStrictExec (fork-join
// baseline). See docs/substrates.md.
//
// Both wrap a cm::Engine. Every awaiter here is either immediately ready or
// symmetric-transfers into the child frame, so a templated algorithm body
// runs to completion inside a single resume() with *exactly* the engine
// action sequence of the plain-call formulation it replaced — the recorded
// counts test (tests/recorded_counts_test.cpp) seals that equivalence.
//
// The two types are distinct only so instantiations are named by discipline
// (pipelined bodies use touch/fork, strict bodies use peek/fork_join); the
// engine operations they expose are identical.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "costmodel/engine.hpp"
#include "pipelined/exec.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"

namespace pwf::pipelined {

// Context a cost-model Store needs: which engine stamps its cells.
struct CmContext {
  cm::Engine* eng;
  CmContext(cm::Engine& e) : eng(&e) {}  // NOLINT: implicit by design
  cm::Engine& engine() const { return *eng; }
};

struct CmPolicy {
  template <typename T>
  using Cell = cm::Cell<T>;
  using Time = cm::Time;
  using Context = CmContext;
  struct Arena : pwf::Arena {
    Arena() : pwf::Arena(1 << 18) {}
  };
  static constexpr bool kHasTimestamps = true;
  // The cost model measures the paper's node-per-key DAG: chunked-leaf
  // storage is disabled outright, so every leaf branch in the shared bodies
  // is `if constexpr`-dead and the recorded counts stay bit-identical.
  static constexpr std::size_t kMaxLeafCapacity = 0;

  template <typename T>
  static void preset(cm::Cell<T>& c, T v) {
    cm::Engine::preset(c, std::move(v));
  }
  // Non-consuming availability probe (serial fast paths ask before walking;
  // never an engine action — the cost model keeps threshold 0, so the DAG
  // never sees it).
  template <typename T>
  static bool ready(const cm::Cell<T>* c) {
    return c->written;
  }
  // Reads a finished cell's value without touching (analysis + strict code).
  template <typename T>
  static T peek(const cm::Cell<T>* c) {
    PWF_CHECK_MSG(c->written,
                  "peek of unwritten cell — computation incomplete");
    return c->value;
  }
};

namespace detail {

// An awaiter that already holds its value: `co_await ex.touch(c)` on the
// cost model performs the engine touch *at the call site* (before the
// co_await), preserving the eager evaluation order of a plain call.
template <typename T>
struct ReadyValue {
  T v;
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  T await_resume() { return std::move(v); }
};

}  // namespace detail

class CmExecBase {
 public:
  using Policy = CmPolicy;

  explicit CmExecBase(cm::Engine& eng) : eng_(&eng) {}
  CmExecBase(CmContext ctx) : eng_(ctx.eng) {}  // NOLINT: implicit by design

  cm::Engine& engine() const { return *eng_; }

  // ---- pipelined operations ------------------------------------------------

  template <typename T>
  detail::ReadyValue<T> touch(cm::Cell<T>* c) const {
    return {eng_->touch(c)};
  }

  template <typename T>
  void write(cm::Cell<T>* c, T v) const {
    eng_->write(c, std::move(v));
  }

  // The future/fork: run the fiber eagerly in a forked thread of the DAG.
  void fork(Fiber f) const {
    eng_->fork([h = f.handle] { h.resume(); });
  }

  // ---- local work ----------------------------------------------------------

  void step() const { eng_->step(); }
  void steps(std::uint64_t k) const { eng_->steps(k); }
  void array_op(std::uint64_t n) const { eng_->array_op(n); }

  // Current DAG time, for structures that stamp nodes outside publish()
  // (2-6 tree node splits). Not an engine action.
  cm::Time now_stamp() const { return eng_->now(); }

  // ---- granularity control -------------------------------------------------

  // The cost model measures the paper's DAG, so it never coarsens: every
  // serial-cutoff branch in the shared bodies is guarded by
  // `serial_threshold() > 0` and is dead here — recorded counts stay
  // bit-identical (tests/recorded_counts_test.cpp).
  static constexpr std::size_t serial_threshold() { return 0; }
  static void on_serial_cutoff() {}
  // Leaf-chunk fast paths never run here (kMaxLeafCapacity 0); the hook is
  // part of the Exec concept so shared bodies compile unchanged. The bodies
  // pass the number of keys the leaf operation covered (RecExec records it;
  // the other substrates ignore it).
  static void on_leaf_op(std::size_t /*keys*/) {}
  // Aggregate recomputation hook (augmented entries). The aug_into fiber's
  // touches/writes are already engine actions; the hook exists so recording
  // substrates can tag them (RecExec) and the runtime can count them.
  static void on_aug_op() {}
  // Escape hatch: run a would-be fork inline (substrate-neutral spelling of
  // a plain recursive call). Unused while threshold is 0, but part of the
  // Exec concept so shared bodies compile unchanged.
  static Fiber::InlineAwaiter run_serial(Fiber f) {
    return Fiber::InlineAwaiter{f.handle};
  }

  // ---- fork-join (strict discipline) ---------------------------------------

  template <typename A, typename B>
  struct Join2 {
    cm::Engine* eng;
    Task<A> a;
    Task<B> b;
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    std::pair<A, B> await_resume() {
      return eng->fork_join2(
          [this] {
            a.handle.resume();
            return std::move(a.handle.promise().value);
          },
          [this] {
            b.handle.resume();
            return std::move(b.handle.promise().value);
          });
    }
  };

  template <typename A, typename B>
  Join2<A, B> fork_join2(Task<A> a, Task<B> b) const {
    return Join2<A, B>{eng_, std::move(a), std::move(b)};
  }

  struct JoinAll {
    cm::Engine* eng;
    std::vector<Task<void>> ts;
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() { run_all(*eng, ts); }
    // Same pairwise halving as cm::fork_join_all, so the DAG shape (and the
    // recorded counts) match the std::function-based original exactly.
    static void run_all(cm::Engine& eng, std::span<Task<void>> ts) {
      if (ts.empty()) return;
      if (ts.size() == 1) {
        ts[0].handle.resume();
        return;
      }
      const std::size_t mid = ts.size() / 2;
      eng.fork_join2(
          [&] {
            run_all(eng, ts.subspan(0, mid));
            return 0;
          },
          [&] {
            run_all(eng, ts.subspan(mid));
            return 0;
          });
    }
  };

  JoinAll fork_join_all(std::vector<Task<void>> ts) const {
    return JoinAll{eng_, std::move(ts)};
  }

 private:
  cm::Engine* eng_;
};

// The pipelined cost-model substrate (futures semantics, Section 2).
struct CmExec : CmExecBase {
  using CmExecBase::CmExecBase;
};

// The strict fork-join baseline on the same engine. Bodies written against
// it only use peek/step/fork_join2/fork_join_all — no data pipelining.
struct CmStrictExec : CmExecBase {
  using CmExecBase::CmExecBase;
};

}  // namespace pwf::pipelined
