// Entry policies for the single-source treap bodies (docs/augmentation.md).
//
// The bodies in treap.hpp are parameterized on an Entry policy E that decides
// what a key carries:
//   * SetEntry      — key only (the paper's treaps); Value is the empty Unit
//                     so every payload statement compiles to nothing.
//   * MapEntry<V>   — key + value; union takes a Merge functor for shared
//                     keys, difference ignores the second operand's values.
//   * AugEntry<B,O> — B plus a PAM-style augmentation O: every node (and
//                     leaf chunk) maintains O::combine over O::from_entry of
//                     its subtree, enabling O(lg n) range aggregates.
//
// An augmentation policy O provides:
//   using Aug = ...;                      // the aggregate type (cell-carried,
//                                         // so trivially copyable)
//   static Aug identity();                // combine's neutral element
//   static Aug from_entry(Key, const V&); // one entry's contribution
//   static Aug combine(Aug, Aug);         // ASSOCIATIVE (not necessarily
//                                         // commutative: combine is always
//                                         // applied in key order)
#pragma once

#include <cstdint>
#include <limits>

namespace pwf::pipelined::treap {

using Key = std::int64_t;
using Pri = std::uint64_t;

// Empty payload for key-only entries. Trivially copyable and empty, so
// [[no_unique_address]] members of this type vanish from node layouts.
struct Unit {};

struct SetEntry {
  using Value = Unit;
  static constexpr bool kHasValue = false;
  static constexpr bool kHasAug = false;
};

template <typename V>
struct MapEntry {
  using Value = V;
  static constexpr bool kHasValue = true;
  static constexpr bool kHasAug = false;
};

template <typename Base, typename Ops>
struct AugEntry : Base {
  static constexpr bool kHasAug = true;
  using AugOps = Ops;
  using Aug = typename Ops::Aug;
};

// Uniform access to an entry's augmentation types; the primary template
// keeps unaugmented entries instantiable (Aug collapses to Unit).
template <typename E, bool = E::kHasAug>
struct AugTraits {
  using Aug = Unit;
};
template <typename E>
struct AugTraits<E, true> {
  using Ops = typename E::AugOps;
  using Aug = typename Ops::Aug;
};

// ---- stock augmentations ----------------------------------------------------

// Subtree key count (value-agnostic).
struct CountAug {
  using Aug = std::uint64_t;
  static constexpr Aug identity() { return 0; }
  template <typename V>
  static Aug from_entry(Key, const V&) {
    return 1;
  }
  static Aug combine(Aug a, Aug b) { return a + b; }
};

// Subtree sum of values.
template <typename V>
struct SumAug {
  using Aug = V;
  static constexpr Aug identity() { return V{}; }
  static Aug from_entry(Key, const V& v) { return v; }
  static Aug combine(Aug a, Aug b) { return a + b; }
};

// Subtree max of values.
template <typename V>
struct MaxAug {
  using Aug = V;
  static constexpr Aug identity() { return std::numeric_limits<V>::lowest(); }
  static Aug from_entry(Key, const V& v) { return v; }
  static Aug combine(Aug a, Aug b) { return a < b ? b : a; }
};

// Default merge for union: keep the first operand's value (a no-op for
// sets, where Value is Unit).
struct FirstWins {
  template <typename V>
  V operator()(const V& a, const V&) const {
    return a;
  }
};

}  // namespace pwf::pipelined::treap
