// Single-source lists with future tails (the paper's Figure 1
// producer/consumer and Figure 2 quicksort), written once against the
// substrate concept. Instantiated by src/algos (cost model) and
// src/runtime/rt_algos (coroutine runtime).
//
// A cons cell's head is an immediate value; its tail is a read pointer to a
// future cell, so a list can be consumed while its tail is still being
// produced.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <utility>
#include <vector>

#include "pipelined/exec.hpp"
#include "support/check.hpp"

namespace pwf::pipelined::list {

using Value = std::int64_t;

template <typename P>
struct LNode;

template <typename P>
using Cell = typename P::template Cell<LNode<P>*>;

template <typename P>
struct LNode {
  Value value = 0;
  Cell<P>* next = nullptr;
};

template <typename P>
class Store {
 public:
  using Context = typename P::Context;

  explicit Store(Context ctx) : ctx_(std::move(ctx)) {}
  Store()
    requires std::default_initializable<Context>
  = default;

  decltype(auto) engine() { return ctx_.engine(); }

  Cell<P>* cell() { return arena_.template create<Cell<P>>(); }

  Cell<P>* input(LNode<P>* head) {
    Cell<P>* c = cell();
    P::preset(*c, head);
    return c;
  }

  LNode<P>* cons(Value v, Cell<P>* next) {
    LNode<P>* n = arena_.template create<LNode<P>>();
    n->value = v;
    n->next = next;
    return n;
  }

  // Fully materialized input list (available at time 0).
  Cell<P>* input_list(const std::vector<Value>& values) {
    LNode<P>* head = nullptr;
    Cell<P>* next = input(nullptr);
    for (std::size_t i = values.size(); i-- > 0;) {
      head = cons(values[i], next);
      next = input(head);
    }
    return next;
  }

 private:
  Context ctx_;
  typename P::Arena arena_;
};

template <typename P>
LNode<P>* peek(const Cell<P>* c) {
  return P::peek(c);
}

// Analysis-only: collect a finished list's values.
template <typename P>
std::vector<Value> peek_list(const Cell<P>* head) {
  std::vector<Value> out;
  for (const LNode<P>* n = peek<P>(head); n != nullptr;
       n = peek<P>(n->next)) {
    out.push_back(n->value);
  }
  return out;
}

// ---- Figure 1: producer/consumer --------------------------------------------

// produce n = n :: ?produce(n-1): each element is created by its own thread,
// so the list head appears in O(1) and each subsequent cell a constant
// number of time steps later.
template <typename Ex, typename P = typename Ex::Policy>
Fiber produce(Ex ex, Store<P>& st, std::int64_t n, Cell<P>* out) {
  if (n < 0) {
    ex.write(out, static_cast<LNode<P>*>(nullptr));
    co_return;
  }
  // Serial cutoff: the remaining list depends on nothing, so below the
  // threshold build the whole tail bottom-up in one loop instead of one
  // fiber per element. Dead on the cost-model substrates (threshold 0).
  if (const std::size_t thr = ex.serial_threshold();
      thr > 0 && static_cast<std::uint64_t>(n) <= thr) {
    ex.on_serial_cutoff();
    LNode<P>* head = nullptr;
    Cell<P>* next = st.input(nullptr);
    for (std::int64_t i = 0; i <= n; ++i) {
      head = st.cons(i, next);
      next = st.input(head);
    }
    ex.write(out, head);
    co_return;
  }
  Cell<P>* tail = st.cell();
  ex.fork(produce(ex, st, n - 1, tail));
  ex.write(out, st.cons(n, tail));
}

// consume(h::t) = h + consume(t): one thread chasing the data edges, one
// action per element, matching the 1:1 producer/consumer rate of Figure 1.
template <typename Ex, typename P = typename Ex::Policy>
Task<Value> consume(Ex ex, Cell<P>* lst) {
  Value sum = 0;
  for (;;) {
    LNode<P>* h = co_await ex.touch(lst);
    if (h == nullptr) co_return sum;
    sum += h->value;
    lst = h->next;
  }
}

// ---- Figure 2: Halstead's quicksort -----------------------------------------

// part(p, l) = (elements < p, elements >= p), produced front-first through
// the destination cells so the recursive qs calls can consume the prefixes
// while the suffix is still being partitioned.
template <typename Ex, typename P = typename Ex::Policy>
Fiber part(Ex ex, Store<P>& st, Value p, Cell<P>* lst, Cell<P>* outLes,
           Cell<P>* outGrt) {
  for (;;) {
    LNode<P>* h = co_await ex.touch(lst);
    if (h == nullptr) {
      ex.write(outLes, static_cast<LNode<P>*>(nullptr));
      ex.write(outGrt, static_cast<LNode<P>*>(nullptr));
      co_return;
    }
    ex.step();  // the comparison
    if (h->value < p) {
      Cell<P>* tail = st.cell();
      ex.write(outLes, st.cons(h->value, tail));
      outLes = tail;
    } else {
      Cell<P>* tail = st.cell();
      ex.write(outGrt, st.cons(h->value, tail));
      outGrt = tail;
    }
    lst = h->next;
  }
}

// Pipelined quicksort of the list in `lst`, with `rest` appended (the
// accumulator in qs(les, h :: ?qs(grt, rest))).
template <typename Ex, typename P = typename Ex::Policy>
Fiber quicksort_into(Ex ex, Store<P>& st, Cell<P>* lst, Cell<P>* rest,
                     Cell<P>* out) {
  LNode<P>* h = co_await ex.touch(lst);
  if (h == nullptr) {  // qs(nil, rest) = rest
    ex.write(out, co_await ex.touch(rest));
    co_return;
  }
  // Serial cutoff: if the remaining input list is fully materialized within
  // the threshold, sort its values in place and emit the chain directly,
  // pointing the last node's tail at `rest` — no touch of rest needed, so
  // the suffix can still be pending.
  if (const std::size_t thr = ex.serial_threshold(); thr > 0) {
    std::vector<Value> vals;
    vals.push_back(h->value);
    bool complete = false;
    Cell<P>* c = h->next;
    while (vals.size() <= thr && P::ready(c)) {
      const LNode<P>* m = P::peek(c);
      if (m == nullptr) {
        complete = true;
        break;
      }
      vals.push_back(m->value);
      c = m->next;
    }
    if (complete) {
      ex.on_serial_cutoff();
      std::sort(vals.begin(), vals.end());
      Cell<P>* next = rest;
      for (std::size_t i = vals.size(); i-- > 1;)
        next = st.input(st.cons(vals[i], next));
      ex.write(out, st.cons(vals[0], next));
      co_return;
    }
  }
  ex.step();
  Cell<P>* les = st.cell();
  Cell<P>* grt = st.cell();
  const Value pivot = h->value;
  ex.fork(part(ex, st, pivot, h->next, les, grt));
  // qs(les, h :: ?qs(grt, rest))
  Cell<P>* sorted_grt = st.cell();
  ex.fork(quicksort_into(ex, st, grt, rest, sorted_grt));
  Cell<P>* mid = st.input(st.cons(pivot, sorted_grt));
  co_await quicksort_into(ex, st, les, mid, out);
}

// Strict recursion over materialized value sequences: sequential partition,
// parallel recursive sorts, sequential append. Expected depth Θ(n), like the
// pipelined version — the paper's point about Figure 2.
template <typename Ex>
Task<std::vector<Value>> qs_strict_rec(Ex ex, std::vector<Value> values) {
  ex.step();
  if (values.size() <= 1) co_return values;
  const Value pivot = values.front();
  std::vector<Value> les, grt;
  for (std::size_t i = 1; i < values.size(); ++i) {
    ex.step();  // the comparison (partition is a sequential chain)
    (values[i] < pivot ? les : grt).push_back(values[i]);
  }
  auto [sl, sg] = co_await ex.fork_join2(qs_strict_rec(ex, std::move(les)),
                                         qs_strict_rec(ex, std::move(grt)));
  // Append sl ++ [pivot] ++ sg, paying one action per copied element.
  std::vector<Value> out;
  out.reserve(values.size());
  for (Value v : sl) {
    ex.step();
    out.push_back(v);
  }
  ex.step();
  out.push_back(pivot);
  for (Value v : sg) {
    ex.step();
    out.push_back(v);
  }
  co_return out;
}

}  // namespace pwf::pipelined::list
