// Single-source 2-6 trees (the paper's Section 3.4 top-down variant of PVW
// 2-3 trees) — pipelined bulk insert and the strict wave-by-wave baseline —
// written once against the substrate concept (docs/substrates.md) and
// instantiated by src/ttree (cost model) and src/runtime/rt_ttree
// (coroutine runtime).
//
// Every node holds 1–5 keys in increasing order; an internal node has one
// child per range (2–6 children); all leaves are at the same level. The
// bulk-insert maintains the invariant that any node it recurses into is a
// *2-3 node* (<= 2 keys) by pre-emptively splitting children, so pulled-up
// splitters never overflow the 1–5 key bound.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <iterator>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "pipelined/exec.hpp"
#include "support/check.hpp"

namespace pwf::pipelined::ttree {

using Key = std::int64_t;

inline constexpr int kMaxKeys = 5;
inline constexpr int kMaxChildren = 6;

template <typename P>
struct TNode;

template <typename P>
using Cell = typename P::template Cell<TNode<P>*>;

template <typename P>
struct TNode {
  std::uint8_t nkeys = 0;
  bool leaf = true;
  typename P::Time created{};  // t(v) (cost model only)
  Key keys[kMaxKeys] = {};
  Cell<P>* child[kMaxChildren] = {};  // child[0..nkeys] valid when internal

  int nchildren() const { return leaf ? 0 : nkeys + 1; }
};

template <typename P>
class Store {
 public:
  using Context = typename P::Context;

  explicit Store(Context ctx) : ctx_(std::move(ctx)) {}
  Store()
    requires std::default_initializable<Context>
  = default;

  decltype(auto) engine() { return ctx_.engine(); }

  Cell<P>* cell() { return arena_.template create<Cell<P>>(); }

  Cell<P>* input(TNode<P>* n) {
    Cell<P>* c = cell();
    P::preset(*c, n);
    return c;
  }

  TNode<P>* make_leaf(std::span<const Key> keys) {
    PWF_CHECK(keys.size() >= 1 && keys.size() <= kMaxKeys);
    TNode<P>* n = arena_.template create<TNode<P>>();
    n->leaf = true;
    n->nkeys = static_cast<std::uint8_t>(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) n->keys[i] = keys[i];
    return n;
  }

  // Internal node; children cells supplied by the caller (kept subtrees,
  // fresh futures, or preset inputs).
  TNode<P>* make_internal(std::span<const Key> keys,
                          std::span<Cell<P>* const> children) {
    PWF_CHECK(keys.size() >= 1 && keys.size() <= kMaxKeys);
    PWF_CHECK(children.size() == keys.size() + 1);
    TNode<P>* n = arena_.template create<TNode<P>>();
    n->leaf = false;
    n->nkeys = static_cast<std::uint8_t>(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) n->keys[i] = keys[i];
    for (std::size_t i = 0; i < children.size(); ++i) n->child[i] = children[i];
    return n;
  }

  // Builds a valid 2-6 tree over sorted, duplicate-free keys (input data;
  // costs nothing in the model). `fanout` chooses how full the internal
  // nodes are: 3 gives an all-2-3 tree, 6 a maximally packed tree.
  TNode<P>* build(std::span<const Key> sorted, int fanout = 3) {
    PWF_CHECK(fanout >= 3 && fanout <= kMaxChildren);
    if (sorted.empty()) return nullptr;
    int h = 1;
    while (capacity(h, fanout) < sorted.size()) ++h;
    return build_rec(sorted, h, fanout);
  }

  // Stable storage for key arrays whose subspans flow through the insertion
  // pipeline. Locked: on the runtime, waves still reading held spans run
  // concurrently with the driver holding the next level.
  std::span<const Key> hold(std::vector<Key> keys) {
    std::lock_guard<std::mutex> lock(held_mutex_);
    held_.push_back(std::move(keys));
    return held_.back();
  }

  std::size_t bytes_used() const { return arena_.bytes_used(); }

 private:
  // Max keys held by a tree of height h with internal fan-out at most f
  // (every node holding f-1 keys): X(h) = f^h - 1.
  static std::uint64_t capacity(int h, int fanout) {
    std::uint64_t x = 1;
    for (int i = 0; i < h; ++i) x *= fanout;
    return x - 1;
  }

  TNode<P>* build_rec(std::span<const Key> keys, int h, int fanout) {
    if (h == 1) return make_leaf(keys);
    const std::uint64_t n = keys.size();
    const std::uint64_t child_cap = capacity(h - 1, fanout);
    // Smallest feasible fan-out f in [2, fanout] with f-1 + f*child_cap >= n.
    int f = 2;
    while (f < fanout && static_cast<std::uint64_t>(f) - 1 +
                                 static_cast<std::uint64_t>(f) * child_cap <
                             n)
      ++f;
    PWF_CHECK(static_cast<std::uint64_t>(f) - 1 +
                  static_cast<std::uint64_t>(f) * child_cap >=
              n);
    // Distribute the n - (f-1) child keys as evenly as possible.
    const std::uint64_t child_total = n - (static_cast<std::uint64_t>(f) - 1);
    std::vector<Key> seps;
    std::vector<Cell<P>*> children;
    std::size_t pos = 0;
    for (int i = 0; i < f; ++i) {
      std::uint64_t take =
          child_total / f +
          (static_cast<std::uint64_t>(i) < child_total % f ? 1 : 0);
      children.push_back(input(build_rec(keys.subspan(pos, take), h - 1,
                                         fanout)));
      pos += take;
      if (i + 1 < f) seps.push_back(keys[pos++]);
    }
    return make_internal(seps, children);
  }

  Context ctx_;
  typename P::Arena arena_;
  std::mutex held_mutex_;
  std::vector<std::vector<Key>> held_;
};

// Publishes a node into its destination cell, stamping t(v) where the
// substrate keeps timestamps (ttree nodes are never null).
template <typename Ex, typename P = typename Ex::Policy>
void publish(Ex ex, Cell<P>* out, TNode<P>* n) {
  ex.write(out, n);
  if constexpr (P::kHasTimestamps) n->created = out->ts;
}

template <typename P>
TNode<P>* peek(const Cell<P>* c) {
  return P::peek(c);
}

// ---- insertion building blocks ----------------------------------------------

// A node must be split before the recursion enters it if it is not a 2-3
// node: internal with more than 3 children, or leaf with more than 2 keys.
template <typename P>
bool needs_split(const TNode<P>* n) {
  return n->leaf ? n->nkeys > 2 : n->nchildren() > 3;
}

template <typename P>
struct NodeSplit {
  TNode<P>* left;
  Key sep;
  TNode<P>* right;
};

// Splits a 4-6-child internal node (or 3-5-key leaf) around its middle
// splitter. Only the node's own keys and child-cell pointers are needed —
// grandchildren may still be unwritten futures, so a wave can split a child
// the previous wave published moments ago.
template <typename Ex, typename P = typename Ex::Policy>
NodeSplit<P> split_node(Ex ex, Store<P>& st, const TNode<P>* n) {
  NodeSplit<P> sp;
  if (n->leaf) {
    const int lk = n->nkeys / 2;
    sp = {st.make_leaf({n->keys, static_cast<std::size_t>(lk)}),
          n->keys[lk],
          st.make_leaf({n->keys + lk + 1,
                        static_cast<std::size_t>(n->nkeys - lk - 1)})};
  } else {
    const int nc = n->nchildren();
    const int lc = nc / 2;  // left child count
    TNode<P>* l =
        st.make_internal({n->keys, static_cast<std::size_t>(lc - 1)},
                         {n->child, static_cast<std::size_t>(lc)});
    TNode<P>* r = st.make_internal(
        {n->keys + lc, static_cast<std::size_t>(n->nkeys - lc)},
        {n->child + lc, static_cast<std::size_t>(nc - lc)});
    sp = {l, n->keys[lc - 1], r};
  }
  if constexpr (P::kHasTimestamps) {
    sp.left->created = ex.now_stamp();
    sp.right->created = sp.left->created;
  }
  return sp;
}

// array_split: partitions the sorted `keys` around splitter `s` into (<s)
// and (>s); a key equal to s is dropped (already a member). The substrate is
// charged the paper's O(1)-depth, O(|keys|)-work cost by the caller.
inline std::pair<std::span<const Key>, std::span<const Key>> array_split(
    std::span<const Key> keys, Key s) {
  const auto lo = std::lower_bound(keys.begin(), keys.end(), s);
  const std::size_t i = static_cast<std::size_t>(lo - keys.begin());
  std::size_t j = i;
  if (j < keys.size() && keys[j] == s) ++j;  // drop the duplicate
  return {keys.subspan(0, i), keys.subspan(j)};
}

// Output assembly buffer for one rebuilt node (at most 5 keys, 6 children).
template <typename P>
struct Assembly {
  Key keys[kMaxKeys];
  Cell<P>* child[kMaxChildren];
  int nk = 0;
  int nc = 0;

  void add_child(Cell<P>* c) {
    PWF_CHECK(nc < kMaxChildren);
    child[nc++] = c;
  }
  void add_key(Key k) {
    PWF_CHECK(nk < kMaxKeys);
    keys[nk++] = k;
  }
};

// ---- pipelined bulk insert ---------------------------------------------------

template <typename Ex, typename P = typename Ex::Policy>
Fiber insert_rec(Ex ex, Store<P>& st, TNode<P>* t, std::span<const Key> keys,
                 Cell<P>* out);

// Handles one child slot that received a nonempty key range: touch the
// child, pre-emptively split it if it is not a 2-3 node (pulling the middle
// splitter up into `as`), and fork the recursive insertions. Awaited inline
// by insert_rec, so the reference to the parent's Assembly stays valid.
template <typename Ex, typename P = typename Ex::Policy>
Fiber descend_child(Ex ex, Store<P>& st, Cell<P>* child_cell,
                    std::span<const Key> keys, Assembly<P>& as) {
  // Serial cutoff: below the threshold a child insertion runs inline on
  // this worker (run_serial chains the frame by symmetric transfer) instead
  // of going through the scheduler. Safe: everything an inline chain can
  // suspend on was produced by fibers forked independently (earlier waves),
  // so the dataflow stays acyclic and cannot deadlock.
  const bool serial =
      ex.serial_threshold() > 0 && keys.size() <= ex.serial_threshold();
  if (serial) ex.on_serial_cutoff();
  TNode<P>* c = co_await ex.touch(child_cell);
  ex.step();  // the needs-split check
  if (!needs_split(c)) {
    Cell<P>* nc = st.cell();
    if (serial)
      co_await ex.run_serial(insert_rec(ex, st, c, keys, nc));
    else
      ex.fork(insert_rec(ex, st, c, keys, nc));
    as.add_child(nc);
    co_return;
  }
  NodeSplit<P> sp = split_node(ex, st, c);
  ex.array_op(keys.size());
  auto [a1, a2] = array_split(keys, sp.sep);
  if (a1.empty()) {
    as.add_child(st.input(sp.left));
  } else {
    Cell<P>* ncell = st.cell();
    if (serial)
      co_await ex.run_serial(insert_rec(ex, st, sp.left, a1, ncell));
    else
      ex.fork(insert_rec(ex, st, sp.left, a1, ncell));
    as.add_child(ncell);
  }
  as.add_key(sp.sep);
  if (a2.empty()) {
    as.add_child(st.input(sp.right));
  } else {
    Cell<P>* ncell = st.cell();
    if (serial)
      co_await ex.run_serial(insert_rec(ex, st, sp.right, a2, ncell));
    else
      ex.fork(insert_rec(ex, st, sp.right, a2, ncell));
    as.add_child(ncell);
  }
}

template <typename Ex, typename P>
Fiber insert_rec(Ex ex, Store<P>& st, TNode<P>* t, std::span<const Key> keys,
                 Cell<P>* out) {
  PWF_CHECK(!keys.empty());
  if (t->leaf) {
    // Merge into the leaf; well-separation guarantees the result fits.
    ex.array_op(keys.size() + t->nkeys);
    Key merged[kMaxKeys];
    std::span<const Key> old{t->keys, static_cast<std::size_t>(t->nkeys)};
    std::size_t n = 0, i = 0, j = 0;
    while (i < old.size() || j < keys.size()) {
      Key k;
      if (j == keys.size() || (i < old.size() && old[i] <= keys[j])) {
        k = old[i++];
        if (j < keys.size() && k == keys[j]) ++j;  // drop the duplicate
      } else {
        k = keys[j++];
      }
      PWF_CHECK_MSG(n < kMaxKeys,
                    "leaf overflow: key array was not well separated");
      merged[n++] = k;
    }
    publish(ex, out, st.make_leaf({merged, n}));
    co_return;
  }

  // Partition the keys by this node's splitters (the paper's array_split
  // applied once per splitter), then rebuild the node around the descents.
  Assembly<P> as;
  std::span<const Key> rest = keys;
  for (int i = 0; i <= t->nkeys; ++i) {
    std::span<const Key> part;
    if (i < t->nkeys) {
      ex.array_op(rest.size());
      auto [lo, hi] = array_split(rest, t->keys[i]);
      part = lo;
      rest = hi;
    } else {
      part = rest;
    }
    if (part.empty())
      as.add_child(t->child[i]);  // untouched subtree, cell reused
    else
      co_await descend_child(ex, st, t->child[i], part, as);
    if (i < t->nkeys) as.add_key(t->keys[i]);
  }
  publish(ex, out,
          st.make_internal({as.keys, static_cast<std::size_t>(as.nk)},
                           {as.child, static_cast<std::size_t>(as.nc)}));
}

// Level decomposition of a sorted, duplicate-free key array: level 0 = the
// median, level 1 = first and third quartiles, etc. Each level, given that
// all previous levels were inserted, is well separated.
inline std::vector<std::vector<Key>> level_arrays(std::span<const Key> sorted) {
  std::vector<std::vector<Key>> levels;
  // Pre-order recursion keeps each level's keys in sorted order.
  struct Fill {
    std::vector<std::vector<Key>>& levels;
    void operator()(std::span<const Key> keys, std::size_t depth) {
      if (keys.empty()) return;
      if (levels.size() <= depth) levels.resize(depth + 1);
      const std::size_t mid = keys.size() / 2;
      levels[depth].push_back(keys[mid]);
      (*this)(keys.subspan(0, mid), depth + 1);
      (*this)(keys.subspan(mid + 1), depth + 1);
    }
  };
  Fill{levels}(sorted, 0);
  return levels;
}

// One pipelined wave: inserts the well-separated sorted `keys` into the tree
// in `root`, publishing the new tree under *out. Fork it.
template <typename Ex, typename P = typename Ex::Policy>
Fiber insert_wave(Ex ex, Store<P>& st, Cell<P>* root,
                  std::span<const Key> keys, Cell<P>* out) {
  TNode<P>* t = co_await ex.touch(root);
  PWF_CHECK_MSG(t != nullptr, "bulk insert requires a nonempty tree");
  ex.step();
  if (needs_split(t)) {
    // Split the root and grow the tree by one level; the new root is a
    // 2-node, restoring the invariant.
    NodeSplit<P> sp = split_node(ex, st, t);
    Key sep[1] = {sp.sep};
    Cell<P>* ch[2] = {st.input(sp.left), st.input(sp.right)};
    t = st.make_internal(sep, ch);
  }
  co_await insert_rec(ex, st, t, keys, out);
}

// Full pipelined bulk insert into a nonempty tree. Returns the final root
// cell (each wave's result cell feeds the next wave).
template <typename Ex, typename P = typename Ex::Policy>
Cell<P>* bulk_insert(Ex ex, Store<P>& st, Cell<P>* root,
                     std::span<const Key> sorted) {
  if (sorted.empty()) return root;
  std::vector<std::vector<Key>> levels = level_arrays(sorted);
  for (auto& level : levels) {
    const std::span<const Key> keys = st.hold(std::move(level));
    Cell<P>* out = st.cell();
    ex.fork(insert_wave(ex, st, root, keys, out));
    root = out;
  }
  return root;
}

// ---- strict baseline ---------------------------------------------------------

template <typename Ex, typename P = typename Ex::Policy>
Task<TNode<P>*> insert_rec_strict(Ex ex, Store<P>& st, TNode<P>* t,
                                  std::span<const Key> keys);

// Fills one assembly slot with the result of a strict child insertion; the
// jobs run under fork_join_all, each writing a distinct slot.
template <typename Ex, typename P = typename Ex::Policy>
Task<void> fill_slot(Ex ex, Store<P>& st, Assembly<P>& as, TNode<P>* node,
                     std::span<const Key> keys, int slot) {
  as.child[slot] = st.input(co_await insert_rec_strict(ex, st, node, keys));
}

template <typename Ex, typename P>
Task<TNode<P>*> insert_rec_strict(Ex ex, Store<P>& st, TNode<P>* t,
                                  std::span<const Key> keys) {
  PWF_CHECK(!keys.empty());
  if (t->leaf) {
    ex.array_op(keys.size() + t->nkeys);
    std::vector<Key> merged;
    std::span<const Key> old{t->keys, static_cast<std::size_t>(t->nkeys)};
    std::merge(old.begin(), old.end(), keys.begin(), keys.end(),
               std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    PWF_CHECK_MSG(merged.size() <= kMaxKeys,
                  "leaf overflow: key array was not well separated");
    co_return st.make_leaf(merged);
  }

  Assembly<P> as;
  std::vector<Task<void>> jobs;  // parallel slot fills (fork-join below)
  std::span<const Key> rest = keys;
  for (int i = 0; i <= t->nkeys; ++i) {
    std::span<const Key> part;
    if (i < t->nkeys) {
      ex.array_op(rest.size());
      auto [lo, hi] = array_split(rest, t->keys[i]);
      part = lo;
      rest = hi;
    } else {
      part = rest;
    }
    if (part.empty()) {
      as.add_child(t->child[i]);
    } else {
      TNode<P>* c = peek<P>(t->child[i]);
      ex.step();
      if (!needs_split(c)) {
        jobs.push_back(fill_slot(ex, st, as, c, part, as.nc));
        as.add_child(nullptr);  // placeholder
      } else {
        NodeSplit<P> sp = split_node(ex, st, c);
        ex.array_op(part.size());
        auto [a1, a2] = array_split(part, sp.sep);
        if (a1.empty()) {
          as.add_child(st.input(sp.left));
        } else {
          jobs.push_back(fill_slot(ex, st, as, sp.left, a1, as.nc));
          as.add_child(nullptr);
        }
        as.add_key(sp.sep);
        if (a2.empty()) {
          as.add_child(st.input(sp.right));
        } else {
          jobs.push_back(fill_slot(ex, st, as, sp.right, a2, as.nc));
          as.add_child(nullptr);
        }
      }
    }
    if (i < t->nkeys) as.add_key(t->keys[i]);
  }

  // Run the child insertions in parallel (fork-join), then assemble.
  co_await ex.fork_join_all(std::move(jobs));

  co_return st.make_internal({as.keys, static_cast<std::size_t>(as.nk)},
                             {as.child, static_cast<std::size_t>(as.nc)});
}

// Strict wave: fork-join computation returning a complete tree.
template <typename Ex, typename P = typename Ex::Policy>
Task<TNode<P>*> insert_wave_strict(Ex ex, Store<P>& st, TNode<P>* root,
                                   std::span<const Key> keys) {
  PWF_CHECK_MSG(root != nullptr, "bulk insert requires a nonempty tree");
  ex.step();
  TNode<P>* t = root;
  if (needs_split(t)) {
    NodeSplit<P> sp = split_node(ex, st, t);
    Key sep[1] = {sp.sep};
    Cell<P>* ch[2] = {st.input(sp.left), st.input(sp.right)};
    t = st.make_internal(sep, ch);
  }
  co_return co_await insert_rec_strict(ex, st, t, keys);
}

// Strict bulk insert: waves run back-to-back with no overlap.
template <typename Ex, typename P = typename Ex::Policy>
Task<TNode<P>*> bulk_insert_strict(Ex ex, Store<P>& st, TNode<P>* root,
                                   std::span<const Key> sorted) {
  if (sorted.empty()) co_return root;
  for (auto& level : level_arrays(sorted)) {
    const std::span<const Key> keys = st.hold(std::move(level));
    root = co_await insert_wave_strict(ex, st, root, keys);
  }
  co_return root;
}

// ---- analysis helpers (no substrate actions) --------------------------------

template <typename P>
void collect_keys(const TNode<P>* root, std::vector<Key>& out) {
  if (root == nullptr) return;
  if (root->leaf) {
    for (int i = 0; i < root->nkeys; ++i) out.push_back(root->keys[i]);
    return;
  }
  for (int i = 0; i < root->nkeys; ++i) {
    collect_keys(peek<P>(root->child[i]), out);
    out.push_back(root->keys[i]);
  }
  collect_keys(peek<P>(root->child[root->nkeys]), out);
}

template <typename P>
int height(const TNode<P>* root) {
  if (root == nullptr) return 0;
  if (root->leaf) return 1;
  return 1 + height(peek<P>(root->child[0]));
}

template <typename P>
std::uint64_t count_keys(const TNode<P>* root) {
  if (root == nullptr) return 0;
  std::uint64_t n = root->nkeys;
  if (!root->leaf)
    for (int i = 0; i <= root->nkeys; ++i)
      n += count_keys(peek<P>(root->child[i]));
  return n;
}

template <typename P>
typename P::Time max_created(const TNode<P>* root) {
  if (root == nullptr) return 0;
  typename P::Time t = root->created;
  if (!root->leaf)
    for (int i = 0; i <= root->nkeys; ++i)
      t = std::max(t, max_created(peek<P>(root->child[i])));
  return t;
}

namespace detail {
// Returns the leaf depth, or -1 on violation. lo/hi bound the subtree keys
// strictly (nullptr = unbounded).
template <typename P>
int validate_rec(const TNode<P>* n, const Key* lo, const Key* hi) {
  if (n == nullptr) return -1;  // null child of an internal node: invalid
  if (n->nkeys < 1 || n->nkeys > kMaxKeys) return -1;
  for (int i = 0; i < n->nkeys; ++i) {
    if (lo && n->keys[i] <= *lo) return -1;
    if (hi && n->keys[i] >= *hi) return -1;
    if (i > 0 && n->keys[i] <= n->keys[i - 1]) return -1;
  }
  if (n->leaf) return 1;
  int depth = -2;
  for (int i = 0; i <= n->nkeys; ++i) {
    const Key* clo = i == 0 ? lo : &n->keys[i - 1];
    const Key* chi = i == n->nkeys ? hi : &n->keys[i];
    const int d = validate_rec(peek<P>(n->child[i]), clo, chi);
    if (d < 0) return -1;
    if (depth == -2)
      depth = d;
    else if (d != depth)
      return -1;  // leaves not all at the same level
  }
  return depth + 1;
}
}  // namespace detail

// Structural invariant: key counts in range, per-node key order, children
// count, all leaves at the same depth, global key order, no duplicates.
template <typename P>
bool validate(const TNode<P>* root) {
  if (root == nullptr) return true;
  return detail::validate_rec(root, nullptr, nullptr) > 0;
}

// Membership test (splitters are members).
template <typename P>
bool contains(const TNode<P>* root, Key k) {
  const TNode<P>* n = root;
  while (n != nullptr) {
    int i = 0;
    while (i < n->nkeys && k > n->keys[i]) ++i;
    if (i < n->nkeys && k == n->keys[i]) return true;
    if (n->leaf) return false;
    n = peek<P>(n->child[i]);
  }
  return false;
}

}  // namespace pwf::pipelined::ttree
