// Coroutine plumbing shared by every substrate (see docs/substrates.md).
//
// The single-source algorithm bodies in this directory are C++20 coroutines
// templated over an executor `Ex`. Whether a body runs eagerly inside the
// cost model or concurrently on the work-stealing runtime is decided entirely
// by what `ex.touch(...)` / `ex.fork(...)` / `ex.fork_join2(...)` return:
//
//   * on the cost-model substrates every awaiter is immediately ready (or
//     symmetric-transfers straight into the child frame), so a body runs to
//     completion inside a single resume() — the coroutine machinery adds no
//     engine actions and the measured DAG is bit-identical to a plain-call
//     formulation;
//   * on the runtime substrate `touch` suspends on an unwritten FutCell and
//     `fork` posts the child to the scheduler;
//   * on the recording substrate (src/analyze/rec_exec.hpp) awaiters are
//     ready like the cost model's, but fork/touch/write emit a verifiable
//     cm::Trace, and the granularity hooks are live: `Policy::ready(c)`
//     probes availability without consuming a read, `serial_threshold()` is
//     a runtime value, and `on_leaf_op(keys)` / `on_serial_cutoff()` tag
//     explicit DAG actions — so the runtime's coarsened code paths (leaf
//     fast paths, serial cutoffs) appear in the recorded DAG instead of
//     being if-constexpr-dead as they are on the cost model.
//
// Two coroutine shapes cover all bodies:
//
//   Fiber    — detached unit of work with an optional continuation. `fork`
//              consumes one; `co_await`ing one chains it inline (symmetric
//              transfer), which is the substrate-neutral spelling of a plain
//              recursive call. The frame frees itself at completion.
//   Task<T>  — lazy value-returning child for fork/join. The parent keeps
//              ownership; the value lives in the promise until joined.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdlib>
#include <utility>

#include "runtime/frame_pool.hpp"

namespace pwf::pipelined {

// Frame storage for every substrate's coroutines comes from the per-thread
// size-class pool: promise types inherit these allocation functions, so the
// compiler routes the whole frame (promise + locals) through the pool.
// Steady-state forks then recycle warm blocks instead of hitting the heap —
// the dominant per-future constant E13 measured. Only the sized delete is
// declared; coroutine deallocation prefers it, and the pool needs the size
// to find the class.
struct PooledFrame {
  static void* operator new(std::size_t bytes) {
    return rt::FramePool::allocate(bytes);
  }
  static void operator delete(void* p, std::size_t bytes) {
    rt::FramePool::release(p, bytes);
  }
};

class Fiber {
 public:
  struct promise_type : PooledFrame {
    std::coroutine_handle<> cont;

    Fiber get_return_object() {
      return Fiber{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        // Detached: the frame dies here. Grab the continuation first.
        const std::coroutine_handle<> next = h.promise().cont;
        h.destroy();
        return next ? next : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::abort(); }
  };

  explicit Fiber(std::coroutine_handle<promise_type> h) : handle(h) {}
  Fiber(Fiber&& o) noexcept : handle(std::exchange(o.handle, {})) {}
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  // No destructor: fibers are always either forked or awaited, after which
  // the frame owns (and frees) itself.

  struct InlineAwaiter {
    std::coroutine_handle<promise_type> handle;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
      handle.promise().cont = parent;
      return handle;  // symmetric transfer: run the child now
    }
    void await_resume() const noexcept {}
  };
  // `co_await std::move(fiber)` = run inline, resume me when it completes.
  InlineAwaiter operator co_await() && { return InlineAwaiter{handle}; }

  std::coroutine_handle<promise_type> handle;
};

template <typename T>
class Task {
 public:
  struct promise_type : PooledFrame {
    T value{};
    std::coroutine_handle<> cont;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        // The Task object still owns the frame (the joined value lives in
        // the promise), so no destroy here — just resume the joiner.
        const std::coroutine_handle<> next = h.promise().cont;
        return next ? next : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { std::abort(); }
  };

  explicit Task(std::coroutine_handle<promise_type> h) : handle(h) {}
  Task(Task&& o) noexcept : handle(std::exchange(o.handle, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle) handle.destroy();
  }

  struct ValueAwaiter {
    std::coroutine_handle<promise_type> handle;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
      handle.promise().cont = parent;
      return handle;
    }
    T await_resume() { return std::move(handle.promise().value); }
  };
  // `co_await std::move(task)` = run inline and yield the value.
  ValueAwaiter operator co_await() && { return ValueAwaiter{handle}; }

  struct DoneAwaiter {
    std::coroutine_handle<promise_type> handle;
    bool await_ready() const noexcept { return handle.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
      handle.promise().cont = parent;
      return handle;
    }
    void await_resume() const noexcept {}
  };
  // Start/join without consuming the value (runtime join watchers use this;
  // the parent reads the promise after all children arrive).
  DoneAwaiter when_done() { return DoneAwaiter{handle}; }

  std::coroutine_handle<promise_type> handle;
};

template <>
class Task<void> {
 public:
  struct promise_type : PooledFrame {
    std::coroutine_handle<> cont;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        const std::coroutine_handle<> next = h.promise().cont;
        return next ? next : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::abort(); }
  };

  explicit Task(std::coroutine_handle<promise_type> h) : handle(h) {}
  Task(Task&& o) noexcept : handle(std::exchange(o.handle, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle) handle.destroy();
  }

  struct DoneAwaiter {
    std::coroutine_handle<promise_type> handle;
    bool await_ready() const noexcept { return handle.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
      handle.promise().cont = parent;
      return handle;
    }
    void await_resume() const noexcept {}
  };
  DoneAwaiter operator co_await() && { return DoneAwaiter{handle}; }
  DoneAwaiter when_done() { return DoneAwaiter{handle}; }

  std::coroutine_handle<promise_type> handle;
};

// Drive a coroutine to completion on the current thread. Only valid on
// substrates whose awaiters never actually suspend (the cost models); the
// shims in src/trees etc. use these to keep their plain-function APIs.
template <typename T>
T run_inline(Task<T> t) {
  t.handle.resume();
  return std::move(t.handle.promise().value);
}

inline void run_inline(Task<void> t) { t.handle.resume(); }

inline void run_inline(Fiber f) { f.handle.resume(); }

}  // namespace pwf::pipelined
