// Shared explicit-stack walks over finished (or finishing) treaps.
//
// Every consumer of a treap — the set facade's wait_inorder, the map
// facade's wait_items/lookup, snapshot readers, validators — used to carry
// its own iterative walker. These are single-source now, parameterized on a
// *force* callable that resolves one cell to its node pointer:
//
//   * P::peek          — post-completion reads (cost model, analysis);
//   * c->peek()        — runtime reads of known-finished trees;
//   * c->wait_blocking() — runtime reads that pipeline with in-flight
//                          construction (the consumer parks per cell, the
//                          paper's point), used by the facades and by
//                          lock-free snapshot readers.
//
// The force callable is applied to both node cells and aggregate cells, so
// a generic lambda (`[](auto* c) { return c->wait_blocking(); }`) covers
// augmented walks too.
//
// All walks are iterative (explicit stack / loop): facade trees are
// arbitrarily deep chains while a pipeline is mid-flight, and the walkers
// must not ride the C++ call stack there.
#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "pipelined/treap.hpp"

namespace pwf::pipelined::treap {

namespace detail {
template <typename C, typename Force>
using forced_node_t =
    std::remove_pointer_t<std::remove_cvref_t<decltype(std::declval<Force&>()(
        std::declval<C*>()))>>;
}  // namespace detail

// Pre-order node visit: f(node) on every node record, leaves included (no
// descent into chunk entries). The visitor sees internal nodes before their
// subtrees — the shape walk validators and cache-economy scans want.
template <typename C, typename Force, typename F>
void visit_nodes(C* root, Force force, F&& f) {
  using NodeT = detail::forced_node_t<C, Force>;
  std::vector<C*> stack;
  stack.push_back(root);
  while (!stack.empty()) {
    C* c = stack.back();
    stack.pop_back();
    NodeT* n = force(c);
    if (n == nullptr) continue;
    f(n);
    if (!is_leaf(n)) {
      stack.push_back(n->right);
      stack.push_back(n->left);
    }
  }
}

// In-order entry visit: f(key, value) in ascending key order, expanding leaf
// chunks. Two-phase frames: descend first, emit the node (then descend
// right) on the second visit.
template <typename C, typename Force, typename F>
void visit_items(C* root, Force force, F&& f) {
  using NodeT = detail::forced_node_t<C, Force>;
  struct Frame {
    C* cell;
    bool emit;  // node already expanded; emit entry then go right
  };
  std::vector<Frame> stack;
  stack.push_back({root, false});
  while (!stack.empty()) {
    Frame fr = stack.back();
    stack.pop_back();
    NodeT* n = force(fr.cell);
    if (n == nullptr) continue;
    if (fr.emit) {
      f(n->key, n->value);
      stack.push_back({n->right, false});
      continue;
    }
    if (is_leaf(n)) {
      for (std::uint32_t i = 0; i < n->count; ++i)
        f(n->items[i].key, n->items[i].value);
      continue;
    }
    stack.push_back({fr.cell, true});
    stack.push_back({n->left, false});
  }
}

// Number of keys in the tree (leaf chunks contribute their entry counts).
template <typename C, typename Force>
std::size_t count_keys(C* root, Force force) {
  std::size_t n = 0;
  visit_nodes(root, force, [&](auto* node) {
    n += is_leaf(node) ? node->count : 1;
  });
  return n;
}

// Height in node records (a leaf chunk counts as one level).
template <typename C, typename Force>
int height_of(C* root, Force force) {
  using NodeT = detail::forced_node_t<C, Force>;
  struct Frame {
    C* cell;
    int depth;
  };
  int best = 0;
  std::vector<Frame> stack;
  stack.push_back({root, 1});
  while (!stack.empty()) {
    Frame fr = stack.back();
    stack.pop_back();
    NodeT* n = force(fr.cell);
    if (n == nullptr) continue;
    if (fr.depth > best) best = fr.depth;
    if (!is_leaf(n)) {
      stack.push_back({n->left, fr.depth + 1});
      stack.push_back({n->right, fr.depth + 1});
    }
  }
  return best;
}

// Point lookup: walks the BST path, finishing with a binary search inside
// the leaf chunk. Forces only the O(lg n) cells on the path.
template <typename C, typename Force>
auto lookup(C* root, Key k, Force force)
    -> std::optional<
        typename detail::forced_node_t<C, Force>::Entry::Value> {
  using NodeT = detail::forced_node_t<C, Force>;
  C* c = root;
  for (;;) {
    NodeT* n = force(c);
    if (n == nullptr) return std::nullopt;
    if (is_leaf(n)) {
      const LeafEntryT<typename NodeT::Entry>* e = n->items;
      std::uint32_t lo = 0, hi = n->count;
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (e[mid].key < k) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo < n->count && e[lo].key == k) return e[lo].value;
      return std::nullopt;
    }
    if (k < n->key) {
      c = n->left;
    } else if (k > n->key) {
      c = n->right;
    } else {
      return n->value;
    }
  }
}

namespace detail {

// Aggregate of the chunk entries with keys in [lo, hi], combined in key
// (index) order.
template <typename NodeT>
auto fold_leaf(const NodeT* n, Key lo, Key hi) {
  using Ops = typename NodeT::Entry::AugOps;
  auto acc = Ops::identity();
  for (std::uint32_t i = 0; i < n->count; ++i) {
    const auto& e = n->items[i];
    if (e.key < lo) continue;
    if (e.key > hi) break;
    acc = Ops::combine(acc, Ops::from_entry(e.key, e.value));
  }
  return acc;
}

}  // namespace detail

// Whole-tree aggregate: one forced cell (the root's cached value).
template <typename C, typename Force>
auto aggregate_all(C* root, Force force) {
  using NodeT = detail::forced_node_t<C, Force>;
  using Ops = typename NodeT::Entry::AugOps;
  NodeT* n = force(root);
  if (n == nullptr) return Ops::identity();
  return static_cast<typename Ops::Aug>(force(n->aug));
}

// Range aggregate over keys in [lo, hi] (inclusive), O(lg n) forced cells:
// descend to the split node, then walk the two boundary paths, picking up
// whole-subtree cached aggregates that fall inside the range. combine() is
// applied strictly in key order (associativity suffices; commutativity is
// not required).
template <typename C, typename Force>
auto aggregate(C* root, Key lo, Key hi, Force force) {
  using NodeT = detail::forced_node_t<C, Force>;
  using Ops = typename NodeT::Entry::AugOps;
  using Aug = typename Ops::Aug;
  if (lo > hi) return Ops::identity();

  // Phase 1: find the split node — the first node with lo <= key <= hi.
  // Everything in [lo, hi] lives under it.
  C* c = root;
  NodeT* split = nullptr;
  for (;;) {
    NodeT* n = force(c);
    if (n == nullptr) return Ops::identity();
    if (is_leaf(n)) return detail::fold_leaf(n, lo, hi);
    if (hi < n->key) {
      c = n->left;
    } else if (lo > n->key) {
      c = n->right;
    } else {
      split = n;
      break;
    }
  }

  Aug acc = Ops::from_entry(split->key, split->value);

  // Phase 2 (left boundary): descend split->left looking for lo. Whenever
  // the path goes left, the current node and its whole right subtree are in
  // range; accumulate them *in front of* what's collected so far (they hold
  // smaller keys).
  {
    Aug pre = Ops::identity();
    C* lc = split->left;
    for (;;) {
      NodeT* n = force(lc);
      if (n == nullptr) break;
      if (is_leaf(n)) {
        pre = Ops::combine(detail::fold_leaf(n, lo, hi), pre);
        break;
      }
      if (n->key >= lo) {
        Aug part = Ops::from_entry(n->key, n->value);
        NodeT* rs = force(n->right);
        if (rs != nullptr) part = Ops::combine(part, force(rs->aug));
        pre = Ops::combine(part, pre);
        lc = n->left;
      } else {
        lc = n->right;
      }
    }
    acc = Ops::combine(pre, acc);
  }

  // Phase 3 (right boundary): mirror image under split->right; whole left
  // subtrees and nodes with key <= hi append after the accumulator.
  {
    Aug post = Ops::identity();
    C* rc = split->right;
    for (;;) {
      NodeT* n = force(rc);
      if (n == nullptr) break;
      if (is_leaf(n)) {
        post = Ops::combine(post, detail::fold_leaf(n, lo, hi));
        break;
      }
      if (n->key <= hi) {
        Aug part = Ops::identity();
        NodeT* ls = force(n->left);
        if (ls != nullptr) part = static_cast<Aug>(force(ls->aug));
        part = Ops::combine(part, Ops::from_entry(n->key, n->value));
        post = Ops::combine(post, part);
        rc = n->right;
      } else {
        rc = n->left;
      }
    }
    acc = Ops::combine(acc, post);
  }

  return acc;
}

}  // namespace pwf::pipelined::treap
