// Coroutine-runtime substrate: RtExec executes the same templated algorithm
// bodies on the work-stealing scheduler (src/runtime). See
// docs/substrates.md.
//
// touch() hands back the FutCell itself — its awaiter parks the coroutine in
// the cell when the value is not there yet (the paper's constant-time
// suspend/reactivate). fork() posts a detached fiber; fork_join2/fork_join_all
// count children in with an atomic join counter. Cost-model bookkeeping
// (step/array_op/now_stamp) compiles to nothing.
#pragma once

#include <atomic>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "pipelined/exec.hpp"
#include "runtime/concurrent_arena.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"
#include "support/check.hpp"

namespace pwf::pipelined {

// The runtime needs no per-store context: cells repost waiters through the
// process-wide Scheduler::current().
struct RtContext {};

struct RtPolicy {
  template <typename T>
  using Cell = rt::FutCell<T>;
  using Time = std::uint64_t;  // vestigial: the runtime has no DAG clock
  using Context = RtContext;
  using Arena = rt::ConcurrentArena;
  static constexpr bool kHasTimestamps = false;
  // Upper bound on the flat leaf-chunk capacity a Store may request
  // (docs/storage.md). The per-store default is treap::kDefaultLeafCapacity;
  // this cap just keeps a misconfigured store from building kilobyte-scans.
  static constexpr std::size_t kMaxLeafCapacity = 1024;

  template <typename T>
  static void preset(rt::FutCell<T>& c, T v) {
    c.preset(std::move(v));
  }
  template <typename T>
  static T peek(const rt::FutCell<T>* c) {
    return c->peek();
  }
  // Non-consuming availability probe: serial fast paths walk only through
  // cells that are already written and fall back to the pipelined path the
  // moment one is not (no parking, no blocking).
  template <typename T>
  static bool ready(const rt::FutCell<T>* c) {
    return c->written();
  }
};

namespace detail {

// Join counter for fork_join2/fork_join_all: children + the parent each hold
// one token; whoever releases the last token resumes the parent. The parent
// holds its own token so the awaiter can't be resumed before await_suspend
// has finished publishing `parent`.
struct JoinCounter {
  std::atomic<int> pending;
  std::coroutine_handle<> parent;

  explicit JoinCounter(int tokens) : pending(tokens) {}

  // Returns true when this call released the last token (the caller that
  // sees it on the parent path continues inline; a child posts the parent).
  bool release() { return pending.fetch_sub(1, std::memory_order_acq_rel) == 1; }

  void arrive() {
    if (release()) {
      rt::Scheduler* s = rt::Scheduler::current();
      PWF_CHECK_MSG(s != nullptr, "fork_join outside a Scheduler's lifetime");
      s->post(parent);
    }
  }
};

// Watcher fiber: drive one child task to completion, then arrive at the
// join. The task object lives in the parent's awaiter, which outlives every
// watcher (the parent resumes only after all arrivals).
template <typename TaskT>
Fiber join_watch(TaskT& t, JoinCounter& jc) {
  co_await t.when_done();
  jc.arrive();
}

}  // namespace detail

class RtExec {
 public:
  using Policy = RtPolicy;

  // Below this many elements (or available nodes) the shared bodies stop
  // forking and run tight sequential loops instead. 128 sits in the middle
  // of the 64–256 band where per-frame overhead (~µs) dwarfs per-element
  // work (~ns) but the lost parallelism is still negligible against total
  // work; E23 sweeps the alternatives.
  static constexpr std::size_t kDefaultSerialThreshold = 128;

  RtExec() = default;
  explicit RtExec(RtContext) {}
  explicit RtExec(std::size_t threshold) : serial_threshold_(threshold) {}

  // ---- pipelined operations ------------------------------------------------

  // The cell is its own awaiter: ready if written, parks the frame if not.
  template <typename T>
  rt::FutCell<T>& touch(rt::FutCell<T>* c) const {
    return *c;
  }

  template <typename T>
  void write(rt::FutCell<T>* c, T v) const {
    c->write(std::move(v));
  }

  void fork(Fiber f) const {
    rt::Scheduler* s = rt::Scheduler::current();
    PWF_CHECK_MSG(s != nullptr, "fork outside a Scheduler's lifetime");
    s->post(f.handle);
  }

  // ---- local work (cost-model bookkeeping only — free at runtime) ----------

  void step() const {}
  void steps(std::uint64_t) const {}
  void array_op(std::uint64_t) const {}
  std::uint64_t now_stamp() const { return 0; }

  // ---- granularity control -------------------------------------------------

  std::size_t serial_threshold() const { return serial_threshold_; }

  void on_serial_cutoff() const {
    if (rt::Scheduler* s = rt::Scheduler::current()) s->note_serial_cutoff();
  }

  void on_leaf_op(std::size_t /*keys*/) const {
    if (rt::Scheduler* s = rt::Scheduler::current()) s->note_leaf_op();
  }

  void on_aug_op() const {
    if (rt::Scheduler* s = rt::Scheduler::current()) s->note_aug_op();
  }

  // Run a would-be fork inline on this worker (symmetric transfer, no
  // scheduler round trip). Anything the inline chain suspends on is produced
  // by independently forked fibers, so chaining cannot deadlock.
  static Fiber::InlineAwaiter run_serial(Fiber f) {
    return Fiber::InlineAwaiter{f.handle};
  }

  // ---- fork-join -----------------------------------------------------------

  template <typename A, typename B>
  struct Join2 {
    Task<A> a;
    Task<B> b;
    detail::JoinCounter jc{3};

    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> parent) {
      jc.parent = parent;
      rt::Scheduler* s = rt::Scheduler::current();
      PWF_CHECK_MSG(s != nullptr, "fork_join outside a Scheduler's lifetime");
      s->post(detail::join_watch(a, jc).handle);
      s->post(detail::join_watch(b, jc).handle);
      return !jc.release();  // both children already done -> resume inline
    }
    std::pair<A, B> await_resume() {
      return {std::move(a.handle.promise().value),
              std::move(b.handle.promise().value)};
    }
  };

  template <typename A, typename B>
  Join2<A, B> fork_join2(Task<A> a, Task<B> b) const {
    return Join2<A, B>{std::move(a), std::move(b)};
  }

  struct JoinAll {
    std::vector<Task<void>> ts;
    detail::JoinCounter jc;

    explicit JoinAll(std::vector<Task<void>> tasks)
        : ts(std::move(tasks)), jc(static_cast<int>(ts.size()) + 1) {}

    bool await_ready() const noexcept { return ts.empty(); }
    bool await_suspend(std::coroutine_handle<> parent) {
      jc.parent = parent;
      rt::Scheduler* s = rt::Scheduler::current();
      PWF_CHECK_MSG(s != nullptr, "fork_join outside a Scheduler's lifetime");
      for (Task<void>& t : ts) s->post(detail::join_watch(t, jc).handle);
      return !jc.release();
    }
    void await_resume() const noexcept {}
  };

  JoinAll fork_join_all(std::vector<Task<void>> ts) const {
    return JoinAll{std::move(ts)};
  }

 private:
  std::size_t serial_threshold_ = kDefaultSerialThreshold;
};

// Bridge to a blocking caller: runs the task on the scheduler and writes its
// value into `result` (wait_blocking on the far side). This is how the
// strict baselines — whose roots are plain values, not cells — are joined
// from an external thread.
template <typename T>
Fiber deliver(Task<T> t, rt::FutCell<T>* result) {
  result->write(co_await std::move(t));
}

}  // namespace pwf::pipelined
