// Single-source mergesort over pipelined tree merges (the paper's Section 5
// conjecture) plus the strict baseline and the rebalance-every-level
// ablation. Instantiated by src/algos/mergesort.cpp (cost model) and
// src/runtime/rt_trees.cpp (coroutine runtime).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "pipelined/exec.hpp"
#include "pipelined/trees.hpp"

namespace pwf::pipelined::trees {

namespace detail {

// Serial mergesort: the same recursion with serial merges, so the produced
// tree is node-for-node the one the pipelined path would build (merge_serial
// mirrors merge_into's splits exactly). Granularity fast path only — dead on
// the cost-model substrates.
template <typename P>
Node<P>* msort_serial(Store<P>& st, std::span<const Key> values) {
  if (values.empty()) return nullptr;
  if (values.size() == 1)
    return st.make_ready(values[0], nullptr, nullptr);
  const std::size_t mid = values.size() / 2;
  return merge_serial(st, msort_serial<P>(st, values.subspan(0, mid)),
                      msort_serial<P>(st, values.subspan(mid)));
}

}  // namespace detail

// Sorts `values` (duplicates allowed — they survive as equal adjacent keys)
// into the BST under *out using pipelined merges. The recursion tree, the
// merges, and the splits inside the merges give three levels of pipelining.
template <typename Ex, typename P = typename Ex::Policy>
Fiber msort_into(Ex ex, Store<P>& st, std::span<const Key> values,
                 Cell<P>* out) {
  ex.step();
  if (values.empty()) {
    ex.write(out, static_cast<Node<P>*>(nullptr));
    co_return;
  }
  if (values.size() == 1) {
    publish(ex, out, st.make_ready(values[0], nullptr, nullptr));
    co_return;
  }
  // Serial cutoff: the input span is plain data (always available), so the
  // size alone decides.
  if (const std::size_t thr = ex.serial_threshold();
      thr > 0 && values.size() <= thr) {
    ex.on_serial_cutoff();
    publish(ex, out, detail::msort_serial<P>(st, values));
    co_return;
  }
  const std::size_t mid = values.size() / 2;
  Cell<P>* l = st.cell();
  Cell<P>* r = st.cell();
  ex.fork(msort_into(ex, st, values.subspan(0, mid), l));
  ex.fork(msort_into(ex, st, values.subspan(mid), r));
  co_await merge_into(ex, st, l, r, out);
}

// Non-pipelined baseline: same recursion with strict merges.
template <typename Ex, typename P = typename Ex::Policy>
Task<Node<P>*> msort_strict(Ex ex, Store<P>& st, std::span<const Key> values) {
  ex.step();
  if (values.empty()) co_return nullptr;
  if (values.size() == 1) co_return st.make_ready(values[0], nullptr, nullptr);
  const std::size_t mid = values.size() / 2;
  auto [l, r] =
      co_await ex.fork_join2(msort_strict(ex, st, values.subspan(0, mid)),
                             msort_strict(ex, st, values.subspan(mid)));
  co_return co_await merge_strict(ex, st, l, r);
}

// Rebalance phase of the balanced variant, in its own thread: its measure
// pass waits (through data edges) for this level's merge only, so sibling
// subtrees still overlap; levels serialize at the rebalance barrier.
template <typename Ex, typename P = typename Ex::Policy>
Fiber measure_rebalance(Ex ex, Store<P>& st, Cell<P>* merged,
                        std::uint64_t size, Cell<P>* out) {
  Node<P>* annotated = co_await measure(ex, st, merged);
  co_await rebalance_into(ex, st, st.input(annotated), size, out);
}

// Balanced variant (ablation): rebalances after every merge level —
// D(n) = D(n/2) + O(lg n), and the output is height-optimal.
template <typename Ex, typename P = typename Ex::Policy>
Fiber msort_balanced_into(Ex ex, Store<P>& st, std::span<const Key> values,
                          Cell<P>* out) {
  ex.step();
  if (values.empty()) {
    ex.write(out, static_cast<Node<P>*>(nullptr));
    co_return;
  }
  if (values.size() == 1) {
    publish(ex, out, st.make_ready(values[0], nullptr, nullptr));
    co_return;
  }
  // Serial cutoff: sort + median-split build is exactly what merge followed
  // by the rank-size/2 rebalance produces at every level, so the output tree
  // is unchanged.
  if (const std::size_t thr = ex.serial_threshold();
      thr > 0 && values.size() <= thr) {
    ex.on_serial_cutoff();
    std::vector<Key> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    publish(ex, out, st.build_balanced(sorted));
    co_return;
  }
  const std::size_t mid = values.size() / 2;
  Cell<P>* l = st.cell();
  Cell<P>* r = st.cell();
  ex.fork(msort_balanced_into(ex, st, values.subspan(0, mid), l));
  ex.fork(msort_balanced_into(ex, st, values.subspan(mid), r));
  Cell<P>* merged = st.cell();
  ex.fork(merge_into(ex, st, l, r, merged));
  ex.fork(measure_rebalance(ex, st, merged, values.size(), out));
}

}  // namespace pwf::pipelined::trees
