// ParallelMap<V, A> — batch-updatable key→value map over the runtime treap
// maps (rt_map.hpp). The aggregation counterpart of ParallelSet: each
// insert_batch is one pipelined union whose value-merge function resolves
// key collisions (sum for counters, last-writer-wins for stores, ...).
//
// The optional second parameter A is a PAM-style augmentation policy (an
// AugOps type like pipelined::treap::SumAug<V>; void = unaugmented). With
// an augmentation, every node and leaf chunk maintains A::combine over its
// subtree, `aggregate(lo, hi)` answers range queries forcing only O(lg n)
// cells, and snapshots aggregate too (docs/augmentation.md).
//
// Like ParallelSet, batches are asynchronous and pipelined across
// operations: mutators chain their treap op onto the (possibly still
// materializing) root cell and return immediately; `flush()` is the
// explicit quiescence point, `size()` recounts lazily, and `get()` forces
// only the cells along its search path. One mutator thread at a time; any
// number of concurrent readers (`get`/`contains`/`items`). `compact()` is
// safe against concurrent readers (same seq_cst reader-count protocol as
// ParallelSet). See docs/service.md for the full contract.
//
// `snapshot()` returns an immutable, epoch-pinned view (MapSnapshot):
// readers traverse and aggregate it lock-free — no reader count, no lock —
// while the pipeline keeps writing new batches, and the pinned store
// outlives any number of compact() calls via refcounted epoch retirement
// (the snapshot holds a shared_ptr to its store; compact() only drops the
// map's own reference).
//
// V must be trivially copyable and default constructible (values travel
// through future cells and arena nodes, like every value in the paper's
// model).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/rt_async.hpp"
#include "runtime/rt_map.hpp"
#include "runtime/scheduler.hpp"
#include "support/check.hpp"

#if PWF_ANALYZE
#include "analyze/rt_recorder.hpp"
#endif

namespace pwf::rt {

template <typename V, typename A>
class ParallelMap;

// MapSnapshot<V, A> — an immutable, epoch-pinned view of a ParallelMap.
//
// Obtained from ParallelMap::snapshot(); holds a shared_ptr to the store of
// the epoch it was taken in, so the nodes stay alive across any number of
// subsequent compact() calls (refcounted epoch retirement). Reads are
// lock-free: no reader count, no mutex — the root cell is fixed and every
// reachable cell is written exactly once, so traversal is wait_blocking on
// cells at most (pipelining with a still-materializing batch) and plain
// loads afterwards. Copyable and cheap to pass around (two words + a
// refcount bump).
template <typename V, typename A = void>
class MapSnapshot {
 public:
  using Key = map::Key;
  using Item = std::pair<Key, V>;

  // Forces only the search path (pipelines with in-flight batches that were
  // chained before the snapshot was taken).
  std::optional<V> get(Key k) const { return map::lookup_wait(root_, k); }
  bool contains(Key k) const { return get(k).has_value(); }

  std::size_t size() const { return map::wait_count(root_); }

  std::vector<Item> items() const { return map::wait_items(root_); }

  // Range aggregate over keys in [lo, hi]: O(lg n) forced cells, combine in
  // key order. Augmented instantiations only.
  auto aggregate(Key lo, Key hi) const
    requires(!std::is_void_v<A>)
  {
    return map::aggregate_wait(root_, lo, hi);
  }

 private:
  friend class ParallelMap<V, A>;

  MapSnapshot(std::shared_ptr<const map::Store<V, A>> store,
              std::vector<std::shared_ptr<const map::Store<V, A>>> merged,
              map::Cell<V, A>* root)
      : store_(std::move(store)), merged_(std::move(merged)), root_(root) {}

  std::shared_ptr<const map::Store<V, A>> store_;  // pins the epoch's arena
  // Stores of shards absorbed by adaptive merges — the pinned tree can
  // still reference their nodes until the facade's next compact() rebuild.
  std::vector<std::shared_ptr<const map::Store<V, A>>> merged_;
  map::Cell<V, A>* root_;
};

template <typename V, typename A = void>
class ParallelMap {
 public:
  using Key = map::Key;
  using Item = std::pair<Key, V>;

  // Same shape as ParallelSet::Stats (service observability).
  struct Stats {
    std::uint64_t batches = 0;
    std::uint64_t overlapped = 0;
    std::uint64_t max_pending = 0;
    std::uint64_t flushes = 0;
    std::uint64_t epochs = 0;
    std::uint64_t arena_bytes = 0;
  };

  // Storage composition of the current snapshot (docs/storage.md).
  struct CacheEconomy {
    std::uint64_t internal_nodes = 0;
    std::uint64_t leaf_chunks = 0;
    std::uint64_t leaf_keys = 0;
    std::uint64_t leaf_ops = 0;  // chunk merges/splits on this store
    std::uint64_t arena_bytes = 0;
    std::uint64_t wasted_padding = 0;
  };

  explicit ParallelMap(Scheduler& sched,
                       std::uint64_t salt = 0x9e3779b97f4a7c15ULL,
                       std::size_t leaf_cap = map::kDefaultLeafCapacity)
      : sched_(sched),
        salt_(salt),
        leaf_cap_(leaf_cap),
        store_(std::make_shared<map::Store<V, A>>(salt, leaf_cap)),
        root_(store_->input(nullptr)) {}

  ParallelMap(const ParallelMap&) = delete;
  ParallelMap& operator=(const ParallelMap&) = delete;

  // Fibers of a chained batch may still be running (or parked) after every
  // cell of the result tree is written — their outputs just aren't part of
  // the final tree. They still read this map's arena, so the store can only
  // be freed once the frame pool reports no live frames. After ~Scheduler no
  // worker can drain them, so waiting would hang forever (any fiber still
  // queued at shutdown was dropped); the map is torn down as-is.
  ~ParallelMap() {
    // An absorbed husk's pipeline belongs to the surviving shard (see
    // absorb()); its pending accounting was already transferred.
    if (released_) return;
    if (Scheduler::current() != nullptr) FramePool::wait_quiescent();
#if PWF_ANALYZE
    analyze::note_pipeline_flushed(
        pending_.exchange(0, std::memory_order_relaxed));
#endif
  }

  // map = map ∪ items, duplicate keys resolved by merge(old, new). Items
  // need not be sorted; duplicate keys *within* the batch are pre-merged
  // with the same function. Returns without joining the union.
  template <typename Merge>
  void insert_batch(std::span<const Item> items, Merge merge) {
    if (items.empty()) return;
    std::vector<Item> sorted(items.begin(), items.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const Item& x, const Item& y) { return x.first < y.first; });
    std::vector<Item> dedup;
    for (const Item& it : sorted) {
      if (!dedup.empty() && dedup.back().first == it.first)
        dedup.back().second = merge(dedup.back().second, it.second);
      else
        dedup.push_back(it);
    }
    map::Cell<V, A>* batch = store_->input(store_->build(dedup));
    map::Cell<V, A>* cur = root_.load(std::memory_order_acquire);
    if (!cur->written()) overlapped_.fetch_add(1, std::memory_order_relaxed);
    chain(map::union_maps(*store_, cur, batch, merge));
  }

  // Overwrite semantics (new value wins).
  void assign_batch(std::span<const Item> items) {
    insert_batch(items, [](const V&, const V& incoming) { return incoming; });
  }

  // Remove a batch of keys.
  void erase_batch(std::span<const Key> keys) {
    if (keys.empty()) return;
    std::vector<Key> sorted(keys.begin(), keys.end());
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    std::vector<Item> items;
    items.reserve(sorted.size());
    for (Key k : sorted) items.emplace_back(k, V{});
    map::Cell<V, A>* batch = store_->input(store_->build(items));
    map::Cell<V, A>* cur = root_.load(std::memory_order_acquire);
    if (!cur->written()) overlapped_.fetch_add(1, std::memory_order_relaxed);
    chain(map::diff_maps(*store_, cur, batch));
  }

  // Quiescence point: blocks until every pending batch has materialized.
  void flush() const { force_recount(); }

  // Async quiescence — the server-side flush (docs/service.md): spawns a
  // fiber that co_awaits every cell of the current epoch-pinned tree and
  // then writes `done`. A server fiber `co_await done` instead of calling
  // flush(), so no worker thread is blocked while batches materialize.
  // Purely observational: counts a flush, but leaves the pending/size
  // accounting to the blocking paths — `done` certifies everything chained
  // before this call; batches chained after it are not covered.
  void on_flush(FutCell<int>& done) const {
    std::vector<rtasync::Pinned<map::Store<V, A>, map::Cell<V, A>>> pins(1);
    pins[0] = pinned();
    spawn(rtasync::quiesce_fiber(std::move(pins), &done));
    flushes_.fetch_add(1, std::memory_order_relaxed);
  }

  // Async point read: forces only the O(lg n) search-path cells with a
  // parked fiber and writes the Probe into `out` (E27's pipelined reply
  // path). Pipelines with in-flight batches like get(), without blocking.
  void probe_into(Key k, FutCell<rtasync::Probe<V>>& out) const {
    spawn(rtasync::probe_fiber(pinned(), k, &out));
  }

  // The epoch pin the async walks travel with — also how the sharded
  // facade quiesces every shard under one fiber. O(1), like snapshot().
  rtasync::Pinned<map::Store<V, A>, map::Cell<V, A>> pinned() const {
    rtasync::Pinned<map::Store<V, A>, map::Cell<V, A>> p;
    std::lock_guard<std::mutex> lk(snap_mu_);
    p.store = store_;
    p.merged = keep_alive_;
    p.root = root_.load(std::memory_order_seq_cst);
    return p;
  }

  // Quiescence + storage epoch (see ParallelSet::compact): publishes the
  // fresh chunked root seq_cst, then drains the reader count before
  // releasing the old store. The (store_, root_) pair is swapped under
  // snap_mu_ so snapshot() never pairs a root with the wrong epoch's store;
  // the old epoch's arena is freed here unless a live MapSnapshot still
  // pins it (refcounted retirement).
  void compact() {
    const std::vector<Item> contents = items();
    FramePool::wait_quiescent();  // stragglers still read the old arena
    auto fresh = std::make_shared<map::Store<V, A>>(salt_, leaf_cap_);
    map::Cell<V, A>* next = fresh->input(fresh->build(contents));
    std::shared_ptr<map::Store<V, A>> old;
    std::vector<std::shared_ptr<const map::Store<V, A>>> merged;
    {
      std::lock_guard<std::mutex> lk(snap_mu_);
      root_.store(next, std::memory_order_seq_cst);
      old = std::exchange(store_, std::move(fresh));
      merged = std::move(keep_alive_);
      keep_alive_.clear();
    }
    while (active_readers_.load(std::memory_order_seq_cst) != 0)
      std::this_thread::yield();
    old.reset();
    merged.clear();  // arenas of absorbed shards retire with the epoch
    size_.store(contents.size(), std::memory_order_relaxed);
    size_valid_.store(true, std::memory_order_relaxed);
#if PWF_ANALYZE
    analyze::note_pipeline_flushed(
        pending_.exchange(0, std::memory_order_relaxed));
#else
    pending_.store(0, std::memory_order_relaxed);
#endif
    epochs_.fetch_add(1, std::memory_order_relaxed);
  }

  // Pins the current epoch and root into an immutable lock-free view. May
  // be called from any reader thread; the returned snapshot stays valid
  // (and its reads race-free) across later batches and compactions.
  MapSnapshot<V, A> snapshot() const {
    std::lock_guard<std::mutex> lk(snap_mu_);
    return MapSnapshot<V, A>(store_, keep_alive_,
                             root_.load(std::memory_order_seq_cst));
  }

  // Range aggregate over keys in [lo, hi] on the live root: O(lg n) forced
  // cells, combine applied in key order. Augmented instantiations only.
  auto aggregate(Key lo, Key hi) const
    requires(!std::is_void_v<A>)
  {
    ReadGuard guard(active_readers_);
    return map::aggregate_wait(root_.load(std::memory_order_seq_cst), lo, hi);
  }

  // Forces only the search path; safe concurrently with in-flight batches.
  std::optional<V> get(Key k) const {
    ReadGuard guard(active_readers_);
    return map::lookup_wait(root_.load(std::memory_order_seq_cst), k);
  }
  bool contains(Key k) const { return get(k).has_value(); }

  std::size_t size() const {
    if (!size_valid_.load(std::memory_order_acquire)) force_recount();
    return size_.load(std::memory_order_relaxed);
  }
  bool empty() const { return size() == 0; }

  std::vector<Item> items() const {  // forces the whole snapshot
    ReadGuard guard(active_readers_);
    return map::wait_items(root_.load(std::memory_order_seq_cst));
  }

  Stats stats() const {
    Stats s;
    s.batches = batches_.load(std::memory_order_relaxed);
    s.overlapped = overlapped_.load(std::memory_order_relaxed);
    s.max_pending = max_pending_.load(std::memory_order_relaxed);
    s.flushes = flushes_.load(std::memory_order_relaxed);
    s.epochs = epochs_.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(snap_mu_);
      s.arena_bytes = store_->bytes_used();
      for (const auto& ka : keep_alive_) s.arena_bytes += ka->bytes_used();
    }
    return s;
  }

  CacheEconomy cache_economy() const {  // forces the whole snapshot
    ReadGuard guard(active_readers_);
    const map::CacheEconomy ce =
        map::cache_economy(root_.load(std::memory_order_seq_cst));
    CacheEconomy out;
    out.internal_nodes = ce.internal_nodes;
    out.leaf_chunks = ce.leaf_chunks;
    out.leaf_keys = ce.leaf_keys;
    out.leaf_ops = store_->leaf_ops();
    out.arena_bytes = store_->bytes_used();
    out.wasted_padding = store_->wasted_padding();
    return out;
  }

  // ---- adaptive-sharding rebalance protocol --------------------------------
  // Identical to ParallelSet's (see parallel_set.hpp for the two-phase
  // split / husk-absorbing merge contract); docs/service.md has the story.

  std::unique_ptr<ParallelMap> split_off(Key pivot) {
    PWF_CHECK_MSG(split_pending_ == nullptr,
                  "split_off before the previous split completed");
    map::Cell<V, A>* cur = root_.load(std::memory_order_acquire);
    map::Cell<V, A>* less = store_->cell();
    map::Cell<V, A>* geq = store_->cell();
    map::split_maps(*store_, cur, pivot, less, geq);
    auto right = std::unique_ptr<ParallelMap>(
        new ParallelMap(sched_, store_, geq, salt_, leaf_cap_));
    {
      std::lock_guard<std::mutex> lk(snap_mu_);
      right->keep_alive_ = keep_alive_;
    }
    right->account_chain();
    split_pending_ = less;
    return right;
  }

  void complete_split() {
    PWF_CHECK_MSG(split_pending_ != nullptr,
                  "complete_split without a pending split_off");
    account_chain();
    std::lock_guard<std::mutex> lk(snap_mu_);
    root_.store(std::exchange(split_pending_, nullptr),
                std::memory_order_release);
  }

  void absorb(ParallelMap& right) {
    PWF_CHECK_MSG(&right != this && !right.released_, "bad absorb operand");
    PWF_CHECK_MSG(split_pending_ == nullptr && right.split_pending_ == nullptr,
                  "absorb during an incomplete split");
    map::Cell<V, A>* a = root_.load(std::memory_order_acquire);
    map::Cell<V, A>* b = right.root_.load(std::memory_order_acquire);
    map::Cell<V, A>* out = map::join_maps(*store_, a, b);
    account_chain();
    {
      std::lock_guard<std::mutex> lk(snap_mu_);
      keep_alive_.push_back(right.store_);
      keep_alive_.insert(keep_alive_.end(), right.keep_alive_.begin(),
                         right.keep_alive_.end());
      root_.store(out, std::memory_order_release);
    }
    batches_.fetch_add(right.batches_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    overlapped_.fetch_add(right.overlapped_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    flushes_.fetch_add(right.flushes_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    epochs_.fetch_add(right.epochs_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    const std::uint64_t rhw =
        right.max_pending_.load(std::memory_order_relaxed);
    std::uint64_t hw = max_pending_.load(std::memory_order_relaxed);
    while (rhw > hw &&
           !max_pending_.compare_exchange_weak(hw, rhw,
                                               std::memory_order_relaxed)) {
    }
    pending_.fetch_add(right.pending_.exchange(0, std::memory_order_relaxed),
                       std::memory_order_relaxed);
    right.released_ = true;
  }

  std::uint64_t pending() const {
    return pending_.load(std::memory_order_relaxed);
  }

 private:
  // Shares an existing store: the >= pivot half made by split_off().
  ParallelMap(Scheduler& sched, std::shared_ptr<map::Store<V, A>> store,
              map::Cell<V, A>* root, std::uint64_t salt, std::size_t leaf_cap)
      : sched_(sched),
        salt_(salt),
        leaf_cap_(leaf_cap),
        store_(std::move(store)),
        root_(root) {
    size_valid_.store(false, std::memory_order_relaxed);
  }

  // Same seq_cst Dekker pair as ParallelSet (see parallel_set.cpp).
  struct ReadGuard {
    std::atomic<std::uint64_t>& count;
    explicit ReadGuard(std::atomic<std::uint64_t>& c) : count(c) {
      count.fetch_add(1, std::memory_order_seq_cst);
    }
    ~ReadGuard() { count.fetch_sub(1, std::memory_order_release); }
  };

  void account_chain() {
#if PWF_ANALYZE
    analyze::note_pipeline_chained();
#endif
    const std::uint64_t pending =
        pending_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t hw = max_pending_.load(std::memory_order_relaxed);
    while (pending > hw &&
           !max_pending_.compare_exchange_weak(hw, pending,
                                               std::memory_order_relaxed)) {
    }
    size_valid_.store(false, std::memory_order_relaxed);
  }

  void chain(map::Cell<V, A>* next) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    account_chain();
    root_.store(next, std::memory_order_release);
  }

  void force_recount() const {
    ReadGuard guard(active_readers_);
    map::Cell<V, A>* cur = root_.load(std::memory_order_seq_cst);
    size_.store(map::wait_count(cur), std::memory_order_relaxed);
    size_valid_.store(true, std::memory_order_relaxed);
#if PWF_ANALYZE
    analyze::note_pipeline_flushed(
        pending_.exchange(0, std::memory_order_relaxed));
#else
    pending_.store(0, std::memory_order_relaxed);
#endif
    flushes_.fetch_add(1, std::memory_order_relaxed);
  }

  Scheduler& sched_;
  std::uint64_t salt_;
  std::size_t leaf_cap_;
  // Replaced wholesale by compact(); shared so snapshots can pin an epoch.
  std::shared_ptr<map::Store<V, A>> store_;
  // Stores of shards this map absorbed, pinned until compact() rebuilds.
  // Guarded by snap_mu_ (stats()/snapshot() read while the mutator appends).
  std::vector<std::shared_ptr<const map::Store<V, A>>> keep_alive_;
  // The < pivot root between split_off() and complete_split().
  map::Cell<V, A>* split_pending_ = nullptr;
  // Set on the absorbed husk: its in-flight work now belongs to the
  // surviving pipeline, so the destructor must not wait for it.
  bool released_ = false;
  std::atomic<map::Cell<V, A>*> root_;

  // Pairs (store_, root_) for snapshot() against compact()'s swap. Never
  // held while waiting on cells, so snapshot() is O(1).
  mutable std::mutex snap_mu_;

  mutable std::atomic<std::uint64_t> active_readers_{0};

  mutable std::atomic<std::size_t> size_{0};
  mutable std::atomic<bool> size_valid_{true};
  mutable std::atomic<std::uint64_t> pending_{0};
  mutable std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> overlapped_{0};
  std::atomic<std::uint64_t> max_pending_{0};
  std::atomic<std::uint64_t> epochs_{0};
};

}  // namespace pwf::rt
