// ParallelMap<V> — batch-updatable key→value map over the runtime treap
// maps (rt_map.hpp). The aggregation counterpart of ParallelSet: each
// insert_batch is one pipelined union whose value-merge function resolves
// key collisions (sum for counters, last-writer-wins for stores, ...).
//
// V must be trivially copyable and default constructible (values travel
// through future cells and arena nodes, like every value in the paper's
// model).
#pragma once

#include <algorithm>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "runtime/rt_map.hpp"
#include "runtime/scheduler.hpp"

namespace pwf::rt {

template <typename V>
class ParallelMap {
 public:
  using Key = map::Key;
  using Item = std::pair<Key, V>;

  explicit ParallelMap(Scheduler& sched,
                       std::uint64_t salt = 0x9e3779b97f4a7c15ULL)
      : sched_(sched), store_(salt), root_(store_.input(nullptr)) {}

  ParallelMap(const ParallelMap&) = delete;
  ParallelMap& operator=(const ParallelMap&) = delete;

  // map = map ∪ items, duplicate keys resolved by merge(old, new). Items
  // need not be sorted; duplicate keys *within* the batch are pre-merged
  // with the same function.
  template <typename Merge>
  void insert_batch(std::span<const Item> items, Merge merge) {
    if (items.empty()) return;
    std::vector<Item> sorted(items.begin(), items.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const Item& x, const Item& y) { return x.first < y.first; });
    std::vector<Item> dedup;
    for (const Item& it : sorted) {
      if (!dedup.empty() && dedup.back().first == it.first)
        dedup.back().second = merge(dedup.back().second, it.second);
      else
        dedup.push_back(it);
    }
    map::Cell<V>* batch = store_.input(store_.build(dedup));
    root_ = map::union_maps(store_, root_, batch, merge);
    join_and_recount();
  }

  // Overwrite semantics (new value wins).
  void assign_batch(std::span<const Item> items) {
    insert_batch(items, [](const V&, const V& incoming) { return incoming; });
  }

  // Remove a batch of keys.
  void erase_batch(std::span<const Key> keys) {
    if (keys.empty()) return;
    std::vector<Item> items;
    items.reserve(keys.size());
    for (Key k : keys) items.emplace_back(k, V{});
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end(),
                            [](const Item& x, const Item& y) {
                              return x.first == y.first;
                            }),
                items.end());
    map::Cell<V>* batch = store_.input(store_.build(items));
    root_ = map::diff_maps(store_, root_, batch);
    join_and_recount();
  }

  std::optional<V> get(Key k) const { return map::lookup(root_, k); }
  bool contains(Key k) const { return get(k).has_value(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::vector<Item> items() const { return map::wait_items(root_); }

 private:
  void join_and_recount() {
    struct C {
      static std::size_t count(map::Cell<V>* c) {
        map::Node<V>* n = c->wait_blocking();
        if (n == nullptr) return 0;
        return 1 + count(n->left) + count(n->right);
      }
    };
    size_ = C::count(root_);
  }

  Scheduler& sched_;
  map::Store<V> store_;
  map::Cell<V>* root_;
  std::size_t size_ = 0;
};

}  // namespace pwf::rt
