// Contention-adaptive sharding support (docs/service.md): the per-shard
// traffic statistics, split/merge thresholds, and epoch-published routing
// table shared by ShardedParallelSet and ShardedParallelMap<V, A>.
//
// The adaptation idea follows the lock-free contention-adapting search
// tree (ROADMAP): every shard keeps per-batch contention/occupancy stats;
// crossing a high threshold splits the shard at its weighted traffic
// median, and adjacent shards falling below a low threshold merge. The
// rebalance primitives themselves are the pipelined treap split/join
// bodies (ParallelSet::split_off / absorb and the map equivalents), so a
// rebalance overlaps in-flight batches instead of stopping the world.
//
// Routing: readers resolve their shard through an atomically published,
// immutable Table (sorted split points + shard pointers). A structural
// change builds a fresh Table, publishes it seq_cst, then drains a
// Dekker-style reader count before retiring the old table and destroying
// absorbed shard husks — the same epoch-retirement protocol the facades'
// compact() uses for stores.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <vector>

namespace pwf::rt::adapt {

using Key = std::int64_t;

// Thresholds and knobs of the adaptive rebalancer. `heat` below is a
// shard's share of a batch's routed keys times the shard count, smoothed
// by an EWMA — 1.0 is a perfectly fair share regardless of shard count, so
// the thresholds don't need retuning as the partition grows.
struct Config {
  bool enabled = false;   // false: static partition (the legacy behavior)
  double high_cont = 3.0; // split a shard whose heat exceeds this
  double low_cont = 0.5;  // merge neighbors whose summed heat is below this
  double alpha = 0.25;    // per-batch EWMA smoothing factor
  std::size_t min_shards = 1;
  std::size_t max_shards = 64;
  std::size_t sample_cap = 256;  // per-shard routed-key ring sample
  std::uint64_t cooldown = 4;    // batches between structural changes
};

// Effective split threshold at the current shard count. Heat can never
// exceed S (share <= 1), so a raw `high_cont` above S is unreachable — at
// S=2 the default 3.0 would wedge a fully concentrated stream forever.
// Capping at 3/4 of the ceiling keeps the configured threshold where it is
// reachable and still demands a sustained >= 75% traffic share before the
// smallest partitions split.
inline double split_threshold(const Config& cfg, std::size_t shards) {
  return std::min(cfg.high_cont, 0.75 * static_cast<double>(shards));
}

// Per-shard traffic record. Written only by the facade's single mutator
// thread; the facade serializes reads (stats accessors) with a mutex.
struct Heat {
  double heat = 1.0;    // EWMA of share-of-batch x shard count
  double lat_ms = 0.0;  // EWMA of this shard's per-batch slice latency
  std::uint64_t routed = 0;  // cumulative keys routed here
  std::vector<Key> sample;   // ring of recently routed keys
  std::size_t sample_pos = 0;

  void record(std::span<const Key> slice, std::size_t batch_total,
              std::size_t shard_count, const Config& cfg, double ms) {
    const double share =
        batch_total == 0
            ? 0.0
            : static_cast<double>(slice.size()) /
                  static_cast<double>(batch_total);
    heat = (1.0 - cfg.alpha) * heat +
           cfg.alpha * share * static_cast<double>(shard_count);
    if (slice.empty()) return;
    lat_ms = (1.0 - cfg.alpha) * lat_ms + cfg.alpha * ms;
    routed += slice.size();
    if (cfg.sample_cap == 0) return;
    for (Key k : slice) {
      if (sample.size() < cfg.sample_cap) {
        sample.push_back(k);
      } else {
        sample[sample_pos] = k;
        sample_pos = (sample_pos + 1) % cfg.sample_cap;
      }
    }
  }
};

// Weighted median of a shard's sampled traffic: the ring holds one entry
// per routed key, so popular keys weight the median toward themselves.
// Returns nullopt when the sample can't produce a pivot that puts traffic
// on both sides (fewer than two distinct keys). Deterministic for a given
// sample — the unit tests pin the selected pivot for a known skew.
inline std::optional<Key> split_point(std::vector<Key> s) {
  if (s.size() < 2) return std::nullopt;
  std::sort(s.begin(), s.end());
  std::size_t mid = s.size() / 2;
  if (s[mid] == s.front()) {
    // The median equals the minimum (one key dominates the traffic): the
    // < side would get nothing. Take the next distinct key, if any.
    while (mid < s.size() && s[mid] == s.front()) ++mid;
    if (mid == s.size()) return std::nullopt;
  }
  return s[mid];
}

// Immutable routing epoch: shard i owns [lowers[i-1], lowers[i]) with the
// open ends at INT64_MIN/INT64_MAX. upper_bound keeps the boundary key
// itself in the right (higher) shard, matching the facades' lower_bound
// batch slicing.
template <typename Shard>
struct Table {
  std::vector<Key> lowers;     // lowers[i] = lower bound of shards[i + 1]
  std::vector<Shard*> shards;  // shards.size() == lowers.size() + 1

  std::size_t index(Key k) const {
    return static_cast<std::size_t>(
        std::upper_bound(lowers.begin(), lowers.end(), k) - lowers.begin());
  }
};

// Atomically published routing table with Dekker-drained retirement.
template <typename Shard>
class Router {
 public:
  Router() : table_(new Table<Shard>{}) {}
  ~Router() { delete table_.load(std::memory_order_acquire); }
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Reader side: announce (seq_cst, pairing with publish()'s seq_cst
  // exchange), then load. While the guard lives, the table — and every
  // shard it points to — cannot be retired.
  class Guard {
   public:
    explicit Guard(const Router& r) : r_(r) {
      r_.readers_.fetch_add(1, std::memory_order_seq_cst);
      table_ = r_.table_.load(std::memory_order_seq_cst);
    }
    ~Guard() { r_.readers_.fetch_sub(1, std::memory_order_release); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    const Table<Shard>* operator->() const { return table_; }
    const Table<Shard>& operator*() const { return *table_; }

   private:
    const Router& r_;
    const Table<Shard>* table_;
  };

  // Mutator side: publish a rebuilt partition and drain every reader that
  // could still hold the old table. On return no Guard references the old
  // epoch — a shard absent from the new table (a merged-away husk) is safe
  // to destroy.
  void publish(std::vector<Shard*> shards, std::vector<Key> lowers) {
    auto* fresh = new Table<Shard>{std::move(lowers), std::move(shards)};
    const Table<Shard>* old = table_.exchange(fresh, std::memory_order_seq_cst);
    while (readers_.load(std::memory_order_seq_cst) != 0)
      std::this_thread::yield();
    delete old;
  }

 private:
  std::atomic<const Table<Shard>*> table_;
  mutable std::atomic<std::uint64_t> readers_{0};
};

}  // namespace pwf::rt::adapt
