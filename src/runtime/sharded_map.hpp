// ShardedParallelMap<V, A> — the key→value counterpart of ShardedParallelSet:
// S range-partitioned ParallelMap shards with independent batch pipelines
// and independent storage epochs. See sharded_set.hpp for the rationale and
// the contention-adaptive partition machinery (heat EWMAs, split/merge via
// the pipelined treap bodies, epoch-published routing table); this header
// only adds the value plumbing (slices carry (key, value) items, insert
// routes the merge function through to each shard).
//
// Thread contract is inherited from ParallelMap: one mutator thread at a
// time (rebalances happen inside mutator calls), any number of concurrent
// readers.
//
// The optional augmentation policy A is routed through to every shard;
// `aggregate(lo, hi)` combines the per-shard range aggregates in shard
// (i.e. key) order, so non-commutative combines behave exactly as on the
// unsharded map.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "runtime/parallel_map.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/shard_adapt.hpp"
#include "runtime/sharded_set.hpp"  // shares the aggregated Stats shape

namespace pwf::rt {

template <typename V, typename A = void>
class ShardedParallelMap {
 public:
  using Key = typename ParallelMap<V, A>::Key;
  using Item = typename ParallelMap<V, A>::Item;
  using CacheEconomy = typename ParallelMap<V, A>::CacheEconomy;
  // Same aggregated shape as ShardedParallelSet::Stats (one definition for
  // both facades keeps the bench columns uniform).
  using Stats = ShardedParallelSet::Stats;

  ShardedParallelMap(Scheduler& sched, unsigned shards,
                     std::uint64_t salt = 0x9e3779b97f4a7c15ULL,
                     std::size_t leaf_cap = map::kDefaultLeafCapacity,
                     adapt::Config cfg = {})
      : sched_(sched), salt_(salt), leaf_cap_(leaf_cap), cfg_(cfg) {
    std::size_t n = std::max(1u, shards);
    if (cfg_.enabled)
      n = std::clamp(n, std::max<std::size_t>(1, cfg_.min_shards),
                     std::max<std::size_t>(1, cfg_.max_shards));
    const std::uint64_t step =
        std::numeric_limits<std::uint64_t>::max() / n + 1;
    for (std::size_t i = 1; i < n; ++i)
      lowers_.push_back(from_unsigned(step * i));
    for (std::size_t i = 0; i < n; ++i)
      shards_.push_back(
          std::make_unique<ParallelMap<V, A>>(sched, salt, leaf_cap));
    heats_.resize(n);
    publish_table();
  }

  ShardedParallelMap(const ShardedParallelMap&) = delete;
  ShardedParallelMap& operator=(const ShardedParallelMap&) = delete;

  std::size_t shard_count() const {
    typename adapt::Router<ParallelMap<V, A>>::Guard g(router_);
    return g->shards.size();
  }

  std::vector<Key> boundaries() const {
    typename adapt::Router<ParallelMap<V, A>>::Guard g(router_);
    return g->lowers;
  }

  // Sorted + pre-merged once (so cross-slice behavior matches the unsharded
  // map exactly), then each nonempty slice is one pipelined shard union.
  template <typename Merge>
  void insert_batch(std::span<const Item> items, Merge merge) {
    if (items.empty()) return;
    std::vector<Item> sorted(items.begin(), items.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const Item& x, const Item& y) { return x.first < y.first; });
    std::vector<Item> dedup;
    for (const Item& it : sorted) {
      if (!dedup.empty() && dedup.back().first == it.first)
        dedup.back().second = merge(dedup.back().second, it.second);
      else
        dedup.push_back(it);
    }
    const std::size_t total = dedup.size();
    auto lo = dedup.begin();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const auto hi =
          (i < lowers_.size())
              ? std::lower_bound(lo, dedup.end(), lowers_[i],
                                 [](const Item& it, Key b) {
                                   return it.first < b;
                                 })
              : dedup.end();
      const std::span<const Item> slice(
          dedup.data() + (lo - dedup.begin()),
          static_cast<std::size_t>(hi - lo));
      double ms = 0.0;
      if (!slice.empty()) {
        const auto t0 = std::chrono::steady_clock::now();
        shards_[i]->insert_batch(slice, merge);
        ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
      }
      note_heat(i, slice, total, ms);
      lo = hi;
    }
    if (cfg_.enabled) maybe_rebalance();
  }

  void assign_batch(std::span<const Item> items) {
    insert_batch(items, [](const V&, const V& incoming) { return incoming; });
  }

  void erase_batch(std::span<const Key> keys) {
    if (keys.empty()) return;
    std::vector<Key> sorted(keys.begin(), keys.end());
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    const std::size_t total = sorted.size();
    auto lo = sorted.begin();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const auto hi = (i < lowers_.size())
                          ? std::lower_bound(lo, sorted.end(), lowers_[i])
                          : sorted.end();
      const std::span<const Key> slice(
          sorted.data() + (lo - sorted.begin()),
          static_cast<std::size_t>(hi - lo));
      double ms = 0.0;
      if (!slice.empty()) {
        const auto t0 = std::chrono::steady_clock::now();
        shards_[i]->erase_batch(slice);
        ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
      }
      if (cfg_.enabled) {
        std::lock_guard<std::mutex> lk(stats_mu_);
        heats_[i].record(slice, total, shards_.size(), cfg_, ms);
      }
      lo = hi;
    }
    if (cfg_.enabled) maybe_rebalance();
  }

  void flush() const {
    typename adapt::Router<ParallelMap<V, A>>::Guard g(router_);
    for (ParallelMap<V, A>* s : g->shards) s->flush();
  }

  // Async quiescence across every shard: one fiber awaits all shards'
  // epoch-pinned trees, then writes `done` (see ParallelMap::on_flush).
  void on_flush(FutCell<int>& done) const {
    typename adapt::Router<ParallelMap<V, A>>::Guard g(router_);
    std::vector<rtasync::Pinned<map::Store<V, A>, map::Cell<V, A>>> pins;
    pins.reserve(g->shards.size());
    for (ParallelMap<V, A>* s : g->shards) pins.push_back(s->pinned());
    spawn(rtasync::quiesce_fiber(std::move(pins), &done));
  }

  // Async point read, routed like get(): the owning shard pins its epoch
  // before this returns, so a concurrent rebalance cannot strand the walk.
  void probe_into(Key k, FutCell<rtasync::Probe<V>>& out) const {
    typename adapt::Router<ParallelMap<V, A>>::Guard g(router_);
    g->shards[g->index(k)]->probe_into(k, out);
  }

  void compact() {
    for (auto& s : shards_) s->compact();
  }
  void compact_shard(std::size_t i) { shards_[i]->compact(); }

  std::optional<V> get(Key k) const {
    typename adapt::Router<ParallelMap<V, A>>::Guard g(router_);
    return g->shards[g->index(k)]->get(k);
  }
  bool contains(Key k) const { return get(k).has_value(); }

  // Epoch-pinned snapshot of the shard currently owning key k (see
  // ShardedParallelSet::snapshot(Key)).
  MapSnapshot<V, A> snapshot(Key k) const {
    typename adapt::Router<ParallelMap<V, A>>::Guard g(router_);
    return g->shards[g->index(k)]->snapshot();
  }

  // Range aggregate over keys in [lo, hi]: only the shards whose key range
  // intersects [lo, hi] are queried, and their aggregates are combined in
  // shard (key) order — associativity suffices, like the unsharded map.
  auto aggregate(Key lo, Key hi) const
    requires(!std::is_void_v<A>)
  {
    using Ops = typename map::Entry<V, A>::AugOps;
    auto acc = Ops::identity();
    if (lo > hi) return acc;
    typename adapt::Router<ParallelMap<V, A>>::Guard g(router_);
    const std::size_t last = g->index(hi);
    for (std::size_t i = g->index(lo); i <= last; ++i)
      acc = Ops::combine(acc, g->shards[i]->aggregate(lo, hi));
    return acc;
  }

  std::size_t size() const {
    typename adapt::Router<ParallelMap<V, A>>::Guard g(router_);
    std::size_t n = 0;
    for (ParallelMap<V, A>* s : g->shards) n += s->size();
    return n;
  }
  bool empty() const { return size() == 0; }

  std::vector<Item> items() const {  // key-sorted concatenation
    typename adapt::Router<ParallelMap<V, A>>::Guard g(router_);
    std::vector<Item> out;
    for (ParallelMap<V, A>* s : g->shards) {
      std::vector<Item> part = s->items();
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  Stats stats() const {
    typename adapt::Router<ParallelMap<V, A>>::Guard g(router_);
    Stats agg;
    agg.shards = g->shards.size();
    std::size_t total = 0;
    std::size_t kmin = std::numeric_limits<std::size_t>::max();
    std::size_t kmax = 0;
    for (ParallelMap<V, A>* s : g->shards) {
      const auto st = s->stats();
      agg.batches += st.batches;
      agg.overlapped += st.overlapped;
      agg.max_pending = std::max(agg.max_pending, st.max_pending);
      agg.flushes += st.flushes;
      agg.epochs += st.epochs;
      agg.arena_bytes += st.arena_bytes;
      const std::size_t n = s->size();
      total += n;
      kmin = std::min(kmin, n);
      kmax = std::max(kmax, n);
    }
    agg.keys_min = kmin == std::numeric_limits<std::size_t>::max() ? 0 : kmin;
    agg.keys_max = kmax;
    if (total > 0 && agg.shards > 0) {
      const double ideal =
          static_cast<double>(total) / static_cast<double>(agg.shards);
      agg.imbalance_min = static_cast<double>(agg.keys_min) / ideal;
      agg.imbalance_max = static_cast<double>(agg.keys_max) / ideal;
    }
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      agg.splits = splits_;
      agg.merges = merges_;
      std::uint64_t rmin = std::numeric_limits<std::uint64_t>::max();
      std::uint64_t rmax = 0;
      for (const adapt::Heat& h : heats_) {
        rmin = std::min(rmin, h.routed);
        rmax = std::max(rmax, h.routed);
      }
      agg.routed_min = heats_.empty() ? 0 : rmin;
      agg.routed_max = rmax;
    }
    return agg;
  }

  typename ParallelMap<V, A>::Stats shard_stats(std::size_t i) const {
    typename adapt::Router<ParallelMap<V, A>>::Guard g(router_);
    return g->shards[i]->stats();
  }

  // Storage composition summed over every shard (forces all snapshots).
  CacheEconomy cache_economy() const {
    typename adapt::Router<ParallelMap<V, A>>::Guard g(router_);
    CacheEconomy agg;
    for (ParallelMap<V, A>* s : g->shards) {
      const CacheEconomy ce = s->cache_economy();
      agg.internal_nodes += ce.internal_nodes;
      agg.leaf_chunks += ce.leaf_chunks;
      agg.leaf_keys += ce.leaf_keys;
      agg.leaf_ops += ce.leaf_ops;
      agg.arena_bytes += ce.arena_bytes;
      agg.wasted_padding += ce.wasted_padding;
    }
    return agg;
  }

 private:
  static Key from_unsigned(std::uint64_t u) {
    return static_cast<Key>(u ^ (std::uint64_t{1} << 63));
  }

  void publish_table() {
    std::vector<ParallelMap<V, A>*> raw;
    raw.reserve(shards_.size());
    for (auto& s : shards_) raw.push_back(s.get());
    router_.publish(std::move(raw), lowers_);
  }

  // Item slices feed the heat sample with their keys.
  void note_heat(std::size_t i, std::span<const Item> slice,
                 std::size_t total, double ms) {
    if (!cfg_.enabled) return;
    scratch_keys_.clear();
    scratch_keys_.reserve(slice.size());
    for (const Item& it : slice) scratch_keys_.push_back(it.first);
    std::lock_guard<std::mutex> lk(stats_mu_);
    heats_[i].record(scratch_keys_, total, shards_.size(), cfg_, ms);
  }

  // Same policy as ShardedParallelSet::maybe_rebalance (one structural
  // change per batch, cooldown-gated, split beats merge).
  void maybe_rebalance() {
    if (++since_change_ <= cfg_.cooldown) return;
    std::size_t hot = 0;
    for (std::size_t i = 1; i < heats_.size(); ++i)
      if (heats_[i].heat > heats_[hot].heat) hot = i;
    if (heats_[hot].heat > adapt::split_threshold(cfg_, shards_.size()) &&
        shards_.size() < std::max<std::size_t>(1, cfg_.max_shards) &&
        try_split(hot)) {
      since_change_ = 0;
      return;
    }
    if (shards_.size() <= std::max<std::size_t>(1, cfg_.min_shards)) return;
    std::size_t best = heats_.size();
    double best_sum = cfg_.low_cont;
    for (std::size_t i = 0; i + 1 < heats_.size(); ++i) {
      const double sum = heats_[i].heat + heats_[i + 1].heat;
      if (sum < best_sum) {
        best_sum = sum;
        best = i;
      }
    }
    if (best == heats_.size()) return;
    do_merge(best);
    since_change_ = 0;
  }

  bool try_split(std::size_t i) {
    const std::optional<Key> pivot = adapt::split_point(heats_[i].sample);
    if (!pivot) return false;
    std::unique_ptr<ParallelMap<V, A>> right = shards_[i]->split_off(*pivot);
    shards_.insert(shards_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                   std::move(right));
    lowers_.insert(lowers_.begin() + static_cast<std::ptrdiff_t>(i), *pivot);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      adapt::Heat parent = std::move(heats_[i]);
      adapt::Heat l, r;
      l.heat = r.heat = parent.heat / 2.0;
      l.lat_ms = r.lat_ms = parent.lat_ms;
      l.routed = r.routed = parent.routed / 2;
      for (Key k : parent.sample)
        (k < *pivot ? l : r).sample.push_back(k);
      heats_[i] = std::move(l);
      heats_.insert(heats_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                    std::move(r));
      ++splits_;
    }
    publish_table();
    shards_[i]->complete_split();
    return true;
  }

  void do_merge(std::size_t i) {
    std::unique_ptr<ParallelMap<V, A>> husk = std::move(shards_[i + 1]);
    shards_[i]->absorb(*husk);
    shards_.erase(shards_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    lowers_.erase(lowers_.begin() + static_cast<std::ptrdiff_t>(i));
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      heats_[i].heat += heats_[i + 1].heat;
      heats_[i].routed += heats_[i + 1].routed;
      for (Key k : heats_[i + 1].sample) {
        if (heats_[i].sample.size() < cfg_.sample_cap) {
          heats_[i].sample.push_back(k);
        } else if (!heats_[i].sample.empty()) {
          heats_[i].sample[heats_[i].sample_pos] = k;
          heats_[i].sample_pos =
              (heats_[i].sample_pos + 1) % heats_[i].sample.size();
        }
      }
      heats_.erase(heats_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      ++merges_;
    }
    publish_table();
    husk.reset();
  }

  Scheduler& sched_;
  std::uint64_t salt_;
  std::size_t leaf_cap_;
  adapt::Config cfg_;

  std::vector<Key> lowers_;  // lower boundary of shards 1..S-1
  std::vector<std::unique_ptr<ParallelMap<V, A>>> shards_;
  std::vector<adapt::Heat> heats_;  // guarded by stats_mu_
  std::vector<Key> scratch_keys_;   // mutator-only slice-key scratch
  std::uint64_t since_change_ = 0;
  std::uint64_t splits_ = 0;  // guarded by stats_mu_
  std::uint64_t merges_ = 0;  // guarded by stats_mu_

  mutable std::mutex stats_mu_;

  adapt::Router<ParallelMap<V, A>> router_;
};

}  // namespace pwf::rt
