// ShardedParallelMap<V, A> — the key→value counterpart of ShardedParallelSet:
// S range-partitioned ParallelMap shards with independent batch pipelines
// and independent storage epochs. See sharded_set.hpp for the rationale;
// this header only adds the value plumbing (slices carry (key, value)
// items, insert routes the merge function through to each shard).
//
// Thread contract is inherited from ParallelMap: one mutator thread at a
// time, any number of concurrent readers.
//
// The optional augmentation policy A is routed through to every shard;
// `aggregate(lo, hi)` combines the per-shard range aggregates in shard
// (i.e. key) order, so non-commutative combines behave exactly as on the
// unsharded map.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "runtime/parallel_map.hpp"
#include "runtime/scheduler.hpp"
#include "support/random.hpp"

namespace pwf::rt {

template <typename V, typename A = void>
class ShardedParallelMap {
 public:
  using Key = typename ParallelMap<V, A>::Key;
  using Item = typename ParallelMap<V, A>::Item;
  using Stats = typename ParallelMap<V, A>::Stats;
  using CacheEconomy = typename ParallelMap<V, A>::CacheEconomy;

  ShardedParallelMap(Scheduler& sched, unsigned shards,
                     std::uint64_t salt = 0x9e3779b97f4a7c15ULL,
                     std::size_t leaf_cap = map::kDefaultLeafCapacity) {
    const unsigned n = std::max(1u, shards);
    const std::uint64_t step =
        std::numeric_limits<std::uint64_t>::max() / n + 1;
    for (unsigned i = 1; i < n; ++i) lowers_.push_back(from_unsigned(step * i));
    std::uint64_t sm = salt;
    for (unsigned i = 0; i < n; ++i)
      shards_.push_back(
          std::make_unique<ParallelMap<V, A>>(sched, splitmix64(sm), leaf_cap));
  }

  ShardedParallelMap(const ShardedParallelMap&) = delete;
  ShardedParallelMap& operator=(const ShardedParallelMap&) = delete;

  std::size_t shard_count() const { return shards_.size(); }

  // Sorted + pre-merged once (so cross-slice behavior matches the unsharded
  // map exactly), then each nonempty slice is one pipelined shard union.
  template <typename Merge>
  void insert_batch(std::span<const Item> items, Merge merge) {
    if (items.empty()) return;
    std::vector<Item> sorted(items.begin(), items.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const Item& x, const Item& y) { return x.first < y.first; });
    std::vector<Item> dedup;
    for (const Item& it : sorted) {
      if (!dedup.empty() && dedup.back().first == it.first)
        dedup.back().second = merge(dedup.back().second, it.second);
      else
        dedup.push_back(it);
    }
    auto lo = dedup.begin();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const auto hi =
          (i < lowers_.size())
              ? std::lower_bound(lo, dedup.end(), lowers_[i],
                                 [](const Item& it, Key b) {
                                   return it.first < b;
                                 })
              : dedup.end();
      if (hi != lo)
        shards_[i]->insert_batch(
            std::span<const Item>(dedup.data() + (lo - dedup.begin()),
                                  static_cast<std::size_t>(hi - lo)),
            merge);
      lo = hi;
    }
  }

  void assign_batch(std::span<const Item> items) {
    insert_batch(items, [](const V&, const V& incoming) { return incoming; });
  }

  void erase_batch(std::span<const Key> keys) {
    if (keys.empty()) return;
    std::vector<Key> sorted(keys.begin(), keys.end());
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    auto lo = sorted.begin();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const auto hi = (i < lowers_.size())
                          ? std::lower_bound(lo, sorted.end(), lowers_[i])
                          : sorted.end();
      if (hi != lo)
        shards_[i]->erase_batch(
            std::span<const Key>(sorted.data() + (lo - sorted.begin()),
                                 static_cast<std::size_t>(hi - lo)));
      lo = hi;
    }
  }

  void flush() const {
    for (const auto& s : shards_) s->flush();
  }

  void compact() {
    for (auto& s : shards_) s->compact();
  }
  void compact_shard(std::size_t i) { shards_[i]->compact(); }

  std::optional<V> get(Key k) const { return shard_of(k).get(k); }
  bool contains(Key k) const { return shard_of(k).contains(k); }

  // Range aggregate over keys in [lo, hi]: only the shards whose key range
  // intersects [lo, hi] are queried, and their aggregates are combined in
  // shard (key) order — associativity suffices, like the unsharded map.
  auto aggregate(Key lo, Key hi) const
    requires(!std::is_void_v<A>)
  {
    using Ops = typename map::Entry<V, A>::AugOps;
    auto acc = Ops::identity();
    if (lo > hi) return acc;
    const std::size_t last = shard_index(hi);
    for (std::size_t i = shard_index(lo); i <= last; ++i)
      acc = Ops::combine(acc, shards_[i]->aggregate(lo, hi));
    return acc;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->size();
    return n;
  }
  bool empty() const { return size() == 0; }

  std::vector<Item> items() const {  // key-sorted concatenation
    std::vector<Item> out;
    for (const auto& s : shards_) {
      std::vector<Item> part = s->items();
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  Stats stats() const {
    Stats agg;
    for (const auto& s : shards_) {
      const Stats st = s->stats();
      agg.batches += st.batches;
      agg.overlapped += st.overlapped;
      agg.max_pending = std::max(agg.max_pending, st.max_pending);
      agg.flushes += st.flushes;
      agg.epochs += st.epochs;
      agg.arena_bytes += st.arena_bytes;
    }
    return agg;
  }

  Stats shard_stats(std::size_t i) const { return shards_[i]->stats(); }

  // Storage composition summed over every shard (forces all snapshots).
  CacheEconomy cache_economy() const {
    CacheEconomy agg;
    for (const auto& s : shards_) {
      const CacheEconomy ce = s->cache_economy();
      agg.internal_nodes += ce.internal_nodes;
      agg.leaf_chunks += ce.leaf_chunks;
      agg.leaf_keys += ce.leaf_keys;
      agg.leaf_ops += ce.leaf_ops;
      agg.arena_bytes += ce.arena_bytes;
      agg.wasted_padding += ce.wasted_padding;
    }
    return agg;
  }

 private:
  static Key from_unsigned(std::uint64_t u) {
    return static_cast<Key>(u ^ (std::uint64_t{1} << 63));
  }

  std::size_t shard_index(Key k) const {
    return static_cast<std::size_t>(
        std::upper_bound(lowers_.begin(), lowers_.end(), k) - lowers_.begin());
  }
  ParallelMap<V, A>& shard_of(Key k) const { return *shards_[shard_index(k)]; }

  std::vector<Key> lowers_;  // lower boundary of shards 1..S-1
  std::vector<std::unique_ptr<ParallelMap<V, A>>> shards_;
};

}  // namespace pwf::rt
