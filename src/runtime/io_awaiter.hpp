// Awaitables over IoReactor — the I/O counterparts of `co_await cell`.
//
//   std::uint32_t r = co_await wait_readable(reactor, fd);   // 0 = cancelled
//   std::uint32_t r = co_await wait_writable(reactor, fd);
//   bool fired = co_await sleep_for(reactor, 10ms);           // false = cancelled
//   bool fired = co_await sleep_until(reactor, deadline, &tag);
//   reactor.cancel(&tag);                                     // from anywhere
//
// Shape follows the libcoro scheduler (SNIPPETS.md #3: `co_await pool`,
// `pool.sleep_for(dur, id)` with tag-based cancellation). The awaiter holds
// the IoWaiter record, so parking allocates nothing: the record lives in
// the suspended coroutine frame exactly like a FutCell waiter node, and the
// same publication discipline applies — after park_* accepts the waiter,
// the frame may be resumed (and destroyed) by another thread before
// await_suspend even returns, so nothing is touched after the call.
#pragma once

#include <chrono>
#include <coroutine>
#include <cstdint>

#include "runtime/io_reactor.hpp"

namespace pwf::rt {

// Park until `fd` has one of `events` ready (one-shot). await_resume
// returns the ready bits (IoReactor::kReadable/kWritable/kError), or 0 if
// the park was cancelled or the reactor shut down.
class FdAwaiter {
 public:
  FdAwaiter(IoReactor& r, int fd, std::uint32_t events,
            const void* tag = nullptr) noexcept
      : r_(r) {
    w_.fd = fd;
    w_.events = events;
    w_.tag = tag;
  }

  bool await_ready() const noexcept { return false; }
  bool await_suspend(std::coroutine_handle<> h) noexcept {
    w_.handle = h;
    // True: parked — the reactor owns w_ and may already have destroyed
    // this frame; suspend without touching anything. False: reactor
    // stopped — keep running, await_resume reads the cancelled result.
    return r_.park_fd(&w_);
  }
  std::uint32_t await_resume() const noexcept { return w_.result; }

 private:
  IoReactor& r_;
  IoWaiter w_{};
};

// Park until a steady_clock deadline. await_resume: true = deadline fired,
// false = cancelled (via tag) or reactor shutdown. Deadlines at or before
// now fire immediately (one bounce through the inject ring), so zero and
// negative sleep_for durations are yields, not hangs.
class SleepAwaiter {
 public:
  SleepAwaiter(IoReactor& r, std::chrono::steady_clock::time_point deadline,
               const void* tag = nullptr) noexcept
      : r_(r) {
    w_.deadline = deadline;
    w_.tag = tag;
  }

  bool await_ready() const noexcept { return false; }
  bool await_suspend(std::coroutine_handle<> h) noexcept {
    w_.handle = h;
    return r_.park_timer(&w_);  // same ownership contract as FdAwaiter
  }
  bool await_resume() const noexcept { return w_.result != 0; }

 private:
  IoReactor& r_;
  IoWaiter w_{};
};

inline FdAwaiter wait_readable(IoReactor& r, int fd,
                               const void* tag = nullptr) {
  return FdAwaiter(r, fd, IoReactor::kReadable, tag);
}

inline FdAwaiter wait_writable(IoReactor& r, int fd,
                               const void* tag = nullptr) {
  return FdAwaiter(r, fd, IoReactor::kWritable, tag);
}

inline SleepAwaiter sleep_until(IoReactor& r,
                                std::chrono::steady_clock::time_point deadline,
                                const void* tag = nullptr) {
  return SleepAwaiter(r, deadline, tag);
}

template <typename Rep, typename Period>
SleepAwaiter sleep_for(IoReactor& r, std::chrono::duration<Rep, Period> d,
                       const void* tag = nullptr) {
  return SleepAwaiter(r, std::chrono::steady_clock::now() + d, tag);
}

}  // namespace pwf::rt
