#include "runtime/io_reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "runtime/scheduler.hpp"
#include "support/check.hpp"

namespace pwf::rt {

namespace {

std::uint32_t to_epoll(std::uint32_t events) {
  std::uint32_t e = 0;
  if (events & IoReactor::kReadable) e |= EPOLLIN;
  if (events & IoReactor::kWritable) e |= EPOLLOUT;
  return e;
}

std::uint32_t from_epoll(std::uint32_t e) {
  std::uint32_t r = 0;
  if (e & EPOLLIN) r |= IoReactor::kReadable;
  if (e & EPOLLOUT) r |= IoReactor::kWritable;
  if (e & (EPOLLERR | EPOLLHUP)) r |= IoReactor::kError;
  // The contract is "nonzero = the fd woke you, zero = cancelled"; an event
  // we don't map (e.g. EPOLLPRI) must still read as a wake.
  if (r == 0) r = IoReactor::kError;
  return r;
}

// Min-heap order on (deadline, seq): std::push_heap keeps the *greatest*
// on top, so the comparator is inverted.
bool heap_after(const std::chrono::steady_clock::time_point& ad,
                std::uint64_t as,
                const std::chrono::steady_clock::time_point& bd,
                std::uint64_t bs) {
  if (ad != bd) return ad > bd;
  return as > bs;
}

}  // namespace

IoReactor::IoReactor(Scheduler& sched) : sched_(sched) {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  PWF_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  PWF_CHECK_MSG(wake_fd_ >= 0, "eventfd failed");
  timer_fd_ = timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
  PWF_CHECK_MSG(timer_fd_ >= 0, "timerfd_create failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = &wake_fd_;  // member addresses double as sentinel tags
  PWF_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
  ev.data.ptr = &timer_fd_;
  PWF_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev) == 0);
  thread_ = std::thread([this] { loop(); });
}

IoReactor::~IoReactor() {
  {
    std::lock_guard<std::mutex> lk(cmd_mu_);
    stopped_ = true;
  }
  kick();
  thread_.join();
  ::close(timer_fd_);
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void IoReactor::kick() {
  const std::uint64_t one = 1;
  // EAGAIN (counter saturated) still leaves the eventfd readable, so a
  // short write cannot lose the wake.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

bool IoReactor::park_fd(IoWaiter* w) {
  PWF_CHECK_MSG(w->fd >= 0 && w->events != 0, "park_fd needs an fd + events");
  {
    std::lock_guard<std::mutex> lk(cmd_mu_);
    if (stopped_) return false;
    cmds_.push_back(Cmd{Cmd::kParkFd, w, nullptr});
  }
  // Counted strictly after the enqueue: a thread that observes
  // io_parks >= N knows those N parks are ahead of any command it enqueues
  // next — cancel-after-observed-park is race-free. (The waiter itself may
  // already have fired; only sched_ is touched here, never *w.)
  sched_.note_io_park();
  kick();
  return true;
}

bool IoReactor::park_timer(IoWaiter* w) {
  {
    std::lock_guard<std::mutex> lk(cmd_mu_);
    if (stopped_) return false;
    cmds_.push_back(Cmd{Cmd::kParkTimer, w, nullptr});
  }
  sched_.note_io_park();  // after the enqueue — see park_fd
  kick();
  return true;
}

void IoReactor::cancel(const void* tag) {
  if (tag == nullptr) return;
  {
    std::lock_guard<std::mutex> lk(cmd_mu_);
    if (stopped_) return;  // the shutdown drain cancels everything anyway
    cmds_.push_back(Cmd{Cmd::kCancel, nullptr, tag});
  }
  kick();
}

void IoReactor::register_fd(IoWaiter* w) {
  const bool inserted = fd_waiters_.emplace(w->fd, w).second;
  PWF_CHECK_MSG(inserted, "two fibers parked on the same fd");
  epoll_event ev{};
  ev.events = to_epoll(w->events) | EPOLLONESHOT;
  ev.data.ptr = w;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, w->fd, &ev) != 0) {
    // A previously fired one-shot registration stays in the set disarmed;
    // re-arm it.
    PWF_CHECK_MSG(errno == EEXIST, "epoll_ctl ADD failed");
    PWF_CHECK_MSG(epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, w->fd, &ev) == 0,
                  "epoll_ctl MOD failed");
  }
}

void IoReactor::cancel_tag(const void* tag, std::vector<IoWaiter*>& ready) {
  for (auto it = fd_waiters_.begin(); it != fd_waiters_.end();) {
    if (it->second->tag == tag) {
      IoWaiter* w = it->second;
      epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, w->fd, nullptr);
      w->result = 0;
      ready.push_back(w);
      it = fd_waiters_.erase(it);
    } else {
      ++it;
    }
  }
  bool removed = false;
  for (std::size_t i = 0; i < timers_.size();) {
    if (timers_[i].w->tag == tag) {
      IoWaiter* w = timers_[i].w;
      w->result = 0;
      sched_.note_timer_cancel();
      ready.push_back(w);
      timers_[i] = timers_.back();
      timers_.pop_back();
      removed = true;
    } else {
      ++i;
    }
  }
  if (removed) {
    std::make_heap(timers_.begin(), timers_.end(),
                   [](const TimerEnt& a, const TimerEnt& b) {
                     return heap_after(a.deadline, a.seq, b.deadline, b.seq);
                   });
  }
}

void IoReactor::arm_timerfd() {
  const auto want = timers_.empty()
                        ? std::chrono::steady_clock::time_point::min()
                        : timers_.front().deadline;
  if (want == armed_) return;
  itimerspec its{};  // zero = disarm
  if (!timers_.empty()) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        want.time_since_epoch())
                        .count();
    its.it_value.tv_sec = static_cast<time_t>(ns / 1000000000);
    its.it_value.tv_nsec = static_cast<long>(ns % 1000000000);
    // A fully zero it_value would disarm; deadlines that far in the past
    // are expired on the loop's own clock check before arming anyway.
    if (its.it_value.tv_sec == 0 && its.it_value.tv_nsec == 0)
      its.it_value.tv_nsec = 1;
  }
  PWF_CHECK(timerfd_settime(timer_fd_, TFD_TIMER_ABSTIME, &its, nullptr) == 0);
  armed_ = want;
}

void IoReactor::loop() {
  const auto heap_cmp = [](const TimerEnt& a, const TimerEnt& b) {
    return heap_after(a.deadline, a.seq, b.deadline, b.seq);
  };
  std::vector<IoWaiter*> ready;
  std::vector<Cmd> cmds;
  for (;;) {
    epoll_event evs[64];
    const int n = epoll_wait(epoll_fd_, evs, 64, -1);
    if (n < 0) {
      PWF_CHECK_MSG(errno == EINTR, "epoll_wait failed");
      continue;
    }
    for (int i = 0; i < n; ++i) {
      if (evs[i].data.ptr == &wake_fd_) {
        std::uint64_t junk;
        while (::read(wake_fd_, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      if (evs[i].data.ptr == &timer_fd_) {
        std::uint64_t junk;
        while (::read(timer_fd_, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      auto* w = static_cast<IoWaiter*>(evs[i].data.ptr);
      fd_waiters_.erase(w->fd);  // one-shot: registration is consumed
      w->result = from_epoll(evs[i].events);
      ready.push_back(w);
    }
    bool stopping;
    {
      std::lock_guard<std::mutex> lk(cmd_mu_);
      cmds.swap(cmds_);
      stopping = stopped_;
    }
    for (const Cmd& c : cmds) {
      switch (c.kind) {
        case Cmd::kParkFd:
          register_fd(c.w);
          break;
        case Cmd::kParkTimer:
          timers_.push_back(TimerEnt{c.w->deadline, next_seq_++, c.w});
          std::push_heap(timers_.begin(), timers_.end(), heap_cmp);
          break;
        case Cmd::kCancel:
          cancel_tag(c.tag, ready);
          break;
      }
    }
    cmds.clear();
    // Expire due timers in (deadline, seq) order — zero/negative sleeps
    // land here on the pass that registered them, without arming timerfd.
    const auto now = std::chrono::steady_clock::now();
    while (!timers_.empty() && timers_.front().deadline <= now) {
      std::pop_heap(timers_.begin(), timers_.end(), heap_cmp);
      IoWaiter* w = timers_.back().w;
      timers_.pop_back();
      w->result = 1;
      sched_.note_timer_fire();
      ready.push_back(w);
    }
    if (stopping) {
      // Shutdown drain: cancel every remaining park and run all readied
      // fibers to completion right here on the reactor thread. Workers are
      // still alive (the Scheduler destroys the reactor first), so cells
      // these fibers write still repost through the normal path; any park
      // they attempt now fails fast with the cancelled result.
      for (auto& [fd, w] : fd_waiters_) {
        epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        w->result = 0;
        ready.push_back(w);
      }
      fd_waiters_.clear();
      for (const TimerEnt& t : timers_) {
        t.w->result = 0;
        sched_.note_timer_cancel();
        ready.push_back(t.w);
      }
      timers_.clear();
      for (IoWaiter* w : ready) {
        sched_.note_io_wakeup();
        w->handle.resume();
      }
      ready.clear();
      return;
    }
    for (IoWaiter* w : ready) {
      sched_.note_io_wakeup();
      // Repost through Scheduler::post — the reactor is a non-worker
      // thread, so this lands in the lock-free inject ring and takes the
      // fence-audited wake path (scheduler.cpp).
      sched_.post(w->handle);
    }
    ready.clear();
    arm_timerfd();
  }
}

}  // namespace pwf::rt
