#include "runtime/rt_trees.hpp"

#include "pipelined/mergesort.hpp"

namespace pwf::rt::trees {

namespace pl = pipelined;

Cell* merge(Store& st, Cell* a, Cell* b) {
  pl::RtExec ex;
  Cell* out = st.cell();
  ex.fork(pl::trees::merge_into(ex, st, a, b, out));
  return out;
}

Cell* mergesort(Store& st, std::span<const Key> values) {
  pl::RtExec ex;
  Cell* out = st.cell();
  ex.fork(pl::trees::msort_into(ex, st, values, out));
  return out;
}

Cell* rebalance(Store& st, Cell* tree) {
  pl::RtExec ex;
  Cell* out = st.cell();
  ex.fork(pl::trees::rebalance_entry(ex, st, tree, out));
  return out;
}

Cell* mergesort_balanced(Store& st, std::span<const Key> values) {
  pl::RtExec ex;
  Cell* out = st.cell();
  ex.fork(pl::trees::msort_balanced_into(ex, st, values, out));
  return out;
}

Node* merge_strict_blocking(Store& st, Node* a, Node* b) {
  pl::RtExec ex;
  Cell* result = st.cell();
  ex.fork(pl::deliver(pl::trees::merge_strict(ex, st, a, b), result));
  return result->wait_blocking();
}

Node* mergesort_strict_blocking(Store& st, std::span<const Key> values) {
  pl::RtExec ex;
  Cell* result = st.cell();
  ex.fork(pl::deliver(pl::trees::msort_strict(ex, st, values), result));
  return result->wait_blocking();
}

Node* peek(const Cell* c) { return pl::trees::peek<pl::RtPolicy>(c); }

void collect_inorder(const Node* root, std::vector<Key>& out) {
  pl::trees::collect_inorder(root, out);
}

int height(const Node* root) { return pl::trees::height(root); }

namespace {
void wait_walk(Cell* c, std::vector<Key>& out) {
  Node* n = c->wait_blocking();
  if (n == nullptr) return;
  wait_walk(n->left, out);
  out.push_back(n->key);
  wait_walk(n->right, out);
}
}  // namespace

std::vector<Key> wait_inorder(Cell* root_cell) {
  std::vector<Key> out;
  wait_walk(root_cell, out);
  return out;
}

}  // namespace pwf::rt::trees
