#include "runtime/rt_trees.hpp"

#include <algorithm>

namespace pwf::rt::trees {

Node* Store::build_balanced(std::span<const Key> sorted) {
  if (sorted.empty()) return nullptr;
  const std::size_t mid = sorted.size() / 2;
  Node* l = build_balanced(sorted.subspan(0, mid));
  Node* r = build_balanced(sorted.subspan(mid + 1));
  return make_ready(sorted[mid], l, r);
}

Fiber split_fiber(Store& st, Key s, Node* t, Cell* outL, Cell* outR) {
  for (;;) {
    if (t == nullptr) {
      outL->write(nullptr);
      outR->write(nullptr);
      co_return;
    }
    if (s <= t->key) {  // keys >= s (including s itself) go to the right side
      Node* keep = st.make(t->key, st.cell(), t->right);
      outR->write(keep);
      outR = keep->left;
      t = co_await *t->left;
    } else {
      Node* keep = st.make(t->key, t->left, st.cell());
      outL->write(keep);
      outL = keep->right;
      t = co_await *t->right;
    }
  }
}

Fiber merge_fiber(Store& st, Cell* a, Cell* b, Cell* out) {
  Node* ta = co_await *a;
  Node* tb = co_await *b;
  if (ta == nullptr) {
    out->write(tb);
    co_return;
  }
  if (tb == nullptr) {
    out->write(ta);
    co_return;
  }
  Node* res = st.make(ta->key);
  Cell* l2 = st.cell();
  Cell* r2 = st.cell();
  spawn(split_fiber(st, ta->key, tb, l2, r2));
  spawn(merge_fiber(st, ta->left, l2, res->left));
  spawn(merge_fiber(st, ta->right, r2, res->right));
  out->write(res);
}

Cell* merge(Store& st, Cell* a, Cell* b) {
  Cell* out = st.cell();
  spawn(merge_fiber(st, a, b, out));
  return out;
}

Fiber msort_fiber(Store& st, std::span<const Key> values, Cell* out) {
  if (values.empty()) {
    out->write(nullptr);
    co_return;
  }
  if (values.size() == 1) {
    out->write(st.make_ready(values[0], nullptr, nullptr));
    co_return;
  }
  const std::size_t mid = values.size() / 2;
  Cell* l = st.cell();
  Cell* r = st.cell();
  spawn(msort_fiber(st, values.subspan(0, mid), l));
  spawn(msort_fiber(st, values.subspan(mid), r));
  spawn(merge_fiber(st, l, r, out));
}

Cell* mergesort(Store& st, std::span<const Key> values) {
  Cell* out = st.cell();
  spawn(msort_fiber(st, values, out));
  return out;
}

namespace {
std::uint64_t size_of(const Node* n) { return n ? n->size : 0; }
}  // namespace

Fiber measure_fiber(Store& st, Cell* t, Cell* out) {
  Node* n = co_await *t;
  if (n == nullptr) {
    out->write(nullptr);
    co_return;
  }
  Cell* lc = st.cell();
  Cell* rc = st.cell();
  spawn(measure_fiber(st, n->left, lc));
  spawn(measure_fiber(st, n->right, rc));
  Node* l = co_await *lc;
  Node* r = co_await *rc;
  Node* copy = st.make_ready(n->key, l, r);
  copy->lsize = size_of(l);
  copy->size = 1 + size_of(l) + size_of(r);
  out->write(copy);
}

Fiber splitr_fiber(Store& st, std::uint64_t r, Node* t, Cell* outL,
                   Cell* outMid, Cell* outR) {
  for (;;) {
    PWF_CHECK_MSG(t != nullptr, "rank out of range in splitr");
    if (r < t->lsize) {
      Node* keep = st.make(t->key, st.cell(), t->right);
      keep->lsize = t->lsize - r - 1;
      keep->size = t->size - r - 1;
      outR->write(keep);
      outR = keep->left;
      t = co_await *t->left;
    } else if (r == t->lsize) {
      outMid->write(t);
      outL->write(co_await *t->left);
      outR->write(co_await *t->right);
      co_return;
    } else {
      Node* keep = st.make(t->key, t->left, st.cell());
      keep->lsize = t->lsize;
      keep->size = t->lsize + 1 + (r - t->lsize - 1);
      outL->write(keep);
      outL = keep->right;
      r -= t->lsize + 1;
      t = co_await *t->right;
    }
  }
}

namespace {
Fiber splitr_entry(Store& st, std::uint64_t r, Cell* tree, Cell* outL,
                   Cell* outMid, Cell* outR) {
  Node* t = co_await *tree;
  spawn(splitr_fiber(st, r, t, outL, outMid, outR));
}
}  // namespace

Fiber rebalance_fiber(Store& st, Cell* tree, std::uint64_t size, Cell* out) {
  if (size == 0) {
    Node* t = co_await *tree;  // consume the (empty) side
    PWF_CHECK(t == nullptr);
    out->write(nullptr);
    co_return;
  }
  const std::uint64_t lcount = size / 2;  // median rank
  Cell* lpart = st.cell();
  Cell* rpart = st.cell();
  Cell* midc = st.cell();
  spawn(splitr_entry(st, lcount, tree, lpart, midc, rpart));
  Node* mid = co_await *midc;
  Node* res = st.make(mid->key);
  spawn(rebalance_fiber(st, lpart, lcount, res->left));
  spawn(rebalance_fiber(st, rpart, size - 1 - lcount, res->right));
  out->write(res);
}

Cell* rebalance(Store& st, Cell* tree) {
  Cell* annotated = st.cell();
  spawn(measure_fiber(st, tree, annotated));
  // The measure pass delivers the root (with its total size) first; chain a
  // small fiber that reads it and launches the pipelined rebalance.
  Cell* out = st.cell();
  struct Chain {
    static Fiber go(Store& store, Cell* ann, Cell* result) {
      Node* root = co_await *ann;
      if (root == nullptr) {
        result->write(nullptr);
        co_return;
      }
      spawn(rebalance_fiber(store, store.input(root), root->size, result));
    }
  };
  spawn(Chain::go(st, annotated, out));
  return out;
}

Fiber msort_balanced_fiber(Store& st, std::span<const Key> values,
                           Cell* out) {
  if (values.empty()) {
    out->write(nullptr);
    co_return;
  }
  if (values.size() == 1) {
    out->write(st.make_ready(values[0], nullptr, nullptr));
    co_return;
  }
  const std::size_t mid = values.size() / 2;
  Cell* l = st.cell();
  Cell* r = st.cell();
  spawn(msort_balanced_fiber(st, values.subspan(0, mid), l));
  spawn(msort_balanced_fiber(st, values.subspan(mid), r));
  Cell* merged = st.cell();
  spawn(merge_fiber(st, l, r, merged));
  // Measure + rank-rebalance this level (size is known statically: merges
  // keep duplicates).
  Cell* annotated = st.cell();
  spawn(measure_fiber(st, merged, annotated));
  Node* root = co_await *annotated;
  spawn(rebalance_fiber(st, st.input(root), values.size(), out));
}

Cell* mergesort_balanced(Store& st, std::span<const Key> values) {
  Cell* out = st.cell();
  spawn(msort_balanced_fiber(st, values, out));
  return out;
}

Node* peek(const Cell* c) { return c->peek(); }

void collect_inorder(const Node* root, std::vector<Key>& out) {
  if (root == nullptr) return;
  collect_inorder(peek(root->left), out);
  out.push_back(root->key);
  collect_inorder(peek(root->right), out);
}

int height(const Node* root) {
  if (root == nullptr) return 0;
  return 1 + std::max(height(peek(root->left)), height(peek(root->right)));
}

namespace {
void wait_collect(Cell* c, std::vector<Key>& out) {
  Node* n = c->wait_blocking();
  if (n == nullptr) return;
  wait_collect(n->left, out);
  out.push_back(n->key);
  wait_collect(n->right, out);
}
}  // namespace

std::vector<Key> wait_inorder(Cell* root_cell) {
  std::vector<Key> out;
  wait_collect(root_cell, out);
  return out;
}

}  // namespace pwf::rt::trees
