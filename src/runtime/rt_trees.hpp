// Parallel (real-execution) versions of the Section 3.1 algorithms on the
// coroutine futures runtime. The algorithm bodies are the *same templated
// coroutines* the cost model measures (src/pipelined/trees.hpp,
// src/pipelined/mergesort.hpp), instantiated here on the RtExec substrate —
// `co_await ex.touch(...)` parks the fiber in the cell, `ex.fork(...)` posts
// to the work-stealing scheduler. See docs/substrates.md.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pipelined/rt_exec.hpp"
#include "pipelined/trees.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"

namespace pwf::rt::trees {

using Key = pipelined::trees::Key;

// Runtime instantiation: nodes over FutCell futures (no timestamps).
using Node = pipelined::trees::Node<pipelined::RtPolicy>;
using Cell = FutCell<Node*>;
using Store = pipelined::trees::Store<pipelined::RtPolicy>;

// Pipelined split/merge (Figure 3). merge() spawns the root fiber and
// returns the result cell; join the computation by wait_blocking() on it —
// the result tree is fully written once every cell reachable from it is
// (verified by peek-based walks, which assert written()).
Cell* merge(Store& st, Cell* a, Cell* b);

// Pipelined mergesort over the tree merge (Section 5).
Cell* mergesort(Store& st, std::span<const Key> values);

// Pipelined rebalance (the Section 3.1 extension): size-annotating measure
// pass, then rank-split recursion, chained in one spawned fiber.
Cell* rebalance(Store& st, Cell* tree);

// Balanced mergesort: rebalances after every merge level (guaranteed
// Θ(lg² n) critical path, height-optimal output; cf. algos mergesort_balanced).
Cell* mergesort_balanced(Store& st, std::span<const Key> values);

// Strict fork-join baselines on the runtime (the same bodies as the cost
// model's merge_strict/msort_strict, on RtExec). Block the calling thread
// until the result tree is complete.
Node* merge_strict_blocking(Store& st, Node* a, Node* b);
Node* mergesort_strict_blocking(Store& st, std::span<const Key> values);

// ---- validation helpers (post-completion) -----------------------------------

Node* peek(const Cell* c);
void collect_inorder(const Node* root, std::vector<Key>& out);
int height(const Node* root);

// Blocks until every cell reachable from `root_cell` is written and returns
// the in-order keys. (With the eager producers above, waiting on each cell
// in DFS order terminates.)
std::vector<Key> wait_inorder(Cell* root_cell);

}  // namespace pwf::rt::trees
