// Parallel (real-execution) versions of the Section 3.1 algorithms on the
// coroutine futures runtime. The code mirrors the cost-model versions in
// src/trees almost line for line — `co_await cell` where they call
// eng.touch, `spawn(...)` where they call eng.fork — which is itself a
// demonstration of the paper's thesis: the pipelined code *is* the obvious
// sequential code plus future annotations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/concurrent_arena.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"

namespace pwf::rt::trees {

using Key = std::int64_t;

struct Node;
using Cell = FutCell<Node*>;

struct Node {
  Key key = 0;
  std::uint64_t size = 0;   // subtree size   (rebalance pre-pass only)
  std::uint64_t lsize = 0;  // left-subtree size (rank navigation)
  Cell* left = nullptr;
  Cell* right = nullptr;
};

class Store {
 public:
  Cell* cell() { return arena_.create<Cell>(); }

  Cell* input(Node* root) {
    Cell* c = cell();
    c->preset(root);
    return c;
  }

  Node* make(Key key, Cell* l, Cell* r) {
    Node* n = arena_.create<Node>();
    n->key = key;
    n->left = l;
    n->right = r;
    return n;
  }
  Node* make(Key key) { return make(key, cell(), cell()); }
  Node* make_ready(Key key, Node* l, Node* r) {
    return make(key, input(l), input(r));
  }

  Node* build_balanced(std::span<const Key> sorted);

 private:
  ConcurrentArena arena_;
};

// Pipelined split/merge (Figure 3). merge() spawns the root fiber and
// returns the result cell; join the computation by wait_blocking() on it —
// the result tree is fully written once every cell reachable from it is
// (verified by peek-based walks, which assert written()).
Fiber split_fiber(Store& st, Key s, Node* t, Cell* outL, Cell* outR);
Fiber merge_fiber(Store& st, Cell* a, Cell* b, Cell* out);
Cell* merge(Store& st, Cell* a, Cell* b);

// Pipelined mergesort over the tree merge (Section 5).
Fiber msort_fiber(Store& st, std::span<const Key> values, Cell* out);
Cell* mergesort(Store& st, std::span<const Key> values);

// Pipelined rebalance (the Section 3.1 extension, mirroring
// src/trees/rebalance.*): size-annotating measure pass, then rank-split
// recursion. rebalance() chains them and returns the balanced tree's cell.
Fiber measure_fiber(Store& st, Cell* t, Cell* out);
Fiber splitr_fiber(Store& st, std::uint64_t r, Node* t, Cell* outL,
                   Cell* outMid, Cell* outR);
Fiber rebalance_fiber(Store& st, Cell* tree, std::uint64_t size, Cell* out);
Cell* rebalance(Store& st, Cell* tree);

// Balanced mergesort: rebalances after every merge level (guaranteed
// Θ(lg² n) critical path, height-optimal output; cf. algos mergesort_balanced).
Fiber msort_balanced_fiber(Store& st, std::span<const Key> values,
                           Cell* out);
Cell* mergesort_balanced(Store& st, std::span<const Key> values);

// ---- validation helpers (post-completion) -----------------------------------

Node* peek(const Cell* c);
void collect_inorder(const Node* root, std::vector<Key>& out);
int height(const Node* root);

// Blocks until every cell reachable from `root_cell` is written and returns
// the in-order keys. (With the eager producers above, waiting on each cell
// in DFS order terminates.)
std::vector<Key> wait_inorder(Cell* root_cell);

}  // namespace pwf::rt::trees
