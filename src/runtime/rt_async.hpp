// Async (fiber-parking) walks over pipelined treap cells — the server-side
// counterparts of the blocking walks in treap_walk.hpp / rt_map.hpp.
//
// The facades' flush()/get() force cells with wait_blocking(), which is
// right for an external joiner thread but wrong inside a fiber: a fiber
// that blocks its worker thread stalls the very pipeline it is waiting on
// (fatal at one worker, a latency cliff at few). These walks are coroutine
// Fibers instead — `co_await *cell` parks the fiber *in the cell* (O(1),
// no allocation, no occupied worker) and the cell's writer reposts it.
//
// They cannot reuse treap_walk.hpp's force-callable visitors (co_await is
// not legal inside a lambda passed down a call stack), so the two walks the
// service layer needs are hand-rolled here, single-source for every facade:
//
//   * quiesce_fiber  — co_awaits every reachable cell (including internal
//     aug cells of augmented trees), then writes a done-cell: the async
//     quiescence behind ParallelSet/ParallelMap::on_flush.
//   * probe_fiber    — forces only the O(lg n) search-path cells and writes
//     a Probe<V> result-cell: the async point read behind
//     ParallelMap::probe_into (E27's pipelined reply path).
//
// Both pin their epoch the way MapSnapshot does — shared_ptr copies of the
// store (plus absorbed-shard stores) travel in the coroutine frame — so the
// walk stays valid across concurrent compact() epochs and adaptive merges.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "pipelined/treap.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"

namespace pwf::rt::rtasync {

// Result of an async point probe (trivially copyable: it travels through a
// FutCell).
template <typename V>
struct Probe {
  V value{};
  bool found = false;
};

// One epoch-pinned tree: the (store, merged-stores, root) triple a facade
// snapshots under its snap_mu_. `store` may be null for input-only cells in
// tests; the pins are only held, never dereferenced.
template <typename StoreT, typename CellT>
struct Pinned {
  std::shared_ptr<const StoreT> store;
  std::vector<std::shared_ptr<const StoreT>> merged;
  CellT* root = nullptr;
};

// Await every cell reachable from every pinned root (structure cells, and
// aug cells when the entry is augmented), then write *done = 1. Spawn it;
// the caller co_awaits (or wait_blocking()s) the done cell.
template <typename StoreT, typename CellT>
Fiber quiesce_fiber(std::vector<Pinned<StoreT, CellT>> pins,
                    FutCell<int>* done) {
  using NodeT = std::remove_pointer_t<typename CellT::value_type>;
  std::vector<CellT*> stack;
  for (const Pinned<StoreT, CellT>& p : pins) stack.push_back(p.root);
  while (!stack.empty()) {
    CellT* c = stack.back();
    stack.pop_back();
    NodeT* n = co_await *c;
    if (n == nullptr) continue;
    if constexpr (NodeT::Entry::kHasAug) co_await *n->aug;
    if (!pipelined::treap::is_leaf(n)) {
      stack.push_back(n->left);
      stack.push_back(n->right);
    }
  }
  done->write(1);
}

// Point lookup forcing only the search path (the same descent as
// treap_walk.hpp's lookup, awaiting instead of blocking); writes the
// Probe into *out. Pipelines with in-flight batches chained before the pin
// was taken — the paper's consumer descending into a producer's half-built
// tree, now without holding a worker hostage.
template <typename StoreT, typename CellT, typename V>
Fiber probe_fiber(Pinned<StoreT, CellT> pin, pipelined::treap::Key k,
                  FutCell<Probe<V>>* out) {
  using NodeT = std::remove_pointer_t<typename CellT::value_type>;
  CellT* c = pin.root;
  for (;;) {
    NodeT* n = co_await *c;
    if (n == nullptr) {
      out->write(Probe<V>{});
      co_return;
    }
    if (pipelined::treap::is_leaf(n)) {
      const auto* e = n->items;
      std::uint32_t lo = 0, hi = n->count;
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (e[mid].key < k)
          lo = mid + 1;
        else
          hi = mid;
      }
      Probe<V> r{};
      if (lo < n->count && e[lo].key == k) {
        r.value = e[lo].value;
        r.found = true;
      }
      out->write(r);
      co_return;
    }
    if (k < n->key) {
      c = n->left;
    } else if (k > n->key) {
      c = n->right;
    } else {
      out->write(Probe<V>{n->value, true});
      co_return;
    }
  }
}

}  // namespace pwf::rt::rtasync
