// IoReactor — the scheduler's I/O thread: fibers park on a file descriptor
// or a deadline instead of a FutCell, and the reactor reposts them through
// the scheduler's lock-free inject ring when the fd becomes ready or the
// deadline elapses.
//
// This is the "Reduced I/O Latency with Futures" move (PAPERS.md): a fiber
// that would block on I/O suspends in O(1) — its waiter record lives in the
// awaiter inside the suspended frame, exactly like FutCell waiters — and
// the worker it ran on immediately picks up other ready work. One reactor
// thread multiplexes every parked fd with epoll and every deadline with a
// min-heap fronted by a single timerfd, so parked fibers consume no worker
// CPU at all (E27's open-loop latency harness is built on this).
//
// Protocol (see docs/runtime.md, "I/O awaiters and the reactor"):
//
//   * park_fd / park_timer hand the reactor an IoWaiter living in the
//     suspended coroutine frame. From the moment the call returns true the
//     reactor owns the waiter: it may fire, repost, and the frame may be
//     destroyed before the caller's next instruction — callers touch
//     nothing afterwards (the FutCell::Awaiter publication discipline).
//   * A false return means the reactor has stopped: the caller must not
//     suspend; the fiber continues inline with a cancelled (0) result.
//   * cancel(tag) asynchronously cancels every parked waiter carrying that
//     tag (the libcoro-style tagged sleep); cancelled waiters are reposted
//     with result 0.
//   * Shutdown: ~IoReactor (run by ~Scheduler *before* the workers stop)
//     marks the reactor stopped, then the reactor thread cancels every
//     in-flight park and resumes those fibers to completion on the reactor
//     thread itself — deterministic, no reliance on workers that are about
//     to exit. Fibers that try to park again during this drain get the
//     false/cancelled path and run straight through.
//
// The header is deliberately syscall-free (no <sys/epoll.h>): fd readiness
// is expressed with the kReadable/kWritable/kError bits and mapped to epoll
// flags in io_reactor.cpp, so it can be included (and CI-compiled for
// self-containment) anywhere.
#pragma once

#include <atomic>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace pwf::rt {

class Scheduler;

// The park record. Lives inside the awaiter object in the suspended
// coroutine frame (no allocation, like FutCell's intrusive Waiter); the
// reactor writes `result` before reposting, the fiber reads it in
// await_resume after it runs again — the repost through the inject ring
// provides the happens-before edge.
struct IoWaiter {
  std::coroutine_handle<> handle{};
  // fd parks:
  int fd = -1;
  std::uint32_t events = 0;  // requested kReadable / kWritable bits
  // timer parks:
  std::chrono::steady_clock::time_point deadline{};
  // optional cancellation tag (both kinds):
  const void* tag = nullptr;
  // Outcome. fd parks: the ready-event bits (kError folded in), 0 when
  // cancelled or shut down. timer parks: 1 fired, 0 cancelled/shut down.
  std::uint32_t result = 0;
};

class IoReactor {
 public:
  // Abstract readiness bits (mapped to EPOLLIN/EPOLLOUT/EPOLLERR|EPOLLHUP
  // in the .cpp).
  static constexpr std::uint32_t kReadable = 1u << 0;
  static constexpr std::uint32_t kWritable = 1u << 1;
  static constexpr std::uint32_t kError = 1u << 2;

  explicit IoReactor(Scheduler& sched);
  ~IoReactor();

  IoReactor(const IoReactor&) = delete;
  IoReactor& operator=(const IoReactor&) = delete;

  // Park a fiber until w->fd has one of w->events ready (one-shot; at most
  // one waiter per fd at a time — checked). True: the reactor took the
  // waiter and the caller must suspend without touching anything. False:
  // reactor stopped, do not suspend (w->result is 0).
  bool park_fd(IoWaiter* w);

  // Park a fiber until w->deadline (steady_clock). Deadlines at or before
  // now fire on the reactor's next pass, so zero/negative sleeps are just
  // a bounce through the ring. Same ownership contract as park_fd.
  bool park_timer(IoWaiter* w);

  // Asynchronously cancel every parked waiter whose tag matches (nullptr
  // tags are never cancelled). Cancelled waiters repost with result 0;
  // timers count Stats::timer_cancels.
  void cancel(const void* tag);

 private:
  struct Cmd {
    enum Kind : std::uint8_t { kParkFd, kParkTimer, kCancel };
    Kind kind;
    IoWaiter* w;      // park commands
    const void* tag;  // cancel commands
  };
  // Timer min-heap entry; seq breaks deadline ties FIFO.
  struct TimerEnt {
    std::chrono::steady_clock::time_point deadline;
    std::uint64_t seq;
    IoWaiter* w;
  };

  void loop();
  void kick();
  void register_fd(IoWaiter* w);
  void cancel_tag(const void* tag, std::vector<IoWaiter*>& ready);
  void arm_timerfd();

  Scheduler& sched_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;   // eventfd: park_/cancel_ callers kick the loop
  int timer_fd_ = -1;  // timerfd armed to the heap's earliest deadline

  // Callers hand work to the reactor thread through this queue; parks are
  // per-I/O (not per-cell), so a mutex is fine here — the hot path is the
  // reactor→scheduler repost, which is the lock-free ring.
  std::mutex cmd_mu_;
  std::vector<Cmd> cmds_;   // guarded by cmd_mu_
  bool stopped_ = false;    // guarded by cmd_mu_

  // Reactor-thread-only state.
  std::unordered_map<int, IoWaiter*> fd_waiters_;
  std::vector<TimerEnt> timers_;  // min-heap (deadline, seq)
  std::uint64_t next_seq_ = 0;
  std::chrono::steady_clock::time_point armed_ =
      std::chrono::steady_clock::time_point::min();

  std::thread thread_;
};

}  // namespace pwf::rt
