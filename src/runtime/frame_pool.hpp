// Pooled allocation for coroutine frames (and other short-lived, same-sized
// blocks). The runtime substrate allocates one coroutine frame per fork —
// E13 showed the malloc/free pair dominating the per-future constant — so
// the Fiber/Task promise types route frame storage through per-thread
// size-class freelists: steady-state forks pop a warm block from the worker
// that last freed one of the same class, and the heap is touched only to
// grow the pool.
//
// Design:
//   * size classes of 64 bytes up to 1 KiB; larger frames (rare: bodies with
//     big locals) fall through to ::operator new and are counted as
//     `oversize`;
//   * allocation and release always use the *calling* thread's pool — a
//     frame may be allocated on worker A and destroyed on worker B (work
//     stealing moves frames freely), in which case the block simply migrates
//     to B's freelist. Blocks are individually heap-allocated on a miss, so
//     a pool can free any block regardless of origin;
//   * per-class freelists are capped; releases beyond the cap return the
//     block to the heap, bounding drift when producers and consumers of
//     frames are persistently different threads;
//   * hit/miss/oversize counters are relaxed atomics aggregated over a
//     registry of live pools plus totals retired at thread exit
//     (Scheduler::stats() surfaces them).
//
// The pool is substrate-neutral: cost-model runs allocate and free on one
// thread and enjoy the same reuse. It adds no engine actions, so recorded
// cost-model counts are unchanged (pinned by recorded_counts_test).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

namespace pwf::rt {

class FramePool {
 public:
  struct Stats {
    std::uint64_t hits = 0;      // allocations served from a freelist
    std::uint64_t misses = 0;    // allocations that had to hit the heap
    std::uint64_t oversize = 0;  // frames above the largest size class
    std::uint64_t frames_alloc = 0;  // frames ever allocated (incl. oversize)
    std::uint64_t frames_freed = 0;  // frames ever released
  };

  // Pool-aware allocation entry points (promise operator new/delete).
  static void* allocate(std::size_t bytes) { return local().alloc(bytes); }
  static void release(void* p, std::size_t bytes) { local().free(p, bytes); }

  // Process-wide counters across all threads that ever allocated.
  static Stats stats();

  // True iff every coroutine frame ever allocated has been released — no
  // fiber or task is live (running, queued, or parked in a cell) anywhere in
  // the process. The per-thread counters are monotone, and quiescent() sums
  // all frames_freed_ *before* all frames_alloc_: if the two totals agree,
  // alloc >= freed at the fence instant squeezes to equality, proving a
  // moment with zero live frames. The freed bump is a release op after the
  // frame's last memory access, so a caller that observes the balance may
  // reclaim memory those frames touched (ParallelSet/ParallelMap use this to
  // retire arena epochs under pipelined batches — see docs/service.md).
  static bool quiescent();

  // Spin (with yields) until quiescent(). Only meaningful from a thread
  // that holds no live coroutine frame of its own, while the scheduler that
  // runs the outstanding fibers is still alive to drain them.
  static void wait_quiescent();

  // Touch the calling thread's pool (workers warm it at startup so the
  // first fork does not pay the thread_local construction check).
  static void warm() { local(); }

 private:
  static constexpr std::size_t kClassShift = 6;  // 64-byte classes
  static constexpr std::size_t kClasses = 16;    // up to 1 KiB
  static constexpr std::size_t kMaxPerClass = 4096;  // freelist length cap

  struct FreeNode {
    FreeNode* next;
  };

  struct Registry {
    std::mutex mutex;
    std::vector<const FramePool*> pools;
    Stats retired;
  };

  // Leaked intentionally: thread_local pools deregister at thread exit, and
  // exit order between thread-locals and function statics is otherwise a
  // hazard.
  static Registry& registry() {
    static Registry* r = new Registry;
    return *r;
  }

  static FramePool& local() {
    thread_local FramePool pool;
    return pool;
  }

  FramePool() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mutex);
    r.pools.push_back(this);
  }

  ~FramePool() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mutex);
    for (std::size_t c = 0; c < kClasses; ++c) {
      for (FreeNode* n = free_[c]; n != nullptr;) {
        FreeNode* next = n->next;
        ::operator delete(n);
        n = next;
      }
    }
    r.retired.hits += hits_.load(std::memory_order_relaxed);
    r.retired.misses += misses_.load(std::memory_order_relaxed);
    r.retired.oversize += oversize_.load(std::memory_order_relaxed);
    r.retired.frames_alloc += frames_alloc_.load(std::memory_order_relaxed);
    r.retired.frames_freed += frames_freed_.load(std::memory_order_acquire);
    std::erase(r.pools, this);
  }

  static std::size_t class_of(std::size_t bytes) {
    return (bytes + (std::size_t{1} << kClassShift) - 1) >> kClassShift;
  }
  static std::size_t class_bytes(std::size_t cls) { return cls << kClassShift; }

  void* alloc(std::size_t bytes) {
    frames_alloc_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t cls = class_of(bytes);
    if (cls >= kClasses) {
      oversize_.fetch_add(1, std::memory_order_relaxed);
      return ::operator new(bytes);
    }
    if (FreeNode* n = free_[cls]) {
      free_[cls] = n->next;
      --count_[cls];
      hits_.fetch_add(1, std::memory_order_relaxed);
      return n;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(class_bytes(cls));
  }

  void free(void* p, std::size_t bytes) {
    // Release: everything the dying frame read or wrote happens-before a
    // quiescent() observer that counts this bump.
    frames_freed_.fetch_add(1, std::memory_order_release);
    const std::size_t cls = class_of(bytes);
    if (cls >= kClasses || count_[cls] >= kMaxPerClass) {
      ::operator delete(p);
      return;
    }
    FreeNode* n = static_cast<FreeNode*>(p);
    n->next = free_[cls];
    free_[cls] = n;
    ++count_[cls];
  }

  // Freelists are thread-private; the counters are atomics only so that
  // stats() may read them from another thread (uncontended relaxed ops).
  FreeNode* free_[kClasses] = {};
  std::size_t count_[kClasses] = {};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> oversize_{0};
  std::atomic<std::uint64_t> frames_alloc_{0};
  std::atomic<std::uint64_t> frames_freed_{0};
};

inline FramePool::Stats FramePool::stats() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  Stats s = r.retired;
  for (const FramePool* p : r.pools) {
    s.hits += p->hits_.load(std::memory_order_relaxed);
    s.misses += p->misses_.load(std::memory_order_relaxed);
    s.oversize += p->oversize_.load(std::memory_order_relaxed);
    s.frames_alloc += p->frames_alloc_.load(std::memory_order_relaxed);
    s.frames_freed += p->frames_freed_.load(std::memory_order_relaxed);
  }
  return s;
}

inline bool FramePool::quiescent() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mutex);
  // Freed first, allocated second. Both counters are monotone, so
  // freed_total <= alloc_total(t_fence) <= alloc_total_read; equality of the
  // two sums forces alloc == freed at the fence — a quiescent instant. (The
  // reverse read order could balance while a frame allocated after the
  // alloc pass but freed before the freed pass is still live.)
  std::uint64_t freed = r.retired.frames_freed;
  for (const FramePool* p : r.pools)
    freed += p->frames_freed_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::uint64_t alloc = r.retired.frames_alloc;
  for (const FramePool* p : r.pools)
    alloc += p->frames_alloc_.load(std::memory_order_relaxed);
  return alloc == freed;
}

inline void FramePool::wait_quiescent() {
  while (!quiescent()) std::this_thread::yield();
}

}  // namespace pwf::rt
