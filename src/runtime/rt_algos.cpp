#include "runtime/rt_algos.hpp"

namespace pwf::rt::list {

namespace pl = pipelined;

Cell* quicksort(Store& st, const std::vector<Value>& values) {
  pl::RtExec ex;
  Cell* in = st.input_list(values);
  Cell* nil = st.input(nullptr);
  Cell* out = st.cell();
  ex.fork(pl::list::quicksort_into(ex, st, in, nil, out));
  return out;
}

Value produce_consume_sum(Store& st, std::int64_t n) {
  pl::RtExec ex;
  Cell* list = st.cell();
  ex.fork(pl::list::produce(ex, st, n, list));
  FutCell<Value> result;
  ex.fork(pl::deliver(pl::list::consume(ex, list), &result));
  return result.wait_blocking();
}

std::vector<Value> wait_list(Cell* head) {
  std::vector<Value> out;
  for (Cell* c = head;;) {
    LNode* n = c->wait_blocking();
    if (n == nullptr) return out;
    out.push_back(n->value);
    c = n->next;
  }
}

}  // namespace pwf::rt::list
