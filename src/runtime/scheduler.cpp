#include "runtime/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "runtime/io_reactor.hpp"

#if PWF_ANALYZE
#include "analyze/rt_recorder.hpp"
#endif

namespace pwf::rt {

namespace {
std::atomic<Scheduler*> g_current{nullptr};
thread_local int t_worker_index = -1;
thread_local Scheduler* t_worker_scheduler = nullptr;
}  // namespace

Scheduler* Scheduler::current() {
  return g_current.load(std::memory_order_acquire);
}

Scheduler::Stats Scheduler::stats() const {
  Stats s;
  s.resumed = resumed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.injected = injected_.load(std::memory_order_relaxed);
  s.inject_overflows = inject_overflows_.load(std::memory_order_relaxed);
  s.inject_overflow_batches =
      inject_overflow_batches_.load(std::memory_order_relaxed);
  s.serial_cutoffs = serial_cutoffs_.load(std::memory_order_relaxed);
  s.leaf_ops = leaf_ops_.load(std::memory_order_relaxed);
  s.aug_ops = aug_ops_.load(std::memory_order_relaxed);
  s.rebalances = rebalances_.load(std::memory_order_relaxed);
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  s.io_parks = io_parks_.load(std::memory_order_relaxed);
  s.io_wakeups = io_wakeups_.load(std::memory_order_relaxed);
  s.timer_fires = timer_fires_.load(std::memory_order_relaxed);
  s.timer_cancels = timer_cancels_.load(std::memory_order_relaxed);
  const FramePool::Stats pool = FramePool::stats();
  s.frame_pool_hits = pool.hits;
  s.frame_pool_misses = pool.misses;
  return s;
}

Scheduler::Scheduler(unsigned nthreads) {
  if (nthreads == 0) nthreads = std::max(1u, std::thread::hardware_concurrency());
  Scheduler* expected = nullptr;
  PWF_CHECK_MSG(
      g_current.compare_exchange_strong(expected, this,
                                        std::memory_order_acq_rel),
      "only one Scheduler may be alive at a time");
  workers_.reserve(nthreads);
  for (unsigned i = 0; i < nthreads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->rng.reseed(0xC0FFEE + i);
  }
  threads_.reserve(nthreads);
  for (unsigned i = 0; i < nthreads; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

IoReactor& Scheduler::reactor() {
  if (IoReactor* r = reactor_ptr_.load(std::memory_order_acquire)) return *r;
  std::lock_guard<std::mutex> lk(reactor_mu_);
  if (!reactor_) {
    reactor_ = std::make_unique<IoReactor>(*this);
    reactor_ptr_.store(reactor_.get(), std::memory_order_release);
  }
  return *reactor_;
}

Scheduler::~Scheduler() {
  // Reactor first: its destructor cancels every in-flight fd/timer park and
  // runs those fibers to completion on the reactor thread, so by the time
  // the workers stop no fiber can still be waiting on I/O (a worker-queued
  // fiber dropped at stop is the pre-existing shutdown semantics; a fiber
  // parked in a dead reactor would be a leak).
  reactor_ptr_.store(nullptr, std::memory_order_release);
  reactor_.reset();
  {
    std::lock_guard<std::mutex> lk(park_mutex_);
    stop_ = true;
  }
  park_cv_.notify_all();
  for (auto& t : threads_) t.join();
#if PWF_ANALYZE
  // All workers have quiesced: any waiter still parked in a cell now sleeps
  // forever (a touch of a never-written cell). Audit and report before the
  // scheduler disappears — without this the bug is a silent hang.
  rt::analyze::audit_at_shutdown();
#endif
  g_current.store(nullptr, std::memory_order_release);
}

void Scheduler::post(std::coroutine_handle<> h) {
  if (t_worker_scheduler == this && t_worker_index >= 0) {
    workers_[t_worker_index]->deque.push(h.address());
  } else {
    injected_.fetch_add(1, std::memory_order_relaxed);
    if (!inject_ring_.push(h.address())) {
      // Ring full: spill to the mutex path so posts never block or drop.
      inject_overflows_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(inject_mutex_);
      inject_overflow_.push_back(h);
      overflow_count_.store(inject_overflow_.size(),
                            std::memory_order_release);
    }
  }
  // Lock-free wake — poster half of the Dekker handshake. Audit (both
  // fences are load-bearing; the reactor thread reposting readied I/O
  // fibers takes exactly this path):
  //
  //   poster:  enqueue item            worker:  parked_.fetch_add (announce)
  //            fence(seq_cst)  [P]              fence(seq_cst)        [W]
  //            load parked_                     recheck queues
  //
  // The enqueue is release-at-best (ring CAS / deque store) and the recheck
  // loads are acquire-at-best, so without *both* fences the store-buffering
  // outcome "poster misses the announcement AND worker misses the item" is
  // allowed — the announce being a seq_cst RMW does not by itself order the
  // worker's later queue loads against it. With [P] and [W] in the single
  // total order of seq_cst fences, one side must observe the other: either
  // the worker's recheck sees the item, or this load sees parked_ != 0 and
  // signals. The worst residual miss (signal fired while the worker was
  // between announcing and waiting) is bounded by the 1 ms park timeout.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_relaxed) != 0) {
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    park_cv_.notify_one();
  }
}

std::coroutine_handle<> Scheduler::find_work(unsigned index) {
  Worker& me = *workers_[index];
  if (void* p = me.deque.pop())
    return std::coroutine_handle<>::from_address(p);
  if (void* p = inject_ring_.pop())
    return std::coroutine_handle<>::from_address(p);
  // The overflow vector is only populated when the ring filled up; the
  // atomic count lets the common case skip the mutex entirely. When it is
  // populated, drain the whole backlog on ONE lock acquisition: the first
  // handle is returned and the rest go to this worker's own deque (where
  // idle peers can steal them) instead of paying a mutex round-trip per
  // item.
  if (overflow_count_.load(std::memory_order_acquire) != 0) {
    std::vector<std::coroutine_handle<>> batch;
    {
      std::lock_guard<std::mutex> lk(inject_mutex_);
      batch.swap(inject_overflow_);
      overflow_count_.store(0, std::memory_order_release);
    }
    if (!batch.empty()) {
      inject_overflow_batches_.fetch_add(1, std::memory_order_relaxed);
      for (std::size_t i = batch.size(); i > 1; --i)
        me.deque.push(batch[i - 1].address());
      return batch.front();
    }
  }
  // Randomized stealing: a few rounds over the other workers.
  const unsigned n = static_cast<unsigned>(workers_.size());
  if (n > 1) {
    for (unsigned attempt = 0; attempt < 2 * n; ++attempt) {
      const unsigned victim =
          static_cast<unsigned>(me.rng.below(n));
      if (victim == index) continue;
      if (void* p = workers_[victim]->deque.steal()) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        return std::coroutine_handle<>::from_address(p);
      }
    }
  }
  return nullptr;
}

void Scheduler::worker_loop(unsigned index) {
  t_worker_index = static_cast<int>(index);
  t_worker_scheduler = this;
  FramePool::warm();
#if PWF_ANALYZE
  rt::analyze::set_worker(static_cast<int>(index));
#endif
  const auto run = [this](std::coroutine_handle<> h) {
    resumed_.fetch_add(1, std::memory_order_relaxed);
#if PWF_ANALYZE
    rt::analyze::set_current_fiber(h.address());
#endif
    h.resume();
#if PWF_ANALYZE
    rt::analyze::set_current_fiber(nullptr);
#endif
  };
  for (;;) {
    if (std::coroutine_handle<> h = find_work(index)) {
      run(h);
      continue;
    }
    // Spin-then-park — worker half of the Dekker handshake (see the audit
    // comment in post()). Announce first, fence, then recheck: the explicit
    // fence pairs with post()'s fence so a poster that misses this
    // announcement is guaranteed its item is visible to the recheck. The
    // announce alone (even as a seq_cst RMW) would not order the recheck's
    // queue loads after it.
    parked_.fetch_add(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (std::coroutine_handle<> h = find_work(index)) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      run(h);
      continue;
    }
    bool stopping;
    {
      std::unique_lock<std::mutex> lk(park_mutex_);
      if (!stop_) park_cv_.wait_for(lk, std::chrono::milliseconds(1));
      stopping = stop_;
    }
    parked_.fetch_sub(1, std::memory_order_relaxed);
    if (stopping) break;
  }
  t_worker_index = -1;
  t_worker_scheduler = nullptr;
}

}  // namespace pwf::rt
