// Work-stealing scheduler for the coroutine futures runtime.
//
// This is the "real" counterpart of the paper's Section-4 runtime: the
// simulator (src/sim) replays the provable greedy schedule; this scheduler
// actually executes the same programs on OS threads. Each worker owns a
// Chase–Lev deque of ready coroutine handles; suspended coroutines live in
// the future cells they are waiting on (src/runtime/future.hpp) and are
// reposted by the write — the paper's constant-time suspend/reactivate,
// which it calls critical for the depth bounds.
#pragma once

#include <atomic>
#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/deque.hpp"
#include "runtime/frame_pool.hpp"
#include "runtime/inject_ring.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace pwf::rt {

class IoReactor;

class Scheduler {
 public:
  // nthreads = 0 picks hardware_concurrency (>= 1).
  explicit Scheduler(unsigned nthreads = 0);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Enqueue a ready coroutine. On a worker thread it goes to the worker's
  // own deque (LIFO end — the stack discipline the paper prefers for
  // space); from outside it goes to the injection queue.
  void post(std::coroutine_handle<> h);

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  // The process-wide live scheduler (future-cell writes repost waiters
  // through it). Exactly one Scheduler may be alive at a time.
  static Scheduler* current();

  // The scheduler's I/O reactor (src/runtime/io_reactor.hpp): an epoll +
  // timerfd thread that fibers park on via the io_awaiter.hpp awaitables.
  // Started lazily on first use — programs that never touch I/O pay
  // nothing. The reactor is torn down *before* the workers in ~Scheduler
  // (in-flight parks are resumed with a cancelled result; see the header).
  IoReactor& reactor();

  // Observability: aggregate counters since construction (approximate —
  // relaxed atomics, intended for monitoring and tests, not invariants).
  // The frame-pool counters are process-wide (the pool outlives schedulers
  // and is shared with cost-model runs), not per-Scheduler.
  struct Stats {
    std::uint64_t resumed = 0;           // coroutine resumptions executed
    std::uint64_t steals = 0;            // successful steals
    std::uint64_t injected = 0;          // posts from non-worker threads
    std::uint64_t inject_overflows = 0;  // posts that missed the ring
    std::uint64_t inject_overflow_batches = 0;  // one-lock overflow drains
    std::uint64_t serial_cutoffs = 0;    // substrate serial-path activations
    std::uint64_t leaf_ops = 0;          // leaf-chunk fast-path activations
    std::uint64_t aug_ops = 0;           // aggregate recomputation fibers
    std::uint64_t rebalances = 0;        // shard split/join ops launched
    std::uint64_t wakeups = 0;           // park_cv_ signals issued by post()
    std::uint64_t io_parks = 0;          // fibers parked on an fd or timer
    std::uint64_t io_wakeups = 0;        // fibers reposted by the reactor
    std::uint64_t timer_fires = 0;       // deadlines that elapsed
    std::uint64_t timer_cancels = 0;     // timers cancelled before firing
    std::uint64_t frame_pool_hits = 0;   // frames served from a freelist
    std::uint64_t frame_pool_misses = 0; // frames that hit the heap
  };
  Stats stats() const;

  // Called by RtExec when a body takes its serial fast path instead of
  // forking (see docs/substrates.md on serial_threshold()).
  void note_serial_cutoff() {
    serial_cutoffs_.fetch_add(1, std::memory_order_relaxed);
  }

  // Called by RtExec when a body resolves an operation entirely inside flat
  // leaf chunks (docs/storage.md) — the cache-economy column of E19/E24.
  void note_leaf_op() {
    leaf_ops_.fetch_add(1, std::memory_order_relaxed);
  }

  // Called by RtExec when an aug_into fiber recomputes a node's aggregate
  // (docs/augmentation.md) — the augmentation-overhead column of E25.
  void note_aug_op() {
    aug_ops_.fetch_add(1, std::memory_order_relaxed);
  }

  // Called by the rt split/join drivers when the adaptive sharded facades
  // launch a rebalance op (docs/service.md).
  void note_rebalance() {
    rebalances_.fetch_add(1, std::memory_order_relaxed);
  }

  // Called by the IoReactor (docs/runtime.md, "I/O awaiters and the
  // reactor"): park when a fiber registers on an fd/deadline, wakeup when
  // the reactor reposts it, fire/cancel for timer outcomes.
  void note_io_park() { io_parks_.fetch_add(1, std::memory_order_relaxed); }
  void note_io_wakeup() {
    io_wakeups_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_timer_fire() {
    timer_fires_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_timer_cancel() {
    timer_cancels_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct Worker {
    WorkStealingDeque deque;
    Rng rng;
  };

  void worker_loop(unsigned index);
  std::coroutine_handle<> find_work(unsigned index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Injection queue for posts from non-worker threads: a bounded lock-free
  // ring on the fast path, with a mutex-guarded overflow vector when the
  // ring fills (overflow_count_ lets workers skip the mutex when empty).
  static constexpr std::size_t kInjectCapacity = 1024;
  InjectRing inject_ring_{kInjectCapacity};
  std::mutex inject_mutex_;
  std::vector<std::coroutine_handle<>> inject_overflow_;
  std::atomic<std::size_t> overflow_count_{0};

  // Parking lot. `parked_` is the Dekker bit of the lock-free wake path
  // (same pattern as FutCell's kBlocked announcement): a worker announces
  // itself *before* its final work recheck, a poster enqueues *before*
  // loading the counter, so one side always observes the other and post()
  // never touches park_mutex_. The mutex only serializes the cv wait itself
  // and the stop_ flag.
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  bool stop_ = false;  // guarded by park_mutex_
  std::atomic<unsigned> parked_{0};

  // Lazily started I/O reactor. reactor_ptr_ is the lock-free fast path;
  // reactor_mu_ serializes the one-time start. Torn down first in
  // ~Scheduler so no fiber is still parked on an fd when workers stop.
  std::mutex reactor_mu_;
  std::atomic<IoReactor*> reactor_ptr_{nullptr};
  std::unique_ptr<IoReactor> reactor_;

  // Monitoring counters (relaxed).
  std::atomic<std::uint64_t> resumed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> inject_overflows_{0};
  std::atomic<std::uint64_t> inject_overflow_batches_{0};
  std::atomic<std::uint64_t> serial_cutoffs_{0};
  std::atomic<std::uint64_t> leaf_ops_{0};
  std::atomic<std::uint64_t> aug_ops_{0};
  std::atomic<std::uint64_t> rebalances_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> io_parks_{0};
  std::atomic<std::uint64_t> io_wakeups_{0};
  std::atomic<std::uint64_t> timer_fires_{0};
  std::atomic<std::uint64_t> timer_cancels_{0};
};

// Spawned computation: a detached coroutine. It starts suspended (the spawn
// call posts it — the fork action), runs on whatever worker picks it up,
// and destroys its own frame when it finishes. Results are communicated
// exclusively through future cells, as in the paper's model.
struct Fiber {
  struct promise_type {
    // Frames are pooled like the substrate-templated bodies' (see
    // pipelined::PooledFrame): only the sized delete, so the pool can
    // find the size class.
    static void* operator new(std::size_t bytes) {
      return FramePool::allocate(bytes);
    }
    static void operator delete(void* p, std::size_t bytes) {
      FramePool::release(p, bytes);
    }

    Fiber get_return_object() {
      return Fiber{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };

  std::coroutine_handle<promise_type> handle;
};

// The future/fork: schedule the fiber and return immediately.
inline void spawn(Fiber f) {
  Scheduler* s = Scheduler::current();
  PWF_CHECK_MSG(s != nullptr, "spawn outside a Scheduler's lifetime");
  s->post(f.handle);
}

}  // namespace pwf::rt
