// Parallel (real-execution) list algorithms — the Section 4 producer/consumer
// pipeline and Section 5 quicksort — on the coroutine futures runtime. The
// bodies are the templated coroutines in src/pipelined/list.hpp, instantiated
// on the RtExec substrate.
#pragma once

#include <cstdint>
#include <vector>

#include "pipelined/list.hpp"
#include "pipelined/rt_exec.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"

namespace pwf::rt::list {

using Value = pipelined::list::Value;

using LNode = pipelined::list::LNode<pipelined::RtPolicy>;
using Cell = FutCell<LNode*>;
using Store = pipelined::list::Store<pipelined::RtPolicy>;

// Pipelined list quicksort: spawns the root fiber, returns the head cell of
// the sorted list. Join with wait_list.
Cell* quicksort(Store& st, const std::vector<Value>& values);

// Producer/consumer pipeline: the producer fiber streams 0..n through future
// cells while the consumer folds the running sum. Blocks until the sum is
// delivered.
Value produce_consume_sum(Store& st, std::int64_t n);

// Waits for every cell in the list chain; returns the values in order.
std::vector<Value> wait_list(Cell* head);

}  // namespace pwf::rt::list
