// Key-value treap maps on the coroutine futures runtime.
//
// The paper's treaps maintain a dynamic *dictionary*; real dictionaries
// carry values. This header generalizes the Section 3.2–3.3 operations to
// (key, value) nodes:
//   * union_fiber takes a Merge functor: when both maps contain a key, the
//     surviving node's value is merge(left_value, right_value) — which is
//     what makes batch aggregation (word counts, metric rollups) a single
//     pipelined union;
//   * diff_fiber removes keys (values of the second operand are ignored).
// The pipelining structure is identical to rt_treap.*; only the duplicate
// handling differs: union must *wait* for splitm's "found" result on each
// node (like diff does), because the merged value depends on it.
//
// Storage is chunked like the set treaps (docs/storage.md): subtrees at or
// below the store's leaf capacity are sorted flat arrays of (key, pri,
// value) items, processed by branch-free merge loops; the fibers pipeline
// only the internal top of the tree.
//
// Everything is templated on the value type V (trivially copyable, like all
// cell-carried values in this runtime) and lives header-only.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "runtime/concurrent_arena.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace pwf::rt::map {

using Key = std::int64_t;
using Pri = std::uint64_t;

// Default flat-chunk capacity (same policy as the set treaps).
inline constexpr std::size_t kDefaultLeafCapacity = 32;

// One item of a flat leaf chunk; the priority is cached so re-chunking
// never rehashes.
template <typename V>
struct LeafItem {
  Key key = 0;
  Pri pri = 0;
  V value{};
};

// Internal node (items == nullptr) or leaf view (items != nullptr) over an
// immutable, key-sorted item array; see treap::Node in
// src/pipelined/treap.hpp for the scheme. A leaf's key/pri/value mirror its
// maximum-priority item.
template <typename V>
struct Node {
  Key key = 0;
  Pri pri = 0;
  V value{};
  FutCell<Node*>* left = nullptr;
  FutCell<Node*>* right = nullptr;
  const LeafItem<V>* items = nullptr;
  std::uint32_t count = 0;
  std::uint32_t root_pos = 0;
};

template <typename V>
using Cell = FutCell<Node<V>*>;

template <typename V>
bool is_leaf(const Node<V>* n) {
  return n != nullptr && n->items != nullptr;
}

template <typename V>
class Store {
 public:
  // Word-sized payloads keep the node inside one cache line; bigger values
  // trade that for locality of the payload itself.
  static_assert(sizeof(V) > 8 || sizeof(Node<V>) <= 64,
                "map node with a word-sized payload must fit a cache line");

  explicit Store(std::uint64_t salt = 0x9e3779b97f4a7c15ULL,
                 std::size_t leaf_cap = kDefaultLeafCapacity)
      : salt_(salt), leaf_cap_(leaf_cap == 0 ? 1 : leaf_cap) {}

  Pri priority(Key k) const {
    std::uint64_t x = static_cast<std::uint64_t>(k) ^ salt_;
    return splitmix64(x);
  }

  std::size_t leaf_capacity() const { return leaf_cap_; }

  Cell<V>* cell() { return arena_.template create<Cell<V>>(); }
  Cell<V>* input(Node<V>* root) {
    Cell<V>* c = cell();
    c->preset(root);
    return c;
  }

  Node<V>* make(Key key, Pri pri, V value, Cell<V>* l, Cell<V>* r) {
    Node<V>* n = arena_.template create<Node<V>>();
    n->key = key;
    n->pri = pri;
    n->value = value;
    n->left = l;
    n->right = r;
    return n;
  }
  Node<V>* make(Key key, Pri pri, V value) {
    return make(key, pri, value, cell(), cell());
  }

  LeafItem<V>* alloc_items(std::size_t n) {
    return static_cast<LeafItem<V>*>(
        arena_.allocate(n * sizeof(LeafItem<V>), 64));
  }

  // Leaf view over base[lo, hi) (hi > lo); scans for the max-priority item.
  Node<V>* make_leaf(const LeafItem<V>* base, std::uint32_t lo,
                     std::uint32_t hi) {
    std::uint32_t rp = lo;
    for (std::uint32_t i = lo + 1; i < hi; ++i)
      if (base[i].pri > base[rp].pri) rp = i;
    Node<V>* n = arena_.template create<Node<V>>();
    n->key = base[rp].key;
    n->pri = base[rp].pri;
    n->value = base[rp].value;
    n->items = base + lo;
    n->count = hi - lo;
    n->root_pos = rp - lo;
    return n;
  }

  // Treap over a sorted, duplicate-free item range; ranges at or below the
  // leaf capacity become flat chunks.
  Node<V>* chunked(const LeafItem<V>* base, std::uint32_t lo,
                   std::uint32_t hi) {
    if (lo == hi) return nullptr;
    if (hi - lo <= leaf_cap_) return make_leaf(base, lo, hi);
    std::uint32_t rp = lo;
    for (std::uint32_t i = lo + 1; i < hi; ++i)
      if (base[i].pri > base[rp].pri) rp = i;
    Node<V>* l = chunked(base, lo, rp);
    Node<V>* r = chunked(base, rp + 1, hi);
    return make(base[rp].key, base[rp].pri, base[rp].value, input(l),
                input(r));
  }

  // Construction over key-sorted, duplicate-free items (input data): hashes
  // each priority once into a flat item array, then chunks it. With
  // leaf_cap == 1 falls back to the O(n) right-spine method.
  Node<V>* build(std::span<const std::pair<Key, V>> sorted) {
    if (leaf_cap_ > 1 && !sorted.empty()) {
      LeafItem<V>* items = alloc_items(sorted.size());
      for (std::size_t i = 0; i < sorted.size(); ++i)
        items[i] = {sorted[i].first, priority(sorted[i].first),
                    sorted[i].second};
      return chunked(items, 0, static_cast<std::uint32_t>(sorted.size()));
    }
    std::vector<Node<V>*> spine;
    for (const auto& [k, v] : sorted) {
      Node<V>* n = make(k, priority(k), v, input(nullptr), input(nullptr));
      Node<V>* last_popped = nullptr;
      while (!spine.empty() && spine.back()->pri < n->pri) {
        last_popped = spine.back();
        spine.pop_back();
      }
      if (last_popped != nullptr) n->left = input(last_popped);
      if (!spine.empty()) spine.back()->right = input(n);
      spine.push_back(n);
    }
    return spine.empty() ? nullptr : spine.front();
  }

  std::size_t bytes_used() const { return arena_.bytes_used(); }
  std::size_t wasted_padding() const { return arena_.wasted_padding(); }

  // Leaf-chunk operations (merge/split/concat) against this store. Relaxed:
  // a monitoring counter, like arena bytes.
  void note_leaf_op() const {
    leaf_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t leaf_ops() const {
    return leaf_ops_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t salt_;
  std::size_t leaf_cap_;
  mutable std::atomic<std::uint64_t> leaf_ops_{0};
  ConcurrentArena arena_;
};

namespace detail {

inline void note_leaf_op() {
  if (Scheduler* s = Scheduler::current()) s->note_leaf_op();
}

// Sub-view of a leaf, [lo, hi) relative to leaf->items. Empty -> nullptr.
template <typename V>
Node<V>* leaf_slice(Store<V>& st, const Node<V>* leaf, std::uint32_t lo,
                    std::uint32_t hi) {
  if (lo >= hi) return nullptr;
  return st.make_leaf(leaf->items, lo, hi);
}

template <typename V>
Node<V>* left_part(Store<V>& st, const Node<V>* t) {
  return leaf_slice(st, t, 0, t->root_pos);
}

template <typename V>
Node<V>* right_part(Store<V>& st, const Node<V>* t) {
  return leaf_slice(st, t, t->root_pos + 1, t->count);
}

// Rewrites a leaf as an internal node (same key/pri/value, preset side
// slices) so the fibers can hand out child cells.
template <typename V>
Node<V>* open_leaf(Store<V>& st, const Node<V>* t) {
  return st.make(t->key, t->pri, t->value, st.input(left_part(st, t)),
                 st.input(right_part(st, t)));
}

template <typename V>
struct LeafSplit {
  Node<V>* less = nullptr;
  Node<V>* greater = nullptr;
  Node<V>* equal = nullptr;  // one-item leaf view carrying the value
};

template <typename V>
LeafSplit<V> split_leaf(Store<V>& st, Key s, const Node<V>* t) {
  st.note_leaf_op();
  const LeafItem<V>* e = t->items;
  const std::uint32_t n = t->count;
  std::uint32_t lo = 0, hi = n;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (e[mid].key < s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  LeafSplit<V> out;
  out.less = leaf_slice(st, t, 0, lo);
  if (lo < n && e[lo].key == s) {
    out.equal = st.make_leaf(e, lo, lo + 1);
    out.greater = leaf_slice(st, t, lo + 1, n);
  } else {
    out.greater = leaf_slice(st, t, lo, n);
  }
  return out;
}

// Sorted-array union of two chunks with value merge. `flip` says (ta, tb)
// arrived swapped relative to the caller's (a, b): the merged value for a
// shared key is always merge(value_in_a, value_in_b).
template <typename V, typename Merge>
Node<V>* leaf_union(Store<V>& st, const Node<V>* ta, const Node<V>* tb,
                    Merge merge, bool flip) {
  st.note_leaf_op();
  LeafItem<V>* out = st.alloc_items(ta->count + tb->count);
  const LeafItem<V>* x = ta->items;
  const LeafItem<V>* xe = x + ta->count;
  const LeafItem<V>* y = tb->items;
  const LeafItem<V>* ye = y + tb->count;
  LeafItem<V>* w = out;
  while (x != xe && y != ye) {
    if (x->key < y->key) {
      *w++ = *x++;
    } else if (y->key < x->key) {
      *w++ = *y++;
    } else {
      *w = *x;
      w->value = flip ? merge(y->value, x->value) : merge(x->value, y->value);
      ++w;
      ++x;
      ++y;
    }
  }
  while (x != xe) *w++ = *x++;
  while (y != ye) *w++ = *y++;
  return st.chunked(out, 0, static_cast<std::uint32_t>(w - out));
}

// Sorted-array difference a \ b (b's values are irrelevant).
template <typename V>
Node<V>* leaf_diff(Store<V>& st, const Node<V>* a, const Node<V>* b) {
  st.note_leaf_op();
  LeafItem<V>* out = st.alloc_items(a->count);
  const LeafItem<V>* x = a->items;
  const LeafItem<V>* xe = x + a->count;
  const LeafItem<V>* y = b->items;
  const LeafItem<V>* ye = y + b->count;
  LeafItem<V>* w = out;
  while (x != xe && y != ye) {
    if (x->key < y->key) {
      *w++ = *x++;
    } else if (y->key < x->key) {
      ++y;
    } else {
      ++x;
      ++y;
    }
  }
  while (x != xe) *w++ = *x++;
  return st.chunked(out, 0, static_cast<std::uint32_t>(w - out));
}

// join of two chunks (all of a's keys < all of b's): flat concatenation.
template <typename V>
Node<V>* leaf_concat(Store<V>& st, const Node<V>* a, const Node<V>* b) {
  st.note_leaf_op();
  LeafItem<V>* out = st.alloc_items(a->count + b->count);
  std::memcpy(out, a->items, a->count * sizeof(LeafItem<V>));
  std::memcpy(out + a->count, b->items, b->count * sizeof(LeafItem<V>));
  return st.chunked(out, 0, a->count + b->count);
}

}  // namespace detail

// splitm with the equal node reported (always needed for maps: union's
// value merge depends on it).
template <typename V>
Fiber splitm_fiber(Store<V>& st, Key s, Node<V>* t, Cell<V>* outL,
                   Cell<V>* outR, Cell<V>* outEq) {
  for (;;) {
    if (t == nullptr) {
      outL->write(nullptr);
      outR->write(nullptr);
      outEq->write(nullptr);
      co_return;
    }
    if (is_leaf(t)) {
      detail::note_leaf_op();
      detail::LeafSplit<V> sp = detail::split_leaf(st, s, t);
      outL->write(sp.less);
      outR->write(sp.greater);
      outEq->write(sp.equal);
      co_return;
    }
    if (s < t->key) {
      Node<V>* keep = st.make(t->key, t->pri, t->value, st.cell(), t->right);
      outR->write(keep);
      outR = keep->left;
      t = co_await *t->left;
    } else if (s > t->key) {
      Node<V>* keep = st.make(t->key, t->pri, t->value, t->left, st.cell());
      outL->write(keep);
      outL = keep->right;
      t = co_await *t->right;
    } else {
      outL->write(co_await *t->left);
      outR->write(co_await *t->right);
      outEq->write(t);
      co_return;
    }
  }
}

// Union with value merge: result value for a shared key k is
// merge(value_in_a, value_in_b) — note the operand order is by *map*, not
// by priority, so asymmetric merges (e.g. "b overwrites a") behave as
// documented regardless of which root wins the priority comparison.
template <typename V, typename Merge>
Fiber union_fiber(Store<V>& st, Cell<V>* a, Cell<V>* b, Cell<V>* out,
                  Merge merge, bool swapped = false) {
  Node<V>* ta = co_await *a;
  Node<V>* tb = co_await *b;
  if (ta == nullptr) {
    out->write(tb);
    co_return;
  }
  if (tb == nullptr) {
    out->write(ta);
    co_return;
  }
  bool flip = swapped;
  if (is_leaf(ta) && is_leaf(tb)) {
    detail::note_leaf_op();
    out->write(detail::leaf_union(st, ta, tb, merge, flip));
    co_return;
  }
  if (ta->pri < tb->pri) {
    std::swap(ta, tb);
    flip = !flip;
  }
  if (is_leaf(ta)) ta = detail::open_leaf(st, ta);
  Cell<V>* l2 = st.cell();
  Cell<V>* r2 = st.cell();
  Cell<V>* eq = st.cell();
  spawn(splitm_fiber(st, ta->key, tb, l2, r2, eq));
  Node<V>* res = st.make(ta->key, ta->pri, ta->value);
  spawn(union_fiber(st, ta->left, l2, res->left, merge, flip));
  spawn(union_fiber(st, ta->right, r2, res->right, merge, flip));
  // The root's final value depends on whether the key is shared; unlike the
  // pure-set union we must wait for splitm's verdict before publishing.
  Node<V>* dup = co_await *eq;
  if (dup != nullptr)
    res->value = flip ? merge(dup->value, ta->value)
                      : merge(ta->value, dup->value);
  out->write(res);
}

// Difference: drop the keys of `b` from `a` (b's values are irrelevant).
template <typename V>
Fiber join_fiber(Store<V>& st, Node<V>* t1, Node<V>* t2, Cell<V>* out) {
  for (;;) {
    if (t1 == nullptr) {
      out->write(t2);
      co_return;
    }
    if (t2 == nullptr) {
      out->write(t1);
      co_return;
    }
    if (is_leaf(t1) && is_leaf(t2)) {
      detail::note_leaf_op();
      out->write(detail::leaf_concat(st, t1, t2));
      co_return;
    }
    if (t1->pri >= t2->pri) {
      if (is_leaf(t1)) t1 = detail::open_leaf(st, t1);
      Node<V>* res = st.make(t1->key, t1->pri, t1->value, t1->left, st.cell());
      out->write(res);
      out = res->right;
      t1 = co_await *t1->right;
    } else {
      if (is_leaf(t2)) t2 = detail::open_leaf(st, t2);
      Node<V>* res = st.make(t2->key, t2->pri, t2->value, st.cell(), t2->right);
      out->write(res);
      out = res->left;
      t2 = co_await *t2->left;
    }
  }
}

template <typename V>
Fiber join_after_fiber(Store<V>& st, Cell<V>* dl, Cell<V>* dr, Cell<V>* out) {
  Node<V>* jl = co_await *dl;
  Node<V>* jr = co_await *dr;
  spawn(join_fiber(st, jl, jr, out));
}

template <typename V>
Fiber diff_fiber(Store<V>& st, Cell<V>* a, Cell<V>* b, Cell<V>* out) {
  Node<V>* t1 = co_await *a;
  Node<V>* t2 = co_await *b;
  if (t1 == nullptr) {
    out->write(nullptr);
    co_return;
  }
  if (t2 == nullptr) {
    out->write(t1);
    co_return;
  }
  if (is_leaf(t1) && is_leaf(t2)) {
    detail::note_leaf_op();
    out->write(detail::leaf_diff(st, t1, t2));
    co_return;
  }
  if (is_leaf(t1)) t1 = detail::open_leaf(st, t1);
  Cell<V>* l2 = st.cell();
  Cell<V>* r2 = st.cell();
  Cell<V>* eq = st.cell();
  spawn(splitm_fiber(st, t1->key, t2, l2, r2, eq));
  Cell<V>* dl = st.cell();
  Cell<V>* dr = st.cell();
  spawn(diff_fiber(st, t1->left, l2, dl));
  spawn(diff_fiber(st, t1->right, r2, dr));
  Node<V>* found = co_await *eq;
  if (found != nullptr) {
    spawn(join_after_fiber(st, dl, dr, out));
  } else {
    Node<V>* res = st.make(t1->key, t1->pri, t1->value, dl, dr);
    out->write(res);
  }
}

template <typename V, typename Merge>
Cell<V>* union_maps(Store<V>& st, Cell<V>* a, Cell<V>* b, Merge merge) {
  Cell<V>* out = st.cell();
  spawn(union_fiber(st, a, b, out, merge));
  return out;
}

template <typename V>
Cell<V>* diff_maps(Store<V>& st, Cell<V>* a, Cell<V>* b) {
  Cell<V>* out = st.cell();
  spawn(diff_fiber(st, a, b, out));
  return out;
}

// ---- joins / analysis --------------------------------------------------------

// Waits for every reachable cell; returns items in key order. Explicit
// stack: this runs on the caller's stack, and a skewed treap would overflow
// a recursive walk (see rt_treap.cpp).
template <typename V>
std::vector<std::pair<Key, V>> wait_items(Cell<V>* root_cell) {
  std::vector<std::pair<Key, V>> out;
  struct Frame {
    Cell<V>* cell;
    Node<V>* emit;
  };
  std::vector<Frame> stack;
  stack.push_back({root_cell, nullptr});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.cell == nullptr) {
      out.emplace_back(f.emit->key, f.emit->value);
      continue;
    }
    Node<V>* n = f.cell->wait_blocking();
    if (n == nullptr) continue;
    if (is_leaf(n)) {
      for (std::uint32_t i = 0; i < n->count; ++i)
        out.emplace_back(n->items[i].key, n->items[i].value);
      continue;
    }
    stack.push_back({n->right, nullptr});
    stack.push_back({nullptr, n});
    stack.push_back({n->left, nullptr});
  }
  return out;
}

// Waits for every reachable cell; returns the key count (flush-time
// recount for the facades; a leaf chunk contributes all its items).
template <typename V>
std::size_t wait_count(Cell<V>* root_cell) {
  std::size_t count = 0;
  std::vector<Cell<V>*> stack;
  stack.push_back(root_cell);
  while (!stack.empty()) {
    Node<V>* n = stack.back()->wait_blocking();
    stack.pop_back();
    if (n == nullptr) continue;
    if (is_leaf(n)) {
      count += n->count;
      continue;
    }
    ++count;
    stack.push_back(n->left);
    stack.push_back(n->right);
  }
  return count;
}

// Storage composition of a finished map (forces every reachable cell).
struct CacheEconomy {
  std::uint64_t internal_nodes = 0;
  std::uint64_t leaf_chunks = 0;
  std::uint64_t leaf_keys = 0;
};

template <typename V>
CacheEconomy cache_economy(Cell<V>* root_cell) {
  CacheEconomy ce;
  std::vector<Cell<V>*> stack;
  stack.push_back(root_cell);
  while (!stack.empty()) {
    Node<V>* n = stack.back()->wait_blocking();
    stack.pop_back();
    if (n == nullptr) continue;
    if (is_leaf(n)) {
      ++ce.leaf_chunks;
      ce.leaf_keys += n->count;
      continue;
    }
    ++ce.internal_nodes;
    stack.push_back(n->left);
    stack.push_back(n->right);
  }
  return ce;
}

namespace detail {

// Binary search inside a leaf chunk.
template <typename V>
std::optional<V> leaf_find(const Node<V>* n, Key k) {
  const LeafItem<V>* e = n->items;
  std::uint32_t lo = 0, hi = n->count;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (e[mid].key < k) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < n->count && e[lo].key == k) return e[lo].value;
  return std::nullopt;
}

}  // namespace detail

// Post-completion point lookup.
template <typename V>
std::optional<V> lookup(Cell<V>* root_cell, Key k) {
  const Node<V>* n = root_cell->peek();
  while (n != nullptr) {
    if (is_leaf(n)) return detail::leaf_find(n, k);
    if (k < n->key)
      n = n->left->peek();
    else if (k > n->key)
      n = n->right->peek();
    else
      return n->value;
  }
  return std::nullopt;
}

// Pipelined point lookup: forces only the cells along the search path, so it
// runs concurrently with in-flight batch unions (the paper's consumer
// descending into a producer's half-built tree).
template <typename V>
std::optional<V> lookup_wait(Cell<V>* root_cell, Key k) {
  const Node<V>* n = root_cell->wait_blocking();
  while (n != nullptr) {
    if (is_leaf(n)) return detail::leaf_find(n, k);
    if (k < n->key)
      n = n->left->wait_blocking();
    else if (k > n->key)
      n = n->right->wait_blocking();
    else
      return n->value;
  }
  return std::nullopt;
}

}  // namespace pwf::rt::map
