// Key-value treap maps on the coroutine futures runtime.
//
// The paper's treaps maintain a dynamic *dictionary*; real dictionaries
// carry values. This header generalizes the Section 3.2–3.3 operations to
// (key, value) nodes:
//   * union_fiber takes a Merge functor: when both maps contain a key, the
//     surviving node's value is merge(left_value, right_value) — which is
//     what makes batch aggregation (word counts, metric rollups) a single
//     pipelined union;
//   * diff_fiber removes keys (values of the second operand are ignored).
// The pipelining structure is identical to rt_treap.*; only the duplicate
// handling differs: union must *wait* for splitm's "found" result on each
// node (like diff does), because the merged value depends on it.
//
// Everything is templated on the value type V (trivially copyable, like all
// cell-carried values in this runtime) and lives header-only.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "runtime/concurrent_arena.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace pwf::rt::map {

using Key = std::int64_t;
using Pri = std::uint64_t;

template <typename V>
struct Node {
  Key key = 0;
  Pri pri = 0;
  V value{};
  FutCell<Node*>* left = nullptr;
  FutCell<Node*>* right = nullptr;
};

template <typename V>
using Cell = FutCell<Node<V>*>;

template <typename V>
class Store {
 public:
  explicit Store(std::uint64_t salt = 0x9e3779b97f4a7c15ULL) : salt_(salt) {}

  Pri priority(Key k) const {
    std::uint64_t x = static_cast<std::uint64_t>(k) ^ salt_;
    return splitmix64(x);
  }

  Cell<V>* cell() { return arena_.template create<Cell<V>>(); }
  Cell<V>* input(Node<V>* root) {
    Cell<V>* c = cell();
    c->preset(root);
    return c;
  }

  Node<V>* make(Key key, Pri pri, V value, Cell<V>* l, Cell<V>* r) {
    Node<V>* n = arena_.template create<Node<V>>();
    n->key = key;
    n->pri = pri;
    n->value = value;
    n->left = l;
    n->right = r;
    return n;
  }
  Node<V>* make(Key key, Pri pri, V value) {
    return make(key, pri, value, cell(), cell());
  }

  // O(n) construction over key-sorted, duplicate-free items (input data).
  Node<V>* build(std::span<const std::pair<Key, V>> sorted) {
    std::vector<Node<V>*> spine;
    for (const auto& [k, v] : sorted) {
      Node<V>* n = make(k, priority(k), v, input(nullptr), input(nullptr));
      Node<V>* last_popped = nullptr;
      while (!spine.empty() && spine.back()->pri < n->pri) {
        last_popped = spine.back();
        spine.pop_back();
      }
      if (last_popped != nullptr) n->left = input(last_popped);
      if (!spine.empty()) spine.back()->right = input(n);
      spine.push_back(n);
    }
    return spine.empty() ? nullptr : spine.front();
  }

  std::size_t bytes_used() const { return arena_.bytes_used(); }

 private:
  std::uint64_t salt_;
  ConcurrentArena arena_;
};

// splitm with the equal node reported (always needed for maps: union's
// value merge depends on it).
template <typename V>
Fiber splitm_fiber(Store<V>& st, Key s, Node<V>* t, Cell<V>* outL,
                   Cell<V>* outR, Cell<V>* outEq) {
  for (;;) {
    if (t == nullptr) {
      outL->write(nullptr);
      outR->write(nullptr);
      outEq->write(nullptr);
      co_return;
    }
    if (s < t->key) {
      Node<V>* keep = st.make(t->key, t->pri, t->value, st.cell(), t->right);
      outR->write(keep);
      outR = keep->left;
      t = co_await *t->left;
    } else if (s > t->key) {
      Node<V>* keep = st.make(t->key, t->pri, t->value, t->left, st.cell());
      outL->write(keep);
      outL = keep->right;
      t = co_await *t->right;
    } else {
      outL->write(co_await *t->left);
      outR->write(co_await *t->right);
      outEq->write(t);
      co_return;
    }
  }
}

// Union with value merge: result value for a shared key k is
// merge(value_in_a, value_in_b) — note the operand order is by *map*, not
// by priority, so asymmetric merges (e.g. "b overwrites a") behave as
// documented regardless of which root wins the priority comparison.
template <typename V, typename Merge>
Fiber union_fiber(Store<V>& st, Cell<V>* a, Cell<V>* b, Cell<V>* out,
                  Merge merge, bool swapped = false) {
  Node<V>* ta = co_await *a;
  Node<V>* tb = co_await *b;
  if (ta == nullptr) {
    out->write(tb);
    co_return;
  }
  if (tb == nullptr) {
    out->write(ta);
    co_return;
  }
  bool flip = swapped;
  if (ta->pri < tb->pri) {
    std::swap(ta, tb);
    flip = !flip;
  }
  Cell<V>* l2 = st.cell();
  Cell<V>* r2 = st.cell();
  Cell<V>* eq = st.cell();
  spawn(splitm_fiber(st, ta->key, tb, l2, r2, eq));
  Node<V>* res = st.make(ta->key, ta->pri, ta->value);
  spawn(union_fiber(st, ta->left, l2, res->left, merge, flip));
  spawn(union_fiber(st, ta->right, r2, res->right, merge, flip));
  // The root's final value depends on whether the key is shared; unlike the
  // pure-set union we must wait for splitm's verdict before publishing.
  Node<V>* dup = co_await *eq;
  if (dup != nullptr)
    res->value = flip ? merge(dup->value, ta->value)
                      : merge(ta->value, dup->value);
  out->write(res);
}

// Difference: drop the keys of `b` from `a` (b's values are irrelevant).
template <typename V>
Fiber join_fiber(Store<V>& st, Node<V>* t1, Node<V>* t2, Cell<V>* out) {
  for (;;) {
    if (t1 == nullptr) {
      out->write(t2);
      co_return;
    }
    if (t2 == nullptr) {
      out->write(t1);
      co_return;
    }
    if (t1->pri >= t2->pri) {
      Node<V>* res = st.make(t1->key, t1->pri, t1->value, t1->left, st.cell());
      out->write(res);
      out = res->right;
      t1 = co_await *t1->right;
    } else {
      Node<V>* res = st.make(t2->key, t2->pri, t2->value, st.cell(), t2->right);
      out->write(res);
      out = res->left;
      t2 = co_await *t2->left;
    }
  }
}

template <typename V>
Fiber join_after_fiber(Store<V>& st, Cell<V>* dl, Cell<V>* dr, Cell<V>* out) {
  Node<V>* jl = co_await *dl;
  Node<V>* jr = co_await *dr;
  spawn(join_fiber(st, jl, jr, out));
}

template <typename V>
Fiber diff_fiber(Store<V>& st, Cell<V>* a, Cell<V>* b, Cell<V>* out) {
  Node<V>* t1 = co_await *a;
  Node<V>* t2 = co_await *b;
  if (t1 == nullptr) {
    out->write(nullptr);
    co_return;
  }
  if (t2 == nullptr) {
    out->write(t1);
    co_return;
  }
  Cell<V>* l2 = st.cell();
  Cell<V>* r2 = st.cell();
  Cell<V>* eq = st.cell();
  spawn(splitm_fiber(st, t1->key, t2, l2, r2, eq));
  Cell<V>* dl = st.cell();
  Cell<V>* dr = st.cell();
  spawn(diff_fiber(st, t1->left, l2, dl));
  spawn(diff_fiber(st, t1->right, r2, dr));
  Node<V>* found = co_await *eq;
  if (found != nullptr) {
    spawn(join_after_fiber(st, dl, dr, out));
  } else {
    Node<V>* res = st.make(t1->key, t1->pri, t1->value, dl, dr);
    out->write(res);
  }
}

template <typename V, typename Merge>
Cell<V>* union_maps(Store<V>& st, Cell<V>* a, Cell<V>* b, Merge merge) {
  Cell<V>* out = st.cell();
  spawn(union_fiber(st, a, b, out, merge));
  return out;
}

template <typename V>
Cell<V>* diff_maps(Store<V>& st, Cell<V>* a, Cell<V>* b) {
  Cell<V>* out = st.cell();
  spawn(diff_fiber(st, a, b, out));
  return out;
}

// ---- joins / analysis --------------------------------------------------------

// Waits for every reachable cell; returns items in key order. Explicit
// stack: this runs on the caller's stack, and a skewed treap would overflow
// a recursive walk (see rt_treap.cpp).
template <typename V>
std::vector<std::pair<Key, V>> wait_items(Cell<V>* root_cell) {
  std::vector<std::pair<Key, V>> out;
  struct Frame {
    Cell<V>* cell;
    Node<V>* emit;
  };
  std::vector<Frame> stack;
  stack.push_back({root_cell, nullptr});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.cell == nullptr) {
      out.emplace_back(f.emit->key, f.emit->value);
      continue;
    }
    Node<V>* n = f.cell->wait_blocking();
    if (n == nullptr) continue;
    stack.push_back({n->right, nullptr});
    stack.push_back({nullptr, n});
    stack.push_back({n->left, nullptr});
  }
  return out;
}

// Waits for every reachable cell; returns the node count (flush-time
// recount for the facades).
template <typename V>
std::size_t wait_count(Cell<V>* root_cell) {
  std::size_t count = 0;
  std::vector<Cell<V>*> stack;
  stack.push_back(root_cell);
  while (!stack.empty()) {
    Node<V>* n = stack.back()->wait_blocking();
    stack.pop_back();
    if (n == nullptr) continue;
    ++count;
    stack.push_back(n->left);
    stack.push_back(n->right);
  }
  return count;
}

// Post-completion point lookup.
template <typename V>
std::optional<V> lookup(Cell<V>* root_cell, Key k) {
  const Node<V>* n = root_cell->peek();
  while (n != nullptr) {
    if (k < n->key)
      n = n->left->peek();
    else if (k > n->key)
      n = n->right->peek();
    else
      return n->value;
  }
  return std::nullopt;
}

// Pipelined point lookup: forces only the cells along the search path, so it
// runs concurrently with in-flight batch unions (the paper's consumer
// descending into a producer's half-built tree).
template <typename V>
std::optional<V> lookup_wait(Cell<V>* root_cell, Key k) {
  const Node<V>* n = root_cell->wait_blocking();
  while (n != nullptr) {
    if (k < n->key)
      n = n->left->wait_blocking();
    else if (k > n->key)
      n = n->right->wait_blocking();
    else
      return n->value;
  }
  return std::nullopt;
}

}  // namespace pwf::rt::map
