// Key-value treap maps on the coroutine futures runtime — a thin
// instantiation shim, exactly like rt_treap.hpp is for sets.
//
// The algorithm bodies live in src/pipelined/treap.hpp, parameterized on an
// Entry policy: maps are the same coroutines as the paper's set treaps
// instantiated with MapEntry<V> (key + value, union takes a Merge functor
// for shared keys, difference ignores the second operand's values), and
// augmented maps add a PAM-style aggregation policy A (AugEntry — every
// node and leaf chunk maintains A::combine over its subtree; see
// docs/augmentation.md). This header only names the runtime instantiations
// and provides the drivers and blocking walks.
//
// Storage is chunked like the set treaps (docs/storage.md): the shared
// LeafEntryT grows a value column for maps; subtrees at or below the
// store's leaf capacity are sorted flat (key, pri, value) arrays processed
// by branch-free merge loops, and the fibers pipeline only the internal top
// of the tree.
//
// Everything is templated on the value type V (trivially copyable, like all
// cell-carried values in this runtime) and lives header-only.
#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "pipelined/rt_exec.hpp"
#include "pipelined/treap.hpp"
#include "pipelined/treap_walk.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"

namespace pwf::rt::map {

namespace pt = pipelined::treap;

using Key = pt::Key;
using Pri = pt::Pri;

// Default flat-chunk capacity (same policy as the set treaps).
inline constexpr std::size_t kDefaultLeafCapacity = pt::kDefaultLeafCapacity;

// Map entry over value type V, optionally augmented with policy A (an
// AugOps type like pt::SumAug<V>; void = unaugmented).
template <typename V, typename A = void>
using Entry =
    std::conditional_t<std::is_void_v<A>, pt::MapEntry<V>,
                       pt::AugEntry<pt::MapEntry<V>, A>>;

template <typename V, typename A = void>
using Node = pt::Node<pipelined::RtPolicy, Entry<V, A>>;

template <typename V, typename A = void>
using Cell = FutCell<Node<V, A>*>;

template <typename V, typename A = void>
using LeafItem = pt::LeafEntryT<Entry<V, A>>;

template <typename V, typename A = void>
using Store = pt::Store<pipelined::RtPolicy, Entry<V, A>>;

// Word-sized unaugmented payloads keep the node inside one cache line
// (checked generically by Store; this spelling is the one CI's layout job
// compiles).
static_assert(sizeof(Node<std::int64_t>) <= 64,
              "map node with a word-sized payload must fit a cache line");

using pt::is_leaf;

// ---- drivers ---------------------------------------------------------------
//
// Generic over the Entry policy E so one driver serves plain and augmented
// maps; E is deduced from the store.

// Union with value merge: result value for a shared key k is
// merge(value_in_a, value_in_b) — note the operand order is by *map*, not
// by priority (the shared body's `flip` tracks priority swaps), so
// asymmetric merges (e.g. "b overwrites a") behave as documented.
template <typename E, typename Merge>
pt::Cell<pipelined::RtPolicy, E>* union_maps(
    pt::Store<pipelined::RtPolicy, E>& st,
    pt::Cell<pipelined::RtPolicy, E>* a, pt::Cell<pipelined::RtPolicy, E>* b,
    Merge merge) {
  pipelined::RtExec ex;
  auto* out = st.cell();
  ex.fork(pt::union_into(ex, st, a, b, out, merge));
  return out;
}

// Difference: drop the keys of `b` from `a` (b's values are irrelevant).
template <typename E>
pt::Cell<pipelined::RtPolicy, E>* diff_maps(
    pt::Store<pipelined::RtPolicy, E>& st,
    pt::Cell<pipelined::RtPolicy, E>* a, pt::Cell<pipelined::RtPolicy, E>* b) {
  pipelined::RtExec ex;
  auto* out = st.cell();
  ex.fork(pt::diff_into(ex, st, a, b, out));
  return out;
}

// Rebalance primitives for the contention-adaptive sharded map facade,
// mirroring rt::treap::split_treaps/join_treaps (docs/service.md).

// Pipelined range split: keys < pivot into *outL, keys >= pivot into *outR.
template <typename E>
void split_maps(pt::Store<pipelined::RtPolicy, E>& st,
                pt::Cell<pipelined::RtPolicy, E>* in, Key pivot,
                pt::Cell<pipelined::RtPolicy, E>* outL,
                pt::Cell<pipelined::RtPolicy, E>* outR) {
  pipelined::RtExec ex;
  ex.fork(pt::split_at(ex, st, pivot, in, outL, outR));
  if (Scheduler* s = Scheduler::current()) s->note_rebalance();
}

// Pipelined range-disjoint join: every key of `a` < every key of `b`.
template <typename E>
pt::Cell<pipelined::RtPolicy, E>* join_maps(
    pt::Store<pipelined::RtPolicy, E>& st,
    pt::Cell<pipelined::RtPolicy, E>* a, pt::Cell<pipelined::RtPolicy, E>* b) {
  pipelined::RtExec ex;
  auto* out = st.cell();
  ex.fork(pt::join_entry(ex, st, a, b, out));
  if (Scheduler* s = Scheduler::current()) s->note_rebalance();
  return out;
}

// ---- joins / analysis ------------------------------------------------------
//
// All walks are the shared explicit-stack visitors of
// pipelined/treap_walk.hpp with a wait_blocking (pipelining) or peek
// (post-completion) force.

namespace detail {
inline constexpr auto kWait = [](auto* c) { return c->wait_blocking(); };
inline constexpr auto kPeek = [](auto* c) { return c->peek(); };
}  // namespace detail

// Waits for every reachable cell; returns items in key order.
template <typename E>
auto wait_items(pt::Cell<pipelined::RtPolicy, E>* root_cell) {
  std::vector<std::pair<Key, typename E::Value>> out;
  pt::visit_items(root_cell, detail::kWait,
                  [&](Key k, const typename E::Value& v) {
                    out.emplace_back(k, v);
                  });
  return out;
}

// Waits for every reachable cell; returns the key count (flush-time
// recount for the facades; a leaf chunk contributes all its items).
template <typename E>
std::size_t wait_count(pt::Cell<pipelined::RtPolicy, E>* root_cell) {
  return pt::count_keys(root_cell, detail::kWait);
}

// Storage composition of a finished map (forces every reachable cell).
using CacheEconomy = pt::CacheEconomy;

template <typename E>
CacheEconomy cache_economy(pt::Cell<pipelined::RtPolicy, E>* root_cell) {
  CacheEconomy ce;
  pt::visit_nodes(root_cell, detail::kWait, [&](auto* n) {
    if (pt::is_leaf(n)) {
      ++ce.leaf_chunks;
      ce.leaf_keys += n->count;
    } else {
      ++ce.internal_nodes;
    }
  });
  return ce;
}

// Post-completion point lookup.
template <typename E>
std::optional<typename E::Value> lookup(
    pt::Cell<pipelined::RtPolicy, E>* root_cell, Key k) {
  return pt::lookup(root_cell, k, detail::kPeek);
}

// Pipelined point lookup: forces only the cells along the search path, so it
// runs concurrently with in-flight batch unions (the paper's consumer
// descending into a producer's half-built tree).
template <typename E>
std::optional<typename E::Value> lookup_wait(
    pt::Cell<pipelined::RtPolicy, E>* root_cell, Key k) {
  return pt::lookup(root_cell, k, detail::kWait);
}

// Range aggregate over a (finished or in-flight) augmented map: O(lg n)
// forced cells, combine applied in key order (treap_walk.hpp).
template <typename E>
  requires(E::kHasAug)
auto aggregate_wait(pt::Cell<pipelined::RtPolicy, E>* root_cell, Key lo,
                    Key hi) {
  return pt::aggregate(root_cell, lo, hi, detail::kWait);
}

}  // namespace pwf::rt::map
