// ParallelSet — the adoptable front door to the runtime treap operations.
//
// A sorted set of int64 keys supporting *batch* mutation: each batch is one
// parallel treap union / difference / intersection (Sections 3.2–3.3 of the
// paper) executed on the coroutine futures runtime, rather than m
// sequential updates. Batches are synchronous at the API boundary: the call
// returns once the result tree is fully built, so reads (`contains`,
// `keys`, iteration) never observe pending futures.
//
// The set borrows a Scheduler (one scheduler per process may be alive; see
// runtime/scheduler.hpp) and owns its node storage.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/rt_treap.hpp"
#include "runtime/scheduler.hpp"

namespace pwf::rt {

class ParallelSet {
 public:
  using Key = treap::Key;

  explicit ParallelSet(Scheduler& sched,
                       std::uint64_t salt = 0x9e3779b97f4a7c15ULL);

  // Initial contents (cheaper than insert_batch on an empty set).
  ParallelSet(Scheduler& sched, std::span<const Key> keys,
              std::uint64_t salt = 0x9e3779b97f4a7c15ULL);

  ParallelSet(const ParallelSet&) = delete;
  ParallelSet& operator=(const ParallelSet&) = delete;

  // Batch mutators — one pipelined set operation each; duplicates within the
  // batch and against the set are handled (set semantics). Unsorted input is
  // fine; it is sorted internally.
  void insert_batch(std::span<const Key> keys);  // set = set ∪ keys
  void erase_batch(std::span<const Key> keys);   // set = set \ keys
  void retain_batch(std::span<const Key> keys);  // set = set ∩ keys

  bool contains(Key k) const;
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::vector<Key> keys() const;  // in order
  int height() const;

 private:
  // Builds a treap over a batch (sorted + deduplicated copy).
  treap::Cell* build_batch(std::span<const Key> keys);
  // Blocks until the tree under `root_` is fully written; refreshes size_.
  void join_and_recount();

  Scheduler& sched_;
  treap::Store store_;
  treap::Cell* root_;
  std::size_t size_ = 0;
};

}  // namespace pwf::rt
