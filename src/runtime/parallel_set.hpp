// ParallelSet — the adoptable front door to the runtime treap operations.
//
// A sorted set of int64 keys supporting *batch* mutation: each batch is one
// parallel treap union / difference / intersection (Sections 3.2–3.3 of the
// paper) executed on the coroutine futures runtime, rather than m
// sequential updates.
//
// Batches are **asynchronous and pipelined across operations**: a mutator
// chains its treap op onto the current root cell — which may still be
// materializing — and returns immediately. Successive batches overlap
// exactly as `union(union(t, b1), b2)` does inside the paper's algorithms:
// the second union descends into the first one's output while it is still
// being written. Quiescence is explicit (`flush()`) or implied by the
// whole-tree reads (`size()` when stale, `keys()`, `height()`); point reads
// (`contains`) force only the cells along their search path, so they run
// concurrently with in-flight batches and see the newest root published
// before they started.
//
// Thread contract: one mutator thread at a time (batches chain through a
// single root, like any sequential API); any number of concurrent reader
// threads may call `contains`, `keys`, `height` and `size` while batches
// are in flight. `compact()` may run concurrently with readers: reads
// announce themselves through a seq_cst reader count before loading the
// root, and compact publishes the fresh root before spinning the count down
// to zero — so a reader either sees the new root or finishes on the old
// store before it is freed (docs/service.md).
//
// The set borrows a Scheduler (one scheduler per process may be alive; see
// runtime/scheduler.hpp) and owns its node storage.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "runtime/rt_async.hpp"
#include "runtime/rt_treap.hpp"
#include "runtime/scheduler.hpp"

namespace pwf::rt {

// SetSnapshot — an immutable, epoch-pinned view of a ParallelSet.
//
// Obtained from ParallelSet::snapshot(); holds a shared_ptr to the store of
// the epoch it was taken in, so the nodes stay alive across any number of
// subsequent compact() calls (refcounted epoch retirement). Reads are
// lock-free: no reader count, no mutex — the root cell is fixed and every
// reachable cell is written exactly once, so traversal is wait_blocking on
// cells at most (pipelining with a still-materializing batch chained before
// the snapshot) and plain loads afterwards.
class SetSnapshot {
 public:
  using Key = treap::Key;

  // Forces only the cells along the search path.
  bool contains(Key k) const;

  std::size_t size() const;       // forces the whole pinned tree
  std::vector<Key> keys() const;  // in order; forces the whole pinned tree

 private:
  friend class ParallelSet;

  SetSnapshot(std::shared_ptr<const treap::Store> store,
              std::vector<std::shared_ptr<const treap::Store>> merged,
              treap::Cell* root)
      : store_(std::move(store)), merged_(std::move(merged)), root_(root) {}

  std::shared_ptr<const treap::Store> store_;  // pins the epoch's arena
  // Stores of shards absorbed by adaptive merges: the pinned tree can still
  // reference their nodes until the facade's next compact() rebuild.
  std::vector<std::shared_ptr<const treap::Store>> merged_;
  treap::Cell* root_;
};

class ParallelSet {
 public:
  using Key = treap::Key;

  // Service-layer observability (relaxed counters, like Scheduler::Stats).
  struct Stats {
    std::uint64_t batches = 0;      // batch mutators issued
    std::uint64_t overlapped = 0;   // issued while the root was still materializing
    std::uint64_t max_pending = 0;  // high-water mark of unflushed batches
    std::uint64_t flushes = 0;      // quiescence points (explicit + implied)
    std::uint64_t epochs = 0;       // compactions (store replacements)
    std::uint64_t arena_bytes = 0;  // current store footprint
  };

  // Software cache-economy of the current snapshot (docs/storage.md):
  // storage composition plus arena footprint, for the E19/E24 columns.
  struct CacheEconomy {
    std::uint64_t internal_nodes = 0;  // one cache line each
    std::uint64_t leaf_chunks = 0;     // flat sorted key runs
    std::uint64_t leaf_keys = 0;       // keys living inside chunks
    std::uint64_t leaf_ops = 0;        // chunk merges/splits on this store
    std::uint64_t arena_bytes = 0;     // store footprint
    std::uint64_t wasted_padding = 0;  // arena alignment + dead-tail waste
  };

  explicit ParallelSet(Scheduler& sched,
                       std::uint64_t salt = 0x9e3779b97f4a7c15ULL,
                       std::size_t leaf_cap =
                           pipelined::treap::kDefaultLeafCapacity);

  // Initial contents (cheaper than insert_batch on an empty set).
  ParallelSet(Scheduler& sched, std::span<const Key> keys,
              std::uint64_t salt = 0x9e3779b97f4a7c15ULL,
              std::size_t leaf_cap = pipelined::treap::kDefaultLeafCapacity);

  ParallelSet(const ParallelSet&) = delete;
  ParallelSet& operator=(const ParallelSet&) = delete;

  // Waits for frame-pool quiescence: fibers of a chained batch may outlive
  // the last written cell of the result tree (their outputs simply aren't
  // part of it) and they read this set's arena until they finish. Skipped
  // when no Scheduler is alive — nothing could drain the frames, so waiting
  // would hang (fibers still queued at scheduler shutdown were dropped).
  ~ParallelSet();

  // Batch mutators — one pipelined set operation each, chained onto the
  // (possibly still-materializing) root; they return without joining.
  // Duplicates within the batch and against the set are handled (set
  // semantics). Unsorted input is fine; it is sorted internally.
  void insert_batch(std::span<const Key> keys);  // set = set ∪ keys
  void erase_batch(std::span<const Key> keys);   // set = set \ keys
  void retain_batch(std::span<const Key> keys);  // set = set ∩ keys

  // Quiescence point: blocks until every pending batch has fully
  // materialized, and refreshes the cached size.
  void flush() const { force_recount(); }

  // Async quiescence — the server-side flush: spawns a fiber that
  // co_awaits every cell of the current epoch-pinned tree and then writes
  // `done`, so a server fiber can await quiescence without blocking its
  // worker thread (docs/service.md). Observational only: counts a flush
  // but leaves pending/size accounting to the blocking paths.
  void on_flush(FutCell<int>& done) const;

  // The epoch pin the async walks travel with (rt_async.hpp); O(1).
  rtasync::Pinned<treap::Store, treap::Cell> pinned() const;

  // Quiescence + storage epoch: rebuilds the set into a fresh chunked store
  // and frees every node superseded by past batches (the arena is
  // monotonic, so a long-lived service must compact periodically). Safe
  // against concurrent readers: the old store is freed only after the
  // reader count drains (see the thread contract above). Still a mutator —
  // one at a time, not concurrent with batch calls.
  void compact();

  // Pins the current epoch and root into an immutable lock-free view. May
  // be called from any reader thread; the returned snapshot stays valid
  // (and its reads race-free) across later batches and compactions — the
  // pinned store is retired only when the last snapshot holding it drops.
  SetSnapshot snapshot() const;

  // Forces only the cells along the search path (paper-style: a consumer
  // descends into a tree whose producer may still be writing it).
  bool contains(Key k) const;

  std::size_t size() const;  // lazily maintained; recounts only when stale
  bool empty() const { return size() == 0; }
  std::vector<Key> keys() const;  // in order; forces the whole snapshot
  int height() const;             // forces the whole snapshot

  Stats stats() const;
  CacheEconomy cache_economy() const;  // forces the whole snapshot

  // ---- adaptive-sharding rebalance protocol (docs/service.md) ------------
  //
  // Mutator-class calls used by the sharded facades' contention-adaptive
  // rebalancer. Both halves of a split and a merge are pipelined treap ops
  // chained like any batch: they return immediately and materialize on the
  // scheduler, overlapping in-flight batches.

  // Phase 1 of a split: forks a pipelined split at `pivot` and returns a
  // new set owning the keys >= pivot (sharing this set's store and salt, so
  // node priorities stay consistent across future joins). This set keeps
  // answering from the *full* pre-split tree until complete_split() installs
  // the < pivot root — the caller republishes its routing table in between,
  // so no reader routed by the old table can miss a key.
  std::unique_ptr<ParallelSet> split_off(Key pivot);
  // Phase 2: publish the keys-below-pivot root computed by split_off().
  void complete_split();

  // Concatenates `right` — every key of which must be >= every key of this
  // set (adjacent shard ranges) — onto this pipeline with a pipelined join.
  // `right` becomes an absorbed husk: its store is kept alive by this set
  // until the next compact(), its counters fold into this set's, and its
  // destructor skips quiescence (this pipeline owns the in-flight work now).
  // The caller destroys the husk once no reader can still route to it.
  void absorb(ParallelSet& right);

  // Unflushed batch depth of this pipeline (adaptive facade heat stats).
  std::uint64_t pending() const {
    return pending_.load(std::memory_order_relaxed);
  }

 private:
  // Shares an existing store: the >= pivot half made by split_off().
  ParallelSet(Scheduler& sched, std::shared_ptr<treap::Store> store,
              treap::Cell* root, std::uint64_t salt, std::size_t leaf_cap);
  // Builds a treap over a batch (sorted + deduplicated copy).
  treap::Cell* build_batch(std::span<const Key> keys);
  // Publishes `next` as the new root and maintains the pending/overlap
  // accounting shared by all three mutators.
  void chain(treap::Cell* next);
  // The pending/size bookkeeping of chain() without the root publish —
  // rebalance ops account here (they are pipeline work, not batches).
  void account_chain();
  // Blocks until the tree under the current root is fully written; refreshes
  // size_. const: logically a read (all mutable state is cache/accounting).
  void force_recount() const;

  Scheduler& sched_;
  std::uint64_t salt_;
  std::size_t leaf_cap_;
  // Replaced wholesale by compact(); shared so snapshots can pin an epoch.
  std::shared_ptr<treap::Store> store_;
  // Stores of shards this set absorbed: the live tree references their
  // nodes until compact() rebuilds into a fresh arena. Guarded by snap_mu_
  // (stats()/snapshot() read it while the mutator appends).
  std::vector<std::shared_ptr<const treap::Store>> keep_alive_;
  // The < pivot root between split_off() and complete_split().
  treap::Cell* split_pending_ = nullptr;
  // Set by absorb() on the absorbed husk: its in-flight work now belongs to
  // the surviving pipeline, so the destructor must not wait for it.
  bool released_ = false;
  std::atomic<treap::Cell*> root_;

  // Pairs (store_, root_) for snapshot() against compact()'s swap. Never
  // held while waiting on cells, so snapshot() is O(1).
  mutable std::mutex snap_mu_;

  // Readers in flight (seq_cst Dekker pair with compact()'s root publish).
  mutable std::atomic<std::uint64_t> active_readers_{0};

  mutable std::atomic<std::size_t> size_{0};
  mutable std::atomic<bool> size_valid_{true};
  mutable std::atomic<std::uint64_t> pending_{0};
  mutable std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> overlapped_{0};
  std::atomic<std::uint64_t> max_pending_{0};
  std::atomic<std::uint64_t> epochs_{0};
};

}  // namespace pwf::rt
