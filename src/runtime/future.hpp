// Write-once future cells with coroutine suspension — the runtime's
// counterpart of the paper's future cells.
//
//   * `co_await cell` is the touch operation: if the value is present it
//     continues immediately; otherwise the coroutine parks itself *in the
//     cell* (an intrusive waiter node living in the awaiter, which sits in
//     the suspended frame) — O(1), no allocation.
//   * `cell.write(v)` is the write: publishes the value and reposts every
//     parked waiter to the scheduler — the paper's immediate reactivation.
//   * Cells are written at most once (checked); linear programs also read
//     them at most once, but the waiter list supports any number of readers
//     (the general, non-linear model of Section 2).
//
// The cell is a single atomic word: kEmpty, a pointer to the waiter list, or
// kWritten. External (non-worker) threads can block on a cell with
// wait_blocking(), used by benches to join a whole computation.
#pragma once

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <type_traits>

#include "runtime/scheduler.hpp"
#include "support/check.hpp"

// Opt-in runtime checker (-DPWF_ANALYZE=ON): every preset/write/touch/park
// is logged and audited at Scheduler shutdown (see src/analyze and
// docs/analysis.md). Compiles to nothing when the option is off.
#if PWF_ANALYZE
#include "analyze/rt_recorder.hpp"
#define PWF_RT_RECORD(kind, cell) \
  ::pwf::rt::analyze::record(::pwf::rt::analyze::Ev::kind, (cell))
#else
#define PWF_RT_RECORD(kind, cell) ((void)0)
#endif

namespace pwf::rt {

template <typename T>
class FutCell {
  static_assert(std::is_trivially_copyable_v<T>,
                "cells carry pointer-like values, as in the paper");

  static constexpr std::uintptr_t kEmpty = 0;
  static constexpr std::uintptr_t kWritten = 1;
  // Set by wait_blocking() to announce a blocked external thread; travels in
  // the same atomic word as the waiter-list pointer (frames are ≥8-aligned,
  // so the low bits of a Waiter* are free). The writer learns about blocked
  // threads from the value its publishing exchange returns — no separate
  // flag read after publication, when the joined cell may already be freed.
  static constexpr std::uintptr_t kBlocked = 2;

  struct Waiter {
    std::coroutine_handle<> handle;
    Waiter* next = nullptr;
  };

 public:
  // The carried value type (generic walks — rt_async.hpp — recover the
  // node type from a cell pointer through this).
  using value_type = T;

#if PWF_ANALYZE
  // Cells are arena/stack allocated, so one address can host several cell
  // incarnations; the recorder uses creates to keep them apart.
  FutCell() { PWF_RT_RECORD(kCreate, this); }
#else
  FutCell() = default;
#endif
  FutCell(const FutCell&) = delete;
  FutCell& operator=(const FutCell&) = delete;

  // Input data: mark written before any concurrent access. A cell that is
  // already written (double preset / preset-after-write) or already has a
  // parked reader would be silently corrupted, so both abort.
  void preset(T v) {
    PWF_RT_RECORD(kPreset, this);
    value_ = v;
    const std::uintptr_t old =
        state_.exchange(kWritten, std::memory_order_release);
    PWF_CHECK_MSG(old == kEmpty,
                  "preset of a non-empty cell (already written or a reader "
                  "is already waiting)");
  }

  bool written() const {
    return state_.load(std::memory_order_acquire) == kWritten;
  }

  // The write action. Publishes the value, then reactivates all waiters.
  void write(T v) {
    PWF_RT_RECORD(kWrite, this);
    value_ = v;
    const std::uintptr_t old =
        state_.exchange(kWritten, std::memory_order_acq_rel);
    PWF_CHECK_MSG(old != kWritten, "future cell written twice");
    // The exchange that published the value also collected the kBlocked
    // announcement, so the futex wake is issued only when some thread is
    // (or was) inside wait_blocking(). Almost every cell is consumed by
    // parked fibers, not blocked threads — skipping the syscall on those
    // keeps the hot write path cheap.
    if (old & kBlocked) state_.notify_all();
    Waiter* w = reinterpret_cast<Waiter*>(old & ~kBlocked);
    if (w != nullptr) {
      // Resolve the scheduler once for the whole repost loop — this is the
      // hot write path, and a long waiter list should not pay one atomic
      // load of the global per waiter. Writes may come from worker fibers,
      // external threads, or fibers running on the reactor thread during
      // its shutdown drain (io_reactor.cpp) — all of them repost through
      // post(), whose fence-audited Dekker handshake covers the non-worker
      // cases.
      Scheduler* s = Scheduler::current();
      PWF_CHECK(s != nullptr);
      do {
        Waiter* next = w->next;  // w may die the instant its coroutine runs
        s->post(w->handle);
        w = next;
      } while (w != nullptr);
    }
  }

  struct Awaiter {
    FutCell& cell;
    Waiter node;

    bool await_ready() const {
      return cell.state_.load(std::memory_order_acquire) == kWritten;
    }
    bool await_suspend(std::coroutine_handle<> h) {
      node.handle = h;
      // The successful CAS publishes the waiter: from that instant another
      // worker may resume and destroy this coroutine frame — and the
      // awaiter (with its `cell` reference) lives in the frame. Anything
      // needed after publication must be copied out first.
      FutCell* const c = &cell;
      std::uintptr_t s = c->state_.load(std::memory_order_acquire);
      for (;;) {
        if (s == kWritten) return false;  // written meanwhile: keep running
        node.next = reinterpret_cast<Waiter*>(s & ~kBlocked);
        if (c->state_.compare_exchange_weak(
                s, reinterpret_cast<std::uintptr_t>(&node) | (s & kBlocked),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          PWF_RT_RECORD(kPark, c);
          return true;  // parked; the writer will repost us
        }
      }
    }
    T await_resume() const {
      PWF_RT_RECORD(kTouch, &cell);
      return cell.value_;
    }
  };

  Awaiter operator co_await() { return Awaiter{*this, {}}; }

  // Blocking read for external threads (joins a computation from main).
  T wait_blocking() const {
    // Announce the blocked thread by folding kBlocked into the state word
    // (kept across waiter-list pushes by await_suspend). The CAS and the
    // writer's exchange hit the same word, so either the writer's exchange
    // returns the bit and it notifies, or our CAS fails against kWritten and
    // we never sleep — no separate flag, no fences.
    std::uintptr_t s = state_.load(std::memory_order_acquire);
    while (s != kWritten && !(s & kBlocked)) {
      if (state_.compare_exchange_weak(s, s | kBlocked,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        s |= kBlocked;
      }
    }
    for (;;) {
      if (s == kWritten) return value_;
      state_.wait(s, std::memory_order_acquire);
      s = state_.load(std::memory_order_acquire);
    }
  }

  // Post-completion access (analysis/validation, mirrors cm peek).
  T peek() const {
    PWF_CHECK_MSG(written(), "peek of unwritten cell");
    return value_;
  }

 private:
  // mutable: wait_blocking() is a const read, but announces itself by
  // setting kBlocked in the word.
  mutable std::atomic<std::uintptr_t> state_{kEmpty};
  T value_{};
};

}  // namespace pwf::rt
