// Parallel (real-execution) 2-6 tree bulk insertion — Section 3.4 on the
// coroutine futures runtime. The wave coroutine and the level-array driver
// are the shared templates in src/pipelined/ttree.hpp, instantiated on the
// RtExec substrate; this file adds the blocking joins.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pipelined/rt_exec.hpp"
#include "pipelined/ttree.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"

namespace pwf::rt::ttree {

using Key = pipelined::ttree::Key;

inline constexpr int kMaxKeys = pipelined::ttree::kMaxKeys;
inline constexpr int kMaxChildren = pipelined::ttree::kMaxChildren;

using TNode = pipelined::ttree::TNode<pipelined::RtPolicy>;
using Cell = FutCell<TNode*>;
using Store = pipelined::ttree::Store<pipelined::RtPolicy>;

// Full pipelined bulk insert (level-array waves chained through cells).
// Returns the final root cell.
Cell* bulk_insert(Store& st, Cell* root, std::span<const Key> sorted);

// Strict wave-by-wave baseline (same body as the cost model's
// bulk_insert_strict). Blocks the calling thread until the tree is complete.
TNode* bulk_insert_strict_blocking(Store& st, TNode* root,
                                   std::span<const Key> sorted);

// ---- joins / validation -----------------------------------------------------

// Waits for every reachable cell; returns all keys in order.
std::vector<Key> wait_keys(Cell* root_cell);

// Structural invariant check after completion.
bool validate(Cell* root_cell);

}  // namespace pwf::rt::ttree
