// Parallel (real-execution) 2-6 tree bulk insertion — Section 3.4 on the
// coroutine futures runtime. Mirrors src/ttree/insert.* with co_await/spawn
// in place of touch/fork; the level-array driver is shared with the
// cost-model implementation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/concurrent_arena.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"
#include "support/check.hpp"

namespace pwf::rt::ttree {

using Key = std::int64_t;

inline constexpr int kMaxKeys = 5;
inline constexpr int kMaxChildren = 6;

struct TNode;
using Cell = FutCell<TNode*>;

struct TNode {
  std::uint8_t nkeys = 0;
  bool leaf = true;
  Key keys[kMaxKeys] = {};
  Cell* child[kMaxChildren] = {};

  int nchildren() const { return leaf ? 0 : nkeys + 1; }
};

class Store {
 public:
  Cell* cell() { return arena_.create<Cell>(); }
  Cell* input(TNode* n) {
    Cell* c = cell();
    c->preset(n);
    return c;
  }

  TNode* make_leaf(std::span<const Key> keys);
  TNode* make_internal(std::span<const Key> keys,
                       std::span<Cell* const> children);

  // Valid 2-6 tree over sorted deduplicated keys (input data).
  TNode* build(std::span<const Key> sorted, int fanout = 3);

  std::span<const Key> hold(std::vector<Key> keys) {
    std::lock_guard<std::mutex> lk(held_mutex_);
    held_.push_back(std::move(keys));
    return held_.back();
  }

 private:
  ConcurrentArena arena_;
  std::mutex held_mutex_;
  std::vector<std::vector<Key>> held_;
};

// One pipelined wave of a well-separated sorted key array.
Fiber wave_fiber(Store& st, Cell* root, std::span<const Key> keys,
                 Cell* out);

// Full pipelined bulk insert (level-array waves chained through cells).
// Returns the final root cell.
Cell* bulk_insert(Store& st, Cell* root, std::span<const Key> sorted);

// ---- joins / validation -------------------------------------------------------

// Waits for every reachable cell; returns all keys in order.
std::vector<Key> wait_keys(Cell* root_cell);

// Structural invariant check after completion.
bool validate(Cell* root_cell);

}  // namespace pwf::rt::ttree
