#include "runtime/parallel_set.hpp"

#include <algorithm>
#include <utility>

namespace pwf::rt {

namespace {

// Full-tree forcing walks run on the caller's stack; explicit stacks keep
// them safe on adversarially skewed treaps (see rt_treap.cpp).
std::size_t wait_count(treap::Cell* c) {
  std::size_t count = 0;
  std::vector<treap::Cell*> stack;
  stack.push_back(c);
  while (!stack.empty()) {
    treap::Cell* cur = stack.back();
    stack.pop_back();
    treap::Node* n = cur->wait_blocking();
    if (n == nullptr) continue;
    ++count;
    stack.push_back(n->left);
    stack.push_back(n->right);
  }
  return count;
}

int wait_height(treap::Cell* c) {
  int best = 0;
  std::vector<std::pair<treap::Cell*, int>> stack;
  stack.emplace_back(c, 1);
  while (!stack.empty()) {
    auto [cur, depth] = stack.back();
    stack.pop_back();
    treap::Node* n = cur->wait_blocking();
    if (n == nullptr) continue;
    best = std::max(best, depth);
    stack.emplace_back(n->left, depth + 1);
    stack.emplace_back(n->right, depth + 1);
  }
  return best;
}

}  // namespace

ParallelSet::~ParallelSet() { FramePool::wait_quiescent(); }

ParallelSet::ParallelSet(Scheduler& sched, std::uint64_t salt)
    : sched_(sched),
      salt_(salt),
      store_(std::make_unique<treap::Store>(salt)),
      root_(store_->input(nullptr)) {}

ParallelSet::ParallelSet(Scheduler& sched, std::span<const Key> keys,
                         std::uint64_t salt)
    : sched_(sched),
      salt_(salt),
      store_(std::make_unique<treap::Store>(salt)),
      root_(nullptr) {
  std::vector<Key> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  size_.store(sorted.size(), std::memory_order_relaxed);
  root_.store(store_->input(store_->build(sorted)), std::memory_order_release);
}

treap::Cell* ParallelSet::build_batch(std::span<const Key> keys) {
  std::vector<Key> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return store_->input(store_->build(sorted));
}

void ParallelSet::chain(treap::Cell* next) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t pending =
      pending_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t hw = max_pending_.load(std::memory_order_relaxed);
  while (pending > hw &&
         !max_pending_.compare_exchange_weak(hw, pending,
                                             std::memory_order_relaxed)) {
  }
  size_valid_.store(false, std::memory_order_relaxed);
  // Publish after the accounting so a reader that sees the new root also
  // sees size_valid_ == false.
  root_.store(next, std::memory_order_release);
}

void ParallelSet::insert_batch(std::span<const Key> keys) {
  if (keys.empty()) return;
  treap::Cell* cur = root_.load(std::memory_order_acquire);
  if (!cur->written()) overlapped_.fetch_add(1, std::memory_order_relaxed);
  chain(treap::union_treaps(*store_, cur, build_batch(keys)));
}

void ParallelSet::erase_batch(std::span<const Key> keys) {
  if (keys.empty()) return;
  treap::Cell* cur = root_.load(std::memory_order_acquire);
  if (!cur->written()) overlapped_.fetch_add(1, std::memory_order_relaxed);
  chain(treap::diff_treaps(*store_, cur, build_batch(keys)));
}

void ParallelSet::retain_batch(std::span<const Key> keys) {
  treap::Cell* cur = root_.load(std::memory_order_acquire);
  if (!cur->written()) overlapped_.fetch_add(1, std::memory_order_relaxed);
  chain(treap::intersect_treaps(*store_, cur, build_batch(keys)));
}

void ParallelSet::force_recount() const {
  treap::Cell* cur = root_.load(std::memory_order_acquire);
  const std::size_t n = wait_count(cur);
  size_.store(n, std::memory_order_relaxed);
  size_valid_.store(true, std::memory_order_relaxed);
  pending_.store(0, std::memory_order_relaxed);
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

void ParallelSet::compact() {
  const std::vector<Key> snapshot = keys();  // forces every pending batch
  // Forcing the result tree is not fiber quiescence: stragglers whose
  // outputs aren't in the final tree still read the old arena.
  FramePool::wait_quiescent();
  auto fresh = std::make_unique<treap::Store>(salt_);
  treap::Cell* next = fresh->input(fresh->build(snapshot));
  root_.store(next, std::memory_order_release);
  store_ = std::move(fresh);  // frees every superseded node and cell
  size_.store(snapshot.size(), std::memory_order_relaxed);
  size_valid_.store(true, std::memory_order_relaxed);
  pending_.store(0, std::memory_order_relaxed);
  epochs_.fetch_add(1, std::memory_order_relaxed);
}

bool ParallelSet::contains(Key k) const {
  const treap::Node* n =
      root_.load(std::memory_order_acquire)->wait_blocking();
  while (n != nullptr) {
    if (k < n->key)
      n = n->left->wait_blocking();
    else if (k > n->key)
      n = n->right->wait_blocking();
    else
      return true;
  }
  return false;
}

std::size_t ParallelSet::size() const {
  if (!size_valid_.load(std::memory_order_acquire)) force_recount();
  return size_.load(std::memory_order_relaxed);
}

std::vector<ParallelSet::Key> ParallelSet::keys() const {
  return treap::wait_inorder(root_.load(std::memory_order_acquire));
}

int ParallelSet::height() const {
  return wait_height(root_.load(std::memory_order_acquire));
}

ParallelSet::Stats ParallelSet::stats() const {
  Stats s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.overlapped = overlapped_.load(std::memory_order_relaxed);
  s.max_pending = max_pending_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  s.epochs = epochs_.load(std::memory_order_relaxed);
  s.arena_bytes = store_->bytes_used();
  return s;
}

}  // namespace pwf::rt
