#include "runtime/parallel_set.hpp"

#include <algorithm>

namespace pwf::rt {

namespace {

// Waits for every reachable cell and counts nodes.
std::size_t wait_count(treap::Cell* c) {
  treap::Node* n = c->wait_blocking();
  if (n == nullptr) return 0;
  return 1 + wait_count(n->left) + wait_count(n->right);
}

}  // namespace

ParallelSet::ParallelSet(Scheduler& sched, std::uint64_t salt)
    : sched_(sched), store_(salt), root_(store_.input(nullptr)) {}

ParallelSet::ParallelSet(Scheduler& sched, std::span<const Key> keys,
                         std::uint64_t salt)
    : sched_(sched), store_(salt), root_(nullptr) {
  std::vector<Key> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  size_ = sorted.size();
  root_ = store_.input(store_.build(sorted));
}

treap::Cell* ParallelSet::build_batch(std::span<const Key> keys) {
  std::vector<Key> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return store_.input(store_.build(sorted));
}

void ParallelSet::join_and_recount() { size_ = wait_count(root_); }

void ParallelSet::insert_batch(std::span<const Key> keys) {
  if (keys.empty()) return;
  root_ = treap::union_treaps(store_, root_, build_batch(keys));
  join_and_recount();
}

void ParallelSet::erase_batch(std::span<const Key> keys) {
  if (keys.empty()) return;
  root_ = treap::diff_treaps(store_, root_, build_batch(keys));
  join_and_recount();
}

void ParallelSet::retain_batch(std::span<const Key> keys) {
  root_ = treap::intersect_treaps(store_, root_, build_batch(keys));
  join_and_recount();
}

bool ParallelSet::contains(Key k) const {
  const treap::Node* n = root_->peek();
  while (n != nullptr) {
    if (k < n->key)
      n = n->left->peek();
    else if (k > n->key)
      n = n->right->peek();
    else
      return true;
  }
  return false;
}

std::vector<ParallelSet::Key> ParallelSet::keys() const {
  return treap::wait_inorder(root_);
}

int ParallelSet::height() const {
  struct H {
    static int of(treap::Node* n) {
      if (n == nullptr) return 0;
      return 1 + std::max(of(n->left->peek()), of(n->right->peek()));
    }
  };
  return H::of(root_->peek());
}

}  // namespace pwf::rt
