#include "runtime/parallel_set.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "pipelined/treap_walk.hpp"
#include "support/check.hpp"

#if PWF_ANALYZE
#include "analyze/rt_recorder.hpp"
#endif

namespace pwf::rt {

namespace {

namespace pl = pipelined;

// Announces a reader to compact()'s Dekker pair: the seq_cst increment is
// ordered against compact()'s seq_cst root publish, so either the reader's
// root load (also seq_cst) sees the fresh root, or compact's drain loop sees
// the reader and keeps the old store alive until it leaves.
struct ReadGuard {
  std::atomic<std::uint64_t>& count;
  explicit ReadGuard(std::atomic<std::uint64_t>& c) : count(c) {
    count.fetch_add(1, std::memory_order_seq_cst);
  }
  ~ReadGuard() { count.fetch_sub(1, std::memory_order_release); }
};

// All walks below are the shared explicit-stack visitors of
// pipelined/treap_walk.hpp with a wait_blocking force: they run on the
// caller's stack and must not recurse (the root may be an arbitrarily deep
// chain while a pipeline is mid-flight).
constexpr auto kWait = [](auto* c) { return c->wait_blocking(); };

}  // namespace

bool SetSnapshot::contains(Key k) const {
  return pl::treap::lookup(root_, k, kWait).has_value();
}

std::size_t SetSnapshot::size() const {
  return pl::treap::count_keys(root_, kWait);
}

std::vector<SetSnapshot::Key> SetSnapshot::keys() const {
  std::vector<Key> out;
  pl::treap::visit_items(root_, kWait,
                         [&](Key k, const auto&) { out.push_back(k); });
  return out;
}

ParallelSet::~ParallelSet() {
  // An absorbed husk's pipeline belongs to the surviving shard: its pending
  // accounting was transferred by absorb() and waiting here would serialize
  // the merge against the in-flight join.
  if (released_) return;
  // Only a live scheduler can drain in-flight fibers; after ~Scheduler the
  // frame pool can never reach quiescence (workers are gone and any fiber
  // still queued at shutdown was dropped), so spinning would hang forever.
  if (Scheduler::current() != nullptr) FramePool::wait_quiescent();
#if PWF_ANALYZE
  analyze::note_pipeline_flushed(
      pending_.exchange(0, std::memory_order_relaxed));
#endif
}

ParallelSet::ParallelSet(Scheduler& sched, std::uint64_t salt,
                         std::size_t leaf_cap)
    : sched_(sched),
      salt_(salt),
      leaf_cap_(leaf_cap),
      store_(std::make_shared<treap::Store>(salt, leaf_cap)),
      root_(store_->input(nullptr)) {}

ParallelSet::ParallelSet(Scheduler& sched, std::span<const Key> keys,
                         std::uint64_t salt, std::size_t leaf_cap)
    : sched_(sched),
      salt_(salt),
      leaf_cap_(leaf_cap),
      store_(std::make_shared<treap::Store>(salt, leaf_cap)),
      root_(nullptr) {
  std::vector<Key> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  size_.store(sorted.size(), std::memory_order_relaxed);
  root_.store(store_->input(store_->build(sorted)), std::memory_order_release);
}

treap::Cell* ParallelSet::build_batch(std::span<const Key> keys) {
  std::vector<Key> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return store_->input(store_->build(sorted));
}

void ParallelSet::account_chain() {
#if PWF_ANALYZE
  analyze::note_pipeline_chained();
#endif
  const std::uint64_t pending =
      pending_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t hw = max_pending_.load(std::memory_order_relaxed);
  while (pending > hw &&
         !max_pending_.compare_exchange_weak(hw, pending,
                                             std::memory_order_relaxed)) {
  }
  size_valid_.store(false, std::memory_order_relaxed);
}

void ParallelSet::chain(treap::Cell* next) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  account_chain();
  // Publish after the accounting so a reader that sees the new root also
  // sees size_valid_ == false.
  root_.store(next, std::memory_order_release);
}

void ParallelSet::insert_batch(std::span<const Key> keys) {
  if (keys.empty()) return;
  treap::Cell* cur = root_.load(std::memory_order_acquire);
  if (!cur->written()) overlapped_.fetch_add(1, std::memory_order_relaxed);
  chain(treap::union_treaps(*store_, cur, build_batch(keys)));
}

void ParallelSet::erase_batch(std::span<const Key> keys) {
  if (keys.empty()) return;
  treap::Cell* cur = root_.load(std::memory_order_acquire);
  if (!cur->written()) overlapped_.fetch_add(1, std::memory_order_relaxed);
  chain(treap::diff_treaps(*store_, cur, build_batch(keys)));
}

void ParallelSet::retain_batch(std::span<const Key> keys) {
  treap::Cell* cur = root_.load(std::memory_order_acquire);
  if (!cur->written()) overlapped_.fetch_add(1, std::memory_order_relaxed);
  chain(treap::intersect_treaps(*store_, cur, build_batch(keys)));
}

ParallelSet::ParallelSet(Scheduler& sched, std::shared_ptr<treap::Store> store,
                         treap::Cell* root, std::uint64_t salt,
                         std::size_t leaf_cap)
    : sched_(sched),
      salt_(salt),
      leaf_cap_(leaf_cap),
      store_(std::move(store)),
      root_(root) {
  size_valid_.store(false, std::memory_order_relaxed);
}

std::unique_ptr<ParallelSet> ParallelSet::split_off(Key pivot) {
  PWF_CHECK_MSG(split_pending_ == nullptr,
                "split_off before the previous split completed");
  treap::Cell* cur = root_.load(std::memory_order_acquire);
  treap::Cell* less = store_->cell();
  treap::Cell* geq = store_->cell();
  treap::split_treaps(*store_, cur, pivot, less, geq);
  auto right = std::unique_ptr<ParallelSet>(
      new ParallelSet(sched_, store_, geq, salt_, leaf_cap_));
  {
    // The >= half can reference nodes from every store this set keeps
    // alive (past merges), so the new shard pins them too.
    std::lock_guard<std::mutex> lk(snap_mu_);
    right->keep_alive_ = keep_alive_;
  }
  right->account_chain();
  split_pending_ = less;
  return right;
}

void ParallelSet::complete_split() {
  PWF_CHECK_MSG(split_pending_ != nullptr,
                "complete_split without a pending split_off");
  account_chain();
  std::lock_guard<std::mutex> lk(snap_mu_);
  root_.store(std::exchange(split_pending_, nullptr),
              std::memory_order_release);
}

void ParallelSet::absorb(ParallelSet& right) {
  PWF_CHECK_MSG(&right != this && !right.released_, "bad absorb operand");
  PWF_CHECK_MSG(split_pending_ == nullptr && right.split_pending_ == nullptr,
                "absorb during an incomplete split");
  treap::Cell* a = root_.load(std::memory_order_acquire);
  treap::Cell* b = right.root_.load(std::memory_order_acquire);
  // The join allocates in *this* store; right's arena (plus anything it
  // kept alive) stays pinned below until compact() rebuilds.
  treap::Cell* out = treap::join_treaps(*store_, a, b);
  account_chain();
  {
    std::lock_guard<std::mutex> lk(snap_mu_);
    keep_alive_.push_back(right.store_);
    keep_alive_.insert(keep_alive_.end(), right.keep_alive_.begin(),
                       right.keep_alive_.end());
    root_.store(out, std::memory_order_release);
  }
  // Fold the husk's counters into the surviving pipeline: transferring
  // pending keeps the analyze-mode chained/flushed ledger balanced.
  batches_.fetch_add(right.batches_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  overlapped_.fetch_add(right.overlapped_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  flushes_.fetch_add(right.flushes_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  epochs_.fetch_add(right.epochs_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  const std::uint64_t rhw = right.max_pending_.load(std::memory_order_relaxed);
  std::uint64_t hw = max_pending_.load(std::memory_order_relaxed);
  while (rhw > hw &&
         !max_pending_.compare_exchange_weak(hw, rhw,
                                             std::memory_order_relaxed)) {
  }
  pending_.fetch_add(right.pending_.exchange(0, std::memory_order_relaxed),
                     std::memory_order_relaxed);
  right.released_ = true;
}

void ParallelSet::force_recount() const {
  ReadGuard guard(active_readers_);
  treap::Cell* cur = root_.load(std::memory_order_seq_cst);
  const std::size_t n = pl::treap::count_keys(cur, kWait);
  size_.store(n, std::memory_order_relaxed);
  size_valid_.store(true, std::memory_order_relaxed);
#if PWF_ANALYZE
  analyze::note_pipeline_flushed(
      pending_.exchange(0, std::memory_order_relaxed));
#else
  pending_.store(0, std::memory_order_relaxed);
#endif
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

void ParallelSet::compact() {
  const std::vector<Key> snapshot = keys();  // forces every pending batch
  // Forcing the result tree is not fiber quiescence: stragglers whose
  // outputs aren't in the final tree still read the old arena.
  FramePool::wait_quiescent();
  auto fresh = std::make_shared<treap::Store>(salt_, leaf_cap_);
  treap::Cell* next = fresh->input(fresh->build(snapshot));
  // Dekker publish: the seq_cst store is ordered against every reader's
  // seq_cst announce. A reader that loaded the old root has incremented
  // active_readers_ before this store, so the drain loop below observes it;
  // a reader announcing later is guaranteed to load the fresh root. The
  // (store_, root_) pair is swapped under snap_mu_ so a concurrent
  // snapshot() never pairs a root with the wrong epoch's store.
  std::shared_ptr<treap::Store> old;
  std::vector<std::shared_ptr<const treap::Store>> merged;
  {
    std::lock_guard<std::mutex> lk(snap_mu_);
    root_.store(next, std::memory_order_seq_cst);
    old = std::exchange(store_, std::move(fresh));
    merged = std::move(keep_alive_);
    keep_alive_.clear();
  }
  while (active_readers_.load(std::memory_order_seq_cst) != 0)
    std::this_thread::yield();
  // Refcounted epoch retirement: frees every superseded node and cell now
  // — including arenas of shards absorbed by adaptive merges — unless a
  // live SetSnapshot still pins the old epoch.
  old.reset();
  merged.clear();
  size_.store(snapshot.size(), std::memory_order_relaxed);
  size_valid_.store(true, std::memory_order_relaxed);
#if PWF_ANALYZE
  analyze::note_pipeline_flushed(
      pending_.exchange(0, std::memory_order_relaxed));
#else
  pending_.store(0, std::memory_order_relaxed);
#endif
  epochs_.fetch_add(1, std::memory_order_relaxed);
}

SetSnapshot ParallelSet::snapshot() const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  return SetSnapshot(store_, keep_alive_,
                     root_.load(std::memory_order_seq_cst));
}

void ParallelSet::on_flush(FutCell<int>& done) const {
  std::vector<rtasync::Pinned<treap::Store, treap::Cell>> pins(1);
  pins[0] = pinned();
  spawn(rtasync::quiesce_fiber(std::move(pins), &done));
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

rtasync::Pinned<treap::Store, treap::Cell> ParallelSet::pinned() const {
  rtasync::Pinned<treap::Store, treap::Cell> p;
  std::lock_guard<std::mutex> lk(snap_mu_);
  p.store = store_;
  p.merged = keep_alive_;
  p.root = root_.load(std::memory_order_seq_cst);
  return p;
}

bool ParallelSet::contains(Key k) const {
  ReadGuard guard(active_readers_);
  return pl::treap::lookup(root_.load(std::memory_order_seq_cst), k, kWait)
      .has_value();
}

std::size_t ParallelSet::size() const {
  if (!size_valid_.load(std::memory_order_acquire)) force_recount();
  return size_.load(std::memory_order_relaxed);
}

std::vector<ParallelSet::Key> ParallelSet::keys() const {
  ReadGuard guard(active_readers_);
  return treap::wait_inorder(root_.load(std::memory_order_seq_cst));
}

int ParallelSet::height() const {
  ReadGuard guard(active_readers_);
  return pl::treap::height_of(root_.load(std::memory_order_seq_cst), kWait);
}

ParallelSet::Stats ParallelSet::stats() const {
  Stats s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.overlapped = overlapped_.load(std::memory_order_relaxed);
  s.max_pending = max_pending_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  s.epochs = epochs_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(snap_mu_);
    s.arena_bytes = store_->bytes_used();
    for (const auto& ka : keep_alive_) s.arena_bytes += ka->bytes_used();
  }
  return s;
}

ParallelSet::CacheEconomy ParallelSet::cache_economy() const {
  ReadGuard guard(active_readers_);
  const pipelined::treap::CacheEconomy ce =
      treap::cache_economy(root_.load(std::memory_order_seq_cst));
  CacheEconomy out;
  out.internal_nodes = ce.internal_nodes;
  out.leaf_chunks = ce.leaf_chunks;
  out.leaf_keys = ce.leaf_keys;
  out.leaf_ops = store_->leaf_ops();
  out.arena_bytes = store_->bytes_used();
  out.wasted_padding = store_->wasted_padding();
  return out;
}

}  // namespace pwf::rt
