#include "runtime/parallel_set.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#if PWF_ANALYZE
#include "analyze/rt_recorder.hpp"
#endif

namespace pwf::rt {

namespace {

// Announces a reader to compact()'s Dekker pair: the seq_cst increment is
// ordered against compact()'s seq_cst root publish, so either the reader's
// root load (also seq_cst) sees the fresh root, or compact's drain loop sees
// the reader and keeps the old store alive until it leaves.
struct ReadGuard {
  std::atomic<std::uint64_t>& count;
  explicit ReadGuard(std::atomic<std::uint64_t>& c) : count(c) {
    count.fetch_add(1, std::memory_order_seq_cst);
  }
  ~ReadGuard() { count.fetch_sub(1, std::memory_order_release); }
};

// Full-tree forcing walks run on the caller's stack; explicit stacks keep
// them safe on adversarially skewed treaps (see rt_treap.cpp).
std::size_t wait_count(treap::Cell* c) {
  std::size_t count = 0;
  std::vector<treap::Cell*> stack;
  stack.push_back(c);
  while (!stack.empty()) {
    treap::Cell* cur = stack.back();
    stack.pop_back();
    treap::Node* n = cur->wait_blocking();
    if (n == nullptr) continue;
    if (pipelined::treap::is_leaf(n)) {
      count += n->count;
      continue;
    }
    ++count;
    stack.push_back(n->left);
    stack.push_back(n->right);
  }
  return count;
}

int wait_height(treap::Cell* c) {
  int best = 0;
  std::vector<std::pair<treap::Cell*, int>> stack;
  stack.emplace_back(c, 1);
  while (!stack.empty()) {
    auto [cur, depth] = stack.back();
    stack.pop_back();
    treap::Node* n = cur->wait_blocking();
    if (n == nullptr) continue;
    best = std::max(best, depth);
    if (pipelined::treap::is_leaf(n)) continue;
    stack.emplace_back(n->left, depth + 1);
    stack.emplace_back(n->right, depth + 1);
  }
  return best;
}

}  // namespace

ParallelSet::~ParallelSet() {
  // Only a live scheduler can drain in-flight fibers; after ~Scheduler the
  // frame pool can never reach quiescence (workers are gone and any fiber
  // still queued at shutdown was dropped), so spinning would hang forever.
  if (Scheduler::current() != nullptr) FramePool::wait_quiescent();
#if PWF_ANALYZE
  analyze::note_pipeline_flushed(
      pending_.exchange(0, std::memory_order_relaxed));
#endif
}

ParallelSet::ParallelSet(Scheduler& sched, std::uint64_t salt,
                         std::size_t leaf_cap)
    : sched_(sched),
      salt_(salt),
      leaf_cap_(leaf_cap),
      store_(std::make_unique<treap::Store>(salt, leaf_cap)),
      root_(store_->input(nullptr)) {}

ParallelSet::ParallelSet(Scheduler& sched, std::span<const Key> keys,
                         std::uint64_t salt, std::size_t leaf_cap)
    : sched_(sched),
      salt_(salt),
      leaf_cap_(leaf_cap),
      store_(std::make_unique<treap::Store>(salt, leaf_cap)),
      root_(nullptr) {
  std::vector<Key> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  size_.store(sorted.size(), std::memory_order_relaxed);
  root_.store(store_->input(store_->build(sorted)), std::memory_order_release);
}

treap::Cell* ParallelSet::build_batch(std::span<const Key> keys) {
  std::vector<Key> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return store_->input(store_->build(sorted));
}

void ParallelSet::chain(treap::Cell* next) {
  batches_.fetch_add(1, std::memory_order_relaxed);
#if PWF_ANALYZE
  analyze::note_pipeline_chained();
#endif
  const std::uint64_t pending =
      pending_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t hw = max_pending_.load(std::memory_order_relaxed);
  while (pending > hw &&
         !max_pending_.compare_exchange_weak(hw, pending,
                                             std::memory_order_relaxed)) {
  }
  size_valid_.store(false, std::memory_order_relaxed);
  // Publish after the accounting so a reader that sees the new root also
  // sees size_valid_ == false.
  root_.store(next, std::memory_order_release);
}

void ParallelSet::insert_batch(std::span<const Key> keys) {
  if (keys.empty()) return;
  treap::Cell* cur = root_.load(std::memory_order_acquire);
  if (!cur->written()) overlapped_.fetch_add(1, std::memory_order_relaxed);
  chain(treap::union_treaps(*store_, cur, build_batch(keys)));
}

void ParallelSet::erase_batch(std::span<const Key> keys) {
  if (keys.empty()) return;
  treap::Cell* cur = root_.load(std::memory_order_acquire);
  if (!cur->written()) overlapped_.fetch_add(1, std::memory_order_relaxed);
  chain(treap::diff_treaps(*store_, cur, build_batch(keys)));
}

void ParallelSet::retain_batch(std::span<const Key> keys) {
  treap::Cell* cur = root_.load(std::memory_order_acquire);
  if (!cur->written()) overlapped_.fetch_add(1, std::memory_order_relaxed);
  chain(treap::intersect_treaps(*store_, cur, build_batch(keys)));
}

void ParallelSet::force_recount() const {
  ReadGuard guard(active_readers_);
  treap::Cell* cur = root_.load(std::memory_order_seq_cst);
  const std::size_t n = wait_count(cur);
  size_.store(n, std::memory_order_relaxed);
  size_valid_.store(true, std::memory_order_relaxed);
#if PWF_ANALYZE
  analyze::note_pipeline_flushed(
      pending_.exchange(0, std::memory_order_relaxed));
#else
  pending_.store(0, std::memory_order_relaxed);
#endif
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

void ParallelSet::compact() {
  const std::vector<Key> snapshot = keys();  // forces every pending batch
  // Forcing the result tree is not fiber quiescence: stragglers whose
  // outputs aren't in the final tree still read the old arena.
  FramePool::wait_quiescent();
  auto fresh = std::make_unique<treap::Store>(salt_, leaf_cap_);
  treap::Cell* next = fresh->input(fresh->build(snapshot));
  // Dekker publish: the seq_cst store is ordered against every reader's
  // seq_cst announce. A reader that loaded the old root has incremented
  // active_readers_ before this store, so the drain loop below observes it;
  // a reader announcing later is guaranteed to load the fresh root.
  root_.store(next, std::memory_order_seq_cst);
  while (active_readers_.load(std::memory_order_seq_cst) != 0)
    std::this_thread::yield();
  store_ = std::move(fresh);  // frees every superseded node and cell
  size_.store(snapshot.size(), std::memory_order_relaxed);
  size_valid_.store(true, std::memory_order_relaxed);
#if PWF_ANALYZE
  analyze::note_pipeline_flushed(
      pending_.exchange(0, std::memory_order_relaxed));
#else
  pending_.store(0, std::memory_order_relaxed);
#endif
  epochs_.fetch_add(1, std::memory_order_relaxed);
}

bool ParallelSet::contains(Key k) const {
  ReadGuard guard(active_readers_);
  const treap::Node* n =
      root_.load(std::memory_order_seq_cst)->wait_blocking();
  while (n != nullptr) {
    if (pipelined::treap::is_leaf(n)) {
      const pipelined::treap::LeafEntry* e = n->items;
      std::uint32_t lo = 0, hi = n->count;
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (e[mid].key < k) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo < n->count && e[lo].key == k;
    }
    if (k < n->key)
      n = n->left->wait_blocking();
    else if (k > n->key)
      n = n->right->wait_blocking();
    else
      return true;
  }
  return false;
}

std::size_t ParallelSet::size() const {
  if (!size_valid_.load(std::memory_order_acquire)) force_recount();
  return size_.load(std::memory_order_relaxed);
}

std::vector<ParallelSet::Key> ParallelSet::keys() const {
  ReadGuard guard(active_readers_);
  return treap::wait_inorder(root_.load(std::memory_order_seq_cst));
}

int ParallelSet::height() const {
  ReadGuard guard(active_readers_);
  return wait_height(root_.load(std::memory_order_seq_cst));
}

ParallelSet::Stats ParallelSet::stats() const {
  Stats s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.overlapped = overlapped_.load(std::memory_order_relaxed);
  s.max_pending = max_pending_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  s.epochs = epochs_.load(std::memory_order_relaxed);
  s.arena_bytes = store_->bytes_used();
  return s;
}

ParallelSet::CacheEconomy ParallelSet::cache_economy() const {
  ReadGuard guard(active_readers_);
  const pipelined::treap::CacheEconomy ce =
      treap::cache_economy(root_.load(std::memory_order_seq_cst));
  CacheEconomy out;
  out.internal_nodes = ce.internal_nodes;
  out.leaf_chunks = ce.leaf_chunks;
  out.leaf_keys = ce.leaf_keys;
  out.leaf_ops = store_->leaf_ops();
  out.arena_bytes = store_->bytes_used();
  out.wasted_padding = store_->wasted_padding();
  return out;
}

}  // namespace pwf::rt
