// Bounded lock-free ring for the scheduler's injection queue (posts from
// non-worker threads: test mains, facades, blocking joins that repost, and
// the I/O reactor thread reposting fibers whose fd/timer became ready —
// io_reactor.cpp pushes here on every wakeup, so the ring is on the
// latency path of the E27 server harness).
//
// Producers are any external threads, consumers are all workers, so this is
// Vyukov's bounded MPMC queue: each slot carries a sequence number that
// encodes whose turn the slot is — a producer may fill slot i when
// `seq == i`, a consumer may drain it when `seq == i + 1`, and each party
// bumps the sequence past the other when done. One CAS per operation,
// no locks, and full/empty are detected without sweeping the ring.
//
// `push` returns false when the ring is full; the Scheduler falls back to
// its mutex+vector overflow path and counts the event in Stats — the ring
// bounds memory, the fallback preserves the unbounded-queue semantics the
// tests rely on.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "support/check.hpp"

namespace pwf::rt {

class InjectRing {
 public:
  explicit InjectRing(std::size_t capacity) : mask_(capacity - 1) {
    PWF_CHECK_MSG(capacity >= 2 && (capacity & mask_) == 0,
                  "ring capacity must be a power of two");
    slots_ = std::make_unique<Slot[]>(capacity);
    for (std::size_t i = 0; i < capacity; ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  InjectRing(const InjectRing&) = delete;
  InjectRing& operator=(const InjectRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // False when the ring is full (caller takes the overflow path).
  bool push(void* value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = value;
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        // The slot one lap back has not been drained: full.
        return false;
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // Nullptr when empty.
  void* pop() {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          void* value = slot.value;
          slot.seq.store(pos + mask_ + 1, std::memory_order_release);
          return value;
        }
      } else if (diff < 0) {
        return nullptr;  // next slot not yet produced: empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::size_t> seq;
    void* value;
  };

  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::size_t> tail_{0};  // producers claim here
  alignas(64) std::atomic<std::size_t> head_{0};  // consumers claim here
};

}  // namespace pwf::rt
