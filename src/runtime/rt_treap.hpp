// Parallel (real-execution) treap union and difference — Sections 3.2–3.3
// on the coroutine futures runtime. The algorithm bodies are the templated
// coroutines in src/pipelined/treap.hpp, instantiated on the RtExec
// substrate; this file only provides the runtime drivers and blocking joins.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pipelined/rt_exec.hpp"
#include "pipelined/treap.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"

namespace pwf::rt::treap {

using Key = pipelined::treap::Key;
using Pri = pipelined::treap::Pri;

using Node = pipelined::treap::Node<pipelined::RtPolicy>;
using Cell = FutCell<Node*>;
using Store = pipelined::treap::Store<pipelined::RtPolicy>;

// The packed node record (key/priority/children + the leaf view) is the
// cache-line contract the chunked storage relies on (docs/storage.md).
static_assert(sizeof(Node) <= 64,
              "runtime treap node must fit in one cache line");

Cell* union_treaps(Store& st, Cell* a, Cell* b);
Cell* diff_treaps(Store& st, Cell* a, Cell* b);
Cell* intersect_treaps(Store& st, Cell* a, Cell* b);

// Rebalance primitives for the contention-adaptive sharded facades
// (docs/service.md): pipelined range split (keys < pivot into *outL, keys
// >= pivot into *outR) and range-disjoint join (every key of `a` < every
// key of `b`). Both return immediately — the result materializes on the
// scheduler, overlapping in-flight batches — and bump Scheduler::Stats
// rebalances.
void split_treaps(Store& st, Cell* in, Key pivot, Cell* outL, Cell* outR);
Cell* join_treaps(Store& st, Cell* a, Cell* b);

// Strict fork-join baselines on the runtime (same bodies as the cost
// model's union_strict/diff_strict). Block the calling thread until the
// result treap is complete.
Node* union_strict_blocking(Store& st, Node* a, Node* b);
Node* diff_strict_blocking(Store& st, Node* a, Node* b);

// Joins the computation: waits for every reachable cell, returns in-order
// keys.
std::vector<Key> wait_inorder(Cell* root_cell);

// Post-completion validation (BST + heap order + deterministic priorities).
bool validate(const Store& st, Cell* root_cell);

// Storage composition of a finished tree (forces every reachable cell):
// how many cache lines the structure spends on internal nodes vs flat leaf
// chunks — the cache-economy column of E19/E24.
pipelined::treap::CacheEconomy cache_economy(Cell* root_cell);

}  // namespace pwf::rt::treap
