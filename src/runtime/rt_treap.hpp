// Parallel (real-execution) treap union and difference — Sections 3.2–3.3
// on the coroutine futures runtime. Mirrors src/treap/setops.* with
// co_await/spawn in place of touch/fork.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/concurrent_arena.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"
#include "support/random.hpp"

namespace pwf::rt::treap {

using Key = std::int64_t;
using Pri = std::uint64_t;

struct Node;
using Cell = FutCell<Node*>;

struct Node {
  Key key = 0;
  Pri pri = 0;
  Cell* left = nullptr;
  Cell* right = nullptr;
};

class Store {
 public:
  explicit Store(std::uint64_t salt = 0x9e3779b97f4a7c15ULL) : salt_(salt) {}

  Pri priority(Key k) const {
    std::uint64_t x = static_cast<std::uint64_t>(k) ^ salt_;
    return splitmix64(x);
  }

  Cell* cell() { return arena_.create<Cell>(); }
  Cell* input(Node* root) {
    Cell* c = cell();
    c->preset(root);
    return c;
  }

  Node* make(Key key, Pri pri, Cell* l, Cell* r) {
    Node* n = arena_.create<Node>();
    n->key = key;
    n->pri = pri;
    n->left = l;
    n->right = r;
    return n;
  }
  Node* make(Key key, Pri pri) { return make(key, pri, cell(), cell()); }

  // O(n) construction over sorted deduplicated keys (input data).
  Node* build(std::span<const Key> keys);

 private:
  std::uint64_t salt_;
  ConcurrentArena arena_;
};

Fiber splitm_fiber(Store& st, Key s, Node* t, Cell* outL, Cell* outR,
                   Cell* outEq);
Fiber union_fiber(Store& st, Cell* a, Cell* b, Cell* out);
Fiber join_fiber(Store& st, Node* t1, Node* t2, Cell* out);
Fiber diff_fiber(Store& st, Cell* a, Cell* b, Cell* out);
Fiber intersect_fiber(Store& st, Cell* a, Cell* b, Cell* out);

Cell* union_treaps(Store& st, Cell* a, Cell* b);
Cell* diff_treaps(Store& st, Cell* a, Cell* b);
Cell* intersect_treaps(Store& st, Cell* a, Cell* b);

// Joins the computation: waits for every reachable cell, returns in-order
// keys.
std::vector<Key> wait_inorder(Cell* root_cell);

// Post-completion validation (BST + heap order).
bool validate(const Store& st, Cell* root_cell);

}  // namespace pwf::rt::treap
